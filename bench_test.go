package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
)

// This file is the benchmark harness of DESIGN.md §4: one testing.B bench
// per table/figure of the paper. Each bench reports, besides wall time, the
// simulated-cost metrics the asynchronous model is stated in (protocol
// messages, per-process steps, virtual-time latency) via b.ReportMetric.

// ---------------------------------------------------------------------------
// Table 1 rows

// BenchmarkTable1_Broadcast: the non-genuine Ω∧Σ row — a full run of the
// broadcast-based reduction on Figure 1.
func BenchmarkTable1_Broadcast(b *testing.B) {
	topo := groups.Figure1()
	for i := 0; i < b.N; i++ {
		s := baseline.NewBroadcastSystem(topo, failure.NewPattern(5), int64(i))
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(2, 2, nil)
		s.Multicast(4, 3, nil)
		if !s.Run() {
			b.Fatal("no quiescence")
		}
	}
}

// BenchmarkTable1_Mu: Algorithm 1 under μ on Figure 1 with a faulty cyclic
// family (the paper's headline row).
func BenchmarkTable1_Mu(b *testing.B) {
	topo := groups.Figure1()
	var steps, msgs int64
	for i := 0; i < b.N; i++ {
		pat := failure.NewPattern(5).WithCrash(1, 35)
		s := core.NewSystem(topo, pat, core.Options{ChargeObjects: true, FD: fd.Options{Delay: 8}}, int64(i))
		s.Multicast(0, 0, nil)
		s.Multicast(2, 1, nil)
		s.Multicast(3, 2, nil)
		s.Multicast(4, 3, nil)
		if !s.Run() {
			b.Fatal("no quiescence")
		}
		steps += s.Eng.TotalSteps()
		msgs += s.Eng.Messages()
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
	b.ReportMetric(float64(msgs)/float64(b.N), "protomsgs/run")
}

// BenchmarkTable1_Strict: the μ ∧ 1^{g∩h} row.
func BenchmarkTable1_Strict(b *testing.B) {
	topo := groups.Figure1()
	for i := 0; i < b.N; i++ {
		pat := failure.NewPattern(5).WithCrash(1, 35)
		s := core.NewSystem(topo, pat, core.Options{Variant: core.Strict, FD: fd.Options{Delay: 8}}, int64(i))
		s.Multicast(0, 0, nil)
		s.Multicast(2, 2, nil)
		s.Multicast(4, 3, nil)
		if !s.Run() {
			b.Fatal("no quiescence")
		}
	}
}

// BenchmarkTable1_Pairwise: the (∧Σ)∧(∧Ω) row on an acyclic topology.
func BenchmarkTable1_Pairwise(b *testing.B) {
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2, 3),
		groups.NewProcSet(3, 4),
	)
	for i := 0; i < b.N; i++ {
		s := core.NewSystem(topo, failure.NewPattern(5), core.Options{Variant: core.Pairwise}, int64(i))
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(4, 2, nil)
		if !s.Run() {
			b.Fatal("no quiescence")
		}
	}
}

// BenchmarkTable1_StronglyGenuine: the F=∅ row with intersection-hosted
// coordination.
func BenchmarkTable1_StronglyGenuine(b *testing.B) {
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1, 2),
		groups.NewProcSet(2, 3, 4),
	)
	for i := 0; i < b.N; i++ {
		s := core.NewSystem(topo, failure.NewPattern(5), core.Options{Variant: core.StronglyGenuine}, int64(i))
		s.Multicast(0, 0, nil)
		s.Multicast(3, 1, nil)
		if !s.Run() {
			b.Fatal("no quiescence")
		}
	}
}

// ---------------------------------------------------------------------------
// M1 — genuine vs. broadcast scaling (§1/§2.3)

func disjointTopo(k int) *groups.Topology {
	gs := make([]groups.ProcSet, k)
	for i := range gs {
		gs[i] = groups.NewProcSet(groups.Process(3*i), groups.Process(3*i+1), groups.Process(3*i+2))
	}
	return groups.MustNew(3*k, gs...)
}

// BenchmarkGenuineVsBroadcast reports the per-multicast message cost of
// both protocols as k grows; the genuine column stays flat, the broadcast
// column grows with the system.
func BenchmarkGenuineVsBroadcast(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("genuine/k=%d", k), func(b *testing.B) {
			topo := disjointTopo(k)
			var msgs int64
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(topo, failure.NewPattern(3*k), core.Options{ChargeObjects: true}, int64(i))
				for g := 0; g < k; g++ {
					s.Multicast(groups.Process(3*g), groups.GroupID(g), nil)
				}
				if !s.Run() {
					b.Fatal("no quiescence")
				}
				msgs += s.Eng.Messages()
			}
			b.ReportMetric(float64(msgs)/float64(b.N)/float64(k), "protomsgs/mc")
		})
		b.Run(fmt.Sprintf("broadcast/k=%d", k), func(b *testing.B) {
			topo := disjointTopo(k)
			var msgs int64
			for i := 0; i < b.N; i++ {
				s := baseline.NewBroadcastSystem(topo, failure.NewPattern(3*k), int64(i))
				for g := 0; g < k; g++ {
					s.Multicast(groups.Process(3*g), groups.GroupID(g), nil)
				}
				if !s.Run() {
					b.Fatal("no quiescence")
				}
				msgs += s.Eng.Messages()
			}
			b.ReportMetric(float64(msgs)/float64(b.N)/float64(k), "protomsgs/mc")
		})
	}
}

// ---------------------------------------------------------------------------
// M2 — convoy effect (§6.2)

func ringTopo(k int) *groups.Topology {
	gs := make([]groups.ProcSet, k)
	for i := range gs {
		gs[i] = groups.NewProcSet(groups.Process(i), groups.Process((i+1)%k))
	}
	return groups.MustNew(k, gs...)
}

// BenchmarkConvoyEffect reports the completion latency (virtual rounds) of
// a probe multicast to g0 while the whole ring is busy.
func BenchmarkConvoyEffect(b *testing.B) {
	for _, k := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("ring=%d", k), func(b *testing.B) {
			topo := ringTopo(k)
			var rounds float64
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(topo, failure.NewPattern(k), core.Options{}, int64(i))
				for g := k - 1; g >= 1; g-- {
					s.MulticastAt(2, groups.Process(g), groups.GroupID(g), nil)
				}
				s.MulticastAt(4, 0, 0, nil)
				if !s.Run() {
					b.Fatal("no quiescence")
				}
				var probe int64 = -1
				var done failure.Time = -1
				for _, d := range s.Sh.Deliveries() {
					if int64(d.M) > probe && s.Sh.Reg.Get(d.M).Dst == 0 {
						probe = int64(d.M)
					}
				}
				for _, d := range s.Sh.Deliveries() {
					if int64(d.M) == probe && d.T > done {
						done = d.T
					}
				}
				rounds += float64(done-4) / float64(k)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds/probe")
		})
	}
}

// BenchmarkGroupSize reports throughput as the destination group grows:
// per-multicast cost is quadratic-ish in the group size (every member
// replays every log operation), the price of uniformity.
func BenchmarkGroupSize(b *testing.B) {
	for _, size := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var members groups.ProcSet
			for p := 0; p < size; p++ {
				members = members.Add(groups.Process(p))
			}
			topo := groups.MustNew(size, members)
			deliveries := 0
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(topo, failure.NewPattern(size), core.Options{}, int64(i))
				for m := 0; m < 4; m++ {
					s.Multicast(groups.Process(m%size), 0, nil)
				}
				if !s.Run() {
					b.Fatal("no quiescence")
				}
				deliveries += len(s.Sh.Deliveries())
			}
			b.ReportMetric(float64(deliveries)/b.Elapsed().Seconds(), "deliveries/s")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 1 — topology analysis

// BenchmarkFigure1_Families measures the cyclic-family enumeration (the
// precomputation γ and Algorithm 1 rely on).
func BenchmarkFigure1_Families(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := groups.Figure1()
		if len(topo.Families()) != 3 {
			b.Fatal("bad families")
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

// BenchmarkLogObject measures the shared-log operations of §4.3.
func BenchmarkLogObject(b *testing.B) {
	l := logobj.New("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := logobj.MsgDatum(msg.ID(i + 1))
		l.Append(d)
		l.BumpAndLock(d, l.Pos(d)+1)
	}
}

// BenchmarkSigmaEmulation: Algorithm 2 over a 3-process group (8 restricted
// instances per run).
func BenchmarkSigmaEmulation(b *testing.B) {
	topo := groups.MustNew(3, groups.NewProcSet(0, 1, 2))
	for i := 0; i < b.N; i++ {
		pat := failure.NewPattern(3).WithCrash(2, 15)
		em := extract.NewSigmaEmulation(topo, pat, core.Options{FD: fd.Options{Delay: 6}}, int64(i), 0)
		if _, ok := em.Quorum(0, em.Horizon()+10); !ok {
			b.Fatal("no quorum")
		}
	}
}

// BenchmarkGammaEmulation: Algorithm 3 over Figure 1 (six path instances).
func BenchmarkGammaEmulation(b *testing.B) {
	topo := groups.Figure1()
	for i := 0; i < b.N; i++ {
		pat := failure.NewPattern(5).WithCrash(1, 10)
		em := extract.NewGammaEmulation(topo, pat, core.Options{FD: fd.Options{Delay: 6}}, int64(i), nil)
		if len(em.Families(0, em.Horizon()+10)) != 1 {
			b.Fatal("bad emulation")
		}
	}
}

// BenchmarkOmegaExtraction: Algorithm 5's simulation forest (Appendix B).
func BenchmarkOmegaExtraction(b *testing.B) {
	topo := groups.MustNew(4, groups.NewProcSet(0, 1, 2), groups.NewProcSet(1, 2, 3))
	for i := 0; i < b.N; i++ {
		pat := failure.NewPattern(4)
		e := extract.NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 24)
		if _, ok := e.Extract(1); !ok {
			b.Fatal("no leader")
		}
	}
}

// ---------------------------------------------------------------------------
// Throughput of the core protocol

// BenchmarkCoreThroughput drives a stream of multicasts through Figure 1
// and reports deliveries per second of the implementation.
func BenchmarkCoreThroughput(b *testing.B) {
	topo := groups.Figure1()
	b.ResetTimer()
	deliveries := 0
	for i := 0; i < b.N; i++ {
		s := core.NewSystem(topo, failure.NewPattern(5), core.Options{}, int64(i))
		for round := 0; round < 4; round++ {
			s.Multicast(0, 0, nil)
			s.Multicast(1, 1, nil)
			s.Multicast(2, 2, nil)
			s.Multicast(3, 3, nil)
		}
		if !s.Run() {
			b.Fatal("no quiescence")
		}
		deliveries += len(s.Sh.Deliveries())
	}
	b.ReportMetric(float64(deliveries)/b.Elapsed().Seconds(), "deliveries/s")
}
