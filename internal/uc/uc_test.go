package uc

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/logobj"
)

func ctxFor(pat *failure.Pattern) (*engine.Ctx, *engine.Engine) {
	e := engine.New(engine.Config{Pattern: pat, Seed: 1})
	return &engine.Ctx{Now: 1, E: e}, e
}

// TestProp47_FastPath reproduces Proposition 47: when every operation on
// LOG_{g∩h} originates from g (no message addressed to h), only the
// processes of g∩h take steps to implement the log.
func TestProp47_FastPath(t *testing.T) {
	inter := groups.NewProcSet(1) // g∩h = {p1}
	g := groups.NewProcSet(0, 1)  // hosting group g
	ctx, e := ctxFor(failure.NewPattern(3))
	l := New("LOG_g∩h", inter, g, true)

	const gid = groups.GroupID(0)
	l.Append(ctx, gid, logobj.MsgDatum(1))
	l.Append(ctx, gid, logobj.MsgDatum(2))
	l.BumpAndLock(ctx, gid, logobj.MsgDatum(1), 3)

	if l.SlowOps() != 0 {
		t.Fatalf("single-origin run fell back to consensus %d times", l.SlowOps())
	}
	if l.FastOps() != 3 {
		t.Fatalf("fast ops = %d, want 3", l.FastOps())
	}
	if e.Charges(0) != 0 {
		t.Fatalf("p0 ∈ g\\h charged on the contention-free path")
	}
	if e.Charges(1) == 0 {
		t.Fatalf("p1 ∈ g∩h not charged")
	}
}

// TestContentionFallsBackToConsensus: interleaved origins pay the hosting
// group.
func TestContentionFallsBackToConsensus(t *testing.T) {
	inter := groups.NewProcSet(1)
	g := groups.NewProcSet(0, 1)
	ctx, e := ctxFor(failure.NewPattern(3))
	l := New("LOG_g∩h", inter, g, true)

	l.Append(ctx, 0, logobj.MsgDatum(1)) // origin g
	l.Append(ctx, 1, logobj.MsgDatum(2)) // origin h: conflict
	if l.SlowOps() != 1 {
		t.Fatalf("slow ops = %d, want 1", l.SlowOps())
	}
	if e.Charges(0) == 0 {
		t.Fatalf("hosting group not charged on fallback")
	}
}

// TestChargingOff: a plain object does no accounting.
func TestChargingOff(t *testing.T) {
	ctx, e := ctxFor(failure.NewPattern(2))
	l := New("LOG", groups.NewProcSet(0), groups.NewProcSet(0, 1), false)
	l.Append(ctx, 0, logobj.MsgDatum(1))
	l.Append(ctx, 1, logobj.MsgDatum(2))
	if e.Messages() != 0 || e.Charges(0) != 0 {
		t.Fatalf("charging-off log still accounted")
	}
	if l.FastOps() != 0 && l.SlowOps() != 0 {
		t.Fatalf("ops counted while charging off")
	}
}

// TestSemanticsMatchInner: the wrapper preserves log semantics.
func TestSemanticsMatchInner(t *testing.T) {
	ctx, _ := ctxFor(failure.NewPattern(2))
	l := New("LOG", groups.NewProcSet(0), groups.NewProcSet(0), true)
	p1 := l.Append(ctx, 0, logobj.MsgDatum(1))
	p2 := l.Append(ctx, 0, logobj.MsgDatum(2))
	if p1 != 1 || p2 != 2 {
		t.Fatalf("positions %d,%d", p1, p2)
	}
	l.BumpAndLock(ctx, 0, logobj.MsgDatum(1), 9)
	if got := l.Inner().Pos(logobj.MsgDatum(1)); got != 9 {
		t.Fatalf("bump through wrapper broken: %d", got)
	}
	if !l.Inner().Locked(logobj.MsgDatum(1)) {
		t.Fatalf("lock through wrapper broken")
	}
}
