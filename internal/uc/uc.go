// Package uc layers the paper's universal construction (§4.3) over the log
// objects: each operation on LOG_{g∩h} goes through a contention-free fast
// path — an adopt-commit object among the processes of g∩h — and falls back
// to consensus hosted by one of the two groups when proposals conflict.
//
// Proposition 47 is the point of the construction: when no message is
// addressed to h during a run, every process replays the operations of
// LOG_{g∩h} in the same order, the run is contention free, only adopt-commit
// objects execute, and therefore only the processes of g∩h take steps.
//
// The engine runs operations sequentially, so the construction tracks
// contention logically: an operation conflicts when it races with traffic
// from the other side of the intersection, which we detect by the
// destination group that originated it. A log that only ever sees one
// origin side never conflicts; interleaved origins pay the consensus
// fallback. Charges and message counts flow into the engine accounting.
package uc

import (
	"repro/internal/engine"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/obs"
)

// Log is a shared log whose operations are charged per the universal
// construction. The zero value is unusable; call New.
type Log struct {
	inner *logobj.Log
	// fast is g∩h: the adopt-commit participants.
	fast groups.ProcSet
	// slow is the hosting group of the fallback consensus ("say g").
	slow groups.ProcSet
	// charging disables accounting when false (plain ideal object).
	charging bool

	lastOrigin groups.GroupID
	hasOrigin  bool

	fastOps int64
	slowOps int64

	// rec/pair feed per-pair coordination counts into run reports
	// independently of the charging flag (nil rec records nothing).
	rec  *obs.Recorder
	pair obs.Pair
}

// Observe attaches a recorder: every operation reports the set of processes
// it coordinated (g∩h on the fast path, the hosting group on the consensus
// fallback) under the given pair label.
func (l *Log) Observe(rec *obs.Recorder, pair obs.Pair) {
	l.rec, l.pair = rec, pair
}

// New wraps an empty log named name. fast is the intersection g∩h, slow the
// hosting group for the consensus fallback. When charging is false the log
// behaves as an ideal object with no accounting.
func New(name string, fast, slow groups.ProcSet, charging bool) *Log {
	return &Log{
		inner:    logobj.New(name),
		fast:     fast,
		slow:     slow,
		charging: charging,
	}
}

// Inner exposes the underlying log object (read-mostly helpers).
func (l *Log) Inner() *logobj.Log { return l.inner }

// FastOps returns how many operations took the adopt-commit fast path.
func (l *Log) FastOps() int64 { return l.fastOps }

// SlowOps returns how many operations fell back to consensus.
func (l *Log) SlowOps() int64 { return l.slowOps }

// Append runs LOG.append(d) on behalf of an operation originated by traffic
// of group origin.
func (l *Log) Append(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum) int {
	l.charge(ctx, origin)
	return l.inner.Append(d)
}

// BumpAndLock runs LOG.bumpAndLock(d, k) on behalf of group origin.
func (l *Log) BumpAndLock(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum, k int) {
	l.charge(ctx, origin)
	l.inner.BumpAndLock(d, k)
}

// charge applies the §4.3 cost model: same-origin streaks ride the
// adopt-commit fast path (only g∩h participates); an origin switch means the
// replicas' proposals for the next slot conflict, so the operation pays a
// consensus round in the hosting group.
func (l *Log) charge(ctx *engine.Ctx, origin groups.GroupID) {
	contended := l.hasOrigin && l.lastOrigin != origin
	l.lastOrigin, l.hasOrigin = origin, true
	if contended {
		l.rec.Coordination(l.pair, l.slow, true)
	} else {
		l.rec.Coordination(l.pair, l.fast, false)
	}
	if !l.charging || ctx == nil {
		return
	}
	if contended {
		l.slowOps++
		ctx.E.ChargeSet(l.slow, 1)
		ctx.E.CountMessages(int64(2 * l.slow.Count()))
		return
	}
	l.fastOps++
	ctx.E.ChargeSet(l.fast, 1)
	ctx.E.CountMessages(int64(2 * l.fast.Count()))
}
