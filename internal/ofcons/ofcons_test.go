package ofcons

import (
	"sync"
	"testing"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/register"
)

// cluster wires n processes with ABD registers over majorities and one
// consensus instance with a fixed leader.
func cluster(n int, leader groups.Process) (*net.Network, []*Client) {
	nw := net.New(n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	cons := &Consensus{
		Name:   "c",
		Scope:  scope,
		Leader: func(groups.Process) groups.Process { return leader },
	}
	clients := make([]*Client, n)
	for p := 0; p < n; p++ {
		node := register.StartNode(nw, groups.Process(p))
		mk := func(name string) *register.Register {
			return &register.Register{
				Name:   name,
				Scope:  scope,
				Net:    nw,
				Quorum: register.Majority{Scope: scope},
			}
		}
		clients[p] = NewClient(cons, groups.Process(p), node, mk)
	}
	return nw, clients
}

// TestSoloLeaderDecidesOwnValue: obstruction freedom — running alone, the
// leader commits its own proposal at the first round.
func TestSoloLeaderDecidesOwnValue(t *testing.T) {
	nw, clients := cluster(3, 0)
	defer nw.Close()
	v, err := clients[0].Propose(42)
	if err != nil || v != 42 {
		t.Fatalf("solo propose = %d, %v; want 42", v, err)
	}
}

// TestAgreementWithRacingProposers: concurrent proposers all learn one
// value, and it is one of the proposals (validity).
func TestAgreementWithRacingProposers(t *testing.T) {
	nw, clients := cluster(5, 2)
	defer nw.Close()
	var wg sync.WaitGroup
	results := make([]int64, 5)
	for p := 0; p < 5; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v, err := clients[p].Propose(int64(100 + p))
			if err != nil {
				t.Errorf("p%d: %v", p, err)
				return
			}
			results[p] = v
		}(p)
	}
	wg.Wait()
	for p := 1; p < 5; p++ {
		if results[p] != results[0] {
			t.Fatalf("agreement violated: %v", results)
		}
	}
	if results[0] < 100 || results[0] > 104 {
		t.Fatalf("decided %d was never proposed", results[0])
	}
}

// TestLateProposerLearnsDecision: a proposal after the decision returns
// the decided value, not its own.
func TestLateProposerLearnsDecision(t *testing.T) {
	nw, clients := cluster(3, 0)
	defer nw.Close()
	if v, err := clients[0].Propose(7); err != nil || v != 7 {
		t.Fatalf("first propose: %d, %v", v, err)
	}
	// A non-leader late proposer reads D directly.
	if v, err := clients[1].Propose(99); err != nil || v != 7 {
		t.Fatalf("late propose learnt %d, %v; want 7", v, err)
	}
}

// TestToleratesMinorityCrash: the register quorums absorb a minority of
// crashed replicas.
func TestToleratesMinorityCrash(t *testing.T) {
	nw, clients := cluster(5, 0)
	defer nw.Close()
	nw.Crash(3)
	nw.Crash(4)
	v, err := clients[0].Propose(11)
	if err != nil || v != 11 {
		t.Fatalf("propose under minority crash = %d, %v", v, err)
	}
	if v, err := clients[1].Propose(22); err != nil || v != 11 {
		t.Fatalf("second proposer learnt %d, %v; want 11", v, err)
	}
}

// TestRepeatedInstancesIndependent: separate names decide separately.
func TestRepeatedInstancesIndependent(t *testing.T) {
	nw := net.New(3)
	defer nw.Close()
	scope := groups.NewProcSet(0, 1, 2)
	mkFor := func(nodeIdx groups.Process) (*register.Node, func(string) *register.Register) {
		node := register.StartNode(nw, nodeIdx)
		return node, func(name string) *register.Register {
			return &register.Register{
				Name: name, Scope: scope, Net: nw,
				Quorum: register.Majority{Scope: scope},
			}
		}
	}
	node0, mk0 := mkFor(0)
	mkFor(1) // replicas must run for quorums to form
	mkFor(2)
	leader := func(groups.Process) groups.Process { return 0 }
	c1 := NewClient(&Consensus{Name: "x", Scope: scope, Leader: leader}, 0, node0, mk0)
	c2 := NewClient(&Consensus{Name: "y", Scope: scope, Leader: leader}, 0, node0, mk0)
	v1, err1 := c1.Propose(1)
	v2, err2 := c2.Propose(2)
	if err1 != nil || err2 != nil || v1 != 1 || v2 != 2 {
		t.Fatalf("instances interfered: %d/%v, %d/%v", v1, err1, v2, err2)
	}
}
