package ofcons

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/register"
)

// chaosCluster wires n processes over the adversarial fabric: ABD register
// replicas underneath, one consensus instance on top — §4's exact stack,
// now running on a network that drops, duplicates, delays and reorders.
func chaosCluster(n int, seed int64, leader groups.Process) (*chaos.Chaos, []*Client) {
	c := chaos.Wrap(net.New(n), seed)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	cons := &Consensus{
		Name:   "c",
		Scope:  scope,
		Leader: func(groups.Process) groups.Process { return leader },
	}
	clients := make([]*Client, n)
	for p := 0; p < n; p++ {
		node := register.StartNode(c, groups.Process(p))
		mk := func(name string) *register.Register {
			return &register.Register{
				Name:   name,
				Scope:  scope,
				Net:    c,
				Quorum: register.Majority{Scope: scope},
			}
		}
		clients[p] = NewClient(cons, groups.Process(p), node, mk)
	}
	return c, clients
}

// TestChaosAgreementUnderFaults: racing proposers over a faulty fabric
// still agree on a single proposed value. Safety lives in the adopt-commit
// chain over linearizable registers; the fabric's misbehaviour is absorbed
// entirely by the register layer.
func TestChaosAgreementUnderFaults(t *testing.T) {
	c, clients := chaosCluster(5, 8, 2)
	defer c.Close()
	c.SetFaults(chaos.Faults{
		Drop: 0.08, Dup: 0.08, DelayMax: 150 * time.Microsecond, Reorder: true,
	})

	var wg sync.WaitGroup
	results := make([]int64, 5)
	for p := 0; p < 5; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := clients[p].Propose(int64(100 + p))
			if err != nil {
				t.Errorf("p%d: %v", p, err)
				return
			}
			results[p] = v
		}()
	}
	wg.Wait()
	for p := 1; p < 5; p++ {
		if results[p] != results[0] {
			t.Fatalf("agreement violated under faults: %v", results)
		}
	}
	if results[0] < 100 || results[0] > 104 {
		t.Fatalf("decided %d was never proposed", results[0])
	}
	if st := c.Stats(); st.DroppedRandom == 0 && st.Duplicated == 0 {
		t.Fatalf("fault mix injected nothing: %+v", st)
	}

	// Post-quiesce liveness: a late proposer learns the decision.
	c.Quiesce()
	if v, err := clients[1].Propose(999); err != nil || v != results[0] {
		t.Fatalf("late proposer after quiesce: %d, %v; want %d", v, err, results[0])
	}
}

// TestChaosLeaderPartitionedThenHealed: the Ω boost gates rounds on the
// leader sample, so a partitioned leader stalls the instance — but cannot
// damage it. Once the partition heals (Ω's "eventually" arriving), the
// leader commits and everyone learns one value.
func TestChaosLeaderPartitionedThenHealed(t *testing.T) {
	c, clients := chaosCluster(5, 9, 0)
	defer c.Close()
	c.Isolate(0)

	results := make([]int64, 2)
	var wg sync.WaitGroup
	for i, p := range []int{0, 1} {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := clients[p].Propose(int64(10 + p))
			if err != nil {
				t.Errorf("p%d: %v", p, err)
				return
			}
			results[i] = v
		}()
	}
	// The leader is cut off; nothing may decide yet. (The non-leader only
	// spins on the decision register.)
	time.Sleep(30 * time.Millisecond)
	c.Heal()
	wg.Wait()
	if results[0] != results[1] {
		t.Fatalf("agreement violated across the heal: %v", results)
	}
	if results[0] != 10 && results[0] != 11 {
		t.Fatalf("decided %d was never proposed", results[0])
	}
}
