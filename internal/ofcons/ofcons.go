// Package ofcons implements the paper's §4 construction path for consensus
// inside a group, exactly as stated: "Σ_g permits to build shared atomic
// registers in g. From these registers, we may construct an obstruction-
// free consensus and boost it with Ω_g" — the alpha of indulgent consensus.
//
// The building blocks are adopt-commit objects from atomic registers
// (collect-based, Gafni's round-by-round construction) chained round by
// round: a proposal is filtered through AC[1], AC[2], ... carrying adopted
// values forward; a commit at any round fixes the decision. Running solo a
// process commits at its first round (obstruction freedom); gating round
// execution on Ω's leader sample yields termination once the leader
// stabilises (the boost). Safety never depends on Ω.
//
// The registers underneath are the ABD quorum registers of
// internal/register, so the whole stack is message passing end to end.
package ofcons

import (
	"fmt"
	"time"

	"repro/internal/groups"
	"repro/internal/register"
)

// LeaderFunc is the Ω_g sample at p.
type LeaderFunc func(p groups.Process) groups.Process

// Consensus is one consensus instance over a scope of processes.
type Consensus struct {
	Name   string
	Scope  groups.ProcSet
	Leader LeaderFunc
}

// Client is a per-process handle. It owns register clients for the
// instance's registers, created lazily from the node.
type Client struct {
	cons *Consensus
	p    groups.Process
	node *register.Node
	nw   registerNetwork
	regs map[string]*register.Client
}

// registerNetwork materialises named registers for the client.
type registerNetwork interface {
	Register(name string) *register.Register
}

// NewClient builds the consensus client of process p. mkRegister
// materialises a named MWMR register over the instance's scope (the caller
// wires the network and quorum system — see the tests).
func NewClient(cons *Consensus, p groups.Process, node *register.Node, mkRegister func(name string) *register.Register) *Client {
	return &Client{
		cons: cons,
		p:    p,
		node: node,
		nw:   mkFunc(mkRegister),
		regs: make(map[string]*register.Client),
	}
}

type mkFunc func(name string) *register.Register

func (f mkFunc) Register(name string) *register.Register { return f(name) }

// reg returns (lazily) the client of a named register.
func (c *Client) reg(name string) *register.Client {
	if cl, ok := c.regs[name]; ok {
		return cl
	}
	cl := c.node.Client(c.nw.Register(name))
	c.regs[name] = cl
	return cl
}

// Register names: per round r and participant q, A holds q's round-r
// proposal and B its phase-2 value; D holds the decision. Values are
// encoded as v*4 | flags with flag bits: 1 = written, 2 = commit.
func (c *Client) aName(r int, q groups.Process) string {
	return fmt.Sprintf("%s/A/%d/%d", c.cons.Name, r, q)
}
func (c *Client) bName(r int, q groups.Process) string {
	return fmt.Sprintf("%s/B/%d/%d", c.cons.Name, r, q)
}
func (c *Client) dName() string { return c.cons.Name + "/D" }

const (
	flagWritten = 1
	flagCommit  = 2
)

func pack(v int64, commit bool) int64 {
	out := v<<2 | flagWritten
	if commit {
		out |= flagCommit
	}
	return out
}

func unpack(raw int64) (v int64, commit, written bool) {
	return raw >> 2, raw&flagCommit != 0, raw&flagWritten != 0
}

// acPropose runs one adopt-commit round over the registers: write the
// proposal, collect the others' proposals, derive a phase-2 value, write
// it, collect phase-2 values (Gafni's commit-adopt).
func (c *Client) acPropose(r int, v int64) (int64, bool, error) {
	if !c.reg(c.aName(r, c.p)).Write(pack(v, false)) {
		return 0, false, errShutdown
	}
	// Collect A.
	allSame := true
	for _, q := range c.cons.Scope.Members() {
		raw, ok := c.reg(c.aName(r, q)).Read()
		if !ok {
			return 0, false, errShutdown
		}
		if w, _, written := unpack(raw); written && w != v {
			allSame = false
		}
	}
	mine := pack(v, allSame)
	if !c.reg(c.bName(r, c.p)).Write(mine) {
		return 0, false, errShutdown
	}
	// Collect B.
	sawCommit := false
	commitVal := v
	sawOtherAdopt := false
	for _, q := range c.cons.Scope.Members() {
		raw, ok := c.reg(c.bName(r, q)).Read()
		if !ok {
			return 0, false, errShutdown
		}
		w, committed, written := unpack(raw)
		if !written {
			continue
		}
		if committed {
			sawCommit = true
			commitVal = w
		} else if w != v {
			sawOtherAdopt = true
		}
	}
	if sawCommit && !sawOtherAdopt {
		return commitVal, true, nil
	}
	if sawCommit {
		return commitVal, false, nil // adopt the committed value
	}
	return v, false, nil
}

var errShutdown = fmt.Errorf("ofcons: network shut down")

// Propose decides a value for the instance. Safety comes from the
// round-by-round adopt-commit chain; liveness from the Ω boost (only the
// leader sample advances rounds; everyone else spins on the decision
// register).
func (c *Client) Propose(v int64) (int64, error) {
	for r := 1; ; r++ {
		// Check the decision register first.
		if raw, ok := c.reg(c.dName()).Read(); !ok {
			return 0, errShutdown
		} else if dv, _, written := unpack(raw); written {
			return dv, nil
		}
		// The Ω boost: only the current leader runs rounds.
		if c.cons.Leader(c.p) != c.p {
			time.Sleep(200 * time.Microsecond)
			r-- // stay at the same round while waiting
			continue
		}
		got, committed, err := c.acPropose(r, v)
		if err != nil {
			return 0, err
		}
		v = got
		if committed {
			if !c.reg(c.dName()).Write(pack(v, true)) {
				return 0, errShutdown
			}
			return v, nil
		}
	}
}
