package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, w WAL) []Record {
	t.Helper()
	var got []Record
	if err := w.Replay(func(r Record) error {
		got = append(got, Record{Kind: r.Kind, Data: append([]byte(nil), r.Data...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func wantRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = {%d %x}, want {%d %x}",
				i, got[i].Kind, got[i].Data, want[i].Kind, want[i].Data)
		}
	}
}

func TestMemSyncAndPowerCycle(t *testing.T) {
	m := NewMem()
	a := Record{Kind: 1, Data: []byte("alpha")}
	b := Record{Kind: 2, Data: []byte("beta")}
	if err := m.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced append must not survive the power cycle.
	if err := m.Append(b); err != nil {
		t.Fatal(err)
	}
	m.PowerCycle()
	wantRecords(t, collect(t, m), []Record{a})
	// ... but a synced one must.
	if err := m.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	m.PowerCycle()
	wantRecords(t, collect(t, m), []Record{a, b})
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var want []Record
	w, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, collect(t, w), nil)
	for i := 0; i < 100; i++ {
		r := Record{Kind: uint8(i % 7), Data: []byte(fmt.Sprintf("record-%03d", i))}
		want = append(want, r)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A second incarnation sees everything and appends into a new segment.
	w2, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, collect(t, w2), want)
	if n := w2.RecoveredRecords(); n != int64(len(want)) {
		t.Fatalf("RecoveredRecords = %d, want %d", n, len(want))
	}
	extra := Record{Kind: 9, Data: []byte("post-recovery")}
	want = append(want, extra)
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, collect(t, w3), want)
}

func TestFileSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenFile(dir, FileOptions{SegmentBytes: 128, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{Kind: 1, Data: []byte(fmt.Sprintf("rotation-record-%03d", i))}
		want = append(want, r)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("expected multiple segments after rotation, got %d files", len(ents))
	}
	w2, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, collect(t, w2), want)
}

// writeSegment writes raw bytes as the WAL's first segment.
func writeSegment(t *testing.T, dir string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// frame encodes one record the way File does.
func frame(kind uint8, data []byte) []byte {
	body := append([]byte{kind}, data...)
	var hdr [binary.MaxVarintLen64 + 4]byte
	k := binary.PutUvarint(hdr[:], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[k:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	return append(hdr[:k+4], body...)
}

func TestFileTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	a, b := Record{Kind: 1, Data: []byte("first")}, Record{Kind: 2, Data: []byte("second")}
	raw := append(frame(a.Kind, a.Data), frame(b.Kind, b.Data)...)
	for cut := 0; cut <= len(raw); cut++ {
		sub := t.TempDir()
		writeSegment(t, sub, raw[:cut])
		w, err := OpenFile(sub, FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, w)
		var want []Record
		if cut >= len(frame(a.Kind, a.Data)) {
			want = append(want, a)
		}
		if cut == len(raw) {
			want = append(want, b)
		}
		wantRecords(t, got, want)
	}
	_ = dir
}

func TestFileCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	a, b, c := Record{Kind: 1, Data: []byte("aaaa")}, Record{Kind: 2, Data: []byte("bbbb")}, Record{Kind: 3, Data: []byte("cccc")}
	raw := append(frame(a.Kind, a.Data), frame(b.Kind, b.Data)...)
	flip := len(raw) - 2 // inside b's payload
	raw[flip] ^= 0x40
	raw = append(raw, frame(c.Kind, c.Data)...)
	writeSegment(t, dir, raw)
	w, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// b fails its checksum; c sits after the corruption and must NOT be
	// replayed even though its own frame is intact.
	wantRecords(t, collect(t, w), []Record{a})
}

func TestFileCorruptionInEarlierSegmentMasksLater(t *testing.T) {
	dir := t.TempDir()
	a := Record{Kind: 1, Data: []byte("early")}
	raw := frame(a.Kind, a.Data)
	raw[len(raw)-1] ^= 0x01
	writeSegment(t, dir, raw)
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002.seg"),
		frame(2, []byte("later")), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, collect(t, w), nil)
}
