package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// MaxRecord bounds a single WAL record's encoded body (kind + payload),
// mirroring wire.MaxFrame: a length prefix above it in a segment is treated
// as corruption, not an allocation request.
const MaxRecord = 1 << 20

// crcTable is the Castagnoli polynomial — hardware-accelerated on the
// platforms a daemon runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FileOptions parameterise a file-backed WAL.
type FileOptions struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// exceeds this size. Default 4 MiB.
	SegmentBytes int64
	// NoFsync skips the fsync in Sync: records still reach the OS on every
	// Sync (surviving a process kill) but not necessarily the disk
	// (a machine crash can lose the tail). The -fsync=none deployment knob.
	NoFsync bool
	// Counters, when non-nil, receives append/sync/recovery accounting.
	Counters *obs.WALCounters
}

// File is the file-backed WAL: a directory of checksummed append-only
// segment files.
//
// On-disk frame, per record:
//
//	uvarint  body length        (≤ MaxRecord)
//	u32 LE   crc32-C of body
//	body     kind byte + payload
//
// Recovery replays segments in order and stops at the first frame that is
// torn (short read at EOF), oversized, or fails its checksum — the longest
// valid prefix. Writes after recovery go to a brand-new segment, so a torn
// tail is never appended after; the garbage bytes stay where they fell and
// are ignored by every future replay.
type File struct {
	dir  string
	opts FileOptions

	mu        sync.Mutex
	segs      []string // existing segments at Open, replay order
	nextSeg   int      // index of the first segment this incarnation writes
	f         *os.File
	w         *bufio.Writer
	written   int64 // bytes in the current segment
	dirty     bool  // bytes flushed to the OS since the last fsync
	closed    bool
	recovered int64 // records handed out by Replay
}

// OpenFile opens (creating if needed) a file-backed WAL rooted at dir.
func OpenFile(dir string, opts FileOptions) (*File, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	fw := &File{dir: dir, opts: opts, nextSeg: 1}
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); err == nil {
			fw.segs = append(fw.segs, filepath.Join(dir, e.Name()))
			if idx >= fw.nextSeg {
				fw.nextSeg = idx + 1
			}
		}
	}
	sort.Strings(fw.segs)
	return fw, nil
}

// Replay scans the segments present at Open in order, stopping at the first
// invalid frame.
func (fw *File) Replay(fn func(Record) error) error {
	start := time.Now()
	var n int64
	for _, path := range fw.segs {
		more, cnt, err := replaySegment(path, fn)
		n += cnt
		if err != nil {
			return err
		}
		if !more {
			break // torn or corrupt frame: everything after is untrusted
		}
	}
	fw.mu.Lock()
	fw.recovered = n
	fw.mu.Unlock()
	fw.opts.Counters.AddRecovery(n, time.Since(start))
	return nil
}

// replaySegment feeds one segment's valid frames to fn. It returns
// more=false when the segment ended in a torn or corrupt frame (replay must
// not continue into later segments) and propagates only fn's errors —
// corruption is an expected crash artifact, not a failure.
func replaySegment(path string, fn func(Record) error) (more bool, n int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		// The segment existed at Open; if it cannot be read now, treat it
		// like corruption and stop rather than skipping a gap.
		return false, 0, nil //nolint:nilerr
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var body []byte
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return errors.Is(err, io.EOF), n, nil // clean EOF ⇒ next segment
		}
		if size == 0 || size > MaxRecord {
			return false, n, nil
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return false, n, nil
		}
		if cap(body) < int(size) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(br, body); err != nil {
			return false, n, nil
		}
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return false, n, nil
		}
		n++
		if err := fn(Record{Kind: body[0], Data: body[1:]}); err != nil {
			return false, n, err
		}
	}
}

// RecoveredRecords reports how many records the last Replay handed out.
func (fw *File) RecoveredRecords() int64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.recovered
}

// Append frames and buffers rec; it becomes durable at the next Sync.
func (fw *File) Append(rec Record) error {
	if len(rec.Data)+1 > MaxRecord {
		return fmt.Errorf("storage: record of %d bytes exceeds MaxRecord", len(rec.Data))
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.closed {
		return errors.New("storage: append on closed wal")
	}
	if err := fw.ensureSegmentLocked(); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64 + 4]byte
	bodyLen := uint64(len(rec.Data) + 1)
	k := binary.PutUvarint(hdr[:], bodyLen)
	crc := crc32.Checksum([]byte{rec.Kind}, crcTable)
	crc = crc32.Update(crc, crcTable, rec.Data)
	binary.LittleEndian.PutUint32(hdr[k:], crc)
	if _, err := fw.w.Write(hdr[:k+4]); err != nil {
		return err
	}
	if err := fw.w.WriteByte(rec.Kind); err != nil {
		return err
	}
	if _, err := fw.w.Write(rec.Data); err != nil {
		return err
	}
	fw.written += int64(k) + 4 + int64(bodyLen)
	fw.dirty = true
	fw.opts.Counters.AddAppend(len(rec.Data))
	return nil
}

// Sync flushes buffered frames to the OS and (unless NoFsync) to stable
// storage — the group-commit barrier.
func (fw *File) Sync() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.closed || fw.f == nil {
		return nil
	}
	if err := fw.w.Flush(); err != nil {
		return err
	}
	if fw.dirty && !fw.opts.NoFsync {
		if err := fw.f.Sync(); err != nil {
			return err
		}
	}
	fw.dirty = false
	fw.opts.Counters.IncSync()
	// Rotate after the barrier so a segment always ends on a whole frame.
	if fw.written >= fw.opts.SegmentBytes {
		if err := fw.f.Close(); err != nil {
			return err
		}
		fw.f, fw.w = nil, nil
		fw.opts.Counters.IncRotation()
	}
	return nil
}

// Close flushes and releases the current segment.
func (fw *File) Close() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.closed {
		return nil
	}
	fw.closed = true
	if fw.f == nil {
		return nil
	}
	if err := fw.w.Flush(); err != nil {
		fw.f.Close()
		return err
	}
	return fw.f.Close()
}

// ensureSegmentLocked opens the next segment file for writing.
func (fw *File) ensureSegmentLocked() error {
	if fw.f != nil {
		return nil
	}
	path := filepath.Join(fw.dir, fmt.Sprintf("wal-%08d.seg", fw.nextSeg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: new segment: %w", err)
	}
	fw.nextSeg++
	fw.f = f
	fw.w = bufio.NewWriter(f)
	fw.written = 0
	if !fw.opts.NoFsync {
		// Make the directory entry durable too, so the segment itself
		// survives a machine crash right after creation.
		if d, err := os.Open(fw.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
