package storage

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Mem is the in-memory WAL. It has the same durability *protocol* as File —
// appends buffer, Sync commits — but "durable" means "survives a simulated
// power cycle of the owning node", not a real machine crash: the records
// live in this process's heap. That is exactly what in-process power-cycle
// tests need (hand the dead node's Mem to its replacement and Replay), and
// it keeps the default live configuration free of disk I/O.
type Mem struct {
	mu      sync.Mutex
	durable []Record // committed by Sync; what Replay sees
	pending []Record // appended, not yet synced
	c       *obs.WALCounters
}

// NewMem builds an empty in-memory WAL.
func NewMem() *Mem { return &Mem{} }

// Observe attaches a counter block (nil detaches). Returns m for chaining.
func (m *Mem) Observe(c *obs.WALCounters) *Mem {
	m.mu.Lock()
	m.c = c
	m.mu.Unlock()
	return m
}

// Replay hands back the durable records in append order.
func (m *Mem) Replay(fn func(Record) error) error {
	start := time.Now()
	m.mu.Lock()
	recs := m.durable
	c := m.c
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	c.AddRecovery(int64(len(recs)), time.Since(start))
	return nil
}

// Append buffers a copy of rec for the next Sync.
func (m *Mem) Append(rec Record) error {
	data := append([]byte(nil), rec.Data...)
	m.mu.Lock()
	m.pending = append(m.pending, Record{Kind: rec.Kind, Data: data})
	c := m.c
	m.mu.Unlock()
	c.AddAppend(len(data))
	return nil
}

// Sync commits all pending records.
func (m *Mem) Sync() error {
	m.mu.Lock()
	if len(m.pending) > 0 {
		m.durable = append(m.durable, m.pending...)
		m.pending = m.pending[:0]
	}
	c := m.c
	m.mu.Unlock()
	c.IncSync()
	return nil
}

// Close is a no-op for the in-memory WAL.
func (m *Mem) Close() error { return nil }

// PowerCycle simulates kill -9 on the owning node: unsynced appends are
// lost and the log is rearmed so a recovered node may Replay it again. The
// caller must ensure the dead node no longer touches the WAL (in tests the
// old node's transport endpoint is restarted first, parking its loops).
func (m *Mem) PowerCycle() {
	m.mu.Lock()
	m.pending = m.pending[:0]
	m.mu.Unlock()
}

// Len reports the number of durable records (test hook).
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.durable)
}
