package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment reader as the tail of
// an otherwise valid log: replay must never panic, must always recover the
// two good records, and whatever it recovers beyond them must be a frame
// the writer could actually have produced (round-trip property).
func FuzzWALReplay(f *testing.F) {
	good := append(frameF(1, []byte("good-one")), frameF(2, []byte("good-two"))...)
	f.Add([]byte{})
	f.Add(frameF(3, []byte("a third valid record")))
	f.Add(frameF(3, []byte("torn"))[:3])        // torn mid-header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}) // absurd varint length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00}) // zero-length body
	corrupt := frameF(4, []byte("checksum-victim"))
	corrupt[len(corrupt)-1] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-00000001.seg")
		if err := os.WriteFile(seg, append(append([]byte(nil), good...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenFile(dir, FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		if err := w.Replay(func(r Record) error {
			got = append(got, Record{Kind: r.Kind, Data: append([]byte(nil), r.Data...)})
			return nil
		}); err != nil {
			t.Fatalf("replay returned error on corrupt input: %v", err)
		}
		if len(got) < 2 {
			t.Fatalf("lost the valid prefix: recovered %d records", len(got))
		}
		if got[0].Kind != 1 || !bytes.Equal(got[0].Data, []byte("good-one")) ||
			got[1].Kind != 2 || !bytes.Equal(got[1].Data, []byte("good-two")) {
			t.Fatalf("valid prefix mangled: %+v", got[:2])
		}
		// Anything extra must re-encode to a prefix of the fuzzed tail.
		var reenc []byte
		for _, r := range got[2:] {
			reenc = append(reenc, frameF(r.Kind, r.Data)...)
		}
		if !bytes.HasPrefix(tail, reenc) {
			t.Fatalf("recovered records beyond the valid prefix do not round-trip:\ntail  %x\nreenc %x", tail, reenc)
		}
	})
}

// frameF mirrors File's frame encoding for fuzz corpus construction.
func frameF(kind uint8, data []byte) []byte {
	body := append([]byte{kind}, data...)
	var hdr [binary.MaxVarintLen64 + 4]byte
	k := binary.PutUvarint(hdr[:], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[k:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	return append(hdr[:k+4], body...)
}
