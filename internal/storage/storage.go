// Package storage provides the write-ahead log behind the live substrate's
// durable acceptors.
//
// A WAL is a flat, append-only sequence of opaque records. Callers (the
// paxos acceptor, primarily) append records describing state transitions
// they are about to externalize — a promise, an accepted value, a decide —
// and call Sync before sending the message that reveals the transition to
// the rest of the system. On restart, Replay hands back the durable prefix
// in append order and the caller rebuilds its in-memory state before
// serving traffic.
//
// Two implementations:
//
//   - Mem keeps records in memory. It is the default for in-process
//     deployments: it preserves today's behavior (a crashed process loses
//     nothing because nothing outlives the process anyway) while letting
//     power-cycle tests hand a dead node's log to its replacement.
//   - File persists records to checksummed segment files in a directory,
//     with group-commit fsync batching and segment rotation; it is what a
//     daemon's -data-dir points at.
//
// The interface is deliberately tiny: no keys, no indices, no truncation.
// Snapshot-based log compaction is a follow-on; the acceptor's state for a
// run is small enough that full replay is cheap.
package storage

// Record is one durable WAL entry: a caller-defined kind tag plus an opaque
// payload. The WAL never interprets either field; kinds let one log carry
// several record schemas (promise, accept, decide, ...).
type Record struct {
	Kind uint8
	Data []byte
}

// WAL is an append-only crash-durable record log.
//
// Usage contract: Replay exactly once, before the first Append; then any
// number of Append/Sync rounds; then Close. Append buffers — a record is
// not durable (and must not be relied upon) until a subsequent Sync
// returns. Batching several Appends under one Sync is the group-commit
// path and is how callers amortize fsync cost across a burst of messages.
//
// Implementations are safe for concurrent use, but the ordering guarantee
// is per-caller: records appended by one goroutine are replayed in that
// goroutine's append order.
type WAL interface {
	// Replay invokes fn for every durable record in append order, stopping
	// early if fn returns an error (which it then returns). The Data slice
	// passed to fn is only valid during the call.
	Replay(fn func(Record) error) error

	// Append buffers rec for the next Sync. The record's Data is copied;
	// the caller may reuse the slice.
	Append(rec Record) error

	// Sync makes every record appended so far durable. It is the
	// group-commit barrier: one Sync covers all Appends since the last.
	Sync() error

	// Close flushes buffered records (without forcing durability beyond
	// what Sync already guaranteed) and releases resources.
	Close() error
}
