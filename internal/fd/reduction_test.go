package fd

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
)

// TestProp51_DerivedGammaIsValid: the γ built from indicators satisfies
// accuracy (perpetually) and completeness (eventually) on random patterns —
// Proposition 51: ∧ 1^{g∩h} ≥ γ.
func TestProp51_DerivedGammaIsValid(t *testing.T) {
	topo := groups.Figure1()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		pat := randomPattern(rng, 5, 4)
		mu := NewMu(topo, pat, Options{Delay: failure.Time(1 + rng.Intn(6))})
		dg := NewDerivedGamma(topo, mu)

		for p := 0; p < 5; p++ {
			proc := groups.Process(p)
			for _, tm := range []failure.Time{0, 10, 40, 200} {
				out := map[groups.GroupSet]bool{}
				for _, f := range dg.Families(proc, tm) {
					out[f.Groups] = true
				}
				for _, f := range topo.FamiliesOfProcess(proc) {
					if !out[f.Groups] && !topo.FamilyFaulty(f, pat.CrashedAt(tm)) {
						t.Fatalf("trial %d: derived γ dropped correct family %v at t=%d (pat=%v)",
							trial, f.Groups, tm, pat)
					}
				}
			}
			// Completeness at correct processes, late.
			if !pat.IsCorrect(proc) {
				continue
			}
			late := pat.Horizon() + 100
			for _, f := range dg.Families(proc, late) {
				if topo.FamilyFaulty(f, pat.CrashedAt(late)) {
					t.Fatalf("trial %d: derived γ kept faulty family %v", trial, f.Groups)
				}
			}
		}
	}
}

// TestProp51_RandomTopologies extends the derived-γ validity check to
// random topologies, including dense (K4-like) intersection graphs.
func TestProp51_RandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(3)
		k := 3 + rng.Intn(2)
		gs := make([]groups.ProcSet, k)
		for i := range gs {
			var g groups.ProcSet
			for g.Count() < 2+rng.Intn(2) {
				g = g.Add(groups.Process(rng.Intn(n)))
			}
			gs[i] = g
		}
		topo := groups.MustNew(n, gs...)
		pat := randomPattern(rng, n, n-1)
		mu := NewMu(topo, pat, Options{Delay: 3})
		dg := NewDerivedGamma(topo, mu)
		for p := 0; p < n; p++ {
			proc := groups.Process(p)
			for _, tm := range []failure.Time{0, 20, 300} {
				out := map[groups.GroupSet]bool{}
				for _, f := range dg.Families(proc, tm) {
					out[f.Groups] = true
				}
				for _, f := range topo.FamiliesOfProcess(proc) {
					if !out[f.Groups] && !topo.FamilyFaulty(f, pat.CrashedAt(tm)) {
						t.Fatalf("trial %d: accuracy broken on %v", trial, topo)
					}
				}
			}
		}
	}
}

// TestProp51_DerivedMatchesIdealEventually: after stabilisation the derived
// γ agrees with the ideal γ on the Figure 1 scenario.
func TestProp51_DerivedMatchesIdealEventually(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 10)
	mu := NewMu(topo, pat, Options{Delay: 4})
	dg := NewDerivedGamma(topo, mu)
	late := failure.Time(200)

	ideal := map[groups.GroupSet]bool{}
	for _, f := range mu.Gamma().Families(0, late) {
		ideal[f.Groups] = true
	}
	derived := map[groups.GroupSet]bool{}
	for _, f := range dg.Families(0, late) {
		derived[f.Groups] = true
	}
	if len(ideal) != len(derived) {
		t.Fatalf("derived %v != ideal %v", derived, ideal)
	}
	for k := range ideal {
		if !derived[k] {
			t.Fatalf("derived γ missing %v", k)
		}
	}
	// Ring-granular view agrees too.
	if got, want := dg.ActiveEdges(0, 0, late), mu.GammaGroupsAt(0, 0, late); got != want {
		t.Fatalf("derived γ(g1) = %v, ideal %v", got, want)
	}
}

// TestCor52_GammaCannotBuildIndicator replays Corollary 52's separation
// argument with concrete histories: the γ histories of two patterns — one
// where a third group h' of a family is initially faulty and g∩h correct,
// one where additionally g∩h is faulty from the start — are identical
// (both make every family containing g,h faulty immediately), yet a correct
// emulation of 1^{g∩h} must output false forever in the first and
// eventually true in the second. No transformation from γ alone can tell
// them apart.
func TestCor52_GammaCannotBuildIndicator(t *testing.T) {
	topo := groups.Figure1()
	// Families containing both g1 and g2: f = {g1,g2,g3} and f'' = G. Make
	// them faulty from the start by crashing g1∩g3 ... p1 (index 0) kills
	// every family. g1∩g2 = {p2} (index 1).
	patA := failure.NewPattern(5).WithCrash(0, 0)                 // g∩h = {p2} correct
	patB := failure.NewPattern(5).WithCrash(0, 0).WithCrash(1, 0) // g∩h faulty too
	gmA := NewGamma(topo, patA, Options{})
	gmB := NewGamma(topo, patB, Options{})

	// Identical γ histories at every surviving process of g ⊕ h and time.
	for _, p := range []groups.Process{2} { // p3 ∈ g2 \ g1 survives in both
		for _, tm := range []failure.Time{0, 5, 50, 500} {
			a := gmA.Families(p, tm)
			b := gmB.Families(p, tm)
			if len(a) != len(b) {
				t.Fatalf("γ histories differ (%d vs %d families) — separation broken", len(a), len(b))
			}
			for i := range a {
				if a[i].Groups != b[i].Groups {
					t.Fatalf("γ histories differ at t=%d", tm)
				}
			}
		}
	}
	// Yet the indicator must answer differently.
	indA := NewIndicator(patA, topo.Intersection(0, 1), topo.Group(0).Union(topo.Group(1)), Options{})
	indB := NewIndicator(patB, topo.Intersection(0, 1), topo.Group(0).Union(topo.Group(1)), Options{})
	if indA.Faulty(2, 500) {
		t.Fatalf("1^{g∩h} must stay false while g∩h is correct")
	}
	if !indB.Faulty(2, 500) {
		t.Fatalf("1^{g∩h} must eventually fire once g∩h crashed")
	}
}

// TestPerfectBuildsIndicators: the P ⇒ 1^{g∩h} reduction of the ≤ P row.
func TestPerfectBuildsIndicators(t *testing.T) {
	topo := groups.Figure1()
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 60; trial++ {
		pat := randomPattern(rng, 5, 5)
		pd := NewPerfect(pat, Options{Delay: failure.Time(rng.Intn(5))})
		watched := topo.Intersection(0, 1) // g1∩g2
		scope := topo.Group(0).Union(topo.Group(1))
		ind := &DerivedIndicatorFromPerfect{P: pd, Watched: watched, Scope: scope}
		for _, p := range scope.Members() {
			for _, tm := range []failure.Time{0, 7, 30, 200} {
				if ind.Faulty(p, tm) && !watched.SubsetOf(pat.CrashedAt(tm)) {
					t.Fatalf("trial %d: derived indicator fired early", trial)
				}
			}
			if watched.SubsetOf(pat.Faulty()) && pat.IsCorrect(p) {
				if !ind.Faulty(p, pat.Horizon()+100) {
					t.Fatalf("trial %d: derived indicator never fired", trial)
				}
			}
		}
	}
}
