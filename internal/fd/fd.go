// Package fd provides the failure detectors of the paper: the quorum
// detector Σ, the leader detector Ω, the new cyclicity detector γ, the
// indicator detector 1^P, and the perfect detector P — together with set
// restriction D_P and the conjunction μ = (∧ Σ_{g∩h}) ∧ (∧ Ω_g) ∧ γ.
//
// The implementations here are "ideal": their histories are derived from a
// failure pattern, exactly as a failure-detector history H ∈ D(F) is in the
// model. A stabilisation delay and a seed introduce the pre-convergence
// misbehaviour the classes allow (wrong leaders, large quorums) without ever
// violating their perpetual properties (Σ intersection, γ accuracy, 1^P
// accuracy, P strong accuracy).
package fd

import (
	"math/rand"

	"repro/internal/failure"
	"repro/internal/groups"
)

// Sigma is the quorum failure detector Σ_P. Quorum returns ⊥ (false) for
// processes outside P; any two returned quorums intersect, and eventually
// quorums at correct processes contain only correct processes.
type Sigma interface {
	Quorum(p groups.Process, t failure.Time) (groups.ProcSet, bool)
}

// Omega is the leader failure detector Ω_P: eventually every correct process
// of P is returned the same correct leader of P forever.
type Omega interface {
	Leader(p groups.Process, t failure.Time) (groups.Process, bool)
}

// Gamma is the cyclicity failure detector γ: it returns the cyclic families
// in F(p) the process is currently involved with. Accuracy: an omitted
// family of F(p) is faulty now. Completeness: a faulty family is eventually
// omitted forever at correct processes.
//
// ActiveEdges refines the family output to the granularity Algorithm 3
// actually computes (its per-closed-path failed[π] flags): the groups h such
// that the edge (g,h) lies on a closed path of a family of F(p) that is
// still alive (none of the path's edges has crashed entirely). Algorithm 1
// derives its γ(g) waiting set from ActiveEdges; see the GammaGroups note
// for why the family-granular derivation of the paper can block liveness on
// dense intersection graphs and why the ring-granular one is both safe and
// live.
type Gamma interface {
	Families(p groups.Process, t failure.Time) []groups.Family
	ActiveEdges(p groups.Process, g groups.GroupID, t failure.Time) groups.GroupSet
}

// Indicator is the indicator failure detector 1^P (scoped to some processes):
// it returns true only if all of P have crashed (accuracy), and eventually
// returns true forever once they have (completeness).
type Indicator interface {
	Faulty(p groups.Process, t failure.Time) bool
}

// Perfect is the perfect failure detector P: Suspected never contains an
// alive process (strong accuracy) and eventually contains every crashed
// process forever (strong completeness).
type Perfect interface {
	Suspected(p groups.Process, t failure.Time) groups.ProcSet
}

// Options tune an ideal detector history.
type Options struct {
	// Delay is the stabilisation lag: how long after the enabling event
	// (a crash, a family fault) the detector output converges.
	Delay failure.Time
	// Seed drives pre-stabilisation misbehaviour where the class allows it.
	Seed int64
}

// ---------------------------------------------------------------------------
// Σ

type idealSigma struct {
	pat   *failure.Pattern
	scope groups.ProcSet
	opt   Options
}

// NewSigma returns an ideal Σ_P for the given pattern, restricted to scope.
//
// The history returned is Quorum(p,t) = alive(t) ∩ P before stabilisation
// and Correct ∩ P afterwards (falling back to alive ∩ P while correct ∩ P is
// empty). Since alive sets only shrink and contain Correct, any two quorums
// taken at any times intersect whenever some member of P is correct; when
// every member of P is faulty the intersection property is only exercised by
// queries made while callers are alive, which the alive sets satisfy.
func NewSigma(pat *failure.Pattern, scope groups.ProcSet, opt Options) Sigma {
	return &idealSigma{pat: pat, scope: scope, opt: opt}
}

func (s *idealSigma) Quorum(p groups.Process, t failure.Time) (groups.ProcSet, bool) {
	if !s.scope.Has(p) {
		return 0, false
	}
	correct := s.pat.Correct().Intersect(s.scope)
	if !correct.Empty() && t >= s.stabTime() {
		return correct, true
	}
	alive := s.pat.AliveAt(t).Intersect(s.scope)
	if alive.Empty() {
		// Every member of P crashed; return the full scope (queries at this
		// point can only come from processes that are themselves crashed in
		// the pattern, which the model rules out).
		return s.scope, true
	}
	return alive, true
}

func (s *idealSigma) stabTime() failure.Time { return s.pat.Horizon() + s.opt.Delay }

// ---------------------------------------------------------------------------
// Ω

type idealOmega struct {
	pat   *failure.Pattern
	scope groups.ProcSet
	opt   Options
	perm  []groups.Process // pre-stabilisation rotation
}

// NewOmega returns an ideal Ω_P: before stabilisation the output rotates
// pseudo-randomly over alive members of P; afterwards it is the smallest
// correct member of P forever.
func NewOmega(pat *failure.Pattern, scope groups.ProcSet, opt Options) Omega {
	members := scope.Members()
	rng := rand.New(rand.NewSource(opt.Seed + int64(scope)))
	perm := make([]groups.Process, len(members))
	for i, j := range rng.Perm(len(members)) {
		perm[i] = members[j]
	}
	return &idealOmega{pat: pat, scope: scope, opt: opt, perm: perm}
}

func (o *idealOmega) Leader(p groups.Process, t failure.Time) (groups.Process, bool) {
	if !o.scope.Has(p) {
		return 0, false
	}
	correct := o.pat.Correct().Intersect(o.scope)
	if !correct.Empty() && t >= o.pat.Horizon()+o.opt.Delay {
		return correct.Min(), true
	}
	if len(o.perm) == 0 {
		return p, true
	}
	// Rotate over the scope, skipping already-crashed processes when one is
	// available (an Ω history may output crashed processes before
	// stabilisation; rotating over alive ones keeps runs livelier).
	alive := o.pat.AliveAt(t).Intersect(o.scope)
	cand := o.perm[int(t/16)%len(o.perm)]
	if !alive.Empty() && !alive.Has(cand) {
		return alive.Min(), true
	}
	return cand, true
}

// ---------------------------------------------------------------------------
// γ

type idealGamma struct {
	topo *groups.Topology
	pat  *failure.Pattern
	opt  Options
	// faultyAt[i] is when family i of the topology becomes faulty (Never if
	// it stays correct in this pattern).
	faultyAt []failure.Time
	// pathFaultyAt[i][j] is when path j of family i becomes faulty: the
	// earliest time one of its edges has crashed entirely.
	pathFaultyAt [][]failure.Time
}

// NewGamma returns an ideal γ for the topology and pattern: a family of F(p)
// is output until Delay after it becomes faulty, then omitted forever. The
// output therefore satisfies accuracy perpetually and completeness
// eventually.
func NewGamma(topo *groups.Topology, pat *failure.Pattern, opt Options) Gamma {
	fams := topo.Families()
	faultyAt := make([]failure.Time, len(fams))
	pathFaultyAt := make([][]failure.Time, len(fams))
	for i, f := range fams {
		faultyAt[i] = failure.FamilyFaultyAt(pat, topo, f)
		pathFaultyAt[i] = make([]failure.Time, len(f.CPaths))
		for j, path := range f.CPaths {
			pathFaultyAt[i][j] = pathFaultyTime(topo, pat, path)
		}
	}
	return &idealGamma{
		topo:         topo,
		pat:          pat,
		opt:          opt,
		faultyAt:     faultyAt,
		pathFaultyAt: pathFaultyAt,
	}
}

// pathFaultyTime returns the earliest time some edge of the closed path has
// crashed entirely (Never if all edges keep a correct member).
func pathFaultyTime(topo *groups.Topology, pat *failure.Pattern, path []groups.GroupID) failure.Time {
	earliest := failure.Never
	for i := 0; i+1 < len(path); i++ {
		at := pat.SetFaultyAt(topo.Intersection(path[i], path[i+1]))
		if at == failure.Never {
			continue
		}
		if earliest == failure.Never || at < earliest {
			earliest = at
		}
	}
	return earliest
}

func (g *idealGamma) Families(p groups.Process, t failure.Time) []groups.Family {
	all := g.topo.Families()
	mine := g.topo.FamiliesOfProcess(p)
	out := make([]groups.Family, 0, len(mine))
	for _, f := range mine {
		idx := familyIndex(all, f)
		fa := g.faultyAt[idx]
		if fa != failure.Never && t >= fa+g.opt.Delay {
			continue // omitted forever: family is faulty
		}
		out = append(out, f)
	}
	return out
}

// ActiveEdges implements ring-granular γ(g): h is returned when edge (g,h)
// lies on a closed path, of a family in F(p), none of whose edges has
// crashed entirely (modulo the stabilisation delay).
func (g *idealGamma) ActiveEdges(p groups.Process, gid groups.GroupID, t failure.Time) groups.GroupSet {
	var out groups.GroupSet
	all := g.topo.Families()
	for _, f := range g.topo.FamiliesOfProcess(p) {
		if !f.Groups.Has(gid) {
			continue
		}
		idx := familyIndex(all, f)
		for j, path := range f.CPaths {
			fa := g.pathFaultyAt[idx][j]
			if fa != failure.Never && t >= fa+g.opt.Delay {
				continue // this cycle class is dead
			}
			for i := 0; i+1 < len(path); i++ {
				if path[i] == gid {
					out = out.Add(path[i+1])
				}
				if path[i+1] == gid {
					out = out.Add(path[i])
				}
			}
		}
	}
	return out
}

func familyIndex(all []groups.Family, f groups.Family) int {
	for i := range all {
		if all[i].Groups == f.Groups {
			return i
		}
	}
	panic("fd: family not in topology")
}

// GammaGroups derives the waiting set γ(g) Algorithm 1 uses at lines 18 and
// 32 from a γ output.
//
// The paper derives γ(g) at family granularity ("the groups h such that
// g∩h ≠ ∅ and g and h belong to a cyclic family output by γ"). On dense
// intersection graphs this derivation can block liveness: when g∩h crashes
// entirely but a family containing both g and h stays correct through
// hamiltonian cycles that avoid the edge (g,h) (e.g. a K4 intersection
// graph), γ's accuracy forces the family to remain in the output, h remains
// in γ(g), and the tuples (m,h,-)/(m,h) that only g∩h can write never
// appear — the claim inside the paper's Lemma 25 ("if g∩h is faulty then
// eventually every cyclic family with g,h ∈ f is faulty") does not hold for
// such graphs. We therefore derive γ(g) at the granularity Algorithm 3's
// emulation really measures — per closed-path class — which restores
// liveness (the edge (g,h) dies with g∩h, killing every class through it)
// and preserves safety (a delivery cycle C is itself a closed path; while
// all of its edges are alive, every edge of C is in the waiting sets, which
// is all the ordering proof uses).
func GammaGroups(topo *groups.Topology, gamma Gamma, p groups.Process, g groups.GroupID, t failure.Time) groups.GroupSet {
	return gamma.ActiveEdges(p, g, t)
}

// ---------------------------------------------------------------------------
// 1^P

type idealIndicator struct {
	pat      *failure.Pattern
	watched  groups.ProcSet
	scope    groups.ProcSet
	opt      Options
	faultyAt failure.Time
}

// NewIndicator returns an ideal 1^watched restricted to scope (the paper's
// 1^{g∩h} has watched = g∩h and scope = g∪h): it returns true from Delay
// after the whole watched set has crashed, and false before — satisfying
// accuracy at all times.
func NewIndicator(pat *failure.Pattern, watched, scope groups.ProcSet, opt Options) Indicator {
	return &idealIndicator{
		pat:      pat,
		watched:  watched,
		scope:    scope,
		opt:      opt,
		faultyAt: pat.SetFaultyAt(watched),
	}
}

func (ind *idealIndicator) Faulty(p groups.Process, t failure.Time) bool {
	if !ind.scope.Has(p) {
		return false // ⊥ outside the scope
	}
	return ind.faultyAt != failure.Never && t >= ind.faultyAt+ind.opt.Delay
}

// ---------------------------------------------------------------------------
// Perfect P

type idealPerfect struct {
	pat *failure.Pattern
	opt Options
}

// NewPerfect returns an ideal perfect detector: a process is suspected from
// Delay after its crash and never before.
func NewPerfect(pat *failure.Pattern, opt Options) Perfect {
	return &idealPerfect{pat: pat, opt: opt}
}

func (pd *idealPerfect) Suspected(p groups.Process, t failure.Time) groups.ProcSet {
	var s groups.ProcSet
	for q := 0; q < pd.pat.N(); q++ {
		ct := pd.pat.CrashTime(groups.Process(q))
		if ct != failure.Never && t >= ct+pd.opt.Delay {
			s = s.Add(groups.Process(q))
		}
	}
	return s
}
