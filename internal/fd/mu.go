package fd

import (
	"repro/internal/failure"
	"repro/internal/groups"
)

// Mu is the candidate failure detector of the paper,
// μ = (∧_{g,h∈G} Σ_{g∩h}) ∧ (∧_{g∈G} Ω_g) ∧ γ, plus the optional components
// used by the variations of §6: the indicators 1^{g∩h} for the strict
// variation and the leaders Ω_{g∩h} for the strongly genuine one.
//
// A conjunction of failure detectors is simply all of them queried against
// the same failure pattern, so Mu bundles per-scope instances.
type Mu struct {
	Topo *groups.Topology

	sigma     map[pairKey]Sigma // Σ_{g∩h}, including g=h (Σ_g)
	omega     map[groups.GroupID]Omega
	gamma     Gamma
	indicator map[pairKey]Indicator // 1^{g∩h}, strict variation
	omegaInt  map[pairKey]Omega     // Ω_{g∩h}, strongly genuine variation
	perfect   Perfect               // P, for the [36] comparison
	pattern   *failure.Pattern
}

type pairKey struct{ a, b groups.GroupID }

func canonPair(g, h groups.GroupID) pairKey {
	if g > h {
		g, h = h, g
	}
	return pairKey{g, h}
}

// NewMu builds an ideal μ (with all optional components) for the topology
// and failure pattern.
func NewMu(topo *groups.Topology, pat *failure.Pattern, opt Options) *Mu {
	m := &Mu{
		Topo:      topo,
		sigma:     make(map[pairKey]Sigma),
		omega:     make(map[groups.GroupID]Omega),
		indicator: make(map[pairKey]Indicator),
		omegaInt:  make(map[pairKey]Omega),
		gamma:     NewGamma(topo, pat, opt),
		perfect:   NewPerfect(pat, opt),
		pattern:   pat,
	}
	k := topo.NumGroups()
	for g := 0; g < k; g++ {
		gid := groups.GroupID(g)
		m.omega[gid] = NewOmega(pat, topo.Group(gid), opt)
		for h := g; h < k; h++ {
			hid := groups.GroupID(h)
			inter := topo.Intersection(gid, hid)
			if inter.Empty() {
				continue
			}
			key := canonPair(gid, hid)
			m.sigma[key] = NewSigma(pat, inter, opt)
			if g != h {
				scope := topo.Group(gid).Union(topo.Group(hid))
				m.indicator[key] = NewIndicator(pat, inter, scope, opt)
				m.omegaInt[key] = NewOmega(pat, inter, opt)
			}
		}
	}
	return m
}

// SigmaFor returns Σ_{g∩h} (Σ_g when g == h); ok is false when g∩h = ∅.
func (m *Mu) SigmaFor(g, h groups.GroupID) (Sigma, bool) {
	s, ok := m.sigma[canonPair(g, h)]
	return s, ok
}

// OmegaFor returns Ω_g.
func (m *Mu) OmegaFor(g groups.GroupID) Omega { return m.omega[g] }

// Gamma returns the cyclicity detector γ.
func (m *Mu) Gamma() Gamma { return m.gamma }

// IndicatorFor returns 1^{g∩h}; ok is false when g = h or g∩h = ∅.
func (m *Mu) IndicatorFor(g, h groups.GroupID) (Indicator, bool) {
	ind, ok := m.indicator[canonPair(g, h)]
	return ind, ok
}

// OmegaIntersectionFor returns Ω_{g∩h}; ok is false when g = h or g∩h = ∅.
func (m *Mu) OmegaIntersectionFor(g, h groups.GroupID) (Omega, bool) {
	o, ok := m.omegaInt[canonPair(g, h)]
	return o, ok
}

// Perfect returns the perfect detector P over all processes.
func (m *Mu) Perfect() Perfect { return m.perfect }

// Pattern returns the failure pattern the histories are derived from.
func (m *Mu) Pattern() *failure.Pattern { return m.pattern }

// GammaGroupsAt is a convenience wrapper for GammaGroups over this μ.
func (m *Mu) GammaGroupsAt(p groups.Process, g groups.GroupID, t failure.Time) groups.GroupSet {
	return GammaGroups(m.Topo, m.gamma, p, g, t)
}
