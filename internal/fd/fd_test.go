package fd

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
)

func randomPattern(rng *rand.Rand, n int, maxCrash int) *failure.Pattern {
	pat := failure.NewPattern(n)
	for p := 0; p < n; p++ {
		if rng.Intn(3) == 0 && pat.Faulty().Count() < maxCrash {
			pat = pat.WithCrash(groups.Process(p), failure.Time(rng.Intn(50)))
		}
	}
	return pat
}

// TestSigmaIntersection checks the perpetual intersection property of Σ:
// quorums returned at any pair of (process, time) points intersect, as long
// as the scope has a correct member.
func TestSigmaIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		pat := randomPattern(rng, 6, 5)
		scope := groups.ProcSet(rng.Uint64() & 0x3f)
		if scope.Empty() || scope.Intersect(pat.Correct()).Empty() {
			continue
		}
		sig := NewSigma(pat, scope, Options{Delay: 10, Seed: int64(trial)})
		type sample struct {
			q groups.ProcSet
		}
		var samples []sample
		for _, p := range scope.Members() {
			for _, tm := range []failure.Time{0, 3, 17, 60, 200} {
				if !pat.IsAlive(p, tm) {
					continue
				}
				q, ok := sig.Quorum(p, tm)
				if !ok {
					t.Fatalf("Quorum not available inside scope")
				}
				if q.Empty() {
					t.Fatalf("empty quorum")
				}
				if !q.SubsetOf(scope) {
					t.Fatalf("quorum %v outside scope %v", q, scope)
				}
				samples = append(samples, sample{q})
			}
		}
		for i := range samples {
			for j := range samples {
				if samples[i].q.Intersect(samples[j].q).Empty() {
					t.Fatalf("quorums %v and %v do not intersect (pat=%v scope=%v)",
						samples[i].q, samples[j].q, pat, scope)
				}
			}
		}
	}
}

// TestSigmaLiveness: eventually quorums at correct processes contain only
// correct processes.
func TestSigmaLiveness(t *testing.T) {
	pat := failure.NewPattern(4).WithCrash(0, 5).WithCrash(3, 9)
	scope := groups.NewProcSet(0, 1, 2, 3)
	sig := NewSigma(pat, scope, Options{Delay: 4})
	late := pat.Horizon() + 100
	for _, p := range pat.Correct().Intersect(scope).Members() {
		q, ok := sig.Quorum(p, late)
		if !ok || !q.SubsetOf(pat.Correct()) {
			t.Fatalf("late quorum %v not ⊆ Correct %v", q, pat.Correct())
		}
	}
}

func TestSigmaOutsideScope(t *testing.T) {
	pat := failure.NewPattern(4)
	sig := NewSigma(pat, groups.NewProcSet(1, 2), Options{})
	if _, ok := sig.Quorum(0, 10); ok {
		t.Fatalf("Σ_P must return ⊥ outside P")
	}
}

// TestOmegaLeadership: eventually all correct scope members agree forever on
// one correct leader.
func TestOmegaLeadership(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		pat := randomPattern(rng, 6, 5)
		scope := groups.ProcSet(rng.Uint64() & 0x3f)
		correct := scope.Intersect(pat.Correct())
		if correct.Empty() {
			continue
		}
		om := NewOmega(pat, scope, Options{Delay: 8, Seed: int64(trial)})
		late := pat.Horizon() + 20
		var leader groups.Process = -1
		for _, p := range correct.Members() {
			for _, tm := range []failure.Time{late, late + 5, late + 100} {
				l, ok := om.Leader(p, tm)
				if !ok {
					t.Fatalf("leader unavailable in scope")
				}
				if !correct.Has(l) {
					t.Fatalf("stabilised leader %v not correct member of %v", l, scope)
				}
				if leader == -1 {
					leader = l
				} else if l != leader {
					t.Fatalf("leaders disagree after stabilisation: %v vs %v", l, leader)
				}
			}
		}
	}
}

func TestOmegaOutsideScope(t *testing.T) {
	om := NewOmega(failure.NewPattern(3), groups.NewProcSet(0), Options{})
	if _, ok := om.Leader(2, 0); ok {
		t.Fatalf("Ω_P must return ⊥ outside P")
	}
}

// TestGammaAccuracy: a family of F(p) omitted from the output is faulty at
// that time (perpetual accuracy).
func TestGammaAccuracy(t *testing.T) {
	topo := groups.Figure1()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		pat := randomPattern(rng, 5, 4)
		gm := NewGamma(topo, pat, Options{Delay: failure.Time(rng.Intn(10))})
		for p := 0; p < 5; p++ {
			proc := groups.Process(p)
			mine := topo.FamiliesOfProcess(proc)
			for _, tm := range []failure.Time{0, 5, 25, 80, 300} {
				out := gm.Families(proc, tm)
				outSet := map[groups.GroupSet]bool{}
				for _, f := range out {
					outSet[f.Groups] = true
				}
				for _, f := range mine {
					if !outSet[f.Groups] {
						if !topo.FamilyFaulty(f, pat.CrashedAt(tm)) {
							t.Fatalf("γ omitted correct family %v at t=%d (pat=%v)",
								f.Groups, tm, pat)
						}
					}
				}
			}
		}
	}
}

// TestGammaCompleteness: a faulty family is eventually omitted forever.
func TestGammaCompleteness(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 10) // p2 crashes → f, f'' faulty
	gm := NewGamma(topo, pat, Options{Delay: 5})
	late := pat.Horizon() + 50
	for _, p := range pat.Correct().Members() {
		for _, f := range gm.Families(p, late) {
			if topo.FamilyFaulty(f, pat.CrashedAt(late)) {
				t.Fatalf("γ still outputs faulty family %v", f.Groups)
			}
		}
	}
}

// TestGammaFigure1Stabilisation reproduces the §3 narrative: with
// Correct = {p1,p4,p5}, γ at p1 eventually stabilises to {f'}.
func TestGammaFigure1Stabilisation(t *testing.T) {
	topo := groups.Figure1()
	// p2 and p3 (indices 1, 2) crash.
	pat := failure.NewPattern(5).WithCrash(1, 10).WithCrash(2, 12)
	gm := NewGamma(topo, pat, Options{Delay: 3})

	early := gm.Families(0, 0)
	if len(early) != 3 {
		t.Fatalf("initially γ(p1) should have 3 families, got %d", len(early))
	}
	late := gm.Families(0, 100)
	if len(late) != 1 || late[0].Groups != groups.NewGroupSet(0, 2, 3) {
		t.Fatalf("γ(p1) should stabilise to {f'={g1,g3,g4}}, got %v", late)
	}
	// Then γ(g1) = {g3, g4} (§3).
	gg := GammaGroups(topo, gm, 0, 0, 100)
	if gg != groups.NewGroupSet(2, 3) {
		t.Fatalf("γ(g1) = %v, want {g3,g4}", gg)
	}
}

// TestIndicatorAccuracyCompleteness: 1^P never fires while P has a survivor
// and eventually fires forever once P crashed.
func TestIndicatorAccuracyCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		pat := randomPattern(rng, 6, 6)
		watched := groups.ProcSet(rng.Uint64() & 0x3f)
		if watched.Empty() {
			continue
		}
		scope := watched.Union(groups.ProcSet(rng.Uint64() & 0x3f))
		ind := NewIndicator(pat, watched, scope, Options{Delay: 4})
		for _, p := range scope.Members() {
			for _, tm := range []failure.Time{0, 7, 33, 200} {
				if ind.Faulty(p, tm) && !watched.SubsetOf(pat.CrashedAt(tm)) {
					t.Fatalf("1^P fired while %v not ⊆ crashed %v", watched, pat.CrashedAt(tm))
				}
			}
			if watched.SubsetOf(pat.Faulty()) {
				late := pat.Horizon() + 100
				if pat.IsAlive(p, late) && !ind.Faulty(p, late) {
					t.Fatalf("1^P never fired though %v all crashed", watched)
				}
			}
		}
	}
}

// TestPerfectStrongAccuracy: no process suspected before it crashes, and
// every crashed process eventually suspected.
func TestPerfectStrongAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		pat := randomPattern(rng, 6, 6)
		pd := NewPerfect(pat, Options{Delay: failure.Time(rng.Intn(6))})
		for _, tm := range []failure.Time{0, 4, 18, 90} {
			sus := pd.Suspected(0, tm)
			if !sus.SubsetOf(pat.CrashedAt(tm)) {
				t.Fatalf("perfect detector suspects alive process: %v vs crashed %v",
					sus, pat.CrashedAt(tm))
			}
		}
		late := pat.Horizon() + 100
		if got := pd.Suspected(0, late); got != pat.Faulty() {
			t.Fatalf("suspected %v != faulty %v at late time", got, pat.Faulty())
		}
	}
}

func TestMuBundle(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 10)
	mu := NewMu(topo, pat, Options{Delay: 5, Seed: 1})

	// Σ_g for every group; Σ_{g∩h} for intersecting pairs only.
	if _, ok := mu.SigmaFor(0, 0); !ok {
		t.Fatalf("Σ_g1 missing")
	}
	if _, ok := mu.SigmaFor(1, 3); ok { // g2 ∩ g4 = ∅
		t.Fatalf("Σ_{g2∩g4} should not exist")
	}
	if _, ok := mu.SigmaFor(0, 2); !ok { // g1 ∩ g3 = {p1}
		t.Fatalf("Σ_{g1∩g3} missing")
	}
	if mu.OmegaFor(2) == nil {
		t.Fatalf("Ω_g3 missing")
	}
	if _, ok := mu.IndicatorFor(0, 1); !ok {
		t.Fatalf("1^{g1∩g2} missing")
	}
	if _, ok := mu.OmegaIntersectionFor(0, 2); !ok {
		t.Fatalf("Ω_{g1∩g3} missing")
	}
	// γ(g1) before any fault contains g2, g3, g4.
	gg := mu.GammaGroupsAt(0, 0, 0)
	if gg != groups.NewGroupSet(1, 2, 3) {
		t.Fatalf("γ(g1) at t=0 = %v", gg)
	}
}

// TestSigmaRestrictionPair: Σ_{g∩h} quorums live inside the intersection —
// the property the paper needs beyond Σ_g ∧ Σ_h (footnote 3).
func TestSigmaRestrictionPair(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5)
	mu := NewMu(topo, pat, Options{})
	sig, ok := mu.SigmaFor(0, 2) // g1∩g3 = {p1}
	if !ok {
		t.Fatal("missing Σ_{g1∩g3}")
	}
	q, ok := sig.Quorum(0, 0)
	if !ok || q != groups.NewProcSet(0) {
		t.Fatalf("Σ_{g1∩g3} quorum = %v, want {p1}", q)
	}
	if _, ok := sig.Quorum(1, 0); ok {
		t.Fatalf("Σ_{g1∩g3} must be ⊥ at p2")
	}
}
