package fd

import (
	"repro/internal/failure"
	"repro/internal/groups"
)

// This file implements the failure-detector reductions of §6.1: a detector
// D' is weaker than D when an algorithm transforms D into D'. The
// constructions here are the transformations the paper states.

// IndicatorSet provides the conjunction ∧_{g,h∈G} 1^{g∩h}.
type IndicatorSet interface {
	// IndicatorFor returns 1^{g∩h}; ok is false when g∩h = ∅ or g = h.
	IndicatorFor(g, h groups.GroupID) (Indicator, bool)
}

// DerivedGamma is the Proposition 51 construction: γ built from the
// indicator detectors. For each cyclic family f and closed path
// π ∈ cpaths(f), the path class is declared faulty once 1^{g∩h} fires for
// some edge (g,h) of the class; a family is omitted when every class is
// faulty. Accuracy follows from the indicators' accuracy (an edge flagged
// is really dead, so the class — and when all classes die, the family — is
// really faulty), completeness from theirs.
type DerivedGamma struct {
	topo *groups.Topology
	inds IndicatorSet
}

// NewDerivedGamma builds the transformation.
func NewDerivedGamma(topo *groups.Topology, inds IndicatorSet) *DerivedGamma {
	return &DerivedGamma{topo: topo, inds: inds}
}

// pathFlagged reports whether some edge of the closed path has its
// indicator firing at (p, t). Indicators are scoped to g∪h; a process
// outside the scope reads false, which only delays its view (the paper's
// construction forwards flags by message — we query directly, which is the
// same information arriving sooner).
func (dg *DerivedGamma) pathFlagged(p groups.Process, path []groups.GroupID, t failure.Time) bool {
	for i := 0; i+1 < len(path); i++ {
		ind, ok := dg.inds.IndicatorFor(path[i], path[i+1])
		if !ok {
			continue
		}
		// Query at a member of the scope (the flag a member sends to the
		// rest of the family per Proposition 51's construction).
		scope := dg.topo.Group(path[i]).Union(dg.topo.Group(path[i+1]))
		for _, q := range scope.Members() {
			if ind.Faulty(q, t) {
				return true
			}
		}
	}
	return false
}

// Families implements Gamma.
func (dg *DerivedGamma) Families(p groups.Process, t failure.Time) []groups.Family {
	var out []groups.Family
	for _, f := range dg.topo.FamiliesOfProcess(p) {
		alive := false
		for _, path := range f.CPaths {
			if !dg.pathFlagged(p, path, t) {
				alive = true
				break
			}
		}
		if alive {
			out = append(out, f)
		}
	}
	return out
}

// ActiveEdges implements Gamma at ring granularity.
func (dg *DerivedGamma) ActiveEdges(p groups.Process, g groups.GroupID, t failure.Time) groups.GroupSet {
	var out groups.GroupSet
	for _, f := range dg.topo.FamiliesOfProcess(p) {
		if !f.Groups.Has(g) {
			continue
		}
		for _, path := range f.CPaths {
			if dg.pathFlagged(p, path, t) {
				continue
			}
			for i := 0; i+1 < len(path); i++ {
				if path[i] == g {
					out = out.Add(path[i+1])
				}
				if path[i+1] == g {
					out = out.Add(path[i])
				}
			}
		}
	}
	return out
}

var _ Gamma = (*DerivedGamma)(nil)

// DerivedIndicatorFromPerfect builds 1^{watched} (scoped to scope) from the
// perfect detector P: the indicator fires exactly when P suspects every
// member of the watched set. This is the `≤ P` column of Table 1 made
// executable: P is stronger than each 1^{g∩h} (and hence, via
// Proposition 51, than γ).
type DerivedIndicatorFromPerfect struct {
	P       Perfect
	Watched groups.ProcSet
	Scope   groups.ProcSet
}

// Faulty implements Indicator.
func (d *DerivedIndicatorFromPerfect) Faulty(p groups.Process, t failure.Time) bool {
	if !d.Scope.Has(p) {
		return false
	}
	return d.Watched.SubsetOf(d.P.Suspected(p, t))
}

var _ Indicator = (*DerivedIndicatorFromPerfect)(nil)
