package fd

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
)

// k4Topology builds four groups whose intersection graph is K4: every pair
// intersects, and the pair (g0, g1) intersects only in p0.
func k4Topology() *groups.Topology {
	return groups.MustNew(6,
		groups.NewProcSet(0, 1, 2), // g0
		groups.NewProcSet(0, 3, 4), // g1   g0∩g1 = {p0}
		groups.NewProcSet(1, 3, 5), // g2   meets g0 (p1), g1 (p3)
		groups.NewProcSet(2, 4, 5), // g3   meets g0 (p2), g1 (p4), g2 (p5)
	)
}

// TestK4GammaGranularity pins the reproduction finding recorded in
// DESIGN.md: on K4, crashing g0∩g1 = {p0} leaves the 4-group family correct
// (its hamiltonian cycle g0-g2-g1-g3-g0 avoids the dead edge), so the
// family-granular γ(g0) of the paper would keep g1 in the waiting set
// forever. The ring-granular derivation drops g1 — every cycle class
// through the edge (g0,g1) is dead — while keeping the alive cycle's
// edges, which is what restores Algorithm 1's liveness.
func TestK4GammaGranularity(t *testing.T) {
	topo := k4Topology()

	// The 4-group family must be cyclic and survive p0's crash.
	var full groups.Family
	found := false
	for _, f := range topo.Families() {
		if f.Groups.Count() == 4 {
			full, found = f, true
		}
	}
	if !found {
		t.Fatalf("K4 family missing")
	}
	crashed := groups.NewProcSet(0)
	if topo.FamilyFaulty(full, crashed) {
		t.Fatalf("K4 family should survive the death of one edge")
	}

	pat := failure.NewPattern(6).WithCrash(0, 10)
	g := NewGamma(topo, pat, Options{Delay: 4})

	// Family-level output at p1 (∈ g0∩g2) keeps the full family (accuracy
	// forces it: the family is correct).
	late := failure.Time(100)
	keepsFull := false
	for _, f := range g.Families(1, late) {
		if f.Groups == full.Groups {
			keepsFull = true
		}
	}
	if !keepsFull {
		t.Fatalf("γ accuracy violated: correct K4 family dropped")
	}

	// Ring-granular γ(g0): g1 must be gone (all cycle classes through the
	// dead edge died), g2 and g3 must remain (the alive cycle uses them).
	active := g.ActiveEdges(1, 0, late)
	if active.Has(1) {
		t.Fatalf("γ(g0) still contains g1 though g0∩g1 is dead: %v", active)
	}
	if !active.Has(2) || !active.Has(3) {
		t.Fatalf("γ(g0) lost alive edges: %v", active)
	}

	// Before the crash, every edge is active.
	early := g.ActiveEdges(1, 0, 0)
	if early != groups.NewGroupSet(1, 2, 3) {
		t.Fatalf("pre-crash γ(g0) = %v, want {g1,g2,g3}", early)
	}
}

// TestK4EndToEndLiveness is the end-to-end regression: Algorithm 1 on the
// K4 topology with g0∩g1 dead must still deliver g0's and g1's messages.
// (With the family-granular derivation this scenario blocks forever; the
// random soaks found it.)
func TestK4EndToEndLiveness(t *testing.T) {
	// Exercised through the fd package's consumers; the end-to-end run
	// lives in internal/core's soak, but we keep a direct derivation check
	// here: after the crash the waiting set never demands a tuple only the
	// dead intersection could write.
	topo := k4Topology()
	pat := failure.NewPattern(6).WithCrash(0, 10)
	g := NewGamma(topo, pat, Options{Delay: 4})
	for _, q := range pat.Correct().Members() {
		for gid := 0; gid < topo.NumGroups(); gid++ {
			active := g.ActiveEdges(q, groups.GroupID(gid), 100)
			for _, h := range active.Members() {
				inter := topo.Intersection(groups.GroupID(gid), h)
				if inter.Intersect(pat.Correct()).Empty() {
					t.Fatalf("γ(g%d) demands dead intersection g%d∩g%d", gid, gid, h)
				}
			}
		}
	}
}
