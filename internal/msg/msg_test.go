package msg

import (
	"testing"
)

func TestRegistryAssignsSequentialIDs(t *testing.T) {
	r := NewRegistry()
	a := r.New(0, 0, []byte("a"))
	b := r.New(1, 0, nil)
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %d, %d", a.ID, b.ID)
	}
	if a.ID == None {
		t.Fatalf("real message got the null id")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryGet(t *testing.T) {
	r := NewRegistry()
	m := r.New(2, 1, []byte("x"))
	got := r.Get(m.ID)
	if got.Src != 2 || got.Dst != 1 || string(got.Payload) != "x" {
		t.Fatalf("Get = %+v", got)
	}
}

func TestRegistryGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().Get(99)
}

func TestRegistryAllInOrder(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.New(0, 0, nil)
	}
	all := r.All()
	if len(all) != 5 {
		t.Fatalf("All returned %d", len(all))
	}
	for i, m := range all {
		if m.ID != ID(i+1) {
			t.Fatalf("All out of order: %v", all)
		}
	}
}

func TestMessageString(t *testing.T) {
	r := NewRegistry()
	m := r.New(3, 2, nil)
	if got := m.String(); got != "m1(src=p3,dst=g2)" {
		t.Fatalf("String = %q", got)
	}
}
