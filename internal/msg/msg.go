// Package msg defines atomic-multicast messages and their identifiers,
// shared by the log objects and the multicast algorithms.
package msg

import (
	"fmt"
	"sync"

	"repro/internal/groups"
)

// ID identifies a multicast message. IDs also serve as the a-priori total
// order (<) over messages the paper uses to break ties between data sharing
// a log slot.
type ID int64

// None is the null message identifier.
const None ID = 0

// Class is a compact conflict-class tag a message carries across the wire,
// so a run's commutativity relation can be evaluated from tags alone:
// ClassAll conflicts with every message, ClassFree commutes with every
// message, and two keyed classes conflict iff they are equal.
type Class uint64

const (
	// ClassAll is the zero tag: the message conflicts with everything.
	// Runs without a conflict relation behave as if every message carried
	// it — total order, exactly Algorithm 1.
	ClassAll Class = 0
	// ClassFree tags a message that commutes with every message, past and
	// future; the generic delivery path skips ordering coordination for it.
	ClassFree Class = ^Class(0)
)

// ConflictsWith evaluates the class-induced conflict relation. It is
// symmetric by construction, and ClassFree conflicts with nothing — not
// even itself — which is what marks its messages for the fast path.
func (c Class) ConflictsWith(o Class) bool {
	if c == ClassFree || o == ClassFree {
		return false
	}
	return c == ClassAll || o == ClassAll || c == o
}

// String renders the class tag.
func (c Class) String() string {
	switch c {
	case ClassAll:
		return "all"
	case ClassFree:
		return "free"
	}
	return fmt.Sprintf("k%d", uint64(c))
}

// Relation is a commutativity relation over messages: it reports whether a
// and b conflict, i.e. must be delivered in the same relative order
// everywhere. A Relation must be symmetric, and a message that does not
// conflict with itself must conflict with no message at all — the protocol
// reads !rel(m, m) as "m commutes with everything" and skips ordering
// coordination for such messages entirely.
type Relation func(a, b *Message) bool

// ClassesConflict is the Relation induced by the messages' Class tags.
func ClassesConflict(a, b *Message) bool { return a.Class.ConflictsWith(b.Class) }

// Message is a multicast message: a sender, a destination group, an opaque
// payload, and a conflict-class tag (ClassAll unless the run uses a
// commutativity relation). Senders belong to their destination group
// (closed model). Class is fixed at registration and never mutated — nodes
// read it concurrently without synchronisation.
type Message struct {
	ID      ID
	Src     groups.Process
	Dst     groups.GroupID
	Payload []byte
	Class   Class
}

// String renders the message.
func (m *Message) String() string {
	return fmt.Sprintf("m%d(src=p%d,dst=g%d)", m.ID, m.Src, m.Dst)
}

// Registry assigns identifiers and resolves them back to messages. A single
// registry is shared by every process of a run (message identity is global);
// live-backend runs register from the driver while nodes resolve
// concurrently, hence the lock.
type Registry struct {
	mu     sync.RWMutex
	next   ID
	byID   map[ID]*Message
	learnt map[ID]Class
}

// NewRegistry returns an empty registry. The first assigned ID is 1 so that
// None never collides with a real message.
func NewRegistry() *Registry {
	return &Registry{next: 1, byID: make(map[ID]*Message), learnt: make(map[ID]Class)}
}

// New registers a fresh message (conflict class ClassAll).
func (r *Registry) New(src groups.Process, dst groups.GroupID, payload []byte) *Message {
	return r.NewClassed(src, dst, payload, ClassAll)
}

// NewClassed registers a fresh message carrying a conflict-class tag.
func (r *Registry) NewClassed(src groups.Process, dst groups.GroupID, payload []byte, class Class) *Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &Message{ID: r.next, Src: src, Dst: dst, Payload: payload, Class: class}
	r.next++
	r.byID[m.ID] = m
	return m
}

// ClassOf returns the conflict class of id: a tag learnt from the wire wins
// over the registration-time tag, and unknown ids are ClassAll — a message
// we know nothing about must be treated as conflicting with everything.
func (r *Registry) ClassOf(id ID) Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.learnt[id]; ok {
		return c
	}
	if m, ok := r.byID[id]; ok {
		return m.Class
	}
	return ClassAll
}

// LearnClass records the class tag of id as carried by the replicated op
// stream. The registration-time Message is never mutated (nodes read it
// lock-free); the learnt tag is kept aside and surfaces through ClassOf,
// letting a replica whose local schedule lacked the tag still report the
// authoritative one the wire delivered.
func (r *Registry) LearnClass(id ID, c Class) {
	if c == ClassAll {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.learnt[id]; !ok {
		r.learnt[id] = c
	}
}

// Get resolves an ID; it panics on unknown IDs, which indicates a bug in the
// caller (messages are always registered before circulating).
func (r *Registry) Get(id ID) *Message {
	r.mu.RLock()
	m, ok := r.byID[id]
	r.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("msg: unknown message id %d", id))
	}
	return m
}

// Len returns the number of registered messages.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// All returns every registered message in ID order.
func (r *Registry) All() []*Message {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Message, 0, len(r.byID))
	for id := ID(1); id < r.next; id++ {
		if m, ok := r.byID[id]; ok {
			out = append(out, m)
		}
	}
	return out
}
