// Package msg defines atomic-multicast messages and their identifiers,
// shared by the log objects and the multicast algorithms.
package msg

import (
	"fmt"
	"sync"

	"repro/internal/groups"
)

// ID identifies a multicast message. IDs also serve as the a-priori total
// order (<) over messages the paper uses to break ties between data sharing
// a log slot.
type ID int64

// None is the null message identifier.
const None ID = 0

// Message is a multicast message: a sender, a destination group, and an
// opaque payload. Senders belong to their destination group (closed model).
type Message struct {
	ID      ID
	Src     groups.Process
	Dst     groups.GroupID
	Payload []byte
}

// String renders the message.
func (m *Message) String() string {
	return fmt.Sprintf("m%d(src=p%d,dst=g%d)", m.ID, m.Src, m.Dst)
}

// Registry assigns identifiers and resolves them back to messages. A single
// registry is shared by every process of a run (message identity is global);
// live-backend runs register from the driver while nodes resolve
// concurrently, hence the lock.
type Registry struct {
	mu   sync.RWMutex
	next ID
	byID map[ID]*Message
}

// NewRegistry returns an empty registry. The first assigned ID is 1 so that
// None never collides with a real message.
func NewRegistry() *Registry {
	return &Registry{next: 1, byID: make(map[ID]*Message)}
}

// New registers a fresh message.
func (r *Registry) New(src groups.Process, dst groups.GroupID, payload []byte) *Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &Message{ID: r.next, Src: src, Dst: dst, Payload: payload}
	r.next++
	r.byID[m.ID] = m
	return m
}

// Get resolves an ID; it panics on unknown IDs, which indicates a bug in the
// caller (messages are always registered before circulating).
func (r *Registry) Get(id ID) *Message {
	r.mu.RLock()
	m, ok := r.byID[id]
	r.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("msg: unknown message id %d", id))
	}
	return m
}

// Len returns the number of registered messages.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// All returns every registered message in ID order.
func (r *Registry) All() []*Message {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Message, 0, len(r.byID))
	for id := ID(1); id < r.next; id++ {
		if m, ok := r.byID[id]; ok {
			out = append(out, m)
		}
	}
	return out
}
