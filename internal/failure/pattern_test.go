package failure

import (
	"testing"
	"testing/quick"

	"repro/internal/groups"
)

func TestPatternBasics(t *testing.T) {
	f := NewPattern(4).WithCrash(1, 10).WithCrash(3, 5)
	if f.IsCorrect(1) || !f.IsCorrect(0) {
		t.Fatalf("correctness wrong")
	}
	if got := f.Faulty(); got != groups.NewProcSet(1, 3) {
		t.Fatalf("Faulty = %v", got)
	}
	if got := f.Correct(); got != groups.NewProcSet(0, 2) {
		t.Fatalf("Correct = %v", got)
	}
	if got := f.CrashedAt(4); !got.Empty() {
		t.Fatalf("CrashedAt(4) = %v", got)
	}
	if got := f.CrashedAt(5); got != groups.NewProcSet(3) {
		t.Fatalf("CrashedAt(5) = %v", got)
	}
	if got := f.CrashedAt(100); got != groups.NewProcSet(1, 3) {
		t.Fatalf("CrashedAt(100) = %v", got)
	}
	if got := f.AliveAt(7); got != groups.NewProcSet(0, 1, 2) {
		t.Fatalf("AliveAt(7) = %v", got)
	}
	if f.Horizon() != 10 {
		t.Fatalf("Horizon = %d", f.Horizon())
	}
}

// TestPatternMonotone: F(t) ⊆ F(t+1), the defining property of patterns.
func TestPatternMonotone(t *testing.T) {
	check := func(c0, c1, c2 uint8, t0 uint8) bool {
		f := NewPattern(3).
			WithCrash(0, Time(c0)).
			WithCrash(1, Time(c1)).
			WithCrash(2, Time(c2))
		a := f.CrashedAt(Time(t0))
		b := f.CrashedAt(Time(t0) + 1)
		return a.SubsetOf(b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetFaultyAt(t *testing.T) {
	f := NewPattern(4).WithCrash(0, 3).WithCrash(1, 8)
	if got := f.SetFaultyAt(groups.NewProcSet(0, 1)); got != 8 {
		t.Fatalf("SetFaultyAt = %d, want 8", got)
	}
	if got := f.SetFaultyAt(groups.NewProcSet(0, 2)); got != Never {
		t.Fatalf("SetFaultyAt with correct member = %d, want Never", got)
	}
}

func TestFamilyFaultyAt(t *testing.T) {
	topo := groups.Figure1()
	var fam groups.Family
	for _, f := range topo.Families() {
		if f.Groups == groups.NewGroupSet(0, 1, 2) { // f = {g1,g2,g3}
			fam = f
		}
	}
	// p2 (index 1) = g1∩g2 crashes at 7 → f faulty at 7.
	pat := NewPattern(5).WithCrash(1, 7)
	if got := FamilyFaultyAt(pat, topo, fam); got != 7 {
		t.Fatalf("FamilyFaultyAt = %d, want 7", got)
	}
	// No crashes → Never.
	if got := FamilyFaultyAt(NewPattern(5), topo, fam); got != Never {
		t.Fatalf("FamilyFaultyAt = %d, want Never", got)
	}
}

func TestEnvironments(t *testing.T) {
	e := MaxFailures(1)
	if !e.Contains(NewPattern(3).WithCrash(0, 1)) {
		t.Fatalf("pattern with one crash should be in E(f<=1)")
	}
	if e.Contains(NewPattern(3).WithCrash(0, 1).WithCrash(1, 2)) {
		t.Fatalf("pattern with two crashes should not be in E(f<=1)")
	}
	if !AllPatterns().Contains(NewPattern(3)) {
		t.Fatalf("E* must contain everything")
	}
}

func TestWithCrashesAndAlive(t *testing.T) {
	f := NewPattern(5).WithCrashes(groups.NewProcSet(1, 2), 4)
	if !f.IsAlive(1, 3) || f.IsAlive(1, 4) {
		t.Fatalf("IsAlive wrong around crash time")
	}
	if f.CrashTime(2) != 4 {
		t.Fatalf("CrashTime = %d", f.CrashTime(2))
	}
}
