// Package failure models failure patterns and environments from the
// unreliable-failure-detector model (Chandra & Toueg, recalled in Appendix A
// of the paper): a failure pattern is a monotone function F : N → 2^P giving
// the processes that have crashed by each instant of the global clock.
package failure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/groups"
)

// Time is an instant of the simulated global clock. Processes never read it;
// it only parameterises failure patterns and detector histories.
type Time int64

// Never marks a process that does not crash in a pattern.
const Never Time = -1

// Pattern is a failure pattern: for each process, the time at which it
// crashes (Never if correct). Crashed processes never recover.
type Pattern struct {
	n     int
	crash []Time
}

// NewPattern returns a pattern over n processes in which nobody crashes.
func NewPattern(n int) *Pattern {
	crash := make([]Time, n)
	for i := range crash {
		crash[i] = Never
	}
	return &Pattern{n: n, crash: crash}
}

// WithCrash returns a copy of the pattern in which p crashes at time t.
func (f *Pattern) WithCrash(p groups.Process, t Time) *Pattern {
	if t < 0 {
		panic("failure: crash time must be >= 0")
	}
	c := f.clone()
	c.crash[p] = t
	return c
}

// WithCrashes returns a copy in which every process of set crashes at t.
func (f *Pattern) WithCrashes(set groups.ProcSet, t Time) *Pattern {
	c := f.clone()
	for _, p := range set.Members() {
		c.crash[p] = t
	}
	return c
}

func (f *Pattern) clone() *Pattern {
	return &Pattern{n: f.n, crash: append([]Time(nil), f.crash...)}
}

// N returns the number of processes the pattern covers.
func (f *Pattern) N() int { return f.n }

// CrashTime returns when p crashes, or Never.
func (f *Pattern) CrashTime(p groups.Process) Time { return f.crash[p] }

// CrashedAt returns F(t): the processes crashed at time t.
func (f *Pattern) CrashedAt(t Time) groups.ProcSet {
	var s groups.ProcSet
	for p, ct := range f.crash {
		if ct != Never && ct <= t {
			s = s.Add(groups.Process(p))
		}
	}
	return s
}

// AliveAt returns the processes not crashed at time t.
func (f *Pattern) AliveAt(t Time) groups.ProcSet {
	var s groups.ProcSet
	for p, ct := range f.crash {
		if ct == Never || ct > t {
			s = s.Add(groups.Process(p))
		}
	}
	return s
}

// Faulty returns Faulty(F) = ∪_t F(t): every process that eventually crashes.
func (f *Pattern) Faulty() groups.ProcSet {
	var s groups.ProcSet
	for p, ct := range f.crash {
		if ct != Never {
			s = s.Add(groups.Process(p))
		}
	}
	return s
}

// Correct returns Correct(F): the processes that never crash.
func (f *Pattern) Correct() groups.ProcSet {
	var s groups.ProcSet
	for p, ct := range f.crash {
		if ct == Never {
			s = s.Add(groups.Process(p))
		}
	}
	return s
}

// IsCorrect reports whether p never crashes in the pattern.
func (f *Pattern) IsCorrect(p groups.Process) bool { return f.crash[p] == Never }

// IsAlive reports whether p has not crashed by time t.
func (f *Pattern) IsAlive(p groups.Process, t Time) bool {
	return f.crash[p] == Never || f.crash[p] > t
}

// SetFaultyAt returns the earliest time at which every member of set has
// crashed, or Never if some member is correct.
func (f *Pattern) SetFaultyAt(set groups.ProcSet) Time {
	var max Time
	for _, p := range set.Members() {
		ct := f.crash[p]
		if ct == Never {
			return Never
		}
		if ct > max {
			max = ct
		}
	}
	return max
}

// Horizon returns the largest crash time in the pattern (0 if none): the
// moment after which the pattern is stable.
func (f *Pattern) Horizon() Time {
	var h Time
	for _, ct := range f.crash {
		if ct != Never && ct > h {
			h = ct
		}
	}
	return h
}

// FamilyFaultyAt returns the earliest time at which family fam of topology
// topo becomes faulty (every closed path visits a crashed edge), or Never.
func FamilyFaultyAt(f *Pattern, topo *groups.Topology, fam groups.Family) Time {
	// Collect candidate times: crash times of processes, sorted. Faultiness
	// is monotone, so binary search over candidates would work; the sets are
	// tiny, so a linear scan is clearer.
	times := make([]Time, 0, f.n)
	for p := 0; p < f.n; p++ {
		if ct := f.crash[p]; ct != Never {
			times = append(times, ct)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		if topo.FamilyFaulty(fam, f.CrashedAt(t)) {
			return t
		}
	}
	return Never
}

// String renders the pattern.
func (f *Pattern) String() string {
	var b strings.Builder
	b.WriteString("pattern(")
	first := true
	for p, ct := range f.crash {
		if ct == Never {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "p%d@%d", p, ct)
		first = false
	}
	if first {
		b.WriteString("no crashes")
	}
	b.WriteByte(')')
	return b.String()
}

// Environment is a set of failure patterns, described intensionally by a
// predicate. The paper's necessity results for γ assume environments where a
// failure-prone process may crash at any time; AnyTimeCrash captures that.
type Environment struct {
	// Name describes the environment.
	Name string
	// Contains reports whether a pattern belongs to the environment.
	Contains func(*Pattern) bool
}

// AllPatterns is the environment E* of every failure pattern.
func AllPatterns() Environment {
	return Environment{Name: "E*", Contains: func(*Pattern) bool { return true }}
}

// MaxFailures is the environment of patterns with at most k faulty processes.
func MaxFailures(k int) Environment {
	return Environment{
		Name:     fmt.Sprintf("E(f<=%d)", k),
		Contains: func(f *Pattern) bool { return f.Faulty().Count() <= k },
	}
}
