package live

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
)

// TestLiveGenericChaosSeeds replays the seeded nemesis schedules against
// the generic variant: a mixed load of keyed (conflicting) and ClassFree
// (commuting) multicasts under drops, duplication, delays, partitions and
// quorum-preserving crashes. Safety is the conflict-aware specification —
// conflicting pairs totally ordered, commuting pairs free — and the run
// must actually exercise the fast path, not just survive it.
func TestLiveGenericChaosSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runGenericChaosSeed(t, seed)
		})
	}
}

func runGenericChaosSeed(t *testing.T, seed int64) {
	topo := chainTopo(t)
	pat := failure.NewPattern(7).
		WithCrash(1, 120).
		WithCrash(3, 180).
		WithCrash(5, 240)
	c := chaos.Wrap(net.New(7), seed)
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	sys := NewSystem(topo, pat, c, Config{Opt: core.Options{
		Variant:  core.Generic,
		Conflict: msg.ClassesConflict,
		Rec:      rec,
	}})
	sys.Start()
	defer sys.Stop()

	plan := chaos.NewPlan(seed, 7, 300*time.Millisecond)
	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Correct senders only, spread over the plan window; 7 in 10 messages
	// commute with everything, the rest land in three keyed classes that
	// order among themselves.
	senders := []struct {
		p groups.Process
		g groups.GroupID
	}{{0, 0}, {2, 1}, {6, 2}, {2, 0}, {4, 1}, {4, 2}}
	i, free := 0, 0
issue:
	for {
		s := senders[i%len(senders)]
		class := msg.ClassFree
		if i%10 >= 7 {
			class = msg.Class(1 + i%3)
		} else {
			free++
		}
		sys.MulticastClassed(s.p, s.g, []byte{byte(i)}, class)
		i++
		select {
		case <-nmDone:
			break issue
		case <-time.After(35 * time.Millisecond):
		}
	}

	if !sys.AwaitDelivery(90 * time.Second) {
		sys.Stop()
		t.Fatalf("seed %d: no full delivery after quiesce (%d multicasts, %d deliveries, stats %+v)",
			seed, sys.Sh.Reg.Len(), len(sys.Sh.Deliveries()), c.Stats())
	}
	sys.Stop()
	for _, v := range sys.Check() {
		t.Errorf("seed %d: specification violation: %v", seed, v)
	}
	rep := sys.Report()
	if free > 0 && (rep.Conflict == nil || rep.Conflict.FastDeliveries == 0) {
		t.Errorf("seed %d: %d commuting multicasts but no delivery skipped coordination", seed, free)
	}
}
