package live

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/net"
)

// TestLiveFigure1EndToEnd runs Algorithm 1 over the replicated substrate on
// the paper's Figure-1 topology (overlapping groups with a cyclic family)
// and validates the run with the full specification checker: a multicast
// issued at one process travels through replog/paxos over the transport and
// is delivered by every destination member in a globally consistent order.
func TestLiveFigure1EndToEnd(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(topo.NumProcesses())
	nw := net.New(topo.NumProcesses())
	sys := NewSystem(topo, pat, nw, Config{})
	sys.Start()
	defer sys.Stop()

	// One message per group plus a second round on g0 and g2, so the
	// group-sequential gate and the cross-group ordering paths both fire.
	// Figure 1: g0={0,1}, g1={1,2}, g2={0,2,3}, g3={0,3,4}.
	sys.Multicast(0, 0, []byte("a"))
	sys.Multicast(1, 1, []byte("b"))
	sys.Multicast(2, 2, []byte("c"))
	sys.Multicast(3, 3, []byte("d"))
	sys.Multicast(1, 0, []byte("e"))
	sys.Multicast(0, 2, []byte("f"))

	if !sys.AwaitDelivery(60 * time.Second) {
		sys.Stop()
		t.Fatalf("run did not reach full delivery; trace: %+v", sys.Sh.Deliveries())
	}
	sys.Stop()
	for _, v := range sys.Check() {
		t.Errorf("specification violation: %v", v)
	}
	if got := len(sys.Sh.Deliveries()); got == 0 {
		t.Fatal("no deliveries recorded")
	}
}

// chainTopo is a 7-process chain of three 3-member groups
// (g0={0,1,2}, g1={2,3,4}, g2={4,5,6}): every group keeps a majority after
// one member crashes, so paxos inside each hosting group stays live — the
// quorum-preserving crash schedules below rely on it. (Figure 1 has
// 2-member groups, which tolerate no crash under majorities.)
func chainTopo(t *testing.T) *groups.Topology {
	t.Helper()
	mk := func(ps ...groups.Process) groups.ProcSet {
		var s groups.ProcSet
		for _, p := range ps {
			s = s.Add(p)
		}
		return s
	}
	topo, err := groups.New(7, mk(0, 1, 2), mk(2, 3, 4), mk(4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestLiveChaosSeeds replays seeded nemesis schedules (drops, duplication,
// delays, partitions, down/up cycles — all derived from the seed, see
// chaos.NewPlan) against the full protocol while one member of each group
// crashes permanently mid-run. Safety must hold over the entire trace —
// every delivery that happened during the chaos is checked — and after the
// plan quiesces every correct destination member must deliver everything.
func TestLiveChaosSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSeed(t, seed)
		})
	}
}

func runChaosSeed(t *testing.T, seed int64) {
	topo := chainTopo(t)
	// Quorum-preserving crashes: one member per group, staggered. Ticks
	// are milliseconds (Config.TickEvery default), so the crashes land
	// inside the 300ms plan window.
	pat := failure.NewPattern(7).
		WithCrash(1, 120).
		WithCrash(3, 180).
		WithCrash(5, 240)
	c := chaos.Wrap(net.New(7), seed)
	sys := NewSystem(topo, pat, c, Config{})
	sys.Start()
	defer sys.Stop()

	plan := chaos.NewPlan(seed, 7, 300*time.Millisecond)
	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Multicasts from correct senders only (crashed senders would leave
	// unappended requests with no termination obligation — legal, but not
	// what this test measures), spread across the plan window.
	senders := []struct {
		p groups.Process
		g groups.GroupID
	}{{0, 0}, {2, 1}, {6, 2}, {2, 0}, {4, 1}, {4, 2}}
	i := 0
issue:
	for {
		s := senders[i%len(senders)]
		sys.Multicast(s.p, s.g, []byte{byte(i)})
		i++
		select {
		case <-nmDone:
			break issue
		case <-time.After(35 * time.Millisecond):
		}
	}

	if !sys.AwaitDelivery(90 * time.Second) {
		sys.Stop()
		t.Fatalf("seed %d: no full delivery after quiesce (%d multicasts, %d deliveries, stats %+v)",
			seed, sys.Sh.Reg.Len(), len(sys.Sh.Deliveries()), c.Stats())
	}
	sys.Stop()
	for _, v := range sys.Check() {
		t.Errorf("seed %d: specification violation: %v", seed, v)
	}
}
