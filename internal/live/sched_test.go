package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
)

// TestIdleNodesNearZeroWork pins down the event-driven contract from both
// sides. Idle side: a started system with no traffic must do essentially
// nothing — no actions, no guard rescans beyond the startup pass (the
// heartbeat only skip-checks log versions) — where the old scheduler
// rescanned every node's guards every 200µs forever. Liveness side: a
// multicast issued after a long idle stretch must still deliver, proving the
// wakeup path has no lost-notification window a poll used to paper over.
func TestIdleNodesNearZeroWork(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(topo.NumProcesses())
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	nw := net.New(topo.NumProcesses())
	sys := NewSystem(topo, pat, nw, Config{Opt: core.Options{Rec: rec}})
	sys.Start()
	defer sys.Stop()

	time.Sleep(300 * time.Millisecond)
	idle := sys.Report().Sched
	if idle == nil {
		t.Fatal("no sched counters recorded")
	}
	procs := int64(topo.NumProcesses())
	if idle.Actions != 0 {
		t.Errorf("idle system fired %d actions; want 0", idle.Actions)
	}
	if idle.Scans > 4*procs {
		t.Errorf("idle system ran %d guard scans across %d processes; want the startup pass only", idle.Scans, procs)
	}
	if idle.TimerWakeups == 0 {
		t.Error("no heartbeat wakeups over 300ms idle; the time-gated-guard safety net is not armed")
	}

	// Wake the pipeline from a cold idle: if a notification were lost, the
	// only mover would be the heartbeat — delivery would still succeed, so
	// additionally require the notify path to have carried real wakeups.
	sys.Multicast(0, 0, []byte("wake"))
	if !sys.AwaitDelivery(10 * time.Second) {
		t.Fatal("delivery stalled after the idle period")
	}
	busy := sys.Report().Sched
	if busy.Actions == 0 {
		t.Error("delivery happened but no actions were counted")
	}
	if busy.NotifyWakeups == 0 {
		t.Error("delivery completed without a single notify wakeup; stepping is still timer-driven")
	}
	sys.Stop()
	for p, n := range sys.Nodes {
		if n == nil {
			continue
		}
		if size := n.ScanSetSize(); size != 0 {
			t.Errorf("p%d: scan set holds %d messages after delivery", p, size)
		}
	}
	for _, v := range sys.Check() {
		t.Errorf("specification violation: %v", v)
	}
}
