package live

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
	"repro/internal/storage"
)

// Config tunes a live run.
type Config struct {
	// Opt configures the protocol (variant, detector options). QuorumGate
	// must stay false: the live substrate enforces quorum responsiveness
	// physically (paxos blocks without a majority), not via the engine.
	Opt core.Options
	// Paxos tunes the consensus timing (zero fields take defaults).
	Paxos paxos.Config
	// TickEvery maps wall time to failure.Time: one tick per interval.
	// Detector stabilisation and crash schedules key on ticks. Default 1ms.
	TickEvery time.Duration
	// Heartbeat is the safety-net rescan interval. Stepping is wakeup-driven
	// — replica applies and local enqueues wake the owning node — so the
	// timer only covers guards gated on time alone: γ(g) and the §6.1
	// indicators move with the failure pattern, never with a shared object,
	// so nothing else re-opens them after a crash. Default 5ms.
	Heartbeat time.Duration
	// Membership describes the deployment: which replicas exist (with their
	// daemons' addresses in multi-process deployments) and which of them
	// this instance embodies. Nil means the single-OS-process default —
	// every process is local. Only local processes get stepping goroutines
	// and paxos/replog state, and delivery obligations are checked for
	// local processes only; the rest of the topology lives in peer OS
	// processes reachable over the transport. Non-local multicasts must
	// still be announced in the same global order at every daemon via
	// Announce (message IDs are positional).
	Membership *Membership
	// Storage supplies each local process's write-ahead log. Nil defaults
	// to a fresh in-memory WAL per process (storage.NewMem) — group-commit
	// semantics with no disk. Multi-process deployments (cmd/amcastd
	// -data-dir) pass file-backed logs here for crash recovery.
	Storage func(groups.Process) storage.WAL
}

// membership resolves the deployment descriptor: nil means the
// single-OS-process default (every process local, no addresses).
func (cfg Config) membership() Membership {
	if cfg.Membership != nil {
		return *cfg.Membership
	}
	return Membership{}
}

// System is a live run: Algorithm 1 nodes stepped by goroutines over the
// replicated backend, with crash injection driven by the failure pattern.
//
//	nw := net.New(topo.NumProcesses())       // or chaos.Wrap(...)
//	sys := live.NewSystem(topo, pat, nw, live.Config{})
//	sys.Start()
//	m := sys.Multicast(0, 1, []byte("x"))
//	ok := sys.AwaitDelivery(10 * time.Second)
//	sys.Stop()
//	violations := sys.Check()
type System struct {
	Topo  *groups.Topology
	Pat   *failure.Pattern
	Sh    *core.Shared
	Nodes []*core.Node
	Net   net.Transport

	be   *Backend
	cfg  Config
	mem  Membership
	tick atomic.Int64
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// wakeCh holds one capacity-1 wakeup channel per owned process (nil for
	// the rest). A send is level-triggered: a wakeup arriving while the node
	// drains parks in the buffer and re-runs the drain, so notifications
	// racing a going-to-sleep node are never lost.
	wakeCh []chan struct{}

	// dch broadcasts local deliveries to AwaitDelivery waiters: closed and
	// replaced under dmu on every delivery (fetch the channel BEFORE
	// re-checking the predicate).
	dmu sync.Mutex
	dch chan struct{}
}

// NewSystem assembles a live system over the transport. The transport must
// span topo.NumProcesses() processes; wrap it in chaos.Wrap for fault
// injection. Call Start to launch it.
func NewSystem(topo *groups.Topology, pat *failure.Pattern, nw net.Transport, cfg Config) *System {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 5 * time.Millisecond
	}
	if cfg.Opt.QuorumGate {
		panic("live: QuorumGate is an engine-run construct; the live substrate gates on real quorums")
	}
	if cfg.Storage == nil {
		// The default in-memory WALs still feed the recorder's counter block
		// (nil-safe when no recorder is attached), so the bench can report
		// WAL bytes/op on the mem path too.
		rec := cfg.Opt.Rec
		cfg.Storage = func(groups.Process) storage.WAL { return storage.NewMem().Observe(rec.WAL()) }
	}
	s := &System{
		Topo: topo,
		Pat:  pat,
		Net:  nw,
		mem:  cfg.membership(),
		stop: make(chan struct{}),
		dch:  make(chan struct{}),
	}
	// Every local delivery pings the AwaitDelivery broadcast; the caller's
	// hook (if any) still runs, after ours.
	userOnDeliver := cfg.Opt.OnDeliver
	cfg.Opt.OnDeliver = func(p groups.Process, m *msg.Message, t failure.Time) {
		s.notifyDelivery()
		if userOnDeliver != nil {
			userOnDeliver(p, m, t)
		}
	}
	s.cfg = cfg
	s.Sh = core.NewSharedWithBackend(topo, pat, cfg.Opt, func(sh *core.Shared) core.Backend {
		s.be = NewBackend(topo, sh.Reg, sh.Mu, nw, s.now, cfg.Opt.Variant == core.StronglyGenuine, cfg.Paxos, cfg.Opt.Rec, s.mem, cfg.Storage)
		return s.be
	})
	// Wake plumbing must exist before the nodes: building a core.Node
	// eagerly creates its backend log replicas, and replica creation is
	// when the apply-notification hook is attached.
	s.wakeCh = make([]chan struct{}, topo.NumProcesses())
	for p := range s.wakeCh {
		if s.owns(groups.Process(p)) {
			s.wakeCh[p] = make(chan struct{}, 1)
		}
	}
	s.be.SetNotify(s.wake)
	// Only owned processes get automatons: a non-owned process's replicas
	// live in the daemon that owns it. Slots for non-owned processes stay
	// nil (Multicast and runNode only ever touch owned ones).
	s.Nodes = make([]*core.Node, topo.NumProcesses())
	for p := range s.Nodes {
		if s.owns(groups.Process(p)) {
			s.Nodes[p] = core.NewNode(groups.Process(p), s.Sh)
		}
	}
	return s
}

// wake nudges p's stepping goroutine: something p observes may have changed
// (a replica applied decided operations, or a client enqueued a request).
// Non-blocking — a full buffer means a wakeup is already pending.
func (s *System) wake(p groups.Process) {
	if int(p) >= len(s.wakeCh) {
		return
	}
	ch := s.wakeCh[p]
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// notifyDelivery closes-and-replaces the delivery broadcast channel.
func (s *System) notifyDelivery() {
	s.dmu.Lock()
	close(s.dch)
	s.dch = make(chan struct{})
	s.dmu.Unlock()
}

// deliveryCh returns the current broadcast channel. Waiters must fetch it
// before evaluating their predicate: any delivery after the fetch closes
// this very channel, so the sleep cannot miss it.
func (s *System) deliveryCh() <-chan struct{} {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.dch
}

// now is the backend's clock: the current tick.
func (s *System) now() failure.Time { return failure.Time(s.tick.Load()) }

// Now returns the current tick (drivers use it to schedule multicasts
// relative to the crash schedule).
func (s *System) Now() failure.Time { return s.now() }

// owns reports whether this System instance embodies p (all processes in
// the single-OS-process default).
func (s *System) owns(p groups.Process) bool {
	return s.mem.Owns(p)
}

// Start launches the ticker and one stepping goroutine per owned process.
func (s *System) Start() {
	// A crash scheduled at tick 0 means failed-from-the-beginning: enact it
	// before any stepper runs. Waiting for the first clock tick would give
	// the process ~TickEvery of life — enough for the batched hot path to
	// commit a whole run before the "initial" crash lands.
	for p := 0; p < s.Topo.NumProcesses(); p++ {
		pp := groups.Process(p)
		if ct := s.Pat.CrashTime(pp); ct != failure.Never && ct <= 0 {
			s.Net.Crash(pp)
		}
	}
	s.wg.Add(1)
	go s.runClock()
	for p := range s.Nodes {
		if !s.owns(groups.Process(p)) {
			continue
		}
		s.wg.Add(1)
		go s.runNode(groups.Process(p))
	}
}

// runClock advances the tick and applies the failure pattern's crash
// schedule to the transport: at its crash tick a process goes silent
// (fail-stop), exactly what the detectors' histories assume.
func (s *System) runClock() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	crashed := make(map[groups.Process]bool)
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			now := failure.Time(s.tick.Add(1))
			for p := 0; p < s.Topo.NumProcesses(); p++ {
				pp := groups.Process(p)
				ct := s.Pat.CrashTime(pp)
				if ct != failure.Never && now >= ct && !crashed[pp] {
					crashed[pp] = true
					s.Net.Crash(pp)
				}
			}
		}
	}
}

// runNode steps one node until shutdown (or its crash). Stepping is
// wakeup-driven: drain every enabled action, then sleep until a replica
// apply or client enqueue wakes the node — or the heartbeat fires, covering
// the guards gated on time alone (see Config.Heartbeat). A step that blocks
// inside a shared-object operation is unblocked by Net.Close at Stop.
func (s *System) runNode(p groups.Process) {
	defer s.wg.Done()
	n := s.Nodes[p]
	sched := s.cfg.Opt.Rec.Sched()
	wake := s.wakeCh[p]
	timer := time.NewTimer(s.cfg.Heartbeat)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.Net.Crashed(p) {
			return
		}
		// Drain: fire until no guard holds, re-sampling the tick each step
		// (γ queries must see time advance across a long chain). The stop
		// check inside the loop matters: after Stop closes the transport,
		// shared-object operations complete degraded and a guard can stay
		// enabled forever — the drain must not outlive the run.
		for n.Step(&engine.Ctx{Now: s.now()}) {
			select {
			case <-s.stop:
				return
			default:
			}
			if s.Net.Crashed(p) {
				return
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.Heartbeat)
		select {
		case <-s.stop:
			return
		case <-wake:
			sched.IncNotifyWakeup()
		case <-timer.C:
			sched.IncTimerWakeup()
		}
	}
}

// Multicast issues a client multicast from src to group dst. The sender
// must belong to dst (closed dissemination model, enforced by Shared).
func (s *System) Multicast(src groups.Process, dst groups.GroupID, payload []byte) *msg.Message {
	return s.MulticastClassed(src, dst, payload, msg.ClassAll)
}

// MulticastClassed is Multicast with an explicit conflict-class tag
// (Generic-variant runs driven by class-tagged schedules).
func (s *System) MulticastClassed(src groups.Process, dst groups.GroupID, payload []byte, class msg.Class) *msg.Message {
	m := s.Sh.RequestClassed(src, dst, payload, class, s.now())
	s.Nodes[src].Multicast(m)
	s.wake(src)
	return m
}

// Announce registers a multicast issued by a process another daemon
// embodies. Message IDs are positional in the registry, so every daemon
// must see the same multicast schedule in the same order — the owning
// daemon calls Multicast, every other daemon calls Announce with identical
// arguments, and both paths register the message and append it to the
// relevant logs' obligations without enqueueing it at a local (non-owned)
// sender node.
func (s *System) Announce(src groups.Process, dst groups.GroupID, payload []byte) *msg.Message {
	return s.AnnounceClassed(src, dst, payload, msg.ClassAll)
}

// AnnounceClassed is Announce with an explicit conflict-class tag; peer
// daemons must pass the same tag as the owning daemon's MulticastClassed.
func (s *System) AnnounceClassed(src groups.Process, dst groups.GroupID, payload []byte, class msg.Class) *msg.Message {
	return s.Sh.RequestClassed(src, dst, payload, class, s.now())
}

// allDelivered mirrors the Termination checker's obligation: every
// multicast message is delivered by every correct member of its
// destination group.
func (s *System) allDelivered() bool {
	type ev struct {
		p groups.Process
		m msg.ID
	}
	got := make(map[ev]bool)
	for _, d := range s.Sh.Deliveries() {
		got[ev{d.P, d.M}] = true
	}
	for _, m := range s.Sh.Reg.All() {
		for _, p := range s.Topo.Group(m.Dst).Members() {
			// Only owned processes can be checked locally: a peer daemon's
			// deliveries are not visible in this Shared instance.
			if !s.Pat.IsCorrect(p) || !s.owns(p) {
				continue
			}
			if !got[ev{p, m.ID}] {
				return false
			}
		}
	}
	return true
}

// AwaitDelivery blocks until every issued multicast is delivered at every
// correct destination member, or the timeout elapses; it reports success.
func (s *System) AwaitDelivery(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.AwaitDeliveryCtx(ctx)
}

// AwaitDeliveryCtx is AwaitDelivery under a caller-supplied context: it
// blocks until full delivery, context cancellation, or Stop, and reports
// whether full delivery was reached.
//
// The wait is broadcast-driven, not a poll: every local delivery closes the
// broadcast channel, and the channel is fetched before the predicate is
// evaluated, so a delivery landing between the check and the sleep still
// wakes the waiter. A coarse fallback timer covers deliveries this instance
// cannot observe directly (none today — allDelivered only inspects owned
// processes — but it keeps the wait robust to future remote signals).
func (s *System) AwaitDeliveryCtx(ctx context.Context) bool {
	fallback := time.NewTimer(100 * time.Millisecond)
	defer fallback.Stop()
	for {
		ch := s.deliveryCh()
		if s.allDelivered() {
			return true
		}
		if !fallback.Stop() {
			select {
			case <-fallback.C:
			default:
			}
		}
		fallback.Reset(100 * time.Millisecond)
		select {
		case <-ctx.Done():
			return false
		case <-s.stop:
			return s.allDelivered()
		case <-ch:
		case <-fallback.C:
		}
	}
}

// Stop freezes the trace and tears the run down: the trace freeze comes
// first so operations completing degraded during shutdown cannot corrupt
// the evidence; closing the transport then unblocks every node parked
// inside a consensus operation.
func (s *System) Stop() {
	s.once.Do(func() {
		s.Sh.Freeze()
		close(s.stop)
		s.Net.Close()
		s.wg.Wait()
	})
}

// Trace exports the run evidence for the checkers. TookSteps is nil — wall
// clock runs have no step ledger, so the Minimality checker is skipped
// (genuineness is an engine-run property; see internal/check).
func (s *System) Trace() *check.Trace {
	local := make(map[groups.Process][]msg.ID)
	for _, d := range s.Sh.Deliveries() {
		local[d.P] = append(local[d.P], d.M)
	}
	multicast := make(map[msg.ID]failure.Time, s.Sh.Reg.Len())
	first := make(map[msg.ID]failure.Time)
	for _, m := range s.Sh.Reg.All() {
		multicast[m.ID] = s.Sh.RequestedAt(m.ID)
		if t, ok := s.Sh.FirstDeliveredAt(m.ID); ok {
			first[m.ID] = t
		}
	}
	tr := &check.Trace{
		Topo:           s.Topo,
		Pat:            s.Pat,
		Reg:            s.Sh.Reg,
		LocalOrder:     local,
		Multicast:      multicast,
		FirstDelivered: first,
	}
	if s.Sh.Opt.Variant == core.Generic {
		tr.Conflicts = s.Sh.Conflicts
	}
	return tr
}

// Report assembles the run's observability: the recorder's view (timeline,
// latency, coordination, paxos/replog counters) decorated with what only
// this layer knows — the tick clock, the transport's traffic counters, and
// the nemesis injection counters when the transport is chaos-wrapped. The
// live substrate keeps no per-process step ledger, so StepsAccounted stays
// false (steps are an engine-run quantity).
func (s *System) Report() obs.RunReport {
	rep := s.Sh.Rec().Report()
	rep.Backend = "live"
	rep.Processes = s.Topo.NumProcesses()
	rep.Groups = s.Topo.NumGroups()
	rep.Ticks = s.tick.Load()
	if nr, ok := s.Net.(obs.NetReporter); ok {
		rep.Net = nr.NetReport()
	}
	if wr, ok := s.Net.(obs.WireReporter); ok {
		rep.Wire = wr.WireReport()
	}
	if cr, ok := s.Net.(obs.ChaosReporter); ok {
		rep.Chaos = cr.InjectionReport()
	}
	return rep
}

// Check validates the completed run against the specification and returns
// the violations (empty means the run satisfied it). Call after Stop, or
// at a quiescent point.
func (s *System) Check() []*check.Violation {
	strict := s.Sh.Opt.Variant == core.Strict
	pairwise := s.Sh.Opt.Variant == core.Pairwise
	generic := s.Sh.Opt.Variant == core.Generic
	return check.All(s.Trace(), strict, pairwise, generic)
}
