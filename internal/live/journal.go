package live

import (
	"fmt"

	"repro/internal/paxos"
	"repro/internal/replog"
)

// JournalDiff diffs every replica's applied-op journal against the decided
// batches in the same process's own paxos decision snapshot — the ROADMAP
// item-3 flake hunt as a callable check. For each journalled slot, the op
// sequence applied at apply time must be exactly the op sequence the
// decided value of that slot decodes to. A mismatch here while the
// cross-process decision snapshots still agree bit-for-bit localises a fork
// in decide delivery (applyAt was fed a value the acceptor never recorded)
// rather than in consensus itself.
//
// Journals are empty unless replog.SetJournal(true) (or the soak env
// toggle) was armed before the system started; with journalling off the
// diff trivially passes. Call after Stop — the walk reads replica state
// without synchronising against live stepping.
func (s *System) JournalDiff() []error {
	var errs []error
	s.be.lk.Lock()
	reps := make(map[repKey]*replog.Replica, len(s.be.reps))
	for key, rep := range s.be.reps {
		reps[key] = rep
	}
	s.be.lk.Unlock()
	for key, rep := range reps {
		realm := uint64(key.pair.A)<<32 | uint64(uint32(key.pair.B))
		snap := s.be.nodes[key.p].SnapshotDecisions()
		j := rep.Journal()
		for i := 0; i < len(j); {
			slot := j[i].Slot
			inst := paxos.InstanceID{Space: paxos.SpaceLog, Realm: realm, Slot: int64(slot)}
			v, ok := snap[inst]
			if !ok {
				errs = append(errs, fmt.Errorf("p%d log %v: applied slot %d that its own decision snapshot does not contain",
					key.p, key.pair, slot))
				break // the journal walk needs the batch length to advance
			}
			want, err := replog.DecodeBatch(v)
			if err != nil {
				errs = append(errs, fmt.Errorf("p%d log %v: decided batch of slot %d does not decode: %v",
					key.p, key.pair, slot, err))
				break
			}
			for k := range want {
				if i+k >= len(j) || j[i+k].Slot != slot || j[i+k].Op != want[k] {
					errs = append(errs, fmt.Errorf("p%d log %v: applied ops of slot %d diverge from the decided batch at op %d (journal tail %+v, decided %+v)",
						key.p, key.pair, slot, k, j[i:], want))
					return errs
				}
			}
			i += len(want)
		}
	}
	return errs
}
