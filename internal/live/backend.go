// Package live runs Algorithm 1 over the real message-passing stack: every
// shared log is an internal/replog replicated state machine (per-slot paxos
// inside its hosting group) and every CONS_{m,f} a dedicated paxos instance,
// all over a net.Transport — the reliable fabric or the adversarial one
// (internal/chaos). It is the §4.3 composition made concrete: the node logic
// of internal/core is substrate-agnostic, and this package supplies the
// replicated substrate, where the deterministic engine supplies the ideal
// one.
//
// The System type in system.go drives a full run: one goroutine per process
// stepping its core.Node against this backend, a wall-clock ticker standing
// in for the virtual clock (failure detectors and crash schedules key on
// ticks), and trace extraction for internal/check.
package live

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
	"repro/internal/replog"
	"repro/internal/storage"
)

// Backend implements core.Backend over replicated logs and paxos consensus.
// Each process has one paxos node (acceptor + proposer) on the transport and
// one replog replica per log it touches; replicas of a log replicate over
// the log's hosting group.
type Backend struct {
	topo   *groups.Topology
	reg    *msg.Registry
	nw     net.Transport
	mu     *fd.Mu
	clock  func() failure.Time
	strong bool // StronglyGenuine: host LOG_{g∩h} inside g∩h
	rec    *obs.Recorder

	nodes []*paxos.Node

	// notify, when set, is invoked with the owning process whenever one of
	// its replicas applies decided operations (see SetNotify).
	notify func(groups.Process)

	lk   sync.Mutex
	reps map[repKey]*replog.Replica
	cons map[liveConsKey]*liveCons
}

type repKey struct {
	p    groups.Process
	pair core.PairKey
}

type liveConsKey struct {
	p   groups.Process
	m   msg.ID
	fam groups.GroupSet
}

var _ core.Backend = (*Backend)(nil)

// NewBackend builds the replicated substrate: one paxos node per local
// process of the membership descriptor (an empty descriptor means every
// process); replicas and consensus instances are created on demand. clock
// supplies the current tick for failure-detector queries (leader election
// follows Ω at the current time). rec, when non-nil, receives the
// substrate's counters (paxos work, replog applies, per-pair coordination).
// store supplies each local process's WAL (nil for none — acceptors then
// run memory-only with no recovery). In a multi-process deployment each
// daemon's backend runs acceptors only for the processes it embodies — the
// rest answer from their own OS processes over the transport.
func NewBackend(topo *groups.Topology, reg *msg.Registry, mu *fd.Mu, nw net.Transport, clock func() failure.Time, strong bool, pcfg paxos.Config, rec *obs.Recorder, mem Membership, store func(groups.Process) storage.WAL) *Backend {
	b := &Backend{
		topo:   topo,
		reg:    reg,
		nw:     nw,
		mu:     mu,
		clock:  clock,
		strong: strong,
		rec:    rec,
		nodes:  make([]*paxos.Node, topo.NumProcesses()),
		reps:   make(map[repKey]*replog.Replica),
		cons:   make(map[liveConsKey]*liveCons),
	}
	pcfg.Counters = rec.Paxos()
	for p := range b.nodes {
		if !mem.Owns(groups.Process(p)) {
			continue
		}
		cfg := pcfg
		if store != nil {
			cfg.WAL = store(groups.Process(p))
		}
		b.nodes[p] = paxos.StartNodeWithConfig(nw, groups.Process(p), cfg)
		// Even a node that never hosts a replog replica must answer
		// misdirected op forwards with a NACK (see replog.AttachForwarding).
		replog.AttachForwarding(b.nodes[p], groups.Process(p), nw)
	}
	return b
}

// SetNotify installs the change-notification fan-in: fn(p) is called (from
// replica apply paths — it must be cheap and non-blocking) whenever p's copy
// of some log gains decided operations. The live System routes it to the
// per-process wakeup channels so stepping is event-driven rather than
// polled. Call before the first Log — replicas attach the hook at creation.
func (b *Backend) SetNotify(fn func(groups.Process)) { b.notify = fn }

// hosting returns the replication scope of LOG_{g∩h} and the Ω that elects
// its paxos leader. As in the Sim backend, the lower-numbered group hosts
// ("atop some group, say g"); under the strongly genuine variation the
// intersection hosts itself from Ω_{g∩h} ∧ Σ_{g∩h}.
func (b *Backend) hosting(pair core.PairKey) (groups.ProcSet, fd.Omega) {
	if pair.A == pair.B {
		return b.topo.Group(pair.A), b.mu.OmegaFor(pair.A)
	}
	if b.strong {
		if o, ok := b.mu.OmegaIntersectionFor(pair.A, pair.B); ok {
			return b.topo.Intersection(pair.A, pair.B), o
		}
	}
	return b.topo.Group(pair.A), b.mu.OmegaFor(pair.A)
}

// leaderFunc adapts an Ω history to the paxos leader interface, sampling it
// at the backend's current tick. With no leader sample yet the process
// trusts itself — safe (quorum intersection), merely contended.
func (b *Backend) leaderFunc(o fd.Omega) paxos.LeaderFunc {
	return func(q groups.Process) groups.Process {
		if l, ok := o.Leader(q, b.clock()); ok {
			return l
		}
		return q
	}
}

// Log implements core.Backend: p's replica of LOG_{g∩h}, created on first
// use (the replica starts its apply loop immediately).
func (b *Backend) Log(p groups.Process, g, h groups.GroupID) core.LogObject {
	pair := core.CanonPair(g, h)
	key := repKey{p: p, pair: pair}
	b.lk.Lock()
	defer b.lk.Unlock()
	if r, ok := b.reps[key]; ok {
		return b.wrapLog(r, pair)
	}
	name := fmt.Sprintf("LOG_g%d", pair.A)
	if pair.A != pair.B {
		name = fmt.Sprintf("LOG_g%d∩g%d", pair.A, pair.B)
	}
	// The realm packs the canonical pair: distinct pair logs get distinct
	// Multi-Paxos realms on the shared per-process paxos node.
	realm := uint64(pair.A)<<32 | uint64(uint32(pair.B))
	scope, omega := b.hosting(pair)
	r := replog.NewReplica(name, realm, p, b.nodes[p], b.nw, scope, b.leaderFunc(omega))
	r.Observe(b.rec.Replog())
	if b.notify != nil {
		pp := p
		r.OnApply(func() { b.notify(pp) })
	}
	// Conflict-class plumbing: stamp locally enqueued message appends with
	// the registry's tag and adopt tags arriving in decided ops, so every
	// replica — including daemons whose local schedule carried no tag — ends
	// up evaluating the same class-induced relation. Both hooks read only the
	// replicated schedule (message IDs are positional), so they are
	// deterministic across replicas as SetClassHooks requires.
	r.SetClassHooks(
		func(d logobj.Datum) uint64 {
			if d.Kind != logobj.KindMsg {
				return 0
			}
			return uint64(b.reg.ClassOf(d.Msg))
		},
		func(d logobj.Datum, c uint64) {
			if d.Kind != logobj.KindMsg {
				return
			}
			b.reg.LearnClass(d.Msg, msg.Class(c))
		},
	)
	b.reps[key] = r
	return b.wrapLog(r, pair)
}

// wrapLog builds p's LogObject view of a replica, carrying what coordination
// recording needs: the pair label and the replication scope every mutation
// coordinates (the live substrate has no adopt-commit fast path — every
// operation is a replicated slot in the hosting scope).
func (b *Backend) wrapLog(r *replog.Replica, pair core.PairKey) liveLog {
	scope, _ := b.hosting(pair)
	return liveLog{r: r, rec: b.rec, pair: obs.Pair{A: pair.A, B: pair.B}, scope: scope}
}

// Cons implements core.Backend: p's handle on the dedicated paxos instance
// of CONS_{m,fam}, hosted by dst(m) (consensus is solvable in each group
// from Σ_g ∧ Ω_g).
func (b *Backend) Cons(p groups.Process, m msg.ID, fam groups.GroupSet) core.Consensus {
	key := liveConsKey{p: p, m: m, fam: fam}
	b.lk.Lock()
	defer b.lk.Unlock()
	if c, ok := b.cons[key]; ok {
		return c
	}
	dst := b.reg.Get(m).Dst
	// CONS_{m,f} is a single-shot instance: the message ID is the realm and
	// the family bitmask the slot, so distinct (m, f) pairs cannot collide
	// with each other or with any SpaceLog realm. No MultiPaxos — there is
	// no slot sequence to lease.
	c := &liveCons{
		node: b.nodes[p],
		ins: &paxos.Instance{
			ID:     paxos.InstanceID{Space: paxos.SpaceCons, Realm: uint64(m), Slot: int64(fam)},
			Scope:  b.topo.Group(dst),
			Net:    b.nw,
			Leader: b.leaderFunc(b.mu.OmegaFor(dst)),
		},
	}
	b.cons[key] = c
	return c
}

// Sync implements core.Backend: walk p's replicas through every decision
// already learnt locally before a discovery scan (the apply loops do this
// continuously; Sync just front-runs them for read freshness).
func (b *Backend) Sync(p groups.Process) {
	b.lk.Lock()
	reps := make([]*replog.Replica, 0, 8)
	for key, r := range b.reps {
		if key.p == p {
			reps = append(reps, r)
		}
	}
	b.lk.Unlock()
	for _, r := range reps {
		r.Sync()
	}
}

// liveLog adapts a replog replica to the core.LogObject surface. Mutators
// block until the operation is decided (or the transport shuts down); reads
// run against the local copy, which may lag the decided prefix — the node
// guards simply stay false until the apply loop catches up.
type liveLog struct {
	r     *replog.Replica
	rec   *obs.Recorder
	pair  obs.Pair
	scope groups.ProcSet
}

func (l liveLog) Append(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum) int {
	l.rec.Coordination(l.pair, l.scope, false)
	if pos, ok := l.r.Append(d); ok {
		return pos
	}
	return l.r.Pos(d) // shutdown: best-effort local answer
}

func (l liveLog) BumpAndLock(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum, k int) {
	l.rec.Coordination(l.pair, l.scope, false)
	l.r.BumpAndLock(d, k)
}

func (l liveLog) Contains(d logobj.Datum) bool {
	var out bool
	l.r.Read(func(lg *logobj.Log) { out = lg.Contains(d) })
	return out
}

func (l liveLog) Version() int64 {
	var out int64
	l.r.Read(func(lg *logobj.Log) { out = lg.Version() })
	return out
}

func (l liveLog) Messages() []msg.ID {
	var out []msg.ID
	l.r.Read(func(lg *logobj.Log) { out = lg.Messages() })
	return out
}

func (l liveLog) MessagesSince(from int) []msg.ID {
	var out []msg.ID
	l.r.Read(func(lg *logobj.Log) { out = lg.MessagesSince(from) })
	return out
}

func (l liveLog) MsgCount() int {
	var out int
	l.r.Read(func(lg *logobj.Log) { out = lg.MsgCount() })
	return out
}

func (l liveLog) MessagesBefore(d logobj.Datum) []msg.ID {
	var out []msg.ID
	l.r.Read(func(lg *logobj.Log) { out = lg.MessagesBefore(d) })
	return out
}

func (l liveLog) HasPosTuple(m msg.ID, h groups.GroupID) bool {
	var out bool
	l.r.Read(func(lg *logobj.Log) { out = lg.HasPosTuple(m, h) })
	return out
}

func (l liveLog) MaxPosTuple(m msg.ID) (int, bool) {
	var out int
	var ok bool
	l.r.Read(func(lg *logobj.Log) { out, ok = lg.MaxPosTuple(m) })
	return out, ok
}

// liveCons adapts a paxos instance to the core.Consensus surface.
type liveCons struct {
	node *paxos.Node
	ins  *paxos.Instance
}

func (c *liveCons) Propose(ctx *engine.Ctx, v int) int {
	if got, ok := c.node.Propose(c.ins, paxos.I64Value(int64(v))); ok {
		return int(got.I64())
	}
	return v // shutdown: the value is never observed (trace is frozen)
}
