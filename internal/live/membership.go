package live

import (
	"fmt"

	"repro/internal/groups"
)

// Replica describes one process of a deployment: its identity in the
// topology and, for multi-process deployments, the address its daemon's
// transport listens on (empty for in-process replicas).
type Replica struct {
	ID   groups.Process
	Addr string
}

// Membership is the explicit deployment descriptor: which replicas make up
// the system, and which of them this instance embodies. It replaces the
// bare positional Config.Owned ProcSet, which conflated "who exists" with
// "who am I" and left addressing to a side channel — cmd/amcastd and the
// live System now share one structure describing both.
//
// The zero value means the single-OS-process default: every process of the
// topology is local and none has an address.
type Membership struct {
	// Replicas lists the deployment's processes. Empty means "every process
	// of the topology, no addresses" (the in-process default).
	Replicas []Replica
	// Local is the set of replica IDs this instance embodies. Empty means
	// all of them.
	Local groups.ProcSet
}

// NewMembership builds the descriptor for a daemon embodying local among
// replicas.
func NewMembership(replicas []Replica, local ...groups.Process) *Membership {
	m := &Membership{Replicas: replicas}
	for _, p := range local {
		m.Local = m.Local.Add(p)
	}
	return m
}

// Owns reports whether this instance embodies p.
func (m Membership) Owns(p groups.Process) bool {
	return m.Local.Empty() || m.Local.Has(p)
}

// Addr returns the listen address of p's daemon ("" when p has none —
// in-process replicas, or an empty descriptor).
func (m Membership) Addr(p groups.Process) string {
	for _, r := range m.Replicas {
		if r.ID == p {
			return r.Addr
		}
	}
	return ""
}

// Addrs returns the address table of every replica that has one, in the
// form the wire transport's dialer consumes.
func (m Membership) Addrs() map[groups.Process]string {
	out := make(map[groups.Process]string, len(m.Replicas))
	for _, r := range m.Replicas {
		if r.Addr != "" {
			out[r.ID] = r.Addr
		}
	}
	return out
}

// Validate checks the descriptor against a topology of n processes: replica
// IDs must be unique and in range, and every local process must be listed
// when the replica list is explicit.
func (m Membership) Validate(n int) error {
	seen := make(map[groups.Process]bool, len(m.Replicas))
	for _, r := range m.Replicas {
		if r.ID < 0 || int(r.ID) >= n {
			return fmt.Errorf("membership: replica id %d outside topology of %d processes", r.ID, n)
		}
		if seen[r.ID] {
			return fmt.Errorf("membership: duplicate replica id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if len(m.Replicas) > 0 {
		for _, p := range m.Local.Members() {
			if !seen[p] {
				return fmt.Errorf("membership: local process %d not in the replica list", p)
			}
		}
	}
	return nil
}
