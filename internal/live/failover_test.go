package live

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
	"repro/internal/replog"
)

// TestLiveLeaseFailover crashes the stable Multi-Paxos leader of g0 while
// multicasts stream through its logs and asserts, across chaos seeds:
//
//	(a) the surviving leader re-acquires the log lease via a full phase-1
//	    round — observable as the lease-acquisition counter advancing after
//	    the crash, when only dead p0 could previously hold the g0 leases;
//	(b) no decided slot ever changes value — every pair of paxos nodes
//	    agrees on every instance both decided, compared bit-for-bit over
//	    the nodes' full decision maps;
//
// plus the standing obligations: full delivery and a clean specification
// trace. Ω stabilises on the lowest-ID correct process, so crashing p0
// moves the leader sample of g0 = {0,1,2} (and of the pair logs g0 hosts)
// to p1 — the fast path must fail over, not just fall back forever.
func TestLiveLeaseFailover(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runLeaseFailover(t, seed)
		})
	}
}

func runLeaseFailover(t *testing.T, seed int64) {
	topo := chainTopo(t)
	const crashTick = 120
	pat := failure.NewPattern(7).WithCrash(0, crashTick)
	c := chaos.Wrap(net.New(7), seed)
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	sys := NewSystem(topo, pat, c, Config{Opt: core.Options{Rec: rec}})
	sys.Start()
	defer sys.Stop()

	plan := chaos.NewPlan(seed, 7, 300*time.Millisecond)
	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Phase 1: stream multicasts into g0 (and the neighbouring groups, so
	// the pair logs g0 hosts see traffic) until the crash tick has passed.
	// acquiredBefore tracks the lease-acquisition count as of the last look
	// at a pre-crash clock: the survivor may re-acquire the g0 leases the
	// moment Ω flips, so a snapshot taken after the crash tick would race
	// with the very event under test.
	senders := []struct {
		p groups.Process
		g groups.GroupID
	}{{1, 0}, {2, 1}, {2, 0}, {4, 1}}
	var acquiredBefore int64
	i := 0
	for {
		now := sys.Now()
		if now < crashTick {
			acquiredBefore = rec.Paxos().LeasesAcquired.Load()
		} else if now >= crashTick+20 {
			break
		}
		s := senders[i%len(senders)]
		sys.Multicast(s.p, s.g, []byte{byte(i)})
		i++
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: more traffic through g0's logs — the new leader p1 cannot
	// serve these slots without acquiring its own lease (any lease p1 held
	// from before was out-balloted by p0's acquisition on a quorum that
	// survives p0's crash).
	for j := 0; j < 6; j++ {
		sys.Multicast(1, 0, []byte{byte(100 + j)})
		time.Sleep(5 * time.Millisecond)
	}
	<-nmDone

	if !sys.AwaitDelivery(90 * time.Second) {
		sys.Stop()
		t.Fatalf("seed %d: no full delivery after leader crash (%d multicasts, %d deliveries, stats %+v)",
			seed, sys.Sh.Reg.Len(), len(sys.Sh.Deliveries()), c.Stats())
	}
	sys.Stop()

	// (a) Failover re-acquisition happened, via the only path that can
	// install a lease: a full phase-1 range round.
	if got := rec.Paxos().LeasesAcquired.Load(); got <= acquiredBefore {
		t.Errorf("seed %d: no lease re-acquisition after the leader crash (acquired %d before, %d after)",
			seed, acquiredBefore, got)
	}

	// (b) Agreement at the paxos layer: any instance decided by two nodes
	// carries the same value at both. This is stronger than the delivery
	// checker — it catches a slot silently re-decided with a different
	// value even if the damage never surfaces in a delivery order.
	snaps := make([]map[paxos.InstanceID]paxos.Value, len(sys.be.nodes))
	for p, node := range sys.be.nodes {
		snaps[p] = node.SnapshotDecisions()
	}
	for p := range snaps {
		for q := p + 1; q < len(snaps); q++ {
			for inst, v := range snaps[p] {
				if w, ok := snaps[q][inst]; ok && !w.Equal(v) {
					t.Fatalf("seed %d: decided slot changed value: %+v = %x at p%d but %x at p%d",
						seed, inst, v, p, w, q)
				}
			}
		}
	}

	for _, v := range sys.Check() {
		t.Errorf("seed %d: specification violation: %v", seed, v)
	}
}

// TestLiveFailoverMidWindow crashes the stable leader while the replog
// submit loops have windows of accept rounds outstanding (burst load, no
// pacing between multicasts) and asserts the survivors agree on every
// realm's decided prefix: a failed windowed round can leave a hole below
// later decided slots, and the drain-and-repair path must reconcile it
// without forking any log. Agreement is checked twice — bit-for-bit on the
// paxos decision maps, and on the applied operation order of every replica
// pair sharing a log.
func TestLiveFailoverMidWindow(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailoverMidWindow(t, seed)
		})
	}
}

func runFailoverMidWindow(t *testing.T, seed int64) {
	// Journal every applied op (replog debug flag) so a fork can be pinned
	// on decide delivery vs consensus after the fact — see the diff below.
	replog.SetJournal(true)
	defer replog.SetJournal(false)

	topo := chainTopo(t)
	const crashTick = 60
	pat := failure.NewPattern(7).WithCrash(0, crashTick)
	c := chaos.Wrap(net.New(7), seed)
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	sys := NewSystem(topo, pat, c, Config{Opt: core.Options{Rec: rec}})
	sys.Start()
	defer sys.Stop()

	plan := chaos.NewPlan(seed, 7, 200*time.Millisecond)
	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Burst half the load immediately so the pipelines are multi-slot deep
	// when the crash tick arrives, then the rest after it so the repaired
	// logs keep extending under the new leader.
	senders := []struct {
		p groups.Process
		g groups.GroupID
	}{{1, 0}, {2, 1}, {2, 0}, {4, 1}}
	for i := 0; i < 16; i++ {
		s := senders[i%len(senders)]
		sys.Multicast(s.p, s.g, []byte{byte(i)})
	}
	for sys.Now() < crashTick+20 {
		time.Sleep(5 * time.Millisecond)
	}
	for i := 16; i < 28; i++ {
		s := senders[i%len(senders)]
		sys.Multicast(s.p, s.g, []byte{byte(i)})
	}
	<-nmDone

	if !sys.AwaitDelivery(90 * time.Second) {
		sys.Stop()
		t.Fatalf("seed %d: no full delivery after mid-window crash (%d multicasts, %d deliveries)",
			seed, sys.Sh.Reg.Len(), len(sys.Sh.Deliveries()))
	}
	sys.Stop()

	// The scenario only means something if the window actually opened.
	if rec.Paxos().WindowRounds.Load() == 0 {
		t.Errorf("seed %d: no windowed rounds fired — burst did not engage the pipeline", seed)
	}

	// Paxos-level agreement, bit-for-bit.
	snaps := make([]map[paxos.InstanceID]paxos.Value, len(sys.be.nodes))
	for p, node := range sys.be.nodes {
		snaps[p] = node.SnapshotDecisions()
	}
	for p := range snaps {
		for q := p + 1; q < len(snaps); q++ {
			for inst, v := range snaps[p] {
				if w, ok := snaps[q][inst]; ok && !w.Equal(v) {
					t.Fatalf("seed %d: decided slot changed value: %+v = %x at p%d but %x at p%d",
						seed, inst, v, p, w, q)
				}
			}
		}
	}

	// Replog-level agreement: every pair of replicas of the same log agrees
	// on the common prefix of the applied operation order.
	byPair := make(map[core.PairKey][]*replog.Replica)
	sys.be.lk.Lock()
	for key, rep := range sys.be.reps {
		byPair[key.pair] = append(byPair[key.pair], rep)
	}
	sys.be.lk.Unlock()
	for pair, reps := range byPair {
		ref := reps[0].Snapshot()
		for _, rep := range reps[1:] {
			got := rep.Snapshot()
			n := len(ref)
			if len(got) < n {
				n = len(got)
			}
			for i := 0; i < n; i++ {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: log %v forked at position %d: %v vs %v",
						seed, pair, i, ref[i], got[i])
				}
			}
		}
	}

	// Journal vs decision diff (the ROADMAP item 3 flake hunt): every op a
	// replica journalled at apply time must be exactly the op sequence the
	// decided batch of that slot carries in the same node's own decision
	// snapshot. If this diff fires while the bit-for-bit snapshot agreement
	// above held, the fork is in decide *delivery* (applyAt was fed a value
	// the acceptor never recorded); if both fire, it is a consensus fork.
	// The same check guards every loadsim soak scenario via JournalDiff.
	for _, err := range sys.JournalDiff() {
		t.Fatalf("seed %d: journal/decision diff: %v", seed, err)
	}

	for _, v := range sys.Check() {
		t.Errorf("seed %d: specification violation: %v", seed, v)
	}
}
