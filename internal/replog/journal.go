package replog

import (
	"os"
	"sync/atomic"
)

// Applied-op journal — the debug instrument for the rare decided-log fork
// once seen in TestLiveFailoverMidWindow (ROADMAP item 3): two replicas of
// one pair log applied adjacent ops in opposite orders while their paxos
// decision snapshots agreed. The journal records, per replica, exactly
// which op was applied from which slot, so a fork can be diffed against the
// decision snapshot at the moment it happens: if the journals disagree
// where the snapshots agree, the bug is in decide *delivery* (applyAt fed
// by a different value than the acceptor recorded); if the snapshots also
// disagree, it is a consensus fork.
//
// Off by default — a journal of every applied op would grow without bound
// on long soaks — and enabled either by SetJournal or the
// REPRO_REPLOG_JOURNAL environment variable.

// journalOn gates journal collection globally (a per-replica flag would
// need plumbing through every construction site for a debug-only tool).
var journalOn atomic.Bool

func init() {
	if os.Getenv("REPRO_REPLOG_JOURNAL") != "" {
		journalOn.Store(true)
	}
}

// SetJournal switches applied-op journalling on or off for replicas' future
// applies. Tests flip it on around the window they want evidence for.
func SetJournal(on bool) { journalOn.Store(on) }

// JournalEntry is one applied operation: the slot whose decided batch
// carried it and the op itself, in application order.
type JournalEntry struct {
	Slot int
	Op   Op
}

// Journal returns a copy of the replica's applied-op journal (empty unless
// journalling was enabled during the applies).
func (r *Replica) Journal() []JournalEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]JournalEntry(nil), r.journal...)
}
