package replog

import (
	"testing"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/paxos"
)

// The batch codec sits on the submit hot path: every batch funnelled
// through consensus is packed into one paxos value and unpacked at every
// replica's apply. The benchmarks cover the common shapes — a lone op
// (idle system) and a full window's worth (saturated system).

func benchOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Kind:  opBumpAndLock,
			Datum: logobj.Datum{Kind: logobj.KindPos, Msg: msg.ID(1234 + i), H: groups.GroupID(7), I: 4321},
			K:     99 + i,
		}
	}
	return ops
}

var sinkVal paxos.Value
var sinkOps []Op

func BenchmarkEncodeBatch1(b *testing.B)  { benchEncode(b, 1) }
func BenchmarkEncodeBatch64(b *testing.B) { benchEncode(b, maxBatchOps) }

func benchEncode(b *testing.B, n int) {
	ops := benchOps(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkVal = EncodeBatch(ops)
	}
}

func BenchmarkDecodeBatch1(b *testing.B)  { benchDecode(b, 1) }
func BenchmarkDecodeBatch64(b *testing.B) { benchDecode(b, maxBatchOps) }

func benchDecode(b *testing.B, n int) {
	v := EncodeBatch(benchOps(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops, err := DecodeBatch(v)
		if err != nil {
			b.Fatal(err)
		}
		sinkOps = ops
	}
}
