package replog

import (
	"testing"

	"repro/internal/groups"
	"repro/internal/logobj"
)

// The encode/decode pair sits on the submit hot path: every operation
// funnelled through consensus is packed to an int64 and unpacked at every
// replica's apply. Both must stay allocation-free.

var benchOp = Op{
	Kind:  opBumpAndLock,
	Datum: logobj.Datum{Kind: logobj.KindPos, Msg: 1234, H: groups.GroupID(7), I: 4321},
	K:     99,
}

var sinkVal int64
var sinkOp Op

func BenchmarkEncode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkVal = encode(benchOp)
	}
}

func BenchmarkDecode(b *testing.B) {
	v := encode(benchOp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkOp = decode(v)
	}
}
