package replog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/paxos"
	"repro/internal/storage"
)

// pcHarness is a replicated log whose processes can be power-cycled: each
// paxos node writes a Mem WAL, and the chaos power hooks kill -9 a process
// (fence the old incarnation, drop its unsynced WAL tail) and reboot it
// (rebuild node and replica from the durable log).
type pcHarness struct {
	c      *chaos.Chaos
	scope  groups.ProcSet
	leader paxos.LeaderFunc

	mu       sync.Mutex
	wals     []*storage.Mem
	nodes    []*paxos.Node
	reps     []*Replica
	restarts atomic.Int64
}

func newPCHarness(n int, seed int64) *pcHarness {
	h := &pcHarness{
		c:      chaos.Wrap(net.New(n), seed),
		leader: func(groups.Process) groups.Process { return 0 },
		wals:   make([]*storage.Mem, n),
		nodes:  make([]*paxos.Node, n),
		reps:   make([]*Replica, n),
	}
	for p := 0; p < n; p++ {
		h.scope = h.scope.Add(groups.Process(p))
	}
	for p := 0; p < n; p++ {
		h.wals[p] = storage.NewMem()
		h.boot(groups.Process(p))
	}
	h.c.OnPowerCycle(h.powerOff, h.powerOn)
	return h
}

// boot builds process p's node and replica over its WAL (caller holds mu or
// is the single-threaded constructor).
func (h *pcHarness) boot(p groups.Process) {
	node := paxos.StartNodeWithConfig(h.c, p, paxos.Config{WAL: h.wals[p]})
	h.nodes[p] = node
	h.reps[p] = NewReplica("LOG", 1, p, node, h.c, h.scope, h.leader)
}

// powerOff is the kill -9 moment: the endpoint is already crashed (the
// chaos layer does that first); fencing the old incarnation stops its
// leftover proposer goroutines from ever claiming another ballot, and the
// WAL loses everything a real crash would — the unsynced tail.
func (h *pcHarness) powerOff(p groups.Process) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nodes[p].Fence()
	h.wals[p].PowerCycle()
}

// powerOn reboots p: the endpoint is already restarted; the node replays
// the durable log and a fresh replica replays the recovered decided prefix.
func (h *pcHarness) powerOn(p groups.Process) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.boot(p)
	h.restarts.Add(1)
}

// rep returns the current incarnation of p's replica.
func (h *pcHarness) rep(p int) *Replica {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reps[p]
}

// TestPowerCycleDecidedPrefixAgrees runs ten seeded power-cycle schedules
// against a five-replica log under load and asserts, per seed, after every
// process is back up:
//
//	(a) bit-for-bit agreement of the paxos decision maps — any instance two
//	    nodes both decided carries the same value at both, recovered nodes
//	    included;
//	(b) bit-for-bit agreement of the applied logs on their common prefix —
//	    recovery rebuilt each applied state machine onto the same sequence.
//
// Appends race the outages, so some block on a killed incarnation and never
// return (exactly a client talking to a dead server); the assertions only
// need the fence appends issued after the final reboot to land.
func TestPowerCycleDecidedPrefixAgrees(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runPowerCycle(t, seed)
		})
	}
}

func runPowerCycle(t *testing.T, seed int64) {
	const n = 5
	h := newPCHarness(n, seed)
	defer h.c.Close()

	plan := chaos.NewPowerPlan(seed, n, 300*time.Millisecond)
	nm := &chaos.Nemesis{C: h.c, Plan: plan}
	nmDone := nm.Go()

	// Stream appends from every process while the plan runs. The goroutines
	// are fire-and-forget: an append caught on a power-cycled incarnation
	// blocks forever, so nothing here may touch t, and nothing waits on them.
	var landed atomic.Int64
	for p := 0; p < n; p++ {
		go func(p int) {
			for i := 0; i < 8; i++ {
				if _, ok := h.rep(p).Append(logobj.MsgDatum(msg.ID(100*p + i + 1))); ok {
					landed.Add(1)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(p)
	}
	<-nmDone

	if h.restarts.Load() == 0 {
		t.Fatalf("plan power-cycled nobody:\n%s", plan)
	}

	// Fence appends: with every process back up these must all land, and
	// completing one walks that replica through every slot decided below it
	// — the recovered replicas' catch-up path.
	fenced := make(chan bool, n)
	for p := 0; p < n; p++ {
		go func(p int) {
			_, ok := h.rep(p).Append(logobj.MsgDatum(msg.ID(1000 + p)))
			fenced <- ok
		}(p)
	}
	deadline := time.After(60 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case ok := <-fenced:
			if !ok {
				t.Fatalf("seed %d: fence append failed after recovery", seed)
			}
		case <-deadline:
			t.Fatalf("seed %d: fence append still blocked %v after the plan quiesced (restarts=%d, stats=%+v)",
				seed, 60*time.Second, h.restarts.Load(), h.c.Stats())
		}
	}
	if landed.Load() == 0 {
		t.Fatalf("seed %d: no background append landed", seed)
	}

	h.mu.Lock()
	nodes := append([]*paxos.Node(nil), h.nodes...)
	reps := append([]*Replica(nil), h.reps...)
	h.mu.Unlock()

	// (a) Paxos-level agreement, bit-for-bit across recovered nodes.
	snaps := make([]map[paxos.InstanceID]paxos.Value, n)
	for p, node := range nodes {
		snaps[p] = node.SnapshotDecisions()
	}
	for p := range snaps {
		for q := p + 1; q < len(snaps); q++ {
			for inst, v := range snaps[p] {
				if w, ok := snaps[q][inst]; ok && !w.Equal(v) {
					t.Fatalf("seed %d: decided slot changed value across a power cycle: %+v = %x at p%d but %x at p%d",
						seed, inst, v, p, w, q)
				}
			}
		}
	}

	// (b) Applied-log agreement on the common prefix, bit-for-bit.
	ref := reps[0].Snapshot()
	for p := 1; p < n; p++ {
		got := reps[p].Snapshot()
		m := len(ref)
		if len(got) < m {
			m = len(got)
		}
		for i := 0; i < m; i++ {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: applied log forked at position %d: %v at p0 vs %v at p%d",
					seed, i, ref[i], got[i], p)
			}
		}
	}
	assertPairwiseOrder(t, reps)
}
