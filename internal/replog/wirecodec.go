package replog

import (
	"repro/internal/logobj"
	"repro/internal/paxos"
	"repro/internal/wire"
)

// Varint wire codec for Op and for op batches. A batch is the consensus
// value of one slot: a count followed by the ops, each encoded with the
// same varint fields the standalone Op frame body uses. Paxos carries the
// batch as an opaque paxos.Value, so the consensus substrate never needs to
// know the operation structure — and any registered datum round-trips with
// no field-width caps (the old bit-packed int64 form limited message ids to
// 2^16 and groups to 2^8).

func encOp(e *wire.Enc, o Op) {
	e.I64(int64(o.Kind))
	logobj.EncodeDatum(e, o.Datum)
	e.I64(int64(o.K))
	e.U64(o.Class)
}

func decOp(d *wire.Dec) Op {
	o := Op{Kind: opKind(d.I64()), Datum: logobj.DecodeDatum(d), K: int(d.I64()), Class: d.U64()}
	switch o.Kind {
	case opAppend, opBumpAndLock:
	default:
		d.Failf("replog: bad op kind %d", o.Kind)
	}
	return o
}

// EncodeBatch packs a batch of operations into one consensus value. An
// empty batch is valid — it is the no-op slot the repair path uses to seal
// a hole without inventing work.
func EncodeBatch(ops []Op) paxos.Value {
	var e wire.Enc
	e.U64(uint64(len(ops)))
	for _, o := range ops {
		encOp(&e, o)
	}
	return paxos.Value(e.Bytes())
}

// DecodeBatch is the inverse of EncodeBatch. Arbitrary input yields an
// error, never a panic.
func DecodeBatch(v paxos.Value) ([]Op, error) {
	d := wire.NewDec([]byte(v))
	n := d.Len(3)
	ops := make([]Op, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		ops = append(ops, decOp(d))
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return ops, nil
}

// FwdBatch is a follower's operation hand-off to the realm's leaseholder:
// "batch these into your slot stream". It is a hint, not a decision path —
// the follower keeps its waiters and falls back to proposing itself if the
// ops stay unsatisfied — so losing or duplicating the frame costs latency,
// never safety (both log operations are idempotent).
type FwdBatch struct {
	Realm uint64
	Ops   []Op
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f FwdBatch) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	e.U64(f.Realm)
	e.U64(uint64(len(f.Ops)))
	for _, o := range f.Ops {
		encOp(&e, o)
	}
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *FwdBatch) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	f.Realm = d.U64()
	n := d.Len(3)
	f.Ops = nil
	for i := 0; i < n && d.Err() == nil; i++ {
		f.Ops = append(f.Ops, decOp(d))
	}
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (o Op) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encOp(&e, o)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (o *Op) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	*o = decOp(d)
	return d.Close()
}

func init() {
	wire.Register(wire.TReplogOp, "replog.Op", func(b []byte) (any, error) {
		var o Op
		if err := o.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return o, nil
	})
	wire.Register(wire.TReplogFwd, "replog.FwdBatch", func(b []byte) (any, error) {
		var f FwdBatch
		if err := f.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return f, nil
	})
}
