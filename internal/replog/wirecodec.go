package replog

import (
	"repro/internal/logobj"
	"repro/internal/wire"
)

// Varint wire codec for Op. The bit-packed int64 form (encode/decode in
// replog.go) stays as the consensus value — paxos decides int64s — but that
// packing caps message ids at 2^16 and groups at 2^8. On the wire the
// operation is a first-class frame body with varint fields, so any
// registered datum round-trips regardless of those caps.

// MarshalBinary implements encoding.BinaryMarshaler.
func (o Op) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	e.I64(int64(o.Kind))
	logobj.EncodeDatum(&e, o.Datum)
	e.I64(int64(o.K))
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (o *Op) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	o.Kind = opKind(d.I64())
	o.Datum = logobj.DecodeDatum(d)
	o.K = int(d.I64())
	switch o.Kind {
	case opAppend, opBumpAndLock:
	default:
		d.Failf("replog: bad op kind %d", o.Kind)
	}
	return d.Close()
}

func init() {
	wire.Register(wire.TReplogOp, "replog.Op", func(b []byte) (any, error) {
		var o Op
		if err := o.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return o, nil
	})
}
