package replog

import (
	"sync"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/paxos"
	"repro/internal/wire"
)

// Leader forwarding. A replica whose process is not the realm's leaseholder
// used to propose every operation itself, which under load degenerates into
// ballot duels: each follower's synchronous Propose fights the leader's
// pipeline for the same slots. Instead, followers hand their pending
// operations to the leaseholder as one TReplogFwd frame; the leader's submit
// loop batches them into its windowed slot stream alongside its own, so the
// realm sees one proposer and many ops per accept round.
//
// Forwarding is strictly a hint. The follower keeps its waiters — they
// complete when the decided slots apply locally, exactly as if the op had
// been proposed here — and falls back to proposing itself once fwdPatience
// elapses without satisfaction (leader crashed, frame lost, stale Ω). Both
// log operations are idempotent, so an op landing in two batches is the
// sequential spec's no-op; losing or duplicating a forward costs latency,
// never safety.
const (
	// fwdResend is how often a follower re-sends its still-pending ops to
	// the leaseholder: the frame is fire-and-forget, so a drop is repaired
	// by the next resend rather than an ack protocol.
	fwdResend = 4 * time.Millisecond
	// fwdPatience is how long an op may ride the forwarding hint before the
	// follower proposes it locally — the liveness backstop, sized to a few
	// resends so a healthy leader nearly always wins first.
	fwdPatience = 16 * time.Millisecond
	// fwdMuteFor is how long a follower stops forwarding to a leader that
	// NACKed (no replica of the realm at that process — it never operates on
	// this log, so it has no batcher to help with). Muted, the follower
	// proposes locally, which for a single-submitter log is the optimum
	// anyway. The mute expires so a leader that starts using the log — or a
	// leadership change — is picked up again.
	fwdMuteFor = 2 * time.Second
)

// fwdMux fans TReplogFwd frames arriving at one paxos node out to the
// replicas hosted on it, by realm. The node's message loop is the single
// consumer of the process inbox, so replicas cannot each read their own
// frames; instead the first replica on a node registers one Handle hook and
// every replica adds itself to the shared realm table.
type fwdMux struct {
	mu   sync.Mutex
	reps map[uint64]*Replica
	// p and nw are the hosting process and its transport (shared by every
	// replica on the node), captured on first add so dispatch can NACK
	// forwards for realms with no replica here.
	p  groups.Process
	nw net.Transport
}

var fwdMuxes sync.Map // *paxos.Node -> *fwdMux

// muxFor returns the forwarding mux of a node, registering the wire hook on
// first use.
func muxFor(node *paxos.Node) *fwdMux {
	if m, ok := fwdMuxes.Load(node); ok {
		return m.(*fwdMux)
	}
	m := &fwdMux{reps: make(map[uint64]*Replica)}
	if actual, loaded := fwdMuxes.LoadOrStore(node, m); loaded {
		return actual.(*fwdMux)
	}
	node.Handle(wire.TReplogFwd, m.dispatch)
	return m
}

func (m *fwdMux) add(realm uint64, r *Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reps[realm] = r
	m.p, m.nw = r.p, r.nw
}

// AttachForwarding registers the forwarding handler on a node that may host
// no replica at all, so misdirected forwards are NACKed instead of silently
// dropped (the forwarder would otherwise burn its full patience on every
// op). NewReplica attaches implicitly; deployments should attach every node
// whose process could be sampled as leader of a realm it never operates on.
func AttachForwarding(node *paxos.Node, p groups.Process, nw net.Transport) {
	m := muxFor(node)
	m.mu.Lock()
	if m.nw == nil {
		m.p, m.nw = p, nw
	}
	m.mu.Unlock()
}

// dispatch runs on the paxos node's message loop and must not block: it
// resolves the realm and hands the ops to the replica's lock-guarded queue.
// An empty Ops list is the NACK ("no batcher for this realm here") — sent
// when a forward lands on a process with no replica of the realm, received
// when our own forward was refused.
func (m *fwdMux) dispatch(pkt net.Packet) {
	f, ok := pkt.Body.(FwdBatch)
	if !ok {
		return
	}
	m.mu.Lock()
	r := m.reps[f.Realm]
	p, nw := m.p, m.nw
	m.mu.Unlock()
	switch {
	case len(f.Ops) == 0:
		if r != nil {
			r.fwdRefused(pkt.From)
		}
	case r != nil:
		r.enqueueRemote(f.Ops)
	case nw != nil:
		// This process never operates on the realm's log: the Ω sample made
		// it leader of a scope it hosts no batcher for. Tell the forwarder
		// to stop hinting and propose locally.
		nw.Send(p, pkt.From, wire.TReplogFwd, FwdBatch{Realm: f.Realm})
	}
}

// fwdRefused mutes forwarding toward the refusing leader and wakes the
// submit loop so the pending ops go the local-propose route immediately
// instead of waiting out their patience.
func (r *Replica) fwdRefused(from groups.Process) {
	r.mu.Lock()
	r.noFwdTo = from
	r.noFwdUntil = time.Now().Add(fwdMuteFor)
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// fwdMuted reports whether forwarding toward lead is currently muted.
func (r *Replica) fwdMuted(lead groups.Process) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return lead == r.noFwdTo && time.Now().Before(r.noFwdUntil)
}

// enqueueRemote queues forwarded operations at the (presumed) leaseholder.
// Remote waiters have no done channel — nobody here blocks on them; the
// forwarding follower completes its own waiter when the decided slot applies
// over there. Ops already satisfied by the replicated state or already
// queued (the resend path re-sends liberally) are dropped.
func (r *Replica) enqueueRemote(ops []Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	accepted := 0
next:
	for _, o := range ops {
		switch o.Kind {
		case opAppend:
			if r.local.Pos(o.Datum) != 0 {
				continue
			}
		case opBumpAndLock:
			if r.local.Locked(o.Datum) {
				continue
			}
		default:
			continue
		}
		for _, w := range r.queue {
			if w.state != stateDone && w.op == o {
				continue next
			}
		}
		r.queue = append(r.queue, &waiter{op: o, enq: time.Now()})
		accepted++
	}
	if accepted > 0 {
		r.counters.Load().AddRemote(accepted)
		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
}

// splitPending partitions the pending queue at a follower: ops whose
// patience expired are promoted to inflight (the caller proposes them
// locally), the rest are candidates for (re-)forwarding. resend gates
// whether already-forwarded ops are sent again. pending reports whether any
// pending op remains queued behind the hint, i.e. whether the caller must
// arm its retry timer.
func (r *Replica) splitPending(now time.Time, resend bool) (overdue []*waiter, fwd []Op, pending bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.queue {
		if w.state != statePending {
			continue
		}
		if now.Sub(w.enq) >= fwdPatience && len(overdue) < maxBatchOps {
			w.state = stateInflight
			overdue = append(overdue, w)
			continue
		}
		pending = true
		if (resend || !w.fwd) && len(fwd) < maxBatchOps {
			w.fwd = true
			fwd = append(fwd, w.op)
		}
	}
	return overdue, fwd, pending
}
