// Package replog is a live universal construction (Herlihy, §4.3 of the
// paper): the shared log object replicated over message passing by funnelling
// operations through an unbounded sequence of consensus instances — one
// slot per operation — each solved by the paxos substrate (Ω ∧ Σ inside the
// hosting group). Every replica applies the decided operations in slot
// order to its local copy of the log, so the replicated object linearizes
// to the sequential specification of internal/logobj.
//
// This is the substrate behind the in-memory objects the deterministic
// engine uses; the engine's charge model (internal/uc) mirrors the costs
// this package actually pays.
package replog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
)

// opKind is the operation type funnelled through consensus.
type opKind int64

const (
	opAppend opKind = iota + 1
	opBumpAndLock
)

// Op is one log operation.
type Op struct {
	Kind  opKind
	Datum logobj.Datum
	K     int
}

// encode packs an operation into a consensus value. Field widths bound the
// encodable space (message ids < 2^16, groups < 2^8, positions < 2^16) —
// far beyond any run the library builds, and checked at encode time.
func encode(o Op) int64 {
	if o.Datum.Msg >= 1<<16 || o.Datum.H >= 1<<8 || o.Datum.I >= 1<<16 || o.K >= 1<<16 {
		panic(fmt.Sprintf("replog: operation out of encodable range: %+v", o))
	}
	v := int64(o.Kind)
	v = v<<2 | int64(o.Datum.Kind)
	v = v<<16 | int64(o.Datum.Msg)
	v = v<<8 | int64(o.Datum.H)
	v = v<<16 | int64(o.Datum.I)
	v = v<<16 | int64(o.K)
	return v
}

// decode unpacks a consensus value.
func decode(v int64) Op {
	var o Op
	o.K = int(v & 0xffff)
	v >>= 16
	o.Datum.I = int(v & 0xffff)
	v >>= 16
	o.Datum.H = groups.GroupID(v & 0xff)
	v >>= 8
	o.Datum.Msg = msg.ID(v & 0xffff)
	v >>= 16
	o.Datum.Kind = logobj.Kind(v & 0x3)
	v >>= 2
	o.Kind = opKind(v)
	return o
}

// nudgeEvery is how soon a replica stuck waiting on an undecided slot
// first broadcasts an anti-entropy probe: the decide broadcast for the slot
// may have been dropped by an adversarial fabric, and some peer (the
// proposer at least) knows the decision. Probes back off exponentially to
// probeCap while the slot stays undecided — an idle log's tail slot is
// indistinguishable from a stalled one, and without the backoff every
// replica floods the scope with probes whenever the log is merely quiet.
// The backoff resets each time a slot is applied, so active streams keep
// the fast first probe and idle logs cost a bounded trickle.
const (
	nudgeEvery = 2 * time.Millisecond
	probeCap   = 64 * time.Millisecond
)

// Replica is one process's handle on the replicated log: a local copy of
// the object plus the consensus plumbing to agree on the operation order.
//
// A background apply loop follows the decided slots in order and applies
// them to the local copy the moment they are learnt; waiters block on a
// condition variable signalled per apply, so there is no polling anywhere.
type Replica struct {
	name  string
	realm uint64
	p     groups.Process
	node  *paxos.Node
	scope groups.ProcSet
	mkIns func(slot int) *paxos.Instance

	// counters is set via Observe after the apply loop is already running,
	// hence the atomic pointer rather than a constructor argument.
	counters atomic.Pointer[obs.ReplogCounters]

	mu      sync.Mutex
	cond    *sync.Cond // signalled on every apply (and on SyncWait timeout)
	applied int        // operations applied so far
	local   *logobj.Log
}

// Observe attaches run counters to the replica. Safe to call while the
// apply loop is running; nil detaches.
func (r *Replica) Observe(c *obs.ReplogCounters) { r.counters.Store(c) }

// NewReplica builds the replica of process p and starts its apply loop. All
// replicas of a log must share the name, realm, scope and network; realm is
// the log's identity in the paxos instance space (paxos.SpaceLog), so
// distinct logs on a shared paxos node MUST use distinct realms — a
// collision would merge their slot sequences, which is a safety violation,
// not a performance bug. The slots of a realm form one Multi-Paxos log: a
// stable leader acquires a lease over the whole realm and streams slots
// through single accept rounds. The apply loop stops when the paxos node's
// message loop exits (network shutdown).
func NewReplica(name string, realm uint64, p groups.Process, node *paxos.Node, nw net.Transport, scope groups.ProcSet, leader paxos.LeaderFunc) *Replica {
	r := &Replica{
		name:  name,
		realm: realm,
		p:     p,
		node:  node,
		scope: scope,
		local: logobj.New(name),
	}
	r.cond = sync.NewCond(&r.mu)
	r.mkIns = func(slot int) *paxos.Instance {
		return &paxos.Instance{
			ID:         r.instID(slot),
			Scope:      scope,
			Net:        nw,
			Leader:     leader,
			MultiPaxos: true,
		}
	}
	go r.applyLoop()
	return r
}

// instID is the consensus-instance identity of a slot.
func (r *Replica) instID(slot int) paxos.InstanceID {
	return paxos.InstanceID{Space: paxos.SpaceLog, Realm: r.realm, Slot: int64(slot)}
}

// applyLoop drives the replica forward: await the decision of the next
// unapplied slot, apply it, repeat. While a slot stays undecided it
// periodically probes the peers (anti-entropy), covering dropped decide
// broadcasts for slots this replica never proposes in.
func (r *Replica) applyLoop() {
	timer := time.NewTimer(nudgeEvery)
	defer timer.Stop()
	for {
		r.mu.Lock()
		slot := r.applied
		r.mu.Unlock()
		inst := r.instID(slot)
		ch := r.node.Await(inst)
		wait := nudgeEvery
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
	waiting:
		for {
			select {
			case v := <-ch:
				r.applyAt(slot, v)
				break waiting
			case <-r.node.Done():
				return
			case <-timer.C:
				// Only probe when the slot is genuinely stalled; if a
				// concurrent submit advanced us past it, re-resolve.
				if r.Applied() > slot {
					break waiting
				}
				r.node.RequestDecision(r.scope, inst)
				if wait < probeCap {
					wait *= 2
				}
				timer.Reset(wait)
			}
		}
	}
}

// Append funnels LOG.append(d) through consensus and returns the position
// of d in the replicated log, or false at shutdown.
//
// Helping fast path: append is idempotent, so when the local copy already
// contains d some decided slot appended it — the operation's effect is in
// the replicated state and re-submitting it would only decide a no-op slot.
// Algorithm 1's members all execute the same steps (helping), so in the
// steady state every follower takes this read-only exit and the log's slot
// stream carries each operation exactly once, proposed by whoever got
// there first (usually the paxos leader).
func (r *Replica) Append(d logobj.Datum) (int, bool) {
	r.mu.Lock()
	if pos := r.local.Pos(d); pos != 0 {
		r.mu.Unlock()
		return pos, true
	}
	r.mu.Unlock()
	if !r.submit(Op{Kind: opAppend, Datum: d}) {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Pos(d), true
}

// BumpAndLock funnels LOG.bumpAndLock(d, k) through consensus. Once d is
// locked locally a decided slot locked it and any further bumpAndLock is a
// no-op on the sequential specification, so the helping submit is skipped
// the same way as Append's.
func (r *Replica) BumpAndLock(d logobj.Datum, k int) bool {
	r.mu.Lock()
	locked := r.local.Locked(d)
	r.mu.Unlock()
	if locked {
		return true
	}
	return r.submit(Op{Kind: opBumpAndLock, Datum: d, K: k})
}

// submit proposes the operation at successive slots until it is decided,
// applying every decided operation along the way.
func (r *Replica) submit(o Op) bool {
	r.counters.Load().IncSubmit()
	want := encode(o)
	for {
		r.mu.Lock()
		slot := r.applied
		r.mu.Unlock()
		decided, ok := r.node.Propose(r.mkIns(slot), want)
		if !ok {
			return false
		}
		r.applyAt(slot, decided)
		if decided == want {
			return true
		}
	}
}

// SyncWait blocks until at least n operations are applied or the timeout
// elapses, and reports success. Decide broadcasts are asynchronous, so a
// passive replica may learn a decision a moment after the proposer returns;
// the apply loop wakes this waiter the moment the slot lands.
func (r *Replica) SyncWait(n int, timeout time.Duration) bool {
	r.Sync() // pick up anything already decided locally
	timedOut := false
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		timedOut = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.applied < n && !timedOut {
		r.cond.Wait()
	}
	return r.applied >= n
}

// Sync applies every operation decided up to the replica's current horizon
// (catch-up for replicas that did not propose).
func (r *Replica) Sync() {
	for {
		r.mu.Lock()
		slot := r.applied
		r.mu.Unlock()
		v, ok := r.node.Decided(r.instID(slot))
		if !ok {
			return
		}
		r.applyAt(slot, v)
	}
}

// applyAt applies the decided operation of a slot exactly once, in order.
func (r *Replica) applyAt(slot int, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot != r.applied {
		return // already applied (or a gap, which submit will revisit)
	}
	o := decode(v)
	switch o.Kind {
	case opAppend:
		r.local.Append(o.Datum)
	case opBumpAndLock:
		if r.local.Contains(o.Datum) {
			r.local.BumpAndLock(o.Datum, o.K)
		}
	}
	r.applied++
	r.counters.Load().IncApply()
	r.cond.Broadcast()
}

// Snapshot returns the datum order of the local copy.
func (r *Replica) Snapshot() []logobj.Datum {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Items()
}

// Read runs fn against the local copy under the replica's lock. fn must not
// retain the log or call back into the replica. The live backend's guard
// evaluations go through here.
func (r *Replica) Read(fn func(l *logobj.Log)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.local)
}

// Pos returns the local position of d.
func (r *Replica) Pos(d logobj.Datum) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Pos(d)
}

// Locked reports whether d is locked locally.
func (r *Replica) Locked(d logobj.Datum) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Locked(d)
}

// Applied returns how many operations this replica has applied.
func (r *Replica) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}
