// Package replog is a live universal construction (Herlihy, §4.3 of the
// paper): the shared log object replicated over message passing by funnelling
// operations through an unbounded sequence of consensus instances — one
// slot per operation — each solved by the paxos substrate (Ω ∧ Σ inside the
// hosting group). Every replica applies the decided operations in slot
// order to its local copy of the log, so the replicated object linearizes
// to the sequential specification of internal/logobj.
//
// This is the substrate behind the in-memory objects the deterministic
// engine uses; the engine's charge model (internal/uc) mirrors the costs
// this package actually pays.
package replog

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/paxos"
)

// opKind is the operation type funnelled through consensus.
type opKind int64

const (
	opAppend opKind = iota + 1
	opBumpAndLock
)

// Op is one log operation.
type Op struct {
	Kind  opKind
	Datum logobj.Datum
	K     int
}

// encode packs an operation into a consensus value. Field widths bound the
// encodable space (message ids < 2^16, groups < 2^8, positions < 2^16) —
// far beyond any run the library builds, and checked at encode time.
func encode(o Op) int64 {
	if o.Datum.Msg >= 1<<16 || o.Datum.H >= 1<<8 || o.Datum.I >= 1<<16 || o.K >= 1<<16 {
		panic(fmt.Sprintf("replog: operation out of encodable range: %+v", o))
	}
	v := int64(o.Kind)
	v = v<<2 | int64(o.Datum.Kind)
	v = v<<16 | int64(o.Datum.Msg)
	v = v<<8 | int64(o.Datum.H)
	v = v<<16 | int64(o.Datum.I)
	v = v<<16 | int64(o.K)
	return v
}

// decode unpacks a consensus value.
func decode(v int64) Op {
	var o Op
	o.K = int(v & 0xffff)
	v >>= 16
	o.Datum.I = int(v & 0xffff)
	v >>= 16
	o.Datum.H = groups.GroupID(v & 0xff)
	v >>= 8
	o.Datum.Msg = msg.ID(v & 0xffff)
	v >>= 16
	o.Datum.Kind = logobj.Kind(v & 0x3)
	v >>= 2
	o.Kind = opKind(v)
	return o
}

// Replica is one process's handle on the replicated log: a local copy of
// the object plus the consensus plumbing to agree on the operation order.
type Replica struct {
	name  string
	p     groups.Process
	node  *paxos.Node
	scope groups.ProcSet
	mkIns func(slot int) *paxos.Instance

	mu      sync.Mutex
	applied int // operations applied so far
	local   *logobj.Log
}

// NewReplica builds the replica of process p. All replicas of a log must
// share the name, scope and network.
func NewReplica(name string, p groups.Process, node *paxos.Node, nw net.Transport, scope groups.ProcSet, leader paxos.LeaderFunc) *Replica {
	r := &Replica{
		name:  name,
		p:     p,
		node:  node,
		scope: scope,
		local: logobj.New(name),
	}
	r.mkIns = func(slot int) *paxos.Instance {
		return &paxos.Instance{
			Name:   fmt.Sprintf("%s/%d", name, slot),
			Scope:  scope,
			Net:    nw,
			Leader: leader,
		}
	}
	return r
}

// Append funnels LOG.append(d) through consensus and returns the position
// of d in the replicated log, or false at shutdown.
func (r *Replica) Append(d logobj.Datum) (int, bool) {
	if !r.submit(Op{Kind: opAppend, Datum: d}) {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Pos(d), true
}

// BumpAndLock funnels LOG.bumpAndLock(d, k) through consensus.
func (r *Replica) BumpAndLock(d logobj.Datum, k int) bool {
	return r.submit(Op{Kind: opBumpAndLock, Datum: d, K: k})
}

// submit proposes the operation at successive slots until it is decided,
// applying every decided operation along the way.
func (r *Replica) submit(o Op) bool {
	want := encode(o)
	for {
		r.mu.Lock()
		slot := r.applied
		r.mu.Unlock()
		decided, ok := r.node.Propose(r.mkIns(slot), want)
		if !ok {
			return false
		}
		r.applyAt(slot, decided)
		if decided == want {
			return true
		}
	}
}

// SyncWait polls Sync until at least n operations are applied or the
// timeout elapses, and reports success. Decide broadcasts are asynchronous,
// so a passive replica may learn a decision a moment after the proposer
// returns.
func (r *Replica) SyncWait(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.Sync()
		if r.Applied() >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Sync applies every operation decided up to the replica's current horizon
// (catch-up for replicas that did not propose).
func (r *Replica) Sync() {
	for {
		r.mu.Lock()
		slot := r.applied
		r.mu.Unlock()
		v, ok := r.node.Decided(fmt.Sprintf("%s/%d", r.name, slot))
		if !ok {
			return
		}
		r.applyAt(slot, v)
	}
}

// applyAt applies the decided operation of a slot exactly once, in order.
func (r *Replica) applyAt(slot int, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot != r.applied {
		return // already applied (or a gap, which submit will revisit)
	}
	o := decode(v)
	switch o.Kind {
	case opAppend:
		r.local.Append(o.Datum)
	case opBumpAndLock:
		if r.local.Contains(o.Datum) {
			r.local.BumpAndLock(o.Datum, o.K)
		}
	}
	r.applied++
}

// Snapshot returns the datum order of the local copy.
func (r *Replica) Snapshot() []logobj.Datum {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Items()
}

// Pos returns the local position of d.
func (r *Replica) Pos(d logobj.Datum) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Pos(d)
}

// Locked reports whether d is locked locally.
func (r *Replica) Locked(d logobj.Datum) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Locked(d)
}

// Applied returns how many operations this replica has applied.
func (r *Replica) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}
