// Package replog is a live universal construction (Herlihy, §4.3 of the
// paper): the shared log object replicated over message passing by funnelling
// operations through an unbounded sequence of consensus instances — solved by
// the paxos substrate (Ω ∧ Σ inside the hosting group). Every replica applies
// the decided operations in slot order to its local copy of the log, so the
// replicated object linearizes to the sequential specification of
// internal/logobj.
//
// Slots carry *batches*: a background submit loop gathers every operation
// pending at this replica into one consensus value (EncodeBatch), so a single
// accept round commits many operations. Under a Multi-Paxos lease the loop
// additionally pipelines — it fires a window of consecutive slots through
// paxos.ProposeWindowed without waiting for each to decide — and the decided
// prefix (slot) tracked here guarantees out-of-order decisions still apply in
// order. A failed windowed round can leave a hole below decided later slots;
// the loop then drains the window and repairs the realm synchronously from
// the decided prefix, which cannot skip the hole.
//
// This is the substrate behind the in-memory objects the deterministic
// engine uses; the engine's charge model (internal/uc) mirrors the costs
// this package actually pays.
package replog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
	"repro/internal/wire"
)

// opKind is the operation type funnelled through consensus.
type opKind int64

const (
	opAppend opKind = iota + 1
	opBumpAndLock
)

// Op is one log operation. Class is the conflict-class tag of the datum's
// message (0 for non-message datums and for runs without a conflict
// relation): it rides the consensus value so every replica of the log learns
// the tag from the decided op stream, even when its local schedule never
// registered it. Ops compare with ==, so the class hooks must be
// deterministic — every replica stamping the same datum must produce the
// same tag.
type Op struct {
	Kind  opKind
	Datum logobj.Datum
	K     int
	Class uint64
}

// maxBatchOps caps how many pending operations one slot may carry. The cap
// bounds frame size and the latency cost of replaying one slot; 64 is far
// above the steady-state batch size even under the open-throttle bench.
const maxBatchOps = 64

// nudgeEvery is how soon a replica stuck waiting on an undecided slot
// first broadcasts an anti-entropy probe: the decide broadcast for the slot
// may have been dropped by an adversarial fabric, and some peer (the
// proposer at least) knows the decision. Probes back off exponentially to
// probeCap while the slot stays undecided — an idle log's tail slot is
// indistinguishable from a stalled one, and without the backoff every
// replica floods the scope with probes whenever the log is merely quiet.
// The backoff resets each time a slot is applied, so active streams keep
// the fast first probe and idle logs cost a bounded trickle.
const (
	nudgeEvery = 2 * time.Millisecond
	probeCap   = 64 * time.Millisecond
)

// wstate is the lifecycle of one queued operation.
type wstate int

const (
	statePending  wstate = iota // waiting to be put in a batch
	stateInflight               // part of a fired (or syncing) batch
	stateDone                   // completed; result sent on done
)

// waiter is one caller blocked on an operation. done is buffered so the
// apply path never blocks completing it; it is nil for operations forwarded
// here by another replica (enqueueRemote) — the forwarder's own waiter
// completes at its site when the decided slot applies there. enq and fwd
// drive the follower-side forwarding schedule (see forward.go).
type waiter struct {
	op    Op
	state wstate
	done  chan bool
	enq   time.Time
	fwd   bool
}

// Replica is one process's handle on the replicated log: a local copy of
// the object plus the consensus plumbing to agree on the operation order.
//
// Two background loops drive it: the apply loop follows the decided slots
// in order and applies them to the local copy the moment they are learnt,
// and the submit loop batches queued operations into slots and pipelines
// them through the paxos window. Waiters block on per-operation channels
// completed at apply time, so there is no polling anywhere.
type Replica struct {
	name   string
	realm  uint64
	p      groups.Process
	node   *paxos.Node
	scope  groups.ProcSet
	nw     net.Transport
	leader paxos.LeaderFunc
	mkIns  func(slot int) *paxos.Instance

	// counters is set via Observe after the loops are already running,
	// hence the atomic pointer rather than a constructor argument.
	counters atomic.Pointer[obs.ReplogCounters]

	// onApply is the change-notification hook (see OnApply); an atomic
	// pointer for the same reason as counters.
	onApply atomic.Pointer[func()]

	mu      sync.Mutex
	cond    *sync.Cond // signalled on every apply (and on SyncWait timeout)
	slot    int        // decided-prefix length: next unapplied slot
	applied int        // operations applied so far (ops, not slots)
	local   *logobj.Log
	queue   []*waiter // queued operations, arrival order
	closed  bool      // shutdown: no further enqueues complete

	// Conflict-class hooks (see SetClassHooks). Guarded by mu like the
	// queue they stamp.
	classOf    func(logobj.Datum) uint64
	classLearn func(logobj.Datum, uint64)

	// Forwarding mute (see forward.go): while the sampled leader matches
	// noFwdTo and noFwdUntil is in the future, pending ops are proposed
	// locally instead of forwarded.
	noFwdTo    groups.Process
	noFwdUntil time.Time

	// journal records every applied op when journalling is enabled (see
	// journal.go) — debug evidence for diffing a replica's applied sequence
	// against the paxos decision snapshot.
	journal []JournalEntry

	kick   chan struct{} // wakes the submit loop on enqueue (cap 1)
	winRes chan paxos.WindowResult
}

// Observe attaches run counters to the replica. Safe to call while the
// loops are running; nil detaches.
func (r *Replica) Observe(c *obs.ReplogCounters) { r.counters.Store(c) }

// OnApply installs a change-notification hook, fired (outside the replica
// lock) whenever a decided slot applies operations to the local copy — the
// moment a guard evaluated against this replica may newly hold. The hook
// must be cheap and non-blocking (wakeup-channel sends, not work); it may be
// invoked concurrently from the apply, submit and sync paths. Safe to call
// while the loops are running.
func (r *Replica) OnApply(fn func()) { r.onApply.Store(&fn) }

// SetClassHooks installs the conflict-class plumbing: of stamps each locally
// enqueued op with its datum's class tag (return 0 for untagged data), learn
// consumes the tag of every applied op, letting the caller's registry adopt
// classes carried by the decided op stream. Both hooks MUST be deterministic
// functions of the replicated schedule — every replica stamps the same datum
// with the same tag, or op identity across replicas breaks. Install before
// the replica sees traffic.
func (r *Replica) SetClassHooks(of func(logobj.Datum) uint64, learn func(logobj.Datum, uint64)) {
	r.mu.Lock()
	r.classOf = of
	r.classLearn = learn
	r.mu.Unlock()
}

// NewReplica builds the replica of process p and starts its apply and
// submit loops. All replicas of a log must share the name, realm, scope and
// network; realm is the log's identity in the paxos instance space
// (paxos.SpaceLog), so distinct logs on a shared paxos node MUST use
// distinct realms — a collision would merge their slot sequences, which is
// a safety violation, not a performance bug. The slots of a realm form one
// Multi-Paxos log: a stable leader acquires a lease over the whole realm
// and streams batched slots through a window of accept rounds. The loops
// stop when the paxos node's message loop exits (network shutdown).
func NewReplica(name string, realm uint64, p groups.Process, node *paxos.Node, nw net.Transport, scope groups.ProcSet, leader paxos.LeaderFunc) *Replica {
	r := &Replica{
		name:   name,
		realm:  realm,
		p:      p,
		node:   node,
		scope:  scope,
		nw:     nw,
		leader: leader,
		local:  logobj.New(name),
		kick:   make(chan struct{}, 1),
		// One result per outstanding windowed round, plus the immediate
		// resolutions ProposeWindowed may deliver inline: a channel this
		// deep never blocks the node's message loop.
		winRes: make(chan paxos.WindowResult, node.WindowLimit()+2),
	}
	r.cond = sync.NewCond(&r.mu)
	// The paxos leader sample is the realm's Ω — except while forwarding is
	// muted: the sampled leader hosts no replica of this log (it NACKed), so
	// hedging on it or yielding the lease to it is pointless. Presenting
	// ourselves as leader is a liveness/latency hint only; ballot safety
	// never depends on the sample being accurate.
	lf := func(q groups.Process) groups.Process {
		l := leader(q)
		if q == p && l != p && r.fwdMuted(l) {
			return q
		}
		return l
	}
	r.mkIns = func(slot int) *paxos.Instance {
		return &paxos.Instance{
			ID:         r.instID(slot),
			Scope:      scope,
			Net:        nw,
			Leader:     lf,
			MultiPaxos: true,
		}
	}
	muxFor(node).add(realm, r)
	go r.applyLoop()
	go r.submitLoop()
	return r
}

// instID is the consensus-instance identity of a slot.
func (r *Replica) instID(slot int) paxos.InstanceID {
	return paxos.InstanceID{Space: paxos.SpaceLog, Realm: r.realm, Slot: int64(slot)}
}

// applyLoop drives the replica forward: await the decision of the next
// unapplied slot, apply it, repeat. While a slot stays undecided it
// periodically probes the peers (anti-entropy), covering dropped decide
// broadcasts for slots this replica never proposes in.
func (r *Replica) applyLoop() {
	timer := time.NewTimer(nudgeEvery)
	defer timer.Stop()
	for {
		slot := r.Slot()
		inst := r.instID(slot)
		ch := r.node.Await(inst)
		wait := nudgeEvery
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
	waiting:
		for {
			select {
			case v := <-ch:
				r.applyAt(slot, v)
				break waiting
			case <-r.node.Done():
				return
			case <-timer.C:
				// Only probe when the slot is genuinely stalled; if a
				// concurrent submit advanced us past it, re-resolve.
				if r.Slot() > slot {
					break waiting
				}
				r.node.RequestDecision(r.scope, inst)
				if wait < probeCap {
					wait *= 2
				}
				timer.Reset(wait)
			}
		}
	}
}

// Append funnels LOG.append(d) through consensus and returns the position
// of d in the replicated log, or false at shutdown.
//
// Helping fast path: append is idempotent, so when the local copy already
// contains d some decided slot appended it — the operation's effect is in
// the replicated state and re-submitting it would only grow a no-op batch.
// Algorithm 1's members all execute the same steps (helping), so in the
// steady state every follower takes this read-only exit and the log's slot
// stream carries each operation exactly once, proposed by whoever got
// there first (usually the paxos leader).
func (r *Replica) Append(d logobj.Datum) (int, bool) {
	r.mu.Lock()
	if pos := r.local.Pos(d); pos != 0 {
		r.mu.Unlock()
		return pos, true
	}
	w := r.enqueueLocked(Op{Kind: opAppend, Datum: d})
	r.mu.Unlock()
	if w == nil || !<-w.done {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Pos(d), true
}

// BumpAndLock funnels LOG.bumpAndLock(d, k) through consensus. Once d is
// locked locally a decided slot locked it and any further bumpAndLock is a
// no-op on the sequential specification, so the helping submit is skipped
// the same way as Append's.
func (r *Replica) BumpAndLock(d logobj.Datum, k int) bool {
	r.mu.Lock()
	if r.local.Locked(d) {
		r.mu.Unlock()
		return true
	}
	w := r.enqueueLocked(Op{Kind: opBumpAndLock, Datum: d, K: k})
	r.mu.Unlock()
	return w != nil && <-w.done
}

// enqueueLocked queues an operation for the submit loop (caller holds mu).
// Returns nil when the replica has shut down.
func (r *Replica) enqueueLocked(o Op) *waiter {
	if r.closed {
		return nil
	}
	if r.classOf != nil {
		o.Class = r.classOf(o.Datum)
	}
	w := &waiter{op: o, done: make(chan bool, 1), enq: time.Now()}
	r.queue = append(r.queue, w)
	r.counters.Load().IncSubmit()
	select {
	case r.kick <- struct{}{}:
	default:
	}
	return w
}

// submitLoop turns the pending queue into decided slots. It prefers the
// pipelined path — fire a batch at the next free slot of the paxos window
// and immediately gather more operations — and falls back to a synchronous
// Propose when no lease is held (which acquires one) or at a non-leader
// (which hedges on the leader inside Propose). A window failure switches
// the loop into repair: drain every outstanding round, then drive the
// decided prefix synchronously up to the highest fired slot so no hole
// survives, then resume pipelining.
func (r *Replica) submitLoop() {
	fired := make(map[int64]firedBatch)
	next := 0
	retry := time.NewTimer(time.Hour)
	if !retry.Stop() {
		<-retry.C
	}
	defer retry.Stop()
	var lastFwd time.Time
	for {
		if len(fired) == 0 {
			next = r.Slot()
		}
		var ws []*waiter
		armRetry := false
		if lead := r.leader(r.p); lead != r.p && !r.fwdMuted(lead) {
			// Follower: hand pending ops to the leaseholder's batcher (see
			// forward.go) and keep them queued; only ops whose patience
			// expired are proposed from here.
			now := time.Now()
			overdue, fwd, pending := r.splitPending(now, now.Sub(lastFwd) >= fwdResend)
			if len(fwd) > 0 {
				r.counters.Load().AddFwd(len(fwd))
				r.nw.Send(r.p, lead, wire.TReplogFwd, FwdBatch{Realm: r.realm, Ops: fwd})
				lastFwd = now
			}
			ws = overdue
			armRetry = pending
		} else {
			ws = r.takePending(maxBatchOps)
		}
		if len(ws) > 0 {
			val := EncodeBatch(opsOf(ws))
			if r.node.ProposeWindowed(r.mkIns(next), val, r.winRes) {
				r.counters.Load().AddBatch(len(ws))
				fired[int64(next)] = firedBatch{val: val, ws: ws}
				next++
				continue
			}
			if len(fired) == 0 {
				// No pipeline in flight and no usable lease: the classic
				// synchronous path. On a leader this acquires the lease the
				// next iteration pipelines under.
				slot := r.Slot()
				r.counters.Load().AddBatch(len(ws))
				decided, ok := r.node.Propose(r.mkIns(slot), val)
				if !ok {
					r.shutdown()
					return
				}
				r.applyAt(slot, decided)
				r.requeue(ws)
				continue
			}
			// Window full (or the lease just died): park the ops until the
			// pipeline drains a slot.
			r.requeue(ws)
		}
		if armRetry {
			if !retry.Stop() {
				select {
				case <-retry.C:
				default:
				}
			}
			retry.Reset(fwdResend)
		}
		select {
		case res := <-r.winRes:
			fb, had := fired[res.Inst.Slot]
			delete(fired, res.Inst.Slot)
			if res.OK {
				// Apply the decided slot inline rather than waiting for the
				// apply loop. Slot() only advances on apply, and
				// ProposeWindowed short-circuits already-decided slots, so a
				// loop that merely requeued here would re-fire the same
				// stale slot in a tight spin until the apply goroutine got
				// scheduled — on a loaded (or single-core) machine that
				// starves the very goroutine it is waiting on for a full
				// timeslice per slot. applyAt is a no-op unless this slot is
				// exactly the next unapplied one, so the call is safe out of
				// order and doubles as catch-up when the frontier lags.
				r.applyAt(int(res.Inst.Slot), res.Val)
				if had && !res.Val.Equal(fb.val) {
					// An adopted or foreign value decided this slot; our
					// batch did not land — its unsatisfied ops go again.
					r.requeue(fb.ws)
				}
				continue
			}
			// Pipeline break: this slot did not decide, but later fired
			// slots may have — a hole. Drain and repair.
			if had {
				r.requeue(fb.ws)
			}
			maxSlot := res.Inst.Slot
			for s := range fired {
				if s > maxSlot {
					maxSlot = s
				}
			}
			if !r.drainWindow(fired) || !r.repair(int(maxSlot)) {
				r.shutdown()
				return
			}
			clear(fired)
		case <-r.kick:
		case <-retry.C:
		case <-r.node.Done():
			r.shutdown()
			return
		}
	}
}

// firedBatch is one batch in flight through the paxos window.
type firedBatch struct {
	val paxos.Value
	ws  []*waiter
}

// drainWindow collects the outstanding window results after a failure
// (every fired round delivers exactly one result — quorum, NACK, or its
// deadline timer — so this terminates within a phase deadline).
func (r *Replica) drainWindow(fired map[int64]firedBatch) bool {
	for len(fired) > 0 {
		select {
		case res := <-r.winRes:
			fb, had := fired[res.Inst.Slot]
			if !had {
				continue
			}
			delete(fired, res.Inst.Slot)
			if !res.OK || !res.Val.Equal(fb.val) {
				r.requeue(fb.ws)
			}
		case <-r.node.Done():
			return false
		}
	}
	return true
}

// repair drives the decided prefix synchronously up to and including
// maxSlot, filling holes with whatever is pending (or an empty batch).
// Propose returns instantly for already-decided slots, so the cost is one
// full round per genuine hole.
func (r *Replica) repair(maxSlot int) bool {
	for {
		slot := r.Slot()
		if slot > maxSlot {
			return true
		}
		ws := r.takePending(maxBatchOps)
		decided, ok := r.node.Propose(r.mkIns(slot), EncodeBatch(opsOf(ws)))
		if !ok {
			return false
		}
		r.applyAt(slot, decided)
		r.requeue(ws)
	}
}

// takePending collects up to max pending operations, marking them inflight.
func (r *Replica) takePending(max int) []*waiter {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*waiter
	for _, w := range r.queue {
		if w.state != statePending {
			continue
		}
		w.state = stateInflight
		out = append(out, w)
		if len(out) == max {
			break
		}
	}
	return out
}

// requeue returns not-yet-completed inflight waiters to pending.
func (r *Replica) requeue(ws []*waiter) {
	if len(ws) == 0 {
		return
	}
	r.mu.Lock()
	for _, w := range ws {
		if w.state == stateInflight {
			w.state = statePending
		}
	}
	r.mu.Unlock()
}

// opsOf projects the operations out of a waiter batch.
func opsOf(ws []*waiter) []Op {
	ops := make([]Op, len(ws))
	for i, w := range ws {
		ops[i] = w.op
	}
	return ops
}

// shutdown fails every queued waiter and refuses further enqueues.
func (r *Replica) shutdown() {
	r.mu.Lock()
	r.closed = true
	for _, w := range r.queue {
		if w.state != stateDone {
			w.state = stateDone
			if w.done != nil {
				w.done <- false
			}
		}
	}
	r.queue = nil
	r.cond.Broadcast()
	r.mu.Unlock()
}

// SyncWait blocks until at least n operations are applied or the timeout
// elapses, and reports success. Decide broadcasts are asynchronous, so a
// passive replica may learn a decision a moment after the proposer returns;
// the apply loop wakes this waiter the moment the slot lands.
func (r *Replica) SyncWait(n int, timeout time.Duration) bool {
	r.Sync() // pick up anything already decided locally
	timedOut := false
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		timedOut = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.applied < n && !timedOut {
		r.cond.Wait()
	}
	return r.applied >= n
}

// Sync applies every slot decided up to the replica's current horizon
// (catch-up for replicas that did not propose).
func (r *Replica) Sync() {
	for {
		slot := r.Slot()
		v, ok := r.node.Decided(r.instID(slot))
		if !ok {
			return
		}
		r.applyAt(slot, v)
	}
}

// applyAt applies the decided batch of a slot exactly once, in order, and
// completes every queued waiter whose operation is now satisfied.
func (r *Replica) applyAt(slot int, v paxos.Value) {
	ops, err := DecodeBatch(v)
	if err != nil {
		// Only valid batches are ever proposed (and adoption re-proposes
		// other replicas' batches verbatim), so a decided value that does
		// not decode is state corruption, not input error.
		panic(fmt.Sprintf("replog %s: decided value of slot %d does not decode: %v", r.name, slot, err))
	}
	r.mu.Lock()
	if slot != r.slot {
		r.mu.Unlock()
		return // already applied (or a future slot the prefix hasn't reached)
	}
	jr := journalOn.Load()
	for _, o := range ops {
		if jr {
			r.journal = append(r.journal, JournalEntry{Slot: slot, Op: o})
		}
		if o.Class != 0 && r.classLearn != nil {
			r.classLearn(o.Datum, o.Class)
		}
		switch o.Kind {
		case opAppend:
			r.local.Append(o.Datum)
		case opBumpAndLock:
			if r.local.Contains(o.Datum) {
				r.local.BumpAndLock(o.Datum, o.K)
			}
		}
		r.applied++
		r.counters.Load().IncApply()
	}
	r.slot++
	r.completeLocked(ops)
	r.cond.Broadcast()
	r.mu.Unlock()
	// Notify outside the lock: the hook may fan out to scheduler wakeups,
	// and nothing it needs is guarded by mu. Empty slots (hole repairs)
	// change no state, so they wake nobody.
	if len(ops) > 0 {
		if fn := r.onApply.Load(); fn != nil {
			(*fn)()
		}
	}
}

// completeLocked finishes every waiter whose operation is satisfied by the
// local state after an apply (caller holds mu). Satisfaction is judged on
// the replicated state, not on which slot carried the op — helping means a
// foreign batch may have done our work: an append is done once the datum
// has a position, a bumpAndLock once the datum is locked OR the exact op
// was in the applied batch (covering the no-op bump on an absent datum).
func (r *Replica) completeLocked(ops []Op) {
	keep := r.queue[:0]
	for _, w := range r.queue {
		sat := false
		switch w.op.Kind {
		case opAppend:
			sat = r.local.Pos(w.op.Datum) != 0
		case opBumpAndLock:
			sat = r.local.Locked(w.op.Datum)
		}
		if !sat {
			for _, o := range ops {
				if o == w.op {
					sat = true
					break
				}
			}
		}
		if sat {
			w.state = stateDone
			if w.done != nil {
				w.done <- true
			}
		} else {
			keep = append(keep, w)
		}
	}
	r.queue = keep
}

// Snapshot returns the datum order of the local copy.
func (r *Replica) Snapshot() []logobj.Datum {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Items()
}

// Read runs fn against the local copy under the replica's lock. fn must not
// retain the log or call back into the replica. The live backend's guard
// evaluations go through here.
func (r *Replica) Read(fn func(l *logobj.Log)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.local)
}

// Pos returns the local position of d.
func (r *Replica) Pos(d logobj.Datum) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Pos(d)
}

// Locked reports whether d is locked locally.
func (r *Replica) Locked(d logobj.Datum) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local.Locked(d)
}

// Applied returns how many operations this replica has applied.
func (r *Replica) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Slot returns the decided-prefix length: the next unapplied slot.
func (r *Replica) Slot() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slot
}
