package replog

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/paxos"
)

// chaosCluster wires n replicas of one log over the adversarial fabric.
func chaosCluster(n int, seed int64) (*chaos.Chaos, []*Replica) {
	c := chaos.Wrap(net.New(n), seed)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	leader := func(groups.Process) groups.Process { return 0 }
	reps := make([]*Replica, n)
	for p := 0; p < n; p++ {
		node := paxos.StartNode(c, groups.Process(p))
		reps[p] = NewReplica("LOG", 1, groups.Process(p), node, c, scope, leader)
	}
	return c, reps
}

// localOrders converts replica snapshots into the per-process delivery
// sequences the spec checkers consume: applying the log's operations in
// slot order *is* this substrate's delivery order.
func localOrders(reps []*Replica) map[groups.Process][]msg.ID {
	out := make(map[groups.Process][]msg.ID, len(reps))
	for p, r := range reps {
		for _, d := range r.Snapshot() {
			out[groups.Process(p)] = append(out[groups.Process(p)], d.Msg)
		}
	}
	return out
}

// assertPairwiseOrder runs the internal/check pairwise-ordering checker
// over the replicas' log orders: if some replica applies a before b, no
// replica may apply b before a.
func assertPairwiseOrder(t *testing.T, reps []*Replica) {
	t.Helper()
	tr := &check.Trace{LocalOrder: localOrders(reps)}
	if v := check.PairwiseOrdering(tr); v != nil {
		t.Fatalf("log order violation: %v", v)
	}
}

// TestChaosConcurrentAppendsAgree: concurrent appends from every replica
// under drops, duplication, delay and reorder still funnel into one
// operation order — agreement comes from consensus, not from the fabric.
func TestChaosConcurrentAppendsAgree(t *testing.T) {
	c, reps := chaosCluster(3, 5)
	defer c.Close()
	c.SetFaults(chaos.Faults{
		Drop: 0.08, Dup: 0.08, DelayMax: 150 * time.Microsecond, Reorder: true,
	})

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(10*p + i + 1))); !ok {
					t.Errorf("replica %d append %d failed", p, i)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiesce, then fence: one more append per replica walks it through
	// every decided slot.
	c.Quiesce()
	for p := 0; p < 3; p++ {
		if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(100 + p))); !ok {
			t.Fatalf("fence append failed at replica %d", p)
		}
	}
	for p := 0; p < 3; p++ {
		reps[p].SyncWait(15, 2*time.Second)
	}
	assertPairwiseOrder(t, reps)
	if got := len(reps[0].Snapshot()); got < 12 {
		t.Fatalf("replica 0 has %d items, want >= 12", got)
	}
	if st := c.Stats(); st.DroppedRandom == 0 && st.Duplicated == 0 {
		t.Fatalf("fault mix injected nothing: %+v", st)
	}
}

// TestChaosPartitionedReplicaBlocksThenCatchesUp: a replica the nemesis
// cuts from every quorum must block — its Σ is gone — while staying safe
// (its log remains a prefix of the cluster's), and after heal it both
// completes its pending append and catches up on everything it missed.
func TestChaosPartitionedReplicaBlocksThenCatchesUp(t *testing.T) {
	c, reps := chaosCluster(5, 6)
	defer c.Close()

	if _, ok := reps[0].Append(logobj.MsgDatum(1)); !ok {
		t.Fatalf("seed append failed")
	}
	if !reps[2].SyncWait(1, 2*time.Second) {
		t.Fatalf("replica 2 did not sync the seed append")
	}

	c.Isolate(2)
	blocked := make(chan bool, 1)
	go func() {
		_, ok := reps[2].Append(logobj.MsgDatum(99))
		blocked <- ok
	}()
	select {
	case ok := <-blocked:
		t.Fatalf("isolated replica's append returned %v without a quorum", ok)
	case <-time.After(30 * time.Millisecond):
		// Blocked, as it must be.
	}

	// The majority keeps appending; the isolated replica must not see any
	// of it (safety: its log stays a frozen prefix).
	for i := msg.ID(2); i <= 4; i++ {
		if _, ok := reps[0].Append(logobj.MsgDatum(i)); !ok {
			t.Fatalf("majority append %d failed", i)
		}
	}
	if got := reps[2].Applied(); got > 1 {
		t.Fatalf("isolated replica applied %d operations while cut off", got)
	}
	assertPairwiseOrder(t, reps)

	c.Heal()
	select {
	case ok := <-blocked:
		if !ok {
			t.Fatalf("pending append failed after heal")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pending append still blocked after heal")
	}
	// Catch-up: the healed replica reaches the full history (4 majority
	// appends + its own).
	if !reps[2].SyncWait(5, 2*time.Second) {
		t.Fatalf("healed replica did not catch up: applied %d", reps[2].Applied())
	}
	for p := 0; p < 5; p++ {
		reps[p].SyncWait(5, 2*time.Second)
	}
	assertPairwiseOrder(t, reps)
	if reps[2].Pos(logobj.MsgDatum(99)) == 0 {
		t.Fatalf("healed replica lost its own append")
	}
}
