package replog

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
)

func cluster(n int) (*net.Network, []*Replica) {
	nw := net.New(n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	leader := func(groups.Process) groups.Process { return 0 }
	reps := make([]*Replica, n)
	for p := 0; p < n; p++ {
		node := paxos.StartNode(nw, groups.Process(p))
		reps[p] = NewReplica("LOG", 1, groups.Process(p), node, nw, scope, leader)
	}
	return nw, reps
}

func TestBatchRoundTrip(t *testing.T) {
	f := func(kinds []uint8, m uint16, h uint8, i uint16, k uint16) bool {
		if len(kinds) > maxBatchOps {
			kinds = kinds[:maxBatchOps]
		}
		ops := make([]Op, len(kinds))
		for j, kind := range kinds {
			ops[j] = Op{
				Kind:  opKind(kind%2 + 1),
				Datum: logobj.Datum{Kind: logobj.Kind(kind%3 + 1), Msg: msg.ID(m) + msg.ID(j), H: groups.GroupID(h), I: int(i)},
				K:     int(k),
			}
		}
		got, err := DecodeBatch(EncodeBatch(ops))
		if err != nil || len(got) != len(ops) {
			return false
		}
		for j := range ops {
			if got[j] != ops[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeBatchRejectsGarbage: arbitrary bytes yield an error, never a
// panic and never a phantom op list.
func TestDecodeBatchRejectsGarbage(t *testing.T) {
	f := func(b []byte) bool {
		ops, err := DecodeBatch(paxos.Value(b))
		if err != nil {
			return true
		}
		// Whatever decoded must re-encode to a valid value.
		round, err2 := DecodeBatch(EncodeBatch(ops))
		return err2 == nil && len(round) == len(ops)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyBatchIsNoop: the repair path seals holes with empty batches;
// they must round-trip and decode to zero ops.
func TestEmptyBatchIsNoop(t *testing.T) {
	ops, err := DecodeBatch(EncodeBatch(nil))
	if err != nil || len(ops) != 0 {
		t.Fatalf("empty batch decoded to %v, %v", ops, err)
	}
}

func TestAppendReplicates(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	pos, ok := reps[0].Append(logobj.MsgDatum(1))
	if !ok || pos != 1 {
		t.Fatalf("append: pos=%d ok=%v", pos, ok)
	}
	pos2, ok := reps[1].Append(logobj.MsgDatum(2))
	if !ok || pos2 != 2 {
		t.Fatalf("second append from another replica: pos=%d ok=%v", pos2, ok)
	}
	// Catch-up: replica 2 syncs to the same state.
	if !reps[2].SyncWait(2, time.Second) {
		t.Fatalf("replica 2 did not catch up: %d items", len(reps[2].Snapshot()))
	}
	if got := len(reps[2].Snapshot()); got != 2 {
		t.Fatalf("replica 2 has %d items, want 2", got)
	}
}

func TestBumpAndLockReplicates(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	reps[0].Append(logobj.MsgDatum(1))
	if !reps[1].BumpAndLock(logobj.MsgDatum(1), 7) {
		t.Fatalf("bump failed")
	}
	if !reps[0].SyncWait(2, time.Second) {
		t.Fatalf("replica 0 did not catch up")
	}
	if got := reps[0].Pos(logobj.MsgDatum(1)); got != 7 {
		t.Fatalf("pos after replicated bump = %d, want 7", got)
	}
	if !reps[0].Locked(logobj.MsgDatum(1)) {
		t.Fatalf("lock not replicated")
	}
}

// TestConcurrentAppendsAgree: replicas appending concurrently converge on
// one operation order, i.e. identical snapshots.
func TestConcurrentAppendsAgree(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				reps[p].Append(logobj.MsgDatum(msg.ID(10*p + i + 1)))
			}
		}(p)
	}
	wg.Wait()
	// Fence: submitting one more operation walks a replica through every
	// earlier slot, so after its fence decides it has applied all 15
	// concurrent appends (decide broadcasts alone may still be in flight).
	for p := 0; p < 3; p++ {
		if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(100 + p))); !ok {
			t.Fatalf("fence append failed at replica %d", p)
		}
	}
	ref := reps[0].Snapshot()
	if len(ref) < 15 {
		t.Fatalf("replica 0 has %d items, want >= 15", len(ref))
	}
	// All replicas agree on the common prefix of the operation order.
	minLen := len(ref)
	for p := 1; p < 3; p++ {
		if l := len(reps[p].Snapshot()); l < minLen {
			minLen = l
		}
	}
	for p := 1; p < 3; p++ {
		got := reps[p].Snapshot()
		for i := 0; i < minLen; i++ {
			if got[i] != ref[i] {
				t.Fatalf("replicas diverge at %d: %v vs %v", i, got[i], ref[i])
			}
		}
	}
}

// TestMinorityCrashKeepsAvailability: two of five replicas crash, the rest
// keep appending.
func TestMinorityCrashKeepsAvailability(t *testing.T) {
	nw, reps := cluster(5)
	defer nw.Close()
	reps[0].Append(logobj.MsgDatum(1))
	nw.Crash(3)
	nw.Crash(4)
	pos, ok := reps[1].Append(logobj.MsgDatum(2))
	if !ok || pos != 2 {
		t.Fatalf("append after minority crash: pos=%d ok=%v", pos, ok)
	}
}

// TestForwardToLeaderBatches: followers hand their operations to the
// leader's batcher instead of proposing themselves — the leader's replica
// must observe remotely-enqueued ops while every append still completes.
func TestForwardToLeaderBatches(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	c := &obs.ReplogCounters{}
	reps[0].Observe(c)
	var wg sync.WaitGroup
	for p := 1; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(10*p + i + 1))); !ok {
					t.Errorf("append at follower %d failed", p)
				}
			}
		}(p)
	}
	wg.Wait()
	if got := c.RemoteOps.Load(); got == 0 {
		t.Fatalf("leader accepted no forwarded ops — followers completed only via the patience fallback")
	}
}

// TestForwardFallbackWhenLeaderDead: with the sampled leader crashed,
// forwarded ops go nowhere; the patience fallback must still complete them
// from the follower (liveness does not depend on the hint).
func TestForwardFallbackWhenLeaderDead(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	nw.Crash(0)
	pos, ok := reps[1].Append(logobj.MsgDatum(1))
	if !ok || pos != 1 {
		t.Fatalf("append with dead leader: pos=%d ok=%v", pos, ok)
	}
}

// TestForwardNackMutes: a leader process that hosts no replica of the realm
// (it never operates on this log) NACKs forwards; the follower mutes the
// hint and completes by proposing locally — without burning the full
// patience window on every subsequent op.
func TestForwardNackMutes(t *testing.T) {
	nw := net.New(3)
	defer nw.Close()
	scope := groups.NewProcSet(0, 1, 2)
	leader := func(groups.Process) groups.Process { return 0 }
	// Process 0 participates as an acceptor only: node, but no replica.
	AttachForwarding(paxos.StartNode(nw, 0), 0, nw)
	reps := make([]*Replica, 3)
	for p := 1; p < 3; p++ {
		node := paxos.StartNode(nw, groups.Process(p))
		reps[p] = NewReplica("LOG", 1, groups.Process(p), node, nw, scope, leader)
	}
	if _, ok := reps[1].Append(logobj.MsgDatum(1)); !ok {
		t.Fatalf("append via NACK path failed")
	}
	deadline := time.Now().Add(time.Second)
	for !reps[1].fwdMuted(0) {
		if time.Now().After(deadline) {
			t.Fatalf("follower never muted forwarding to the NACKing leader")
		}
		time.Sleep(time.Millisecond)
	}
	// Muted, the next ops take the local fast path: well under patience.
	start := time.Now()
	if _, ok := reps[1].Append(logobj.MsgDatum(2)); !ok {
		t.Fatalf("append while muted failed")
	}
	if el := time.Since(start); el >= fwdPatience {
		t.Fatalf("muted append took %v, want < %v (patience burnt => mute ineffective)", el, fwdPatience)
	}
}

// TestIdempotentHelp: two replicas submitting the same append (helping)
// leave a single copy.
func TestIdempotentHelp(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			reps[p].Append(logobj.MsgDatum(1))
		}(p)
	}
	wg.Wait()
	reps[2].SyncWait(1, time.Second)
	if got := len(reps[2].Snapshot()); got != 1 {
		t.Fatalf("helping duplicated the datum: %d items", got)
	}
}
