package replog

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/paxos"
)

func cluster(n int) (*net.Network, []*Replica) {
	nw := net.New(n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	leader := func(groups.Process) groups.Process { return 0 }
	reps := make([]*Replica, n)
	for p := 0; p < n; p++ {
		node := paxos.StartNode(nw, groups.Process(p))
		reps[p] = NewReplica("LOG", 1, groups.Process(p), node, nw, scope, leader)
	}
	return nw, reps
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(kind uint8, m uint16, h uint8, i uint16, k uint16) bool {
		o := Op{
			Kind:  opKind(kind%2 + 1),
			Datum: logobj.Datum{Kind: logobj.Kind(kind%3 + 1), Msg: msg.ID(m), H: groups.GroupID(h), I: int(i)},
			K:     int(k),
		}
		return decode(encode(o)) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReplicates(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	pos, ok := reps[0].Append(logobj.MsgDatum(1))
	if !ok || pos != 1 {
		t.Fatalf("append: pos=%d ok=%v", pos, ok)
	}
	pos2, ok := reps[1].Append(logobj.MsgDatum(2))
	if !ok || pos2 != 2 {
		t.Fatalf("second append from another replica: pos=%d ok=%v", pos2, ok)
	}
	// Catch-up: replica 2 syncs to the same state.
	if !reps[2].SyncWait(2, time.Second) {
		t.Fatalf("replica 2 did not catch up: %d items", len(reps[2].Snapshot()))
	}
	if got := len(reps[2].Snapshot()); got != 2 {
		t.Fatalf("replica 2 has %d items, want 2", got)
	}
}

func TestBumpAndLockReplicates(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	reps[0].Append(logobj.MsgDatum(1))
	if !reps[1].BumpAndLock(logobj.MsgDatum(1), 7) {
		t.Fatalf("bump failed")
	}
	if !reps[0].SyncWait(2, time.Second) {
		t.Fatalf("replica 0 did not catch up")
	}
	if got := reps[0].Pos(logobj.MsgDatum(1)); got != 7 {
		t.Fatalf("pos after replicated bump = %d, want 7", got)
	}
	if !reps[0].Locked(logobj.MsgDatum(1)) {
		t.Fatalf("lock not replicated")
	}
}

// TestConcurrentAppendsAgree: replicas appending concurrently converge on
// one operation order, i.e. identical snapshots.
func TestConcurrentAppendsAgree(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				reps[p].Append(logobj.MsgDatum(msg.ID(10*p + i + 1)))
			}
		}(p)
	}
	wg.Wait()
	// Fence: submitting one more operation walks a replica through every
	// earlier slot, so after its fence decides it has applied all 15
	// concurrent appends (decide broadcasts alone may still be in flight).
	for p := 0; p < 3; p++ {
		if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(100 + p))); !ok {
			t.Fatalf("fence append failed at replica %d", p)
		}
	}
	ref := reps[0].Snapshot()
	if len(ref) < 15 {
		t.Fatalf("replica 0 has %d items, want >= 15", len(ref))
	}
	// All replicas agree on the common prefix of the operation order.
	minLen := len(ref)
	for p := 1; p < 3; p++ {
		if l := len(reps[p].Snapshot()); l < minLen {
			minLen = l
		}
	}
	for p := 1; p < 3; p++ {
		got := reps[p].Snapshot()
		for i := 0; i < minLen; i++ {
			if got[i] != ref[i] {
				t.Fatalf("replicas diverge at %d: %v vs %v", i, got[i], ref[i])
			}
		}
	}
}

// TestMinorityCrashKeepsAvailability: two of five replicas crash, the rest
// keep appending.
func TestMinorityCrashKeepsAvailability(t *testing.T) {
	nw, reps := cluster(5)
	defer nw.Close()
	reps[0].Append(logobj.MsgDatum(1))
	nw.Crash(3)
	nw.Crash(4)
	pos, ok := reps[1].Append(logobj.MsgDatum(2))
	if !ok || pos != 2 {
		t.Fatalf("append after minority crash: pos=%d ok=%v", pos, ok)
	}
}

// TestIdempotentHelp: two replicas submitting the same append (helping)
// leave a single copy.
func TestIdempotentHelp(t *testing.T) {
	nw, reps := cluster(3)
	defer nw.Close()
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			reps[p].Append(logobj.MsgDatum(1))
		}(p)
	}
	wg.Wait()
	reps[2].SyncWait(1, time.Second)
	if got := len(reps[2].Snapshot()); got != 1 {
		t.Fatalf("helping duplicated the datum: %d items", got)
	}
}
