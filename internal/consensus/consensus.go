// Package consensus provides the agreement objects Algorithm 1 builds on:
// consensus objects (CONS_{m,f}) and adopt-commit objects (the contention-
// free fast path of the universal construction, §4.3).
//
// In the paper these objects are implemented from Σ_g ∧ Ω_g (consensus) and
// Σ_{g∩h} (adopt-commit). The engine schedules processes sequentially, so a
// first-proposal-wins object is a linearizable wait-free consensus; what the
// message-passing implementation would add — which processes take steps and
// how many messages cross the network — is preserved through the engine's
// charge accounting: a consensus operation charges every alive member of its
// hosting group (a leader/quorum round-trip), an adopt-commit operation only
// the intersection.
package consensus

import (
	"repro/internal/engine"
	"repro/internal/groups"
)

// Object is a single-shot consensus object hosted by a group of processes.
type Object struct {
	name    string
	hosts   groups.ProcSet // processes charged per operation
	decided bool
	value   int
	// proposals counts Propose invocations, for ablation metrics.
	proposals int
}

// NewObject returns an undecided consensus object hosted by hosts.
func NewObject(name string, hosts groups.ProcSet) *Object {
	return &Object{name: name, hosts: hosts}
}

// Propose submits v; the decided value is returned (first proposal wins —
// validity, agreement and termination are immediate). Every alive host is
// charged one step, and a leader round-trip worth of messages is counted.
func (o *Object) Propose(ctx *engine.Ctx, v int) int {
	o.proposals++
	if !o.decided {
		o.decided = true
		o.value = v
	}
	if ctx != nil {
		ctx.E.ChargeSet(o.hosts, 1)
		ctx.E.CountMessages(int64(2 * o.hosts.Count()))
	}
	return o.value
}

// Decided reports whether the object has decided, and the value.
func (o *Object) Decided() (int, bool) { return o.value, o.decided }

// Proposals returns the number of Propose invocations.
func (o *Object) Proposals() int { return o.proposals }

// Hosts returns the hosting set.
func (o *Object) Hosts() groups.ProcSet { return o.hosts }

// AdoptCommit is a single-shot adopt-commit object (Gafni). The first
// proposal commits; a later conflicting proposal adopts the stored value.
type AdoptCommit struct {
	hosts    groups.ProcSet
	proposed bool
	value    int
}

// NewAdoptCommit returns a fresh adopt-commit object hosted by hosts.
func NewAdoptCommit(hosts groups.ProcSet) *AdoptCommit {
	return &AdoptCommit{hosts: hosts}
}

// Propose submits v and returns (value, committed). Commit means every
// process that proposed so far proposed the same value; adopt means the
// caller must fall back to consensus with the returned value.
func (a *AdoptCommit) Propose(ctx *engine.Ctx, v int) (int, bool) {
	if ctx != nil {
		ctx.E.ChargeSet(a.hosts, 1)
		ctx.E.CountMessages(int64(2 * a.hosts.Count()))
	}
	if !a.proposed {
		a.proposed = true
		a.value = v
		return v, true
	}
	if a.value == v {
		return v, true
	}
	return a.value, false
}
