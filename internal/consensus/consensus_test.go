package consensus

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
)

func ctxFor(pat *failure.Pattern) (*engine.Ctx, *engine.Engine) {
	e := engine.New(engine.Config{Pattern: pat, Seed: 1})
	return &engine.Ctx{Now: 1, E: e}, e
}

func TestConsensusAgreementValidity(t *testing.T) {
	f := func(vals []int) bool {
		if len(vals) == 0 {
			return true
		}
		o := NewObject("c", groups.NewProcSet(0, 1, 2))
		ctx, _ := ctxFor(failure.NewPattern(3))
		first := o.Propose(ctx, vals[0])
		if first != vals[0] {
			return false // validity: first proposal decides itself
		}
		for _, v := range vals[1:] {
			if o.Propose(ctx, v) != first {
				return false // agreement
			}
		}
		d, ok := o.Decided()
		return ok && d == first
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusCharging(t *testing.T) {
	pat := failure.NewPattern(3).WithCrash(2, 0)
	ctx, e := ctxFor(pat)
	o := NewObject("c", groups.NewProcSet(0, 1, 2))
	o.Propose(ctx, 7)
	if e.Charges(0) != 1 || e.Charges(1) != 1 {
		t.Fatalf("alive hosts not charged")
	}
	if e.Charges(2) != 0 {
		t.Fatalf("crashed host charged")
	}
	if e.Messages() != 6 {
		t.Fatalf("messages = %d, want 6", e.Messages())
	}
	if o.Proposals() != 1 {
		t.Fatalf("proposals = %d", o.Proposals())
	}
}

func TestConsensusUndecided(t *testing.T) {
	o := NewObject("c", groups.NewProcSet(0))
	if _, ok := o.Decided(); ok {
		t.Fatalf("fresh object decided")
	}
	if o.Hosts() != groups.NewProcSet(0) {
		t.Fatalf("hosts wrong")
	}
}

func TestAdoptCommitSolo(t *testing.T) {
	ctx, _ := ctxFor(failure.NewPattern(2))
	ac := NewAdoptCommit(groups.NewProcSet(0, 1))
	v, committed := ac.Propose(ctx, 5)
	if !committed || v != 5 {
		t.Fatalf("solo proposal should commit its value")
	}
	// Same value again still commits.
	v, committed = ac.Propose(ctx, 5)
	if !committed || v != 5 {
		t.Fatalf("agreeing proposal should commit")
	}
}

func TestAdoptCommitConflict(t *testing.T) {
	ctx, _ := ctxFor(failure.NewPattern(2))
	ac := NewAdoptCommit(groups.NewProcSet(0, 1))
	ac.Propose(ctx, 5)
	v, committed := ac.Propose(ctx, 9)
	if committed {
		t.Fatalf("conflicting proposal must adopt")
	}
	if v != 5 {
		t.Fatalf("adopted %d, want 5", v)
	}
}

func TestNilCtxSafe(t *testing.T) {
	o := NewObject("c", groups.NewProcSet(0))
	if got := o.Propose(nil, 3); got != 3 {
		t.Fatalf("propose without ctx = %d", got)
	}
	ac := NewAdoptCommit(groups.NewProcSet(0))
	if v, ok := ac.Propose(nil, 4); !ok || v != 4 {
		t.Fatalf("adopt-commit without ctx wrong")
	}
}
