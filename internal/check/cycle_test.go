package check

import (
	"math/rand"
	"testing"

	"repro/internal/groups"
	"repro/internal/msg"
)

// TestFindCycleOnRandomDAGs: edges oriented low→high form a DAG, so no
// cycle must be reported; adding one back-edge that closes a loop must be
// caught.
func TestFindCycleOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		edges := map[edge]groups.Process{}
		var ordered [][2]msg.ID
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					e := edge{msg.ID(i + 1), msg.ID(j + 1)}
					edges[e] = 0
					ordered = append(ordered, [2]msg.ID{e.from, e.to})
				}
			}
		}
		if cyc := findCycle(edges, nil); cyc != nil {
			t.Fatalf("trial %d: false cycle %v in a DAG", trial, cyc)
		}
		if len(ordered) == 0 {
			continue
		}
		// Close a loop: pick an existing path edge u→v and add v→u.
		pick := ordered[rng.Intn(len(ordered))]
		back := []edge{{pick[1], pick[0]}}
		cyc := findCycle(edges, back)
		if cyc == nil {
			t.Fatalf("trial %d: planted cycle not found", trial)
		}
		// The reported cycle's nodes must contain both endpoints.
		found := map[msg.ID]bool{}
		for _, m := range cyc {
			found[m] = true
		}
		if !found[pick[0]] || !found[pick[1]] {
			t.Fatalf("trial %d: reported cycle %v misses the planted edge %v", trial, cyc, pick)
		}
	}
}

// TestFindCycleSelfLoop: a self-loop is a cycle.
func TestFindCycleSelfLoop(t *testing.T) {
	edges := map[edge]groups.Process{{1, 1}: 0}
	if findCycle(edges, nil) == nil {
		t.Fatalf("self-loop not detected")
	}
}

// TestFindCycleLongChain: a long path stays acyclic; closing it is caught.
func TestFindCycleLongChain(t *testing.T) {
	edges := map[edge]groups.Process{}
	const n = 200
	for i := 1; i < n; i++ {
		edges[edge{msg.ID(i), msg.ID(i + 1)}] = 0
	}
	if findCycle(edges, nil) != nil {
		t.Fatalf("chain misreported as cyclic")
	}
	if findCycle(edges, []edge{{msg.ID(n), msg.ID(1)}}) == nil {
		t.Fatalf("closed chain not detected")
	}
}
