// Package check validates runs of an atomic multicast protocol against the
// problem's specification: integrity, termination, ordering (acyclicity of
// the delivery relation ↦), the strict variation's real-time order
// (↦ ∪ ⇝), pairwise ordering, and the minimality (genuineness) property.
// The checkers work on the global delivery trace plus per-process local
// orders and the engine's step accounting.
package check

import (
	"fmt"

	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// Trace is the run evidence the checkers consume.
type Trace struct {
	Topo *groups.Topology
	Pat  *failure.Pattern
	Reg  *msg.Registry
	// LocalOrder maps each process to its local delivery sequence.
	LocalOrder map[groups.Process][]msg.ID
	// Multicast is the set of messages that were handed to multicast()
	// (they entered L_g), with the request time.
	Multicast map[msg.ID]failure.Time
	// FirstDelivered maps delivered messages to their first delivery time.
	FirstDelivered map[msg.ID]failure.Time
	// TookSteps reports whether a process took observable steps in the run.
	TookSteps func(groups.Process) bool
	// Conflicts is the run's commutativity relation for the conflict-aware
	// checkers: whether two messages must share a relative delivery order.
	// nil means every pair conflicts, under which ConflictOrdering and
	// ConflictPairwise coincide with Ordering and PairwiseOrdering.
	Conflicts func(a, b msg.ID) bool
}

// conflicts evaluates the trace's relation (nil ⇒ every pair conflicts).
func (tr *Trace) conflicts(a, b msg.ID) bool {
	if tr.Conflicts == nil {
		return true
	}
	return tr.Conflicts(a, b)
}

// Violation describes a broken property.
type Violation struct {
	Property string
	Detail   string
}

func (v Violation) Error() string { return v.Property + ": " + v.Detail }

func violationf(prop, format string, args ...any) *Violation {
	return &Violation{Property: prop, Detail: fmt.Sprintf(format, args...)}
}

// Integrity checks that every process delivers each message at most once,
// only if addressed to it, and only if it was multicast.
func Integrity(tr *Trace) *Violation {
	for p, seq := range tr.LocalOrder {
		seen := make(map[msg.ID]bool, len(seq))
		for _, id := range seq {
			if seen[id] {
				return violationf("integrity", "p%d delivered m%d twice", p, id)
			}
			seen[id] = true
			m := tr.Reg.Get(id)
			if !tr.Topo.Group(m.Dst).Has(p) {
				return violationf("integrity", "p%d ∉ dst(m%d)=g%d", p, id, m.Dst)
			}
			if _, ok := tr.Multicast[id]; !ok {
				return violationf("integrity", "m%d delivered but never multicast", id)
			}
		}
	}
	return nil
}

// Termination checks that every message multicast by a correct process, or
// delivered by any process, is delivered by every correct process of its
// destination group. It assumes the run quiesced.
func Termination(tr *Trace) *Violation {
	delivered := deliveredSets(tr)
	for id := range tr.Multicast {
		m := tr.Reg.Get(id)
		_, wasDelivered := tr.FirstDelivered[id]
		if !wasDelivered && !tr.Pat.IsCorrect(m.Src) {
			continue // no obligation: faulty sender, nobody delivered
		}
		for _, p := range tr.Topo.Group(m.Dst).Intersect(tr.Pat.Correct()).Members() {
			if !delivered[p][id] {
				return violationf("termination",
					"correct p%d ∈ dst(m%d)=g%d never delivered it", p, id, m.Dst)
			}
		}
	}
	return nil
}

// deliveredSets indexes the local orders.
func deliveredSets(tr *Trace) map[groups.Process]map[msg.ID]bool {
	out := make(map[groups.Process]map[msg.ID]bool, len(tr.LocalOrder))
	for p, seq := range tr.LocalOrder {
		s := make(map[msg.ID]bool, len(seq))
		for _, id := range seq {
			s[id] = true
		}
		out[p] = s
	}
	return out
}

// edge is a ↦ edge.
type edge struct{ from, to msg.ID }

// deliveryEdges computes ↦ = ∪_p ↦p: m ↦p m' when p ∈ dst(m)∩dst(m'), p
// delivers m, and at that point p has not delivered m' (either m' comes
// later in p's order, or never at p).
func deliveryEdges(tr *Trace) map[edge]groups.Process {
	edges := make(map[edge]groups.Process)
	for p, seq := range tr.LocalOrder {
		pos := make(map[msg.ID]int, len(seq))
		for i, id := range seq {
			pos[id] = i
		}
		// Only messages delivered somewhere can close a cycle, so we range
		// over those addressed to p.
		for id := range tr.FirstDelivered {
			m := tr.Reg.Get(id)
			if !tr.Topo.Group(m.Dst).Has(p) {
				continue
			}
			for i, did := range seq {
				if did == id {
					continue
				}
				dm := tr.Reg.Get(did)
				if !tr.Topo.Intersection(dm.Dst, m.Dst).Has(p) {
					continue
				}
				if j, deliveredHere := pos[id]; !deliveredHere || i < j {
					edges[edge{did, id}] = p
				}
			}
		}
	}
	return edges
}

// Ordering checks that the delivery relation ↦ is acyclic over the
// delivered messages.
func Ordering(tr *Trace) *Violation {
	edges := deliveryEdges(tr)
	if cyc := findCycle(edges, nil); cyc != nil {
		return violationf("ordering", "↦ has a cycle: %v", cyc)
	}
	return nil
}

// StrictOrdering checks the strict variation (§6.1): the transitive closure
// of ↦ ∪ ⇝ is a strict partial order, where m ⇝ m' when m was delivered
// (first) in real time before m' was multicast.
func StrictOrdering(tr *Trace) *Violation {
	edges := deliveryEdges(tr)
	var rt []edge
	for m, dt := range tr.FirstDelivered {
		for mp, reqt := range tr.Multicast {
			if m == mp {
				continue
			}
			if _, deliveredToo := tr.FirstDelivered[mp]; !deliveredToo {
				continue
			}
			if dt < reqt {
				rt = append(rt, edge{m, mp})
			}
		}
	}
	if cyc := findCycle(edges, rt); cyc != nil {
		return violationf("strict-ordering", "↦ ∪ ⇝ has a cycle: %v", cyc)
	}
	return nil
}

// PairwiseOrdering checks the §7 variation: if p delivers m then m', every
// process q that delivers m' has delivered m before.
func PairwiseOrdering(tr *Trace) *Violation {
	type pair struct{ a, b msg.ID }
	order := make(map[pair]groups.Process)
	for p, seq := range tr.LocalOrder {
		for i, a := range seq {
			for _, b := range seq[i+1:] {
				if q, ok := order[pair{b, a}]; ok {
					return violationf("pairwise-ordering",
						"p%d delivers m%d before m%d; p%d the converse", p, a, b, q)
				}
				order[pair{a, b}] = p
			}
		}
	}
	return nil
}

// ConflictOrdering checks the generic-multicast ordering property: the
// delivery relation ↦ restricted to conflicting pairs is acyclic. Commuting
// pairs may be delivered in different orders at different processes, so
// only edges between messages the relation says conflict can invalidate the
// run. With a nil relation this is exactly Ordering.
func ConflictOrdering(tr *Trace) *Violation {
	edges := deliveryEdges(tr)
	for e := range edges {
		if !tr.conflicts(e.from, e.to) {
			delete(edges, e)
		}
	}
	if cyc := findCycle(edges, nil); cyc != nil {
		return violationf("conflict-ordering", "↦ restricted to conflicting pairs has a cycle: %v", cyc)
	}
	return nil
}

// ConflictPairwise checks pairwise agreement restricted to conflicting
// pairs: if p delivers conflicting messages m then m', no process delivers
// m' before m. With a nil relation this is exactly PairwiseOrdering.
func ConflictPairwise(tr *Trace) *Violation {
	type pair struct{ a, b msg.ID }
	order := make(map[pair]groups.Process)
	for p, seq := range tr.LocalOrder {
		for i, a := range seq {
			for _, b := range seq[i+1:] {
				if !tr.conflicts(a, b) {
					continue
				}
				if q, ok := order[pair{b, a}]; ok {
					return violationf("conflict-pairwise",
						"conflicting pair: p%d delivers m%d before m%d; p%d the converse", p, a, b, q)
				}
				order[pair{a, b}] = p
			}
		}
	}
	return nil
}

// Minimality checks genuineness: a process that took steps must be a
// destination of some multicast message.
func Minimality(tr *Trace) *Violation {
	if tr.TookSteps == nil {
		return nil
	}
	var dests groups.ProcSet
	for id := range tr.Multicast {
		dests = dests.Union(tr.Topo.Group(tr.Reg.Get(id).Dst))
	}
	for p := 0; p < tr.Topo.NumProcesses(); p++ {
		proc := groups.Process(p)
		if tr.TookSteps(proc) && !dests.Has(proc) {
			return violationf("minimality",
				"p%d took steps but no message is addressed to it", p)
		}
	}
	return nil
}

// GroupParallelism checks the §6.2 property on a participation-restricted
// run: the run was fair only for participants (= Correct ∩ dst(m) in the
// property's statement), and every message addressed to a group inside the
// participant set must be delivered by all the group's correct members.
func GroupParallelism(tr *Trace, participants groups.ProcSet) *Violation {
	delivered := deliveredSets(tr)
	for id := range tr.Multicast {
		m := tr.Reg.Get(id)
		dst := tr.Topo.Group(m.Dst)
		if !dst.SubsetOf(participants) {
			continue // the destination group was not the isolated one
		}
		for _, p := range dst.Intersect(tr.Pat.Correct()).Members() {
			if !delivered[p][id] {
				return violationf("group-parallelism",
					"isolated group g%d: correct p%d never delivered m%d", m.Dst, p, id)
			}
		}
	}
	return nil
}

// All runs every checker appropriate for the variant ("strict" adds
// real-time order, "pairwise" swaps ordering for pairwise ordering,
// "generic" swaps both ordering checkers for their conflict-restricted
// forms — total order is owed only within conflicting pairs).
func All(tr *Trace, strict, pairwiseOnly, generic bool) []*Violation {
	var out []*Violation
	add := func(v *Violation) {
		if v != nil {
			out = append(out, v)
		}
	}
	add(Integrity(tr))
	add(Termination(tr))
	switch {
	case generic:
		add(ConflictOrdering(tr))
		add(ConflictPairwise(tr))
	case pairwiseOnly:
		add(PairwiseOrdering(tr))
	default:
		add(Ordering(tr))
		add(PairwiseOrdering(tr))
	}
	if strict {
		add(StrictOrdering(tr))
	}
	add(Minimality(tr))
	return out
}

// findCycle detects a cycle in ↦ ∪ extra and returns it, or nil.
func findCycle(edges map[edge]groups.Process, extra []edge) []msg.ID {
	adj := make(map[msg.ID][]msg.ID)
	nodes := make(map[msg.ID]bool)
	addEdge := func(e edge) {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for e := range edges {
		addEdge(e)
	}
	for _, e := range extra {
		addEdge(e)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[msg.ID]int, len(nodes))
	var stack []msg.ID
	var cycle []msg.ID
	var dfs func(u msg.ID) bool
	dfs = func(u msg.ID) bool {
		color[u] = gray
		stack = append(stack, u)
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == v {
						break
					}
				}
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	for u := range nodes {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}
