package check

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// divergent builds a two-process trace where p0 and p1 deliver the same two
// g0 messages in opposite orders — an ordering violation iff the pair
// conflicts.
func divergent() (*Trace, msg.ID, msg.ID) {
	f := newFixture()
	m3 := f.reg.New(1, 0, nil)
	tr := f.trace()
	delete(tr.Multicast, f.m2.ID)
	tr.Multicast[m3.ID] = 0
	tr.LocalOrder[0] = []msg.ID{f.m1.ID, m3.ID}
	tr.LocalOrder[1] = []msg.ID{m3.ID, f.m1.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	tr.FirstDelivered[m3.ID] = 1
	return tr, f.m1.ID, m3.ID
}

// commutePair returns a relation under which exactly one unordered pair
// commutes and every other pair conflicts.
func commutePair(x, y msg.ID) func(a, b msg.ID) bool {
	return func(a, b msg.ID) bool {
		return !(a == x && b == y || a == y && b == x)
	}
}

func TestConflictCheckersAllowCommutingDivergence(t *testing.T) {
	tr, a, b := divergent()
	tr.Conflicts = commutePair(a, b)
	if v := ConflictOrdering(tr); v != nil {
		t.Errorf("commuting divergence flagged: %v", v)
	}
	if v := ConflictPairwise(tr); v != nil {
		t.Errorf("commuting divergence flagged pairwise: %v", v)
	}
	// The unrestricted checkers still see the divergence — the relaxation
	// is exactly the conflict relation, nothing else.
	if Ordering(tr) == nil || PairwiseOrdering(tr) == nil {
		t.Fatalf("sanity: unrestricted checkers should flag this trace")
	}
}

func TestConflictCheckersCatchConflictingDivergence(t *testing.T) {
	tr, a, b := divergent()
	// Same shape, but the diverging pair conflicts (some third pair is
	// declared commuting so the relation is non-trivial).
	tr.Conflicts = func(x, y msg.ID) bool { return x == a || y == a || x == b || y == b }
	if v := ConflictOrdering(tr); v == nil {
		t.Error("conflicting divergence not caught")
	}
	if v := ConflictPairwise(tr); v == nil {
		t.Error("conflicting divergence not caught pairwise")
	}
}

// ringTrace builds a cyclic-family trace over the ring g0={0,1}, g1={1,2},
// g2={2,0}: messages a→g0, b→g1, c→g2 with local orders p1: a<b, p2: b<c,
// p0: c<a. No two processes disagree on any pair, yet ↦ has the 3-cycle
// a→b→c→a — the case that needs the global (not pairwise) checker.
func ringTrace() (*Trace, [3]msg.ID) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
		groups.NewProcSet(2, 0),
	)
	reg := msg.NewRegistry()
	a := reg.New(0, 0, nil)
	b := reg.New(1, 1, nil)
	c := reg.New(2, 2, nil)
	tr := &Trace{
		Topo: topo,
		Pat:  failure.NewPattern(3),
		Reg:  reg,
		LocalOrder: map[groups.Process][]msg.ID{
			1: {a.ID, b.ID},
			2: {b.ID, c.ID},
			0: {c.ID, a.ID},
		},
		Multicast:      map[msg.ID]failure.Time{a.ID: 0, b.ID: 0, c.ID: 0},
		FirstDelivered: map[msg.ID]failure.Time{a.ID: 1, b.ID: 1, c.ID: 1},
	}
	return tr, [3]msg.ID{a.ID, b.ID, c.ID}
}

func TestConflictOrderingCatchesCyclicFamilyCycle(t *testing.T) {
	tr, _ := ringTrace()
	if v := ConflictOrdering(tr); v == nil {
		t.Error("all-conflict 3-cycle not caught")
	}
	// Pairwise agreement holds on this trace: each pair is ordered by
	// exactly one process. Only the cycle checker sees the violation.
	if v := ConflictPairwise(tr); v != nil {
		t.Errorf("pairwise should pass on the ring: %v", v)
	}
}

func TestConflictOrderingCommutingEdgeBreaksCycle(t *testing.T) {
	tr, ids := ringTrace()
	// Declaring one edge of the cycle commuting removes it from the
	// restricted ↦, so the remaining order is acyclic — legal under the
	// generic specification.
	tr.Conflicts = commutePair(ids[0], ids[1])
	if v := ConflictOrdering(tr); v != nil {
		t.Errorf("cycle with a commuting edge flagged: %v", v)
	}
}

// TestConflictNilRelationMatchesGlobal pins the all-conflict regression:
// with a nil relation the conflict checkers must agree verdict-for-verdict
// with the unrestricted checkers, on both a clean and a diverging trace.
func TestConflictNilRelationMatchesGlobal(t *testing.T) {
	bad, _, _ := divergent()
	good, _, _ := divergent()
	good.LocalOrder[1] = append([]msg.ID{}, good.LocalOrder[0]...)
	ring, _ := ringTrace()
	for name, tr := range map[string]*Trace{"diverging": bad, "agreeing": good, "ring": ring} {
		if (ConflictOrdering(tr) == nil) != (Ordering(tr) == nil) {
			t.Errorf("%s: ConflictOrdering and Ordering disagree under nil relation", name)
		}
		if (ConflictPairwise(tr) == nil) != (PairwiseOrdering(tr) == nil) {
			t.Errorf("%s: ConflictPairwise and PairwiseOrdering disagree under nil relation", name)
		}
	}
}

// TestAllGenericComposes checks the dispatch in All: generic mode swaps in
// the conflict-aware checkers, so a commuting divergence passes there and
// fails the default mode.
func TestAllGenericComposes(t *testing.T) {
	tr, a, b := divergent()
	tr.Conflicts = commutePair(a, b)
	if vs := All(tr, false, false, true); len(vs) != 0 {
		t.Errorf("generic mode flagged a legal commuting divergence: %v", vs)
	}
	if vs := All(tr, false, false, false); len(vs) == 0 {
		t.Error("default mode should flag the divergence")
	}
}
