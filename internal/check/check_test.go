package check

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// fixture builds a two-group trace skeleton: g0 = {p0,p1}, g1 = {p1,p2}.
type fixture struct {
	topo *groups.Topology
	reg  *msg.Registry
	m1   *msg.Message // → g0
	m2   *msg.Message // → g1
}

func newFixture() *fixture {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
	)
	reg := msg.NewRegistry()
	return &fixture{
		topo: topo,
		reg:  reg,
		m1:   reg.New(0, 0, nil),
		m2:   reg.New(1, 1, nil),
	}
}

func (f *fixture) trace() *Trace {
	return &Trace{
		Topo:           f.topo,
		Pat:            failure.NewPattern(3),
		Reg:            f.reg,
		LocalOrder:     map[groups.Process][]msg.ID{},
		Multicast:      map[msg.ID]failure.Time{f.m1.ID: 0, f.m2.ID: 0},
		FirstDelivered: map[msg.ID]failure.Time{},
	}
}

func TestIntegrityCatchesDoubleDelivery(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	tr.LocalOrder[0] = []msg.ID{f.m1.ID, f.m1.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	if v := Integrity(tr); v == nil {
		t.Fatalf("double delivery not caught")
	}
}

func TestIntegrityCatchesWrongDestination(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	tr.LocalOrder[2] = []msg.ID{f.m1.ID} // p2 ∉ g0
	tr.FirstDelivered[f.m1.ID] = 1
	if v := Integrity(tr); v == nil {
		t.Fatalf("delivery outside destination not caught")
	}
}

func TestIntegrityCatchesPhantomMessage(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	ghost := f.reg.New(0, 0, nil)
	tr.LocalOrder[0] = []msg.ID{ghost.ID} // never multicast
	tr.FirstDelivered[ghost.ID] = 1
	if v := Integrity(tr); v == nil {
		t.Fatalf("phantom delivery not caught")
	}
}

func TestTerminationCatchesMissingDelivery(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	// m1 delivered at p0 but not at correct p1 ∈ g0.
	tr.LocalOrder[0] = []msg.ID{f.m1.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	if v := Termination(tr); v == nil {
		t.Fatalf("missing delivery not caught")
	}
	// Completing the delivery fixes it (m2: faulty sender, never delivered,
	// no obligation).
	tr.LocalOrder[1] = []msg.ID{f.m1.ID}
	tr.Pat = failure.NewPattern(3).WithCrash(1, 5)
	if v := Termination(tr); v != nil {
		t.Fatalf("unexpected: %v", v)
	}
}

func TestTerminationFaultySenderNoObligation(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	tr.Pat = failure.NewPattern(3).WithCrash(0, 5) // src(m1) faulty
	delete(tr.Multicast, f.m2.ID)                  // only m1 in this run
	if v := Termination(tr); v != nil {
		t.Fatalf("faulty undelivered sender should carry no obligation: %v", v)
	}
}

func TestOrderingCatchesTwoProcessCycle(t *testing.T) {
	f := newFixture()
	// Third message to g0 so p0 and p1 can disagree.
	m3 := f.reg.New(1, 0, nil)
	tr := f.trace()
	tr.Multicast[m3.ID] = 0
	tr.LocalOrder[0] = []msg.ID{f.m1.ID, m3.ID}
	tr.LocalOrder[1] = []msg.ID{m3.ID, f.m1.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	tr.FirstDelivered[m3.ID] = 1
	if v := Ordering(tr); v == nil {
		t.Fatalf("↦ cycle not caught")
	}
	if v := PairwiseOrdering(tr); v == nil {
		t.Fatalf("pairwise violation not caught")
	}
}

func TestOrderingCatchesNeverDeliveredEdge(t *testing.T) {
	// m↦m' also holds when p delivers m and never m'. Build a cycle:
	// p0 delivers m1, never m3; p1 delivers m3, never m1.
	f := newFixture()
	m3 := f.reg.New(1, 0, nil)
	tr := f.trace()
	tr.Multicast[m3.ID] = 0
	tr.LocalOrder[0] = []msg.ID{f.m1.ID}
	tr.LocalOrder[1] = []msg.ID{m3.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	tr.FirstDelivered[m3.ID] = 1
	if v := Ordering(tr); v == nil {
		t.Fatalf("cycle through never-delivered edges not caught")
	}
}

func TestOrderingAcceptsAgreement(t *testing.T) {
	f := newFixture()
	m3 := f.reg.New(1, 0, nil)
	tr := f.trace()
	tr.Multicast[m3.ID] = 0
	tr.LocalOrder[0] = []msg.ID{f.m1.ID, m3.ID}
	tr.LocalOrder[1] = []msg.ID{f.m1.ID, m3.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	tr.FirstDelivered[m3.ID] = 2
	if v := Ordering(tr); v != nil {
		t.Fatalf("unexpected: %v", v)
	}
	if v := PairwiseOrdering(tr); v != nil {
		t.Fatalf("unexpected: %v", v)
	}
}

// TestStrictOrderingDistinguishesRealTime: a trace where the plain delivery
// relation is acyclic but ↦ ∪ ⇝ has a cycle — the distinction §6.1 is
// about. m1 (→g0) is delivered before m2 is multicast (m1 ⇝ m2), yet p1
// delivers m2 before m1.
func TestStrictOrderingDistinguishesRealTime(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	tr.Multicast[f.m1.ID] = 0
	tr.Multicast[f.m2.ID] = 50 // m2 requested after m1's delivery below
	tr.LocalOrder[0] = []msg.ID{f.m1.ID}
	tr.LocalOrder[1] = []msg.ID{f.m2.ID, f.m1.ID} // p1 ∈ g0∩g1 delivers m2 first
	tr.LocalOrder[2] = []msg.ID{f.m2.ID}
	tr.FirstDelivered[f.m1.ID] = 10
	tr.FirstDelivered[f.m2.ID] = 60
	if v := Ordering(tr); v != nil {
		t.Fatalf("plain ordering should hold: %v", v)
	}
	if v := StrictOrdering(tr); v == nil {
		t.Fatalf("↦ ∪ ⇝ cycle not caught")
	}
}

func TestMinimalityCatchesBusyOutsider(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	tr.LocalOrder[0] = []msg.ID{f.m1.ID}
	tr.LocalOrder[1] = []msg.ID{f.m1.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	// Only m1 → g0 multicast, but p2 took steps.
	delete(tr.Multicast, f.m2.ID)
	tr.TookSteps = func(p groups.Process) bool { return true }
	if v := Minimality(tr); v == nil {
		t.Fatalf("busy outsider not caught")
	}
	tr.TookSteps = func(p groups.Process) bool { return p != 2 }
	if v := Minimality(tr); v != nil {
		t.Fatalf("unexpected: %v", v)
	}
}

func TestGroupParallelismChecker(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	// Isolated run of g0 = {p0,p1}: m1 delivered at p0 only → violation.
	tr.LocalOrder[0] = []msg.ID{f.m1.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	delete(tr.Multicast, f.m2.ID)
	participants := groups.NewProcSet(0, 1)
	if v := GroupParallelism(tr, participants); v == nil {
		t.Fatalf("missing isolated delivery not caught")
	}
	tr.LocalOrder[1] = []msg.ID{f.m1.ID}
	if v := GroupParallelism(tr, participants); v != nil {
		t.Fatalf("unexpected: %v", v)
	}
	// A message to a group outside the participant set carries no
	// obligation.
	tr.Multicast[f.m2.ID] = 0
	if v := GroupParallelism(tr, participants); v != nil {
		t.Fatalf("outside-group message should be exempt: %v", v)
	}
}

func TestAllComposes(t *testing.T) {
	f := newFixture()
	tr := f.trace()
	tr.LocalOrder[0] = []msg.ID{f.m1.ID}
	tr.LocalOrder[1] = []msg.ID{f.m1.ID, f.m2.ID}
	tr.LocalOrder[2] = []msg.ID{f.m2.ID}
	tr.FirstDelivered[f.m1.ID] = 1
	tr.FirstDelivered[f.m2.ID] = 2
	if vs := All(tr, true, false, false); len(vs) != 0 {
		t.Fatalf("clean trace flagged: %v", vs)
	}
}
