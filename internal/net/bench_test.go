package net

import (
	"testing"

	"repro/internal/groups"
)

// BenchmarkSendConcurrent hammers Send from many goroutines spread over
// distinct recipients — the pattern a live run produces (every paxos node
// broadcasting to its peers). With per-inbox sharding only senders racing
// for the same inbox contend; a receiver per process keeps the inboxes
// drained so the non-blocking send never hits the overflow path.
func BenchmarkSendConcurrent(b *testing.B) {
	const n = 8
	nw := New(n)
	defer nw.Close()
	done := make(chan struct{})
	for p := 0; p < n; p++ {
		go func(p groups.Process) {
			in := nw.Inbox(p)
			for {
				select {
				case <-in:
				case <-done:
					return
				}
			}
		}(groups.Process(p))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			from := groups.Process(i % n)
			to := groups.Process((i + 1) % n)
			nw.Send(from, to, tBench, int64(i))
			i++
		}
	})
	b.StopTimer()
	close(done)
}

// BenchmarkSendSingle is the uncontended per-packet cost.
func BenchmarkSendSingle(b *testing.B) {
	nw := New(2)
	defer nw.Close()
	done := make(chan struct{})
	go func() {
		in := nw.Inbox(1)
		for {
			select {
			case <-in:
			case <-done:
				return
			}
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw.Send(0, 1, tBench, int64(i))
	}
	b.StopTimer()
	close(done)
}
