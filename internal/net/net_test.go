package net

import (
	"testing"

	"repro/internal/groups"
)

// Test message types from the scratch block internal/wire reserves for
// transport tests (0xF0..0xFE).
const (
	tPing MsgType = 0xF0 + iota
	tHello
	tA
	tB
	tC
	tX
	tY
	tFlood
	tBench
)

func TestSendRecv(t *testing.T) {
	nw := New(2)
	defer nw.Close()
	nw.Send(0, 1, tPing, 42)
	pkt := <-nw.Inbox(1)
	if pkt.From != 0 || pkt.Type != tPing || pkt.Body.(int) != 42 {
		t.Fatalf("bad packet %+v", pkt)
	}
}

func TestBroadcast(t *testing.T) {
	nw := New(3)
	defer nw.Close()
	nw.Broadcast(0, groups.NewProcSet(0, 1, 2), tHello, nil)
	for p := 0; p < 3; p++ {
		pkt := <-nw.Inbox(groups.Process(p))
		if pkt.Type != tHello {
			t.Fatalf("p%d got %+v", p, pkt)
		}
	}
}

func TestCrashSilences(t *testing.T) {
	nw := New(2)
	defer nw.Close()
	nw.Send(0, 1, tA, nil)
	nw.Crash(1)
	if !nw.Crashed(1) {
		t.Fatalf("Crashed not reported")
	}
	// Pending inbox drained; future sends dropped.
	nw.Send(0, 1, tB, nil)
	select {
	case pkt := <-nw.Inbox(1):
		t.Fatalf("crashed process received %+v", pkt)
	default:
	}
	// Sends *from* a crashed process are dropped too.
	nw.Send(1, 0, tC, nil)
	select {
	case pkt := <-nw.Inbox(0):
		t.Fatalf("packet from crashed process delivered: %+v", pkt)
	default:
	}
}

func TestCloseEndsInboxes(t *testing.T) {
	nw := New(1)
	nw.Close()
	if _, open := <-nw.Inbox(0); open {
		t.Fatalf("inbox still open after Close")
	}
	// Idempotent close and post-close send are safe.
	nw.Close()
	nw.Send(0, 0, tX, nil)
}

func TestOverflowDropsNotBlocks(t *testing.T) {
	nw := New(1)
	defer nw.Close()
	for i := 0; i < inboxDepth+10; i++ {
		nw.Send(0, 0, tFlood, i) // must not block
	}
	if got := nw.Dropped(); got != 10 {
		t.Fatalf("Dropped() = %d, want 10", got)
	}
}

// TestDroppedNotCountedForDeadOrClosed: only inbox overflow counts as a
// drop; traffic silenced by a crash or by Close is not loss, it is the
// fail-stop model.
func TestDroppedNotCountedForDeadOrClosed(t *testing.T) {
	nw := New(2)
	nw.Crash(1)
	nw.Send(0, 1, tX, nil)
	nw.Close()
	nw.Send(0, 0, tY, nil)
	if got := nw.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
}
