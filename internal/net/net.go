// Package net is a small in-memory message-passing layer: reliable
// point-to-point links between processes implemented with goroutines and
// channels. The quorum-based substrates (internal/register, internal/paxos)
// run on it; crash injection silences a process's inbox and outbox, which is
// how fail-stop behaviour surfaces to its peers (no more replies — exactly
// the asynchronous model's ambiguity that failure detectors resolve).
package net

import (
	"sync"
	"sync/atomic"

	"repro/internal/groups"
	"repro/internal/obs"
)

// MsgType is the typed identity of a protocol message — a one-byte wire
// tag. It replaces the old stringly Packet.Kind: dispatch compares a byte
// instead of interning strings, and the binary codec (internal/wire) keys
// its decoder registry on it. The value space is partitioned by protocol in
// internal/wire; this package treats it as opaque.
type MsgType uint8

// Packet is a message in flight.
type Packet struct {
	From, To groups.Process
	Type     MsgType
	Body     any
}

// Transport is the message-passing fabric the live substrates run on. The
// reliable Network below implements it, and so does the adversarial wrapper
// in internal/chaos — every quorum protocol (register, paxos, ofcons,
// replog) is written against this interface so it runs unmodified over
// either fabric.
type Transport interface {
	// N returns the number of processes.
	N() int
	// Send delivers (or drops, or delays — per the fabric) a packet.
	Send(from, to groups.Process, t MsgType, body any)
	// Broadcast sends to every member of the set.
	Broadcast(from groups.Process, set groups.ProcSet, t MsgType, body any)
	// Inbox returns the receive channel of p. It is closed by Close.
	Inbox(p groups.Process) <-chan Packet
	// Crash silences p permanently (fail-stop).
	Crash(p groups.Process)
	// Crashed reports whether p was crashed.
	Crashed(p groups.Process) bool
	// Close ends the run: inboxes close and further sends are no-ops.
	Close()
}

// endpoint is the per-process receive state. Each endpoint has its own
// lock, so senders to different recipients never serialise on a shared
// mutex — only senders racing for the same inbox (and Close/Crash touching
// it) contend.
type endpoint struct {
	mu     sync.Mutex
	closed bool // set by Network.Close before the channel is closed
	ch     chan Packet
}

// Network connects n processes with reliable FIFO links. The state is
// sharded per endpoint: crash flags are per-process atomics, the global
// closed flag is an atomic fast path, and the only lock a send takes is the
// recipient's own (needed to order the channel send against Close).
type Network struct {
	n        int
	dropped  atomic.Uint64
	counters *obs.NetCounters
	closed   atomic.Bool
	dead     []atomic.Bool
	eps      []endpoint
}

var _ Transport = (*Network)(nil)

// inboxDepth bounds per-process buffering; the substrates' request/response
// protocols keep traffic far below it.
const inboxDepth = 1024

// New builds a network over n processes.
func New(n int) *Network {
	nw := &Network{
		n:        n,
		counters: obs.NewNetCounters(n),
		dead:     make([]atomic.Bool, n),
		eps:      make([]endpoint, n),
	}
	for i := range nw.eps {
		nw.eps[i].ch = make(chan Packet, inboxDepth)
	}
	return nw
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// Send delivers a packet to the recipient's inbox. Packets from or to
// crashed processes are dropped silently, and sends after Close are no-ops
// (a closed network models the end of the run).
func (nw *Network) Send(from, to groups.Process, t MsgType, body any) {
	if nw.closed.Load() || nw.dead[from].Load() || nw.dead[to].Load() {
		return
	}
	ep := &nw.eps[to]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	// The send is non-blocking and performed under the endpoint's lock, so
	// it cannot race with Close closing the channel.
	select {
	case ep.ch <- Packet{From: from, To: to, Type: t, Body: body}:
		nw.counters.Sent(from, to, obs.EstimateSize(body))
	default:
		// Inbox overflow: drop, and count it. The substrates retransmit, so
		// a drop only costs latency and cannot violate safety — but chaos
		// runs can legitimately fill inboxes, and a silent overflow would be
		// indistinguishable from injected loss, so the count keeps the two
		// observable apart.
		nw.dropped.Add(1)
		nw.counters.Overflow()
	}
}

// NetReport returns the per-link traffic counters accumulated so far. It
// implements obs.NetReporter.
func (nw *Network) NetReport() *obs.NetReport { return nw.counters.Report() }

// Dropped returns how many packets were dropped on a full inbox since the
// network was built.
func (nw *Network) Dropped() uint64 { return nw.dropped.Load() }

// Broadcast sends to every member of the set.
func (nw *Network) Broadcast(from groups.Process, set groups.ProcSet, t MsgType, body any) {
	for _, p := range set.Members() {
		nw.Send(from, p, t, body)
	}
}

// Inbox returns the receive channel of p — the current incarnation's: after
// a Restart the old channel is closed and a fresh one takes its place, so
// the read is ordered against that swap by the endpoint lock.
func (nw *Network) Inbox(p groups.Process) <-chan Packet {
	ep := &nw.eps[p]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.ch
}

// Crash silences p: its pending inbox is drained and all future traffic
// from or to it is dropped.
func (nw *Network) Crash(p groups.Process) {
	nw.dead[p].Store(true)
	ep := &nw.eps[p]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	for {
		select {
		case <-ep.ch:
		default:
			return
		}
	}
}

// Crashed reports whether p was crashed.
func (nw *Network) Crashed(p groups.Process) bool { return nw.dead[p].Load() }

// Restarter is the optional power-cycle capability of a transport: Crash
// followed by Restart models a process being killed and later rebooted with
// the same identity. Fabrics that cannot revive an endpoint (or that model
// reconnection themselves, like the TCP transport, where a restarted daemon
// simply redials) need not implement it.
type Restarter interface {
	Restart(p groups.Process)
}

// Restart power-cycles p's endpoint. The old inbox channel is closed —
// terminating the dead incarnation's receive loops the way process death
// would — and a fresh one is installed for the recovered node before the
// crash flag clears. Packets queued for the old incarnation are discarded:
// they were addressed to a process that no longer exists, and the fair-lossy
// link model lets peers retransmit.
//
// The caller sequences Crash(p), node recovery from its WAL, then
// Restart(p); only after Restart does the new incarnation's Inbox(p) return
// the live channel.
func (nw *Network) Restart(p groups.Process) {
	ep := &nw.eps[p]
	ep.mu.Lock()
	if !ep.closed {
		close(ep.ch)
		ep.ch = make(chan Packet, inboxDepth)
	}
	ep.mu.Unlock()
	nw.dead[p].Store(false)
}

// Close stops all future traffic (used at test teardown so server
// goroutines drain and exit).
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	for i := range nw.eps {
		ep := &nw.eps[i]
		ep.mu.Lock()
		ep.closed = true
		close(ep.ch)
		ep.mu.Unlock()
	}
}
