package net

import (
	"sync"
	"testing"

	"repro/internal/groups"
)

// Race coverage for the per-endpoint lock fast path: Send/Broadcast racing
// Close and Crash must never panic (send on closed channel) or trip the
// race detector. The assertions are thin on purpose — the test's value is
// the schedule it forces under -race, not the values it reads.

const tRace MsgType = 0xFD // scratch block (see internal/wire)

// TestRaceSendVsClose hammers every link while Close lands mid-storm.
func TestRaceSendVsClose(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		nw := New(4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p groups.Process) {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					nw.Send(p, groups.Process(i%4), tRace, i)
					nw.Broadcast(p, groups.NewProcSet(0, 1, 2, 3), tRace, i)
				}
			}(groups.Process(p))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			nw.Close()
		}()
		close(start)
		wg.Wait()
		nw.Close() // idempotent
	}
}

// TestRaceSendVsCrash races crash injection (which drains the victim's
// inbox under its endpoint lock) against senders and a draining receiver.
func TestRaceSendVsCrash(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		nw := New(3)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 3; p++ {
			wg.Add(1)
			go func(p groups.Process) {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					nw.Send(p, groups.Process((int(p)+1)%3), tRace, i)
				}
			}(groups.Process(p))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			nw.Crash(1)
			nw.Crash(1) // idempotent
		}()
		// A live receiver keeps inbox 2 draining while the storm runs.
		done := make(chan struct{})
		go func() {
			for range nw.Inbox(2) {
			}
			close(done)
		}()
		close(start)
		wg.Wait()
		if !nw.Crashed(1) {
			t.Fatal("crash flag lost")
		}
		nw.Close()
		<-done
	}
}

// TestRaceCrashVsClose races the two teardown paths against each other and
// against senders: both drain or close the same endpoint channels.
func TestRaceCrashVsClose(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		nw := New(3)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 3; p++ {
			wg.Add(1)
			go func(p groups.Process) {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					nw.Broadcast(p, groups.NewProcSet(0, 1, 2), tRace, i)
				}
			}(groups.Process(p))
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			nw.Crash(0)
		}()
		go func() {
			defer wg.Done()
			<-start
			nw.Close()
		}()
		close(start)
		wg.Wait()
	}
}
