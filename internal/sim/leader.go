package sim

import (
	"fmt"

	"repro/internal/groups"
)

// LeaderMulticast is the strongly genuine atomic multicast automaton the
// Ω-extraction simulates runs of. It solves the restricted instances of
// Appendix B — the processes of g∩h each multicast a single message to
// either g or h — with a leader-sequencer protocol driven by a leader-style
// failure detector over g∩h:
//
//	GO  — initial stimulus: the process sends REQ(dst) to its current
//	      leader sample d;
//	REQ — the leader assigns the next sequence number and sends ORD to
//	      every process of g ∪ h;
//	ORD — processes deliver in sequence-number order (contiguously), each
//	      only the messages addressed to a group containing it.
type LeaderMulticast struct {
	Topo *groups.Topology
	G, H groups.GroupID
}

// leaderState is the per-process protocol state.
type leaderState struct {
	seq     int64                // leader: next sequence number - 1
	pending map[int64]ordPayload // out-of-order ORD buffer
	next    int64                // last contiguously handled sequence
}

type ordPayload struct {
	dst    groups.GroupID
	origin groups.Process
}

// Clone implements State.
func (s *leaderState) Clone() State {
	out := &leaderState{seq: s.seq, next: s.next, pending: make(map[int64]ordPayload, len(s.pending))}
	for k, v := range s.pending {
		out.pending[k] = v
	}
	return out
}

// Init implements Automaton.
func (a *LeaderMulticast) Init(p groups.Process) State {
	return &leaderState{pending: make(map[int64]ordPayload)}
}

// Scope returns g ∪ h.
func (a *LeaderMulticast) Scope() groups.ProcSet {
	return a.Topo.Group(a.G).Union(a.Topo.Group(a.H))
}

// DeliveryLabel renders a delivery of origin's message to dst.
func DeliveryLabel(dst groups.GroupID, origin groups.Process) string {
	return fmt.Sprintf("g%d:p%d", dst, origin)
}

// LabelGroup parses the destination group back out of a delivery label.
func LabelGroup(label string) groups.GroupID {
	var g, p int
	fmt.Sscanf(label, "g%d:p%d", &g, &p)
	return groups.GroupID(g)
}

// Apply implements Automaton.
func (a *LeaderMulticast) Apply(p groups.Process, st State, m *Message, d FDValue) (State, []Outgoing, []string) {
	s, ok := st.(*leaderState)
	if !ok || m == nil {
		return st, nil, nil
	}
	s = s.Clone().(*leaderState)
	switch m.Tag {
	case "GO":
		// Multicast the initial message to the group encoded in A by
		// handing it to the current leader sample.
		return s, []Outgoing{{To: groups.Process(d), Tag: "REQ", A: m.A, B: int64(p)}}, nil
	case "REQ":
		s.seq++
		n := s.seq
		outs := make([]Outgoing, 0, a.Scope().Count())
		for _, q := range a.Scope().Members() {
			outs = append(outs, Outgoing{To: q, Tag: "ORD", A: m.A, B: n<<16 | m.B})
		}
		return s, outs, nil
	case "ORD":
		n := m.B >> 16
		origin := groups.Process(m.B & 0xffff)
		s.pending[n] = ordPayload{dst: groups.GroupID(m.A), origin: origin}
		var delivered []string
		for {
			pl, ok := s.pending[s.next+1]
			if !ok {
				break
			}
			s.next++
			delete(s.pending, s.next)
			if a.Topo.Group(pl.dst).Has(p) {
				delivered = append(delivered, DeliveryLabel(pl.dst, pl.origin))
			}
		}
		return s, nil, delivered
	}
	return s, nil, nil
}
