package sim

import (
	"testing"

	"repro/internal/groups"
)

// disjointSetup builds two disjoint groups over four processes with one
// initial multicast in each.
func disjointSetup() (*LeaderMulticast, *Config) {
	topo := groups.MustNew(4,
		groups.NewProcSet(0, 1), // g
		groups.NewProcSet(2, 3), // h (disjoint)
	)
	a := &LeaderMulticast{Topo: topo, G: 0, H: 1}
	c := NewConfig(a, 4)
	c.Inject(0, 0, "GO", 0, 0) // p0 multicasts to g
	c.Inject(2, 2, "GO", 1, 0) // p2 multicasts to h
	return a, c
}

// driveGroup returns a schedule that runs one group's protocol to
// completion (leader = the group's first member).
func driveGroup(a *LeaderMulticast, c *Config, members []groups.Process, leader groups.Process) Schedule {
	var sched Schedule
	cur := c
	for iter := 0; iter < 50; iter++ {
		progressed := false
		for _, p := range members {
			pend := cur.PendingFor(p)
			if len(pend) == 0 {
				continue
			}
			st := Step{P: p, MsgSeq: pend[0], D: FDValue(leader)}
			cur = cur.Apply(a, st)
			sched = append(sched, st)
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return sched
}

func TestProjectAndProcesses(t *testing.T) {
	s := Schedule{{P: 0}, {P: 2}, {P: 0}, {P: 3}}
	if got := Processes(s); got != groups.NewProcSet(0, 2, 3) {
		t.Fatalf("Processes = %v", got)
	}
	proj := Project(s, groups.NewProcSet(0))
	if len(proj) != 2 || proj[0].P != 0 || proj[1].P != 0 {
		t.Fatalf("Project = %v", proj)
	}
}

// TestLemma55_SoundProjectionIsARun: the projection of a run onto a group
// whose messages never cross the group boundary is sound and applicable —
// the indistinguishability surgery of Lemma 55.
func TestLemma55_SoundProjectionIsARun(t *testing.T) {
	a, c := disjointSetup()
	full := driveGroup(a, c, []groups.Process{0, 1}, 0)
	cAfter := c.ApplySchedule(a, full)
	full = append(full, driveGroup(a, cAfter, []groups.Process{2, 3}, 2)...)

	gOnly := groups.NewProcSet(0, 1)
	if !Sound(a, c, full, gOnly) {
		t.Fatalf("projection onto g should be sound (its messages are internal)")
	}
	proj := Project(full, gOnly)
	if !Applicable(a, c, proj) {
		t.Fatalf("sound projection should be applicable from the initial config")
	}
	// The projected run delivers g's message at g's members.
	end := c.ApplySchedule(a, proj)
	if len(end.Delivered[0]) != 1 || len(end.Delivered[1]) != 1 {
		t.Fatalf("projected run lost deliveries: %v / %v", end.Delivered[0], end.Delivered[1])
	}
}

// TestSoundnessDetectsCrossConsumption: with overlapping groups, the
// shared member consumes messages sent by the other side; projecting one
// side out is not sound.
func TestSoundnessDetectsCrossConsumption(t *testing.T) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
	)
	a := &LeaderMulticast{Topo: topo, G: 0, H: 1}
	c := NewConfig(a, 3)
	c.Inject(1, 1, "GO", 0, 0) // the shared p1 multicasts to g
	// p1's GO produces a REQ to the leader p1 itself; then ORD to everyone.
	sched := driveGroup(a, c, []groups.Process{1, 0, 2}, 1)
	// Projection onto {p0}: p0 consumes an ORD sent by p1 ∉ {p0} → unsound.
	if Sound(a, c, sched, groups.NewProcSet(0)) {
		t.Fatalf("projection should be unsound: p0 consumes p1's ORD")
	}
}

// TestLemma57_GluingDisjointRuns: two runs over disjoint process sets from
// the same initial configuration glue into one run (S · S'), and the glued
// run's deliveries are the union.
func TestLemma57_GluingDisjointRuns(t *testing.T) {
	a, c := disjointSetup()
	s1 := driveGroup(a, c, []groups.Process{0, 1}, 0)
	s2 := driveGroup(a, c, []groups.Process{2, 3}, 2)

	glued, ok := Glue(a, c, s1, s2)
	if !ok {
		t.Fatalf("disjoint runs should glue")
	}
	if len(glued) != len(s1)+len(s2) {
		t.Fatalf("glued length %d, want %d", len(glued), len(s1)+len(s2))
	}
	end := c.ApplySchedule(a, glued)
	for p := 0; p < 4; p++ {
		if len(end.Delivered[p]) != 1 {
			t.Fatalf("glued run deliveries wrong at p%d: %v", p, end.Delivered[p])
		}
	}
}

// TestGlueRejectsOverlap: gluing requires disjoint process sets.
func TestGlueRejectsOverlap(t *testing.T) {
	a, c := disjointSetup()
	s1 := driveGroup(a, c, []groups.Process{0, 1}, 0)
	if _, ok := Glue(a, c, s1, s1); ok {
		t.Fatalf("gluing overlapping schedules must fail")
	}
}
