// Package sim is an executable rendition of the formal model of Appendix A:
// deterministic process automata, atomic steps (p, m, d) that receive one
// message and one failure-detector sample, configurations with a message
// buffer, schedules, and their application. The CHT-style extraction of
// Ω_{g∩h} (Algorithm 5 / Appendix B) simulates runs of a multicast
// algorithm inside this model.
package sim

import (
	"fmt"

	"repro/internal/groups"
)

// FDValue is one failure-detector sample, as an opaque integer (for the
// leader-style detectors used by the extraction it is a process identifier).
type FDValue int64

// Message is a message in transit. Seq identifies it within a configuration
// lineage; messages are assigned sequence numbers deterministically when
// sent, so identical schedules produce identical configurations.
type Message struct {
	Seq      int
	From, To groups.Process
	Tag      string
	A, B     int64
}

// String renders the message.
func (m *Message) String() string {
	return fmt.Sprintf("#%d %s(p%d→p%d,%d,%d)", m.Seq, m.Tag, m.From, m.To, m.A, m.B)
}

// Outgoing is a message being sent by a step.
type Outgoing struct {
	To   groups.Process
	Tag  string
	A, B int64
}

// State is a process automaton state. Clone must deep-copy.
type State interface {
	Clone() State
}

// Automaton is a deterministic process automaton in the Appendix A model: a
// step receives a message (nil for the null message m⊥) and a detector
// sample, updates the state, sends messages and possibly delivers labels to
// the application.
type Automaton interface {
	Init(p groups.Process) State
	Apply(p groups.Process, st State, m *Message, d FDValue) (State, []Outgoing, []string)
}

// Step is one step (p, m, d): process p receives the message with sequence
// number MsgSeq (0 means the null message) with detector sample D.
type Step struct {
	P      groups.Process
	MsgSeq int
	D      FDValue
}

// String renders the step.
func (s Step) String() string {
	return fmt.Sprintf("(p%d,#%d,%d)", s.P, s.MsgSeq, s.D)
}

// Schedule is a sequence of steps.
type Schedule []Step

// Config is a configuration: the local states, the message buffer (per
// recipient, in arrival order), the delivery history, and the sequence
// counter for deterministic message identity.
type Config struct {
	N         int
	States    []State
	Buff      [][]*Message
	Delivered [][]string
	NextSeq   int
}

// NewConfig builds the initial configuration of an automaton over n
// processes. Initial messages (the model encodes initial multicasts as
// pre-loaded buffer contents) may be injected with Inject.
func NewConfig(a Automaton, n int) *Config {
	c := &Config{
		N:         n,
		States:    make([]State, n),
		Buff:      make([][]*Message, n),
		Delivered: make([][]string, n),
		NextSeq:   1,
	}
	for p := 0; p < n; p++ {
		c.States[p] = a.Init(groups.Process(p))
	}
	return c
}

// Inject adds a message to the buffer (used to seed initial configurations).
func (c *Config) Inject(from, to groups.Process, tag string, a, b int64) {
	m := &Message{Seq: c.NextSeq, From: from, To: to, Tag: tag, A: a, B: b}
	c.NextSeq++
	c.Buff[to] = append(c.Buff[to], m)
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{
		N:         c.N,
		States:    make([]State, c.N),
		Buff:      make([][]*Message, c.N),
		Delivered: make([][]string, c.N),
		NextSeq:   c.NextSeq,
	}
	for p := 0; p < c.N; p++ {
		if c.States[p] != nil {
			out.States[p] = c.States[p].Clone()
		}
		out.Buff[p] = append([]*Message(nil), c.Buff[p]...)
		out.Delivered[p] = append([]string(nil), c.Delivered[p]...)
	}
	return out
}

// Applicable reports whether step s can be taken: its message (if non-null)
// must be in the buffer of s.P.
func (c *Config) Applicable(s Step) bool {
	if s.MsgSeq == 0 {
		return true
	}
	for _, m := range c.Buff[s.P] {
		if m.Seq == s.MsgSeq {
			return true
		}
	}
	return false
}

// Apply executes one step and returns the successor configuration (the
// receiver is unchanged).
func (c *Config) Apply(a Automaton, s Step) *Config {
	out := c.Clone()
	var msg *Message
	if s.MsgSeq != 0 {
		buf := out.Buff[s.P]
		for i, m := range buf {
			if m.Seq == s.MsgSeq {
				msg = m
				out.Buff[s.P] = append(append([]*Message(nil), buf[:i]...), buf[i+1:]...)
				break
			}
		}
		if msg == nil {
			panic(fmt.Sprintf("sim: step %v not applicable", s))
		}
	}
	st, outs, delivered := a.Apply(s.P, out.States[s.P], msg, s.D)
	out.States[s.P] = st
	for _, o := range outs {
		m := &Message{Seq: out.NextSeq, From: s.P, To: o.To, Tag: o.Tag, A: o.A, B: o.B}
		out.NextSeq++
		out.Buff[o.To] = append(out.Buff[o.To], m)
	}
	out.Delivered[s.P] = append(out.Delivered[s.P], delivered...)
	return out
}

// ApplySchedule applies a schedule from c; it panics when a step is not
// applicable (schedules are built applicably by construction).
func (c *Config) ApplySchedule(a Automaton, sched Schedule) *Config {
	cur := c
	for _, s := range sched {
		cur = cur.Apply(a, s)
	}
	return cur
}

// PendingFor returns the sequence numbers of the messages buffered for p.
func (c *Config) PendingFor(p groups.Process) []int {
	out := make([]int, 0, len(c.Buff[p]))
	for _, m := range c.Buff[p] {
		out = append(out, m.Seq)
	}
	return out
}
