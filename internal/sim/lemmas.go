package sim

import (
	"repro/internal/groups"
)

// This file makes the technical lemmas of Appendix A.1 executable: schedule
// projection (sub-algorithm runs, Lemma 54/55), soundness of a projection
// (the premise of the indistinguishability lemma), and the gluing of
// schedules over disjoint process sets (Lemmas 56/57). The extraction
// proofs rest on these; having them as code lets the tests replay the
// proofs' run surgeries.

// Project returns S|P: the steps of the processes in the set, in order.
func Project(s Schedule, set groups.ProcSet) Schedule {
	out := make(Schedule, 0, len(s))
	for _, st := range s {
		if set.Has(st.P) {
			out = append(out, st)
		}
	}
	return out
}

// Processes returns proc(S): the processes taking steps in the schedule.
func Processes(s Schedule) groups.ProcSet {
	var set groups.ProcSet
	for _, st := range s {
		set = set.Add(st.P)
	}
	return set
}

// Sound reports whether S|P is sound with respect to S from the initial
// configuration: every message consumed by a step of P was either present
// initially or sent by an earlier step of P — i.e. the projection is closed
// under the happens-before relation, which is what Lemma 55 requires for
// the projected schedule to be a run.
func Sound(a Automaton, init *Config, s Schedule, set groups.ProcSet) bool {
	// Replay s, recording the sender process of every message sequence
	// number. Initial messages (injected) have no sender.
	sender := make(map[int]groups.Process)
	cur := init
	for _, st := range s {
		if !cur.Applicable(st) {
			return false
		}
		before := cur.NextSeq
		next := cur.Apply(a, st)
		for seq := before; seq < next.NextSeq; seq++ {
			sender[seq] = st.P
		}
		if set.Has(st.P) && st.MsgSeq != 0 {
			if from, sent := sender[st.MsgSeq]; sent && !set.Has(from) {
				return false // consumed a message sent outside P
			}
		}
		cur = next
	}
	return true
}

// Applicable reports whether the whole schedule is applicable from the
// configuration (every step's message is available when taken).
func Applicable(a Automaton, init *Config, s Schedule) bool {
	cur := init
	for _, st := range s {
		if !cur.Applicable(st) {
			return false
		}
		cur = cur.Apply(a, st)
	}
	return true
}

// Glue concatenates two schedules over disjoint process sets (Lemma 57:
// the last step of S precedes the first of S' in real time, so S·S' is a
// run). It reports failure when the process sets intersect or the
// concatenation is not applicable.
//
// Message identity caveat: sequence numbers are assigned in application
// order, so S' must be re-derived in the glued lineage. Glue therefore
// takes S' as a *step generator* relative to its own lineage: the caller
// passes the schedule S' as recorded from init, and Glue remaps its message
// references by replaying both lineages. Remapping is possible exactly
// because the two process sets are disjoint — their messages never cross.
func Glue(a Automaton, init *Config, s1, s2 Schedule) (Schedule, bool) {
	if !Processes(s1).Intersect(Processes(s2)).Empty() {
		return nil, false
	}
	// Replay s2 from init recording, per consumed sequence number, the
	// descriptor (From, To, Tag, A, B) so the step can be re-matched in the
	// glued lineage where numbering differs.
	type msgKey struct {
		From, To groups.Process
		Tag      string
		A, B     int64
	}
	cur := init
	descr := make([]*msgKey, len(s2))
	for i, st := range s2 {
		if st.MsgSeq != 0 {
			found := false
			for _, m := range cur.Buff[st.P] {
				if m.Seq == st.MsgSeq {
					descr[i] = &msgKey{From: m.From, To: m.To, Tag: m.Tag, A: m.A, B: m.B}
					found = true
					break
				}
			}
			if !found {
				return nil, false
			}
		}
		if !cur.Applicable(st) {
			return nil, false
		}
		cur = cur.Apply(a, st)
	}
	// Apply s1, then re-issue s2 steps matching by descriptor.
	glued := append(Schedule{}, s1...)
	cur = init
	for _, st := range s1 {
		if !cur.Applicable(st) {
			return nil, false
		}
		cur = cur.Apply(a, st)
	}
	for i, st := range s2 {
		re := st
		if descr[i] != nil {
			re.MsgSeq = 0
			for _, m := range cur.Buff[st.P] {
				if m.From == descr[i].From && m.Tag == descr[i].Tag &&
					m.A == descr[i].A && m.B == descr[i].B {
					re.MsgSeq = m.Seq
					break
				}
			}
			if re.MsgSeq == 0 {
				return nil, false
			}
		}
		cur = cur.Apply(a, re)
		glued = append(glued, re)
	}
	return glued, true
}
