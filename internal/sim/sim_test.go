package sim

import (
	"testing"

	"repro/internal/groups"
)

func topo2() *groups.Topology {
	return groups.MustNew(4,
		groups.NewProcSet(0, 1, 2),
		groups.NewProcSet(1, 2, 3),
	)
}

func TestConfigCloneIsolated(t *testing.T) {
	a := &LeaderMulticast{Topo: topo2(), G: 0, H: 1}
	c := NewConfig(a, 4)
	c.Inject(1, 1, "GO", 0, 0)
	d := c.Clone()
	d.Buff[1] = nil
	if len(c.Buff[1]) != 1 {
		t.Fatalf("clone aliased the buffer")
	}
}

func TestApplyConsumesMessage(t *testing.T) {
	a := &LeaderMulticast{Topo: topo2(), G: 0, H: 1}
	c := NewConfig(a, 4)
	c.Inject(1, 1, "GO", 0, 0)
	st := Step{P: 1, MsgSeq: 1, D: 1}
	if !c.Applicable(st) {
		t.Fatalf("GO step should be applicable")
	}
	c2 := c.Apply(a, st)
	if len(c2.Buff[1]) != 1 || c2.Buff[1][0].Tag != "REQ" {
		t.Fatalf("GO should send REQ to the leader sample: %v", c2.Buff[1])
	}
	if len(c.Buff[1]) != 1 || c.Buff[1][0].Tag != "GO" {
		t.Fatalf("Apply mutated the source configuration")
	}
	if c.Applicable(Step{P: 1, MsgSeq: 99}) {
		t.Fatalf("unknown message applicable")
	}
}

// TestLeaderProtocolEndToEnd drives the leader multicast to completion by
// hand: both members of g∩h multicast, the leader orders, everyone in scope
// delivers in the same order.
func TestLeaderProtocolEndToEnd(t *testing.T) {
	tp := topo2()
	a := &LeaderMulticast{Topo: tp, G: 0, H: 1}
	c := NewConfig(a, 4)
	c.Inject(1, 1, "GO", 0, 0) // p1 multicasts to g0
	c.Inject(2, 2, "GO", 1, 0) // p2 multicasts to g1

	// Drain: repeatedly deliver the oldest buffered message round-robin,
	// leader = p1 always.
	for iter := 0; iter < 100; iter++ {
		progressed := false
		for p := 0; p < 4; p++ {
			pend := c.PendingFor(groups.Process(p))
			if len(pend) == 0 {
				continue
			}
			c = c.Apply(a, Step{P: groups.Process(p), MsgSeq: pend[0], D: 1})
			progressed = true
		}
		if !progressed {
			break
		}
	}
	// Everyone in g0 = {0,1,2} delivered the g0 message; everyone in
	// g1 = {1,2,3} the g1 message; the shared processes delivered both in
	// the same order.
	if len(c.Delivered[0]) != 1 || LabelGroup(c.Delivered[0][0]) != 0 {
		t.Fatalf("p0 deliveries: %v", c.Delivered[0])
	}
	if len(c.Delivered[3]) != 1 || LabelGroup(c.Delivered[3][0]) != 1 {
		t.Fatalf("p3 deliveries: %v", c.Delivered[3])
	}
	if len(c.Delivered[1]) != 2 || len(c.Delivered[2]) != 2 {
		t.Fatalf("shared processes deliveries: %v / %v", c.Delivered[1], c.Delivered[2])
	}
	for i := range c.Delivered[1] {
		if c.Delivered[1][i] != c.Delivered[2][i] {
			t.Fatalf("shared processes disagree: %v vs %v", c.Delivered[1], c.Delivered[2])
		}
	}
}

func TestScheduleApplication(t *testing.T) {
	tp := topo2()
	a := &LeaderMulticast{Topo: tp, G: 0, H: 1}
	c := NewConfig(a, 4)
	c.Inject(1, 1, "GO", 0, 0)
	sched := Schedule{{P: 1, MsgSeq: 1, D: 1}}
	c2 := c.ApplySchedule(a, sched)
	if len(c2.Buff[1]) != 1 {
		t.Fatalf("schedule application broken")
	}
}

func TestDeliveryLabelRoundTrip(t *testing.T) {
	l := DeliveryLabel(3, 7)
	if LabelGroup(l) != 3 {
		t.Fatalf("label round trip broken: %q", l)
	}
}

func TestNullStepIsNoOp(t *testing.T) {
	tp := topo2()
	a := &LeaderMulticast{Topo: tp, G: 0, H: 1}
	c := NewConfig(a, 4)
	c2 := c.Apply(a, Step{P: 0, MsgSeq: 0, D: 1})
	if len(c2.Buff[0]) != 0 || len(c2.Delivered[0]) != 0 {
		t.Fatalf("null step changed the configuration")
	}
}
