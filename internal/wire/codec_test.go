package wire_test

import (
	"reflect"
	"testing"

	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/paxos"
	"repro/internal/register"
	_ "repro/internal/replog" // registers TReplogOp
	"repro/internal/wire"
)

// samples returns one representative packet per registered message type,
// with every field shape exercised (negative varints, empty and non-empty
// slices, strings, booleans).
func samples(t testing.TB) map[net.MsgType]net.Packet {
	t.Helper()
	inst := paxos.InstanceID{Space: 2, Realm: 1 << 40, Slot: -7}
	out := map[net.MsgType]net.Packet{
		wire.TRegRead: {Type: wire.TRegRead, Body: register.ReadReq{Reg: "LOG_g0∩g1", Op: 42}},
		wire.TRegReadResp: {Type: wire.TRegReadResp, Body: register.ReadResp{
			Reg: "r", Op: -1, Cur: register.TaggedValue{TS: 9, By: 3, Val: -12}}},
		wire.TRegWrite: {Type: wire.TRegWrite, Body: register.WriteReq{
			Reg: "", Op: 0, Val: register.TaggedValue{TS: 1, By: 0, Val: 5}}},
		wire.TRegWriteResp: {Type: wire.TRegWriteResp, Body: register.WriteResp{Reg: "x", Op: 1 << 50}},
		wire.TPaxPrepare:   {Type: wire.TPaxPrepare, Body: paxos.PrepareReq{Inst: inst, Ballot: 13, Range: true}},
		wire.TPaxPrepareResp: {Type: wire.TPaxPrepareResp, Body: paxos.PrepareResp{
			Inst: inst, Ballot: 13, OK: true, Promised: -2,
			Accepted: paxos.AcceptedVal{Ballot: 4, Val: paxos.I64Value(-9), Has: true},
			Range: []paxos.SlotVal{
				{Slot: 1, Ballot: 2, Val: paxos.I64Value(3)},
				{Slot: -4, Ballot: 5, Val: paxos.I64Value(-6)}},
			Decided: true, DecVal: paxos.I64Value(77)}},
		wire.TPaxAccept: {Type: wire.TPaxAccept, Body: paxos.AcceptReq{
			Inst: inst, Ballot: 3, Val: paxos.I64Value(-100), PrevDecided: true,
			Prev: paxos.SlotVal{Slot: -8, Ballot: 2, Val: paxos.I64Value(1)}}},
		wire.TPaxAcceptResp: {Type: wire.TPaxAcceptResp, Body: paxos.AcceptResp{
			Inst: inst, Ballot: 3, OK: false, Promised: 6, Decided: false}},
		wire.TPaxDecide: {Type: wire.TPaxDecide, Body: paxos.DecideMsg{Inst: inst, Val: paxos.I64Value(123456789)}},
		wire.TPaxLearn:  {Type: wire.TPaxLearn, Body: paxos.LearnReq{Inst: inst}},
		wire.TReplogOp:  {Type: wire.TReplogOp, Body: sampleOp(t)},
		wire.TReplogFwd: {Type: wire.TReplogFwd, Body: sampleFwdBatch(t)},
		wire.TDatum: {Type: wire.TDatum, Body: logobj.Datum{
			Kind: logobj.KindPos, Msg: msg.ID(3), H: groups.GroupID(1), I: 17}},
	}
	for typ, pkt := range out {
		pkt.From, pkt.To = 1, 2
		out[typ] = pkt
	}
	return out
}

// sampleOp builds a replog.Op through its own decoder (the op kind type is
// unexported, so the bytes are the public constructor).
func sampleOp(t testing.TB) any {
	t.Helper()
	var e wire.Enc
	e.I64(2) // opBumpAndLock
	logobj.EncodeDatum(&e, logobj.Datum{Kind: logobj.KindMsg, Msg: 5, H: 2, I: 0})
	e.I64(31)
	e.U64(0) // conflict class
	pkt, err := wire.DecodePacket(append([]byte{1, uint8(wire.TReplogOp), 0, 0}, e.Bytes()...))
	if err != nil {
		t.Fatalf("building sample replog op: %v", err)
	}
	return pkt.Body
}

// sampleFwdBatch builds a replog.FwdBatch the same way: realm, op count,
// then the ops with the standalone-Op field layout.
func sampleFwdBatch(t testing.TB) any {
	t.Helper()
	var e wire.Enc
	e.U64(7<<32 | 3) // realm
	e.U64(2)         // two ops
	e.I64(1)         // opAppend
	logobj.EncodeDatum(&e, logobj.Datum{Kind: logobj.KindMsg, Msg: 9, H: 1, I: 0})
	e.I64(0)
	e.U64(42) // conflict class: keyed
	e.I64(2)  // opBumpAndLock
	logobj.EncodeDatum(&e, logobj.Datum{Kind: logobj.KindPos, Msg: 4, H: 0, I: 6})
	e.I64(12)
	e.U64(0) // conflict class: untagged
	pkt, err := wire.DecodePacket(append([]byte{1, uint8(wire.TReplogFwd), 0, 0}, e.Bytes()...))
	if err != nil {
		t.Fatalf("building sample replog fwd batch: %v", err)
	}
	return pkt.Body
}

// TestRoundTripEveryRegisteredType encodes and decodes one sample of every
// registered message type and requires exact equality — and requires that
// the sample table covers the registry, so adding a type without a
// round-trip sample fails here.
func TestRoundTripEveryRegisteredType(t *testing.T) {
	ss := samples(t)
	for _, typ := range wire.RegisteredTypes() {
		pkt, ok := ss[typ]
		if !ok {
			t.Errorf("registered type %#02x (%s) has no round-trip sample", uint8(typ), wire.TypeName(typ))
			continue
		}
		frame, err := wire.EncodePacket(pkt)
		if err != nil {
			t.Errorf("%s: encode: %v", wire.TypeName(typ), err)
			continue
		}
		got, err := wire.DecodePacket(frame)
		if err != nil {
			t.Errorf("%s: decode: %v", wire.TypeName(typ), err)
			continue
		}
		if !reflect.DeepEqual(got, pkt) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", wire.TypeName(typ), got, pkt)
		}
	}
	for typ := range ss {
		if wire.TypeName(typ) == "" {
			t.Errorf("sample type %#02x is not registered", uint8(typ))
		}
	}
}

// TestDecodeRejectsMalformedFrames spells out the codec's failure modes on
// crafted input: short header, bad version, unregistered tag, truncated and
// oversized bodies all come back as errors (never panics — the fuzz target
// widens this to arbitrary input).
func TestDecodeRejectsMalformedFrames(t *testing.T) {
	valid, err := wire.EncodePacket(samples(t)[wire.TPaxPrepareResp])
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             nil,
		"short header":      {1, uint8(wire.TPaxPrepare)},
		"bad version":       {9, uint8(wire.TPaxPrepare), 0, 1},
		"unregistered tag":  {1, 0x99, 0, 1},
		"reserved zero tag": {1, 0, 0, 1},
		"empty body":        {1, uint8(wire.TPaxPrepare), 0, 1},
		"truncated body":    valid[:len(valid)-1],
		"trailing bytes":    append(append([]byte{}, valid...), 0),
	}
	for name, frame := range cases {
		if _, err := wire.DecodePacket(frame); err == nil {
			t.Errorf("%s: decode accepted malformed frame %v", name, frame)
		}
	}
}

// TestDecodeRejectsHostileCollectionLength crafts a PrepareResp whose Range
// length claims more elements than the buffer could hold: the Len guard
// must fail it rather than allocate.
func TestDecodeRejectsHostileCollectionLength(t *testing.T) {
	var e wire.Enc
	e.U8(2)
	e.U64(1)
	e.I64(0) // InstanceID
	e.I64(1)
	e.Bool(true)
	e.I64(0) // Ballot, OK, Promised
	e.I64(0)
	e.I64(0)
	e.Bool(false)  // AcceptedVal
	e.U64(1 << 30) // hostile Range length
	frame := append([]byte{1, uint8(wire.TPaxPrepareResp), 0, 1}, e.Bytes()...)
	if _, err := wire.DecodePacket(frame); err == nil {
		t.Fatal("decode accepted a 2^30-element collection claim")
	}
}

// TestEncodeRejectsUnencodable covers the encode-side error paths: an
// unregistered type and a body without MarshalBinary.
func TestEncodeRejectsUnencodable(t *testing.T) {
	if _, err := wire.EncodePacket(net.Packet{Type: 0x99, Body: paxos.LearnReq{}}); err == nil {
		t.Error("encode accepted an unregistered message type")
	}
	if _, err := wire.EncodePacket(net.Packet{Type: wire.TPaxLearn, Body: 42}); err == nil {
		t.Error("encode accepted a body without MarshalBinary")
	}
	if _, err := wire.EncodePacket(net.Packet{Type: wire.TPaxLearn, From: 300, Body: paxos.LearnReq{}}); err == nil {
		t.Error("encode accepted an out-of-range process ID")
	}
}
