package wire_test

import (
	gonet "net"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/net"
	"repro/internal/paxos"
	"repro/internal/register"
	"repro/internal/wire"
)

// recvPacket waits for one packet on ch with a deadline.
func recvPacket(t *testing.T, ch <-chan net.Packet) net.Packet {
	t.Helper()
	select {
	case pkt, ok := <-ch:
		if !ok {
			t.Fatal("inbox closed before the expected packet arrived")
		}
		return pkt
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a packet")
		panic("unreachable")
	}
}

// TestFabricDeliversAcrossSockets sends a registered body through the
// loopback fabric and checks it arrives intact — serialized, framed,
// carried over a real TCP socket, and decoded on the far side.
func TestFabricDeliversAcrossSockets(t *testing.T) {
	f, err := wire.NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := register.ReadReq{Reg: "LOG_g0", Op: 99}
	f.Send(0, 1, wire.TRegRead, want)
	pkt := recvPacket(t, f.Inbox(1))
	if pkt.From != 0 || pkt.To != 1 || pkt.Type != wire.TRegRead {
		t.Fatalf("bad envelope: %+v", pkt)
	}
	if got := pkt.Body.(register.ReadReq); got != want {
		t.Fatalf("body mismatch: got %+v want %+v", got, want)
	}

	rep := f.WireReport()
	if rep.FramesEncoded == 0 || rep.FramesDecoded == 0 || rep.BytesOut == 0 || rep.BytesIn == 0 {
		t.Fatalf("wire counters did not observe the frame: %+v", rep)
	}
	if nr := f.NetReport(); nr.Packets == 0 || nr.Bytes == 0 {
		t.Fatalf("net counters did not observe the frame: %+v", nr)
	}
}

// TestFabricSelfSendLoopsBack checks that same-process traffic works (it
// bypasses the socket) and that broadcast reaches every member.
func TestFabricSelfSendLoopsBack(t *testing.T) {
	f, err := wire.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Broadcast(0, groups.NewProcSet(0, 1), wire.TPaxLearn, paxos.LearnReq{
		Inst: paxos.InstanceID{Realm: 7}})
	for _, p := range []groups.Process{0, 1} {
		pkt := recvPacket(t, f.Inbox(p))
		if pkt.Type != wire.TPaxLearn || pkt.Body.(paxos.LearnReq).Inst.Realm != 7 {
			t.Fatalf("p%d: bad packet %+v", p, pkt)
		}
	}
}

// TestFabricCrashSilences crashes a process and checks fail-stop semantics:
// traffic from and to it is dropped at every endpoint.
func TestFabricCrashSilences(t *testing.T) {
	f, err := wire.NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Crash(2)
	if !f.Crashed(2) {
		t.Fatal("crash not recorded")
	}
	f.Send(2, 0, wire.TPaxLearn, paxos.LearnReq{}) // from crashed: dropped
	f.Send(0, 2, wire.TPaxLearn, paxos.LearnReq{}) // to crashed: dropped
	f.Send(0, 1, wire.TPaxLearn, paxos.LearnReq{Inst: paxos.InstanceID{Slot: 5}})
	pkt := recvPacket(t, f.Inbox(1))
	if pkt.Body.(paxos.LearnReq).Inst.Slot != 5 {
		t.Fatalf("live link delivered the wrong packet: %+v", pkt)
	}
	select {
	case pkt := <-f.Inbox(0):
		t.Fatalf("crashed process's traffic leaked: %+v", pkt)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestTCPReconnectAfterPeerRestart kills a peer endpoint mid-run and brings
// it back on the same address: the sender's write loop must notice the dead
// connection, back off, redial, and deliver again — counting the reconnect.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	lnA, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	a := wire.NewWithListener(wire.Config{Self: 0, Addrs: addrs}, lnA)
	defer a.Close()
	b := wire.NewWithListener(wire.Config{Self: 1, Addrs: addrs}, lnB)

	a.Send(0, 1, wire.TPaxLearn, paxos.LearnReq{Inst: paxos.InstanceID{Slot: 1}})
	recvPacket(t, b.Inbox(1))

	// Restart the peer on the same address. Frames sent while it is down
	// are dropped (substrates retransmit); the sender must re-establish on
	// its own.
	b.Close()
	lnB2, err := gonet.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatalf("rebind %s: %v", addrs[1], err)
	}
	b2 := wire.NewWithListener(wire.Config{Self: 1, Addrs: addrs}, lnB2)
	defer b2.Close()

	deadline := time.After(10 * time.Second)
	for delivered := false; !delivered; {
		a.Send(0, 1, wire.TPaxLearn, paxos.LearnReq{Inst: paxos.InstanceID{Slot: 2}})
		select {
		case pkt, ok := <-b2.Inbox(1):
			if ok && pkt.Body.(paxos.LearnReq).Inst.Slot == 2 {
				delivered = true
			}
		case <-deadline:
			t.Fatalf("no delivery after peer restart; wire: %+v", a.WireReport())
		case <-time.After(20 * time.Millisecond):
		}
	}
	rep := a.WireReport()
	if rep.Reconnects == 0 {
		t.Fatalf("expected a reconnect to be counted: %+v", rep)
	}
	// Every reconnect is a failed flush, and a failed flush loses frames:
	// those losses must surface in WriteDrops (they used to vanish — only
	// send-side queue overflow was counted).
	if rep.WriteDrops == 0 {
		t.Fatalf("write-loop losses not surfaced in WriteDrops: %+v", rep)
	}
}

// TestTCPCoalescedFlushCounters streams a burst through one peer link and
// checks the write loop accounts its flushes: every delivered frame is part
// of exactly one flush, so FlushedFrames covers the traffic and Flushes
// never exceeds it.
func TestTCPCoalescedFlushCounters(t *testing.T) {
	f, err := wire.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const burst = 200
	for i := 0; i < burst; i++ {
		f.Send(0, 1, wire.TPaxLearn, paxos.LearnReq{Inst: paxos.InstanceID{Slot: int64(i)}})
	}
	for i := 0; i < burst; i++ {
		recvPacket(t, f.Inbox(1))
	}
	rep := f.WireReport()
	if rep.Flushes == 0 || rep.FlushedFrames < burst {
		t.Fatalf("flush counters missed the burst: %+v", rep)
	}
	if rep.Flushes > rep.FlushedFrames {
		t.Fatalf("more flushes than frames: %+v", rep)
	}
}

// TestRemoteInboxIsNil documents the endpoint contract: only the owned
// process's inbox exists locally.
func TestRemoteInboxIsNil(t *testing.T) {
	f, err := wire.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if ch := f.Inbox(5); ch != nil {
		t.Fatal("out-of-range inbox should be nil")
	}
}

// TestLiveFigure1OverTCP runs the full Algorithm 1 live system — replog,
// paxos, failure detectors — over the loopback TCP fabric on the paper's
// Figure-1 topology: every protocol message crosses a real socket through
// the binary codec, and the complete specification checker validates the
// run. This is the tentpole's single-OS-process acceptance path
// (cmd/amcastd is the same run as three daemons).
func TestLiveFigure1OverTCP(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(topo.NumProcesses())
	f, err := wire.NewFabric(topo.NumProcesses())
	if err != nil {
		t.Fatal(err)
	}
	sys := live.NewSystem(topo, pat, f, live.Config{})
	sys.Start()
	defer sys.Stop()

	sys.Multicast(0, 0, []byte("a"))
	sys.Multicast(1, 1, []byte("b"))
	sys.Multicast(2, 2, []byte("c"))
	sys.Multicast(3, 3, []byte("d"))
	sys.Multicast(1, 0, []byte("e"))
	sys.Multicast(0, 2, []byte("f"))

	if !sys.AwaitDelivery(60 * time.Second) {
		sys.Stop()
		t.Fatalf("run did not reach full delivery; trace: %+v", sys.Sh.Deliveries())
	}
	sys.Stop()
	for _, v := range sys.Check() {
		t.Errorf("specification violation: %v", v)
	}
	rep := sys.Report()
	if rep.Wire == nil || rep.Wire.FramesDecoded == 0 {
		t.Fatalf("run report missing wire traffic: %+v", rep.Wire)
	}
	t.Logf("wire: %d frames out (%d bytes), %d frames in (%d bytes)",
		rep.Wire.FramesEncoded, rep.Wire.BytesOut, rep.Wire.FramesDecoded, rep.Wire.BytesIn)
}
