package wire_test

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodePacket feeds arbitrary bytes to the frame decoder. The decoder
// must be total — any input yields a packet or an error, never a panic (a
// decoder crash would let one malformed frame kill a node, which turns
// fair-lossy links into a remote kill switch). When a frame does decode,
// re-encoding the packet must reproduce a frame that decodes to the same
// packet: decode ∘ encode is the identity on the decoder's image.
func FuzzDecodePacket(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0x10, 0, 1})
	for typ, pkt := range samples(f) {
		frame, err := wire.EncodePacket(pkt)
		if err != nil {
			f.Fatalf("%s: %v", wire.TypeName(typ), err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := wire.DecodePacket(data)
		if err != nil {
			return
		}
		frame, err := wire.EncodePacket(pkt)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v (%+v)", err, pkt)
		}
		again, err := wire.DecodePacket(frame)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(pkt, again) {
			t.Fatalf("decode/encode/decode mismatch:\nfirst  %+v\nsecond %+v", pkt, again)
		}
	})
}
