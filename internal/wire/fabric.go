package wire

import (
	"fmt"
	gonet "net"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
)

// Fabric runs an n-process TCP deployment inside one OS process: n TCP
// endpoints on loopback ports, presented as a single net.Transport. It is
// how benchtab's -transport tcp mode and the transport tests exercise the
// real serialization + socket path without spawning daemons; cmd/amcastd is
// the one-endpoint-per-OS-process deployment of the same TCP type.
//
// All endpoints share one counter set, so NetReport/WireReport aggregate
// the whole fabric — mirroring what the in-memory Network reports for a run.
type Fabric struct {
	nodes    []*TCP
	counters *obs.NetCounters
	wire     *obs.WireCounters
}

var _ net.Transport = (*Fabric)(nil)
var _ obs.NetReporter = (*Fabric)(nil)
var _ obs.WireReporter = (*Fabric)(nil)

// NewFabric builds an n-process loopback fabric. All listeners bind first
// (on kernel-assigned ports), so every endpoint starts knowing every
// address.
func NewFabric(n int) (*Fabric, error) {
	lns := make([]gonet.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("wire: fabric listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	f := &Fabric{
		nodes:    make([]*TCP, n),
		counters: obs.NewNetCounters(n),
		wire:     &obs.WireCounters{},
	}
	for i := range f.nodes {
		f.nodes[i] = NewWithListener(Config{
			Self:     groups.Process(i),
			Addrs:    addrs,
			Counters: f.counters,
			Wire:     f.wire,
		}, lns[i])
	}
	return f, nil
}

// N returns the number of processes.
func (f *Fabric) N() int { return len(f.nodes) }

// Send routes through the sender's endpoint, so the frame really crosses a
// socket to the destination's endpoint.
func (f *Fabric) Send(from, to groups.Process, mt net.MsgType, body any) {
	if int(from) < 0 || int(from) >= len(f.nodes) {
		return
	}
	f.nodes[from].Send(from, to, mt, body)
}

// Broadcast sends to every member of the set.
func (f *Fabric) Broadcast(from groups.Process, set groups.ProcSet, mt net.MsgType, body any) {
	for _, p := range set.Members() {
		f.Send(from, p, mt, body)
	}
}

// Inbox returns the receive channel of p's endpoint.
func (f *Fabric) Inbox(p groups.Process) <-chan net.Packet {
	if int(p) < 0 || int(p) >= len(f.nodes) {
		return nil
	}
	return f.nodes[p].Inbox(p)
}

// Crash silences p at every endpoint (fail-stop: nobody talks to or hears
// from p again).
func (f *Fabric) Crash(p groups.Process) {
	for _, n := range f.nodes {
		n.Crash(p)
	}
}

// Crashed reports whether p was crashed.
func (f *Fabric) Crashed(p groups.Process) bool {
	if int(p) < 0 || int(p) >= len(f.nodes) {
		return false
	}
	return f.nodes[p].Crashed(p)
}

// Close shuts every endpoint down.
func (f *Fabric) Close() {
	for _, n := range f.nodes {
		n.Close()
	}
}

// NetReport implements obs.NetReporter over the shared counters.
func (f *Fabric) NetReport() *obs.NetReport { return f.counters.Report() }

// WireReport implements obs.WireReporter over the shared counters.
func (f *Fabric) WireReport() *obs.WireReport { return f.wire.Report() }
