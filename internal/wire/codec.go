// Package wire is the real network path of the live substrates: a binary
// codec for every protocol message plus a TCP implementation of
// net.Transport (tcp.go) and a loopback multi-socket fabric (fabric.go).
//
// The codec replaces the old stringly Packet.Kind + `Body any` convention
// with one-byte message-type IDs (net.MsgType) and per-body
// MarshalBinary/UnmarshalBinary implementations. This file owns two things:
//
//   - the ID space: every protocol message type in the repository is
//     enumerated here, partitioned per protocol, so two packages can never
//     collide on a wire tag;
//   - the decoder registry: protocol packages register a decoder for each
//     of their types at init, and DecodePacket dispatches on the tag.
//
// Frames are length-prefixed on the socket (tcp.go); the payload layout is
//
//	[version u8][type u8][from u8][to u8][body bytes...]
//
// Bodies encode with the Enc/Dec helpers below: unsigned varints, zigzag
// varints for signed values, and length-prefixed byte strings. Decoding is
// total — arbitrary or truncated input yields an error, never a panic — a
// wire decoder that can be crashed by a malformed frame turns a fair-lossy
// link into a remote kill switch, which the fail-stop model does not allow.
package wire

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/groups"
	"repro/internal/net"
)

// Message-type IDs. 0 is reserved as invalid; each protocol owns a block.
// These are wire contract: renumbering them breaks cross-version frames.
const (
	// internal/register (ABD quorum registers; ofcons runs on these).
	TRegRead      net.MsgType = 0x01
	TRegReadResp  net.MsgType = 0x02
	TRegWrite     net.MsgType = 0x03
	TRegWriteResp net.MsgType = 0x04

	// internal/paxos (synod + Multi-Paxos; NACKs travel as the OK=false arm
	// of the two response types).
	TPaxPrepare     net.MsgType = 0x10
	TPaxPrepareResp net.MsgType = 0x11
	TPaxAccept      net.MsgType = 0x12
	TPaxAcceptResp  net.MsgType = 0x13
	TPaxDecide      net.MsgType = 0x14
	TPaxLearn       net.MsgType = 0x15

	// internal/replog (log operations; they ride inside paxos values as
	// batches, but the operation body is a registered wire type in its own
	// right, and followers forward pending ops to the leaseholder's batcher
	// as TReplogFwd frames).
	TReplogOp  net.MsgType = 0x20
	TReplogFwd net.MsgType = 0x21

	// internal/logobj (multicast datums — the payload of replog ops).
	TDatum net.MsgType = 0x28

	// TTestLow..TTestHigh is a scratch block for transport tests and
	// benchmarks; nothing protocol-shaped may claim it.
	TTestLow  net.MsgType = 0xF0
	TTestHigh net.MsgType = 0xFE
)

// frameVersion is byte 0 of every frame payload.
const frameVersion = 1

// headerLen is the fixed frame-payload header: version, type, from, to.
const headerLen = 4

// MaxFrame bounds one frame's payload on the socket (length prefix
// excluded). Protocol bodies are tiny; the bound exists so a corrupt or
// hostile length prefix cannot make a reader allocate gigabytes.
const MaxFrame = 1 << 20

// Decoder turns a body payload back into the protocol's body value. The
// returned value must be the same concrete type the protocol's dispatch
// switch expects (a value, not a pointer, for the substrates here).
type Decoder func([]byte) (any, error)

type entry struct {
	name string
	dec  Decoder
}

// registry maps the one-byte tag to its decoder. Indexed, not a map: decode
// is the hot path of every received frame.
var registry [256]entry

// Register installs the decoder of a message type. Protocol packages call
// it from init; a duplicate tag is a programming error and panics.
func Register(t net.MsgType, name string, dec Decoder) {
	if t == 0 {
		panic("wire: message type 0 is reserved")
	}
	if registry[t].dec != nil {
		panic(fmt.Sprintf("wire: message type %#02x registered twice (%s, %s)", uint8(t), registry[t].name, name))
	}
	registry[t] = entry{name: name, dec: dec}
}

// TypeName returns the registered name of a tag ("" when unregistered).
func TypeName(t net.MsgType) string { return registry[t].name }

// RegisteredTypes returns every tag with a registered decoder, in order.
func RegisteredTypes() []net.MsgType {
	var out []net.MsgType
	for i := 1; i < 256; i++ {
		if registry[i].dec != nil {
			out = append(out, net.MsgType(i))
		}
	}
	return out
}

// EncodePacket renders a packet as one frame payload (no length prefix).
// The body must implement encoding.BinaryMarshaler and its type must be
// registered — an unregistered body is a caller bug surfaced as an error so
// the transport can count it rather than crash.
func EncodePacket(pkt net.Packet) ([]byte, error) {
	return AppendPacket(nil, pkt)
}

// AppendPacket appends pkt's frame payload to dst and returns the extended
// slice — the allocation-conscious form of EncodePacket for callers that
// recycle frame buffers (the TCP send path encodes into pooled buffers and
// the write loops return them after each flush).
func AppendPacket(dst []byte, pkt net.Packet) ([]byte, error) {
	if registry[pkt.Type].dec == nil {
		return dst, fmt.Errorf("wire: encode: unregistered message type %#02x", uint8(pkt.Type))
	}
	m, ok := pkt.Body.(encoding.BinaryMarshaler)
	if !ok {
		return dst, fmt.Errorf("wire: encode: body %T does not implement encoding.BinaryMarshaler", pkt.Body)
	}
	body, err := m.MarshalBinary()
	if err != nil {
		return dst, fmt.Errorf("wire: encode %s: %w", registry[pkt.Type].name, err)
	}
	if pkt.From < 0 || pkt.From > math.MaxUint8 || pkt.To < 0 || pkt.To > math.MaxUint8 {
		return dst, fmt.Errorf("wire: encode: process out of uint8 range (%d→%d)", pkt.From, pkt.To)
	}
	dst = append(dst, frameVersion, uint8(pkt.Type), uint8(pkt.From), uint8(pkt.To))
	return append(dst, body...), nil
}

// framePool recycles frame payload buffers between the send path and the
// write loops: Send encodes into a pooled buffer, the write loop copies it
// into the flush buffer and puts it back. Pointers-to-slices, not slices,
// so Get/Put never allocate the interface box.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// getFrame leases a frame buffer (length 0, capacity warm).
func getFrame() *[]byte { return framePool.Get().(*[]byte) }

// putFrame returns a frame buffer to the pool. Oversized one-off buffers
// are dropped rather than pinned in the pool.
func putFrame(b *[]byte) {
	if cap(*b) > 1<<16 {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// DecodePacket parses one frame payload. Every failure mode of arbitrary
// input — short header, unknown version, unregistered tag, trailing or
// truncated body — comes back as an error; the function never panics.
func DecodePacket(b []byte) (net.Packet, error) {
	if len(b) < headerLen {
		return net.Packet{}, fmt.Errorf("wire: frame too short (%d bytes)", len(b))
	}
	if b[0] != frameVersion {
		return net.Packet{}, fmt.Errorf("wire: unknown frame version %d", b[0])
	}
	t := net.MsgType(b[1])
	e := registry[t]
	if e.dec == nil {
		return net.Packet{}, fmt.Errorf("wire: decode: unregistered message type %#02x", b[1])
	}
	body, err := e.dec(b[headerLen:])
	if err != nil {
		return net.Packet{}, fmt.Errorf("wire: decode %s: %w", e.name, err)
	}
	return net.Packet{
		From: groups.Process(b[2]),
		To:   groups.Process(b[3]),
		Type: t,
		Body: body,
	}, nil
}

// ---------------------------------------------------------------------------
// Enc/Dec: the primitive layer every protocol body builds its
// MarshalBinary/UnmarshalBinary from.

// Enc appends primitives to a growing buffer. The zero value is ready to
// use; Bytes returns the accumulated encoding.
type Enc struct {
	b []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// I64 appends a zigzag-encoded signed varint.
func (e *Enc) I64(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Bin appends a length-prefixed byte string.
func (e *Enc) Bin(b []byte) {
	e.U64(uint64(len(b)))
	e.b = append(e.b, b...)
}

// Dec is the matching cursor over an encoded buffer. Errors are sticky:
// after the first failure every read returns a zero value, and Err reports
// what went wrong — so body decoders read field by field and check once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec builds a cursor over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Failf lets a body decoder record a validation error (bad enum value,
// out-of-range field) through the same sticky-error path the primitive
// readers use.
func (d *Dec) Failf(format string, args ...any) { d.fail(format, args...) }

// Close asserts the buffer was consumed exactly and returns the first
// error. Trailing garbage is an error: a frame that decodes but carries
// extra bytes is a framing bug upstream, not a valid message.
func (d *Dec) Close() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail("wire: %d trailing bytes after body", len(d.b)-d.off)
	}
	return d.err
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("wire: short buffer reading u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// U64 reads an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("wire: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// I64 reads a zigzag-encoded signed varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("wire: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Bool reads a boolean; any byte other than 0 or 1 is an error (a strict
// decoder rejects more malformed inputs, which is what the fuzz target
// wants to lean on).
func (d *Dec) Bool() bool {
	v := d.U8()
	if d.err == nil && v > 1 {
		d.fail("wire: bad bool byte %d", v)
	}
	return v == 1
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("wire: string length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bin reads a length-prefixed byte string. The returned slice is a copy,
// never an alias of the input: transports reuse their read buffers across
// frames, so a decoded body must not retain the wire bytes. An empty
// string decodes as nil.
func (d *Dec) Bin() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("wire: byte-string length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += int(n)
	return out
}

// Len reads a length-prefixed count and bounds it by the bytes remaining,
// assuming each element costs at least min bytes — the guard that keeps a
// hostile count from pre-allocating unbounded slices.
func (d *Dec) Len(min int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(d.b)-d.off)/min+1) {
		d.fail("wire: collection length %d exceeds remaining buffer", n)
		return 0
	}
	return int(n)
}
