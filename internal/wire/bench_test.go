package wire_test

import (
	"testing"

	"repro/internal/net"
	"repro/internal/paxos"
	"repro/internal/wire"
)

// The codec and the per-peer flush are the two halves of the wire hot
// path: every protocol message is encoded once (pooled buffer, AppendPacket)
// and carried in some write loop's coalesced flush. BenchmarkAppendPacket
// isolates the first half; BenchmarkTCPCoalescedSend measures the second
// end-to-end over a real loopback socket and reports frames/flush.

var benchPkt = net.Packet{
	From: 0, To: 1, Type: wire.TPaxAccept,
	Body: paxos.AcceptReq{
		Inst:   paxos.InstanceID{Space: 1, Realm: 1 << 33, Slot: 42},
		Ballot: 7, Val: paxos.I64Value(123456),
	},
}

var sinkFrame []byte

func BenchmarkAppendPacket(b *testing.B) {
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := wire.AppendPacket(buf[:0], benchPkt)
		if err != nil {
			b.Fatal(err)
		}
		sinkFrame = frame
	}
}

func BenchmarkEncodePacket(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := wire.EncodePacket(benchPkt)
		if err != nil {
			b.Fatal(err)
		}
		sinkFrame = frame
	}
}

// BenchmarkTCPCoalescedSend pushes b.N frames through one peer link and
// waits for them all to arrive. Queue pressure from the tight send loop is
// what the write loop coalesces; the custom metric exposes how many frames
// each flush carried.
func BenchmarkTCPCoalescedSend(b *testing.B) {
	f, err := wire.NewFabric(2)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	// Warm the link so dial cost stays out of the measurement.
	f.Send(0, 1, wire.TPaxLearn, paxos.LearnReq{})
	<-f.Inbox(1)

	inbox := f.Inbox(1)
	b.ReportAllocs()
	b.ResetTimer()
	got := 0
	for i := 0; i < b.N; i++ {
		f.Send(0, 1, wire.TPaxAccept, benchPkt.Body)
		// Drain opportunistically so neither queue fills.
		for {
			select {
			case <-inbox:
				got++
				continue
			default:
			}
			break
		}
		// Hard bound on in-flight frames: stay far below both queue depths
		// so no frame is ever dropped (drops would hang the final drain).
		for i+1-got > 256 {
			<-inbox
			got++
		}
	}
	for got < b.N {
		<-inbox
		got++
	}
	b.StopTimer()
	rep := f.WireReport()
	if rep.Flushes > 0 {
		b.ReportMetric(float64(rep.FlushedFrames)/float64(rep.Flushes), "frames/flush")
	}
	if rep.QueueDrops > 0 || rep.WriteDrops > 0 {
		b.Fatalf("benchmark lost frames: %+v", rep)
	}
}
