package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
)

// TCP is one process's endpoint of a TCP deployment of net.Transport: a
// listener for inbound frames plus one outbound connection per peer, each
// fed by its own write loop so a slow or dead peer never blocks a sender.
//
// Connections are unidirectional: the dialer p→q carries only p's frames,
// and the receiver takes the sender identity from the frame header, not the
// socket. That halves the connection-management states (no duplex pairing,
// no simultaneous-open tie-break) at the cost of two sockets per live pair,
// which loopback and datacenter deployments do not notice.
//
// Loss semantics: a frame may be dropped on a write error, a reconnect, or
// a full per-peer queue. Every substrate in this repository retransmits
// (ABD phases, paxos rounds, replog probes), so a drop costs latency, never
// safety — the fabric promises exactly what the paper's fair-lossy links
// promise, and fail-stop crashes surface the same way they do in-memory:
// the peer stops answering.
type TCP struct {
	self  groups.Process
	addrs []string

	ln     gonet.Listener
	inbox  chan net.Packet
	inMu   sync.Mutex
	inDone bool // inbox closed or crashed-drained; guards the channel send

	closed atomic.Bool
	done   chan struct{}
	dead   []atomic.Bool

	peers []peerQ

	connMu sync.Mutex
	conns  map[gonet.Conn]struct{}

	wg sync.WaitGroup

	counters *obs.NetCounters
	wire     *obs.WireCounters
}

var _ net.Transport = (*TCP)(nil)
var _ obs.NetReporter = (*TCP)(nil)
var _ obs.WireReporter = (*TCP)(nil)

// peerQ is the outbound queue of one peer. Entries are pooled frame
// buffers: the write loop copies each into its flush buffer and returns it
// to the pool.
type peerQ struct {
	ch chan *[]byte
}

// Config describes one process's place in a TCP deployment.
type Config struct {
	// Self is this process.
	Self groups.Process
	// Addrs maps every process ID to its listen address ("host:port"),
	// including Self's own.
	Addrs []string
	// Counters and Wire are optional shared counter sets; Listen allocates
	// fresh ones when nil (the loopback fabric shares one set across all
	// nodes so the run report aggregates the whole fabric).
	Counters *obs.NetCounters
	Wire     *obs.WireCounters
}

const (
	// outQueueDepth bounds per-peer outbound buffering, mirroring the
	// in-memory fabric's inboxDepth; overflow drops are counted.
	outQueueDepth = 1024
	// lenPrefixLen is the socket-level frame length prefix (u32 BE).
	lenPrefixLen = 4
	// dialBackoffMin/Max bound the exponential dial retry.
	dialBackoffMin = 10 * time.Millisecond
	dialBackoffMax = time.Second
	// maxFlushBytes caps one coalesced flush. The write loop drains its
	// queue into a single buffer and makes one Write call per wakeup; the
	// cap bounds both the flush buffer's steady-state size and the blast
	// radius of a write error (a failed flush loses every frame in it).
	maxFlushBytes = 64 << 10
)

// Listen binds cfg.Self's address and starts the endpoint.
func Listen(cfg Config) (*TCP, error) {
	if int(cfg.Self) < 0 || int(cfg.Self) >= len(cfg.Addrs) {
		return nil, fmt.Errorf("wire: self %d out of range of %d addrs", cfg.Self, len(cfg.Addrs))
	}
	ln, err := gonet.Listen("tcp", cfg.Addrs[cfg.Self])
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Addrs[cfg.Self], err)
	}
	return NewWithListener(cfg, ln), nil
}

// NewWithListener starts the endpoint over an already-bound listener (the
// loopback fabric binds all listeners first so every node knows every
// address before any node starts).
func NewWithListener(cfg Config, ln gonet.Listener) *TCP {
	t := &TCP{
		self:     cfg.Self,
		addrs:    append([]string(nil), cfg.Addrs...),
		ln:       ln,
		inbox:    make(chan net.Packet, outQueueDepth),
		done:     make(chan struct{}),
		dead:     make([]atomic.Bool, len(cfg.Addrs)),
		peers:    make([]peerQ, len(cfg.Addrs)),
		conns:    make(map[gonet.Conn]struct{}),
		counters: cfg.Counters,
		wire:     cfg.Wire,
	}
	if t.counters == nil {
		t.counters = obs.NewNetCounters(len(cfg.Addrs))
	}
	if t.wire == nil {
		t.wire = &obs.WireCounters{}
	}
	for p := range t.peers {
		if groups.Process(p) == t.self {
			continue // self-sends bypass the socket entirely
		}
		t.peers[p].ch = make(chan *[]byte, outQueueDepth)
		t.wg.Add(1)
		go t.writeLoop(groups.Process(p))
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// Addr returns the listener's bound address (useful with ":0" configs).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// N returns the number of processes in the deployment.
func (t *TCP) N() int { return len(t.addrs) }

// Send frames the body and queues it for the destination's write loop.
// Sends to self bypass serialization and loop back to the inbox directly —
// same-process traffic is an in-memory concern even in a TCP deployment.
func (t *TCP) Send(from, to groups.Process, mt net.MsgType, body any) {
	if t.closed.Load() || t.outOfRange(from) || t.outOfRange(to) ||
		t.dead[from].Load() || t.dead[to].Load() {
		return
	}
	if to == t.self {
		t.counters.Sent(from, to, obs.EstimateSize(body))
		t.deliver(net.Packet{From: from, To: to, Type: mt, Body: body})
		return
	}
	fb := getFrame()
	frame, err := AppendPacket((*fb)[:0], net.Packet{From: from, To: to, Type: mt, Body: body})
	if err != nil {
		// An unencodable body is a caller bug; surface it loudly rather
		// than silently degrading the protocol to local-only delivery.
		panic(err)
	}
	*fb = frame
	t.wire.FramesEncoded.Add(1)
	t.wire.BytesOut.Add(int64(lenPrefixLen + len(frame)))
	t.counters.Sent(from, to, lenPrefixLen+len(frame))
	select {
	case t.peers[to].ch <- fb:
	default:
		// Queue overflow: the peer is slow or down and the dial/backoff
		// loop is holding the line. Drop — substrates retransmit.
		putFrame(fb)
		t.wire.QueueDrops.Add(1)
		t.counters.Overflow()
	}
}

// Broadcast sends to every member of the set.
func (t *TCP) Broadcast(from groups.Process, set groups.ProcSet, mt net.MsgType, body any) {
	for _, p := range set.Members() {
		t.Send(from, p, mt, body)
	}
}

// Inbox returns the receive channel of p. Only Self's inbox exists at this
// endpoint — a remote process's inbox lives in its own OS process — so any
// other p returns nil (reading from it blocks forever, which no correct
// caller does: live backends only read the inboxes of processes they own).
func (t *TCP) Inbox(p groups.Process) <-chan net.Packet {
	if p != t.self {
		return nil
	}
	return t.inbox
}

// Crash silences p from this endpoint's point of view: traffic from or to
// p is dropped locally. Crashing Self additionally drains the local inbox,
// matching the in-memory fabric's fail-stop semantics.
func (t *TCP) Crash(p groups.Process) {
	if t.outOfRange(p) {
		return
	}
	t.dead[p].Store(true)
	if p != t.self {
		return
	}
	t.inMu.Lock()
	defer t.inMu.Unlock()
	if t.inDone {
		return
	}
	for {
		select {
		case <-t.inbox:
		default:
			return
		}
	}
}

// Crashed reports whether p was crashed (locally observed).
func (t *TCP) Crashed(p groups.Process) bool {
	return !t.outOfRange(p) && t.dead[p].Load()
}

// Close shuts the endpoint down: the listener stops, write loops exit,
// open connections close, and the inbox closes once every loop has left.
func (t *TCP) Close() {
	if t.closed.Swap(true) {
		return
	}
	close(t.done)
	t.ln.Close()
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	t.wg.Wait()
	t.inMu.Lock()
	t.inDone = true
	close(t.inbox)
	t.inMu.Unlock()
}

// NetReport implements obs.NetReporter with real frame sizes.
func (t *TCP) NetReport() *obs.NetReport { return t.counters.Report() }

// WireReport implements obs.WireReporter.
func (t *TCP) WireReport() *obs.WireReport { return t.wire.Report() }

func (t *TCP) outOfRange(p groups.Process) bool {
	return int(p) < 0 || int(p) >= len(t.addrs)
}

// deliver hands a packet to the local inbox. The mutex+flag pattern (same
// as internal/net's endpoint) orders the channel send against Close.
func (t *TCP) deliver(pkt net.Packet) {
	t.inMu.Lock()
	defer t.inMu.Unlock()
	if t.inDone || t.closed.Load() {
		return
	}
	select {
	case t.inbox <- pkt:
	default:
		t.counters.Overflow()
	}
}

// writeLoop owns the outbound connection to one peer: dial with exponential
// backoff, coalesce every queued frame into one flush buffer per wakeup
// ([u32 len][frame]...), and make a single Write call. On a write error the
// whole flush is lost (substrates retransmit; the loss is counted in
// WriteDrops), the connection closes and the next flush redials. Frames
// queued while the peer is down accumulate until the queue overflows
// (counted in Send as QueueDrops).
func (t *TCP) writeLoop(to groups.Process) {
	defer t.wg.Done()
	var conn gonet.Conn
	defer func() {
		if conn != nil {
			t.dropConn(conn)
		}
	}()
	flush := make([]byte, 0, 4<<10)
	var lenBuf [lenPrefixLen]byte
	for {
		var fb *[]byte
		select {
		case <-t.done:
			return
		case fb = <-t.peers[to].ch:
		}
		// Coalesce: the wakeup frame plus everything already queued, up to
		// the flush cap. Frames left behind wake the loop again immediately.
		flush = flush[:0]
		frames := 0
		for {
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(*fb)))
			flush = append(flush, lenBuf[:]...)
			flush = append(flush, *fb...)
			putFrame(fb)
			frames++
			if len(flush) >= maxFlushBytes {
				break
			}
			select {
			case fb = <-t.peers[to].ch:
				continue
			default:
			}
			break
		}
		if conn == nil {
			if conn = t.dial(to); conn == nil {
				return // endpoint closed while backing off
			}
			// Track the connection so Close can interrupt a blocked Write
			// (a write loop stuck on a stalled peer must not hang Close).
			t.connMu.Lock()
			if t.closed.Load() {
				t.connMu.Unlock()
				conn.Close()
				return
			}
			t.conns[conn] = struct{}{}
			t.connMu.Unlock()
		}
		if _, err := conn.Write(flush); err != nil {
			// Write failed: every frame in the flush is lost (substrates
			// retransmit). Redial lazily — the next flush re-establishes
			// the connection.
			t.wire.WriteDrops.Add(int64(frames))
			t.dropConn(conn)
			conn = nil
			t.wire.Reconnects.Add(1)
			continue
		}
		t.wire.Flushes.Add(1)
		t.wire.FlushedFrames.Add(int64(frames))
	}
}

// dropConn closes a connection and forgets it.
func (t *TCP) dropConn(conn gonet.Conn) {
	conn.Close()
	t.connMu.Lock()
	delete(t.conns, conn)
	t.connMu.Unlock()
}

// dial connects to a peer, retrying with exponential backoff until the
// endpoint closes (then it returns nil).
func (t *TCP) dial(to groups.Process) gonet.Conn {
	backoff := dialBackoffMin
	for {
		conn, err := gonet.DialTimeout("tcp", t.addrs[to], dialBackoffMax)
		if err == nil {
			t.wire.Dials.Add(1)
			return conn
		}
		select {
		case <-t.done:
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// acceptLoop admits inbound connections and spawns a read loop per
// connection.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.connMu.Lock()
		if t.closed.Load() {
			t.connMu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.connMu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes length-prefixed frames off one inbound connection. A
// malformed frame body is counted and skipped; a framing-level violation
// (oversized length prefix, truncated read) kills the connection — framing
// corruption means the stream offset can no longer be trusted.
func (t *TCP) readLoop(conn gonet.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.connMu.Lock()
		delete(t.conns, conn)
		t.connMu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var lenBuf [lenPrefixLen]byte
	// buf is reused across frames — safe because every registered decoder
	// copies what it keeps (Dec.Bin and Dec.Str never alias their input).
	var buf []byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			// Clean EOF between frames is a peer closing (or crashing —
			// indistinguishable, which is the model); a partial prefix is
			// a short read.
			if !errors.Is(err, io.EOF) && !t.closed.Load() {
				t.wire.ShortReads.Add(1)
			}
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			t.wire.ShortReads.Add(1)
			return
		}
		if int(n) > cap(buf) {
			buf = make([]byte, n)
		} else {
			buf = buf[:n]
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			if !t.closed.Load() {
				t.wire.ShortReads.Add(1)
			}
			return
		}
		t.wire.BytesIn.Add(int64(lenPrefixLen) + int64(n))
		pkt, err := DecodePacket(buf)
		if err != nil {
			t.wire.DecodeErrors.Add(1)
			continue
		}
		t.wire.FramesDecoded.Add(1)
		if pkt.To != t.self || t.outOfRange(pkt.From) ||
			t.dead[pkt.From].Load() || t.dead[t.self].Load() {
			continue
		}
		t.deliver(pkt)
	}
}
