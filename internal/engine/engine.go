// Package engine is the deterministic virtual-time runtime the library runs
// on. It substitutes for the paper's asynchronous message-passing system:
// processes are action automata; a seeded scheduler picks which process
// attempts a step next; the virtual clock (one tick per scheduling attempt)
// is the global time failure patterns and failure-detector histories are
// indexed by. Runs are reproducible from (topology, pattern, seed).
//
// The engine also keeps the per-process step and message accounting used to
// check the paper's minimality (genuineness) property and to regenerate the
// performance tables: a process "takes steps" when one of its actions fires
// or when it is charged for participating in a shared-object operation.
package engine

import (
	"math/rand"

	"repro/internal/failure"
	"repro/internal/groups"
)

// Automaton is a process automaton. Step attempts to execute one enabled
// action and reports whether it did. Automata must be deterministic given
// the shared state and the clock.
type Automaton interface {
	// Proc returns the process this automaton runs at.
	Proc() groups.Process
	// Step attempts one enabled action.
	Step(ctx *Ctx) bool
}

// Ctx carries per-step context into an automaton.
type Ctx struct {
	// Now is the current virtual time.
	Now failure.Time
	// E is the engine, for accounting and event scheduling.
	E *Engine
}

// SchedulingPolicy selects how the engine picks the next process.
type SchedulingPolicy int

const (
	// RoundRobin cycles over processes in order.
	RoundRobin SchedulingPolicy = iota + 1
	// RandomOrder picks processes uniformly with the engine's seed.
	RandomOrder
)

// Config parameterises an engine.
type Config struct {
	Pattern *failure.Pattern
	Seed    int64
	Policy  SchedulingPolicy
	// QuiesceSlack extends the time horizon the engine waits past the last
	// crash before declaring an idle run finished; it must cover detector
	// stabilisation delays. Default 64.
	QuiesceSlack failure.Time
	// Participants restricts which processes take steps (used by the
	// necessity emulations, which run instances of the algorithm where only
	// a subset participates). Zero means everyone.
	Participants groups.ProcSet
	// PausedUntil delays individual processes: a process takes no steps
	// before its entry (adversarial asynchrony for tests).
	PausedUntil map[groups.Process]failure.Time
	// MaxSteps bounds a run; 0 means the default of 4_000_000 attempts.
	MaxSteps int64
}

// Engine drives a set of automata to quiescence.
type Engine struct {
	cfg    Config
	rng    *rand.Rand
	autos  []Automaton
	clock  failure.Time
	events []event

	steps    map[groups.Process]int64 // actions fired
	charges  map[groups.Process]int64 // shared-object participation charges
	messages int64                    // synthetic message count
}

type event struct {
	at failure.Time
	fn func()
}

// New returns an engine over the automata.
func New(cfg Config, autos ...Automaton) *Engine {
	if cfg.Policy == 0 {
		cfg.Policy = RoundRobin
	}
	if cfg.QuiesceSlack == 0 {
		cfg.QuiesceSlack = 64
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 4_000_000
	}
	return &Engine{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		autos:   autos,
		steps:   make(map[groups.Process]int64),
		charges: make(map[groups.Process]int64),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() failure.Time { return e.clock }

// At schedules fn to run once the clock reaches t (e.g. a client multicast
// issued mid-run). Events scheduled in the past run on the next tick.
func (e *Engine) At(t failure.Time, fn func()) {
	e.events = append(e.events, event{at: t, fn: fn})
}

// Charge records that p took part in a shared-object operation. The paper's
// minimality property is checked against steps + charges.
func (e *Engine) Charge(p groups.Process, n int64) { e.charges[p] += n }

// ChargeSet charges every alive member of the set.
func (e *Engine) ChargeSet(set groups.ProcSet, n int64) {
	for _, p := range set.Members() {
		if e.cfg.Pattern.IsAlive(p, e.clock) {
			e.charges[p] += n
		}
	}
}

// CountMessages adds n to the synthetic message counter.
func (e *Engine) CountMessages(n int64) { e.messages += n }

// Steps returns the actions fired by p.
func (e *Engine) Steps(p groups.Process) int64 { return e.steps[p] }

// Charges returns the shared-object participation charges of p.
func (e *Engine) Charges(p groups.Process) int64 { return e.charges[p] }

// TookSteps reports whether p did anything observable during the run.
func (e *Engine) TookSteps(p groups.Process) bool {
	return e.steps[p] > 0 || e.charges[p] > 0
}

// TotalSteps returns the total number of actions fired.
func (e *Engine) TotalSteps() int64 {
	var n int64
	for _, v := range e.steps {
		n += v
	}
	return n
}

// Messages returns the synthetic message counter.
func (e *Engine) Messages() int64 { return e.messages }

// Pattern returns the engine's failure pattern.
func (e *Engine) Pattern() *failure.Pattern { return e.cfg.Pattern }

// participates reports whether p is allowed to take steps now.
func (e *Engine) participates(p groups.Process) bool {
	if e.cfg.Participants != 0 && !e.cfg.Participants.Has(p) {
		return false
	}
	if until, ok := e.cfg.PausedUntil[p]; ok && e.clock < until {
		return false
	}
	return true
}

// ActiveParticipants returns the processes currently able to take steps:
// participating, unpaused, and alive at time t. Quorum-gated shared-object
// operations only complete when a quorum lies inside this set.
func (e *Engine) ActiveParticipants(t failure.Time) groups.ProcSet {
	var out groups.ProcSet
	for _, a := range e.autos {
		p := a.Proc()
		if e.participates(p) && e.cfg.Pattern.IsAlive(p, t) {
			out = out.Add(p)
		}
	}
	return out
}

// Outcome says how a run ended.
type Outcome int

const (
	// Quiesced: every alive automaton idle, clock past every scheduled
	// event and the crash/stabilisation horizon.
	Quiesced Outcome = iota + 1
	// BudgetExhausted: MaxSteps attempts without quiescence.
	BudgetExhausted
	// Stopped: the caller's stop function fired (context cancellation).
	Stopped
)

// Run drives the automata until quiescence or the step budget runs out. It
// returns true when the run quiesced (every alive automaton idle with the
// clock past every scheduled event and the crash/stabilisation horizon).
func (e *Engine) Run() bool { return e.RunInterruptible(nil) == Quiesced }

// RunInterruptible is Run with a cancellation hook: stop is polled every
// 1024 scheduling attempts (cheap enough to not perturb hot-loop timing)
// and ends the run with Stopped when it returns true. A nil stop never
// interrupts.
func (e *Engine) RunInterruptible(stop func() bool) Outcome {
	horizon := e.cfg.Pattern.Horizon()
	for _, until := range e.cfg.PausedUntil {
		if until > horizon {
			horizon = until
		}
	}
	horizon += e.cfg.QuiesceSlack
	idleStreak := 0
	next := 0
	for attempts := int64(0); attempts < e.cfg.MaxSteps; attempts++ {
		if stop != nil && attempts%1024 == 0 && stop() {
			return Stopped
		}
		e.clock++
		e.fireEvents()

		var a Automaton
		switch e.cfg.Policy {
		case RandomOrder:
			a = e.autos[e.rng.Intn(len(e.autos))]
		default:
			a = e.autos[next%len(e.autos)]
			next++
		}
		p := a.Proc()
		if !e.participates(p) || !e.cfg.Pattern.IsAlive(p, e.clock) {
			idleStreak++
		} else if a.Step(&Ctx{Now: e.clock, E: e}) {
			e.steps[p]++
			idleStreak = 0
		} else {
			idleStreak++
		}

		if idleStreak >= 2*len(e.autos) && e.clock > horizon && !e.pendingEvents() {
			// One more full sweep after the horizon: time-gated
			// preconditions (detector stabilisation) may have opened.
			idleStreak = 0
			progressed := false
			for _, b := range e.autos {
				q := b.Proc()
				if !e.participates(q) || !e.cfg.Pattern.IsAlive(q, e.clock) {
					continue
				}
				if b.Step(&Ctx{Now: e.clock, E: e}) {
					e.steps[q]++
					progressed = true
				}
			}
			if !progressed {
				return Quiesced
			}
		}
	}
	return BudgetExhausted
}

// RunFor drives the automata for exactly n scheduling attempts (no
// quiescence detection); it is used by drivers that interleave their own
// stimuli with execution.
func (e *Engine) RunFor(n int64) {
	next := 0
	for i := int64(0); i < n; i++ {
		e.clock++
		e.fireEvents()
		var a Automaton
		switch e.cfg.Policy {
		case RandomOrder:
			a = e.autos[e.rng.Intn(len(e.autos))]
		default:
			a = e.autos[next%len(e.autos)]
			next++
		}
		p := a.Proc()
		if !e.participates(p) || !e.cfg.Pattern.IsAlive(p, e.clock) {
			continue
		}
		if a.Step(&Ctx{Now: e.clock, E: e}) {
			e.steps[p]++
		}
	}
}

func (e *Engine) fireEvents() {
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.at <= e.clock {
			ev.fn()
		} else {
			kept = append(kept, ev)
		}
	}
	e.events = kept
}

func (e *Engine) pendingEvents() bool { return len(e.events) > 0 }
