package engine

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
)

// counter is a trivial automaton firing n times then idling.
type counter struct {
	p     groups.Process
	left  int
	fired int
}

func (c *counter) Proc() groups.Process { return c.p }
func (c *counter) Step(ctx *Ctx) bool {
	if c.left == 0 {
		return false
	}
	c.left--
	c.fired++
	return true
}

func TestRunQuiesces(t *testing.T) {
	a := &counter{p: 0, left: 5}
	b := &counter{p: 1, left: 3}
	e := New(Config{Pattern: failure.NewPattern(2), Seed: 1}, a, b)
	if !e.Run() {
		t.Fatalf("did not quiesce")
	}
	if a.fired != 5 || b.fired != 3 {
		t.Fatalf("fired %d,%d; want 5,3", a.fired, b.fired)
	}
	if e.Steps(0) != 5 || e.Steps(1) != 3 {
		t.Fatalf("accounting wrong: %d,%d", e.Steps(0), e.Steps(1))
	}
	if e.TotalSteps() != 8 {
		t.Fatalf("TotalSteps = %d", e.TotalSteps())
	}
}

func TestCrashedProcessStops(t *testing.T) {
	a := &counter{p: 0, left: 1 << 30}
	pat := failure.NewPattern(1).WithCrash(0, 10)
	e := New(Config{Pattern: pat, Seed: 1}, a)
	if !e.Run() {
		t.Fatalf("did not quiesce")
	}
	if a.fired > 10 {
		t.Fatalf("crashed process fired %d times", a.fired)
	}
}

func TestParticipantsRestriction(t *testing.T) {
	a := &counter{p: 0, left: 4}
	b := &counter{p: 1, left: 4}
	e := New(Config{
		Pattern:      failure.NewPattern(2),
		Seed:         1,
		Participants: groups.NewProcSet(0),
	}, a, b)
	if !e.Run() {
		t.Fatalf("did not quiesce")
	}
	if a.fired != 4 || b.fired != 0 {
		t.Fatalf("fired %d,%d; want 4,0", a.fired, b.fired)
	}
}

func TestPausedUntil(t *testing.T) {
	a := &counter{p: 0, left: 1}
	e := New(Config{
		Pattern:     failure.NewPattern(1),
		Seed:        1,
		PausedUntil: map[groups.Process]failure.Time{0: 50},
	}, a)
	var firedAt failure.Time
	wrapped := &hookAutomaton{inner: a, onStep: func(now failure.Time) { firedAt = now }}
	e = New(Config{
		Pattern:     failure.NewPattern(1),
		Seed:        1,
		PausedUntil: map[groups.Process]failure.Time{0: 50},
	}, wrapped)
	if !e.Run() {
		t.Fatalf("did not quiesce")
	}
	if firedAt < 50 {
		t.Fatalf("paused process fired at %d", firedAt)
	}
}

type hookAutomaton struct {
	inner  Automaton
	onStep func(failure.Time)
}

func (h *hookAutomaton) Proc() groups.Process { return h.inner.Proc() }
func (h *hookAutomaton) Step(ctx *Ctx) bool {
	if h.inner.Step(ctx) {
		h.onStep(ctx.Now)
		return true
	}
	return false
}

func TestScheduledEventsFire(t *testing.T) {
	a := &counter{p: 0, left: 0}
	e := New(Config{Pattern: failure.NewPattern(1), Seed: 1}, a)
	fired := false
	e.At(20, func() { fired = true })
	if !e.Run() {
		t.Fatalf("did not quiesce")
	}
	if !fired {
		t.Fatalf("event did not fire")
	}
}

// TestEventUnblocksAutomaton: an event scheduled past the quiescence horizon
// still fires and can wake an automaton.
func TestEventUnblocksAutomaton(t *testing.T) {
	a := &counter{p: 0, left: 0}
	e := New(Config{Pattern: failure.NewPattern(1), Seed: 1, QuiesceSlack: 4}, a)
	e.At(200, func() { a.left = 2 })
	if !e.Run() {
		t.Fatalf("did not quiesce")
	}
	if a.fired != 2 {
		t.Fatalf("automaton fired %d, want 2", a.fired)
	}
}

func TestChargesAndMessages(t *testing.T) {
	a := &counter{p: 0, left: 1}
	pat := failure.NewPattern(3).WithCrash(2, 0)
	e := New(Config{Pattern: pat, Seed: 1}, a)
	e.RunFor(5)
	e.ChargeSet(groups.NewProcSet(0, 1, 2), 1)
	e.CountMessages(6)
	if e.Charges(0) != 1 || e.Charges(1) != 1 {
		t.Fatalf("alive charges wrong")
	}
	if e.Charges(2) != 0 {
		t.Fatalf("crashed process charged")
	}
	if e.Messages() != 6 {
		t.Fatalf("messages = %d", e.Messages())
	}
	if !e.TookSteps(0) || e.TookSteps(2) {
		t.Fatalf("TookSteps wrong")
	}
}

func TestMaxStepsBudget(t *testing.T) {
	a := &counter{p: 0, left: 1 << 30}
	e := New(Config{Pattern: failure.NewPattern(1), Seed: 1, MaxSteps: 100}, a)
	if e.Run() {
		t.Fatalf("should have exhausted budget")
	}
}

func TestRoundRobinDeterministic(t *testing.T) {
	run := func() []int {
		a := &counter{p: 0, left: 3}
		b := &counter{p: 1, left: 3}
		e := New(Config{Pattern: failure.NewPattern(2), Seed: 7, Policy: RandomOrder}, a, b)
		e.RunFor(20)
		return []int{a.fired, b.fired}
	}
	x, y := run(), run()
	if x[0] != y[0] || x[1] != y[1] {
		t.Fatalf("random policy not reproducible: %v vs %v", x, y)
	}
}
