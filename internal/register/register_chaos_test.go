package register

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/groups"
	"repro/internal/net"
)

// chaosCluster wires n register nodes over the adversarial fabric.
func chaosCluster(n int, seed int64) (*chaos.Chaos, []*Node, *Register) {
	c := chaos.Wrap(net.New(n), seed)
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNode(c, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	reg := &Register{Name: "r", Scope: scope, Net: c, Quorum: Majority{Scope: scope}}
	return c, nodes, reg
}

// TestChaosMonotoneReadsUnderFaults: with drops, duplication, delay and
// reorder active the whole time, a single writer's increasing values are
// never seen out of order by a reader — ABD's read-impose phase plus the
// phase-level retransmission and per-replica deduplication keep the
// register linearizable on a lossy, duplicating fabric.
func TestChaosMonotoneReadsUnderFaults(t *testing.T) {
	c, nodes, reg := chaosCluster(5, 1)
	defer c.Close()
	c.SetFaults(chaos.Faults{
		Drop: 0.10, Dup: 0.10, DelayMax: 200 * time.Microsecond, Reorder: true,
	})

	done := make(chan struct{})
	var seen []int64
	go func() {
		defer close(done)
		r := nodes[1].Client(reg)
		for {
			v, ok := r.Read()
			if !ok {
				return
			}
			seen = append(seen, v)
			if v >= 25 { // the writer's last value arrived
				return
			}
		}
	}()

	w := nodes[0].Client(reg)
	for v := int64(1); v <= 25; v++ {
		if !w.Write(v) {
			t.Fatalf("write %d failed", v)
		}
	}
	<-done

	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("reads regressed under faults: %v", seen)
		}
	}
	if st := c.Stats(); st.DroppedRandom == 0 {
		t.Fatalf("fault mix injected no drops — test exercised nothing: %+v", st)
	}

	// Quiesce: every node converges on the final value.
	c.Quiesce()
	for p := 0; p < 5; p++ {
		v, ok := nodes[p].Client(reg).Read()
		if !ok || v != 25 {
			t.Fatalf("p%d post-quiesce read = %d,%v; want 25", p, v, ok)
		}
	}
}

// TestChaosPartitionedWriterBlocksThenCompletes: a writer cut from every
// quorum must block — Σ is gone for it — but not fabricate success; after
// heal the very same operation completes.
func TestChaosPartitionedWriterBlocksThenCompletes(t *testing.T) {
	c, nodes, reg := chaosCluster(5, 2)
	defer c.Close()

	if !nodes[1].Client(reg).Write(7) {
		t.Fatalf("pre-partition write failed")
	}
	c.Isolate(0)
	wrote := make(chan bool, 1)
	go func() {
		wrote <- nodes[0].Client(reg).Write(99)
	}()
	select {
	case ok := <-wrote:
		t.Fatalf("isolated writer returned %v without a quorum", ok)
	case <-time.After(30 * time.Millisecond):
		// Blocked, as it must be.
	}
	// The rest of the cluster is unaffected.
	if v, ok := nodes[2].Client(reg).Read(); !ok || v != 7 {
		t.Fatalf("majority side read = %d,%v; want 7", v, ok)
	}

	c.Heal()
	select {
	case ok := <-wrote:
		if !ok {
			t.Fatalf("write failed after heal")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("write still blocked after heal")
	}
	if v, ok := nodes[3].Client(reg).Read(); !ok || v != 99 {
		t.Fatalf("post-heal read = %d,%v; want 99", v, ok)
	}
}
