package register

import (
	"repro/internal/groups"
	"repro/internal/wire"
)

// Wire codecs for the four ABD message bodies. The register name travels as
// a length-prefixed string — register names are free-form keys (ofcons mints
// one per round), so unlike process IDs they cannot be squeezed to a byte.

func encTagged(e *wire.Enc, v TaggedValue) {
	e.I64(v.TS)
	e.I64(int64(v.By))
	e.I64(v.Val)
}

func decTagged(d *wire.Dec) TaggedValue {
	return TaggedValue{TS: d.I64(), By: groups.Process(d.I64()), Val: d.I64()}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m ReadReq) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	e.Str(m.Reg)
	e.I64(m.Op)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ReadReq) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Reg = d.Str()
	m.Op = d.I64()
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m ReadResp) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	e.Str(m.Reg)
	e.I64(m.Op)
	encTagged(&e, m.Cur)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ReadResp) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Reg = d.Str()
	m.Op = d.I64()
	m.Cur = decTagged(d)
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m WriteReq) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	e.Str(m.Reg)
	e.I64(m.Op)
	encTagged(&e, m.Val)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *WriteReq) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Reg = d.Str()
	m.Op = d.I64()
	m.Val = decTagged(d)
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m WriteResp) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	e.Str(m.Reg)
	e.I64(m.Op)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *WriteResp) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Reg = d.Str()
	m.Op = d.I64()
	return d.Close()
}

func init() {
	wire.Register(wire.TRegRead, "register.ReadReq", func(b []byte) (any, error) {
		var m ReadReq
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TRegReadResp, "register.ReadResp", func(b []byte) (any, error) {
		var m ReadResp
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TRegWrite, "register.WriteReq", func(b []byte) (any, error) {
		var m WriteReq
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TRegWriteResp, "register.WriteResp", func(b []byte) (any, error) {
		var m WriteResp
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
}
