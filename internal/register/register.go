// Package register implements multi-writer multi-reader atomic registers
// from quorums over message passing — the ABD construction the paper's §4
// invokes ("Σ_g permits to build shared atomic registers in g"). Each
// process of the scope runs a replica; reads and writes complete after a
// round-trip with a quorum, and reads write back what they return
// (the read-impose phase), which is what makes the register linearizable.
package register

import (
	"sync"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/wire"
)

// Quorums abstracts the Σ output: the quorum a process must hear from.
// Using majorities of the scope realises Σ in environments with a majority
// of correct processes; an ideal Σ history works in any environment.
type Quorums interface {
	// Size returns how many replies from scope members form a quorum for
	// an operation issued by p.
	Size(p groups.Process) int
}

// Majority is the classic majority quorum system over a scope.
type Majority struct{ Scope groups.ProcSet }

// Size implements Quorums.
func (m Majority) Size(groups.Process) int { return m.Scope.Count()/2 + 1 }

// TaggedValue is a register value with its ABD timestamp.
type TaggedValue struct {
	TS  int64
	By  groups.Process // timestamp tie-break
	Val int64
}

// less orders tagged values.
func (a TaggedValue) less(b TaggedValue) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.By < b.By
}

// Register is one named MWMR atomic register replicated over a scope.
// Construct the replicas with Serve and the clients with Client. Net may be
// the reliable fabric or the adversarial one (internal/chaos): requests are
// idempotent and retransmitted, so the protocol tolerates loss, delay,
// duplication and reordering without modification.
type Register struct {
	Name   string
	Scope  groups.ProcSet
	Net    net.Transport
	Quorum Quorums
}

// ---------------------------------------------------------------------------
// Replica

// replica is the per-process server state of all registers (keyed by name).
type replica struct {
	mu    sync.Mutex
	store map[string]TaggedValue
}

type ReadReq struct {
	Reg string
	Op  int64
}
type ReadResp struct {
	Reg string
	Op  int64
	Cur TaggedValue
}
type WriteReq struct {
	Reg string
	Op  int64
	Val TaggedValue
}
type WriteResp struct {
	Reg string
	Op  int64
}

// Serve runs the replica loop of process p until the network closes. Call
// it in a goroutine; it serves every register name uniformly.
func Serve(nw net.Transport, p groups.Process) {
	r := &replica{store: make(map[string]TaggedValue)}
	for pkt := range nw.Inbox(p) {
		switch pkt.Type {
		case wire.TRegRead:
			body, ok := pkt.Body.(ReadReq)
			if !ok {
				continue
			}
			r.mu.Lock()
			cur := r.store[body.Reg]
			r.mu.Unlock()
			nw.Send(p, pkt.From, wire.TRegReadResp, ReadResp{Reg: body.Reg, Op: body.Op, Cur: cur})
		case wire.TRegWrite:
			body, ok := pkt.Body.(WriteReq)
			if !ok {
				continue
			}
			r.mu.Lock()
			if cur := r.store[body.Reg]; cur.less(body.Val) {
				r.store[body.Reg] = body.Val
			}
			r.mu.Unlock()
			nw.Send(p, pkt.From, wire.TRegWriteResp, WriteResp{Reg: body.Reg, Op: body.Op})
		}
	}
}

// ---------------------------------------------------------------------------
// Client

// Client is the per-process client of a register.
type Client struct {
	reg  *Register
	p    groups.Process
	ops  int64
	resp chan net.Packet
	// mu serialises operations sharing a response channel: responses are
	// matched by operation number, so only one operation may be in flight
	// per channel. Clients created through Node share the node's mutex.
	mu *sync.Mutex
}

// NewClient builds the client of process p. The process must also run
// Serve(nw, p) and route the read/write response packets it receives
// to the client with Dispatch — or, simpler, use Node below, which bundles
// replica and client behind one inbox.
func (r *Register) NewClient(p groups.Process, resp chan net.Packet) *Client {
	return &Client{reg: r, p: p, resp: resp, mu: &sync.Mutex{}}
}

// retransmitEvery is the rebroadcast period of a pending phase. On the
// reliable fabric it never fires (round-trips are microseconds); over an
// adversarial fabric it restores liveness after drops and overflows.
const retransmitEvery = time.Millisecond

// phase broadcasts a request and awaits a quorum of matching responses from
// distinct replicas. Requests are idempotent, so the phase rebroadcasts on a
// timer until the quorum is assembled — loss costs latency, never safety.
// Responses are deduplicated by sender: a duplicated packet must not count
// twice towards the quorum, or quorum intersection (the Σ argument) breaks.
func (c *Client) phase(t net.MsgType, body any, match func(any) (TaggedValue, bool)) (TaggedValue, bool) {
	c.reg.Net.Broadcast(c.p, c.reg.Scope, t, body)
	need := c.reg.Quorum.Size(c.p)
	var max TaggedValue
	replied := make(map[groups.Process]bool, need)
	resend := time.NewTicker(retransmitEvery)
	defer resend.Stop()
	for {
		select {
		case pkt, open := <-c.resp:
			if !open {
				return max, false
			}
			v, ok := match(pkt.Body)
			if !ok || replied[pkt.From] {
				continue
			}
			replied[pkt.From] = true
			if max.less(v) {
				max = v
			}
			if len(replied) >= need {
				return max, true
			}
		case <-resend.C:
			c.reg.Net.Broadcast(c.p, c.reg.Scope, t, body)
		}
	}
}

// Read performs an ABD read: collect from a quorum, then impose the maximum
// back onto a quorum before returning it.
func (c *Client) Read() (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	op := c.ops
	cur, ok := c.phase(wire.TRegRead, ReadReq{Reg: c.reg.Name, Op: op}, func(b any) (TaggedValue, bool) {
		if r, isResp := b.(ReadResp); isResp && r.Reg == c.reg.Name && r.Op == op {
			return r.Cur, true
		}
		return TaggedValue{}, false
	})
	if !ok {
		return 0, false
	}
	c.ops++
	op = c.ops
	_, ok = c.phase(wire.TRegWrite, WriteReq{Reg: c.reg.Name, Op: op, Val: cur}, func(b any) (TaggedValue, bool) {
		if r, isResp := b.(WriteResp); isResp && r.Reg == c.reg.Name && r.Op == op {
			return TaggedValue{}, true
		}
		return TaggedValue{}, false
	})
	return cur.Val, ok
}

// Write performs an ABD write: read the maximum timestamp from a quorum,
// then store a higher one with the new value on a quorum.
func (c *Client) Write(v int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	op := c.ops
	cur, ok := c.phase(wire.TRegRead, ReadReq{Reg: c.reg.Name, Op: op}, func(b any) (TaggedValue, bool) {
		if r, isResp := b.(ReadResp); isResp && r.Reg == c.reg.Name && r.Op == op {
			return r.Cur, true
		}
		return TaggedValue{}, false
	})
	if !ok {
		return false
	}
	c.ops++
	op = c.ops
	next := TaggedValue{TS: cur.TS + 1, By: c.p, Val: v}
	_, ok = c.phase(wire.TRegWrite, WriteReq{Reg: c.reg.Name, Op: op, Val: next}, func(b any) (TaggedValue, bool) {
		if r, isResp := b.(WriteResp); isResp && r.Reg == c.reg.Name && r.Op == op {
			return TaggedValue{}, true
		}
		return TaggedValue{}, false
	})
	return ok
}

// ---------------------------------------------------------------------------
// Node: replica + client router behind one inbox

// Node bundles the replica and the client routing of one process: packets
// arriving at p are served (requests) or routed to the pending client
// operation (responses).
type Node struct {
	nw   net.Transport
	p    groups.Process
	resp chan net.Packet
	rep  *replica
	done chan struct{}
	opMu sync.Mutex
}

// StartNode launches the node's demultiplexer goroutine.
func StartNode(nw net.Transport, p groups.Process) *Node {
	n := &Node{
		nw:   nw,
		p:    p,
		resp: make(chan net.Packet, 256),
		rep:  &replica{store: make(map[string]TaggedValue)},
		done: make(chan struct{}),
	}
	go n.loop()
	return n
}

func (n *Node) loop() {
	defer close(n.done)
	defer close(n.resp) // unblock pending client phases at shutdown
	for pkt := range n.nw.Inbox(n.p) {
		switch pkt.Type {
		case wire.TRegRead:
			body, ok := pkt.Body.(ReadReq)
			if !ok {
				continue
			}
			n.rep.mu.Lock()
			cur := n.rep.store[body.Reg]
			n.rep.mu.Unlock()
			n.nw.Send(n.p, pkt.From, wire.TRegReadResp, ReadResp{Reg: body.Reg, Op: body.Op, Cur: cur})
		case wire.TRegWrite:
			body, ok := pkt.Body.(WriteReq)
			if !ok {
				continue
			}
			n.rep.mu.Lock()
			if cur := n.rep.store[body.Reg]; cur.less(body.Val) {
				n.rep.store[body.Reg] = body.Val
			}
			n.rep.mu.Unlock()
			n.nw.Send(n.p, pkt.From, wire.TRegWriteResp, WriteResp{Reg: body.Reg, Op: body.Op})
		case wire.TRegReadResp, wire.TRegWriteResp:
			select {
			case n.resp <- pkt:
			default:
			}
		}
	}
}

// Client returns a client of the register bound to this node's inbox. All
// clients of a node share one in-flight-operation lock.
func (n *Node) Client(r *Register) *Client {
	return &Client{reg: r, p: n.p, resp: n.resp, mu: &n.opMu}
}

// Wait blocks until the node's loop exits (after Network.Close).
func (n *Node) Wait() { <-n.done }
