package register

import (
	"sync"
	"testing"

	"repro/internal/groups"
	"repro/internal/net"
)

func cluster(n int) (*net.Network, []*Node, *Register) {
	nw := net.New(n)
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNode(nw, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	reg := &Register{Name: "r", Scope: scope, Net: nw, Quorum: Majority{Scope: scope}}
	return nw, nodes, reg
}

func TestWriteThenRead(t *testing.T) {
	nw, nodes, reg := cluster(3)
	defer nw.Close()
	w := nodes[0].Client(reg)
	if !w.Write(7) {
		t.Fatalf("write failed")
	}
	r := nodes[1].Client(reg)
	v, ok := r.Read()
	if !ok || v != 7 {
		t.Fatalf("read = %d,%v; want 7", v, ok)
	}
}

func TestReadFreshRegisterReturnsZero(t *testing.T) {
	nw, nodes, reg := cluster(3)
	defer nw.Close()
	v, ok := nodes[2].Client(reg).Read()
	if !ok || v != 0 {
		t.Fatalf("fresh read = %d,%v", v, ok)
	}
}

// TestToleratesMinorityCrash: ABD over majorities survives a minority of
// replica crashes.
func TestToleratesMinorityCrash(t *testing.T) {
	nw, nodes, reg := cluster(5)
	defer nw.Close()
	if !nodes[0].Client(reg).Write(11) {
		t.Fatalf("write failed")
	}
	nw.Crash(3)
	nw.Crash(4)
	if !nodes[1].Client(reg).Write(13) {
		t.Fatalf("write after crashes failed")
	}
	v, ok := nodes[2].Client(reg).Read()
	if !ok || v != 13 {
		t.Fatalf("read after crashes = %d,%v; want 13", v, ok)
	}
}

// TestMonotoneReads: the read-impose phase makes reads non-decreasing when
// values are written in increasing order by one writer — the new/old
// inversion ABD exists to prevent.
func TestMonotoneReads(t *testing.T) {
	nw, nodes, reg := cluster(3)
	defer nw.Close()

	const writes = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	var seen []int64

	wg.Add(1)
	go func() { // reader on node 1
		defer wg.Done()
		c := nodes[1].Client(reg)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, ok := c.Read()
			if !ok {
				return
			}
			mu.Lock()
			seen = append(seen, v)
			mu.Unlock()
		}
	}()

	w := nodes[0].Client(reg)
	for i := int64(1); i <= writes; i++ {
		if !w.Write(i) {
			t.Fatalf("write %d failed", i)
		}
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("reads regressed: %v", seen)
		}
	}
}

// TestConcurrentWritersConverge: after concurrent writers finish, every
// reader sees the same final value, and it is one of the written values.
func TestConcurrentWritersConverge(t *testing.T) {
	nw, nodes, reg := cluster(5)
	defer nw.Close()

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := nodes[p].Client(reg)
			for i := 0; i < 10; i++ {
				c.Write(int64(100*p + i))
			}
		}(p)
	}
	wg.Wait()

	var final int64 = -1
	for p := 0; p < 5; p++ {
		v, ok := nodes[p].Client(reg).Read()
		if !ok {
			t.Fatalf("read failed at p%d", p)
		}
		if final == -1 {
			final = v
		} else if v != final {
			t.Fatalf("readers disagree: %d vs %d", v, final)
		}
	}
	if final < 0 || final >= 300 {
		t.Fatalf("final value %d was never written", final)
	}
}

// TestMultipleRegistersIndependent: two names on the same cluster do not
// interfere.
func TestMultipleRegistersIndependent(t *testing.T) {
	nw, nodes, regA := cluster(3)
	defer nw.Close()
	regB := &Register{Name: "s", Scope: regA.Scope, Net: nw, Quorum: regA.Quorum}
	if !nodes[0].Client(regA).Write(1) || !nodes[0].Client(regB).Write(2) {
		t.Fatalf("writes failed")
	}
	va, _ := nodes[1].Client(regA).Read()
	vb, _ := nodes[1].Client(regB).Read()
	if va != 1 || vb != 2 {
		t.Fatalf("registers interfered: %d, %d", va, vb)
	}
}

func TestShutdownUnblocks(t *testing.T) {
	nw, nodes, reg := cluster(3)
	c := nodes[0].Client(reg)
	nw.Crash(1)
	nw.Crash(2)
	done := make(chan struct{})
	go func() {
		c.Write(9) // cannot reach a majority; must unblock at Close
		close(done)
	}()
	nw.Close()
	<-done
	for _, n := range nodes {
		n.Wait()
	}
}
