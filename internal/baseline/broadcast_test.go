package baseline

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
)

func TestBroadcastDeliversEverywhereAddressed(t *testing.T) {
	topo := groups.Figure1()
	s := NewBroadcastSystem(topo, failure.NewPattern(5), 1)
	s.Multicast(0, 0, nil) // g1 = {p1,p2}
	s.Multicast(2, 2, nil) // g3 = {p1,p3,p4}
	if !s.Run() {
		t.Fatalf("run did not quiesce")
	}
	if got := s.DeliveredAt(0); len(got) != 2 {
		t.Fatalf("p1 delivered %d, want 2", len(got))
	}
	if got := s.DeliveredAt(4); len(got) != 0 { // p5 in neither group
		t.Fatalf("p5 delivered %d, want 0", len(got))
	}
}

// TestBroadcastSameTotalOrder: the baseline orders all messages globally, so
// local orders agree on shared messages.
func TestBroadcastSameTotalOrder(t *testing.T) {
	topo := groups.MustNew(3, groups.NewProcSet(0, 1, 2))
	s := NewBroadcastSystem(topo, failure.NewPattern(3), 2)
	for i := 0; i < 6; i++ {
		s.Multicast(groups.Process(i%3), 0, nil)
	}
	if !s.Run() {
		t.Fatalf("run did not quiesce")
	}
	ref := s.DeliveredAt(0)
	if len(ref) != 6 {
		t.Fatalf("p0 delivered %d, want 6", len(ref))
	}
	for p := 1; p < 3; p++ {
		got := s.DeliveredAt(groups.Process(p))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("orders diverge: %v vs %v", got, ref)
			}
		}
	}
}

// TestBroadcastIsNotGenuine: a message addressed to one group makes every
// process take steps — the behaviour minimality forbids.
func TestBroadcastIsNotGenuine(t *testing.T) {
	topo := groups.MustNew(6,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(2, 3),
		groups.NewProcSet(4, 5),
	)
	s := NewBroadcastSystem(topo, failure.NewPattern(6), 3)
	s.Multicast(0, 0, nil)
	if !s.Run() {
		t.Fatalf("run did not quiesce")
	}
	outsiders := 0
	for p := 2; p < 6; p++ {
		if s.Eng.TookSteps(groups.Process(p)) {
			outsiders++
		}
	}
	if outsiders == 0 {
		t.Fatalf("broadcast baseline should make non-destination processes take steps")
	}
}

func TestSkeenFailureFreeTotalOrder(t *testing.T) {
	topo := groups.Figure1()
	for seed := int64(0); seed < 10; seed++ {
		s := NewSkeenSystem(topo, seed)
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(2, 2, nil)
		s.Multicast(3, 3, nil)
		if !s.Run() {
			t.Fatalf("seed %d: skeen did not quiesce", seed)
		}
		// Every destination delivers; shared processes agree pairwise.
		for p := 0; p < 5; p++ {
			proc := groups.Process(p)
			want := 0
			for g := 0; g < topo.NumGroups(); g++ {
				if topo.Group(groups.GroupID(g)).Has(proc) {
					want++
				}
			}
			if got := len(s.DeliveredAt(proc)); got != want {
				t.Fatalf("seed %d: p%d delivered %d, want %d", seed, p, got, want)
			}
		}
		// Pairwise agreement on common messages.
		for p := 0; p < 5; p++ {
			for q := p + 1; q < 5; q++ {
				a, b := s.DeliveredAt(groups.Process(p)), s.DeliveredAt(groups.Process(q))
				pos := map[int64]int{}
				for i, id := range a {
					pos[int64(id)] = i
				}
				last := -1
				for _, id := range b {
					if i, ok := pos[int64(id)]; ok {
						if i < last {
							t.Fatalf("seed %d: p%d and p%d disagree on shared order", seed, p, q)
						}
						last = i
					}
				}
			}
		}
	}
}

// TestSkeenGenuine: Skeen's protocol is genuine — untouched processes idle.
func TestSkeenGenuine(t *testing.T) {
	topo := groups.Figure1()
	s := NewSkeenSystem(topo, 7)
	s.Multicast(0, 0, nil) // g1 = {p1,p2}
	if !s.Run() {
		t.Fatalf("run did not quiesce")
	}
	for _, p := range []groups.Process{2, 3, 4} {
		if s.Eng.TookSteps(p) {
			t.Errorf("p%d took steps though only g1 was addressed", p)
		}
	}
}
