// Package baseline implements the comparison points of the paper:
//
//   - the naive non-genuine reduction of §2.3 — atomic broadcast every
//     message to all processes and deliver only where addressed (the
//     strategy genuineness rules out because every process pays for every
//     message);
//   - Skeen's failure-free multicast [5, 22] — the timestamp-based protocol
//     Algorithm 1 generalises — to show where the fault-tolerant machinery
//     diverges from its ancestor.
package baseline

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// BroadcastSystem is the non-genuine baseline: a single totally-ordered log
// over all processes (atomic broadcast, solvable from Ω ∧ Σ); every process
// consumes the whole log and delivers the messages addressed to it. Each
// appended message costs a broadcast round over the full system, which is
// the cost model the paper's scalability argument is about.
type BroadcastSystem struct {
	Topo *groups.Topology
	Reg  *msg.Registry
	Pat  *failure.Pattern
	Eng  *engine.Engine

	order []msg.ID // the atomic-broadcast total order
	nodes []*broadcastNode

	requestedAt    map[msg.ID]failure.Time
	firstDelivered map[msg.ID]failure.Time
	deliveries     int
}

type broadcastNode struct {
	p      groups.Process
	sys    *BroadcastSystem
	outbox []msg.ID
	cursor int
	local  []msg.ID
}

// NewBroadcastSystem builds the baseline over the topology.
func NewBroadcastSystem(topo *groups.Topology, pat *failure.Pattern, seed int64) *BroadcastSystem {
	s := &BroadcastSystem{
		Topo:           topo,
		Reg:            msg.NewRegistry(),
		Pat:            pat,
		requestedAt:    make(map[msg.ID]failure.Time),
		firstDelivered: make(map[msg.ID]failure.Time),
	}
	autos := make([]engine.Automaton, topo.NumProcesses())
	s.nodes = make([]*broadcastNode, topo.NumProcesses())
	for p := 0; p < topo.NumProcesses(); p++ {
		n := &broadcastNode{p: groups.Process(p), sys: s}
		s.nodes[p] = n
		autos[p] = n
	}
	s.Eng = engine.New(engine.Config{Pattern: pat, Seed: seed, Policy: engine.RandomOrder}, autos...)
	return s
}

// Multicast issues a client multicast.
func (s *BroadcastSystem) Multicast(src groups.Process, dst groups.GroupID, payload []byte) *msg.Message {
	m := s.Reg.New(src, dst, payload)
	s.requestedAt[m.ID] = s.Eng.Now()
	s.nodes[src].outbox = append(s.nodes[src].outbox, m.ID)
	return m
}

// MulticastAt schedules a multicast at virtual time t.
func (s *BroadcastSystem) MulticastAt(t failure.Time, src groups.Process, dst groups.GroupID, payload []byte) {
	s.Eng.At(t, func() {
		if s.Pat.IsAlive(src, t) {
			s.Multicast(src, dst, payload)
		}
	})
}

// Run drives the system to quiescence.
func (s *BroadcastSystem) Run() bool { return s.Eng.Run() }

// DeliveredAt returns the local delivery order of p.
func (s *BroadcastSystem) DeliveredAt(p groups.Process) []msg.ID {
	return append([]msg.ID(nil), s.nodes[p].local...)
}

// Deliveries returns the total number of delivery events.
func (s *BroadcastSystem) Deliveries() int { return s.deliveries }

// FirstDeliveredAt returns the first delivery time of m.
func (s *BroadcastSystem) FirstDeliveredAt(m msg.ID) (failure.Time, bool) {
	t, ok := s.firstDelivered[m]
	return t, ok
}

func (n *broadcastNode) Proc() groups.Process { return n.p }

// Step broadcasts one pending message or consumes one log entry. Every
// process scans every log entry — the defining non-genuine cost.
func (n *broadcastNode) Step(ctx *engine.Ctx) bool {
	if len(n.outbox) > 0 {
		id := n.outbox[0]
		n.outbox = n.outbox[1:]
		n.sys.order = append(n.sys.order, id)
		// One atomic-broadcast instance: a message to every process plus
		// quorum acknowledgements.
		all := n.sys.Topo.AllProcesses()
		ctx.E.ChargeSet(all, 1)
		ctx.E.CountMessages(int64(2 * all.Count()))
		return true
	}
	if n.cursor < len(n.sys.order) {
		id := n.sys.order[n.cursor]
		n.cursor++
		// Consuming a log entry is a step regardless of destination: the
		// process must inspect the message to decide.
		m := n.sys.Reg.Get(id)
		if n.sys.Topo.Group(m.Dst).Has(n.p) {
			n.local = append(n.local, id)
			if _, ok := n.sys.firstDelivered[id]; !ok {
				n.sys.firstDelivered[id] = ctx.Now
			}
			n.sys.deliveries++
		}
		return true
	}
	return false
}

// SkeenSystem is Skeen's failure-free atomic multicast [5, 22]: per-process
// logical clocks; the sender collects timestamp proposals from the
// destinations; the final timestamp is the maximum; messages are delivered
// in timestamp order once committed. It is genuine but tolerates no
// failures — the protocol Algorithm 1 hardens.
type SkeenSystem struct {
	Topo *groups.Topology
	Reg  *msg.Registry
	Eng  *engine.Engine

	nodes []*skeenNode
	state map[msg.ID]*skeenState
}

type skeenState struct {
	proposals map[groups.Process]int
	final     int
	committed bool
}

type skeenNode struct {
	p         groups.Process
	sys       *SkeenSystem
	clock     int
	outbox    []msg.ID
	proposed  map[msg.ID]bool
	delivered map[msg.ID]bool
	local     []msg.ID
}

// NewSkeenSystem builds a failure-free Skeen instance (the pattern is
// implicitly crash-free; injecting crashes stalls it, which is the point of
// the comparison).
func NewSkeenSystem(topo *groups.Topology, seed int64) *SkeenSystem {
	s := &SkeenSystem{
		Topo:  topo,
		Reg:   msg.NewRegistry(),
		state: make(map[msg.ID]*skeenState),
	}
	autos := make([]engine.Automaton, topo.NumProcesses())
	s.nodes = make([]*skeenNode, topo.NumProcesses())
	for p := 0; p < topo.NumProcesses(); p++ {
		n := &skeenNode{
			p:         groups.Process(p),
			sys:       s,
			proposed:  make(map[msg.ID]bool),
			delivered: make(map[msg.ID]bool),
		}
		s.nodes[p] = n
		autos[p] = n
	}
	s.Eng = engine.New(engine.Config{
		Pattern: failure.NewPattern(topo.NumProcesses()),
		Seed:    seed,
		Policy:  engine.RandomOrder,
	}, autos...)
	return s
}

// Multicast issues a client multicast.
func (s *SkeenSystem) Multicast(src groups.Process, dst groups.GroupID, payload []byte) *msg.Message {
	m := s.Reg.New(src, dst, payload)
	s.state[m.ID] = &skeenState{proposals: make(map[groups.Process]int)}
	s.nodes[src].outbox = append(s.nodes[src].outbox, m.ID)
	return m
}

// Run drives the system to quiescence.
func (s *SkeenSystem) Run() bool { return s.Eng.Run() }

// DeliveredAt returns the local delivery order of p.
func (s *SkeenSystem) DeliveredAt(p groups.Process) []msg.ID {
	return append([]msg.ID(nil), s.nodes[p].local...)
}

func (n *skeenNode) Proc() groups.Process { return n.p }

func (n *skeenNode) Step(ctx *engine.Ctx) bool {
	// Start a multicast: publish the message to its destinations.
	if len(n.outbox) > 0 {
		id := n.outbox[0]
		n.outbox = n.outbox[1:]
		dst := n.sys.Topo.Group(n.sys.Reg.Get(id).Dst)
		ctx.E.ChargeSet(dst, 1)
		ctx.E.CountMessages(int64(dst.Count()))
		return true
	}
	// Propose a timestamp for a message addressed to me.
	for _, m := range n.sys.Reg.All() {
		if !n.sys.Topo.Group(m.Dst).Has(n.p) || n.proposed[m.ID] {
			continue
		}
		st := n.sys.state[m.ID]
		n.clock++
		st.proposals[n.p] = n.clock
		n.proposed[m.ID] = true
		ctx.E.CountMessages(1)
		// Commit once every destination proposed.
		if len(st.proposals) == n.sys.Topo.Group(m.Dst).Count() {
			max := 0
			for _, ts := range st.proposals {
				if ts > max {
					max = ts
				}
			}
			st.final = max
			st.committed = true
			ctx.E.CountMessages(int64(len(st.proposals)))
		}
		return true
	}
	// Deliver committed messages in (timestamp, id) order: a message is
	// deliverable when no uncommitted message addressed to me could still
	// get a smaller timestamp, approximated here by delivering only when
	// every message addressed to me is committed (failure-free runs
	// quiesce, so this is enough for the comparison).
	var ready []msg.ID
	for _, m := range n.sys.Reg.All() {
		if !n.sys.Topo.Group(m.Dst).Has(n.p) {
			continue
		}
		st := n.sys.state[m.ID]
		if !st.committed {
			return false
		}
		if !n.delivered[m.ID] {
			ready = append(ready, m.ID)
		}
	}
	if len(ready) == 0 {
		return false
	}
	sort.Slice(ready, func(i, j int) bool {
		a, b := n.sys.state[ready[i]], n.sys.state[ready[j]]
		if a.final != b.final {
			return a.final < b.final
		}
		return ready[i] < ready[j]
	})
	id := ready[0]
	n.delivered[id] = true
	n.local = append(n.local, id)
	return true
}
