package paxos

import (
	"testing"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/storage"
)

// walCluster is cluster() with a Mem WAL per node, so individual nodes can
// be power-cycled and rebuilt from their logs.
func walCluster(n int, leader groups.Process) (*net.Network, []*Node, *Instance) {
	nw := net.New(n)
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNodeWithConfig(nw, groups.Process(p), Config{WAL: storage.NewMem()})
		scope = scope.Add(groups.Process(p))
	}
	inst := &Instance{
		ID:     InstanceID{Space: SpaceTest, Realm: 1},
		Scope:  scope,
		Net:    nw,
		Leader: func(groups.Process) groups.Process { return leader },
	}
	return nw, nodes, inst
}

// powerCycle kills node p (transport crash), loses its unsynced WAL tail,
// and rebuilds it from the durable log — the in-process kill -9.
func powerCycle(nw *net.Network, wal *storage.Mem, p groups.Process, cfg Config) *Node {
	nw.Crash(p)
	wal.PowerCycle()
	nw.Restart(p)
	cfg.WAL = wal
	return StartNodeWithConfig(nw, p, cfg)
}

// TestRecoverDecisions: a power-cycled node comes back knowing every
// decision covered by a durability barrier, without re-running any round.
// (The decide record itself rides the barrier *after* the decision — losing
// the very last one only costs an anti-entropy re-learn — so the test runs
// one more Sync before pulling the plug, as any later traffic would.)
func TestRecoverDecisions(t *testing.T) {
	nw, nodes, inst := walCluster(3, 0)
	defer nw.Close()
	v, ok := nodes[0].Propose(inst, I64Value(42))
	if !ok || v.I64() != 42 {
		t.Fatalf("decide = %v,%v; want 42", v, ok)
	}
	nodes[0].walSync()
	n0 := powerCycle(nw, mustMem(t, nodes[0]), 0, Config{})
	if got, ok := n0.Decided(inst.ID); !ok || got.I64() != 42 {
		t.Fatalf("recovered node lost the decision: %v,%v", got, ok)
	}
}

// mustMem digs the Mem WAL back out of a node (test-only).
func mustMem(t *testing.T, n *Node) *storage.Mem {
	t.Helper()
	m, ok := n.wal.(*storage.Mem)
	if !ok {
		t.Fatalf("node has no Mem WAL")
	}
	return m
}

// TestRecoveredPromiseStillBlocks: the acceptor's phase-1 promise survives
// the power cycle — the core of the recovery safety argument. A promise at
// a high ballot is made, the acceptor dies and recovers, and a proposal at
// a lower ballot must still be refused.
func TestRecoveredPromiseStillBlocks(t *testing.T) {
	nw, nodes, inst := walCluster(3, 0)
	defer nw.Close()

	// Plant a high promise directly at node 2's acceptor, through the same
	// handler the wire path uses, and force it durable the way the loop
	// would before replying.
	high := PrepareReq{Inst: inst.ID, Ballot: 1_000_001}
	if r := nodes[2].handlePrepare(high); !r.OK {
		t.Fatalf("high prepare refused: %+v", r)
	}
	nodes[2].walSync()

	n2 := powerCycle(nw, mustMem(t, nodes[2]), 2, Config{})
	if r := n2.handlePrepare(PrepareReq{Inst: inst.ID, Ballot: 500}); r.OK {
		t.Fatalf("recovered acceptor broke its promise: accepted ballot 500 under a promise at 1000001")
	} else if r.Promised != 1_000_001 {
		t.Fatalf("recovered floor = %d, want 1000001", r.Promised)
	}
	if r := n2.handleAccept(AcceptReq{Inst: inst.ID, Ballot: 500, Val: I64Value(7)}); r.OK {
		t.Fatalf("recovered acceptor accepted below its promise floor")
	}
}

// TestRecoveredAcceptSurfacesInPhase1: an accepted value survives recovery
// and is reported to later prepares, so a new proposer adopts it — the
// invariant that keeps a chosen value chosen across crashes.
func TestRecoveredAcceptSurfacesInPhase1(t *testing.T) {
	nw, nodes, inst := walCluster(3, 0)
	defer nw.Close()

	acc := AcceptReq{Inst: inst.ID, Ballot: 65, Val: I64Value(77)}
	if r := nodes[1].handleAccept(acc); !r.OK {
		t.Fatalf("accept refused: %+v", r)
	}
	nodes[1].walSync()

	n1 := powerCycle(nw, mustMem(t, nodes[1]), 1, Config{})
	r := n1.handlePrepare(PrepareReq{Inst: inst.ID, Ballot: 130})
	if !r.OK {
		t.Fatalf("prepare refused: %+v", r)
	}
	if !r.Accepted.Has || r.Accepted.Ballot != 65 || r.Accepted.Val.I64() != 77 {
		t.Fatalf("recovered acceptor lost its accepted value: %+v", r.Accepted)
	}
}

// TestRecoveredLeaseGrantStillBlocks: a range promise (Multi-Paxos lease
// grant) is a promise for every covered slot and must be recovered like
// one: after the power cycle, lower-ballot proposals at covered slots are
// still refused.
func TestRecoveredLeaseGrantStillBlocks(t *testing.T) {
	nw, nodes, _ := walCluster(3, 0)
	defer nw.Close()

	base := InstanceID{Space: SpaceLog, Realm: 9, Slot: 5}
	if r := nodes[1].handlePrepare(PrepareReq{Inst: base, Ballot: 10_001, Range: true}); !r.OK {
		t.Fatalf("range prepare refused: %+v", r)
	}
	nodes[1].walSync()

	n1 := powerCycle(nw, mustMem(t, nodes[1]), 1, Config{})
	covered := InstanceID{Space: SpaceLog, Realm: 9, Slot: 42}
	if r := n1.handleAccept(AcceptReq{Inst: covered, Ballot: 9_000, Val: I64Value(1)}); r.OK {
		t.Fatalf("recovered acceptor forgot its range promise: accepted ballot 9000 at a slot leased at 10001")
	}
	// Slots below the grant's fromSlot were never covered and stay open.
	below := InstanceID{Space: SpaceLog, Realm: 9, Slot: 2}
	if r := n1.handleAccept(AcceptReq{Inst: below, Ballot: 9_000, Val: I64Value(1)}); !r.OK {
		t.Fatalf("recovery over-promised: slot below the grant refused: %+v", r)
	}
}

// TestRecoveredProposerNeverReusesABallot: ballots claimed before the crash
// are skipped by the recovered proposer (claimBallot's durable high-water
// mark), so a (slot, ballot) pair can never carry two values across
// incarnations.
func TestRecoveredProposerNeverReusesABallot(t *testing.T) {
	nw, nodes, inst := walCluster(3, 1)
	defer nw.Close()
	v, ok := nodes[1].Propose(inst, I64Value(5))
	if !ok || v.I64() != 5 {
		t.Fatalf("decide = %v,%v", v, ok)
	}
	pre := nodes[1].propMax
	if pre == 0 {
		t.Fatalf("Propose claimed no ballot")
	}
	n1 := powerCycle(nw, mustMem(t, nodes[1]), 1, Config{})
	if n1.propMax != pre {
		t.Fatalf("recovered propMax = %d, want %d", n1.propMax, pre)
	}
	if fl := n1.propRoundFloor(); (fl+1)*64+int64(n1.p)+1 <= pre {
		t.Fatalf("next ballot %d would not clear the pre-crash mark %d", (fl+1)*64+int64(n1.p)+1, pre)
	}
}

// TestRecoveryLivesThroughFullRound: end to end — decide a value, crash a
// quorum member, recover it, and decide a second instance through the
// recovered node. Both decisions agree everywhere.
func TestRecoveryLivesThroughFullRound(t *testing.T) {
	nw, nodes, inst := walCluster(3, 0)
	defer nw.Close()
	if _, ok := nodes[0].Propose(inst, I64Value(1)); !ok {
		t.Fatal("first decide failed")
	}
	nodes[1] = powerCycle(nw, mustMem(t, nodes[1]), 1, Config{})

	inst2 := &Instance{
		ID:     InstanceID{Space: SpaceTest, Realm: 2},
		Scope:  inst.Scope,
		Net:    nw,
		Leader: inst.Leader,
	}
	done := make(chan Value, 1)
	go func() {
		v, _ := nodes[0].Propose(inst2, I64Value(2))
		done <- v
	}()
	select {
	case v := <-done:
		if v.I64() != 2 {
			t.Fatalf("second decide = %v, want 2", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second decide hung after recovery")
	}
}
