package paxos

import "repro/internal/wire"

// Wire codecs for the six paxos message bodies. Layout mirrors the struct
// field order; InstanceID, AcceptedVal and SlotVal are shared sub-encodings.
// NACKs have no body of their own — they are the OK=false arm of the two
// response types, so the Promised ballot-jump hint travels in every frame.

func encInst(e *wire.Enc, id InstanceID) {
	e.U8(id.Space)
	e.U64(id.Realm)
	e.I64(id.Slot)
}

func decInst(d *wire.Dec) InstanceID {
	return InstanceID{Space: d.U8(), Realm: d.U64(), Slot: d.I64()}
}

func encAccepted(e *wire.Enc, a AcceptedVal) {
	e.I64(a.Ballot)
	e.Bin(a.Val)
	e.Bool(a.Has)
}

func decAccepted(d *wire.Dec) AcceptedVal {
	return AcceptedVal{Ballot: d.I64(), Val: d.Bin(), Has: d.Bool()}
}

func encSlotVal(e *wire.Enc, s SlotVal) {
	e.I64(s.Slot)
	e.I64(s.Ballot)
	e.Bin(s.Val)
}

func decSlotVal(d *wire.Dec) SlotVal {
	return SlotVal{Slot: d.I64(), Ballot: d.I64(), Val: d.Bin()}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m PrepareReq) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encInst(&e, m.Inst)
	e.I64(m.Ballot)
	e.Bool(m.Range)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *PrepareReq) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Inst = decInst(d)
	m.Ballot = d.I64()
	m.Range = d.Bool()
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m PrepareResp) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encInst(&e, m.Inst)
	e.I64(m.Ballot)
	e.Bool(m.OK)
	e.I64(m.Promised)
	encAccepted(&e, m.Accepted)
	e.U64(uint64(len(m.Range)))
	for _, s := range m.Range {
		encSlotVal(&e, s)
	}
	e.Bool(m.Decided)
	e.Bin(m.DecVal)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *PrepareResp) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Inst = decInst(d)
	m.Ballot = d.I64()
	m.OK = d.Bool()
	m.Promised = d.I64()
	m.Accepted = decAccepted(d)
	if n := d.Len(3); n > 0 {
		m.Range = make([]SlotVal, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			m.Range = append(m.Range, decSlotVal(d))
		}
	} else {
		m.Range = nil
	}
	m.Decided = d.Bool()
	m.DecVal = d.Bin()
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m AcceptReq) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encInst(&e, m.Inst)
	e.I64(m.Ballot)
	e.Bin(m.Val)
	e.Bool(m.PrevDecided)
	encSlotVal(&e, m.Prev)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *AcceptReq) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Inst = decInst(d)
	m.Ballot = d.I64()
	m.Val = d.Bin()
	m.PrevDecided = d.Bool()
	m.Prev = decSlotVal(d)
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m AcceptResp) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encInst(&e, m.Inst)
	e.I64(m.Ballot)
	e.Bool(m.OK)
	e.I64(m.Promised)
	e.Bool(m.Decided)
	e.Bin(m.DecVal)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *AcceptResp) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Inst = decInst(d)
	m.Ballot = d.I64()
	m.OK = d.Bool()
	m.Promised = d.I64()
	m.Decided = d.Bool()
	m.DecVal = d.Bin()
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m DecideMsg) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encInst(&e, m.Inst)
	e.Bin(m.Val)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *DecideMsg) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Inst = decInst(d)
	m.Val = d.Bin()
	return d.Close()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m LearnReq) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	encInst(&e, m.Inst)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *LearnReq) UnmarshalBinary(b []byte) error {
	d := wire.NewDec(b)
	m.Inst = decInst(d)
	return d.Close()
}

func init() {
	wire.Register(wire.TPaxPrepare, "paxos.PrepareReq", func(b []byte) (any, error) {
		var m PrepareReq
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TPaxPrepareResp, "paxos.PrepareResp", func(b []byte) (any, error) {
		var m PrepareResp
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TPaxAccept, "paxos.AcceptReq", func(b []byte) (any, error) {
		var m AcceptReq
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TPaxAcceptResp, "paxos.AcceptResp", func(b []byte) (any, error) {
		var m AcceptResp
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TPaxDecide, "paxos.DecideMsg", func(b []byte) (any, error) {
		var m DecideMsg
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(wire.TPaxLearn, "paxos.LearnReq", func(b []byte) (any, error) {
		var m LearnReq
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	})
}
