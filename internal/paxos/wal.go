package paxos

// Durable acceptor state. Every transition of the acceptor maps (a point
// promise, a range lease grant, an accepted value) and every learnt decision
// is appended to the configured storage.WAL, and no phase response leaves
// the node before a group-commit Sync covers the transitions it reveals —
// the persist-before-reply rule that makes recovery safe (DESIGN.md §11).
//
// What is deliberately NOT persisted: the proposer side. Leases, value pins
// and refusal-ballot hints are performance state — a recovered node simply
// has no lease and re-runs a full round, whose phase-1 adoption
// re-establishes every obligation the old pin protected. The acceptor-side
// lease grant, by contrast, IS a promise (for every covered slot at once)
// and is recovered like one.

import (
	"repro/internal/storage"
	"repro/internal/wire"
)

// WAL record kinds. Payloads use the wire varint codec.
const (
	walPromise uint8 = 1 // inst, ballot                 — phase-1 point promise
	walLease   uint8 = 2 // space, realm, fromSlot, ballot — phase-1 range promise
	walAccept  uint8 = 3 // inst, ballot, val            — phase-2 accepted value
	walDecide  uint8 = 4 // inst, val                    — learnt decision
	walPropose uint8 = 5 // ballot                       — proposer high-water mark
)

// maxCommitBatch bounds how many queued requests one durability barrier may
// absorb before responses flush (group commit).
const maxCommitBatch = 64

// walAppend appends one record, failing stop on error: an acceptor that
// cannot make its promises durable must not keep making them.
func (n *Node) walAppend(kind uint8, data []byte) {
	if err := n.wal.Append(storage.Record{Kind: kind, Data: data}); err != nil {
		panic("paxos: wal append: " + err.Error())
	}
}

func (n *Node) walPromise(inst InstanceID, ballot int64) {
	if n.wal == nil {
		return
	}
	var e wire.Enc
	encInst(&e, inst)
	e.I64(ballot)
	n.walAppend(walPromise, e.Bytes())
}

func (n *Node) walLease(rk realmKey, fromSlot, ballot int64) {
	if n.wal == nil {
		return
	}
	var e wire.Enc
	e.U8(rk.Space)
	e.U64(rk.Realm)
	e.I64(fromSlot)
	e.I64(ballot)
	n.walAppend(walLease, e.Bytes())
}

func (n *Node) walAccept(inst InstanceID, ballot int64, v Value) {
	if n.wal == nil {
		return
	}
	var e wire.Enc
	encInst(&e, inst)
	e.I64(ballot)
	e.Bin(v)
	n.walAppend(walAccept, e.Bytes())
}

func (n *Node) walDecide(inst InstanceID, v Value) {
	if n.wal == nil {
		return
	}
	var e wire.Enc
	encInst(&e, inst)
	e.Bin(v)
	n.walAppend(walDecide, e.Bytes())
}

// claimBallot persists the proposer's intent to use ballot before any
// packet carries it. Proposer leases and value pins are not recovered —
// harmless, a new round re-adopts — but ballot *uniqueness* must span
// incarnations: the pre-crash node may have fired value v1 at (slot, b),
// and a restarted node reusing b with v2 would let two values be accepted
// at one ballot, splitting quorums. The durable high-water mark makes every
// post-recovery ballot strictly larger than every pre-crash one.
func (n *Node) claimBallot(ballot int64) {
	if n.wal == nil {
		return
	}
	n.propMu.Lock()
	if ballot <= n.propMax {
		n.propMu.Unlock()
		return
	}
	n.propMax = ballot
	var e wire.Enc
	e.I64(ballot)
	n.walAppend(walPropose, e.Bytes())
	n.propMu.Unlock()
	n.walSync()
}

// propRoundFloor seeds Propose's ballot-round counter above every ballot a
// previous incarnation claimed (zero without a WAL: fresh nodes and the
// memory-only configuration start from round 0 as always).
func (n *Node) propRoundFloor() int64 {
	if n.wal == nil {
		return 0
	}
	n.propMu.Lock()
	defer n.propMu.Unlock()
	return n.propMax / 64
}

// walSync is the group-commit durability barrier; like walAppend it fails
// stop when storage does.
func (n *Node) walSync() {
	if n.wal == nil {
		return
	}
	if err := n.wal.Sync(); err != nil {
		panic("paxos: wal sync: " + err.Error())
	}
}

// recover rebuilds the acceptor and learner state from the WAL, called on
// construction before the message loop starts serving. Replay order is
// mutation order (appends happen under the same locks as the state
// changes), so straight overwrites reproduce the final pre-crash state; the
// max() guards only defend against a WAL that was fed by an older, less
// ordered writer.
func (n *Node) recover() {
	a := n.acc
	err := n.wal.Replay(func(rec storage.Record) error {
		d := wire.NewDec(rec.Data)
		switch rec.Kind {
		case walPromise:
			inst := decInst(d)
			b := d.I64()
			if d.Err() == nil && b > a.promised[inst] {
				a.promised[inst] = b
			}
		case walLease:
			rk := realmKey{Space: d.U8(), Realm: d.U64()}
			from, b := d.I64(), d.I64()
			if d.Err() == nil {
				a.leases[rk] = leaseGrant{Ballot: b, FromSlot: from}
			}
		case walAccept:
			inst := decInst(d)
			b := d.I64()
			v := Value(d.Bin())
			if d.Err() == nil && b >= a.accepted[inst].Ballot {
				a.accepted[inst] = AcceptedVal{Ballot: b, Val: v, Has: true}
				// Accepting at b implies the promise at b (handleAccept sets
				// both maps); floorLocked reads only promised, so recovery
				// must restore it or a lower ballot could slip past.
				if b > a.promised[inst] {
					a.promised[inst] = b
				}
			}
		case walDecide:
			inst := decInst(d)
			v := Value(d.Bin())
			if d.Err() == nil {
				n.decided[inst] = v
			}
		case walPropose:
			b := d.I64()
			if d.Err() == nil && b > n.propMax {
				n.propMax = b
			}
		}
		// An undecodable record under a valid checksum is a schema skew, not
		// corruption; skipping it beats refusing to start. (Unknown kinds
		// fall through here too, for the same forward-compatibility reason.)
		return nil
	})
	if err != nil {
		panic("paxos: wal replay: " + err.Error())
	}
}
