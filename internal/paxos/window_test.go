package paxos

import (
	"testing"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
)

// winCluster builds n nodes plus a MultiPaxos instance factory over one
// realm, with a fixed leader sample.
func winCluster(n int, leader groups.Process) (*net.Network, []*Node, func(slot int64) *Instance) {
	nw := net.New(n)
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNode(nw, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	mkIns := func(slot int64) *Instance {
		return &Instance{
			ID:         InstanceID{Space: SpaceTest, Realm: 9, Slot: slot},
			Scope:      scope,
			Net:        nw,
			Leader:     func(groups.Process) groups.Process { return leader },
			MultiPaxos: true,
		}
	}
	return nw, nodes, mkIns
}

// TestWindowedPipelineDecides: after a lease is installed by one synchronous
// round, a full window of slots fired without waiting decides every slot
// with the proposed value, at the proposer and at a passive learner.
func TestWindowedPipelineDecides(t *testing.T) {
	nw, nodes, mkIns := winCluster(3, 0)
	defer nw.Close()
	if _, ok := nodes[0].Propose(mkIns(0), I64Value(1000)); !ok {
		t.Fatalf("lease-installing propose failed")
	}
	res := make(chan WindowResult, nodes[0].WindowLimit()+1)
	fired := 0
	for s := int64(1); s <= int64(nodes[0].WindowLimit()); s++ {
		if !nodes[0].ProposeWindowed(mkIns(s), I64Value(1000+s), res) {
			break // depth cap under a fast fabric: rounds may resolve as we fire
		}
		fired++
	}
	if fired == 0 {
		t.Fatalf("no windowed round accepted despite a fresh lease")
	}
	for i := 0; i < fired; i++ {
		r := <-res
		if !r.OK {
			t.Fatalf("windowed slot %d failed", r.Inst.Slot)
		}
		if want := 1000 + r.Inst.Slot; r.Val.I64() != want {
			t.Fatalf("slot %d decided %d, want %d", r.Inst.Slot, r.Val.I64(), want)
		}
	}
	// A passive node learns the same prefix (decide broadcasts).
	deadline := time.Now().Add(2 * time.Second)
	for s := int64(0); s <= int64(fired); s++ {
		for {
			if v, ok := nodes[2].Decided(InstanceID{Space: SpaceTest, Realm: 9, Slot: s}); ok {
				if want := 1000 + s; v.I64() != want {
					t.Fatalf("learner: slot %d = %d, want %d", s, v.I64(), want)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("learner never saw slot %d", s)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestWindowedRefusesWithoutLeaseOrLeadership: the windowed path is the
// lease fast path only — a non-leader, or a leader with no installed lease,
// must be refused so the caller takes the synchronous (lease-acquiring)
// route instead.
func TestWindowedRefusesWithoutLeaseOrLeadership(t *testing.T) {
	nw, nodes, mkIns := winCluster(3, 0)
	defer nw.Close()
	res := make(chan WindowResult, 1)
	if nodes[1].ProposeWindowed(mkIns(0), I64Value(7), res) {
		t.Fatalf("non-leader fired a windowed round")
	}
	if nodes[0].ProposeWindowed(mkIns(0), I64Value(7), res) {
		t.Fatalf("leaseless leader fired a windowed round")
	}
}

// TestWindowDepthCap: with the quorum unreachable, outstanding rounds pile
// up; the per-realm depth cap must refuse the round after the window fills,
// and every parked round must still deliver exactly one (failed) result —
// the submit loops block on that accounting.
func TestWindowDepthCap(t *testing.T) {
	nw, nodes, mkIns := winCluster(3, 0)
	defer nw.Close()
	if _, ok := nodes[0].Propose(mkIns(0), I64Value(1)); !ok {
		t.Fatalf("lease-installing propose failed")
	}
	nw.Crash(1)
	nw.Crash(2)
	limit := nodes[0].WindowLimit()
	res := make(chan WindowResult, limit+1)
	for s := int64(1); s <= int64(limit); s++ {
		if !nodes[0].ProposeWindowed(mkIns(s), I64Value(s), res) {
			t.Fatalf("slot %d refused below the depth cap", s)
		}
	}
	if nodes[0].ProposeWindowed(mkIns(int64(limit)+1), I64Value(99), res) {
		t.Fatalf("round accepted beyond the depth cap")
	}
	for i := 0; i < limit; i++ {
		select {
		case r := <-res:
			if r.OK {
				t.Fatalf("slot %d decided without a quorum", r.Inst.Slot)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("parked round %d never delivered its result", i)
		}
	}
}
