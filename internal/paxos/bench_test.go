package paxos

import (
	"testing"

	"repro/internal/groups"
	"repro/internal/net"
)

// BenchmarkAcceptRound measures the steady-state cost of one replicated
// slot: the leader holds a Multi-Paxos lease over the realm, so each
// Propose is a single accept quorum round plus the decide broadcast — the
// path every replog submit takes once the leader is stable. The first
// iteration pays the lease acquisition (a full round); all others are
// phase-1-elided.
func BenchmarkAcceptRound(b *testing.B) {
	const n = 3
	nw := net.New(n)
	defer nw.Close()
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNode(nw, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	leader := func(groups.Process) groups.Process { return 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst := &Instance{
			ID:         InstanceID{Space: SpaceTest, Realm: 1, Slot: int64(i)},
			Scope:      scope,
			Net:        nw,
			Leader:     leader,
			MultiPaxos: true,
		}
		if _, ok := nodes[0].Propose(inst, I64Value(int64(i))); !ok {
			b.Fatalf("slot %d did not decide", i)
		}
	}
}
