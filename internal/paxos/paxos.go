// Package paxos implements consensus inside a destination group from
// Ω_g ∧ Σ_g over message passing — the paper's "consensus is wait-free
// solvable in g" (§4). The base protocol is classic synod consensus: a
// proposer that believes itself the leader (per Ω) runs prepare/accept
// phases against quorums (per Σ, realised as majorities); Ω's eventual
// agreement on one correct leader yields termination, quorum intersection
// yields agreement regardless of how many leaders race.
//
// On top of the single-decree core sits a Multi-Paxos steady state for
// slot-structured instance families (the replog substrate): a stable leader
// prepares once for an entire log — a *lease* covering every slot ≥ k of
// the realm — after which each slot costs a single accept round plus a
// decide. Phase 1 is elided until the leader sample changes or a higher
// ballot is observed (a NACK), at which point the proposer falls back to a
// full round. The lease is purely a performance device: acceptors apply the
// standard promise/accept rules (a range promise is just a promise for
// every covered slot at once), so safety is exactly single-decree Paxos's.
//
// A leased realm additionally supports a *window* of outstanding accept
// rounds (ProposeWindowed): the lease holder fires phase-2 rounds for
// several consecutive slots without waiting for each to conclude, and the
// node's message loop gathers quorums asynchronously. Decisions may land
// out of slot order; callers (replog) track the decided prefix and apply in
// order. Safety is untouched — every windowed round is an ordinary phase 2
// under a completed phase 1 — with one extra obligation enforced here: at a
// fixed (slot, ballot) the proposer must never send two different values,
// so the first value fired at a slot under a lease is pinned until the slot
// decides or the lease dies (see proposerLease.used).
package paxos

import (
	"bytes"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wire"
)

// LeaderFunc is the Ω_g interface: the current leader sample at p.
type LeaderFunc func(p groups.Process) groups.Process

// Value is the opaque consensus value: an immutable byte string. Opaque
// values let one slot carry structured payloads — the replog substrate
// packs an entire batch of log operations into a single Value, so one
// accept round commits many multicasts. Values must not be mutated after
// being handed to the node (they are shared across goroutines and, over
// the in-memory fabric, across processes).
type Value []byte

// I64Value encodes a signed integer as a Value (zigzag varint). The
// inverse is Value.I64.
func I64Value(v int64) Value { return Value(binary.AppendVarint(nil, v)) }

// I64 decodes a Value produced by I64Value; malformed input yields 0.
func (v Value) I64() int64 {
	x, _ := binary.Varint(v)
	return x
}

// Equal reports byte equality of two values.
func (v Value) Equal(o Value) bool { return bytes.Equal(v, o) }

// Instance-ID spaces used by this repository's substrates. Spaces partition
// the instance universe so callers cannot collide; any caller may pick its
// own value.
const (
	// SpaceTest is the default space for tests and ad-hoc instances.
	SpaceTest uint8 = iota
	// SpaceLog is the replog substrate: Realm identifies the log, Slot the
	// position in it. Realms in this space are leasable (Multi-Paxos).
	SpaceLog
	// SpaceCons is the dedicated CONS_{m,f} instances of Algorithm 1:
	// Realm carries the message ID and Slot the family bitmask (single-shot
	// instances — the slot field is identity, not a log position).
	SpaceCons
)

// InstanceID is the comparable identity of one consensus instance. It
// replaces the old "name/slot" string keys: map lookups on the hot path
// cost a struct compare instead of a string hash plus an allocation at
// every fmt.Sprintf call site.
type InstanceID struct {
	Space uint8
	Realm uint64
	Slot  int64
}

// realmKey identifies an instance family for lease purposes.
type realmKey struct {
	Space uint8
	Realm uint64
}

func (id InstanceID) realm() realmKey { return realmKey{Space: id.Space, Realm: id.Realm} }

// Config tunes the proposer timing. The zero value means "use the
// defaults"; chaos tests and the live backend pass adjusted values instead
// of editing constants.
type Config struct {
	// PhaseDeadline bounds one quorum round trip. It must cover not just
	// the fabric's nominal delay but the host's timer granularity (~1ms on
	// common Linux configs), which a delay-injecting fabric pays once per
	// hop: a deadline near 2×granularity makes every round time out and
	// look like a proposer duel when the packets were merely slow.
	PhaseDeadline time.Duration
	// BackoffBase is the base of the exponential retry backoff after a
	// failed round (doubles per failure, capped at 16×).
	BackoffBase time.Duration
	// Stagger is the per-process skew added to every backoff so dueling
	// proposers desynchronise (p waits p×Stagger extra).
	Stagger time.Duration
	// NonLeaderWait is how long a non-leader (per Ω) waits for the
	// leader's decision between checks before it starts hedging rounds of
	// its own.
	NonLeaderWait time.Duration
	// Window is the maximum number of outstanding windowed accept rounds
	// per leased realm (ProposeWindowed). 1 degenerates to stop-and-wait.
	Window int
	// Counters, when non-nil, accumulates proposer/acceptor work for run
	// reports. All methods are nil-safe, so the hot path stays branch-free.
	Counters *obs.PaxosCounters
	// WAL, when non-nil, makes the acceptor durable: every promise, lease
	// grant, accepted value and learnt decision is appended, and no phase
	// response leaves the node before a group-commit Sync covers the
	// transitions it reveals (persist-before-reply). On construction the
	// node replays the log and serves from the recovered state. nil — the
	// default — keeps the acceptor memory-only, the pre-durability
	// behavior, at the cost of one pointer test per transition.
	WAL storage.WAL
}

// DefaultConfig returns the timing the package has always used.
func DefaultConfig() Config {
	return Config{
		PhaseDeadline: 10 * time.Millisecond,
		BackoffBase:   100 * time.Microsecond,
		Stagger:       137 * time.Microsecond,
		NonLeaderWait: 200 * time.Microsecond,
		Window:        8,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PhaseDeadline <= 0 {
		c.PhaseDeadline = d.PhaseDeadline
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.Stagger <= 0 {
		c.Stagger = d.Stagger
	}
	if c.NonLeaderWait <= 0 {
		c.NonLeaderWait = d.NonLeaderWait
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	return c
}

// Instance is one consensus instance replicated over a scope. Net may be
// the reliable fabric or the adversarial one (internal/chaos): prepare and
// accept are idempotent at a fixed ballot, proposers retry rounds under a
// deadline, and responses are deduplicated by acceptor.
type Instance struct {
	ID     InstanceID
	Scope  groups.ProcSet
	Net    net.Transport
	Leader LeaderFunc
	// MultiPaxos opts the instance's realm into the leader-lease fast
	// path: the realm's slots form one log proposed at by a stable leader,
	// so a full round doubles as a phase-1 acquisition for all later slots.
	// Single-shot instances (CONS_{m,f}, tests) leave it false and get the
	// classic per-instance protocol.
	MultiPaxos bool
}

// acceptor is the per-process acceptor state of all instances.
type acceptor struct {
	mu       sync.Mutex
	promised map[InstanceID]int64
	accepted map[InstanceID]AcceptedVal
	// leases holds range promises: a grant at (ballot, fromSlot) promises
	// every slot ≥ fromSlot of the realm at once. The effective promise
	// floor of an instance is the max of its point promise and any
	// covering range promise.
	leases map[realmKey]leaseGrant
}

type leaseGrant struct {
	Ballot   int64
	FromSlot int64
}

type AcceptedVal struct {
	Ballot int64
	Val    Value
	Has    bool
}

// floorLocked returns the effective promise floor of inst (caller holds mu).
func (a *acceptor) floorLocked(inst InstanceID) int64 {
	f := a.promised[inst]
	if lg, ok := a.leases[inst.realm()]; ok && inst.Slot >= lg.FromSlot && lg.Ballot > f {
		f = lg.Ballot
	}
	return f
}

// SlotVal is one (slot, ballot, value) triple of a realm — accepted state
// reported in range grants, or a decided value piggybacked on an accept.
type SlotVal struct {
	Slot   int64
	Ballot int64
	Val    Value
}

type PrepareReq struct {
	Inst   InstanceID
	Ballot int64
	// Range asks for a promise covering every slot ≥ Inst.Slot of the
	// realm — the Multi-Paxos lease acquisition. A plain single-instance
	// prepare leaves it false.
	Range bool
}
type PrepareResp struct {
	Inst     InstanceID
	Ballot   int64
	OK       bool
	Promised int64 // on refusal: the floor that beat us (ballot jump hint)
	Accepted AcceptedVal
	// Range carries, on a range grant, every accepted value of the realm in
	// slots ≥ Inst.Slot: the adoption obligations of the lease.
	Range []SlotVal
	// Decided short-circuits the round: the acceptor already knows the
	// instance's decision and teaches it instead of duelling.
	Decided bool
	DecVal  Value
}
type AcceptReq struct {
	Inst   InstanceID
	Ballot int64
	Val    Value
	// PrevDecided piggybacks a recent decision of the same realm (in the
	// steady state: the previous slot) so passive replicas learn it from
	// the accept stream without waiting on a separate decide broadcast.
	PrevDecided bool
	Prev        SlotVal
}
type AcceptResp struct {
	Inst     InstanceID
	Ballot   int64
	OK       bool
	Promised int64 // on refusal: the floor that beat us
	Decided  bool
	DecVal   Value
}
type DecideMsg struct {
	Inst InstanceID
	Val  Value
}

// LearnReq is the anti-entropy probe: "send me your decision for Inst if
// you have one". Passive replicas fall back to it when a decide broadcast
// was dropped by an adversarial fabric; the reply is an ordinary DecideMsg.
type LearnReq struct {
	Inst InstanceID
}

// proposerLease is the proposer side of an acquired lease: the ballot a
// quorum granted for every slot ≥ fromSlot, plus the adoption obligations
// the grant reported (slots some acceptor had already accepted a value in).
type proposerLease struct {
	ballot   int64
	fromSlot int64
	adopt    map[int64]AcceptedVal // slot → highest-ballot reported value
	// used pins the value first fired at a slot under this lease. Phase 1
	// is elided for leased slots, so a retry (after a deadline) that carried
	// a *different* value at the same ballot could get both values accepted
	// at one (slot, ballot) and decide them under distinct quorums — the
	// one safety obligation the lease optimisation adds. Entries are
	// cleared when the slot's decision is learnt; the whole map dies with
	// the lease (a new lease means a new ballot, where phase 1 adoption
	// re-establishes safety the standard way).
	used map[int64]Value
}

// WindowResult is the completion of one windowed accept round. Exactly one
// result is delivered per successful ProposeWindowed call: OK with the
// decided value (ours, an adopted one, or a concurrently learnt decision),
// or !OK when the round ended without a decision (deadline or NACK) — the
// slot may then be a hole the caller must repair via Propose.
type WindowResult struct {
	Inst InstanceID
	Val  Value
	OK   bool
}

// winSlot is one outstanding windowed accept round, completed by the
// node's message loop (quorum, NACK, foreign decision) or its timer.
type winSlot struct {
	inst   Instance
	ballot int64
	val    Value
	acks   map[groups.Process]bool
	need   int
	res    chan<- WindowResult
	timer  *time.Timer
}

// pendingResp is a phase response withheld until the durability barrier
// covering its acceptor transition has run (persist-before-reply).
type pendingResp struct {
	to   groups.Process
	t    net.MsgType
	body any
}

// Node bundles the acceptor role and the proposer plumbing of one process.
type Node struct {
	nw   net.Transport
	p    groups.Process
	cfg  Config
	wal  storage.WAL
	acc  *acceptor
	resp chan net.Packet
	done chan struct{}

	// outbox holds responses deferred by the message loop until the next
	// group-commit Sync. Only the loop goroutine touches it; it stays empty
	// when no WAL is configured.
	outbox []pendingResp

	mu      sync.Mutex
	decided map[InstanceID]Value
	watch   map[InstanceID][]chan Value

	// opMu serialises this node's synchronous proposer rounds; dedup
	// belongs to that round machinery and is guarded by it.
	opMu  sync.Mutex
	dedup map[groups.Process]bool // pooled response-dedup set, cleared per phase

	// leaseMu guards the proposer-lease table and the refusal-ballot
	// hints. It is separate from opMu so the message loop (which completes
	// windowed rounds and must drop a NACKed lease) never has to wait for
	// an in-flight synchronous round.
	leaseMu sync.Mutex
	leases  map[realmKey]*proposerLease
	highest map[realmKey]int64 // highest refusal ballot observed per realm

	// winMu guards the windowed-round table; completions come from the
	// message loop and from per-round timers.
	winMu    sync.Mutex
	wins     map[InstanceID]*winSlot
	winDepth map[realmKey]int

	// hmu guards the extra-handler table (Handle).
	hmu      sync.RWMutex
	handlers map[net.MsgType]func(net.Packet)

	// propMu guards the proposer's durable ballot high-water mark (see
	// claimBallot): the one piece of proposer state that must survive a
	// crash, because a recovered proposer reusing a (slot, ballot) pair
	// with a different value would break the same-ballot uniqueness the
	// value pin enforces within an incarnation.
	propMu  sync.Mutex
	propMax int64

	// fenced marks a dead incarnation (see Fence): the proposer side stops
	// claiming ballots and firing rounds, so a power-cycled node's leftover
	// goroutines cannot race its successor.
	fenced atomic.Bool
}

// Fence marks this node as a dead incarnation: Propose and ProposeWindowed
// refuse from now on, and in particular no further ballot is ever claimed.
// A power-cycle harness calls Fence at the moment of the simulated kill -9
// — without it, the old incarnation's still-unwinding proposer goroutines
// could claim a ballot after the successor has already replayed the WAL,
// and two proposers sharing an identity and a ballot can split a quorum
// between two values. Ballots claimed before the fence are durable (claim
// precedes use), so the successor's recovery sees every ballot the old
// incarnation could still be using.
func (n *Node) Fence() { n.fenced.Store(true) }

// Handle registers fn for a wire type the node's own dispatch does not
// claim. The transport delivers one inbox per process and this node's loop
// is its single consumer, so substrates sharing the process — replog's op
// forwarding, for one — mount their receive path here. fn runs on the loop
// goroutine and must not block; a paxos-owned type or a duplicate
// registration is a programming error and panics.
func (n *Node) Handle(t net.MsgType, fn func(net.Packet)) {
	switch t {
	case wire.TPaxPrepare, wire.TPaxPrepareResp, wire.TPaxAccept,
		wire.TPaxAcceptResp, wire.TPaxDecide, wire.TPaxLearn:
		panic("paxos: Handle on a paxos-owned wire type")
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	if n.handlers == nil {
		n.handlers = make(map[net.MsgType]func(net.Packet))
	}
	if _, dup := n.handlers[t]; dup {
		panic("paxos: duplicate Handle registration")
	}
	n.handlers[t] = fn
}

// StartNode launches the node's message loop with the default timing.
func StartNode(nw net.Transport, p groups.Process) *Node {
	return StartNodeWithConfig(nw, p, Config{})
}

// StartNodeWithConfig launches the node's message loop with tuned timing
// (zero fields fall back to the defaults).
func StartNodeWithConfig(nw net.Transport, p groups.Process, cfg Config) *Node {
	n := &Node{
		nw:  nw,
		p:   p,
		cfg: cfg.withDefaults(),
		wal: cfg.WAL,
		acc: &acceptor{
			promised: make(map[InstanceID]int64),
			accepted: make(map[InstanceID]AcceptedVal),
			leases:   make(map[realmKey]leaseGrant),
		},
		resp:     make(chan net.Packet, 256),
		done:     make(chan struct{}),
		decided:  make(map[InstanceID]Value),
		watch:    make(map[InstanceID][]chan Value),
		leases:   make(map[realmKey]*proposerLease),
		dedup:    make(map[groups.Process]bool, 8),
		highest:  make(map[realmKey]int64),
		wins:     make(map[InstanceID]*winSlot),
		winDepth: make(map[realmKey]int),
	}
	if n.wal != nil {
		n.recover()
	}
	go n.loop()
	return n
}

func (n *Node) loop() {
	defer close(n.done)
	defer close(n.resp)
	inbox := n.nw.Inbox(n.p)
	for pkt := range inbox {
		n.dispatch(pkt)
		if len(n.outbox) == 0 {
			continue
		}
		// Group commit: a dispatch deferred durable phase responses. Absorb
		// whatever burst is already queued so one fsync covers the lot, then
		// run the barrier and flush. Latency is untouched — the drain never
		// waits, it only claims packets that had already arrived.
		more := true
		for more && len(n.outbox) < maxCommitBatch {
			select {
			case pkt2, open := <-inbox:
				if !open {
					more = false // network closed: flush anyway (sends no-op)
					break
				}
				n.dispatch(pkt2)
			default:
				more = false
			}
		}
		n.walSync()
		for _, r := range n.outbox {
			n.nw.Send(n.p, r.to, r.t, r.body)
		}
		n.outbox = n.outbox[:0]
	}
}

// dispatch routes one packet. Dispatch is on the one-byte wire tag, not the
// body's dynamic type: a byte compare per packet instead of an interface
// type switch, and the same switch works whether the body arrived in-memory
// or was decoded from a TCP frame. Runs on the loop goroutine.
func (n *Node) dispatch(pkt net.Packet) {
	switch pkt.Type {
	case wire.TPaxPrepare:
		body, ok := pkt.Body.(PrepareReq)
		if !ok {
			return
		}
		n.reply(pkt.From, wire.TPaxPrepareResp, n.handlePrepare(body))
	case wire.TPaxAccept:
		body, ok := pkt.Body.(AcceptReq)
		if !ok {
			return
		}
		n.reply(pkt.From, wire.TPaxAcceptResp, n.handleAccept(body))
	case wire.TPaxDecide:
		body, ok := pkt.Body.(DecideMsg)
		if !ok {
			return
		}
		n.recordDecision(body.Inst, body.Val)
	case wire.TPaxLearn:
		body, ok := pkt.Body.(LearnReq)
		if !ok {
			return
		}
		if v, ok := n.Decided(body.Inst); ok {
			n.nw.Send(n.p, pkt.From, wire.TPaxDecide, DecideMsg{Inst: body.Inst, Val: v})
		}
	case wire.TPaxAcceptResp:
		// Windowed rounds are completed here, in the loop, so a whole
		// window of slots makes progress concurrently; anything not
		// claimed by the window table flows to the synchronous round.
		if body, ok := pkt.Body.(AcceptResp); ok && n.windowResp(pkt.From, body) {
			return
		}
		n.pushResp(pkt)
	case wire.TPaxPrepareResp:
		n.pushResp(pkt)
	default:
		n.hmu.RLock()
		fn := n.handlers[pkt.Type]
		n.hmu.RUnlock()
		if fn != nil {
			fn(pkt)
		}
	}
}

// reply sends a phase response — deferred to the loop's post-Sync outbox
// when a WAL is attached, so the acceptor transition it reveals is durable
// first. Without a WAL the send is immediate, exactly the old path.
func (n *Node) reply(to groups.Process, t net.MsgType, body any) {
	if n.wal == nil {
		n.nw.Send(n.p, to, t, body)
		return
	}
	n.outbox = append(n.outbox, pendingResp{to: to, t: t, body: body})
}

// pushResp hands a response to the synchronous proposer, dropping (counted)
// when no round is listening.
func (n *Node) pushResp(pkt net.Packet) {
	select {
	case n.resp <- pkt:
	default:
		// A full response channel means the proposer is not (or no
		// longer) listening for this round. The response is dropped,
		// but never silently: the counter keeps channel-pressure
		// losses distinguishable from fabric losses.
		n.cfg.Counters.IncRespDrop()
	}
}

// handlePrepare runs the acceptor's phase-1 rule. A known decision
// short-circuits the round: late proposers get taught instead of duelled.
func (n *Node) handlePrepare(body PrepareReq) PrepareResp {
	if v, ok := n.Decided(body.Inst); ok {
		return PrepareResp{Inst: body.Inst, Ballot: body.Ballot, Decided: true, DecVal: v}
	}
	a := n.acc
	a.mu.Lock()
	defer a.mu.Unlock()
	floor := a.floorLocked(body.Inst)
	if body.Ballot <= floor {
		return PrepareResp{Inst: body.Inst, Ballot: body.Ballot, OK: false, Promised: floor}
	}
	resp := PrepareResp{Inst: body.Inst, Ballot: body.Ballot, OK: true, Accepted: a.accepted[body.Inst]}
	if body.Range {
		// Grant a promise for every slot ≥ Inst.Slot of the realm and
		// report the accepted values the grant must carry (the lease
		// holder's adoption obligations). The scan is acquisition-only
		// cost; the steady state never takes this branch.
		rk := body.Inst.realm()
		a.leases[rk] = leaseGrant{Ballot: body.Ballot, FromSlot: body.Inst.Slot}
		n.walLease(rk, body.Inst.Slot, body.Ballot)
		for id, av := range a.accepted {
			if av.Has && id.realm() == rk && id.Slot >= body.Inst.Slot && id != body.Inst {
				resp.Range = append(resp.Range, SlotVal{Slot: id.Slot, Ballot: av.Ballot, Val: av.Val})
			}
		}
	} else {
		a.promised[body.Inst] = body.Ballot
		n.walPromise(body.Inst, body.Ballot)
	}
	return resp
}

// handleAccept runs the acceptor's phase-2 rule and absorbs any decision
// piggybacked on the request.
func (n *Node) handleAccept(body AcceptReq) AcceptResp {
	if body.PrevDecided {
		n.recordDecision(InstanceID{Space: body.Inst.Space, Realm: body.Inst.Realm, Slot: body.Prev.Slot}, body.Prev.Val)
	}
	if v, ok := n.Decided(body.Inst); ok {
		return AcceptResp{Inst: body.Inst, Ballot: body.Ballot, Decided: true, DecVal: v}
	}
	a := n.acc
	a.mu.Lock()
	floor := a.floorLocked(body.Inst)
	ok := body.Ballot >= floor
	if ok {
		a.promised[body.Inst] = body.Ballot
		a.accepted[body.Inst] = AcceptedVal{Ballot: body.Ballot, Val: body.Val, Has: true}
		n.walAccept(body.Inst, body.Ballot, body.Val)
	}
	a.mu.Unlock()
	return AcceptResp{Inst: body.Inst, Ballot: body.Ballot, OK: ok, Promised: floor}
}

func (n *Node) recordDecision(inst InstanceID, v Value) {
	n.mu.Lock()
	_, seen := n.decided[inst]
	if !seen {
		n.cfg.Counters.IncDecision()
		n.decided[inst] = v
		n.walDecide(inst, v)
		for _, ch := range n.watch[inst] {
			ch <- v
		}
		delete(n.watch, inst)
	}
	n.mu.Unlock()
	if !seen {
		n.clearPin(inst)
	}
}

// clearPin drops the same-ballot value pin (and any adoption obligation)
// of a slot whose decision is now known — the pin has done its job.
func (n *Node) clearPin(inst InstanceID) {
	n.leaseMu.Lock()
	if lease := n.leases[inst.realm()]; lease != nil {
		delete(lease.used, inst.Slot)
		delete(lease.adopt, inst.Slot)
	}
	n.leaseMu.Unlock()
}

// SnapshotDecisions copies every decision the node has learnt so far —
// the verification hook for tests asserting cross-node agreement (two
// nodes that both decided an instance must hold the same value).
func (n *Node) SnapshotDecisions() map[InstanceID]Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[InstanceID]Value, len(n.decided))
	for k, v := range n.decided {
		out[k] = v
	}
	return out
}

// Decided reports a locally known decision.
func (n *Node) Decided(inst InstanceID) (Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.decided[inst]
	return v, ok
}

// await registers interest in a decision.
func (n *Node) await(inst InstanceID) <-chan Value {
	ch := make(chan Value, 1)
	n.mu.Lock()
	if v, ok := n.decided[inst]; ok {
		ch <- v
	} else {
		n.watch[inst] = append(n.watch[inst], ch)
	}
	n.mu.Unlock()
	return ch
}

// Await returns a channel that delivers the decision of inst once it is
// learnt locally (immediately if already known). The channel never closes;
// select against Done for shutdown.
func (n *Node) Await(inst InstanceID) <-chan Value { return n.await(inst) }

// Done is closed when the node's message loop exits (network shutdown).
func (n *Node) Done() <-chan struct{} { return n.done }

// WindowLimit returns the configured maximum of outstanding windowed
// accept rounds per leased realm. Callers size their result channels with
// it: a channel of at least WindowLimit()+1 can never block a completion.
func (n *Node) WindowLimit() int { return n.cfg.Window }

// RequestDecision broadcasts an anti-entropy probe for inst to the scope
// peers: any one that knows the decision replies with it. Safe to call
// repeatedly; used by replicas whose decide broadcast may have been
// dropped.
func (n *Node) RequestDecision(scope groups.ProcSet, inst InstanceID) {
	n.cfg.Counters.IncProbe()
	n.toPeers(scope, wire.TPaxLearn, LearnReq{Inst: inst})
}

// toPeers sends to every scope member except this process: the node's own
// acceptor/learner state is updated directly, so a loopback packet would
// only burn two trips through the transport.
func (n *Node) toPeers(scope groups.ProcSet, t net.MsgType, body any) {
	for _, p := range scope.Members() {
		if p != n.p {
			n.nw.Send(n.p, p, t, body)
		}
	}
}

// decideBroadcast teaches the scope a decision (recording it locally first,
// without a loopback packet).
func (n *Node) decideBroadcast(inst *Instance, val Value) {
	// The decision is revealed below — first to local watchers via
	// recordDecision, then to peers — so the durability barrier comes
	// before both: every acceptor transition the decision rests on,
	// including this node's own unflushed accepts, reaches stable storage
	// first. The decide record itself may ride a later barrier; losing it
	// in a crash costs a re-learn (anti-entropy), never safety.
	n.walSync()
	n.recordDecision(inst.ID, val)
	n.toPeers(inst.Scope, wire.TPaxDecide, DecideMsg{Inst: inst.ID, Val: val})
}

// ---------------------------------------------------------------------------
// Windowed accept rounds.

// ProposeWindowed fires one phase-1-elided accept round for inst without
// waiting for it to conclude. It returns true when the round was fired (or
// resolved on the spot); exactly one WindowResult for inst will then be
// delivered on res — possibly before ProposeWindowed returns. It returns
// false, firing nothing, when the instance is not a leased Multi-Paxos
// realm at this leader, or the realm's window is full; the caller falls
// back to Propose (which acquires the lease) or waits for capacity.
//
// Callers must not run concurrent windowed and synchronous proposals for
// the same realm, and must size res so it never blocks (≥ WindowLimit()+1):
// results are delivered by the node's message loop and its timers, and a
// blocked delivery would stall every realm on the node.
func (n *Node) ProposeWindowed(inst *Instance, v Value, res chan<- WindowResult) bool {
	if n.fenced.Load() || !inst.MultiPaxos || inst.Leader(n.p) != n.p {
		return false
	}
	id := inst.ID
	if got, ok := n.Decided(id); ok {
		res <- WindowResult{Inst: id, Val: got, OK: true}
		return true
	}
	rk := id.realm()
	n.winMu.Lock()
	if _, dup := n.wins[id]; dup || n.winDepth[rk] >= n.cfg.Window {
		n.winMu.Unlock()
		return false
	}
	n.leaseMu.Lock()
	lease := n.leases[rk]
	if lease == nil || id.Slot < lease.fromSlot {
		n.leaseMu.Unlock()
		n.winMu.Unlock()
		return false
	}
	ballot := lease.ballot
	val := v
	if av, ok := lease.adopt[id.Slot]; ok {
		val = av.Val
	}
	if pv, ok := lease.used[id.Slot]; ok {
		val = pv // same-ballot pin: a retried slot must carry its first value
	} else {
		lease.used[id.Slot] = val
	}
	n.leaseMu.Unlock()

	n.cfg.Counters.IncWindowRound()
	req := AcceptReq{Inst: id, Ballot: ballot, Val: val}
	if id.Slot > 0 {
		prev := InstanceID{Space: id.Space, Realm: id.Realm, Slot: id.Slot - 1}
		if pv, ok := n.Decided(prev); ok {
			req.PrevDecided = true
			req.Prev = SlotVal{Slot: prev.Slot, Val: pv}
		}
	}
	ws := &winSlot{
		inst:   *inst,
		ballot: ballot,
		val:    val,
		acks:   make(map[groups.Process]bool, inst.Scope.Count()),
		need:   inst.Scope.Count()/2 + 1,
		res:    res,
	}
	// Consult the local acceptor synchronously — no loopback packets.
	if inst.Scope.Has(n.p) {
		r := n.handleAccept(req)
		switch {
		case r.Decided:
			n.winMu.Unlock()
			n.recordDecision(id, r.DecVal)
			res <- WindowResult{Inst: id, Val: r.DecVal, OK: true}
			return true
		case !r.OK:
			n.winMu.Unlock()
			n.windowNack(rk, r.Promised)
			res <- WindowResult{Inst: id, OK: false}
			return true
		}
		ws.acks[n.p] = true
		if len(ws.acks) >= ws.need {
			// Singleton (or trivially small) scope: decided on the spot.
			n.winMu.Unlock()
			n.decideBroadcast(inst, val)
			res <- WindowResult{Inst: id, Val: val, OK: true}
			return true
		}
	}
	n.wins[id] = ws
	n.winDepth[rk]++
	n.cfg.Counters.NoteWindowDepth(int64(n.winDepth[rk]))
	ws.timer = time.AfterFunc(n.cfg.PhaseDeadline, func() { n.windowTimeout(id, ballot) })
	n.winMu.Unlock()
	n.toPeers(inst.Scope, wire.TPaxAccept, req)
	return true
}

// windowResp routes an accept response to its outstanding windowed round,
// reporting whether it was consumed. Runs on the node's message loop.
func (n *Node) windowResp(from groups.Process, r AcceptResp) bool {
	n.winMu.Lock()
	ws, ok := n.wins[r.Inst]
	if !ok || ws.ballot != r.Ballot {
		n.winMu.Unlock()
		return false
	}
	switch {
	case r.Decided:
		n.unregisterWin(r.Inst, ws)
		n.winMu.Unlock()
		n.recordDecision(r.Inst, r.DecVal)
		ws.res <- WindowResult{Inst: r.Inst, Val: r.DecVal, OK: true}
	case !r.OK:
		n.unregisterWin(r.Inst, ws)
		n.winMu.Unlock()
		n.cfg.Counters.IncWindowRoundFailure()
		n.windowNack(r.Inst.realm(), r.Promised)
		ws.res <- WindowResult{Inst: r.Inst, OK: false}
	default:
		if ws.acks[from] {
			n.winMu.Unlock()
			return true
		}
		ws.acks[from] = true
		if len(ws.acks) < ws.need {
			n.winMu.Unlock()
			return true
		}
		n.unregisterWin(r.Inst, ws)
		n.winMu.Unlock()
		n.decideBroadcast(&ws.inst, ws.val)
		ws.res <- WindowResult{Inst: r.Inst, Val: ws.val, OK: true}
	}
	return true
}

// windowTimeout expires an outstanding windowed round that gathered no
// quorum within the phase deadline. The lease survives — a deadline says
// nothing about higher ballots — so the caller may retry the slot, which
// the value pin keeps safe.
func (n *Node) windowTimeout(id InstanceID, ballot int64) {
	n.winMu.Lock()
	ws, ok := n.wins[id]
	if !ok || ws.ballot != ballot {
		n.winMu.Unlock()
		return
	}
	n.unregisterWin(id, ws)
	n.winMu.Unlock()
	n.cfg.Counters.IncWindowRoundFailure()
	ws.res <- WindowResult{Inst: id, OK: false}
}

// unregisterWin removes a completed round from the window table (caller
// holds winMu).
func (n *Node) unregisterWin(id InstanceID, ws *winSlot) {
	delete(n.wins, id)
	n.winDepth[id.realm()]--
	if ws.timer != nil {
		ws.timer.Stop()
	}
}

// windowNack processes a refusal observed by a windowed round: remember
// the ballot hint and drop the now-stale lease.
func (n *Node) windowNack(rk realmKey, promised int64) {
	n.leaseMu.Lock()
	n.noteRefusal(rk, promised)
	if _, held := n.leases[rk]; held {
		n.cfg.Counters.IncLeaseLost()
		delete(n.leases, rk)
	}
	n.leaseMu.Unlock()
}

// ---------------------------------------------------------------------------
// Synchronous proposals.

// Propose runs the synod protocol for the instance until a decision is
// learnt and returns it. Non-leaders (per Ω) wait for the leader's decision
// and only proposer-race when their leader sample points at themselves.
// Leaders of MultiPaxos realms ride the lease fast path when one is held.
// Propose never returns a wrong value; it returns ok=false only when the
// network shuts down first.
func (n *Node) Propose(inst *Instance, v Value) (Value, bool) {
	n.cfg.Counters.IncProposal()
	if n.fenced.Load() {
		return nil, false
	}
	if got, ok := n.Decided(inst.ID); ok {
		return got, true
	}
	decidedCh := n.await(inst.ID)
	ballotRound := n.propRoundFloor()
	// Non-leaders park on the decision channel for one hedge window before
	// proposing themselves. One timer for the whole window, not a polling
	// loop: on hosts with ~1ms timer granularity a loop of N short sleeps
	// costs N×granularity, which dominated follower-side latency.
	hedgeWait := 25 * n.cfg.NonLeaderWait
	mustWait := true
	fails := 0
	for {
		// Fast path: someone decided.
		select {
		case got := <-decidedCh:
			return got, true
		case <-n.done:
			return nil, false
		default:
		}
		isLeader := inst.Leader(n.p) == n.p
		// Steady state: a held lease turns the proposal into a single
		// accept round. Any failure falls through to the full protocol.
		if isLeader && inst.MultiPaxos {
			if val, ok := n.fastRound(inst, v); ok {
				return val, true
			}
			select {
			case got := <-decidedCh:
				return got, true
			default:
			}
		}
		// Non-leaders wait for the leader's decision, but hedge after the
		// window: the decision broadcast may have been dropped, and running
		// a round is always safe (quorum intersection), only contended.
		if !isLeader && mustWait {
			mustWait = false
			select {
			case got := <-decidedCh:
				return got, true
			case <-n.done:
				return nil, false
			case <-time.After(hedgeWait):
			}
			continue
		}
		// Jump past every refusal ballot observed for the realm, so one
		// NACK is enough to out-ballot an incumbent instead of climbing
		// towards it 64 at a time.
		n.leaseMu.Lock()
		if hb := n.highest[inst.ID.realm()]; hb/64 >= ballotRound {
			ballotRound = hb/64 + 1
		}
		n.leaseMu.Unlock()
		ballotRound++
		ballot := ballotRound*64 + int64(n.p) + 1
		// A fenced (dead-incarnation) proposer must never claim another
		// ballot: its successor has already replayed the claims to date.
		if n.fenced.Load() {
			return nil, false
		}
		n.claimBallot(ballot)
		n.cfg.Counters.IncRound()
		if val, ok := n.round(inst, ballot, v); ok {
			n.decideBroadcast(inst, val)
			return val, true
		}
		select {
		case got := <-decidedCh:
			return got, true
		default:
		}
		n.cfg.Counters.IncRoundFailure()
		// The round failed: likely a ballot duel. Over a slow or lossy
		// fabric rounds take long enough to overlap, and symmetric retries
		// livelock (dueling proposers). Back off for a period that grows
		// with the failure count and is skewed per process so contenders
		// desynchronise, and send non-leaders back to waiting on the
		// leader — Ω's boost is what breaks the duel for good.
		fails++
		shift := uint(fails)
		if shift > 4 {
			shift = 4
		}
		backoff := n.cfg.BackoffBase<<shift + time.Duration(n.p)*n.cfg.Stagger
		select {
		case got := <-decidedCh:
			return got, true
		case <-n.done:
			return nil, false
		case <-time.After(backoff):
		}
		if inst.Leader(n.p) != n.p {
			// Yield to the leader again before the next self-try, with a
			// shorter window than the first (the duel is already on).
			hedgeWait = 10 * n.cfg.NonLeaderWait
			mustWait = true
		}
	}
}

// drainStale empties the response channel of leftovers from prior rounds
// (caller holds opMu, so no round is in flight). Responses to the upcoming
// round cannot exist before its broadcast, so everything pending is stale —
// but a stale response may still carry a piggybacked decision, which is
// absorbed rather than thrown away.
func (n *Node) drainStale() {
	for {
		select {
		case pkt, open := <-n.resp:
			if !open {
				return
			}
			n.cfg.Counters.IncRespStale()
			switch r := pkt.Body.(type) {
			case PrepareResp:
				if r.Decided {
					n.recordDecision(r.Inst, r.DecVal)
				}
			case AcceptResp:
				if r.Decided {
					n.recordDecision(r.Inst, r.DecVal)
				}
			}
		default:
			return
		}
	}
}

// noteRefusal remembers the highest refusal ballot seen for a realm
// (caller holds leaseMu).
func (n *Node) noteRefusal(rk realmKey, promised int64) {
	if promised > n.highest[rk] {
		n.highest[rk] = promised
	}
}

// fastRound attempts the Multi-Paxos steady-state path: one accept round at
// the held lease ballot, no phase 1. It reports ok=false when there is no
// covering lease or the round did not conclude — the lease is dropped on
// any refusal (a higher ballot is loose) and the caller falls back to the
// full protocol, which re-acquires. Safety: the lease ballot was granted by
// a quorum for every slot ≥ fromSlot, so this is phase 2 of a completed
// phase 1, with adoption obligations carried in lease.adopt and retried
// slots pinned to their first value (lease.used).
func (n *Node) fastRound(inst *Instance, v Value) (Value, bool) {
	n.opMu.Lock()
	defer n.opMu.Unlock()
	if got, ok := n.Decided(inst.ID); ok {
		return got, true
	}
	rk := inst.ID.realm()
	n.leaseMu.Lock()
	lease := n.leases[rk]
	if lease == nil || inst.ID.Slot < lease.fromSlot {
		n.leaseMu.Unlock()
		return nil, false
	}
	ballot := lease.ballot
	val := v
	if av, ok := lease.adopt[inst.ID.Slot]; ok {
		val = av.Val
	}
	if pv, ok := lease.used[inst.ID.Slot]; ok {
		val = pv // same-ballot pin: a retried slot must carry its first value
	} else {
		lease.used[inst.ID.Slot] = val
	}
	n.leaseMu.Unlock()
	n.cfg.Counters.IncFastRound()
	req := AcceptReq{Inst: inst.ID, Ballot: ballot, Val: val}
	// Piggyback the previous slot's decision on the accept stream: in the
	// steady state passive replicas learn slot s-1 from slot s's accept
	// even when the decide broadcast for s-1 was lost.
	if inst.ID.Slot > 0 {
		prev := InstanceID{Space: inst.ID.Space, Realm: inst.ID.Realm, Slot: inst.ID.Slot - 1}
		if pv, ok := n.Decided(prev); ok {
			req.PrevDecided = true
			req.Prev = SlotVal{Slot: prev.Slot, Val: pv}
		}
	}
	ok, refused := n.acceptPhase(inst, ballot, req)
	if !ok {
		if refused {
			// A higher ballot is loose in the realm: the lease is stale.
			n.leaseMu.Lock()
			if _, held := n.leases[rk]; held {
				n.cfg.Counters.IncLeaseLost()
				delete(n.leases, rk)
			}
			n.leaseMu.Unlock()
		}
		n.cfg.Counters.IncFastRoundFailure()
		return nil, false
	}
	n.decideBroadcast(inst, val)
	return val, true
}

// acceptPhase runs one accept quorum round at the given ballot (caller
// holds opMu and has already chosen the value per the adoption rule).
// refused reports whether failure was a NACK (vs. a deadline).
func (n *Node) acceptPhase(inst *Instance, ballot int64, req AcceptReq) (ok, refused bool) {
	n.drainStale()
	need := inst.Scope.Count()/2 + 1
	clear(n.dedup)
	// The local acceptor is consulted directly — no loopback packets.
	if inst.Scope.Has(n.p) {
		r := n.handleAccept(req)
		if r.Decided {
			return false, false // Propose's decided check will pick it up
		}
		if !r.OK {
			n.leaseMu.Lock()
			n.noteRefusal(inst.ID.realm(), r.Promised)
			n.leaseMu.Unlock()
			return false, true
		}
		n.dedup[n.p] = true
	}
	n.toPeers(inst.Scope, wire.TPaxAccept, req)
	deadline := time.After(n.cfg.PhaseDeadline)
	for len(n.dedup) < need {
		select {
		case pkt, open := <-n.resp:
			if !open {
				return false, false
			}
			r, isResp := pkt.Body.(AcceptResp)
			if pkt.Type != wire.TPaxAcceptResp || !isResp || r.Inst != inst.ID || r.Ballot != ballot || n.dedup[pkt.From] {
				continue
			}
			if r.Decided {
				n.recordDecision(r.Inst, r.DecVal)
				return false, false
			}
			if !r.OK {
				n.leaseMu.Lock()
				n.noteRefusal(inst.ID.realm(), r.Promised)
				n.leaseMu.Unlock()
				return false, true
			}
			n.dedup[pkt.From] = true
		case <-deadline:
			return false, false
		}
	}
	return true, false
}

// round runs one full prepare/accept round and reports the value it got
// accepted, or false on a quorum refusal, a deadline, or shutdown. When the
// instance is MultiPaxos and this process is the leader sample, the prepare
// is a range acquisition: success both decides this slot and installs a
// proposer lease for every later slot of the realm.
func (n *Node) round(inst *Instance, ballot int64, v Value) (Value, bool) {
	n.opMu.Lock()
	defer n.opMu.Unlock()
	n.drainStale()
	need := inst.Scope.Count()/2 + 1
	acquire := inst.MultiPaxos && inst.Leader(n.p) == n.p

	// Phase 1: prepare. Responses are deduplicated by acceptor: over an
	// adversarial fabric a packet may be duplicated, and counting the same
	// acceptor twice would fake a quorum and break intersection.
	req := PrepareReq{Inst: inst.ID, Ballot: ballot, Range: acquire}
	clear(n.dedup)
	var best AcceptedVal
	var rangeAdopt map[int64]AcceptedVal
	mergeRange := func(vals []SlotVal) {
		for _, sv := range vals {
			if rangeAdopt == nil {
				rangeAdopt = make(map[int64]AcceptedVal, len(vals))
			}
			if cur, ok := rangeAdopt[sv.Slot]; !ok || sv.Ballot > cur.Ballot {
				rangeAdopt[sv.Slot] = AcceptedVal{Ballot: sv.Ballot, Val: sv.Val, Has: true}
			}
		}
	}
	if inst.Scope.Has(n.p) {
		r := n.handlePrepare(req)
		if r.Decided {
			return nil, false
		}
		if !r.OK {
			n.leaseMu.Lock()
			n.noteRefusal(inst.ID.realm(), r.Promised)
			n.leaseMu.Unlock()
			return nil, false
		}
		if r.Accepted.Has {
			best = r.Accepted
		}
		mergeRange(r.Range)
		n.dedup[n.p] = true
	}
	n.toPeers(inst.Scope, wire.TPaxPrepare, req)
	deadline := time.After(n.cfg.PhaseDeadline)
	for len(n.dedup) < need {
		select {
		case pkt, open := <-n.resp:
			if !open {
				return nil, false
			}
			r, isResp := pkt.Body.(PrepareResp)
			if pkt.Type != wire.TPaxPrepareResp || !isResp || r.Inst != inst.ID || r.Ballot != ballot || n.dedup[pkt.From] {
				continue
			}
			if r.Decided {
				n.recordDecision(r.Inst, r.DecVal)
				return nil, false
			}
			if !r.OK {
				n.leaseMu.Lock()
				n.noteRefusal(inst.ID.realm(), r.Promised)
				n.leaseMu.Unlock()
				return nil, false
			}
			if r.Accepted.Has && r.Accepted.Ballot > best.Ballot {
				best = r.Accepted
			}
			mergeRange(r.Range)
			n.dedup[pkt.From] = true
		case <-deadline:
			return nil, false
		}
	}
	val := v
	if best.Has {
		val = best.Val
	}

	// Phase 2: accept (deduplicated like phase 1).
	ok, _ := n.acceptPhase(inst, ballot, AcceptReq{Inst: inst.ID, Ballot: ballot, Val: val})
	if !ok {
		return nil, false
	}
	if acquire {
		// The quorum granted every slot ≥ this one at this ballot: install
		// the lease so subsequent slots elide phase 1. Adoption obligations
		// for this slot are consumed here; the rest ride along.
		if rangeAdopt == nil {
			rangeAdopt = make(map[int64]AcceptedVal)
		}
		delete(rangeAdopt, inst.ID.Slot)
		n.leaseMu.Lock()
		n.leases[inst.ID.realm()] = &proposerLease{
			ballot:   ballot,
			fromSlot: inst.ID.Slot,
			adopt:    rangeAdopt,
			used:     make(map[int64]Value),
		}
		n.leaseMu.Unlock()
		n.cfg.Counters.IncLeaseAcquired()
	}
	return val, true
}

// Wait blocks until the node's loop exits.
func (n *Node) Wait() { <-n.done }
