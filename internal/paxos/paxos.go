// Package paxos implements single-decree consensus inside a destination
// group from Ω_g ∧ Σ_g over message passing — the paper's "consensus is
// wait-free solvable in g" (§4). It is classic synod consensus: a proposer
// that believes itself the leader (per Ω) runs prepare/accept phases against
// quorums (per Σ, realised as majorities); Ω's eventual agreement on one
// correct leader yields termination, quorum intersection yields agreement
// regardless of how many leaders race.
package paxos

import (
	"sync"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
)

// LeaderFunc is the Ω_g interface: the current leader sample at p.
type LeaderFunc func(p groups.Process) groups.Process

// Config tunes the proposer timing. The zero value means "use the
// defaults"; chaos tests and the live backend pass adjusted values instead
// of editing constants.
type Config struct {
	// PhaseDeadline bounds one quorum round trip. It must cover not just
	// the fabric's nominal delay but the host's timer granularity (~1ms on
	// common Linux configs), which a delay-injecting fabric pays once per
	// hop: a deadline near 2×granularity makes every round time out and
	// look like a proposer duel when the packets were merely slow.
	PhaseDeadline time.Duration
	// BackoffBase is the base of the exponential retry backoff after a
	// failed round (doubles per failure, capped at 16×).
	BackoffBase time.Duration
	// Stagger is the per-process skew added to every backoff so dueling
	// proposers desynchronise (p waits p×Stagger extra).
	Stagger time.Duration
	// NonLeaderWait is how long a non-leader (per Ω) waits for the
	// leader's decision between checks before it starts hedging rounds of
	// its own.
	NonLeaderWait time.Duration
	// Counters, when non-nil, accumulates proposer/acceptor work for run
	// reports. All methods are nil-safe, so the hot path stays branch-free.
	Counters *obs.PaxosCounters
}

// DefaultConfig returns the timing the package has always used.
func DefaultConfig() Config {
	return Config{
		PhaseDeadline: 10 * time.Millisecond,
		BackoffBase:   100 * time.Microsecond,
		Stagger:       137 * time.Microsecond,
		NonLeaderWait: 200 * time.Microsecond,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PhaseDeadline <= 0 {
		c.PhaseDeadline = d.PhaseDeadline
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.Stagger <= 0 {
		c.Stagger = d.Stagger
	}
	if c.NonLeaderWait <= 0 {
		c.NonLeaderWait = d.NonLeaderWait
	}
	return c
}

// Instance is one consensus instance replicated over a scope. Net may be
// the reliable fabric or the adversarial one (internal/chaos): prepare and
// accept are idempotent at a fixed ballot, proposers retry rounds under a
// deadline, and responses are deduplicated by acceptor.
type Instance struct {
	Name   string
	Scope  groups.ProcSet
	Net    net.Transport
	Leader LeaderFunc
}

// acceptor is the per-process acceptor state of all instances.
type acceptor struct {
	mu       sync.Mutex
	promised map[string]int64
	accepted map[string]acceptedVal
	decided  map[string]int64
}

type acceptedVal struct {
	Ballot int64
	Val    int64
	Has    bool
}

type prepareReq struct {
	Inst   string
	Ballot int64
}
type prepareResp struct {
	Inst     string
	Ballot   int64
	OK       bool
	Accepted acceptedVal
}
type acceptReq struct {
	Inst   string
	Ballot int64
	Val    int64
}
type acceptResp struct {
	Inst   string
	Ballot int64
	OK     bool
}
type decideMsg struct {
	Inst string
	Val  int64
}

// learnReq is the anti-entropy probe: "send me your decision for Inst if
// you have one". Passive replicas fall back to it when a decide broadcast
// was dropped by an adversarial fabric; the reply is an ordinary decideMsg.
type learnReq struct {
	Inst string
}

// Node bundles the acceptor role and the proposer plumbing of one process.
type Node struct {
	nw   net.Transport
	p    groups.Process
	cfg  Config
	acc  *acceptor
	resp chan net.Packet
	done chan struct{}

	mu      sync.Mutex
	decided map[string]int64
	watch   map[string][]chan int64
	opMu    sync.Mutex
}

// StartNode launches the node's message loop with the default timing.
func StartNode(nw net.Transport, p groups.Process) *Node {
	return StartNodeWithConfig(nw, p, Config{})
}

// StartNodeWithConfig launches the node's message loop with tuned timing
// (zero fields fall back to the defaults).
func StartNodeWithConfig(nw net.Transport, p groups.Process, cfg Config) *Node {
	n := &Node{
		nw:  nw,
		p:   p,
		cfg: cfg.withDefaults(),
		acc: &acceptor{
			promised: make(map[string]int64),
			accepted: make(map[string]acceptedVal),
			decided:  make(map[string]int64),
		},
		resp:    make(chan net.Packet, 256),
		done:    make(chan struct{}),
		decided: make(map[string]int64),
		watch:   make(map[string][]chan int64),
	}
	go n.loop()
	return n
}

func (n *Node) loop() {
	defer close(n.done)
	defer close(n.resp)
	for pkt := range n.nw.Inbox(n.p) {
		switch body := pkt.Body.(type) {
		case prepareReq:
			n.acc.mu.Lock()
			ok := body.Ballot > n.acc.promised[body.Inst]
			if ok {
				n.acc.promised[body.Inst] = body.Ballot
			}
			acc := n.acc.accepted[body.Inst]
			n.acc.mu.Unlock()
			n.nw.Send(n.p, pkt.From, "prepare-resp",
				prepareResp{Inst: body.Inst, Ballot: body.Ballot, OK: ok, Accepted: acc})
		case acceptReq:
			n.acc.mu.Lock()
			ok := body.Ballot >= n.acc.promised[body.Inst]
			if ok {
				n.acc.promised[body.Inst] = body.Ballot
				n.acc.accepted[body.Inst] = acceptedVal{Ballot: body.Ballot, Val: body.Val, Has: true}
			}
			n.acc.mu.Unlock()
			n.nw.Send(n.p, pkt.From, "accept-resp",
				acceptResp{Inst: body.Inst, Ballot: body.Ballot, OK: ok})
		case decideMsg:
			n.recordDecision(body.Inst, body.Val)
		case learnReq:
			if v, ok := n.Decided(body.Inst); ok {
				n.nw.Send(n.p, pkt.From, "decide", decideMsg{Inst: body.Inst, Val: v})
			}
		case prepareResp, acceptResp:
			select {
			case n.resp <- pkt:
			default:
			}
		}
	}
}

func (n *Node) recordDecision(inst string, v int64) {
	n.mu.Lock()
	if _, seen := n.decided[inst]; !seen {
		n.cfg.Counters.IncDecision()
		n.decided[inst] = v
		for _, ch := range n.watch[inst] {
			ch <- v
		}
		delete(n.watch, inst)
	}
	n.mu.Unlock()
}

// Decided reports a locally known decision.
func (n *Node) Decided(inst string) (int64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.decided[inst]
	return v, ok
}

// await registers interest in a decision.
func (n *Node) await(inst string) <-chan int64 {
	ch := make(chan int64, 1)
	n.mu.Lock()
	if v, ok := n.decided[inst]; ok {
		ch <- v
	} else {
		n.watch[inst] = append(n.watch[inst], ch)
	}
	n.mu.Unlock()
	return ch
}

// Await returns a channel that delivers the decision of inst once it is
// learnt locally (immediately if already known). The channel never closes;
// select against Done for shutdown.
func (n *Node) Await(inst string) <-chan int64 { return n.await(inst) }

// Done is closed when the node's message loop exits (network shutdown).
func (n *Node) Done() <-chan struct{} { return n.done }

// RequestDecision broadcasts an anti-entropy probe for inst to the scope:
// any peer that knows the decision replies with it. Safe to call
// repeatedly; used by replicas whose decide broadcast may have been
// dropped.
func (n *Node) RequestDecision(scope groups.ProcSet, inst string) {
	n.cfg.Counters.IncProbe()
	n.nw.Broadcast(n.p, scope, "learn", learnReq{Inst: inst})
}

// Propose runs the synod protocol for the instance until a decision is
// learnt and returns it. Non-leaders (per Ω) wait for the leader's decision
// and only proposer-race when their leader sample points at themselves.
// Propose never returns a wrong value; it returns ok=false only when the
// network shuts down first.
func (n *Node) Propose(inst *Instance, v int64) (int64, bool) {
	n.cfg.Counters.IncProposal()
	if got, ok := n.Decided(inst.Name); ok {
		return got, true
	}
	decidedCh := n.await(inst.Name)
	ballotRound := int64(0)
	waits := 0
	fails := 0
	for {
		// Fast path: someone decided.
		select {
		case got := <-decidedCh:
			return got, true
		case <-n.done:
			return 0, false
		default:
		}
		// Non-leaders wait for the leader's decision, but hedge after a
		// while: the decision broadcast may have been dropped, and running
		// a round is always safe (quorum intersection), only contended.
		if inst.Leader(n.p) != n.p && waits < 25 {
			waits++
			select {
			case got := <-decidedCh:
				return got, true
			case <-n.done:
				return 0, false
			case <-time.After(n.cfg.NonLeaderWait):
			}
			continue
		}
		ballotRound++
		ballot := ballotRound*64 + int64(n.p) + 1
		n.cfg.Counters.IncRound()
		if val, ok := n.round(inst, ballot, v); ok {
			n.nw.Broadcast(n.p, inst.Scope, "decide", decideMsg{Inst: inst.Name, Val: val})
			n.recordDecision(inst.Name, val)
			return val, true
		}
		n.cfg.Counters.IncRoundFailure()
		// The round failed: likely a ballot duel. Over a slow or lossy
		// fabric rounds take long enough to overlap, and symmetric retries
		// livelock (dueling proposers). Back off for a period that grows
		// with the failure count and is skewed per process so contenders
		// desynchronise, and send non-leaders back to waiting on the
		// leader — Ω's boost is what breaks the duel for good.
		fails++
		shift := uint(fails)
		if shift > 4 {
			shift = 4
		}
		backoff := n.cfg.BackoffBase<<shift + time.Duration(n.p)*n.cfg.Stagger
		select {
		case got := <-decidedCh:
			return got, true
		case <-n.done:
			return 0, false
		case <-time.After(backoff):
		}
		if inst.Leader(n.p) != n.p {
			waits = 15 // mostly yield again before the next self-try
		}
	}
}

// round runs one prepare/accept round and reports the value it got
// accepted, or false on a quorum refusal or shutdown.
func (n *Node) round(inst *Instance, ballot, v int64) (int64, bool) {
	n.opMu.Lock()
	defer n.opMu.Unlock()
	need := inst.Scope.Count()/2 + 1

	// Phase 1: prepare. Responses are deduplicated by acceptor: over an
	// adversarial fabric a packet may be duplicated, and counting the same
	// acceptor twice would fake a quorum and break intersection.
	n.nw.Broadcast(n.p, inst.Scope, "prepare", prepareReq{Inst: inst.Name, Ballot: ballot})
	promised := make(map[groups.Process]bool, need)
	var best acceptedVal
	deadline := time.After(n.cfg.PhaseDeadline)
	for len(promised) < need {
		select {
		case pkt, open := <-n.resp:
			if !open {
				return 0, false
			}
			r, isResp := pkt.Body.(prepareResp)
			if !isResp || r.Inst != inst.Name || r.Ballot != ballot || promised[pkt.From] {
				continue
			}
			if !r.OK {
				return 0, false
			}
			if r.Accepted.Has && r.Accepted.Ballot > best.Ballot {
				best = r.Accepted
			}
			promised[pkt.From] = true
		case <-deadline:
			return 0, false
		}
	}
	val := v
	if best.Has {
		val = best.Val
	}

	// Phase 2: accept (deduplicated like phase 1).
	n.nw.Broadcast(n.p, inst.Scope, "accept", acceptReq{Inst: inst.Name, Ballot: ballot, Val: val})
	accepted := make(map[groups.Process]bool, need)
	deadline = time.After(n.cfg.PhaseDeadline)
	for len(accepted) < need {
		select {
		case pkt, open := <-n.resp:
			if !open {
				return 0, false
			}
			r, isResp := pkt.Body.(acceptResp)
			if !isResp || r.Inst != inst.Name || r.Ballot != ballot || accepted[pkt.From] {
				continue
			}
			if !r.OK {
				return 0, false
			}
			accepted[pkt.From] = true
		case <-deadline:
			return 0, false
		}
	}
	return val, true
}

// Wait blocks until the node's loop exits.
func (n *Node) Wait() { <-n.done }
