package paxos

import (
	"sync"
	"testing"

	"repro/internal/groups"
	"repro/internal/net"
)

func cluster(n int, leader groups.Process) (*net.Network, []*Node, *Instance) {
	nw := net.New(n)
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNode(nw, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	inst := &Instance{
		ID:     InstanceID{Space: SpaceTest, Realm: 1},
		Scope:  scope,
		Net:    nw,
		Leader: func(groups.Process) groups.Process { return leader },
	}
	return nw, nodes, inst
}

func TestSingleProposerDecides(t *testing.T) {
	nw, nodes, inst := cluster(3, 0)
	defer nw.Close()
	v, ok := nodes[0].Propose(inst, I64Value(42))
	if !ok || v.I64() != 42 {
		t.Fatalf("decide = %d,%v; want 42 (validity)", v.I64(), ok)
	}
	if got, ok := nodes[0].Decided(inst.ID); !ok || got.I64() != 42 {
		t.Fatalf("decision not recorded")
	}
}

// TestAgreementAcrossProposers: every proposer learns the same value.
func TestAgreementAcrossProposers(t *testing.T) {
	nw, nodes, inst := cluster(5, 2)
	defer nw.Close()
	var wg sync.WaitGroup
	results := make([]int64, 5)
	for p := 0; p < 5; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v, ok := nodes[p].Propose(inst, I64Value(int64(100+p)))
			if !ok {
				t.Errorf("p%d: no decision", p)
				return
			}
			results[p] = v.I64()
		}(p)
	}
	wg.Wait()
	for p := 1; p < 5; p++ {
		if results[p] != results[0] {
			t.Fatalf("agreement violated: %v", results)
		}
	}
	// Validity: the decision is one of the proposals.
	if results[0] < 100 || results[0] > 104 {
		t.Fatalf("decided %d was never proposed", results[0])
	}
}

// TestToleratesMinorityCrash: the leader decides with two of five
// acceptors crashed.
func TestToleratesMinorityCrash(t *testing.T) {
	nw, nodes, inst := cluster(5, 0)
	defer nw.Close()
	nw.Crash(3)
	nw.Crash(4)
	v, ok := nodes[0].Propose(inst, I64Value(7))
	if !ok || v.I64() != 7 {
		t.Fatalf("decide = %d,%v; want 7", v.I64(), ok)
	}
	// Another correct process learns it too.
	v2, ok := nodes[1].Propose(inst, I64Value(99))
	if !ok || v2.I64() != 7 {
		t.Fatalf("late proposer learnt %d, want 7", v2.I64())
	}
}

// TestLeaderChangeStillDecides: Ω first points at a crashed process, then
// stabilises on a correct one; proposals issued under the stabilised
// leader decide.
func TestLeaderChangeStillDecides(t *testing.T) {
	nw := net.New(3)
	defer nw.Close()
	nodes := make([]*Node, 3)
	scope := groups.NewProcSet(0, 1, 2)
	for p := 0; p < 3; p++ {
		nodes[p] = StartNode(nw, groups.Process(p))
	}
	var mu sync.Mutex
	leader := groups.Process(2)
	inst := &Instance{
		ID:    InstanceID{Space: SpaceTest, Realm: 2},
		Scope: scope,
		Net:   nw,
		Leader: func(groups.Process) groups.Process {
			mu.Lock()
			defer mu.Unlock()
			return leader
		},
	}
	nw.Crash(2) // the initial leader is dead
	var wg sync.WaitGroup
	results := make([]int64, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v, ok := nodes[p].Propose(inst, I64Value(int64(10+p)))
			if ok {
				results[p] = v.I64()
			}
		}(p)
	}
	// Ω stabilises on p0.
	mu.Lock()
	leader = 0
	mu.Unlock()
	wg.Wait()
	if results[0] != results[1] || results[0] == 0 {
		t.Fatalf("agreement after leader change violated: %v", results)
	}
}

// TestSeparateInstancesIndependent: decisions of distinct instances do not
// mix.
func TestSeparateInstancesIndependent(t *testing.T) {
	nw, nodes, inst := cluster(3, 0)
	defer nw.Close()
	inst2 := &Instance{ID: InstanceID{Space: SpaceTest, Realm: 99}, Scope: inst.Scope, Net: nw, Leader: inst.Leader}
	v1, _ := nodes[0].Propose(inst, I64Value(1))
	v2, _ := nodes[0].Propose(inst2, I64Value(2))
	if v1.I64() != 1 || v2.I64() != 2 {
		t.Fatalf("instances interfered: %d, %d", v1.I64(), v2.I64())
	}
}

func TestShutdownUnblocksProposer(t *testing.T) {
	nw, nodes, inst := cluster(3, 0)
	nw.Crash(1)
	nw.Crash(2)
	done := make(chan struct{})
	go func() {
		nodes[0].Propose(inst, I64Value(5)) // no quorum: must unblock at Close
		close(done)
	}()
	nw.Close()
	<-done
}
