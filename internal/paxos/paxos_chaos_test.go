package paxos

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/groups"
	"repro/internal/net"
)

// chaosCluster wires n paxos nodes over the adversarial fabric.
func chaosCluster(n int, seed int64, leader groups.Process) (*chaos.Chaos, []*Node, groups.ProcSet) {
	c := chaos.Wrap(net.New(n), seed)
	nodes := make([]*Node, n)
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		nodes[p] = StartNode(c, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	return c, nodes, scope
}

// TestChaosSingleDecreeAgreement: every node proposes on each of several
// instances while drops, duplication, delay and reorder are active.
// Single-decree agreement (all learners of an instance learn one value)
// and validity (the value was proposed) must hold throughout — quorum
// intersection owes nothing to the fabric being polite.
func TestChaosSingleDecreeAgreement(t *testing.T) {
	const n, instances = 5, 12
	c, nodes, scope := chaosCluster(n, 3, 0)
	defer c.Close()
	c.SetFaults(chaos.Faults{
		Drop: 0.08, Dup: 0.08, DelayMax: 150 * time.Microsecond, Reorder: true,
	})
	leader := func(groups.Process) groups.Process { return 0 }

	results := make([][]int64, n) // results[p][i] = p's decision for instance i
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		results[p] = make([]int64, instances)
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < instances; i++ {
				inst := &Instance{
					ID:     InstanceID{Space: SpaceTest, Realm: 10, Slot: int64(i)},
					Scope:  scope,
					Net:    c,
					Leader: leader,
				}
				v, ok := nodes[p].Propose(inst, I64Value(int64(1000*(p+1)+i)))
				if !ok {
					t.Errorf("p%d instance %d: no decision", p, i)
					return
				}
				results[p][i] = v.I64()
			}
		}()
	}
	wg.Wait()

	for i := 0; i < instances; i++ {
		for p := 1; p < n; p++ {
			if results[p][i] != results[0][i] {
				t.Fatalf("agreement violated at instance %d: %v", i,
					[]int64{results[0][i], results[p][i]})
			}
		}
		v := results[0][i]
		valid := false
		for p := 1; p <= n; p++ {
			if v == int64(1000*p+i) {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("instance %d decided %d, which nobody proposed", i, v)
		}
	}
	if st := c.Stats(); st.DroppedRandom == 0 && st.Duplicated == 0 {
		t.Fatalf("fault mix injected nothing: %+v", st)
	}
}

// TestChaosIsolatedLeaderOthersDecide: Ω points at a leader the nemesis
// has cut off. The remaining majority hedges past the silent leader and
// decides; after heal the isolated leader's own proposal learns the
// already-decided value instead of overriding it.
func TestChaosIsolatedLeaderOthersDecide(t *testing.T) {
	c, nodes, scope := chaosCluster(5, 4, 0)
	defer c.Close()
	inst := &Instance{
		ID:    InstanceID{Space: SpaceTest, Realm: 11},
		Scope: scope,
		Net:   c,
		// Ω stuck on p0 — the hedge in Propose is what keeps this live.
		Leader: func(groups.Process) groups.Process { return 0 },
	}
	c.Isolate(0)

	leaderGot := make(chan int64, 1)
	go func() {
		v, ok := nodes[0].Propose(inst, I64Value(111))
		if ok {
			leaderGot <- v.I64()
		}
	}()

	// The majority side decides without the leader.
	var wg sync.WaitGroup
	results := make([]int64, 5)
	for p := 1; p < 5; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, ok := nodes[p].Propose(inst, I64Value(int64(200+p)))
			if !ok {
				t.Errorf("p%d: no decision with leader isolated", p)
				return
			}
			results[p] = v.I64()
		}()
	}
	wg.Wait()
	for p := 2; p < 5; p++ {
		if results[p] != results[1] {
			t.Fatalf("agreement violated: %v", results[1:])
		}
	}
	if results[1] == 111 {
		t.Fatalf("isolated leader's value decided while cut off")
	}

	c.Heal()
	select {
	case v := <-leaderGot:
		if v != results[1] {
			t.Fatalf("healed leader learnt %d, cluster decided %d", v, results[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("healed leader never learnt the decision")
	}
}
