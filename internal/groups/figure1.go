package groups

// Figure1 builds the running example of the paper (Figure 1): five processes
// p1..p5 (numbered 0..4 here) and four destination groups
//
//	g1 = {p1,p2}, g2 = {p2,p3}, g3 = {p1,p3,p4}, g4 = {p1,p4,p5}.
//
// Its cyclic families are f = {g1,g2,g3}, f' = {g1,g3,g4} and f” = G.
func Figure1() *Topology {
	return MustNew(5,
		NewProcSet(0, 1),    // g1 = {p1,p2}
		NewProcSet(1, 2),    // g2 = {p2,p3}
		NewProcSet(0, 2, 3), // g3 = {p1,p3,p4}
		NewProcSet(0, 3, 4), // g4 = {p1,p4,p5}
	)
}
