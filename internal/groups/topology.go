package groups

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// GroupID identifies a destination group within a Topology. Groups are
// numbered from 0 in the order they were declared.
type GroupID int

// GroupSet is a set of groups represented as a bitmask, bounding a topology
// to 64 destination groups.
type GroupSet uint64

// NewGroupSet builds a set from the given groups.
func NewGroupSet(gs ...GroupID) GroupSet {
	var s GroupSet
	for _, g := range gs {
		s = s.Add(g)
	}
	return s
}

// Add returns the set with g added.
func (s GroupSet) Add(g GroupID) GroupSet { return s | 1<<uint(g) }

// Has reports whether g is in the set.
func (s GroupSet) Has(g GroupID) bool { return s&(1<<uint(g)) != 0 }

// Count returns the number of members.
func (s GroupSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Union returns s ∪ t.
func (s GroupSet) Union(t GroupSet) GroupSet { return s | t }

// Intersect returns s ∩ t.
func (s GroupSet) Intersect(t GroupSet) GroupSet { return s & t }

// Empty reports whether the set has no members.
func (s GroupSet) Empty() bool { return s == 0 }

// Members returns the groups in increasing order.
func (s GroupSet) Members() []GroupID {
	out := make([]GroupID, 0, s.Count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, GroupID(bits.TrailingZeros64(v)))
	}
	return out
}

// String renders the set as {g0,g2,...}.
func (s GroupSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, g := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "g%d", g)
	}
	b.WriteByte('}')
	return b.String()
}

// Topology is an immutable description of the processes and destination
// groups of an atomic multicast instance. It precomputes the intersection
// structure and every cyclic family, which the γ failure detector and the
// core algorithm consult on the hot path.
type Topology struct {
	n        int       // number of processes
	groups   []ProcSet // members per group
	all      ProcSet   // union of all groups
	families []Family  // every cyclic family, sorted by GroupSet
	byGroup  [][]int   // family indices containing each group
	byProc   [][]int   // family indices f with p in some group intersection of f
	groupsOf []GroupSet
}

// Family is a cyclic family: a set of destination groups whose intersection
// graph is hamiltonian, together with its closed paths (hamiltonian cycles).
type Family struct {
	// Groups is the set of destination groups in the family.
	Groups GroupSet
	// CPaths holds the closed paths of the family: each path visits every
	// group exactly once and returns to its start (π[0] == π[len-1]). Both
	// orientations and all rotations starting at the smallest group are
	// included, matching cpaths(f) up to the canonical start.
	CPaths [][]GroupID
}

// ErrTooMany is returned when a topology exceeds the bitset capacity.
var ErrTooMany = errors.New("groups: too many processes or groups (max 64)")

// New builds a topology over n processes with the given destination groups.
// Every group must be a non-empty subset of [0,n).
func New(n int, gs ...ProcSet) (*Topology, error) {
	if n <= 0 || n > MaxProcesses {
		return nil, fmt.Errorf("%w: n=%d", ErrTooMany, n)
	}
	if len(gs) > 64 {
		return nil, fmt.Errorf("%w: %d groups", ErrTooMany, len(gs))
	}
	var all ProcSet
	limit := ProcSet(0)
	for p := 0; p < n; p++ {
		limit = limit.Add(Process(p))
	}
	for i, g := range gs {
		if g.Empty() {
			return nil, fmt.Errorf("groups: group g%d is empty", i)
		}
		if !g.SubsetOf(limit) {
			return nil, fmt.Errorf("groups: group g%d=%v has members outside [0,%d)", i, g, n)
		}
		all = all.Union(g)
	}
	t := &Topology{
		n:        n,
		groups:   append([]ProcSet(nil), gs...),
		all:      all,
		groupsOf: make([]GroupSet, n),
	}
	for gi, g := range t.groups {
		for _, p := range g.Members() {
			t.groupsOf[p] = t.groupsOf[p].Add(GroupID(gi))
		}
	}
	t.computeFamilies()
	return t, nil
}

// MustNew is New, panicking on error. It is intended for tests and examples
// with literal topologies.
func MustNew(n int, gs ...ProcSet) *Topology {
	t, err := New(n, gs...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumProcesses returns the number of processes in the topology.
func (t *Topology) NumProcesses() int { return t.n }

// NumGroups returns the number of destination groups.
func (t *Topology) NumGroups() int { return len(t.groups) }

// Group returns the member set of group g.
func (t *Topology) Group(g GroupID) ProcSet { return t.groups[g] }

// AllProcesses returns the union of all destination groups.
func (t *Topology) AllProcesses() ProcSet { return t.all }

// GroupsOf returns G(p): the groups containing process p.
func (t *Topology) GroupsOf(p Process) GroupSet { return t.groupsOf[p] }

// Intersection returns g ∩ h as a process set.
func (t *Topology) Intersection(g, h GroupID) ProcSet {
	return t.groups[g].Intersect(t.groups[h])
}

// Intersecting reports whether g and h share at least one process.
func (t *Topology) Intersecting(g, h GroupID) bool {
	return !t.Intersection(g, h).Empty()
}

// IntersectionGraph returns the adjacency sets of the intersection graph of
// the given family: adj[i] holds the indices j≠i with f[i] ∩ f[j] ≠ ∅.
func (t *Topology) IntersectionGraph(f []GroupID) [][]int {
	adj := make([][]int, len(f))
	for i := range f {
		for j := range f {
			if i != j && t.Intersecting(f[i], f[j]) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// Families returns every cyclic family of the topology (the set F).
func (t *Topology) Families() []Family { return t.families }

// FamiliesOf returns F(g): the cyclic families containing group g.
func (t *Topology) FamiliesOf(g GroupID) []Family {
	out := make([]Family, 0, len(t.byGroup[g]))
	for _, i := range t.byGroup[g] {
		out = append(out, t.families[i])
	}
	return out
}

// FamiliesOfProcess returns F(p): the cyclic families f such that p belongs
// to some group intersection of f (∃g,h ∈ f, p ∈ g∩h).
func (t *Topology) FamiliesOfProcess(p Process) []Family {
	out := make([]Family, 0, len(t.byProc[p]))
	for _, i := range t.byProc[p] {
		out = append(out, t.families[i])
	}
	return out
}

// HasCyclicFamilies reports whether F ≠ ∅.
func (t *Topology) HasCyclicFamilies() bool { return len(t.families) > 0 }

// FamilyFaulty reports whether the family is faulty given the crashed set:
// every closed path of the family visits an edge (g,h) with g∩h ⊆ crashed.
func (t *Topology) FamilyFaulty(f Family, crashed ProcSet) bool {
	for _, path := range f.CPaths {
		if !t.pathFaulty(path, crashed) {
			return false
		}
	}
	return true
}

// pathFaulty reports whether the closed path visits a faulty edge.
func (t *Topology) pathFaulty(path []GroupID, crashed ProcSet) bool {
	for i := 0; i+1 < len(path); i++ {
		if t.Intersection(path[i], path[i+1]).SubsetOf(crashed) {
			return true
		}
	}
	return false
}

// ConsensusFamily returns the set f computed at line 20 of Algorithm 1 for
// process p and group g: the groups h such that some cyclic family in F(p)
// contains both g and h with g∩h ≠ ∅. (Lemma 30 proves this set is the same
// at every process of a correct cyclic family through g.)
func (t *Topology) ConsensusFamily(p Process, g GroupID) GroupSet {
	var out GroupSet
	for _, fi := range t.byProc[p] {
		f := t.families[fi]
		if !f.Groups.Has(g) {
			continue
		}
		for _, h := range f.Groups.Members() {
			if t.Intersecting(g, h) {
				out = out.Add(h)
			}
		}
	}
	return out
}

// IntersectingGroups returns every group h ≠ g with g∩h ≠ ∅.
func (t *Topology) IntersectingGroups(g GroupID) []GroupID {
	var out []GroupID
	for h := range t.groups {
		if GroupID(h) != g && t.Intersecting(g, GroupID(h)) {
			out = append(out, GroupID(h))
		}
	}
	return out
}

// computeFamilies enumerates every subset of groups of size ≥ 3 and keeps the
// ones whose intersection graph is hamiltonian, recording the closed paths.
func (t *Topology) computeFamilies() {
	k := len(t.groups)
	t.byGroup = make([][]int, k)
	t.byProc = make([][]int, t.n)
	if k < 3 {
		return
	}
	for mask := GroupSet(1); mask < GroupSet(1)<<uint(k); mask++ {
		if mask.Count() < 3 {
			continue
		}
		members := mask.Members()
		cycles := t.hamiltonianCycles(members)
		if len(cycles) == 0 {
			continue
		}
		fi := len(t.families)
		t.families = append(t.families, Family{Groups: mask, CPaths: cycles})
		for _, g := range members {
			t.byGroup[g] = append(t.byGroup[g], fi)
		}
		var inInter ProcSet
		for i, g := range members {
			for _, h := range members[i+1:] {
				inInter = inInter.Union(t.Intersection(g, h))
			}
		}
		for _, p := range inInter.Members() {
			t.byProc[p] = append(t.byProc[p], fi)
		}
	}
	sort.Slice(t.families, func(i, j int) bool {
		return t.families[i].Groups < t.families[j].Groups
	})
	// Rebuild indices after sorting.
	for g := range t.byGroup {
		t.byGroup[g] = t.byGroup[g][:0]
	}
	for p := range t.byProc {
		t.byProc[p] = t.byProc[p][:0]
	}
	for fi, f := range t.families {
		var inInter ProcSet
		members := f.Groups.Members()
		for _, g := range members {
			t.byGroup[g] = append(t.byGroup[g], fi)
		}
		for i, g := range members {
			for _, h := range members[i+1:] {
				inInter = inInter.Union(t.Intersection(g, h))
			}
		}
		for _, p := range inInter.Members() {
			t.byProc[p] = append(t.byProc[p], fi)
		}
	}
}

// hamiltonianCycles returns every hamiltonian cycle of the intersection graph
// of the given groups as closed paths (first == last). Cycles start at the
// first group; both orientations are returned since Algorithm 3 distinguishes
// path directions. Starting points other than the first group describe the
// same edge sets and are omitted.
func (t *Topology) hamiltonianCycles(f []GroupID) [][]GroupID {
	n := len(f)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := range adj[i] {
			adj[i][j] = i != j && t.Intersecting(f[i], f[j])
		}
	}
	var out [][]GroupID
	path := make([]int, 1, n+1)
	used := make([]bool, n)
	used[0] = true
	var rec func()
	rec = func() {
		if len(path) == n {
			last := path[len(path)-1]
			if adj[last][0] {
				cyc := make([]GroupID, 0, n+1)
				for _, i := range path {
					cyc = append(cyc, f[i])
				}
				cyc = append(cyc, f[0])
				out = append(out, cyc)
			}
			return
		}
		last := path[len(path)-1]
		for next := 1; next < n; next++ {
			if used[next] || !adj[last][next] {
				continue
			}
			used[next] = true
			path = append(path, next)
			rec()
			path = path[:len(path)-1]
			used[next] = false
		}
	}
	rec()
	return out
}

// PathEdges returns the undirected edge set of a closed path as canonical
// (min,max) group pairs. Two paths are equivalent (π ≡ π') when they have the
// same edge set.
func PathEdges(path []GroupID) map[[2]GroupID]bool {
	edges := make(map[[2]GroupID]bool, len(path))
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a > b {
			a, b = b, a
		}
		edges[[2]GroupID{a, b}] = true
	}
	return edges
}

// PathsEquivalent reports π ≡ π': the two closed paths visit the same edges.
func PathsEquivalent(a, b []GroupID) bool {
	ea, eb := PathEdges(a), PathEdges(b)
	if len(ea) != len(eb) {
		return false
	}
	for e := range ea {
		if !eb[e] {
			return false
		}
	}
	return true
}

// PathDirection returns +1 or -1 for the orientation of a closed path, using
// the canonical representation where the path's second element being the
// smaller of the start's two cycle-neighbours means clockwise (+1).
func PathDirection(path []GroupID) int {
	if len(path) < 4 {
		return 1
	}
	next := path[1]
	prev := path[len(path)-2]
	if next <= prev {
		return 1
	}
	return -1
}

// String renders the topology.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology(n=%d", t.n)
	for i, g := range t.groups {
		fmt.Fprintf(&b, ", g%d=%v", i, g)
	}
	b.WriteByte(')')
	return b.String()
}
