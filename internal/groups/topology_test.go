package groups

import (
	"math/rand"
	"testing"
)

// TestFigure1_CyclicFamilies reproduces Figure 1 of the paper: the topology
// has exactly three cyclic families f={g1,g2,g3}, f'={g1,g3,g4} and f”=G.
func TestFigure1_CyclicFamilies(t *testing.T) {
	topo := Figure1()
	fams := topo.Families()
	if len(fams) != 3 {
		t.Fatalf("got %d cyclic families, want 3: %v", len(fams), fams)
	}
	want := map[GroupSet]bool{
		NewGroupSet(0, 1, 2):    true, // f = {g1,g2,g3}
		NewGroupSet(0, 2, 3):    true, // f' = {g1,g3,g4}
		NewGroupSet(0, 1, 2, 3): true, // f'' = G
	}
	for _, f := range fams {
		if !want[f.Groups] {
			t.Errorf("unexpected cyclic family %v", f.Groups)
		}
		delete(want, f.Groups)
	}
	for g := range want {
		t.Errorf("missing cyclic family %v", g)
	}
}

// TestFigure1_FamiliesOfGroup checks F(g2) = {f, f”} as stated in §3.
func TestFigure1_FamiliesOfGroup(t *testing.T) {
	topo := Figure1()
	fams := topo.FamiliesOf(1) // g2 (0-indexed: group 1)
	if len(fams) != 2 {
		t.Fatalf("|F(g2)| = %d, want 2", len(fams))
	}
	got := map[GroupSet]bool{}
	for _, f := range fams {
		got[f.Groups] = true
	}
	if !got[NewGroupSet(0, 1, 2)] || !got[NewGroupSet(0, 1, 2, 3)] {
		t.Fatalf("F(g2) = %v, want {f, f''}", got)
	}
}

// TestFigure1_FamiliesOfProcess checks F(p1) = F and F(p5) = ∅ (§3).
func TestFigure1_FamiliesOfProcess(t *testing.T) {
	topo := Figure1()
	if got := len(topo.FamiliesOfProcess(0)); got != 3 { // p1
		t.Errorf("|F(p1)| = %d, want 3", got)
	}
	if got := len(topo.FamiliesOfProcess(4)); got != 0 { // p5
		t.Errorf("|F(p5)| = %d, want 0", got)
	}
}

// TestFigure1_FamilyFaulty checks that f” is faulty when g1∩g2 = {p2}
// crashes (§3: "This family is faulty when g2 ∩ g1 = {p2} fails").
func TestFigure1_FamilyFaulty(t *testing.T) {
	topo := Figure1()
	crashed := NewProcSet(1) // p2
	for _, f := range topo.Families() {
		faulty := topo.FamilyFaulty(f, crashed)
		switch f.Groups {
		case NewGroupSet(0, 1, 2): // f contains edge g1-g2 in every cycle
			if !faulty {
				t.Errorf("f should be faulty when p2 crashes")
			}
		case NewGroupSet(0, 2, 3): // f' does not involve g2
			if faulty {
				t.Errorf("f' should stay correct when p2 crashes")
			}
		case NewGroupSet(0, 1, 2, 3):
			if !faulty {
				t.Errorf("f'' should be faulty when p2 crashes")
			}
		}
	}
}

func TestFamilyNotFaultyWithoutCrashes(t *testing.T) {
	topo := Figure1()
	for _, f := range topo.Families() {
		if topo.FamilyFaulty(f, 0) {
			t.Errorf("family %v faulty with no crashes", f.Groups)
		}
	}
}

// TestFamilyFaultyMonotone: faultiness is monotone in the crashed set.
func TestFamilyFaultyMonotone(t *testing.T) {
	topo := Figure1()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		crashed := ProcSet(rng.Uint64() & 0x1f)
		more := crashed.Add(Process(rng.Intn(5)))
		for _, f := range topo.Families() {
			if topo.FamilyFaulty(f, crashed) && !topo.FamilyFaulty(f, more) {
				t.Fatalf("faultiness not monotone: crashed=%v more=%v", crashed, more)
			}
		}
	}
}

func TestDisjointGroupsHaveNoFamilies(t *testing.T) {
	topo := MustNew(6,
		NewProcSet(0, 1),
		NewProcSet(2, 3),
		NewProcSet(4, 5),
	)
	if topo.HasCyclicFamilies() {
		t.Fatalf("disjoint groups must have no cyclic family")
	}
}

// TestAcyclicChainHasNoFamilies: a chain g0-g1-g2 whose intersection graph is
// a path is not hamiltonian.
func TestAcyclicChainHasNoFamilies(t *testing.T) {
	topo := MustNew(5,
		NewProcSet(0, 1),
		NewProcSet(1, 2, 3),
		NewProcSet(3, 4),
	)
	if topo.HasCyclicFamilies() {
		t.Fatalf("chain topology must be acyclic, got %v", topo.Families())
	}
}

// TestTriangleIsCyclic: three pairwise-intersecting groups form one family.
func TestTriangleIsCyclic(t *testing.T) {
	topo := MustNew(3,
		NewProcSet(0, 1),
		NewProcSet(1, 2),
		NewProcSet(2, 0),
	)
	fams := topo.Families()
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	f := fams[0]
	if f.Groups.Count() != 3 {
		t.Fatalf("family = %v", f.Groups)
	}
	// A triangle has two closed paths from the canonical start (both
	// orientations), equivalent to each other.
	if len(f.CPaths) != 2 {
		t.Fatalf("|cpaths| = %d, want 2", len(f.CPaths))
	}
	if !PathsEquivalent(f.CPaths[0], f.CPaths[1]) {
		t.Fatalf("triangle orientations should be equivalent")
	}
	if PathDirection(f.CPaths[0]) == 0 {
		t.Fatalf("direction must be ±1")
	}
}

func TestCPathsAreClosedAndComplete(t *testing.T) {
	topo := Figure1()
	for _, f := range topo.Families() {
		for _, path := range f.CPaths {
			if path[0] != path[len(path)-1] {
				t.Fatalf("path %v not closed", path)
			}
			if len(path) != f.Groups.Count()+1 {
				t.Fatalf("path %v does not visit all of %v once", path, f.Groups)
			}
			seen := GroupSet(0)
			for _, g := range path[:len(path)-1] {
				if seen.Has(g) {
					t.Fatalf("path %v repeats %v", path, g)
				}
				seen = seen.Add(g)
			}
			if seen != f.Groups {
				t.Fatalf("path %v misses groups of %v", path, f.Groups)
			}
			for i := 0; i+1 < len(path); i++ {
				if !topo.Intersecting(path[i], path[i+1]) {
					t.Fatalf("path %v uses non-edge (%v,%v)", path, path[i], path[i+1])
				}
			}
		}
	}
}

// TestFourCycleDirections: a 4-cycle has exactly two inequivalent closed
// paths... no — a plain 4-cycle has a single hamiltonian cycle up to
// orientation, so cpaths has 2 entries that are equivalent.
func TestFourCycleOrientations(t *testing.T) {
	topo := MustNew(4,
		NewProcSet(0, 1),
		NewProcSet(1, 2),
		NewProcSet(2, 3),
		NewProcSet(3, 0),
	)
	fams := topo.Families()
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	f := fams[0]
	if len(f.CPaths) != 2 {
		t.Fatalf("|cpaths| = %d, want 2 (both orientations)", len(f.CPaths))
	}
	if !PathsEquivalent(f.CPaths[0], f.CPaths[1]) {
		t.Fatalf("4-cycle orientations must be edge-equivalent")
	}
	dirSum := PathDirection(f.CPaths[0]) + PathDirection(f.CPaths[1])
	if dirSum != 0 {
		t.Fatalf("orientations should have opposite directions, got sum %d", dirSum)
	}
}

// TestCompleteGraphK4HasMultipleCycleClasses: K4 has three inequivalent
// hamiltonian cycles.
func TestCompleteGraphK4HasMultipleCycleClasses(t *testing.T) {
	// Four groups all sharing process 0 pairwise plus distinct members.
	topo := MustNew(5,
		NewProcSet(0, 1),
		NewProcSet(0, 2),
		NewProcSet(0, 3),
		NewProcSet(0, 4),
	)
	var full *Family
	for i := range topo.Families() {
		f := &topo.Families()[i]
		if f.Groups.Count() == 4 {
			full = f
		}
	}
	if full == nil {
		t.Fatalf("K4 family missing")
	}
	classes := 0
	var reps [][]GroupID
outer:
	for _, p := range full.CPaths {
		for _, r := range reps {
			if PathsEquivalent(p, r) {
				continue outer
			}
		}
		reps = append(reps, p)
		classes++
	}
	if classes != 3 {
		t.Fatalf("K4 has %d cycle classes, want 3", classes)
	}
}

func TestConsensusFamilyLemma30(t *testing.T) {
	// Lemma 30: for f ∈ F with g,g',g'' ∈ f, p ∈ g∩g' and p' ∈ g∩g'',
	// H(p,g) = H(p',g) where H(q,g) = ConsensusFamily(q,g).
	topo := Figure1()
	for _, f := range topo.Families() {
		members := f.Groups.Members()
		for _, g := range members {
			var want GroupSet
			first := true
			for _, gp := range members {
				if gp == g {
					continue
				}
				inter := topo.Intersection(g, gp)
				for _, p := range inter.Members() {
					got := topo.ConsensusFamily(p, g)
					if first {
						want, first = got, false
					} else if got != want {
						t.Fatalf("H(%v,%v)=%v differs from %v (family %v)",
							p, g, got, want, f.Groups)
					}
				}
			}
		}
	}
}

func TestLemma30_HEquality_Random(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		topo := randomTopology(rng, 8, 5)
		for _, f := range topo.Families() {
			members := f.Groups.Members()
			for _, g := range members {
				var want GroupSet
				first := true
				for _, gp := range members {
					if gp == g || !topo.Intersecting(g, gp) {
						continue
					}
					for _, p := range topo.Intersection(g, gp).Members() {
						got := topo.ConsensusFamily(p, g)
						if first {
							want, first = got, false
						} else if got != want {
							t.Fatalf("trial %d: H mismatch on %v", trial, topo)
						}
					}
				}
			}
		}
	}
}

func randomTopology(rng *rand.Rand, n, k int) *Topology {
	gs := make([]ProcSet, 0, k)
	for i := 0; i < k; i++ {
		var g ProcSet
		for g.Count() < 2 {
			g = g.Add(Process(rng.Intn(n)))
		}
		// occasionally a third member
		if rng.Intn(2) == 0 {
			g = g.Add(Process(rng.Intn(n)))
		}
		gs = append(gs, g)
	}
	return MustNew(n, gs...)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("want error for n=0")
	}
	if _, err := New(2, ProcSet(0)); err == nil {
		t.Errorf("want error for empty group")
	}
	if _, err := New(2, NewProcSet(5)); err == nil {
		t.Errorf("want error for out-of-range member")
	}
	if _, err := New(65); err == nil {
		t.Errorf("want error for too many processes")
	}
}

func TestGroupsOf(t *testing.T) {
	topo := Figure1()
	// p1 (index 0) belongs to g1, g3, g4 = groups 0, 2, 3.
	if got := topo.GroupsOf(0); got != NewGroupSet(0, 2, 3) {
		t.Fatalf("G(p1) = %v", got)
	}
	// p5 (index 4) only belongs to g4.
	if got := topo.GroupsOf(4); got != NewGroupSet(3) {
		t.Fatalf("G(p5) = %v", got)
	}
}

func TestIntersectingGroups(t *testing.T) {
	topo := Figure1()
	// g2 (index 1) intersects g1 and g3.
	got := topo.IntersectingGroups(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("IntersectingGroups(g2) = %v", got)
	}
}

func TestIntersectionGraphAdjacency(t *testing.T) {
	topo := Figure1()
	all := []GroupID{0, 1, 2, 3}
	adj := topo.IntersectionGraph(all)
	// g2 (idx 1) is adjacent to g1 (idx 0) and g3 (idx 2) only.
	if len(adj[1]) != 2 {
		t.Fatalf("deg(g2) = %d, want 2", len(adj[1]))
	}
	// g1 intersects g2, g3, g4.
	if len(adj[0]) != 3 {
		t.Fatalf("deg(g1) = %d, want 3", len(adj[0]))
	}
}
