// Package groups models processes, destination groups, intersection graphs,
// and the cyclic families of Sutra's genuine atomic multicast paper (PODC'22).
//
// A family of destination groups is cyclic when its intersection graph is
// hamiltonian. The cyclicity failure detector γ and the core multicast
// algorithm are both parameterised by this structure, which this package
// computes once per topology.
package groups

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Process identifies a process. Processes are numbered from 0.
type Process int

// ProcSet is a set of processes represented as a bitmask. The representation
// bounds a topology to 64 processes, which is far beyond the group sizes the
// paper reasons about (its running example has five processes).
type ProcSet uint64

// MaxProcesses is the largest number of processes a ProcSet can hold.
const MaxProcesses = 64

// NewProcSet builds a set from the given processes.
func NewProcSet(ps ...Process) ProcSet {
	var s ProcSet
	for _, p := range ps {
		s = s.Add(p)
	}
	return s
}

// Add returns the set with p added.
func (s ProcSet) Add(p Process) ProcSet { return s | 1<<uint(p) }

// Remove returns the set with p removed.
func (s ProcSet) Remove(p Process) ProcSet { return s &^ (1 << uint(p)) }

// Has reports whether p is in the set.
func (s ProcSet) Has(p Process) bool { return s&(1<<uint(p)) != 0 }

// Union returns s ∪ t.
func (s ProcSet) Union(t ProcSet) ProcSet { return s | t }

// Intersect returns s ∩ t.
func (s ProcSet) Intersect(t ProcSet) ProcSet { return s & t }

// Diff returns s \ t.
func (s ProcSet) Diff(t ProcSet) ProcSet { return s &^ t }

// Empty reports whether the set has no members.
func (s ProcSet) Empty() bool { return s == 0 }

// Count returns the number of members.
func (s ProcSet) Count() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports whether every member of s is in t.
func (s ProcSet) SubsetOf(t ProcSet) bool { return s&^t == 0 }

// Members returns the processes in the set in increasing order.
func (s ProcSet) Members() []Process {
	out := make([]Process, 0, s.Count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, Process(bits.TrailingZeros64(v)))
	}
	return out
}

// Min returns the smallest member. It panics on the empty set.
func (s ProcSet) Min() Process {
	if s == 0 {
		panic("groups: Min of empty ProcSet")
	}
	return Process(bits.TrailingZeros64(uint64(s)))
}

// String renders the set as {p0,p3,...}.
func (s ProcSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "p%d", p)
	}
	b.WriteByte('}')
	return b.String()
}

// SortProcesses sorts a slice of processes in place.
func SortProcesses(ps []Process) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}
