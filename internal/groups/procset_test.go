package groups

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProcSetBasics(t *testing.T) {
	s := NewProcSet(0, 3, 5)
	if got := s.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if !s.Has(3) || s.Has(1) {
		t.Fatalf("membership wrong: %v", s)
	}
	s = s.Add(1)
	if !s.Has(1) {
		t.Fatalf("Add failed")
	}
	s = s.Remove(3)
	if s.Has(3) {
		t.Fatalf("Remove failed")
	}
	if got := s.Min(); got != 0 {
		t.Fatalf("Min = %d, want 0", got)
	}
}

func TestProcSetMembersRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := ProcSet(raw)
		rebuilt := NewProcSet(s.Members()...)
		return rebuilt == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcSetAlgebra(t *testing.T) {
	f := func(a, b uint64) bool {
		s, u := ProcSet(a), ProcSet(b)
		inter := s.Intersect(u)
		union := s.Union(u)
		diff := s.Diff(u)
		if !inter.SubsetOf(s) || !inter.SubsetOf(u) {
			return false
		}
		if !s.SubsetOf(union) || !u.SubsetOf(union) {
			return false
		}
		if !diff.SubsetOf(s) || !diff.Intersect(u).Empty() {
			return false
		}
		// |A∪B| = |A| + |B| - |A∩B|
		return union.Count() == s.Count()+u.Count()-inter.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcSetMembersSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := ProcSet(rng.Uint64())
		ms := s.Members()
		for j := 1; j < len(ms); j++ {
			if ms[j-1] >= ms[j] {
				t.Fatalf("Members not sorted: %v", ms)
			}
		}
	}
}

func TestProcSetString(t *testing.T) {
	if got := NewProcSet(0, 2).String(); got != "{p0,p2}" {
		t.Fatalf("String = %q", got)
	}
	if got := ProcSet(0).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestProcSetMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProcSet(0).Min()
}

func TestGroupSetBasics(t *testing.T) {
	s := NewGroupSet(1, 3)
	if !s.Has(1) || !s.Has(3) || s.Has(0) {
		t.Fatalf("membership wrong: %v", s)
	}
	if got := s.Count(); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	if got := s.String(); got != "{g1,g3}" {
		t.Fatalf("String = %q", got)
	}
	union := s.Union(NewGroupSet(0))
	if union.Count() != 3 {
		t.Fatalf("Union wrong: %v", union)
	}
	if !s.Intersect(NewGroupSet(3, 5)).Has(3) {
		t.Fatalf("Intersect wrong")
	}
}
