package groups

import (
	"math/rand"
	"testing"
)

// bruteForceHamiltonian checks hamiltonicity of the intersection graph of a
// family by trying every permutation — the reference implementation the
// backtracking search is validated against.
func bruteForceHamiltonian(t *Topology, f []GroupID) bool {
	n := len(f)
	if n < 3 {
		return false
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var try func(k int) bool
	try = func(k int) bool {
		if k == n {
			// Closed: every consecutive pair plus the wrap edge intersect.
			for i := 0; i < n; i++ {
				a, b := f[perm[i]], f[perm[(i+1)%n]]
				if !t.Intersecting(a, b) {
					return false
				}
			}
			return true
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				perm[k], perm[i] = perm[i], perm[k]
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return try(1) // fix the start to kill rotations
}

// TestFamiliesMatchBruteForce cross-checks the cyclic-family enumeration
// against the permutation-based reference on random topologies.
func TestFamiliesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 80; trial++ {
		n := 4 + rng.Intn(3)
		k := 3 + rng.Intn(3)
		gs := make([]ProcSet, k)
		for i := range gs {
			var g ProcSet
			for g.Count() < 2 {
				g = g.Add(Process(rng.Intn(n)))
			}
			gs[i] = g
		}
		topo := MustNew(n, gs...)
		isFamily := map[GroupSet]bool{}
		for _, f := range topo.Families() {
			isFamily[f.Groups] = true
		}
		// Enumerate every subset of size >= 3 and compare.
		for mask := GroupSet(1); mask < GroupSet(1)<<uint(k); mask++ {
			if mask.Count() < 3 {
				continue
			}
			members := make([]GroupID, 0, mask.Count())
			for _, g := range mask.Members() {
				members = append(members, g)
			}
			want := bruteForceHamiltonian(topo, members)
			if got := isFamily[mask]; got != want {
				t.Fatalf("trial %d: family %v: enumeration=%v brute=%v (%v)",
					trial, mask, got, want, topo)
			}
		}
	}
}

// TestCPathsMatchBruteForceCount: the closed paths found per family agree
// with the brute-force count of distinct hamiltonian cycles from the
// canonical start (both orientations).
func TestCPathsMatchBruteForceCount(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 40; trial++ {
		topo := randomTopology(rng, 6, 4)
		for _, f := range topo.Families() {
			members := f.Groups.Members()
			n := len(members)
			// Count permutations fixing the first element whose cycles are
			// valid — exactly what hamiltonianCycles enumerates.
			count := 0
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			var rec func(k int)
			rec = func(k int) {
				if k == n {
					ok := true
					for i := 0; i < n; i++ {
						a := members[perm[i]]
						b := members[perm[(i+1)%n]]
						if !topo.Intersecting(a, b) {
							ok = false
							break
						}
					}
					if ok {
						count++
					}
					return
				}
				for i := k; i < n; i++ {
					perm[k], perm[i] = perm[i], perm[k]
					rec(k + 1)
					perm[k], perm[i] = perm[i], perm[k]
				}
			}
			rec(1)
			if count != len(f.CPaths) {
				t.Fatalf("trial %d: family %v: %d cpaths, brute force %d",
					trial, f.Groups, len(f.CPaths), count)
			}
		}
	}
}
