package cliconf

import (
	"flag"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/groups"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Tool identifies a command-line consumer of the shared flag surface.
type Tool uint16

const (
	ToolAmcast Tool = 1 << iota
	ToolAmcastd
	ToolBenchtab
	ToolNemesis
	ToolLoadsim
)

// Common receives the shared flag values at Parse time. Bind declares on a
// FlagSet exactly the subset of the surface the given tool consumes; fields
// whose flags were not declared keep their zero value. The table below is
// the single declaration site — before it, every tool re-declared its own
// copies of these flags (four drifting usage strings for -seed alone), and
// a new shared flag like -data-dir had to be added four times.
type Common struct {
	Groups  string // -groups: topology spec (ParseGroups)
	Msgs    string // -msgs: multicast schedule (ParseMulticasts)
	Crash   string // -crash: crash schedule (ParseCrashes)
	Variant string // -variant: protocol variant (ParseVariant)
	Delay   int64  // -delay: failure-detector stabilisation (ticks)
	Seed    int64  // -seed: run seed (detectors, fault schedules)
	Report  bool   // -report: print the obs.RunReport
	ID      int    // -id: the process this daemon embodies
	Peers   string // -peers: address list (ParsePeers)
	Timeout time.Duration
	Linger  time.Duration
	DataDir string // -data-dir: WAL directory ("" = in-memory, no recovery)
	Fsync   string // -fsync: "sync" | "none" (file WAL durability barrier)

	Transport    string  // -transport: live backend transport ("mem" | "tcp")
	JSON         string  // -json: write results as a BENCH document here
	Baseline     string  // -baseline: prior BENCH document to diff/gate against
	Scenarios    string  // -scenarios: comma-separated scenario names ("all")
	ScenarioFile string  // -scenario-file: JSON scenario list replacing the catalog
	LoadScale    float64 // -load-scale: multiply every scenario's arrival count
}

// flagSpecs is the declarative flag table: each shared flag appears exactly
// once, with the set of tools that consume it.
var flagSpecs = []struct {
	tools Tool
	reg   func(fs *flag.FlagSet, c *Common)
}{
	{ToolAmcast | ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Groups, "groups", "0,1;1,2;0,2", "semicolon-separated groups (comma-separated members)")
	}},
	{ToolAmcast | ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Msgs, "msgs", "0>0;1>1", "semicolon-separated multicasts src>group[@tick][#class] (#free / #<n> tag conflict classes under -variant generic)")
	}},
	{ToolAmcast | ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Crash, "crash", "", "semicolon-separated crashes proc@tick")
	}},
	{ToolAmcast | ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Variant, "variant", "vanilla", "vanilla | strict | pairwise | strong | generic")
	}},
	{ToolAmcast | ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.Int64Var(&c.Delay, "delay", 8, "failure-detector stabilisation delay (ticks)")
	}},
	{ToolAmcast | ToolAmcastd | ToolNemesis | ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.Int64Var(&c.Seed, "seed", 1, "run seed: failure detectors, fault schedules and workload streams (must match across daemons; (scenario, seed) replays a loadsim stream)")
	}},
	{ToolAmcast | ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.BoolVar(&c.Report, "report", false, "print the obs.RunReport before exiting")
	}},
	{ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.IntVar(&c.ID, "id", -1, "process ID this daemon embodies (index into -peers)")
	}},
	{ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Peers, "peers", "", "comma-separated host:port per process, indexed by ID")
	}},
	{ToolAmcastd | ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.DurationVar(&c.Timeout, "timeout", 60*time.Second, "how long to wait for delivery to complete (amcastd: local delivery; loadsim: per-scenario drain)")
	}},
	{ToolAmcastd, func(fs *flag.FlagSet, c *Common) {
		fs.DurationVar(&c.Linger, "linger", 2*time.Second, "how long to stay up after local delivery so peers can finish")
	}},
	{ToolAmcastd | ToolBenchtab, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.DataDir, "data-dir", "", "write-ahead-log directory (amcastd: empty runs in-memory with no crash recovery; benchtab: base dir for the file-WAL rows, empty uses the system temp dir)")
	}},
	{ToolAmcastd | ToolBenchtab, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Fsync, "fsync", "sync", "file-WAL durability barrier: sync (fsync on commit) | none (OS buffering only; benchtab also skips the fsync'd row)")
	}},
	{ToolBenchtab | ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Transport, "transport", "mem", "live-backend transport: mem (in-memory channels) | tcp (loopback sockets + binary codec)")
	}},
	{ToolBenchtab | ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.JSON, "json", "", "write results as a versioned BENCH document to this path")
	}},
	{ToolBenchtab | ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Baseline, "baseline", "", "prior BENCH document; print per-row deltas against it (same schema version only)")
	}},
	{ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.Scenarios, "scenarios", "all", "comma-separated scenario names to run, in order (\"all\" runs the whole catalog)")
	}},
	{ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.StringVar(&c.ScenarioFile, "scenario-file", "", "JSON scenario list replacing the built-in catalog (the serialized form of []workload.Scenario)")
	}},
	{ToolLoadsim, func(fs *flag.FlagSet, c *Common) {
		fs.Float64Var(&c.LoadScale, "load-scale", 1, "multiply every scenario's arrival count (changes the stream, so digests differ from scale-1 baselines)")
	}},
}

// Bind declares tool's share of the declarative flag surface on fs and
// returns the struct the parsed values land in. Call before fs.Parse.
func Bind(fs *flag.FlagSet, tool Tool) *Common {
	c := &Common{}
	for _, s := range flagSpecs {
		if s.tools&tool != 0 {
			s.reg(fs, c)
		}
	}
	return c
}

// OpenWAL builds process p's write-ahead log from the shared -data-dir and
// -fsync flags: an empty dataDir yields a fresh in-memory WAL (group-commit
// semantics, nothing survives the OS process), otherwise a file WAL under
// dataDir/p<ID> with the requested barrier mode. Counters may be nil.
func OpenWAL(dataDir, fsync string, p groups.Process, c *obs.WALCounters) (storage.WAL, error) {
	switch fsync {
	case "sync", "none":
	default:
		return nil, fmt.Errorf("bad -fsync mode %q (want sync or none)", fsync)
	}
	if dataDir == "" {
		return storage.NewMem().Observe(c), nil
	}
	return storage.OpenFile(filepath.Join(dataDir, fmt.Sprintf("p%d", p)), storage.FileOptions{
		NoFsync:  fsync == "none",
		Counters: c,
	})
}
