// Package cliconf parses the textual scenario specs the command-line tools
// share: group lists, multicast schedules, crash schedules, protocol
// variants, and peer-address lists. cmd/amcast (single-process runs) and
// cmd/amcastd (one daemon per process) parse identical specs — a
// multi-process deployment only works if every daemon reconstructs exactly
// the same scenario, so the parsing lives in one place.
package cliconf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// MulticastSpec is one parsed -msgs entry: src>group[@time][#class].
// Class is the conflict-class tag of the generic variant: "#free" marks a
// message commuting with everything, "#<n>" a keyed class (equal keys
// conflict), and no suffix the conflicts-with-all default.
type MulticastSpec struct {
	At    failure.Time
	Src   groups.Process
	G     groups.GroupID
	Class msg.Class
}

// ParseGroups parses the -groups spec: semicolon-separated groups, each a
// comma-separated member list ("0,1;1,2;0,2,3").
func ParseGroups(spec string) (*groups.Topology, error) {
	var sets []groups.ProcSet
	maxP := 0
	for _, gs := range strings.Split(spec, ";") {
		var set groups.ProcSet
		for _, ms := range strings.Split(gs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(ms))
			if err != nil {
				return nil, fmt.Errorf("bad group member %q: %w", ms, err)
			}
			if p > maxP {
				maxP = p
			}
			set = set.Add(groups.Process(p))
		}
		sets = append(sets, set)
	}
	return groups.New(maxP+1, sets...)
}

// ParseCrashes parses the -crash spec ("p@t;q@t", empty allowed) onto a
// fresh failure pattern over n processes.
func ParseCrashes(spec string, n int) (*failure.Pattern, error) {
	pat := failure.NewPattern(n)
	if spec == "" {
		return pat, nil
	}
	for _, cs := range strings.Split(spec, ";") {
		parts := strings.Split(cs, "@")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad crash spec %q", cs)
		}
		p, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		t, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad crash spec %q", cs)
		}
		pat = pat.WithCrash(groups.Process(p), failure.Time(t))
	}
	return pat, nil
}

// ParseVariant maps the -variant flag onto the protocol variant.
func ParseVariant(v string) (core.Variant, error) {
	switch v {
	case "vanilla":
		return core.Vanilla, nil
	case "strict":
		return core.Strict, nil
	case "pairwise":
		return core.Pairwise, nil
	case "strong":
		return core.StronglyGenuine, nil
	case "generic":
		return core.Generic, nil
	default:
		return 0, fmt.Errorf("unknown variant %q", v)
	}
}

// ParseMulticasts parses the -msgs spec ("src>g[@time][#class];...") sorted
// stably by issue time — the canonical schedule order every daemon must
// follow (message IDs are positional in the registry, so two daemons walking
// the schedule differently would disagree about which ID names which
// message). The #class suffix tags the message's conflict class for the
// generic variant: "#free" commutes with everything, "#<n>" is keyed class n
// (n ≥ 1; equal keys conflict), and no suffix means conflicts-with-all.
// Classes travel inside the spec, so identical -msgs flags give every daemon
// identical tags.
func ParseMulticasts(spec string) ([]MulticastSpec, error) {
	var msgs []MulticastSpec
	for _, ms := range strings.Split(spec, ";") {
		class := msg.ClassAll
		s := ms
		if i := strings.Index(s, "#"); i >= 0 {
			var err error
			class, err = parseClass(strings.TrimSpace(s[i+1:]))
			if err != nil {
				return nil, fmt.Errorf("bad message class in %q: %w", ms, err)
			}
			s = s[:i]
		}
		at := int64(0)
		if i := strings.Index(s, "@"); i >= 0 {
			var err error
			at, err = strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad message time in %q", ms)
			}
			s = s[:i]
		}
		parts := strings.Split(s, ">")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad message spec %q", ms)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		g, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad message spec %q", ms)
		}
		msgs = append(msgs, MulticastSpec{
			At:    failure.Time(at),
			Src:   groups.Process(src),
			G:     groups.GroupID(g),
			Class: class,
		})
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].At < msgs[j].At })
	return msgs, nil
}

// parseClass parses the #class suffix body.
func parseClass(s string) (msg.Class, error) {
	if s == "free" {
		return msg.ClassFree, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n == 0 || msg.Class(n) == msg.ClassFree {
		return 0, fmt.Errorf("keyed class %d is reserved", n)
	}
	return msg.Class(n), nil
}

// ParsePeers parses the -peers spec: a comma-separated address list indexed
// by process ID ("127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002").
func ParsePeers(spec string, n int) ([]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing -peers address list")
	}
	addrs := strings.Split(spec, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			return nil, fmt.Errorf("empty address at index %d in -peers", i)
		}
	}
	if len(addrs) != n {
		return nil, fmt.Errorf("-peers lists %d addresses for %d processes", len(addrs), n)
	}
	return addrs, nil
}
