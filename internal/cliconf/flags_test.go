package cliconf_test

import (
	"flag"
	"io"
	"testing"
	"time"

	"repro/internal/cliconf"
)

// bind builds a throwaway FlagSet for one tool.
func bind(tool cliconf.Tool) (*flag.FlagSet, *cliconf.Common) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs, cliconf.Bind(fs, tool)
}

// has reports whether the set declares a flag of that name.
func has(fs *flag.FlagSet, name string) bool { return fs.Lookup(name) != nil }

// TestLoadsimFlagSurface pins which shared flags the loadsim tool consumes:
// the campaign flags plus the shared seed/timeout/transport/json/baseline,
// and none of the daemon or topology-spec flags.
func TestLoadsimFlagSurface(t *testing.T) {
	fs, _ := bind(cliconf.ToolLoadsim)
	for _, name := range []string{
		"scenarios", "scenario-file", "load-scale",
		"transport", "json", "baseline", "seed", "timeout",
	} {
		if !has(fs, name) {
			t.Errorf("loadsim is missing shared flag -%s", name)
		}
	}
	for _, name := range []string{
		"groups", "msgs", "crash", "variant", "delay",
		"id", "peers", "linger", "data-dir", "fsync", "report",
	} {
		if has(fs, name) {
			t.Errorf("loadsim declares -%s, which it does not consume", name)
		}
	}
}

// TestLoadsimFlagParsing drives the loadsim surface end to end and checks
// the parsed values land in Common.
func TestLoadsimFlagParsing(t *testing.T) {
	fs, c := bind(cliconf.ToolLoadsim)
	err := fs.Parse([]string{
		"-scenarios", "steady,hot-group",
		"-scenario-file", "campaign.json",
		"-load-scale", "0.25",
		"-transport", "tcp",
		"-json", "out.json",
		"-baseline", "base.json",
		"-seed", "42",
		"-timeout", "90s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Scenarios != "steady,hot-group" || c.ScenarioFile != "campaign.json" ||
		c.LoadScale != 0.25 || c.Transport != "tcp" || c.JSON != "out.json" ||
		c.Baseline != "base.json" || c.Seed != 42 || c.Timeout != 90*time.Second {
		t.Fatalf("parsed values did not land: %+v", c)
	}
}

// TestLoadsimFlagDefaults pins the zero-argument campaign: the whole
// catalog, at scale, on the in-memory transport.
func TestLoadsimFlagDefaults(t *testing.T) {
	fs, c := bind(cliconf.ToolLoadsim)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Scenarios != "all" || c.LoadScale != 1 || c.Transport != "mem" ||
		c.Seed != 1 || c.Timeout != 60*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
}

// TestBenchtabSharesBenchFlags checks the bench flags moved into the table
// are declared for benchtab too (one declaration site, two consumers) while
// the campaign-only flags stay off its surface.
func TestBenchtabSharesBenchFlags(t *testing.T) {
	fs, _ := bind(cliconf.ToolBenchtab)
	for _, name := range []string{"transport", "json", "baseline", "data-dir", "fsync"} {
		if !has(fs, name) {
			t.Errorf("benchtab is missing shared flag -%s", name)
		}
	}
	for _, name := range []string{"scenarios", "scenario-file", "load-scale", "seed"} {
		if has(fs, name) {
			t.Errorf("benchtab declares -%s, which it does not consume", name)
		}
	}
}

// TestToolMasksDisjoint checks tools don't accidentally share an identity
// bit — the table dispatches on mask intersection.
func TestToolMasksDisjoint(t *testing.T) {
	tools := []cliconf.Tool{
		cliconf.ToolAmcast, cliconf.ToolAmcastd, cliconf.ToolBenchtab,
		cliconf.ToolNemesis, cliconf.ToolLoadsim,
	}
	for i, a := range tools {
		for _, b := range tools[i+1:] {
			if a&b != 0 {
				t.Fatalf("tool masks %b and %b overlap", a, b)
			}
		}
	}
}
