// Package chaos is the fault-injection (nemesis) layer for the live
// substrate: a net.Transport that wraps any other transport — in practice
// the reliable FIFO fabric of internal/net — and injects seeded,
// reproducible network faults between the protocols and the wire:
//
//   - per-link probabilistic drop,
//   - bounded random delay (per-link FIFO preserved by default),
//   - duplication,
//   - optional FIFO-breaking reorder,
//   - two-sided partitions with heal,
//   - recoverable process isolation ("down"/"up" — the network-level
//     crash/recover the fail-stop fabric underneath cannot express).
//
// Every per-packet decision (drop? duplicate? how much delay?) is a pure
// function of (seed, from, to, k) where k is the packet's sequence number
// on its directed link. Given a seed, each link therefore sees a fixed,
// replayable fault schedule no matter how goroutines interleave globally —
// the same discipline syzkaller-style harnesses use to make fuzzed failures
// reproducible from a one-line seed (see cmd/nemesis).
//
// The quorum substrates (internal/register, internal/paxos, internal/ofcons,
// internal/replog) are written against net.Transport, so they run unmodified
// over either fabric; their *_chaos_test.go files assert safety under an
// active nemesis and liveness once it quiesces — exactly the Σ/Ω assumptions
// of the paper's §4 (quorums stay intact, leaders eventually stabilise).
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/obs"
)

// Faults is the probabilistic fault mix applied to every packet on every
// link while set. Zero value = no faults (transparent pass-through).
type Faults struct {
	// Drop is the per-packet drop probability in [0,1].
	Drop float64
	// Dup is the per-packet duplication probability in [0,1].
	Dup float64
	// DelayMin/DelayMax bound a uniform random per-packet delay. DelayMax=0
	// disables delays.
	DelayMin, DelayMax time.Duration
	// Reorder allows delayed packets to overtake each other on a link
	// (FIFO-breaking). Without it, delays preserve per-link FIFO order.
	Reorder bool
}

// Stats counts what the nemesis did, by cause.
type Stats struct {
	Forwarded        uint64 // packets handed to the inner transport
	Duplicated       uint64 // extra copies injected
	Delayed          uint64 // packets that took a delay path
	DroppedRandom    uint64 // lost to the Drop probability
	DroppedPartition uint64 // lost to an active partition
	DroppedDown      uint64 // lost because an endpoint was down
	DroppedOverflow  uint64 // lost on a full delay-pipe queue
}

// link is a directed process pair.
type link struct{ from, to groups.Process }

// partition is a two-sided cut: traffic between a and b is severed.
type partition struct{ a, b groups.ProcSet }

// Chaos wraps an inner transport and injects faults. It implements
// net.Transport, so every substrate accepts it where it accepts the
// reliable network.
type Chaos struct {
	inner net.Transport
	seed  int64

	mu     sync.Mutex
	faults Faults
	seq    map[link]uint64
	parts  []partition
	down   map[groups.Process]bool
	pipes  map[link]chan delayed
	closed bool

	// Power-cycle hooks (see OnPowerCycle): what the harness does when a
	// process is kill -9'd and when it reboots.
	onPowerOff func(groups.Process)
	onPowerOn  func(groups.Process)

	done chan struct{}
	wg   sync.WaitGroup

	forwarded        atomic.Uint64
	duplicated       atomic.Uint64
	delayed          atomic.Uint64
	droppedRandom    atomic.Uint64
	droppedPartition atomic.Uint64
	droppedDown      atomic.Uint64
	droppedOverflow  atomic.Uint64
}

var _ net.Transport = (*Chaos)(nil)

// delayed is a packet scheduled for later delivery on a FIFO pipe.
type delayed struct {
	pkt net.Packet
	at  time.Time
}

// pipeDepth bounds a link's delay queue; overflow drops are counted.
const pipeDepth = 4096

// Wrap builds the nemesis transport over inner. All fault decisions derive
// from seed.
func Wrap(inner net.Transport, seed int64) *Chaos {
	return &Chaos{
		inner: inner,
		seed:  seed,
		seq:   make(map[link]uint64),
		down:  make(map[groups.Process]bool),
		pipes: make(map[link]chan delayed),
		done:  make(chan struct{}),
	}
}

// SetFaults swaps the active fault mix.
func (c *Chaos) SetFaults(f Faults) {
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

// Partition severs all traffic between the two sides (both directions).
// Partitions accumulate until Heal.
func (c *Chaos) Partition(a, b groups.ProcSet) {
	c.mu.Lock()
	c.parts = append(c.parts, partition{a, b})
	c.mu.Unlock()
}

// Isolate cuts p from every other process.
func (c *Chaos) Isolate(p groups.Process) {
	var rest groups.ProcSet
	for q := 0; q < c.inner.N(); q++ {
		if groups.Process(q) != p {
			rest = rest.Add(groups.Process(q))
		}
	}
	c.Partition(groups.NewProcSet(p), rest)
}

// Heal removes every partition.
func (c *Chaos) Heal() {
	c.mu.Lock()
	c.parts = nil
	c.mu.Unlock()
}

// Down makes p unreachable (all its traffic dropped) until Up — a
// recoverable network-level crash, unlike the permanent fail-stop Crash.
func (c *Chaos) Down(p groups.Process) {
	c.mu.Lock()
	c.down[p] = true
	c.mu.Unlock()
}

// Up recovers p.
func (c *Chaos) Up(p groups.Process) {
	c.mu.Lock()
	delete(c.down, p)
	c.mu.Unlock()
}

// Quiesce clears every injected fault: probabilities to zero, partitions
// healed, down processes recovered. Delayed packets still in flight drain
// within the old DelayMax. After Quiesce the fabric behaves reliably again,
// which is when the substrates' liveness obligations resume.
func (c *Chaos) Quiesce() {
	c.mu.Lock()
	c.faults = Faults{}
	c.parts = nil
	c.down = make(map[groups.Process]bool)
	c.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (c *Chaos) Stats() Stats {
	return Stats{
		Forwarded:        c.forwarded.Load(),
		Duplicated:       c.duplicated.Load(),
		Delayed:          c.delayed.Load(),
		DroppedRandom:    c.droppedRandom.Load(),
		DroppedPartition: c.droppedPartition.Load(),
		DroppedDown:      c.droppedDown.Load(),
		DroppedOverflow:  c.droppedOverflow.Load(),
	}
}

// Dropped sums all loss causes.
func (s Stats) Dropped() uint64 {
	return s.DroppedRandom + s.DroppedPartition + s.DroppedDown + s.DroppedOverflow
}

// InjectionReport returns the fault counters in run-report form. It
// implements obs.ChaosReporter.
func (c *Chaos) InjectionReport() *obs.ChaosReport {
	s := c.Stats()
	return &obs.ChaosReport{
		Forwarded:        s.Forwarded,
		Duplicated:       s.Duplicated,
		Delayed:          s.Delayed,
		DroppedRandom:    s.DroppedRandom,
		DroppedPartition: s.DroppedPartition,
		DroppedDown:      s.DroppedDown,
		DroppedOverflow:  s.DroppedOverflow,
	}
}

// NetReport exposes the inner transport's traffic counters when it has any,
// so wrapping a network in a nemesis does not hide its wire accounting.
func (c *Chaos) NetReport() *obs.NetReport {
	if nr, ok := c.inner.(obs.NetReporter); ok {
		return nr.NetReport()
	}
	return nil
}

// separated reports whether an active partition cuts the link (caller holds
// c.mu).
func (c *Chaos) separated(from, to groups.Process) bool {
	for _, pt := range c.parts {
		if (pt.a.Has(from) && pt.b.Has(to)) || (pt.a.Has(to) && pt.b.Has(from)) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// net.Transport

// N returns the number of processes.
func (c *Chaos) N() int { return c.inner.N() }

// Inbox returns the receive channel of p (the inner transport's).
func (c *Chaos) Inbox(p groups.Process) <-chan net.Packet { return c.inner.Inbox(p) }

// Crash silences p permanently on the inner transport.
func (c *Chaos) Crash(p groups.Process) { c.inner.Crash(p) }

// Restart revives p's endpoint when the inner transport can (net.Restarter);
// fabrics that model reconnection themselves make this a no-op. The nemesis
// keeps the Restarter capability visible through the wrapper, so harnesses
// written against net.Transport can power-cycle over chaos and reliable
// fabrics alike.
func (c *Chaos) Restart(p groups.Process) {
	if r, ok := c.inner.(net.Restarter); ok {
		r.Restart(p)
	}
}

var _ net.Restarter = (*Chaos)(nil)

// OnPowerCycle registers the recovery hooks the power-cycle events drive:
// off runs after p's endpoint is crashed (the harness drops p's unsynced WAL
// tail there — what kill -9 loses), on runs after the endpoint is restarted
// (the harness rebuilds p's node from its durable log there). Install before
// the nemesis starts; nil hooks are skipped.
func (c *Chaos) OnPowerCycle(off, on func(groups.Process)) {
	c.mu.Lock()
	c.onPowerOff, c.onPowerOn = off, on
	c.mu.Unlock()
}

// PowerOff kill -9s p: the endpoint crashes (peers see silence, exactly as
// for a fail-stop crash) and the power-off hook loses whatever the process
// had not made durable.
func (c *Chaos) PowerOff(p groups.Process) {
	c.mu.Lock()
	off := c.onPowerOff
	c.mu.Unlock()
	c.inner.Crash(p)
	if off != nil {
		off(p)
	}
}

// PowerOn reboots p: the endpoint restarts and the recovery hook rebuilds
// the process from its durable state.
func (c *Chaos) PowerOn(p groups.Process) {
	c.mu.Lock()
	on := c.onPowerOn
	c.mu.Unlock()
	c.Restart(p)
	if on != nil {
		on(p)
	}
}

// Crashed reports whether p was crashed.
func (c *Chaos) Crashed(p groups.Process) bool { return c.inner.Crashed(p) }

// Broadcast sends to every member of the set; each unicast draws its own
// fault decisions.
func (c *Chaos) Broadcast(from groups.Process, set groups.ProcSet, t net.MsgType, body any) {
	for _, p := range set.Members() {
		c.Send(from, p, t, body)
	}
}

// Send applies the active faults to one packet and forwards the survivors.
func (c *Chaos) Send(from, to groups.Process, t net.MsgType, body any) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.down[from] || c.down[to] {
		c.mu.Unlock()
		c.droppedDown.Add(1)
		return
	}
	if c.separated(from, to) {
		c.mu.Unlock()
		c.droppedPartition.Add(1)
		return
	}
	f := c.faults
	l := link{from, to}
	k := c.seq[l]
	c.seq[l] = k + 1
	c.mu.Unlock()

	r := newLinkRand(c.seed, from, to, k)
	if f.Drop > 0 && r.float() < f.Drop {
		c.droppedRandom.Add(1)
		return
	}
	copies := 1
	if f.Dup > 0 && r.float() < f.Dup {
		copies = 2
		c.duplicated.Add(1)
	}
	var delay time.Duration
	if f.DelayMax > 0 {
		span := f.DelayMax - f.DelayMin
		if span < 0 {
			span = 0
		}
		delay = f.DelayMin + time.Duration(r.float()*float64(span))
	}
	pkt := net.Packet{From: from, To: to, Type: t, Body: body}
	for i := 0; i < copies; i++ {
		c.deliver(l, pkt, delay, f.Reorder)
	}
}

// deliver routes one copy: directly, via a detached goroutine (reorder), or
// via the link's FIFO pipe (ordered delay).
func (c *Chaos) deliver(l link, pkt net.Packet, delay time.Duration, reorder bool) {
	if delay > 0 && reorder {
		c.delayed.Add(1)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-c.done:
				return
			}
			c.forward(pkt)
		}()
		return
	}
	c.mu.Lock()
	pipe, piped := c.pipes[l]
	if !piped && delay > 0 {
		// First delayed packet on this link: open its FIFO pipe. Once a
		// pipe exists, every later packet of the link goes through it, so
		// fresh zero-delay packets cannot overtake still-queued ones.
		pipe = make(chan delayed, pipeDepth)
		c.pipes[l] = pipe
		piped = true
		c.wg.Add(1)
		go c.runPipe(pipe)
	}
	c.mu.Unlock()
	if !piped {
		c.forward(pkt)
		return
	}
	if delay > 0 {
		c.delayed.Add(1)
	}
	select {
	case pipe <- delayed{pkt: pkt, at: time.Now().Add(delay)}:
	default:
		c.droppedOverflow.Add(1)
	}
}

// runPipe drains one link's delay queue in order, sleeping each packet to
// its delivery time — per-link FIFO is preserved because the sleeps happen
// sequentially.
func (c *Chaos) runPipe(pipe chan delayed) {
	defer c.wg.Done()
	for {
		select {
		case d := <-pipe:
			if wait := time.Until(d.at); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-c.done:
					t.Stop()
					return
				}
			}
			c.forward(d.pkt)
		case <-c.done:
			return
		}
	}
}

// forward hands a surviving packet to the inner transport.
func (c *Chaos) forward(pkt net.Packet) {
	c.forwarded.Add(1)
	c.inner.Send(pkt.From, pkt.To, pkt.Type, pkt.Body)
}

// Close stops the delay machinery, waits for it to drain, and closes the
// inner transport.
func (c *Chaos) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
	c.inner.Close()
}

// ---------------------------------------------------------------------------
// Seeded per-link randomness

// linkRand is a splitmix64 stream keyed by (seed, from, to, k): the k-th
// packet of a directed link always draws the same decisions for a given
// seed, independent of goroutine interleaving.
type linkRand struct{ state uint64 }

func newLinkRand(seed int64, from, to groups.Process, k uint64) *linkRand {
	s := uint64(seed)
	s ^= (uint64(from) + 1) * 0x9E3779B97F4A7C15
	s ^= (uint64(to) + 1) * 0xBF58476D1CE4E5B9
	s ^= (k + 1) * 0x94D049BB133111EB
	return &linkRand{state: s}
}

// next is splitmix64.
func (r *linkRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform value in [0,1).
func (r *linkRand) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
