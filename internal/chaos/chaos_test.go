package chaos

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/groups"
	"repro/internal/net"
)

// Test message types from the scratch block internal/wire reserves for
// transport tests (0xF0..0xFE).
const (
	tPing net.MsgType = 0xF0 + iota
	tM
	tCross
	tSame
)

// recv drains up to want packets from the inbox within the timeout and
// returns their bodies.
func recv(t *testing.T, nw net.Transport, p groups.Process, want int, timeout time.Duration) []int {
	t.Helper()
	var got []int
	deadline := time.After(timeout)
	for len(got) < want {
		select {
		case pkt := <-nw.Inbox(p):
			got = append(got, pkt.Body.(int))
		case <-deadline:
			return got
		}
	}
	return got
}

func TestPassThroughNoFaults(t *testing.T) {
	c := Wrap(net.New(2), 1)
	defer c.Close()
	c.Send(0, 1, tPing, 7)
	pkt := <-c.Inbox(1)
	if pkt.From != 0 || pkt.Type != tPing || pkt.Body.(int) != 7 {
		t.Fatalf("bad packet %+v", pkt)
	}
	if st := c.Stats(); st.Forwarded != 1 || st.Dropped() != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultScheduleDeterministic: the same seed produces the same per-link
// drop pattern, packet by packet, across independent transports.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		c := Wrap(net.New(2), seed)
		defer c.Close()
		c.SetFaults(Faults{Drop: 0.5})
		for i := 0; i < 200; i++ {
			c.Send(0, 1, tM, i)
		}
		return recv(t, c, 1, 200, 50*time.Millisecond)
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("drop=0.5 delivered %d/200", len(a))
	}
	if other := run(43); reflect.DeepEqual(a, other) {
		t.Fatalf("seeds 42 and 43 produced identical schedules")
	}
}

func TestDuplication(t *testing.T) {
	c := Wrap(net.New(2), 3)
	defer c.Close()
	c.SetFaults(Faults{Dup: 1.0})
	for i := 0; i < 10; i++ {
		c.Send(0, 1, tM, i)
	}
	got := recv(t, c, 1, 20, 50*time.Millisecond)
	if len(got) != 20 {
		t.Fatalf("dup=1 delivered %d copies, want 20", len(got))
	}
	if st := c.Stats(); st.Duplicated != 10 {
		t.Fatalf("Duplicated = %d, want 10", st.Duplicated)
	}
}

func TestPartitionBlocksThenHeals(t *testing.T) {
	c := Wrap(net.New(4), 5)
	defer c.Close()
	c.Partition(groups.NewProcSet(0, 1), groups.NewProcSet(2, 3))
	c.Send(0, 2, tCross, 1) // severed
	c.Send(2, 1, tCross, 2) // severed (other direction)
	c.Send(0, 1, tSame, 3)  // same side: delivered
	if got := recv(t, c, 1, 1, 50*time.Millisecond); len(got) != 1 || got[0] != 3 {
		t.Fatalf("same-side packet lost: %v", got)
	}
	if st := c.Stats(); st.DroppedPartition != 2 {
		t.Fatalf("DroppedPartition = %d, want 2", st.DroppedPartition)
	}
	c.Heal()
	c.Send(0, 2, tCross, 4)
	if got := recv(t, c, 2, 1, 50*time.Millisecond); len(got) != 1 || got[0] != 4 {
		t.Fatalf("post-heal packet lost: %v", got)
	}
}

func TestIsolate(t *testing.T) {
	c := Wrap(net.New(3), 5)
	defer c.Close()
	c.Isolate(1)
	c.Send(0, 1, tM, 1)
	c.Send(1, 2, tM, 2)
	c.Send(0, 2, tM, 3) // unaffected link
	if got := recv(t, c, 2, 1, 50*time.Millisecond); len(got) != 1 || got[0] != 3 {
		t.Fatalf("unaffected link broken: %v", got)
	}
	if st := c.Stats(); st.DroppedPartition != 2 {
		t.Fatalf("DroppedPartition = %d, want 2", st.DroppedPartition)
	}
}

func TestDownUp(t *testing.T) {
	c := Wrap(net.New(2), 5)
	defer c.Close()
	c.Down(1)
	c.Send(0, 1, tM, 1)
	c.Send(1, 0, tM, 2)
	if st := c.Stats(); st.DroppedDown != 2 {
		t.Fatalf("DroppedDown = %d, want 2", st.DroppedDown)
	}
	c.Up(1)
	c.Send(0, 1, tM, 3)
	if got := recv(t, c, 1, 1, 50*time.Millisecond); len(got) != 1 || got[0] != 3 {
		t.Fatalf("post-recovery packet lost: %v", got)
	}
}

// TestDelayPreservesFIFO: without Reorder, random delays keep per-link
// order.
func TestDelayPreservesFIFO(t *testing.T) {
	c := Wrap(net.New(2), 7)
	defer c.Close()
	c.SetFaults(Faults{DelayMin: 50 * time.Microsecond, DelayMax: 2 * time.Millisecond})
	const n = 50
	for i := 0; i < n; i++ {
		c.Send(0, 1, tM, i)
	}
	got := recv(t, c, 1, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO broken at %d: %v", i, got)
		}
	}
}

// TestReorderDeliversAll: with Reorder, every packet still arrives (order
// is intentionally scrambled).
func TestReorderDeliversAll(t *testing.T) {
	c := Wrap(net.New(2), 7)
	defer c.Close()
	c.SetFaults(Faults{DelayMax: 2 * time.Millisecond, Reorder: true})
	const n = 50
	for i := 0; i < n; i++ {
		c.Send(0, 1, tM, i)
	}
	got := recv(t, c, 1, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("lost or duplicated under reorder: %v", got)
	}
}

// TestQuiesceClearsEverything: after Quiesce the fabric is reliable again.
func TestQuiesceClearsEverything(t *testing.T) {
	c := Wrap(net.New(2), 9)
	defer c.Close()
	c.SetFaults(Faults{Drop: 1.0})
	c.Down(0)
	c.Isolate(1)
	c.Quiesce()
	c.Send(0, 1, tM, 1)
	if got := recv(t, c, 1, 1, 50*time.Millisecond); len(got) != 1 {
		t.Fatalf("post-quiesce packet lost")
	}
}

// TestCloseWithDelayedInFlight: closing with packets still in delay pipes
// neither panics nor deadlocks.
func TestCloseWithDelayedInFlight(t *testing.T) {
	c := Wrap(net.New(2), 11)
	c.SetFaults(Faults{DelayMin: 50 * time.Millisecond, DelayMax: 100 * time.Millisecond})
	for i := 0; i < 20; i++ {
		c.Send(0, 1, tM, i)
	}
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Close deadlocked on in-flight delayed packets")
	}
}

// TestPlanDeterministic: the nemesis schedule is a pure function of
// (seed, n, duration) — the seed-replay contract of cmd/nemesis.
func TestPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := NewPlan(seed, 5, 200*time.Millisecond)
		b := NewPlan(seed, 5, 200*time.Millisecond)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ:\n%s\n%s", seed, a, b)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: transcripts differ", seed)
		}
		last := a.Events[len(a.Events)-1]
		if last.Kind != EvQuiesce || last.At != 200*time.Millisecond {
			t.Fatalf("seed %d: plan does not end in a final quiesce: %s", seed, last)
		}
		for _, e := range a.Events {
			if e.At < 0 || e.At > 200*time.Millisecond {
				t.Fatalf("seed %d: event outside the run window: %s", seed, e)
			}
		}
	}
}

// TestNemesisRunQuiesces: after a plan finishes, the transport is clean.
func TestNemesisRunQuiesces(t *testing.T) {
	c := Wrap(net.New(3), 21)
	defer c.Close()
	nm := &Nemesis{C: c, Plan: NewPlan(21, 3, 30*time.Millisecond)}
	<-nm.Go()
	c.Send(0, 1, tM, 1)
	if got := recv(t, c, 1, 1, 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("transport still faulty after nemesis quiesced")
	}
}
