package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/groups"
)

// EventKind enumerates nemesis actions.
type EventKind int

const (
	// EvFaults swaps the probabilistic fault mix.
	EvFaults EventKind = iota
	// EvPartition installs a two-sided partition.
	EvPartition
	// EvIsolate cuts one process from everyone.
	EvIsolate
	// EvHeal removes every partition.
	EvHeal
	// EvDown takes a process down (recoverable).
	EvDown
	// EvUp recovers a down process.
	EvUp
	// EvQuiesce clears every fault; every plan ends with it.
	EvQuiesce
	// EvPowerOff kill -9s a process: a crash on the inner fabric plus the
	// registered power-off hook (which models losing unsynced WAL state).
	EvPowerOff
	// EvPowerOn reboots a powered-off process: the endpoint restarts and the
	// registered recovery hook rebuilds the node from its durable log.
	EvPowerOn
)

// Event is one scheduled nemesis action.
type Event struct {
	At   time.Duration // offset from the start of the run
	Kind EventKind
	F    Faults         // EvFaults
	A, B groups.ProcSet // EvPartition
	P    groups.Process // EvIsolate / EvDown / EvUp
}

// String renders the event deterministically (for seed-replay transcripts).
func (e Event) String() string {
	at := e.At.Round(time.Microsecond)
	switch e.Kind {
	case EvFaults:
		return fmt.Sprintf("%8s faults drop=%.3f dup=%.3f delay=[%s,%s] reorder=%v",
			at, e.F.Drop, e.F.Dup, e.F.DelayMin, e.F.DelayMax, e.F.Reorder)
	case EvPartition:
		return fmt.Sprintf("%8s partition %v | %v", at, e.A, e.B)
	case EvIsolate:
		return fmt.Sprintf("%8s isolate p%d", at, e.P)
	case EvHeal:
		return fmt.Sprintf("%8s heal", at)
	case EvDown:
		return fmt.Sprintf("%8s down p%d", at, e.P)
	case EvUp:
		return fmt.Sprintf("%8s up p%d", at, e.P)
	case EvQuiesce:
		return fmt.Sprintf("%8s quiesce", at)
	case EvPowerOff:
		return fmt.Sprintf("%8s power-off p%d", at, e.P)
	case EvPowerOn:
		return fmt.Sprintf("%8s power-on p%d", at, e.P)
	}
	return fmt.Sprintf("%8s ?", at)
}

// Plan is a seeded fault schedule over n processes. Two plans built from
// the same (seed, n, duration) are identical — that is the reproducibility
// contract cmd/nemesis exposes.
type Plan struct {
	Seed     int64
	N        int
	Duration time.Duration
	Events   []Event
}

// String renders the whole schedule.
func (pl Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nemesis plan seed=%d n=%d duration=%s\n", pl.Seed, pl.N, pl.Duration)
	for _, e := range pl.Events {
		b.WriteString("  " + e.String() + "\n")
	}
	return b.String()
}

// NewPlan generates the fault schedule for a run of n processes lasting
// duration. The generator keeps at most a minority of processes cut off
// (down or isolated) at any instant, so quorums of the full scope survive
// throughout — the Σ assumption — and it always ends with a quiesce, after
// which liveness obligations resume (the Ω stabilisation moment).
func NewPlan(seed int64, n int, duration time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed))
	steps := 6 + rng.Intn(7) // 6..12 events plus the final quiesce
	gap := duration / time.Duration(steps+1)
	pl := Plan{Seed: seed, N: n, Duration: duration}

	// The generator tracks how many processes are currently unreachable —
	// severed by a partition (partCut) or taken down (downSet) — and caps
	// the total at a minority.
	var partCut groups.ProcSet
	var downSet groups.ProcSet
	minority := (n - 1) / 2
	unreachable := func() int { return partCut.Union(downSet).Count() }

	randFaults := func() Faults {
		return Faults{
			Drop:     rng.Float64() * 0.15,
			Dup:      rng.Float64() * 0.10,
			DelayMax: time.Duration(rng.Intn(400)) * time.Microsecond,
			Reorder:  rng.Intn(2) == 0,
		}
	}
	for i := 1; i <= steps; i++ {
		at := gap * time.Duration(i)
		ev := Event{At: at}
		switch roll := rng.Float64(); {
		case roll < 0.40:
			ev.Kind, ev.F = EvFaults, randFaults()
		case roll < 0.55 && unreachable() < minority:
			// A two-sided partition with a minority side A.
			size := 1 + rng.Intn(minority-unreachable())
			var a groups.ProcSet
			for a.Count() < size {
				a = a.Add(groups.Process(rng.Intn(n)))
			}
			var b groups.ProcSet
			for p := 0; p < n; p++ {
				if !a.Has(groups.Process(p)) {
					b = b.Add(groups.Process(p))
				}
			}
			ev.Kind, ev.A, ev.B = EvPartition, a, b
			partCut = partCut.Union(a)
		case roll < 0.65 && unreachable() < minority:
			ev.Kind, ev.P = EvIsolate, groups.Process(rng.Intn(n))
			partCut = partCut.Add(ev.P)
		case roll < 0.80 && unreachable() < minority:
			ev.Kind, ev.P = EvDown, groups.Process(rng.Intn(n))
			downSet = downSet.Add(ev.P)
		case roll < 0.90 && !partCut.Empty():
			ev.Kind = EvHeal
			partCut = 0
		default:
			// Recover a down process if any, else reshuffle faults.
			if downs := downSet.Members(); len(downs) > 0 {
				ev.Kind, ev.P = EvUp, downs[rng.Intn(len(downs))]
				downSet = downSet.Remove(ev.P)
			} else {
				ev.Kind, ev.F = EvFaults, randFaults()
			}
		}
		pl.Events = append(pl.Events, ev)
	}
	pl.Events = append(pl.Events, Event{At: duration, Kind: EvQuiesce})
	return pl
}

// Apply executes one event against the transport.
func (c *Chaos) Apply(e Event) {
	switch e.Kind {
	case EvFaults:
		c.SetFaults(e.F)
	case EvPartition:
		c.Partition(e.A, e.B)
	case EvIsolate:
		c.Isolate(e.P)
	case EvHeal:
		c.Heal()
	case EvDown:
		c.Down(e.P)
	case EvUp:
		c.Up(e.P)
	case EvQuiesce:
		c.Quiesce()
	case EvPowerOff:
		c.PowerOff(e.P)
	case EvPowerOn:
		c.PowerOn(e.P)
	}
}

// NewPowerPlan generates a power-cycle fault schedule: a background of mild
// probabilistic faults plus a handful of kill -9 / reboot cycles, each
// pairing an EvPowerOff with an EvPowerOn before the next victim is hit, so
// at most one process is powered off at any instant — quorums of any scope
// with more than two members survive (Σ), and like every plan it ends with
// a quiesce. NewPlan's schedules are untouched: existing seed transcripts
// stay byte-identical.
func NewPowerPlan(seed int64, n int, duration time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed))
	pl := Plan{Seed: seed, N: n, Duration: duration}
	cycles := 2 + rng.Intn(3) // 2..4 power cycles
	seg := duration / time.Duration(cycles+1)
	pl.Events = append(pl.Events, Event{At: seg / 4, Kind: EvFaults, F: Faults{
		Drop:     rng.Float64() * 0.05,
		DelayMax: time.Duration(rng.Intn(200)) * time.Microsecond,
	}})
	for i := 0; i < cycles; i++ {
		base := seg * time.Duration(i+1)
		victim := groups.Process(rng.Intn(n))
		// The outage lasts between a quarter and half of a segment, so the
		// reboot always lands before the next cycle begins.
		outage := seg / 4
		if q := int64(seg / 4); q > 0 {
			outage += time.Duration(rng.Int63n(q))
		}
		pl.Events = append(pl.Events,
			Event{At: base, Kind: EvPowerOff, P: victim},
			Event{At: base + outage, Kind: EvPowerOn, P: victim},
		)
	}
	pl.Events = append(pl.Events, Event{At: duration, Kind: EvQuiesce})
	return pl
}

// Nemesis replays a plan against a Chaos transport in real time.
type Nemesis struct {
	C    *Chaos
	Plan Plan
}

// Run applies the plan's events at their offsets and returns after the
// final quiesce. It is the blocking form; Go runs it in the background.
func (nm *Nemesis) Run() {
	start := time.Now()
	for _, e := range nm.Plan.Events {
		if wait := e.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		nm.C.Apply(e)
	}
	// Defence in depth: whatever the plan contained, end quiet.
	nm.C.Quiesce()
}

// Go runs the plan in the background and returns a channel closed when the
// nemesis has quiesced.
func (nm *Nemesis) Go() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		nm.Run()
	}()
	return done
}
