package chaos_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/groups"
	"repro/internal/net"
	"repro/internal/register"
)

// TestNemesisRegisterWorkload is the randomized stress harness: a single
// writer and two readers run an ABD register workload while a seeded
// nemesis mauls the fabric with drops, delays, duplication, reorder,
// partitions and down/up cycles. Safety is asserted throughout —
// linearizability surrogates that need no offline checker: a reader's
// values never regress (single writer, increasing values), and no read
// invents a value. Liveness is asserted only after the nemesis quiesces
// and quorums are whole again — exactly the Σ/Ω obligations of §4.
//
// A failing seed replays outside the test as `go run ./cmd/nemesis -seed N`.
func TestNemesisRegisterWorkload(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const n = 5
			c := chaos.Wrap(net.New(n), seed)
			defer c.Close()
			var scope groups.ProcSet
			nodes := make([]*register.Node, n)
			for p := 0; p < n; p++ {
				nodes[p] = register.StartNode(c, groups.Process(p))
				scope = scope.Add(groups.Process(p))
			}
			reg := &register.Register{
				Name: "r", Scope: scope, Net: c,
				Quorum: register.Majority{Scope: scope},
			}

			nm := &chaos.Nemesis{C: c, Plan: chaos.NewPlan(seed, n, 150*time.Millisecond)}
			nmDone := nm.Go()

			// Writer: increasing values until the nemesis quiesces. Writes
			// may stall inside a partition window; they must finish after it.
			var lastWritten int64
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				w := nodes[0].Client(reg)
				for v := int64(1); ; v++ {
					if !w.Write(v) {
						return // network closed
					}
					lastWritten = v
					select {
					case <-nmDone:
						return
					case <-time.After(200 * time.Microsecond):
					}
				}
			}()

			// Readers: poll until writer and nemesis are done, recording
			// every value seen.
			var wg sync.WaitGroup
			seqs := make([][]int64, 2)
			for i := 0; i < 2; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := nodes[1+i].Client(reg)
					for {
						select {
						case <-writerDone:
							return
						default:
						}
						v, ok := r.Read()
						if !ok {
							return
						}
						seqs[i] = append(seqs[i], v)
						time.Sleep(100 * time.Microsecond)
					}
				}()
			}
			<-nmDone
			<-writerDone
			wg.Wait()

			// Safety: monotone reads, no invented values.
			for i, seq := range seqs {
				for j := 1; j < len(seq); j++ {
					if seq[j] < seq[j-1] {
						t.Fatalf("seed %d: reader %d regressed: %d after %d (replay: go run ./cmd/nemesis -seed %d)",
							seed, i, seq[j], seq[j-1], seed)
					}
				}
				for _, v := range seq {
					if v < 0 || v > lastWritten {
						t.Fatalf("seed %d: reader %d saw invented value %d (last written %d)",
							seed, i, v, lastWritten)
					}
				}
			}

			// Liveness after quiesce: every node converges on the final
			// written value.
			for p := 0; p < n; p++ {
				v, ok := nodes[p].Client(reg).Read()
				if !ok || v != lastWritten {
					st := c.Stats()
					t.Fatalf("seed %d: p%d final read = %d,%v; want %d (stats %+v)",
						seed, p, v, ok, lastWritten, st)
				}
			}
		})
	}
}

// TestNemesisInjectsFaults sanity-checks that generated plans actually
// exercise the fabric: across the seeds above, at least one run must have
// dropped or delayed something.
func TestNemesisInjectsFaults(t *testing.T) {
	c := chaos.Wrap(net.New(3), 4)
	defer c.Close()
	nm := &chaos.Nemesis{C: c, Plan: chaos.NewPlan(4, 3, 40*time.Millisecond)}
	done := nm.Go()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Broadcast(0, groups.NewProcSet(0, 1, 2), net.MsgType(0xF4), 1)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	// Drain inboxes so the inner network does not overflow.
	var drained sync.WaitGroup
	for p := 0; p < 3; p++ {
		p := p
		drained.Add(1)
		go func() {
			defer drained.Done()
			for range c.Inbox(groups.Process(p)) {
			}
		}()
	}
	<-done
	close(stop)
	st := c.Stats()
	if st.Dropped()+st.Delayed+st.Duplicated == 0 {
		t.Fatalf("nemesis plan injected nothing: %+v\n%s", st, nm.Plan)
	}
	c.Close()
	drained.Wait()
}
