package extract

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// twoGroups is the Appendix B setting: g = {0,1,2}, h = {1,2,3},
// g∩h = {1,2}.
func twoGroups() *groups.Topology {
	return groups.MustNew(4,
		groups.NewProcSet(0, 1, 2),
		groups.NewProcSet(1, 2, 3),
	)
}

// TestOmegaExtraction_CriticalIndex (Figure 4 / Proposition 70): in a
// failure-free run the traversal J_0..J_v finds a critical index — here the
// mixed configuration is bivalent (both delivery orders reachable).
func TestOmegaExtraction_CriticalIndex(t *testing.T) {
	topo := twoGroups()
	pat := failure.NewPattern(4)
	e := NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 28)

	tags := e.RootTags()
	// J_0 = (g,g) must be g-valent only; J_2 = (h,h) h-valent only.
	if !tags[0][0] || tags[0][1] {
		t.Fatalf("J_0 tags = %v, want g-valent", tags[0])
	}
	if !tags[2][1] || tags[2][0] {
		t.Fatalf("J_2 tags = %v, want h-valent", tags[2])
	}
	idx, univalent, _, found := e.CriticalIndex()
	if !found {
		t.Fatalf("no critical index found")
	}
	if univalent {
		t.Fatalf("failure-free mixed config should be bivalent critical")
	}
	if gv, hv := tags[idx][0], tags[idx][1]; !gv || !hv {
		t.Fatalf("critical index %d not bivalent: %v", idx, tags[idx])
	}
}

// TestOmegaExtraction_Gadgets (Figure 5 / Proposition 72): the bivalent
// tree contains a decision gadget whose deciding process is a correct
// member of g∩h.
func TestOmegaExtraction_Gadgets(t *testing.T) {
	topo := twoGroups()
	pat := failure.NewPattern(4)
	e := NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 28)
	idx, univalent, _, found := e.CriticalIndex()
	if !found || univalent {
		t.Fatalf("expected a bivalent critical index")
	}
	q, ok := e.Gadget(idx)
	if !ok {
		t.Fatalf("no decision gadget located")
	}
	if !topo.Intersection(0, 1).Has(q) {
		t.Fatalf("deciding process p%d outside g∩h", q)
	}
	if !pat.IsCorrect(q) {
		t.Fatalf("deciding process p%d faulty", q)
	}
}

// TestOmegaExtraction_UnivalentCritical (Proposition 71): with one member
// of g∩h initially crashed, adjacent configurations become g-valent and
// h-valent, and the connecting process — which the extraction returns — is
// the correct member.
func TestOmegaExtraction_UnivalentCritical(t *testing.T) {
	topo := twoGroups()
	pat := failure.NewPattern(4).WithCrash(2, 0) // p2 ∈ g∩h crashes at once
	e := NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 28)

	idx, univalent, connecting, found := e.CriticalIndex()
	if !found {
		t.Fatalf("no critical index")
	}
	if !univalent {
		t.Fatalf("expected univalent critical pair, got bivalent at %d", idx)
	}
	if connecting != 1 {
		t.Fatalf("connecting process = p%d, want p1 (the correct member)", connecting)
	}
	if !pat.IsCorrect(connecting) {
		t.Fatalf("Proposition 71 violated: connecting process faulty")
	}
}

// TestOmegaExtraction_Leadership: the emulated Ω_{g∩h} returns the same
// correct member of g∩h at every querying process — the leadership
// property.
func TestOmegaExtraction_Leadership(t *testing.T) {
	topo := twoGroups()
	for _, pat := range []*failure.Pattern{
		failure.NewPattern(4),
		failure.NewPattern(4).WithCrash(2, 0),
		failure.NewPattern(4).WithCrash(1, 0),
		failure.NewPattern(4).WithCrash(0, 0),
	} {
		e := NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 28)
		inter := topo.Intersection(0, 1)
		correct := pat.Correct().Intersect(inter)
		if correct.Empty() {
			continue
		}
		var leader groups.Process = -1
		for _, p := range correct.Members() {
			l, ok := e.Extract(p)
			if !ok {
				t.Fatalf("no output inside g∩h")
			}
			if !inter.Has(l) {
				t.Fatalf("extracted leader p%d outside g∩h (pat=%v)", l, pat)
			}
			if !pat.IsCorrect(l) {
				t.Fatalf("extracted leader p%d faulty (pat=%v)", l, pat)
			}
			if leader == -1 {
				leader = l
			} else if l != leader {
				t.Fatalf("processes disagree on the leader: p%d vs p%d", l, leader)
			}
		}
		// Outside the intersection: ⊥.
		if _, ok := e.Extract(0); ok && !inter.Has(0) {
			t.Fatalf("Ω_{g∩h} answered outside its scope")
		}
	}
}

// TestOmegaExtraction_BiggerIntersection: a three-process intersection
// exercises the longer chain J_0..J_3.
func TestOmegaExtraction_BiggerIntersection(t *testing.T) {
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1, 2, 3),
		groups.NewProcSet(1, 2, 3, 4),
	)
	pat := failure.NewPattern(5).WithCrash(3, 0)
	e := NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 36)
	inter := topo.Intersection(0, 1)
	l, ok := e.Extract(1)
	if !ok || !inter.Has(l) || !pat.IsCorrect(l) {
		t.Fatalf("extraction failed: leader=%v ok=%v", l, ok)
	}
}
