package extract

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
)

// IndicatorEmulation runs Algorithm 4: it emulates 1^{g∩h} from a strict
// solution A. Two instances run under the same failure pattern — A_g, in
// which only the processes of g \ h participate, and A_h with only h \ g —
// and in each every participant multicasts its identity to its group
// (lines 4-5). Strictness makes a delivery in either instance a proof that
// g∩h has crashed (Proposition 53), upon which the failed flag is raised at
// every process of g ∪ h (lines 6-9).
type IndicatorEmulation struct {
	topo *groups.Topology
	pat  *failure.Pattern
	g, h groups.GroupID

	// deliveredAt records when A_g (index 0) and A_h (index 1) first
	// delivered a message (Never if they did not).
	deliveredAt [2]failure.Time
	horizon     failure.Time
}

// NewIndicatorEmulation builds and runs the emulation for the intersecting
// pair (g, h).
func NewIndicatorEmulation(topo *groups.Topology, pat *failure.Pattern, opt core.Options, seed int64, g, h groups.GroupID) *IndicatorEmulation {
	if topo.Intersection(g, h).Empty() {
		panic("extract: Algorithm 4 needs intersecting groups")
	}
	opt.Variant = core.Strict
	opt.QuorumGate = true
	em := &IndicatorEmulation{topo: topo, pat: pat, g: g, h: h}
	em.deliveredAt[0] = em.runInstance(g, topo.Group(g).Diff(topo.Group(h)), opt, seed)
	em.deliveredAt[1] = em.runInstance(h, topo.Group(h).Diff(topo.Group(g)), opt, seed+1)
	em.horizon = pat.Horizon() + opt.FD.Delay + 64
	return em
}

// runInstance executes one instance: the participants multicast their
// identities to the group; the first delivery time is returned (Never when
// nothing was delivered).
func (em *IndicatorEmulation) runInstance(g groups.GroupID, participants groups.ProcSet, opt core.Options, seed int64) failure.Time {
	if participants.Empty() {
		return failure.Never
	}
	first := failure.Never
	s := core.NewSystemWithConfig(em.topo, em.pat, opt, engine.Config{
		Pattern:      em.pat,
		Seed:         seed,
		Policy:       engine.RandomOrder,
		Participants: participants,
		MaxSteps:     200_000,
	})
	for _, p := range participants.Members() {
		s.Multicast(p, g, []byte{byte(p)})
	}
	s.Run()
	for _, d := range s.Sh.Deliveries() {
		if first == failure.Never || d.T < first {
			first = d.T
		}
	}
	return first
}

// Faulty answers a query of the emulated 1^{g∩h} at (p, t): true once some
// instance delivered (by then the flag has reached every correct process of
// g ∪ h — we model the line-7 send as immediate).
func (em *IndicatorEmulation) Faulty(p groups.Process, t failure.Time) bool {
	scope := em.topo.Group(em.g).Union(em.topo.Group(em.h))
	if !scope.Has(p) {
		return false
	}
	for _, at := range em.deliveredAt {
		if at != failure.Never && t >= at {
			return true
		}
	}
	return false
}

// DeliveredAt exposes the instances' first delivery times (tests).
func (em *IndicatorEmulation) DeliveredAt() (failure.Time, failure.Time) {
	return em.deliveredAt[0], em.deliveredAt[1]
}

// Horizon returns the stabilisation time of the emulation.
func (em *IndicatorEmulation) Horizon() failure.Time { return em.horizon }
