package extract

import (
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/sim"
)

// OmegaExtraction implements Algorithm 5 / Appendix B: the CHT-style
// extraction of Ω_{g∩h} from a strongly genuine solution A and its failure
// detector D. Each process samples D, simulates the runs of A induced by
// the samples from a family of initial configurations (the processes of
// g∩h each multicast one message, to g or to h), tags the simulation forest
// with the valencies of the deliveries, and extracts an eventually-correct
// leader of g∩h from a critical index — univalent critical pairs give the
// connecting process (Proposition 71), bivalent roots give the deciding
// process of a decision gadget (Proposition 72).
//
// The simulated A is the leader-sequencer automaton of internal/sim; D is
// the ideal leader history over g∩h. The forest is explored to a bounded
// depth along a fair sampling sequence, which is enough for the tags of
// these finite protocols to stabilise.
type OmegaExtraction struct {
	topo  *groups.Topology
	pat   *failure.Pattern
	g, h  groups.GroupID
	inter groups.ProcSet
	scope groups.ProcSet

	auto  *sim.LeaderMulticast
	omega fd.Omega
	dag   *SampleDAG
	path  []SampleVertex
	depth int

	// chain is the Proposition 70 traversal J_0 .. J_v: J_i has the first
	// i members of g∩h (ascending) multicast to h and the rest to g.
	chain []*simTree
}

// simTree is one simulation tree Υ_i.
type simTree struct {
	root *simNode
}

// simNode is a schedule of the tree, stored with its configuration and
// accumulated tags.
type simNode struct {
	cfg      *sim.Config
	step     sim.Step // the step leading here (zero at the root)
	children []*simNode
	tags     map[groups.GroupID]bool
	depth    int
}

// NewOmegaExtraction builds the forest and tags it. depth bounds the
// explored schedules (20–40 covers the leader protocol's full executions
// for the small intersections the construction enumerates).
func NewOmegaExtraction(topo *groups.Topology, pat *failure.Pattern, g, h groups.GroupID, opt fd.Options, depth int) *OmegaExtraction {
	inter := topo.Intersection(g, h)
	if inter.Empty() {
		panic("extract: Algorithm 5 needs intersecting groups")
	}
	e := &OmegaExtraction{
		topo:  topo,
		pat:   pat,
		g:     g,
		h:     h,
		inter: inter,
		scope: topo.Group(g).Union(topo.Group(h)),
		auto:  &sim.LeaderMulticast{Topo: topo, G: g, H: h},
		omega: fd.NewOmega(pat, inter, opt),
		depth: depth,
	}
	// Collaborative sampling (Appendix B.1): the simulation schedules are
	// induced by a fair path of the shared sampling DAG.
	rounds := depth/e.scope.Count() + 2
	e.dag = BuildSampleDAG(pat, e.omega, e.scope, rounds)
	e.path = e.dag.FullPath()
	if len(e.path) < depth {
		e.depth = len(e.path)
	}
	members := inter.Members()
	for i := 0; i <= len(members); i++ {
		cfg := sim.NewConfig(e.auto, topo.NumProcesses())
		for j, q := range members {
			dst := e.g
			if j < i {
				dst = e.h
			}
			cfg.Inject(q, q, "GO", int64(dst), 0)
		}
		tree := &simTree{root: &simNode{cfg: cfg, tags: map[groups.GroupID]bool{}}}
		e.explore(tree.root)
		e.chain = append(e.chain, tree)
	}
	return e
}

// sampleAt returns the k-th vertex of the extraction's sampling path
// (crashed processes take no samples, so every vertex is a live step).
func (e *OmegaExtraction) sampleAt(k int) (groups.Process, sim.FDValue, bool) {
	if k >= len(e.path) {
		return 0, 0, false
	}
	v := e.path[k]
	return v.P, v.D, true
}

// explore expands a node along the sampling sequence, branching over every
// buffered message of the sampled process, and computes tags bottom-up.
func (e *OmegaExtraction) explore(n *simNode) {
	e.contributeTags(n)
	if n.depth >= e.depth {
		return
	}
	p, d, more := e.sampleAt(n.depth)
	if !more {
		return
	}
	pending := n.cfg.PendingFor(p)
	if len(pending) == 0 {
		// Only the null step is available; it does not change the
		// configuration of this protocol, so skip ahead.
		child := &simNode{cfg: n.cfg, depth: n.depth + 1, tags: map[groups.GroupID]bool{}}
		n.children = append(n.children, child)
		e.explore(child)
		e.mergeTags(n, child)
		return
	}
	for _, seq := range pending {
		step := sim.Step{P: p, MsgSeq: seq, D: d}
		child := &simNode{
			cfg:   n.cfg.Apply(e.auto, step),
			step:  step,
			depth: n.depth + 1,
			tags:  map[groups.GroupID]bool{},
		}
		n.children = append(n.children, child)
		e.explore(child)
		e.mergeTags(n, child)
	}
}

// contributeTags adds the node's own valency evidence: a process of g∩h
// whose first delivery is addressed to x contributes tag x.
func (e *OmegaExtraction) contributeTags(n *simNode) {
	for _, q := range e.inter.Members() {
		if len(n.cfg.Delivered[q]) == 0 {
			continue
		}
		n.tags[sim.LabelGroup(n.cfg.Delivered[q][0])] = true
	}
}

func (e *OmegaExtraction) mergeTags(n, child *simNode) {
	for t := range child.tags {
		n.tags[t] = true
	}
}

// valency returns (gValent, hValent) of a node.
func (n *simNode) valency(g, h groups.GroupID) (bool, bool) {
	return n.tags[g], n.tags[h]
}

// CriticalIndex implements the Proposition 70 traversal over the chain
// J_0..J_v: it returns the first critical index and whether it is
// univalent (with the connecting process) or bivalent.
func (e *OmegaExtraction) CriticalIndex() (idx int, univalent bool, connecting groups.Process, found bool) {
	members := e.inter.Members()
	for i := 0; i+1 <= len(members); i++ {
		gi, hi := e.chain[i].root.valency(e.g, e.h)
		gj, hj := e.chain[i+1].root.valency(e.g, e.h)
		if gi && !hi && hj && !gj {
			// J_i g-valent, J_{i+1} h-valent, adjacent via members[i].
			return i, true, members[i], true
		}
	}
	for i := range e.chain {
		g, h := e.chain[i].root.valency(e.g, e.h)
		if g && h {
			return i, false, 0, true
		}
	}
	return 0, false, 0, false
}

// GadgetKind classifies a decision gadget (Figure 5).
type GadgetKind int

const (
	// Fork: the deciding process's steps differ only in the detector
	// sample taken with the same message.
	Fork GadgetKind = iota + 1
	// Hook: the deciding process's steps consume different messages.
	Hook
)

// String renders the kind.
func (k GadgetKind) String() string {
	if k == Fork {
		return "fork"
	}
	return "hook"
}

// Gadget locates a decision gadget in tree idx: a bivalent node with a
// g-valent child and an h-valent child. All children of a node are steps of
// the same process (the sampling sequence fixes who moves), so that process
// is the deciding process, and by the Proposition 72 argument it must be
// correct and — when the index is critical — in g∩h.
func (e *OmegaExtraction) Gadget(idx int) (groups.Process, bool) {
	p, _, ok := e.findGadget(e.chain[idx].root)
	return p, ok
}

// GadgetKindAt also reports the gadget's Figure 5 shape.
func (e *OmegaExtraction) GadgetKindAt(idx int) (groups.Process, GadgetKind, bool) {
	return e.findGadget(e.chain[idx].root)
}

func (e *OmegaExtraction) findGadget(n *simNode) (groups.Process, GadgetKind, bool) {
	gv, hv := n.valency(e.g, e.h)
	if !gv || !hv {
		return 0, 0, false
	}
	var gChild, hChild *simNode
	for _, c := range n.children {
		cg, ch := c.valency(e.g, e.h)
		if cg && !ch && gChild == nil {
			gChild = c
		}
		if ch && !cg && hChild == nil {
			hChild = c
		}
	}
	if gChild != nil && hChild != nil && gChild.step != (sim.Step{}) {
		// The deciding process is the one whose step splits the valencies
		// (every real child of a node is a step of the same process).
		kind := Hook
		if gChild.step.MsgSeq == hChild.step.MsgSeq {
			kind = Fork // same message, different sample
		}
		return gChild.step.P, kind, true
	}
	for _, c := range n.children {
		if p, k, ok := e.findGadget(c); ok {
			return p, k, ok
		}
	}
	return 0, 0, false
}

// Extract answers a query of the emulated Ω_{g∩h} at process p: ⊥ outside
// the intersection; otherwise the leader extracted from the forest
// (Algorithm 5 lines 36-44). The forest is deterministic, so every querying
// process computes the same value — the agreement half of Ω's leadership.
func (e *OmegaExtraction) Extract(p groups.Process) (groups.Process, bool) {
	if !e.inter.Has(p) {
		return 0, false
	}
	idx, univalent, connecting, found := e.CriticalIndex()
	if found && univalent {
		return connecting, true
	}
	if found {
		if q, ok := e.Gadget(idx); ok && e.inter.Has(q) {
			return q, true
		}
	}
	return p, true
}

// RootTags exposes the root tag sets along the chain (figures/tests).
func (e *OmegaExtraction) RootTags() [][2]bool {
	out := make([][2]bool, len(e.chain))
	for i, tr := range e.chain {
		g, h := tr.root.valency(e.g, e.h)
		out[i] = [2]bool{g, h}
	}
	return out
}
