package extract

import (
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

func opts() core.Options {
	return core.Options{FD: fd.Options{Delay: 6}}
}

// TestSigmaEmulation_SingleGroup (Theorem 49, |G| = 1): the emulated Σ_g
// satisfies intersection perpetually and liveness eventually.
func TestSigmaEmulation_SingleGroup(t *testing.T) {
	topo := groups.MustNew(3, groups.NewProcSet(0, 1, 2))
	pat := failure.NewPattern(3).WithCrash(2, 15)
	em := NewSigmaEmulation(topo, pat, opts(), 1, 0)

	late := em.Horizon() + 50
	var quorums []groups.ProcSet
	for _, p := range topo.Group(0).Members() {
		if !pat.IsCorrect(p) {
			continue
		}
		q, ok := em.Quorum(p, late)
		if !ok || q.Empty() {
			t.Fatalf("no quorum at p%d", p)
		}
		if !q.SubsetOf(pat.Correct()) {
			t.Fatalf("stabilised quorum %v not ⊆ Correct %v (liveness)", q, pat.Correct())
		}
		quorums = append(quorums, q)
	}
	for i := range quorums {
		for j := range quorums {
			if quorums[i].Intersect(quorums[j]).Empty() {
				t.Fatalf("quorums %v and %v disjoint (intersection)", quorums[i], quorums[j])
			}
		}
	}
}

// TestSigmaEmulation_ResponsiveSets: only subsets containing the correct
// core of the group are responsive — a solo minority cannot drive the
// protocol past the quorum gate.
func TestSigmaEmulation_ResponsiveSets(t *testing.T) {
	topo := groups.MustNew(3, groups.NewProcSet(0, 1, 2))
	pat := failure.NewPattern(3) // everyone correct
	em := NewSigmaEmulation(topo, pat, opts(), 2, 0)
	resp := em.Responsive(0)
	full := groups.NewProcSet(0, 1, 2)
	for _, x := range resp {
		if x != full {
			t.Fatalf("restricted instance %v responsive though all of g is correct", x)
		}
	}
	if len(resp) != 1 {
		t.Fatalf("responsive sets = %v, want only the full group", resp)
	}
}

// TestSigmaEmulation_IntersectionPair (Theorem 49, |G| = 2): emulating
// Σ_{g∩h} for two intersecting groups.
func TestSigmaEmulation_IntersectionPair(t *testing.T) {
	topo := groups.MustNew(4,
		groups.NewProcSet(0, 1, 2), // g
		groups.NewProcSet(1, 2, 3), // h; g∩h = {1,2}
	)
	pat := failure.NewPattern(4).WithCrash(0, 20)
	em := NewSigmaEmulation(topo, pat, opts(), 3, 0, 1)

	// Outside the intersection: ⊥.
	if _, ok := em.Quorum(0, em.Horizon()+10); ok {
		t.Fatalf("Σ_{g∩h} must be ⊥ outside g∩h")
	}
	late := em.Horizon() + 50
	var quorums []groups.ProcSet
	for _, p := range []groups.Process{1, 2} {
		q, ok := em.Quorum(p, late)
		if !ok || q.Empty() {
			t.Fatalf("no quorum at p%d", p)
		}
		if !q.SubsetOf(topo.Intersection(0, 1)) {
			t.Fatalf("quorum %v outside g∩h", q)
		}
		quorums = append(quorums, q)
	}
	if quorums[0].Intersect(quorums[1]).Empty() {
		t.Fatalf("emulated Σ_{g∩h} quorums disjoint: %v %v", quorums[0], quorums[1])
	}
}

// TestGammaEmulation_Completeness (Theorem 50, Figure 3): crashing
// g1∩g2 = {p2} makes families f and f” faulty; the emulation must stop
// outputting them at correct members while keeping f' alive.
func TestGammaEmulation_Completeness(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 10) // p2 crashes
	em := NewGammaEmulation(topo, pat, opts(), 4, nil)

	late := em.Horizon() + 50
	out := em.Families(0, late) // p1 belongs to every family
	alive := map[groups.GroupSet]bool{}
	for _, f := range out {
		alive[f.Groups] = true
	}
	if alive[groups.NewGroupSet(0, 1, 2)] {
		t.Errorf("f = {g1,g2,g3} still output though faulty")
	}
	if alive[groups.NewGroupSet(0, 1, 2, 3)] {
		t.Errorf("f'' = G still output though faulty")
	}
	if !alive[groups.NewGroupSet(0, 2, 3)] {
		t.Errorf("f' = {g1,g3,g4} should stay alive (accuracy)")
	}
}

// TestGammaEmulation_Accuracy: with no failures, every family stays output
// (a flag would need a delivery that strictness of the quorum gate forbids).
func TestGammaEmulation_Accuracy(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5)
	em := NewGammaEmulation(topo, pat, opts(), 5, nil)
	out := em.Families(0, em.Horizon()+10)
	if len(out) != 3 {
		t.Fatalf("γ emulation dropped a correct family: %d families output, want 3", len(out))
	}
}

// TestGammaEmulation_ActiveEdges: after p2's crash the g1-side active edges
// should be exactly those of the surviving family f' = {g1,g3,g4}.
func TestGammaEmulation_ActiveEdges(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 10)
	em := NewGammaEmulation(topo, pat, opts(), 6, nil)
	got := em.ActiveEdges(0, 0, em.Horizon()+50) // γ(g1) at p1
	if got != groups.NewGroupSet(2, 3) {
		t.Fatalf("γ(g1) = %v, want {g3,g4}", got)
	}
}

// TestIndicatorEmulation_Accuracy (Proposition 53): while g∩h is correct,
// neither restricted instance delivers, so the emulated 1^{g∩h} stays
// false.
func TestIndicatorEmulation_Accuracy(t *testing.T) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1), // g
		groups.NewProcSet(1, 2), // h; g∩h = {p1}
	)
	pat := failure.NewPattern(3) // p1 correct
	em := NewIndicatorEmulation(topo, pat, opts(), 7, 0, 1)
	ag, ah := em.DeliveredAt()
	if ag != failure.Never || ah != failure.Never {
		t.Fatalf("restricted instances delivered (%d, %d) though g∩h is correct", ag, ah)
	}
	for _, p := range []groups.Process{0, 2} {
		if em.Faulty(p, em.Horizon()+100) {
			t.Fatalf("1^{g∩h} fired though g∩h correct (accuracy)")
		}
	}
}

// TestIndicatorEmulation_Completeness: once g∩h crashes, both instances
// deliver and the emulated indicator fires at the survivors.
func TestIndicatorEmulation_Completeness(t *testing.T) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
	)
	pat := failure.NewPattern(3).WithCrash(1, 10) // g∩h = {p1} crashes
	em := NewIndicatorEmulation(topo, pat, opts(), 8, 0, 1)
	ag, ah := em.DeliveredAt()
	if ag == failure.Never && ah == failure.Never {
		t.Fatalf("no instance delivered though g∩h crashed")
	}
	late := em.Horizon() + 100
	for _, p := range []groups.Process{0, 2} {
		if !em.Faulty(p, late) {
			t.Fatalf("1^{g∩h} silent at p%d though g∩h crashed (completeness)", p)
		}
	}
	// Outside g ∪ h the detector is ⊥ (false).
	topo2 := groups.MustNew(4,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
	)
	pat2 := failure.NewPattern(4).WithCrash(1, 10)
	em2 := NewIndicatorEmulation(topo2, pat2, opts(), 9, 0, 1)
	if em2.Faulty(3, em2.Horizon()+100) {
		t.Fatalf("1^{g∩h} fired outside its scope")
	}
}
