package extract

import (
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/sim"
)

// This file implements the collaborative sampling of Algorithm 5's Sample
// procedure (Appendix B.1): each process repeatedly queries its detector,
// adds a vertex (p, d, k) to a DAG with edges from every existing vertex,
// and exchanges the DAG. Every path through the DAG is a sampling
// (Proposition 59), and fair extensions of any path exist and replicate at
// the correct processes (Proposition 60). The Ω-extraction draws its
// simulation schedules from paths of this DAG.

// SampleVertex is a vertex (p, d, k): the k-th sample d taken by p.
type SampleVertex struct {
	P groups.Process
	D sim.FDValue
	K int
	// At is the virtual time the sample was taken (the sampling function τ
	// of Proposition 59).
	At failure.Time
}

// SampleDAG is the shared sampling graph G. Because every new vertex
// receives edges from all existing vertices (line 15 of Algorithm 5), the
// DAG's paths are exactly the increasing subsequences of the vertex
// sequence; the struct stores the sequence and exposes path views.
type SampleDAG struct {
	Vertices []SampleVertex
}

// BuildSampleDAG runs the collaborative sampling for `rounds` rounds over
// the scope: alive processes take turns querying the leader detector over
// the intersection (the D of the extraction) and appending vertices. The
// exchange (lines 16-18) is modelled as immediate — all correct processes
// share G, which only accelerates replication.
func BuildSampleDAG(pat *failure.Pattern, omega fd.Omega, scope groups.ProcSet, rounds int) *SampleDAG {
	dag := &SampleDAG{}
	counts := make(map[groups.Process]int)
	members := scope.Members()
	var t failure.Time = 1
	for r := 0; r < rounds; r++ {
		for _, p := range members {
			t += 4
			if !pat.IsAlive(p, t) {
				continue
			}
			counts[p]++
			d := sim.FDValue(p)
			if l, ok := omega.Leader(p, t); ok {
				d = sim.FDValue(l)
			}
			dag.Vertices = append(dag.Vertices, SampleVertex{P: p, D: d, K: counts[p], At: t})
		}
	}
	return dag
}

// FullPath returns the maximal path of the DAG (the whole vertex sequence)
// — a fair sampling when every correct scope member keeps sampling.
func (d *SampleDAG) FullPath() []SampleVertex {
	return append([]SampleVertex(nil), d.Vertices...)
}

// IsSampling checks Proposition 59's conditions on a path: per-process
// sample counters increase along it, every vertex was taken while its
// process was alive, and times increase strictly.
func (d *SampleDAG) IsSampling(path []SampleVertex, pat *failure.Pattern) bool {
	lastK := make(map[groups.Process]int)
	var lastT failure.Time = -1
	for _, v := range path {
		if v.At <= lastT {
			return false
		}
		lastT = v.At
		if !pat.IsAlive(v.P, v.At) {
			return false
		}
		if v.K <= lastK[v.P] {
			return false
		}
		lastK[v.P] = v.K
	}
	return true
}

// IsFairFor reports whether the path is P-fair in the Proposition 60 sense
// up to its horizon: every member of the set appears at least minSteps
// times.
func (d *SampleDAG) IsFairFor(path []SampleVertex, set groups.ProcSet, minSteps int) bool {
	counts := make(map[groups.Process]int)
	for _, v := range path {
		counts[v.P]++
	}
	for _, p := range set.Members() {
		if counts[p] < minSteps {
			return false
		}
	}
	return true
}

// Subsequence returns the path of the DAG visiting the given vertex
// indices (which must be increasing); every such path is a sampling.
func (d *SampleDAG) Subsequence(idx []int) []SampleVertex {
	out := make([]SampleVertex, 0, len(idx))
	last := -1
	for _, i := range idx {
		if i <= last || i >= len(d.Vertices) {
			return nil
		}
		last = i
		out = append(out, d.Vertices[i])
	}
	return out
}
