package extract

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// GammaEmulation runs Algorithm 3: for every cyclic family f and closed
// path π ∈ cpaths(f) whose first edge π[0]∩π[1] is failure-prone, an
// instance A_π of the multicast algorithm carries identity messages along
// the path; a message completing the traversal (or meeting the converse
// orientation) raises failed[π], and a family is excluded once every one of
// its path classes is flagged.
type GammaEmulation struct {
	topo *groups.Topology
	pat  *failure.Pattern

	// failed[πKey] is the flag of line 3, shared by the correct processes
	// (the "send to f" of line 9 uses reliable links; we model the signal
	// as immediately received, which only advances the time at which flags
	// rise).
	failed map[string]bool
	// paths indexes every instance's path by key.
	paths map[string]pathInstance
	// progress records the furthest stage each instance reached (-1 when
	// its first message was never delivered).
	progress map[string]int

	horizon failure.Time
}

type pathInstance struct {
	fam  groups.Family
	path []groups.GroupID
}

// pathKey renders a closed path as a map key.
func pathKey(path []groups.GroupID) string {
	return fmt.Sprint(path)
}

// NewGammaEmulation builds and runs the emulation. failureProne tells which
// process sets may crash in the environment; the paper's construction only
// instantiates A_π when π[0]∩π[1] is failure-prone (with E = E*, pass a
// predicate that is always true).
func NewGammaEmulation(topo *groups.Topology, pat *failure.Pattern, opt core.Options, seed int64, failureProne func(groups.ProcSet) bool) *GammaEmulation {
	em := &GammaEmulation{
		topo:     topo,
		pat:      pat,
		failed:   make(map[string]bool),
		paths:    make(map[string]pathInstance),
		progress: make(map[string]int),
	}
	opt.QuorumGate = true
	for _, fam := range topo.Families() {
		for _, path := range fam.CPaths {
			key := pathKey(path)
			em.paths[key] = pathInstance{fam: fam, path: path}
			first := topo.Intersection(path[0], path[1])
			if failureProne == nil || failureProne(first) {
				em.runInstance(fam, path, opt, seed)
			}
		}
	}
	// Line 13: a flag also rises when the converse orientation of an
	// equivalent path delivered its first message mid-way; runInstance
	// records progress signals, and resolveConverse applies the rule.
	em.resolveConverse()
	em.horizon = pat.Horizon() + opt.FD.Delay + 64
	return em
}

type gammaRun struct {
	em       *GammaEmulation
	path     []groups.GroupID
	maxStage int
}

// runInstance executes A_π. The instance's participants are the processes
// of f outside π[0] ∩ π[|π|-2] (line 2). Processes of π[0]∩π[1] multicast
// their identity to π[0] (lines 4-5); a process of π[i+1] delivering (-, i)
// multicasts to π[i+1] (lines 6-10). Reaching stage |π|-3 flags the path
// (lines 11-14).
func (em *GammaEmulation) runInstance(fam groups.Family, path []groups.GroupID, opt core.Options, seed int64) {
	var participants groups.ProcSet
	for _, g := range fam.Groups.Members() {
		participants = participants.Union(em.topo.Group(g))
	}
	lastEdge := em.topo.Intersection(path[0], path[len(path)-2])
	participants = participants.Diff(lastEdge)

	run := &gammaRun{em: em, path: path, maxStage: -1}
	stageOf := make(map[msg.ID]int)

	var sys *core.System
	opt.OnDeliver = func(p groups.Process, m *msg.Message, t failure.Time) {
		i, ok := stageOf[m.ID]
		if !ok {
			return
		}
		if i > run.maxStage {
			run.maxStage = i
		}
		// signal(π, i): p ∈ π[i+1] forwards (lines 6-10).
		if i < len(path)-2 && em.topo.Group(path[i+1]).Has(p) {
			next := path[i+1]
			already := false
			for id, st := range stageOf {
				if st == i+1 && sys.Sh.Reg.Get(id).Src == p {
					already = true
					break
				}
			}
			if !already && participants.Has(p) {
				sys.Eng.At(t+1, func() {
					if em.pat.IsAlive(p, t+1) {
						mm := sys.Multicast(p, next, []byte{byte(i + 1)})
						stageOf[mm.ID] = i + 1
					}
				})
			}
		}
	}
	sys = core.NewSystemWithConfig(em.topo, em.pat, opt, engine.Config{
		Pattern:      em.pat,
		Seed:         seed,
		Policy:       engine.RandomOrder,
		Participants: participants,
		MaxSteps:     400_000,
	})
	// Lines 4-5: processes of π[0]∩π[1] multicast (p, 0) to π[0].
	for _, p := range em.topo.Intersection(path[0], path[1]).Members() {
		if participants.Has(p) {
			m := sys.Multicast(p, path[0], []byte{0})
			stageOf[m.ID] = 0
		}
	}
	sys.Run()

	// Line 12: a signal (π, |π|-3) flags the path.
	if run.maxStage >= len(path)-3 {
		em.failed[pathKey(path)] = true
	}
	// Record partial progress for the converse-orientation rule (line 13).
	em.progress[pathKey(path)] = run.maxStage
}

// resolveConverse applies the precondition of line 13: path π is flagged
// when some equivalent path π' of the converse direction delivered its
// first message at a group of π, i.e. both directions made progress past
// their first edges.
func (em *GammaEmulation) resolveConverse() {
	for key, inst := range em.paths {
		if em.failed[key] {
			continue
		}
		iProg, ok := em.progress[key]
		if !ok || iProg < 0 {
			continue
		}
		for key2, inst2 := range em.paths {
			if key2 == key || !groups.PathsEquivalent(inst.path, inst2.path) {
				continue
			}
			if groups.PathDirection(inst.path) == groups.PathDirection(inst2.path) {
				continue
			}
			jProg, ok := em.progress[key2]
			if ok && jProg >= 0 {
				em.failed[key] = true
				em.failed[key2] = true
			}
		}
	}
}

// Families answers a query of the emulated γ at (p, t): the families of
// F(p) for which some closed path has no flagged equivalent (line 16).
// Flags in this emulation are evaluated at the end of the runs, so queries
// are meaningful from the emulation horizon on.
func (em *GammaEmulation) Families(p groups.Process, t failure.Time) []groups.Family {
	var out []groups.Family
	for _, fam := range em.topo.FamiliesOfProcess(p) {
		if em.familyAlive(fam) {
			out = append(out, fam)
		}
	}
	return out
}

// ActiveEdges derives the ring-granular waiting set from the emulated
// flags: h is active for g when some unflagged closed path uses edge (g,h).
func (em *GammaEmulation) ActiveEdges(p groups.Process, g groups.GroupID, t failure.Time) groups.GroupSet {
	var out groups.GroupSet
	for _, fam := range em.topo.FamiliesOfProcess(p) {
		if !fam.Groups.Has(g) {
			continue
		}
		for _, path := range fam.CPaths {
			if em.classFlagged(path) {
				continue
			}
			for i := 0; i+1 < len(path); i++ {
				if path[i] == g {
					out = out.Add(path[i+1])
				}
				if path[i+1] == g {
					out = out.Add(path[i])
				}
			}
		}
	}
	return out
}

// familyAlive: ∃π ∈ cpaths(f) with every equivalent path unflagged.
func (em *GammaEmulation) familyAlive(fam groups.Family) bool {
	for _, path := range fam.CPaths {
		if !em.classFlagged(path) {
			return true
		}
	}
	return false
}

// classFlagged reports whether some path equivalent to path carries a flag.
func (em *GammaEmulation) classFlagged(path []groups.GroupID) bool {
	for key, inst := range em.paths {
		if em.failed[key] && groups.PathsEquivalent(inst.path, path) {
			return true
		}
	}
	return false
}

// Horizon returns the stabilisation time of the emulation.
func (em *GammaEmulation) Horizon() failure.Time { return em.horizon }
