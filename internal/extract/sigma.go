// Package extract implements the necessity side of the paper: emulating the
// components of μ (and the variations' detectors) out of a black-box
// solution A to (a variation of) genuine atomic multicast.
//
//   - Algorithm 2 emulates Σ_{∩_{g∈G} g} from responsive instances A_{g,x}
//     (Theorem 49);
//   - Algorithm 3 emulates γ from per-closed-path instances A_π
//     (Theorem 50);
//   - Algorithm 4 emulates 1^{g∩h} from a strict solution (Proposition 53);
//   - Algorithm 5 (the CHT-style extraction of Ω_{g∩h} from a strongly
//     genuine solution) lives in omega.go on top of the formal model of
//     internal/sim.
//
// Instances of A are full runs of the core protocol with the engine's
// participant set restricted — the run of A_{g,x} is exactly a run of the
// algorithm in which the processes outside x take no steps, which is the
// indistinguishability the proofs glue runs with.
package extract

import (
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
)

// SigmaEmulation runs Algorithm 2 for a set G of at most two intersecting
// destination groups, emulating Σ_{∩_{g∈G} g}.
type SigmaEmulation struct {
	topo *groups.Topology
	pat  *failure.Pattern
	gs   []groups.GroupID
	// inter is ∩_{g∈G} g.
	inter groups.ProcSet
	// responsive[gi] is Q_g: the subsets x of g whose instance A_{g,x}
	// delivered a message.
	responsive []map[groups.ProcSet]bool
	// horizon is the virtual time after which every instance has quiesced;
	// queries are answered relative to it.
	horizon failure.Time
}

// NewSigmaEmulation builds and runs the emulation: one instance A_{g,x} per
// group g ∈ G and subset x ⊆ g, each a restricted run of the core protocol
// under the same failure pattern (the shared detector history D).
func NewSigmaEmulation(topo *groups.Topology, pat *failure.Pattern, opt core.Options, seed int64, gs ...groups.GroupID) *SigmaEmulation {
	if len(gs) == 0 || len(gs) > 2 {
		panic("extract: Algorithm 2 takes one or two intersecting groups")
	}
	opt.QuorumGate = true
	em := &SigmaEmulation{
		topo:       topo,
		pat:        pat,
		gs:         gs,
		inter:      topo.Group(gs[0]),
		responsive: make([]map[groups.ProcSet]bool, len(gs)),
	}
	for _, g := range gs[1:] {
		em.inter = em.inter.Intersect(topo.Group(g))
	}
	for gi, g := range gs {
		em.responsive[gi] = make(map[groups.ProcSet]bool)
		members := topo.Group(g).Members()
		// Enumerate the non-empty subsets x of g.
		for mask := 1; mask < 1<<len(members); mask++ {
			var x groups.ProcSet
			for b, p := range members {
				if mask&(1<<b) != 0 {
					x = x.Add(p)
				}
			}
			if em.runInstance(g, x, opt, seed) {
				em.responsive[gi][x] = true
			}
		}
	}
	em.horizon = pat.Horizon() + opt.FD.Delay + 64
	return em
}

// runInstance executes A_{g,x}: every process of x multicasts its identity
// to g; only x participates. It reports whether some message was delivered.
func (em *SigmaEmulation) runInstance(g groups.GroupID, x groups.ProcSet, opt core.Options, seed int64) bool {
	s := core.NewSystemWithConfig(em.topo, em.pat, opt, engine.Config{
		Pattern:      em.pat,
		Seed:         seed,
		Policy:       engine.RandomOrder,
		Participants: x,
		MaxSteps:     200_000,
	})
	for _, p := range x.Members() {
		s.Multicast(p, g, []byte{byte(p)})
	}
	s.Run()
	return len(s.Sh.Deliveries()) > 0
}

// rank implements the ranking function of Bonnet & Raynal used at line 14:
// the rank of a process grows while it is alive ("alive" messages) and
// freezes at its crash; the rank of a set is its minimum.
func (em *SigmaEmulation) rank(x groups.ProcSet, t failure.Time) failure.Time {
	min := failure.Time(1 << 60)
	for _, p := range x.Members() {
		r := t
		if ct := em.pat.CrashTime(p); ct != failure.Never && ct < t {
			r = ct
		}
		if r < min {
			min = r
		}
	}
	return min
}

// Quorum answers a query of the emulated Σ_{∩g}: ⊥ outside the
// intersection; otherwise (∪_g qr_g) ∩ (∩_g g) where qr_g is the most
// responsive quorum of Q_g at time t.
func (em *SigmaEmulation) Quorum(p groups.Process, t failure.Time) (groups.ProcSet, bool) {
	if !em.inter.Has(p) {
		return 0, false
	}
	var out groups.ProcSet
	for gi, g := range em.gs {
		qr := em.topo.Group(g) // initial value of qr_g (line 4)
		best := failure.Time(-1)
		// Deterministic iteration: sort the responsive subsets.
		keys := make([]groups.ProcSet, 0, len(em.responsive[gi]))
		for x := range em.responsive[gi] {
			keys = append(keys, x)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, x := range keys {
			if r := em.rank(x, t); r > best {
				best, qr = r, x
			}
		}
		out = out.Union(qr)
	}
	out = out.Intersect(em.inter)
	if out.Empty() {
		// The paper's range argument (Theorem 49) guarantees non-emptiness
		// whenever queries are made by processes that are alive; an empty
		// result would indicate a broken emulation.
		return 0, false
	}
	return out, true
}

// Responsive exposes Q_g for inspection (tests and the figures tool).
func (em *SigmaEmulation) Responsive(g groups.GroupID) []groups.ProcSet {
	for gi, gg := range em.gs {
		if gg == g {
			out := make([]groups.ProcSet, 0, len(em.responsive[gi]))
			for x := range em.responsive[gi] {
				out = append(out, x)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
	}
	return nil
}

// Horizon returns the stabilisation time of the emulation.
func (em *SigmaEmulation) Horizon() failure.Time { return em.horizon }
