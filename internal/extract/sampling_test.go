package extract

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// TestSampleDAGProposition59: every path of the DAG — including arbitrary
// subsequences — is a sampling: counters grow, samples are taken alive,
// times increase.
func TestSampleDAGProposition59(t *testing.T) {
	pat := failure.NewPattern(4).WithCrash(2, 30)
	scope := groups.NewProcSet(0, 1, 2, 3)
	omega := fd.NewOmega(pat, groups.NewProcSet(1, 2), fd.Options{Delay: 5})
	dag := BuildSampleDAG(pat, omega, scope, 8)

	if !dag.IsSampling(dag.FullPath(), pat) {
		t.Fatalf("the full path must be a sampling")
	}
	// Subsequences are samplings too (Proposition 59 holds for every path).
	sub := dag.Subsequence([]int{0, 3, 5, 9})
	if sub == nil || !dag.IsSampling(sub, pat) {
		t.Fatalf("subsequence path is not a sampling")
	}
	// Non-increasing index sets are rejected.
	if dag.Subsequence([]int{3, 1}) != nil {
		t.Fatalf("non-increasing subsequence accepted")
	}
}

// TestSampleDAGCrashedStopSampling: a crashed process contributes no
// vertices after its crash time — its rank freezes, as Algorithm 2's
// ranking function requires.
func TestSampleDAGCrashedStopSampling(t *testing.T) {
	pat := failure.NewPattern(3).WithCrash(1, 20)
	scope := groups.NewProcSet(0, 1, 2)
	omega := fd.NewOmega(pat, scope, fd.Options{})
	dag := BuildSampleDAG(pat, omega, scope, 10)
	for _, v := range dag.Vertices {
		if v.P == 1 && v.At > 20 {
			t.Fatalf("crashed process sampled at t=%d", v.At)
		}
	}
}

// TestSampleDAGFairness (Proposition 60): the full path is fair for the
// correct processes — each appears at least once per round.
func TestSampleDAGFairness(t *testing.T) {
	pat := failure.NewPattern(4).WithCrash(3, 0)
	scope := groups.NewProcSet(0, 1, 2, 3)
	omega := fd.NewOmega(pat, scope, fd.Options{})
	const rounds = 12
	dag := BuildSampleDAG(pat, omega, scope, rounds)
	if !dag.IsFairFor(dag.FullPath(), pat.Correct().Intersect(scope), rounds) {
		t.Fatalf("full path not fair for the correct processes")
	}
	if dag.IsFairFor(dag.FullPath(), scope, 1) {
		t.Fatalf("path cannot be fair for the crashed process")
	}
}

// TestSampleDAGStabilisedLeader: after the detector stabilises, every
// sample carries the same correct leader — the property the extraction's
// tags converge under.
func TestSampleDAGStabilisedLeader(t *testing.T) {
	pat := failure.NewPattern(4).WithCrash(1, 10)
	inter := groups.NewProcSet(1, 2)
	scope := groups.NewProcSet(0, 1, 2, 3)
	omega := fd.NewOmega(pat, inter, fd.Options{Delay: 4})
	dag := BuildSampleDAG(pat, omega, scope, 20)
	stab := pat.Horizon() + 4
	for _, v := range dag.Vertices {
		if v.At < stab {
			continue
		}
		if !inter.Has(v.P) {
			continue // outside the detector's scope the sample is ⊥-ish
		}
		if groups.Process(v.D) != 2 {
			t.Fatalf("stabilised sample at p%d is p%d, want p2", v.P, v.D)
		}
	}
}
