// Package benchfmt is the versioned on-disk schema of the live benchmark
// documents (BENCH_live.json, BENCH_scenarios.json). It exists so the three
// consumers — cmd/benchtab (writes topology-sweep rows), cmd/loadsim (writes
// per-scenario SLO rows) and cmd/benchgate (gates fresh rows against
// committed baselines) — share one row shape instead of three drifting
// copies. Bump SchemaVersion when a column changes meaning; readers refuse
// cross-version comparisons outright, because silently diffing mismatched
// shapes produces plausible-looking nonsense.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the BENCH document schema version. Version 2 added the
// schema field itself, the transport column, and wire-level byte counts.
// Version 3 made deliveries/sec a first-class column and added the batching
// pipeline's shape — and the default load changed from a paced open loop to
// an unthrottled burst, so v2 latency numbers are not comparable. Version 4
// added the conflict_rate column and fast_deliveries. Version 5 added the
// fsync_mode column plus WAL bytes/op, sync counts and measured recovery
// time. Version 6 added the event-driven scheduler's columns — and the
// stepping model changed from a 200µs idle poll to wakeup-driven draining,
// so v5 latency rows were measured under a different scheduler. Version 7
// moved the schema here and added the workload campaign columns: scenario
// and workload_seed (the replay key), offered_per_sec and p999_ms (the
// open-loop SLO pair — latency is measured from the intended send time, so
// coordinated omission is impossible), fast_share, and stream_digest (the
// generator's replayability certificate). v6 rows have no scenario column,
// so they would silently alias every scenario onto one key.
const SchemaVersion = 7

// LiveRow is one measured configuration — a row of a BENCH document.
// benchtab's topology sweep leaves the scenario columns zero; loadsim's
// campaign rows carry them.
type LiveRow struct {
	// Scenario names the workload scenario the row measured ("" for the
	// benchtab topology sweep). benchgate keys rows on it.
	Scenario string `json:"scenario,omitempty"`
	// WorkloadSeed is the generator seed; (Scenario, WorkloadSeed) replays
	// the exact stream this row measured.
	WorkloadSeed int64 `json:"workload_seed,omitempty"`
	// StreamDigest is the FNV-1a certificate of the generated stream: two
	// rows with equal digests consumed bit-identical workloads.
	StreamDigest string `json:"stream_digest,omitempty"`

	Processes int    `json:"processes"`
	Groups    int    `json:"groups"`
	Transport string `json:"transport"`
	ChaosSeed int64  `json:"chaos_seed"`
	// ConflictRate is the fraction of the load tagged into keyed conflict
	// classes: 1.0 is the vanilla total-order run (every pair conflicts),
	// anything below runs the generic variant where the remaining messages
	// are ClassFree and skip the g∩h coordination entirely.
	ConflictRate float64 `json:"conflict_rate"`
	// FsyncMode is the write-ahead-log backing: "mem" (in-memory group
	// commit, the default substrate), "file" (file WAL, fsync on every
	// commit barrier) or "file-nosync" (file WAL, OS buffering only).
	FsyncMode  string `json:"fsync_mode"`
	Multicasts int64  `json:"multicasts"`
	Deliveries int64  `json:"deliveries"`

	// OfferedPerSec is the open-loop offered load (0 for burst rows).
	// Goodput vs offered is DeliveriesPerSec/Groups-adjusted against it.
	OfferedPerSec float64 `json:"offered_per_sec,omitempty"`

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	// P999Ms is the 99.9th-percentile latency. On scenario rows the whole
	// latency distribution is measured from the intended send time, so a
	// driver that falls behind schedule accrues the backlog here instead of
	// hiding it (no coordinated omission).
	P999Ms             float64 `json:"p999_ms,omitempty"`
	MaxMs              float64 `json:"max_ms"`
	MsgsPerSec         float64 `json:"msgs_per_sec"`
	DeliveriesPerSec   float64 `json:"deliveries_per_sec"`
	Packets            int64   `json:"packets"`
	PacketsPerDelivery float64 `json:"packets_per_delivery"`
	ChaosInjections    uint64  `json:"chaos_injections,omitempty"`
	// FastDeliveries counts deliveries that skipped the pairwise
	// coordination pipeline (generic variant, commuting messages only);
	// FastShare is their fraction of all deliveries.
	FastDeliveries int64   `json:"fast_deliveries,omitempty"`
	FastShare      float64 `json:"fast_share,omitempty"`
	WallMs         float64 `json:"wall_ms"`
	// Batching pipeline shape: mean ops per proposed replog batch and the
	// peak number of outstanding windowed accept rounds in any realm.
	AvgBatchOps     float64 `json:"avg_batch_ops"`
	WindowDepthPeak int64   `json:"window_depth_peak"`
	FwdOps          int64   `json:"fwd_ops,omitempty"`
	RemoteOps       int64   `json:"remote_ops,omitempty"`
	// Wire traffic (tcp transport only): real encoded bytes on the socket,
	// the write loops' coalescing factor, and frames lost to failed flushes.
	WireBytesOut   int64   `json:"wire_bytes_out,omitempty"`
	WireFramesOut  int64   `json:"wire_frames_out,omitempty"`
	WireReconnects int64   `json:"wire_reconnects,omitempty"`
	FramesPerFlush float64 `json:"frames_per_flush,omitempty"`
	WireWriteDrops int64   `json:"wire_write_drops,omitempty"`
	// WAL footprint: mean record payload bytes per append, group-commit
	// barriers, and (file rows) the wall time a fresh process took to
	// replay the finished run's logs.
	WALBytesPerOp float64 `json:"wal_bytes_per_op,omitempty"`
	WALSyncs      int64   `json:"wal_syncs,omitempty"`
	RecoveryMs    float64 `json:"recovery_ms,omitempty"`
	// Scheduler shape: how much stepping work the run's deliveries cost.
	// IdleWork is the idle-CPU proxy — timer wakeups plus version-check-only
	// skipped scans.
	WakeupsPerDelivery float64 `json:"wakeups_per_delivery,omitempty"`
	StepsPerDelivery   float64 `json:"steps_per_delivery,omitempty"`
	Scans              int64   `json:"scans,omitempty"`
	IdleWork           int64   `json:"idle_work,omitempty"`
}

// LiveDoc is a BENCH document: a schema version, a generation stamp and the
// measured rows.
type LiveDoc struct {
	Version   int       `json:"version"`
	Generated string    `json:"generated"`
	Short     bool      `json:"short"`
	Runs      []LiveRow `json:"runs"`
}

// NewDoc returns an empty document at the current schema version, stamped
// now.
func NewDoc(short bool) LiveDoc {
	return LiveDoc{
		Version:   SchemaVersion,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Short:     short,
	}
}

// FromReport fills the report-derived columns of a row: counts, latency
// quantiles (from WallLatency), throughput, and every substrate counter the
// run measured. Identity columns (scenario, transport, seeds, conflict rate,
// fsync mode) and the open-loop columns are the caller's to set — the report
// does not know them.
func FromReport(rep obs.RunReport) LiveRow {
	row := LiveRow{
		Processes:  rep.Processes,
		Groups:     rep.Groups,
		Multicasts: rep.Multicasts,
		Deliveries: rep.Deliveries,
		WallMs:     float64(rep.Wall) / float64(time.Millisecond),
	}
	if rep.WallLatency != nil {
		row.P50Ms = rep.WallLatency.P50
		row.P90Ms = rep.WallLatency.P90
		row.P99Ms = rep.WallLatency.P99
		row.P999Ms = rep.WallLatency.P999
		row.MaxMs = rep.WallLatency.Max
	}
	if rep.Wall > 0 {
		row.MsgsPerSec = float64(rep.Multicasts) / rep.Wall.Seconds()
		row.DeliveriesPerSec = float64(rep.Deliveries) / rep.Wall.Seconds()
	}
	if rep.Net != nil {
		row.Packets = rep.Net.Packets
	}
	if ppd, ok := rep.PacketsPerDelivery(); ok {
		row.PacketsPerDelivery = ppd
	}
	row.ChaosInjections = rep.Chaos.Injections()
	row.AvgBatchOps = rep.Replog.MeanBatchOps()
	if rep.Replog != nil {
		row.FwdOps = rep.Replog.FwdOps
		row.RemoteOps = rep.Replog.RemoteOps
	}
	if rep.Paxos != nil {
		row.WindowDepthPeak = rep.Paxos.WindowDepthPeak
	}
	if rep.Conflict != nil {
		row.FastDeliveries = rep.Conflict.FastDeliveries
		if rep.Deliveries > 0 {
			row.FastShare = float64(rep.Conflict.FastDeliveries) / float64(rep.Deliveries)
		}
	}
	if rep.Wire != nil {
		row.WireBytesOut = rep.Wire.BytesOut
		row.WireFramesOut = rep.Wire.FramesEncoded
		row.WireReconnects = rep.Wire.Reconnects
		row.FramesPerFlush = rep.Wire.FramesPerFlush()
		row.WireWriteDrops = rep.Wire.WriteDrops
	}
	if rep.WAL != nil {
		row.WALBytesPerOp = rep.WAL.BytesPerAppend()
		row.WALSyncs = rep.WAL.Syncs
		row.RecoveryMs = float64(rep.WAL.RecoveryNanos) / float64(time.Millisecond)
	}
	if rep.Sched != nil {
		row.Scans = rep.Sched.Scans
		row.IdleWork = rep.Sched.TimerWakeups + rep.Sched.SkippedScans
		if rep.Deliveries > 0 {
			row.WakeupsPerDelivery = float64(rep.Sched.NotifyWakeups+rep.Sched.TimerWakeups) / float64(rep.Deliveries)
			row.StepsPerDelivery = float64(rep.Sched.Actions) / float64(rep.Deliveries)
		}
	}
	return row
}

// Load reads a BENCH document from disk. It parses any version — callers
// that compare documents must check Version themselves (see CheckVersion),
// because "wrong schema" deserves a clearer error than a parse failure.
func Load(path string) (LiveDoc, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return LiveDoc{}, err
	}
	var doc LiveDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return LiveDoc{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// CheckVersion errors unless the document carries the current schema
// version, naming the document so the error says which side is stale.
func (d LiveDoc) CheckVersion(path string) error {
	if d.Version != SchemaVersion {
		return fmt.Errorf("%s: schema version %d, this binary speaks version %d — cross-schema comparisons are meaningless; regenerate the older document",
			path, d.Version, SchemaVersion)
	}
	return nil
}

// Write marshals the document (indented, trailing newline) to path.
func (d LiveDoc) Write(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
