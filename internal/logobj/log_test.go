package logobj

import (
	"math/rand"
	"testing"

	"repro/internal/msg"
)

func TestAppendAssignsIncreasingSlots(t *testing.T) {
	l := New("t")
	if got := l.Append(MsgDatum(1)); got != 1 {
		t.Fatalf("first append at %d, want 1", got)
	}
	if got := l.Append(MsgDatum(2)); got != 2 {
		t.Fatalf("second append at %d, want 2", got)
	}
	// Idempotence: re-appending returns the existing position.
	if got := l.Append(MsgDatum(1)); got != 1 {
		t.Fatalf("re-append moved datum to %d", got)
	}
}

func TestAppendAfterBumpGoesPastHead(t *testing.T) {
	l := New("t")
	l.Append(MsgDatum(1))
	l.BumpAndLock(MsgDatum(1), 10)
	if got := l.Append(MsgDatum(2)); got != 11 {
		t.Fatalf("append after bump at %d, want 11 (head past bumped slot)", got)
	}
}

func TestBumpAndLock(t *testing.T) {
	l := New("t")
	l.Append(MsgDatum(1)) // slot 1
	l.Append(MsgDatum(2)) // slot 2
	l.BumpAndLock(MsgDatum(1), 5)
	if got := l.Pos(MsgDatum(1)); got != 5 {
		t.Fatalf("pos after bump = %d, want 5", got)
	}
	if !l.Locked(MsgDatum(1)) {
		t.Fatalf("datum not locked")
	}
	// Bump to a lower slot keeps the current one: max(k, l).
	l.Append(MsgDatum(3))
	l.BumpAndLock(MsgDatum(3), 2)
	if got := l.Pos(MsgDatum(3)); got != 6 {
		t.Fatalf("bump below current moved datum to %d, want 6", got)
	}
	// Locked data cannot be bumped anymore (Claim 5).
	l.BumpAndLock(MsgDatum(1), 100)
	if got := l.Pos(MsgDatum(1)); got != 5 {
		t.Fatalf("locked datum moved to %d", got)
	}
}

func TestBumpAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("t").BumpAndLock(MsgDatum(9), 1)
}

func TestSlotTieBreak(t *testing.T) {
	l := New("t")
	l.Append(MsgDatum(2)) // slot 1
	l.Append(MsgDatum(1)) // slot 2
	l.BumpAndLock(MsgDatum(1), 1)
	// Wait: bump to max(1, 2) = 2, so no collision. Re-do with shared slot:
	l2 := New("t2")
	l2.Append(MsgDatum(5)) // slot 1
	l2.Append(MsgDatum(3)) // slot 2
	l2.BumpAndLock(MsgDatum(5), 2)
	// Both m5 and m3 now occupy slot 2; m3 < m5 by the a-priori order.
	if !l2.Less(MsgDatum(3), MsgDatum(5)) {
		t.Fatalf("tie-break by message ID failed")
	}
	msgs := l2.Messages()
	if len(msgs) != 2 || msgs[0] != 3 || msgs[1] != 5 {
		t.Fatalf("Messages() = %v, want [3 5]", msgs)
	}
}

func TestMessagesBefore(t *testing.T) {
	l := New("t")
	l.Append(MsgDatum(4))
	l.Append(MsgDatum(7))
	l.Append(PosDatum(4, 1, 3))
	l.Append(MsgDatum(9))
	before := l.MessagesBefore(MsgDatum(9))
	if len(before) != 2 || before[0] != 4 || before[1] != 7 {
		t.Fatalf("MessagesBefore = %v", before)
	}
	if got := l.MessagesBefore(MsgDatum(999)); got != nil {
		t.Fatalf("MessagesBefore(absent) = %v, want nil", got)
	}
}

func TestMaxPosTuple(t *testing.T) {
	l := New("t")
	if _, ok := l.MaxPosTuple(1); ok {
		t.Fatalf("MaxPosTuple on empty log should report absent")
	}
	l.Append(PosDatum(1, 0, 2))
	l.Append(PosDatum(1, 1, 7))
	l.Append(PosDatum(2, 0, 99))
	got, ok := l.MaxPosTuple(1)
	if !ok || got != 7 {
		t.Fatalf("MaxPosTuple = %d,%v; want 7,true", got, ok)
	}
	if !l.HasPosTuple(1, 1) || l.HasPosTuple(1, 3) {
		t.Fatalf("HasPosTuple wrong")
	}
}

// op is a random log operation for the model-based property tests below.
type op struct {
	kind int // 0 = append, 1 = bumpAndLock
	d    Datum
	k    int
}

func randOps(rng *rand.Rand, n int) []op {
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			kind: rng.Intn(2),
			d:    MsgDatum(msg.ID(rng.Intn(8) + 1)),
			k:    rng.Intn(12),
		}
	}
	return ops
}

// TestClaims2to8 runs random operation sequences and checks the log
// invariants of Table 2 after every step:
//
//	Claim 2: presence is stable        (d ∈ L ⇒ G(d ∈ L))
//	Claim 3: positions never decrease  (pos(d)=k ⇒ G(pos(d) ≥ k))
//	Claim 4: locks are stable          (locked(d) ⇒ G locked(d))
//	Claim 5: locked position is fixed  (locked ∧ pos=k ⇒ G pos=k)
//	Claim 6: order below a locked datum is stable
//	Claim 7: data appended after a lock come after it
//	Claim 8: nothing moves before a locked datum
func TestClaims2to8(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		l := New("prop")
		type snapshot struct {
			pos    map[Datum]int
			locked map[Datum]bool
		}
		snap := func() snapshot {
			s := snapshot{pos: map[Datum]int{}, locked: map[Datum]bool{}}
			for _, d := range l.Items() {
				s.pos[d] = l.Pos(d)
				s.locked[d] = l.Locked(d)
			}
			return s
		}
		prev := snap()
		prevLess := map[[2]Datum]bool{}
		for _, o := range randOps(rng, 30) {
			switch o.kind {
			case 0:
				l.Append(o.d)
			case 1:
				if l.Contains(o.d) {
					l.BumpAndLock(o.d, o.k)
				}
			}
			cur := snap()
			for d, p := range prev.pos {
				cp, ok := cur.pos[d]
				if !ok {
					t.Fatalf("Claim 2 violated: %v disappeared", d)
				}
				if cp < p {
					t.Fatalf("Claim 3 violated: %v moved back %d→%d", d, p, cp)
				}
				if prev.locked[d] {
					if !cur.locked[d] {
						t.Fatalf("Claim 4 violated: %v unlocked", d)
					}
					if cp != p {
						t.Fatalf("Claim 5 violated: locked %v moved %d→%d", d, p, cp)
					}
				}
			}
			// Claims 6 and 8: for locked d, the set {d' : d' <_L d} and
			// {d' : d <_L d'} among previously-present data is stable.
			for d := range prev.pos {
				for o2 := range prev.pos {
					if d == o2 {
						continue
					}
					key := [2]Datum{d, o2}
					was := prevLess[key]
					now := l.Less(d, o2)
					if prev.locked[d] && was && !now {
						t.Fatalf("Claim 6 violated: %v <_L %v ceased", d, o2)
					}
					if prev.locked[o2] && !was && now && prev.pos[d] != 0 {
						t.Fatalf("Claim 8 violated: %v moved before locked %v", d, o2)
					}
				}
			}
			// Claim 7: new data appended while d' locked come after d'.
			for d, p := range cur.pos {
				if _, existed := prev.pos[d]; existed {
					continue
				}
				for dp := range prev.pos {
					if prev.locked[dp] && !l.Less(dp, d) {
						t.Fatalf("Claim 7 violated: new %v@%d not after locked %v@%d",
							d, p, dp, cur.pos[dp])
					}
				}
			}
			prev = cur
			prevLess = map[[2]Datum]bool{}
			for d := range cur.pos {
				for o2 := range cur.pos {
					if d != o2 && l.Less(d, o2) {
						prevLess[[2]Datum{d, o2}] = true
					}
				}
			}
		}
	}
}

// TestLessIsStrictTotalOrderPerLog: <_L is irreflexive, asymmetric and total
// over the data present in the log.
func TestLessIsStrictTotalOrderPerLog(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		l := New("ord")
		for _, o := range randOps(rng, 20) {
			if o.kind == 0 {
				l.Append(o.d)
			} else if l.Contains(o.d) {
				l.BumpAndLock(o.d, o.k)
			}
		}
		items := l.Items()
		for i, a := range items {
			if l.Less(a, a) {
				t.Fatalf("irreflexivity violated at %v", a)
			}
			for _, b := range items[i+1:] {
				x, y := l.Less(a, b), l.Less(b, a)
				if x == y {
					t.Fatalf("totality/asymmetry violated: %v vs %v (%v,%v)", a, b, x, y)
				}
			}
		}
		// Items() must be sorted by <_L.
		for i := 1; i < len(items); i++ {
			if !l.Less(items[i-1], items[i]) {
				t.Fatalf("Items not sorted: %v !< %v", items[i-1], items[i])
			}
		}
	}
}

func TestDatumOrderAndString(t *testing.T) {
	a, b := MsgDatum(1), MsgDatum(2)
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("message order wrong")
	}
	if MsgDatum(1).Less(MsgDatum(1)) {
		t.Fatalf("Less not irreflexive")
	}
	p := PosDatum(1, 2, 3)
	if !MsgDatum(1).Less(p) {
		t.Fatalf("msg datum should precede pos datum of same message")
	}
	if s := p.String(); s != "(m1,g2,3)" {
		t.Fatalf("String = %q", s)
	}
	if s := StableDatum(4, 1).String(); s != "(m4,g1)" {
		t.Fatalf("String = %q", s)
	}
}

func TestVersionAdvances(t *testing.T) {
	l := New("v")
	v0 := l.Version()
	l.Append(MsgDatum(1))
	if l.Version() == v0 {
		t.Fatalf("version not bumped on append")
	}
	v1 := l.Version()
	l.Append(MsgDatum(1)) // no-op
	if l.Version() != v1 {
		t.Fatalf("version bumped on no-op append")
	}
}
