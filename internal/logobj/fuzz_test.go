package logobj

import (
	"testing"

	"repro/internal/groups"
	"repro/internal/msg"
)

// FuzzLogOperations feeds arbitrary operation tapes into the log object and
// checks the sequential-specification invariants of Table 2 after every
// operation (Claims 2-5 plus head discipline and order totality). Each
// input byte pair encodes one operation.
func FuzzLogOperations(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x05, 0x23, 0x81, 0x40})
	f.Add([]byte{0x00, 0x00, 0x80, 0x01})
	f.Add([]byte{0x11, 0x91, 0x12, 0x92, 0x13, 0x93})
	f.Fuzz(func(t *testing.T, tape []byte) {
		l := New("fuzz")
		type obs struct {
			pos    int
			locked bool
		}
		prev := map[Datum]obs{}
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			d := MsgDatum(msg.ID(op&0x0f) + 1)
			if op&0x10 != 0 {
				d = PosDatum(msg.ID(op&0x0f)+1, groups.GroupID(arg&0x3), int(arg&0x7))
			}
			if op&0x80 == 0 {
				l.Append(d)
			} else if l.Contains(d) {
				l.BumpAndLock(d, int(arg))
			}
			// Invariants after every operation.
			for dd, o := range prev {
				cur := l.Pos(dd)
				if cur == 0 {
					t.Fatalf("datum %v disappeared (Claim 2)", dd)
				}
				if cur < o.pos {
					t.Fatalf("datum %v moved backwards %d→%d (Claim 3)", dd, o.pos, cur)
				}
				if o.locked {
					if !l.Locked(dd) {
						t.Fatalf("datum %v unlocked (Claim 4)", dd)
					}
					if cur != o.pos {
						t.Fatalf("locked %v moved %d→%d (Claim 5)", dd, o.pos, cur)
					}
				}
			}
			items := l.Items()
			for j := 1; j < len(items); j++ {
				if !l.Less(items[j-1], items[j]) {
					t.Fatalf("order not total/sorted at %d", j)
				}
			}
			prev = map[Datum]obs{}
			for _, dd := range items {
				prev[dd] = obs{pos: l.Pos(dd), locked: l.Locked(dd)}
			}
		}
	})
}
