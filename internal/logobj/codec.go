package logobj

import (
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/wire"
)

// Datum is a wire type: replog operations carry datums, and the multicast
// payloads of a multi-process run are reconstructed from them. The varint
// encoding has none of the width caps of replog's bit-packed int64 form —
// any registered message ID, group and position round-trips.

// MarshalBinary implements encoding.BinaryMarshaler.
func (d Datum) MarshalBinary() ([]byte, error) {
	var e wire.Enc
	d.encode(&e)
	return e.Bytes(), nil
}

// encode appends the datum to an in-progress encoding (shared with the
// replog operation codec, which embeds a datum in a larger body).
func (d Datum) encode(e *wire.Enc) {
	e.U8(uint8(d.Kind))
	e.I64(int64(d.Msg))
	e.I64(int64(d.H))
	e.I64(int64(d.I))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (d *Datum) UnmarshalBinary(b []byte) error {
	dec := wire.NewDec(b)
	d.decode(dec)
	return dec.Close()
}

// decode reads the datum fields from the cursor (error stays in dec).
func (d *Datum) decode(dec *wire.Dec) {
	d.Kind = Kind(dec.U8())
	d.Msg = msg.ID(dec.I64())
	d.H = groups.GroupID(dec.I64())
	d.I = int(dec.I64())
	if dec.Err() == nil {
		switch d.Kind {
		case KindMsg, KindPos, KindStable:
		default:
			dec.Failf("logobj: bad datum kind %d", d.Kind)
			*d = Datum{}
		}
	}
}

// EncodeDatum appends d to e — the exported hook replog's operation codec
// composes with.
func EncodeDatum(e *wire.Enc, d Datum) { d.encode(e) }

// DecodeDatum reads a datum from dec; failures stay in the cursor.
func DecodeDatum(dec *wire.Dec) Datum {
	var d Datum
	d.decode(dec)
	return d
}

func init() {
	wire.Register(wire.TDatum, "logobj.Datum", func(b []byte) (any, error) {
		var d Datum
		if err := d.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return d, nil
	})
}
