// Package logobj implements the shared log object of §4.3: an infinite array
// of slots holding data items, with operations append, pos, bumpAndLock and
// locked. Logs are the coordination backbone of Algorithm 1 — one per
// destination group and one per group intersection.
//
// The implementation is an in-memory linearizable object (runs are driven by
// a sequential scheduler, so linearizability is by construction); the uc
// package layers the paper's universal construction and its step accounting
// on top.
package logobj

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/groups"
	"repro/internal/msg"
)

// Kind distinguishes the three shapes of data Algorithm 1 stores in logs.
type Kind int

const (
	// KindMsg is a plain message m.
	KindMsg Kind = iota + 1
	// KindPos is a tuple (m, h, i): m occupies slot i of LOG_{g∩h}.
	KindPos
	// KindStable is a tuple (m, h): m is stabilised in group h.
	KindStable
)

// Datum is a data item stored in a log. The total order (<) over data used
// to break slot ties is the lexicographic order on (Msg, Kind, H, I); in
// particular two *messages* in the same slot are ordered by message ID,
// which is the paper's a-priori total order.
type Datum struct {
	Kind Kind
	Msg  msg.ID
	H    groups.GroupID
	I    int
}

// MsgDatum returns the log datum for message m.
func MsgDatum(m msg.ID) Datum { return Datum{Kind: KindMsg, Msg: m} }

// PosDatum returns the (m, h, i) datum.
func PosDatum(m msg.ID, h groups.GroupID, i int) Datum {
	return Datum{Kind: KindPos, Msg: m, H: h, I: i}
}

// StableDatum returns the (m, h) datum.
func StableDatum(m msg.ID, h groups.GroupID) Datum {
	return Datum{Kind: KindStable, Msg: m, H: h}
}

// Less is the a-priori total order over data items.
func (d Datum) Less(o Datum) bool {
	if d.Msg != o.Msg {
		return d.Msg < o.Msg
	}
	if d.Kind != o.Kind {
		return d.Kind < o.Kind
	}
	if d.H != o.H {
		return d.H < o.H
	}
	return d.I < o.I
}

// String renders the datum.
func (d Datum) String() string {
	switch d.Kind {
	case KindMsg:
		return fmt.Sprintf("m%d", d.Msg)
	case KindPos:
		return fmt.Sprintf("(m%d,g%d,%d)", d.Msg, d.H, d.I)
	case KindStable:
		return fmt.Sprintf("(m%d,g%d)", d.Msg, d.H)
	}
	return "?"
}

// Log is the shared log object. Slots are numbered from 1; position 0 means
// "absent". The zero value is not usable; call New.
type Log struct {
	name    string
	pos     map[Datum]int
	locked  map[Datum]bool
	head    int // first free slot after which there are only free slots
	version int64

	// msgSeq records the KindMsg datums in first-append order. Appends are
	// deduplicated, so each message appears exactly once; readers use it as
	// an incremental discovery stream (MessagesSince) instead of re-listing
	// and re-sorting the whole log on every scan.
	msgSeq []msg.ID
}

// New returns an empty log with a diagnostic name.
func New(name string) *Log {
	return &Log{name: name, pos: make(map[Datum]int), locked: make(map[Datum]bool), head: 1}
}

// Name returns the log's diagnostic name.
func (l *Log) Name() string { return l.name }

// Version increases on every mutation; idle-detection hooks use it.
func (l *Log) Version() int64 { return l.version }

// Append inserts d at the head slot and returns its position. If d is
// already in the log the operation does nothing and returns the current
// position.
func (l *Log) Append(d Datum) int {
	if p, ok := l.pos[d]; ok {
		return p
	}
	p := l.head
	l.pos[d] = p
	l.head = p + 1
	if d.Kind == KindMsg {
		l.msgSeq = append(l.msgSeq, d.Msg)
	}
	l.version++
	return p
}

// Pos returns the position of d, or 0 if d is absent.
func (l *Log) Pos(d Datum) int { return l.pos[d] }

// Contains reports whether d is in the log.
func (l *Log) Contains(d Datum) bool { return l.pos[d] != 0 }

// BumpAndLock moves d from its slot s to slot max(k, s) and locks it there.
// Once locked a datum cannot be bumped anymore, so a second call is a no-op.
// Calling BumpAndLock on an absent datum is a bug in the caller and panics.
func (l *Log) BumpAndLock(d Datum, k int) {
	cur, ok := l.pos[d]
	if !ok {
		panic(fmt.Sprintf("logobj: BumpAndLock(%v) on absent datum in %s", d, l.name))
	}
	if l.locked[d] {
		return
	}
	if k > cur {
		l.pos[d] = k
		if k >= l.head {
			l.head = k + 1
		}
	}
	l.locked[d] = true
	l.version++
}

// Locked reports whether d is locked in the log.
func (l *Log) Locked(d Datum) bool { return l.locked[d] }

// Less reports d <_L d': both in the log, and either at a lower position or
// tied on position and smaller in the a-priori order.
func (l *Log) Less(d, o Datum) bool {
	pd, ok1 := l.pos[d]
	po, ok2 := l.pos[o]
	if !ok1 || !ok2 {
		return false
	}
	if pd != po {
		return pd < po
	}
	return d.Less(o)
}

// Items returns every datum in <_L order.
func (l *Log) Items() []Datum {
	out := make([]Datum, 0, len(l.pos))
	for d := range l.pos {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return l.Less(out[i], out[j]) })
	return out
}

// Messages returns the message IDs present as KindMsg data, in <_L order.
func (l *Log) Messages() []msg.ID {
	var out []msg.ID
	for _, d := range l.Items() {
		if d.Kind == KindMsg {
			out = append(out, d.Msg)
		}
	}
	return out
}

// MsgCount returns how many distinct messages the log carries — the
// high-water mark of the MessagesSince stream.
func (l *Log) MsgCount() int { return len(l.msgSeq) }

// MessagesSince returns the messages appended after the first from message
// appends, in first-append order. Discovery keeps from as a per-log
// high-water mark and only ever reads the new suffix — the log is never
// re-listed wholesale. The returned slice is freshly allocated (safe to
// retain); an out-of-range from yields nil.
func (l *Log) MessagesSince(from int) []msg.ID {
	if from < 0 || from >= len(l.msgSeq) {
		return nil
	}
	return append([]msg.ID(nil), l.msgSeq[from:]...)
}

// MessagesBefore returns the message IDs with a KindMsg datum strictly
// before d in <_L order.
func (l *Log) MessagesBefore(d Datum) []msg.ID {
	if !l.Contains(d) {
		return nil
	}
	var out []msg.ID
	for item, p := range l.pos {
		if item.Kind != KindMsg {
			continue
		}
		_ = p
		if l.Less(item, d) {
			out = append(out, item.Msg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxPosTuple returns max{i : (m,-,i) ∈ L} over KindPos tuples for message
// m, and whether any such tuple exists (line 19 of Algorithm 1).
func (l *Log) MaxPosTuple(m msg.ID) (int, bool) {
	max, found := 0, false
	for d := range l.pos {
		if d.Kind == KindPos && d.Msg == m {
			found = true
			if d.I > max {
				max = d.I
			}
		}
	}
	return max, found
}

// HasPosTuple reports whether some (m, h, -) tuple is in the log.
func (l *Log) HasPosTuple(m msg.ID, h groups.GroupID) bool {
	for d := range l.pos {
		if d.Kind == KindPos && d.Msg == m && d.H == h {
			return true
		}
	}
	return false
}

// String renders the log contents.
func (l *Log) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[", l.name)
	for i, d := range l.Items() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v@%d", d, l.pos[d])
		if l.locked[d] {
			b.WriteByte('!')
		}
	}
	b.WriteByte(']')
	return b.String()
}
