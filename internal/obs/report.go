package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/groups"
)

// LatencySummary is a quantile summary of a latency distribution. Units are
// whatever the samples carried: scheduler ticks for TickLatency, milliseconds
// for WallLatency.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// P999 is the 99.9th percentile — the open-loop tail the SLO rows gate
	// on; with fewer than ~1000 samples it degenerates towards Max.
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// Summarise computes the summary of a sample set (zero value when empty).
// The input is not modified.
func Summarise(samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	q := func(p float64) float64 {
		// Nearest-rank on the sorted samples.
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return LatencySummary{
		Count: len(s),
		Mean:  sum / float64(len(s)),
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
		P999:  q(0.999),
		Max:   s[len(s)-1],
	}
}

// PairCoordination is the coordination footprint of one log: how many
// operations it served, how many fell back to consensus, and how many
// coordination steps each process was charged. Proposition 47 as a metric:
// in a contention-free run every process outside g∩h counts zero.
type PairCoordination struct {
	A         groups.GroupID           `json:"a"`
	B         groups.GroupID           `json:"b"`
	Ops       int64                    `json:"ops"`
	Contended int64                    `json:"contended"`
	PerProc   map[groups.Process]int64 `json:"per_proc"`
}

// LinkReport is the traffic of one directed link.
type LinkReport struct {
	From    groups.Process `json:"from"`
	To      groups.Process `json:"to"`
	Packets int64          `json:"packets"`
	Bytes   int64          `json:"bytes"`
}

// NetReport is the transport traffic of a live run.
type NetReport struct {
	Packets        int64        `json:"packets"`
	Bytes          int64        `json:"bytes"`
	OverflowDrops  int64        `json:"overflow_drops"`
	PerProcessSent []int64      `json:"per_process_sent"`
	PerProcessRecv []int64      `json:"per_process_recv"`
	PerLink        []LinkReport `json:"per_link,omitempty"`
}

// WireReport is the socket-level traffic of a run over a real transport
// (internal/wire). Unlike NetReport's estimated sizes, the byte counts here
// are real encoded frame bytes; the connection counters (dials, reconnects,
// short reads) only exist where there are connections to manage.
type WireReport struct {
	BytesOut      int64 `json:"bytes_out"`
	BytesIn       int64 `json:"bytes_in"`
	FramesEncoded int64 `json:"frames_encoded"`
	FramesDecoded int64 `json:"frames_decoded"`
	Dials         int64 `json:"dials"`
	Reconnects    int64 `json:"reconnects"`
	DecodeErrors  int64 `json:"decode_errors"`
	ShortReads    int64 `json:"short_reads"`
	QueueDrops    int64 `json:"queue_drops"`
	WriteDrops    int64 `json:"write_drops"`
	Flushes       int64 `json:"flushes"`
	FlushedFrames int64 `json:"flushed_frames"`
}

// FramesPerFlush is the mean write-coalescing factor (0 when the transport
// never flushed, e.g. a single-process in-memory run).
func (w *WireReport) FramesPerFlush() float64 {
	if w == nil || w.Flushes == 0 {
		return 0
	}
	return float64(w.FlushedFrames) / float64(w.Flushes)
}

// PaxosReport is the consensus substrate's work in a live run. Rounds are
// full two-phase synod rounds; FastRounds the phase-1-elided accepts the
// Multi-Paxos lease enables; the lease counters record fast-path churn
// (acquisitions via range prepare, invalidations on observed higher
// ballots). RespDrops/RespStale account proposer-response losses that the
// old implementation discarded silently.
type PaxosReport struct {
	Proposals         int64 `json:"proposals"`
	Rounds            int64 `json:"rounds"`
	RoundFailures     int64 `json:"round_failures"`
	FastRounds        int64 `json:"fast_rounds"`
	FastRoundFailures int64 `json:"fast_round_failures"`
	WindowRounds      int64 `json:"window_rounds"`
	WindowFailures    int64 `json:"window_failures"`
	WindowDepthPeak   int64 `json:"window_depth_peak"`
	LeasesAcquired    int64 `json:"leases_acquired"`
	LeasesLost        int64 `json:"leases_lost"`
	Decisions         int64 `json:"decisions"`
	Probes            int64 `json:"probes"`
	RespDrops         int64 `json:"resp_drops"`
	RespStale         int64 `json:"resp_stale"`
}

// ReplogReport is the replicated-log substrate's work in a live run.
type ReplogReport struct {
	Applies    int64 `json:"applies"`
	Submits    int64 `json:"submits"`
	Batches    int64 `json:"batches"`
	BatchedOps int64 `json:"batched_ops"`
	FwdOps     int64 `json:"fwd_ops,omitempty"`
	RemoteOps  int64 `json:"remote_ops,omitempty"`
}

// MeanBatchOps is the mean operations per proposed batch (0 when the run
// proposed no batches).
func (r *ReplogReport) MeanBatchOps() float64 {
	if r == nil || r.Batches == 0 {
		return 0
	}
	return float64(r.BatchedOps) / float64(r.Batches)
}

// ChaosReport mirrors the nemesis fault counters when the run's transport
// was chaos-wrapped.
type ChaosReport struct {
	Forwarded        uint64 `json:"forwarded"`
	Duplicated       uint64 `json:"duplicated"`
	Delayed          uint64 `json:"delayed"`
	DroppedRandom    uint64 `json:"dropped_random"`
	DroppedPartition uint64 `json:"dropped_partition"`
	DroppedDown      uint64 `json:"dropped_down"`
	DroppedOverflow  uint64 `json:"dropped_overflow"`
}

// Injections sums everything the nemesis actively did to the traffic.
func (c *ChaosReport) Injections() uint64 {
	if c == nil {
		return 0
	}
	return c.Duplicated + c.Delayed + c.DroppedRandom + c.DroppedPartition + c.DroppedDown + c.DroppedOverflow
}

// ChaosReporter is implemented by transports that inject faults
// (internal/chaos.Chaos).
type ChaosReporter interface {
	InjectionReport() *ChaosReport
}

// ClassCount is the population of one conflict class across the run's
// multicasts.
type ClassCount struct {
	Class uint64 `json:"class"`
	Count int64  `json:"count"`
}

// ConflictReport is the Generic variant's observability: how many deliveries
// skipped the g∩h coordination entirely, and how the multicasts distributed
// over conflict classes. Class 0 is the conflicts-with-all default, ^0 the
// commutes-with-all tag.
type ConflictReport struct {
	FastDeliveries int64        `json:"fast_deliveries"`
	Classes        []ClassCount `json:"classes,omitempty"`
}

// SchedReport is the stepping scheduler's work in a run: wakeups by cause,
// guard scan passes, Step calls short-circuited without a scan, and protocol
// actions fired. WakeupsPerDelivery and StepsPerDelivery (computed against
// the run's delivery count) are the event-efficiency of the hot path;
// TimerWakeups with SkippedScans high relative to Scans is the signature of
// an idle system that sleeps instead of polling.
type SchedReport struct {
	NotifyWakeups int64 `json:"notify_wakeups"`
	TimerWakeups  int64 `json:"timer_wakeups"`
	Scans         int64 `json:"scans"`
	SkippedScans  int64 `json:"skipped_scans"`
	Actions       int64 `json:"actions"`
}

// WALReport is the durable-storage footprint of a live run: records and
// payload bytes appended to the write-ahead logs, group-commit durability
// barriers (Syncs/Appends is the commit-batching ratio), segment rotations,
// and the replay work done by recovery on restart.
type WALReport struct {
	Appends          int64 `json:"appends"`
	Bytes            int64 `json:"bytes"`
	Syncs            int64 `json:"syncs"`
	Rotations        int64 `json:"rotations,omitempty"`
	RecoveredRecords int64 `json:"recovered_records,omitempty"`
	RecoveryNanos    int64 `json:"recovery_nanos,omitempty"`
}

// BytesPerAppend is the mean record payload size (0 with no appends).
func (w *WALReport) BytesPerAppend() float64 {
	if w == nil || w.Appends == 0 {
		return 0
	}
	return float64(w.Bytes) / float64(w.Appends)
}

// RunReport is one run's observability, for either backend. Quantities a
// backend does not measure are reported as absent (nil pointers, Accounted
// flags) and surface as ErrNotAccounted through the accessors — never as
// fabricated zeros.
type RunReport struct {
	// Backend is "sim" or "live".
	Backend   string `json:"backend"`
	Processes int    `json:"processes"`
	Groups    int    `json:"groups"`
	// Ticks is the final clock: virtual time under Sim, ~1ms ticks under
	// Live.
	Ticks int64 `json:"ticks"`
	// Wall is the run's wall-clock span (zero under Sim).
	Wall time.Duration `json:"wall"`

	Multicasts int64 `json:"multicasts"`
	Deliveries int64 `json:"deliveries"`

	// TickLatency summarises per-delivery latency in clock ticks (both
	// backends); WallLatency the same in milliseconds (Live only).
	TickLatency LatencySummary  `json:"tick_latency"`
	WallLatency *LatencySummary `json:"wall_latency,omitempty"`

	// StepsAccounted marks the Sim step ledger (per-process actions plus
	// shared-object charges). Live runs have no step ledger.
	StepsAccounted bool    `json:"steps_accounted"`
	Steps          []int64 `json:"steps,omitempty"`
	TotalSteps     int64   `json:"total_steps,omitempty"`

	// MessagesAccounted marks the §4.3 synthetic message count (Sim with
	// AccountCosts only).
	MessagesAccounted bool  `json:"messages_accounted"`
	Messages          int64 `json:"messages,omitempty"`

	Net      *NetReport      `json:"net,omitempty"`
	Wire     *WireReport     `json:"wire,omitempty"`
	Paxos    *PaxosReport    `json:"paxos,omitempty"`
	Replog   *ReplogReport   `json:"replog,omitempty"`
	WAL      *WALReport      `json:"wal,omitempty"`
	Sched    *SchedReport    `json:"sched,omitempty"`
	Chaos    *ChaosReport    `json:"chaos,omitempty"`
	Conflict *ConflictReport `json:"conflict,omitempty"`

	// Coordination is the per-pair-log footprint, sorted by pair.
	Coordination []PairCoordination `json:"coordination,omitempty"`

	// EventsTruncated counts events dropped past the recorder cap.
	EventsTruncated int64 `json:"events_truncated,omitempty"`
	// Events is the structured timeline (omitted from JSON; use
	// WriteTimeline for rendering).
	Events []Event `json:"-"`
}

// Report assembles the recorder's view of the run: timeline, latency
// summaries, coordination counts and substrate counters. Backends decorate
// the result with what only they know (step ledgers, transport counters).
func (r *Recorder) Report() RunReport {
	if r == nil {
		return RunReport{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RunReport{
		Wall:            r.wallNow(),
		Multicasts:      r.multicasts,
		Deliveries:      r.deliveries,
		TickLatency:     Summarise(r.tickLat),
		EventsTruncated: r.truncated,
		Events:          append([]Event(nil), r.events...),
	}
	if !r.epoch.IsZero() {
		ws := Summarise(r.wallLat)
		out.WallLatency = &ws
	} else {
		out.Wall = 0
	}
	if v := r.paxos.Proposals.Load() + r.paxos.Rounds.Load() + r.paxos.FastRounds.Load() + r.paxos.Decisions.Load() + r.paxos.Probes.Load(); v > 0 {
		out.Paxos = &PaxosReport{
			Proposals:         r.paxos.Proposals.Load(),
			Rounds:            r.paxos.Rounds.Load(),
			RoundFailures:     r.paxos.RoundFailures.Load(),
			FastRounds:        r.paxos.FastRounds.Load(),
			FastRoundFailures: r.paxos.FastRoundFailures.Load(),
			WindowRounds:      r.paxos.WindowRounds.Load(),
			WindowFailures:    r.paxos.WindowFailures.Load(),
			WindowDepthPeak:   r.paxos.WindowDepthPeak.Load(),
			LeasesAcquired:    r.paxos.LeasesAcquired.Load(),
			LeasesLost:        r.paxos.LeasesLost.Load(),
			Decisions:         r.paxos.Decisions.Load(),
			Probes:            r.paxos.Probes.Load(),
			RespDrops:         r.paxos.RespDrops.Load(),
			RespStale:         r.paxos.RespStale.Load(),
		}
	}
	if v := r.replog.Applies.Load() + r.replog.Submits.Load(); v > 0 {
		out.Replog = &ReplogReport{
			Applies:    r.replog.Applies.Load(),
			Submits:    r.replog.Submits.Load(),
			Batches:    r.replog.Batches.Load(),
			BatchedOps: r.replog.BatchedOps.Load(),
			FwdOps:     r.replog.FwdOps.Load(),
			RemoteOps:  r.replog.RemoteOps.Load(),
		}
	}
	if v := r.sched.Scans.Load() + r.sched.SkippedScans.Load() + r.sched.NotifyWakeups.Load() + r.sched.TimerWakeups.Load(); v > 0 {
		out.Sched = &SchedReport{
			NotifyWakeups: r.sched.NotifyWakeups.Load(),
			TimerWakeups:  r.sched.TimerWakeups.Load(),
			Scans:         r.sched.Scans.Load(),
			SkippedScans:  r.sched.SkippedScans.Load(),
			Actions:       r.sched.Actions.Load(),
		}
	}
	if v := r.wal.Appends.Load() + r.wal.RecoveredRecords.Load(); v > 0 {
		out.WAL = &WALReport{
			Appends:          r.wal.Appends.Load(),
			Bytes:            r.wal.Bytes.Load(),
			Syncs:            r.wal.Syncs.Load(),
			Rotations:        r.wal.Rotations.Load(),
			RecoveredRecords: r.wal.RecoveredRecords.Load(),
			RecoveryNanos:    r.wal.RecoveryNanos.Load(),
		}
	}
	interesting := r.fastDeliveries > 0
	for class := range r.classes {
		if class != 0 {
			interesting = true
		}
	}
	if interesting {
		cr := &ConflictReport{FastDeliveries: r.fastDeliveries}
		classes := make([]uint64, 0, len(r.classes))
		for class := range r.classes {
			classes = append(classes, class)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, class := range classes {
			cr.Classes = append(cr.Classes, ClassCount{Class: class, Count: r.classes[class]})
		}
		out.Conflict = cr
	}
	pairs := make([]Pair, 0, len(r.coord))
	for pair := range r.coord {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, pair := range pairs {
		pc := r.coord[pair]
		per := make(map[groups.Process]int64, len(pc.perProc))
		for p, v := range pc.perProc {
			per[p] = v
		}
		out.Coordination = append(out.Coordination, PairCoordination{
			A: pair.A, B: pair.B, Ops: pc.ops, Contended: pc.contended, PerProc: per,
		})
	}
	return out
}

// StepsOf returns the step count of process p, or ErrNotAccounted when the
// run kept no step ledger (the Live backend).
func (r *RunReport) StepsOf(p int) (int64, error) {
	if !r.StepsAccounted {
		return 0, fmt.Errorf("%w: no step ledger (backend %q)", ErrNotAccounted, r.Backend)
	}
	if p < 0 || p >= len(r.Steps) {
		return 0, fmt.Errorf("obs: process %d out of range [0,%d)", p, len(r.Steps))
	}
	return r.Steps[p], nil
}

// SentMessages returns the synthetic §4.3 message count, or ErrNotAccounted
// when the run did not charge shared-object costs.
func (r *RunReport) SentMessages() (int64, error) {
	if !r.MessagesAccounted {
		return 0, fmt.Errorf("%w: synthetic message count needs Sim with cost accounting", ErrNotAccounted)
	}
	return r.Messages, nil
}

// PacketsPerDelivery returns real wire packets per delivery event; ok is
// false when the run measured no transport traffic (the Sim backend) or
// delivered nothing.
func (r *RunReport) PacketsPerDelivery() (float64, bool) {
	if r.Net == nil || r.Deliveries == 0 {
		return 0, false
	}
	return float64(r.Net.Packets) / float64(r.Deliveries), true
}

// CoordinationOf returns the coordination footprint of the pair (g, h), if
// the run recorded one.
func (r *RunReport) CoordinationOf(g, h groups.GroupID) (PairCoordination, bool) {
	if g > h {
		g, h = h, g
	}
	for _, pc := range r.Coordination {
		if pc.A == g && pc.B == h {
			return pc, true
		}
	}
	return PairCoordination{}, false
}

// String renders a compact human summary.
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report (%s backend): %d procs, %d groups, %d multicasts, %d deliveries",
		r.Backend, r.Processes, r.Groups, r.Multicasts, r.Deliveries)
	fmt.Fprintf(&b, "\n  clock: %d ticks", r.Ticks)
	if r.Wall > 0 {
		fmt.Fprintf(&b, ", %v wall", r.Wall.Round(time.Millisecond))
	}
	if r.TickLatency.Count > 0 {
		fmt.Fprintf(&b, "\n  delivery latency (ticks): p50=%.0f p90=%.0f p99=%.0f max=%.0f",
			r.TickLatency.P50, r.TickLatency.P90, r.TickLatency.P99, r.TickLatency.Max)
	}
	if r.WallLatency != nil && r.WallLatency.Count > 0 {
		fmt.Fprintf(&b, "\n  delivery latency (ms):    p50=%.2f p90=%.2f p99=%.2f max=%.2f",
			r.WallLatency.P50, r.WallLatency.P90, r.WallLatency.P99, r.WallLatency.Max)
	}
	if r.StepsAccounted {
		fmt.Fprintf(&b, "\n  steps: %d total across %d processes", r.TotalSteps, len(r.Steps))
	}
	if r.MessagesAccounted {
		fmt.Fprintf(&b, ", %d synthetic messages", r.Messages)
	}
	if r.Net != nil {
		fmt.Fprintf(&b, "\n  net: %d packets, %d bytes, %d overflow drops", r.Net.Packets, r.Net.Bytes, r.Net.OverflowDrops)
		if ppd, ok := r.PacketsPerDelivery(); ok {
			fmt.Fprintf(&b, " (%.1f packets/delivery)", ppd)
		}
	}
	if r.Wire != nil {
		fmt.Fprintf(&b, "\n  wire: %d frames out (%d B), %d frames in (%d B), %d dials, %d reconnects",
			r.Wire.FramesEncoded, r.Wire.BytesOut, r.Wire.FramesDecoded, r.Wire.BytesIn,
			r.Wire.Dials, r.Wire.Reconnects)
		if r.Wire.Flushes > 0 {
			fmt.Fprintf(&b, "\n  wire flushes: %d (%.1f frames/flush)", r.Wire.Flushes, r.Wire.FramesPerFlush())
		}
		if n := r.Wire.DecodeErrors + r.Wire.ShortReads + r.Wire.QueueDrops + r.Wire.WriteDrops; n > 0 {
			fmt.Fprintf(&b, " (%d decode errors, %d short reads, %d queue drops, %d write drops)",
				r.Wire.DecodeErrors, r.Wire.ShortReads, r.Wire.QueueDrops, r.Wire.WriteDrops)
		}
	}
	if r.Paxos != nil {
		fmt.Fprintf(&b, "\n  paxos: %d proposals, %d rounds (%d failed), %d fast rounds (%d failed), %d decisions, %d probes",
			r.Paxos.Proposals, r.Paxos.Rounds, r.Paxos.RoundFailures,
			r.Paxos.FastRounds, r.Paxos.FastRoundFailures, r.Paxos.Decisions, r.Paxos.Probes)
		if r.Paxos.WindowRounds > 0 {
			fmt.Fprintf(&b, "\n  window: %d rounds (%d failed), depth peak %d",
				r.Paxos.WindowRounds, r.Paxos.WindowFailures, r.Paxos.WindowDepthPeak)
		}
		fmt.Fprintf(&b, "\n  leases: %d acquired, %d lost; resp: %d dropped, %d stale",
			r.Paxos.LeasesAcquired, r.Paxos.LeasesLost, r.Paxos.RespDrops, r.Paxos.RespStale)
	}
	if r.Replog != nil {
		fmt.Fprintf(&b, "\n  replog: %d submits, %d applies", r.Replog.Submits, r.Replog.Applies)
		if r.Replog.Batches > 0 {
			fmt.Fprintf(&b, ", %d batches (%.1f ops/batch)", r.Replog.Batches, r.Replog.MeanBatchOps())
		}
	}
	if r.Sched != nil {
		fmt.Fprintf(&b, "\n  sched: %d notify + %d timer wakeups, %d scans (%d skipped), %d actions",
			r.Sched.NotifyWakeups, r.Sched.TimerWakeups, r.Sched.Scans, r.Sched.SkippedScans, r.Sched.Actions)
	}
	if r.WAL != nil {
		fmt.Fprintf(&b, "\n  wal: %d appends (%d B, %.1f B/append), %d syncs, %d rotations",
			r.WAL.Appends, r.WAL.Bytes, r.WAL.BytesPerAppend(), r.WAL.Syncs, r.WAL.Rotations)
		if r.WAL.RecoveredRecords > 0 {
			fmt.Fprintf(&b, "; recovered %d records in %v",
				r.WAL.RecoveredRecords, time.Duration(r.WAL.RecoveryNanos).Round(time.Microsecond))
		}
	}
	if r.Chaos != nil {
		fmt.Fprintf(&b, "\n  chaos: %d injections (%d dup, %d delay, %d drop)",
			r.Chaos.Injections(), r.Chaos.Duplicated, r.Chaos.Delayed,
			r.Chaos.DroppedRandom+r.Chaos.DroppedPartition+r.Chaos.DroppedDown+r.Chaos.DroppedOverflow)
	}
	if r.Conflict != nil {
		fmt.Fprintf(&b, "\n  conflict: %d fast deliveries (skipped coordination), %d classes",
			r.Conflict.FastDeliveries, len(r.Conflict.Classes))
		for _, cc := range r.Conflict.Classes {
			name := fmt.Sprintf("k%d", cc.Class)
			switch cc.Class {
			case 0:
				name = "all"
			case ^uint64(0):
				name = "free"
			}
			fmt.Fprintf(&b, "\n    class %s: %d multicasts", name, cc.Count)
		}
	}
	for _, pc := range r.Coordination {
		if pc.A == pc.B {
			continue
		}
		fmt.Fprintf(&b, "\n  coordination g%d∩g%d: %d ops (%d contended)", pc.A, pc.B, pc.Ops, pc.Contended)
	}
	if r.EventsTruncated > 0 {
		fmt.Fprintf(&b, "\n  timeline truncated: %d events dropped past the cap", r.EventsTruncated)
	}
	return b.String()
}

// WriteTimeline renders the last max events (all when max <= 0), one per
// line — the timeline a failing soak ships with its report.
func (r *RunReport) WriteTimeline(w io.Writer, max int) {
	ev := r.Events
	if max > 0 && len(ev) > max {
		fmt.Fprintf(w, "  ... %d earlier events elided ...\n", len(ev)-max)
		ev = ev[len(ev)-max:]
	}
	for _, e := range ev {
		pair := fmt.Sprintf("g%d", e.G)
		if e.H != e.G {
			pair = fmt.Sprintf("g%d∩g%d", e.G, e.H)
		}
		if e.Wall > 0 {
			fmt.Fprintf(w, "  t=%-6d %-9s p%-3d m%-4d %-8s v=%-4d wall=%v\n",
				e.T, e.Kind, e.P, e.M, pair, e.V, e.Wall.Round(time.Microsecond))
			continue
		}
		fmt.Fprintf(w, "  t=%-6d %-9s p%-3d m%-4d %-8s v=%d\n", e.T, e.Kind, e.P, e.M, pair, e.V)
	}
}
