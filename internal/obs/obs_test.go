package obs_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/obs"
)

// pairTopo is g0 = {0,1}, g1 = {1,2}: one intersection, {1}.
func pairTopo(t *testing.T) *groups.Topology {
	t.Helper()
	topo, err := groups.New(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// runSeeded drives one instrumented sim run and returns its report.
func runSeeded(t *testing.T, topo *groups.Topology, seed int64, multi bool) obs.RunReport {
	t.Helper()
	rec := obs.NewRecorder(obs.Options{})
	opt := core.Options{Rec: rec, FD: fd.Options{Delay: 8, Seed: seed}}
	sys := core.NewSystem(topo, failure.NewPattern(topo.NumProcesses()), opt, seed)
	sys.MulticastAt(0, 0, 0, nil)
	if multi {
		sys.MulticastAt(2, 2, 1, nil)
	}
	if !sys.Run() {
		t.Fatal("run did not quiesce")
	}
	return sys.Report()
}

// TestSimEventStreamDeterministic pins the determinism contract: two runs
// from the same seed produce bit-identical event streams — the recorder must
// not leak wall time or iteration order into a sim timeline.
func TestSimEventStreamDeterministic(t *testing.T) {
	a := runSeeded(t, pairTopo(t), 42, true)
	b := runSeeded(t, pairTopo(t), 42, true)
	if len(a.Events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, e := range a.Events {
		if e.Wall != 0 {
			t.Fatalf("sim event carries a wall stamp: %+v", e)
		}
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("same-seed event streams differ: %d vs %d events", len(a.Events), len(b.Events))
	}
	if !reflect.DeepEqual(a.Coordination, b.Coordination) {
		t.Errorf("same-seed coordination counts differ:\n%+v\n%+v", a.Coordination, b.Coordination)
	}
}

// TestCoordinationStaysInIntersection makes Proposition 47 a measured
// quantity: in a contention-free run, every coordination step on LOG_{g∩h}
// is charged inside g∩h — processes outside the intersection count zero.
func TestCoordinationStaysInIntersection(t *testing.T) {
	topo := pairTopo(t)
	rep := runSeeded(t, topo, 9, false) // one message: contention-free
	pc, ok := rep.CoordinationOf(0, 1)
	if !ok {
		t.Fatal("no coordination recorded on the pair log g0∩g1")
	}
	if pc.Ops == 0 {
		t.Fatal("pair log served no operations")
	}
	if pc.Contended != 0 {
		t.Errorf("contention-free run hit the consensus fallback %d times", pc.Contended)
	}
	inter := topo.Intersection(0, 1)
	for p, n := range pc.PerProc {
		if n > 0 && !inter.Has(p) {
			t.Errorf("process %d outside g0∩g1 charged %d coordination steps", p, n)
		}
	}
	// The intersection member itself must have been charged.
	if pc.PerProc[1] == 0 {
		t.Error("intersection member 1 charged zero coordination steps")
	}
}

func TestSummariseQuantiles(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100 - i) // reversed: Summarise must sort a copy
	}
	s := obs.Summarise(samples)
	want := obs.LatencySummary{Count: 100, Mean: 50.5, P50: 50, P90: 90, P99: 99, P999: 100, Max: 100}
	if s != want {
		t.Errorf("Summarise = %+v, want %+v", s, want)
	}
	if samples[0] != 100 {
		t.Error("Summarise mutated its input")
	}
	if z := obs.Summarise(nil); z != (obs.LatencySummary{}) {
		t.Errorf("Summarise(nil) = %+v, want zero value", z)
	}
}

// TestRecorderOffIsNil pins the off switch: LevelOff yields a nil recorder,
// and every method on it is a safe no-op.
func TestRecorderOffIsNil(t *testing.T) {
	r := obs.NewRecorder(obs.Options{Level: obs.LevelOff})
	if r != nil {
		t.Fatal("LevelOff recorder is not nil")
	}
	r.Multicast(0, 1, 0, 0)
	r.Deliver(0, 1, 0, 0)
	r.Coordination(obs.Pair{}, 0, false)
	r.Paxos().IncRound()
	r.Replog().IncApply()
	if ev := r.Events(); ev != nil {
		t.Errorf("nil recorder returned events: %v", ev)
	}
	if rep := r.Report(); rep.Multicasts != 0 {
		t.Errorf("nil recorder report: %+v", rep)
	}
}
