// Package obs is the run-level observability layer shared by both backends:
// a lock-cheap recorder of structured run events (multicast issued, log
// append, bump-and-lock, consensus propose/decide, delivery) with
// per-message latency samples and per-pair coordination counts, plus atomic
// counter blocks the live substrate bumps on its hot paths (transport
// packets/bytes per link, paxos rounds and retransmits, replog applies,
// chaos injections).
//
// The Sim backend stamps events in virtual time, the Live backend in wall
// time, so one RunReport type (report.go) carries delivery-latency
// histograms, per-process footprints and per-pair g∩h coordination counts
// for both substrates. That makes Proposition 47's "contention-free
// coordination stays inside g∩h" an observable quantity rather than only a
// checker verdict: in a contention-free run the coordination count of every
// process outside g∩h is zero.
//
// Cost discipline: counters are plain atomics owned by the subsystems; the
// event timeline takes one short critical section per recorded event and is
// capped (overflow is counted, never silent). A nil *Recorder is a valid
// no-op recorder — every method is nil-safe — so uninstrumented runs pay a
// single pointer test per call site.
package obs

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// ErrNotAccounted is returned for quantities the run did not measure: step
// ledgers on the Live backend, synthetic message counts without the §4.3
// cost model, or any report when observability was disabled. Callers branch
// on it with errors.Is instead of receiving a fabricated zero.
var ErrNotAccounted = errors.New("obs: quantity not accounted on this run")

// Level selects how much the recorder keeps.
type Level int

const (
	// LevelAll keeps the event timeline, latency samples, coordination
	// counts and counters. The default.
	LevelAll Level = iota
	// LevelCounters drops the event timeline but keeps everything else —
	// the right setting for long soaks where a full timeline would grow
	// without bound.
	LevelCounters
	// LevelOff records nothing (Report returns ErrNotAccounted upstream).
	LevelOff
)

// Kind is the type of a run event.
type Kind uint8

const (
	// EvMulticast is a client multicast entering the system.
	EvMulticast Kind = iota + 1
	// EvAppend is LOG.append on a group or pair log.
	EvAppend
	// EvBump is LOG.bumpAndLock.
	EvBump
	// EvPropose is a CONS_{m,f} proposal.
	EvPropose
	// EvDecide is the corresponding decision being learnt.
	EvDecide
	// EvDeliver is a local delivery.
	EvDeliver
)

// String renders the kind for timelines.
func (k Kind) String() string {
	switch k {
	case EvMulticast:
		return "multicast"
	case EvAppend:
		return "append"
	case EvBump:
		return "bump"
	case EvPropose:
		return "propose"
	case EvDecide:
		return "decide"
	case EvDeliver:
		return "deliver"
	}
	return "?"
}

// Event is one structured run event. T is the backend's clock — virtual
// time under Sim, ~1ms ticks under Live — and Wall is the wall-clock offset
// from the run's start, zero on Sim so that same-seed Sim event streams are
// bit-identical.
type Event struct {
	Seq  int64          `json:"seq"`
	Kind Kind           `json:"kind"`
	P    groups.Process `json:"p"`
	M    msg.ID         `json:"m"`
	G    groups.GroupID `json:"g"`
	H    groups.GroupID `json:"h"`
	Aux  uint8          `json:"aux,omitempty"` // logobj datum kind on appends
	V    int            `json:"v,omitempty"`   // position / proposed / decided value
	T    failure.Time   `json:"t"`
	Wall time.Duration  `json:"wall,omitempty"`
}

// Pair is the canonical unordered pair of groups whose intersection a log
// serves (A == B for a group log).
type Pair struct {
	A, B groups.GroupID
}

// Options parameterise a recorder.
type Options struct {
	// Level selects how much is kept (default LevelAll).
	Level Level
	// WallClock stamps events and latency samples with wall time measured
	// from NewRecorder. Live runs set it; Sim runs must not (determinism).
	WallClock bool
	// MaxEvents caps the timeline; overflow increments a counter instead of
	// growing without bound. Default 1 << 20.
	MaxEvents int
}

// Recorder collects one run's observability. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops).
type Recorder struct {
	level Level
	epoch time.Time // zero ⇒ no wall stamps
	max   int

	paxos  PaxosCounters
	replog ReplogCounters
	wal    WALCounters
	sched  SchedCounters

	mu         sync.Mutex
	seq        int64
	events     []Event
	truncated  int64
	reqTick    map[msg.ID]failure.Time
	reqWall    map[msg.ID]time.Duration
	tickLat    []float64
	wallLat    []float64
	coord      map[Pair]*pairCoord
	multicasts int64
	deliveries int64

	// Generic-variant observability: deliveries that skipped the g∩h
	// coordination entirely, and the population of each conflict class seen
	// at multicast time.
	fastDeliveries int64
	classes        map[uint64]int64
}

type pairCoord struct {
	ops       int64
	contended int64
	perProc   map[groups.Process]int64
}

// NewRecorder builds a recorder. A LevelOff recorder is returned as nil —
// the nil-safe methods make that the cheapest possible off switch.
func NewRecorder(o Options) *Recorder {
	if o.Level == LevelOff {
		return nil
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 1 << 20
	}
	r := &Recorder{
		level:   o.Level,
		max:     o.MaxEvents,
		reqTick: make(map[msg.ID]failure.Time),
		reqWall: make(map[msg.ID]time.Duration),
		coord:   make(map[Pair]*pairCoord),
		classes: make(map[uint64]int64),
	}
	if o.WallClock {
		r.epoch = time.Now()
	}
	return r
}

// Paxos returns the recorder's paxos counter block (nil on a nil recorder).
func (r *Recorder) Paxos() *PaxosCounters {
	if r == nil {
		return nil
	}
	return &r.paxos
}

// Replog returns the recorder's replog counter block (nil on a nil recorder).
func (r *Recorder) Replog() *ReplogCounters {
	if r == nil {
		return nil
	}
	return &r.replog
}

// WAL returns the recorder's write-ahead-log counter block (nil on a nil
// recorder).
func (r *Recorder) WAL() *WALCounters {
	if r == nil {
		return nil
	}
	return &r.wal
}

// Sched returns the recorder's scheduler counter block (nil on a nil
// recorder).
func (r *Recorder) Sched() *SchedCounters {
	if r == nil {
		return nil
	}
	return &r.sched
}

// wallNow returns the wall offset since the epoch, or zero when the
// recorder does not stamp wall time.
func (r *Recorder) wallNow() time.Duration {
	if r.epoch.IsZero() {
		return 0
	}
	return time.Since(r.epoch)
}

// record appends one event under the cap (caller holds r.mu).
func (r *Recorder) record(e Event) {
	if r.level != LevelAll {
		return
	}
	if len(r.events) >= r.max {
		r.truncated++
		return
	}
	e.Seq = r.seq
	r.seq++
	r.events = append(r.events, e)
}

// Multicast records a client multicast entering the system; its timestamp
// is the left endpoint of every latency sample of m.
func (r *Recorder) Multicast(p groups.Process, m msg.ID, g groups.GroupID, t failure.Time) {
	if r == nil {
		return
	}
	w := r.wallNow()
	r.mu.Lock()
	r.multicasts++
	if _, ok := r.reqTick[m]; !ok {
		r.reqTick[m] = t
		r.reqWall[m] = w
	}
	r.record(Event{Kind: EvMulticast, P: p, M: m, G: g, H: g, T: t, Wall: w})
	r.mu.Unlock()
}

// Deliver records a local delivery and takes a latency sample against the
// multicast time of m.
func (r *Recorder) Deliver(p groups.Process, m msg.ID, g groups.GroupID, t failure.Time) {
	if r == nil {
		return
	}
	w := r.wallNow()
	r.mu.Lock()
	r.deliveries++
	if req, ok := r.reqTick[m]; ok {
		r.tickLat = append(r.tickLat, float64(t-req))
		if !r.epoch.IsZero() {
			r.wallLat = append(r.wallLat, float64(w-r.reqWall[m])/float64(time.Millisecond))
		}
	}
	r.record(Event{Kind: EvDeliver, P: p, M: m, G: g, H: g, T: t, Wall: w})
	r.mu.Unlock()
}

// Append records LOG_{g∩h}.append (g == h for a group log). aux is the
// datum kind, v the resulting position when known.
func (r *Recorder) Append(p groups.Process, m msg.ID, g, h groups.GroupID, aux uint8, v int, t failure.Time) {
	if r == nil {
		return
	}
	w := r.wallNow()
	r.mu.Lock()
	r.record(Event{Kind: EvAppend, P: p, M: m, G: g, H: h, Aux: aux, V: v, T: t, Wall: w})
	r.mu.Unlock()
}

// Bump records LOG_{g∩h}.bumpAndLock(m, k).
func (r *Recorder) Bump(p groups.Process, m msg.ID, g, h groups.GroupID, k int, t failure.Time) {
	if r == nil {
		return
	}
	w := r.wallNow()
	r.mu.Lock()
	r.record(Event{Kind: EvBump, P: p, M: m, G: g, H: h, V: k, T: t, Wall: w})
	r.mu.Unlock()
}

// Propose records a CONS_{m,f} proposal of value v by p.
func (r *Recorder) Propose(p groups.Process, m msg.ID, g groups.GroupID, v int, t failure.Time) {
	if r == nil {
		return
	}
	w := r.wallNow()
	r.mu.Lock()
	r.record(Event{Kind: EvPropose, P: p, M: m, G: g, H: g, V: v, T: t, Wall: w})
	r.mu.Unlock()
}

// Decide records the decision of CONS_{m,f} as learnt by p.
func (r *Recorder) Decide(p groups.Process, m msg.ID, g groups.GroupID, v int, t failure.Time) {
	if r == nil {
		return
	}
	w := r.wallNow()
	r.mu.Lock()
	r.record(Event{Kind: EvDecide, P: p, M: m, G: g, H: g, V: v, T: t, Wall: w})
	r.mu.Unlock()
}

// FastDelivery counts one delivery that took the Generic variant's fast
// path — the message commuted with everything, so no pair log, consensus or
// stabilisation was consulted.
func (r *Recorder) FastDelivery() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.fastDeliveries++
	r.mu.Unlock()
}

// NoteClass counts one multicast tagged with the given conflict class.
func (r *Recorder) NoteClass(class uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.classes[class]++
	r.mu.Unlock()
}

// Coordination records one coordination operation on the log of pair,
// charged to every member of set (the adopt-commit participants g∩h on the
// fast path, the hosting group on the consensus fallback — Proposition 47's
// footprint, counted). contended marks the fallback.
func (r *Recorder) Coordination(pair Pair, set groups.ProcSet, contended bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	pc, ok := r.coord[pair]
	if !ok {
		pc = &pairCoord{perProc: make(map[groups.Process]int64)}
		r.coord[pair] = pc
	}
	pc.ops++
	if contended {
		pc.contended++
	}
	for _, p := range set.Members() {
		pc.perProc[p]++
	}
	r.mu.Unlock()
}

// Events returns a snapshot of the event timeline.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ---------------------------------------------------------------------------
// Counter blocks bumped by the live substrate's hot paths.

// PaxosCounters count the consensus substrate's work. Rounds are the full
// two-phase synod rounds; FastRounds are the Multi-Paxos steady-state
// rounds (phase 1 elided under a leader lease). Probes are anti-entropy
// broadcasts for possibly-dropped decide messages. RespDrops count
// proposer responses lost to a full response channel; RespStale counts
// leftovers from prior rounds drained at round start.
type PaxosCounters struct {
	Proposals         atomic.Int64
	Rounds            atomic.Int64
	RoundFailures     atomic.Int64
	FastRounds        atomic.Int64
	FastRoundFailures atomic.Int64
	WindowRounds      atomic.Int64
	WindowFailures    atomic.Int64
	WindowDepthPeak   atomic.Int64
	LeasesAcquired    atomic.Int64
	LeasesLost        atomic.Int64
	Decisions         atomic.Int64
	Probes            atomic.Int64
	RespDrops         atomic.Int64
	RespStale         atomic.Int64
}

// IncProposal counts one Propose entry (nil-safe, like every Inc method).
func (c *PaxosCounters) IncProposal() {
	if c != nil {
		c.Proposals.Add(1)
	}
}

// IncRound counts one prepare/accept round attempt.
func (c *PaxosCounters) IncRound() {
	if c != nil {
		c.Rounds.Add(1)
	}
}

// IncRoundFailure counts one failed round (deadline or refusal).
func (c *PaxosCounters) IncRoundFailure() {
	if c != nil {
		c.RoundFailures.Add(1)
	}
}

// IncDecision counts one decision learnt for the first time.
func (c *PaxosCounters) IncDecision() {
	if c != nil {
		c.Decisions.Add(1)
	}
}

// IncProbe counts one anti-entropy decision probe broadcast.
func (c *PaxosCounters) IncProbe() {
	if c != nil {
		c.Probes.Add(1)
	}
}

// IncFastRound counts one phase-1-elided accept round under a lease.
func (c *PaxosCounters) IncFastRound() {
	if c != nil {
		c.FastRounds.Add(1)
	}
}

// IncFastRoundFailure counts one fast round that fell back to the full
// protocol (NACK, deadline, or concurrent decision).
func (c *PaxosCounters) IncFastRoundFailure() {
	if c != nil {
		c.FastRoundFailures.Add(1)
	}
}

// IncWindowRound counts one windowed (pipelined) accept round fired.
func (c *PaxosCounters) IncWindowRound() {
	if c != nil {
		c.WindowRounds.Add(1)
	}
}

// IncWindowRoundFailure counts one windowed round that ended without a
// decision (deadline or NACK) — a potential hole the caller repairs.
func (c *PaxosCounters) IncWindowRoundFailure() {
	if c != nil {
		c.WindowFailures.Add(1)
	}
}

// NoteWindowDepth records the observed outstanding-round depth of one
// realm, keeping the run's peak.
func (c *PaxosCounters) NoteWindowDepth(d int64) {
	if c == nil {
		return
	}
	for {
		cur := c.WindowDepthPeak.Load()
		if d <= cur || c.WindowDepthPeak.CompareAndSwap(cur, d) {
			return
		}
	}
}

// IncLeaseAcquired counts one range prepare installing a proposer lease.
func (c *PaxosCounters) IncLeaseAcquired() {
	if c != nil {
		c.LeasesAcquired.Add(1)
	}
}

// IncLeaseLost counts one lease invalidated by an observed higher ballot.
func (c *PaxosCounters) IncLeaseLost() {
	if c != nil {
		c.LeasesLost.Add(1)
	}
}

// IncRespDrop counts one proposer response dropped on a full channel.
func (c *PaxosCounters) IncRespDrop() {
	if c != nil {
		c.RespDrops.Add(1)
	}
}

// IncRespStale counts one leftover response drained at round start.
func (c *PaxosCounters) IncRespStale() {
	if c != nil {
		c.RespStale.Add(1)
	}
}

// ReplogCounters count the replicated-log substrate's work. Batches are
// consensus slots proposed by the batching submit loop; BatchedOps is the
// total operations those slots carried (BatchedOps/Batches is the mean
// batch size, the lever that amortises one accept round over many
// multicasts).
type ReplogCounters struct {
	Applies    atomic.Int64
	Submits    atomic.Int64
	Batches    atomic.Int64
	BatchedOps atomic.Int64
	FwdOps     atomic.Int64
	RemoteOps  atomic.Int64
}

// AddBatch counts one batch of n operations fired at a consensus slot.
func (c *ReplogCounters) AddBatch(n int) {
	if c != nil {
		c.Batches.Add(1)
		c.BatchedOps.Add(int64(n))
	}
}

// IncApply counts one operation applied to a local replica.
func (c *ReplogCounters) IncApply() {
	if c != nil {
		c.Applies.Add(1)
	}
}

// IncSubmit counts one operation funnelled through consensus.
func (c *ReplogCounters) IncSubmit() {
	if c != nil {
		c.Submits.Add(1)
	}
}

// AddFwd counts n operations forwarded to a realm's leaseholder.
func (c *ReplogCounters) AddFwd(n int) {
	if c != nil {
		c.FwdOps.Add(int64(n))
	}
}

// AddRemote counts n forwarded operations accepted into the local batcher.
func (c *ReplogCounters) AddRemote(n int) {
	if c != nil {
		c.RemoteOps.Add(int64(n))
	}
}

// SchedCounters count the stepping scheduler's work: how often nodes woke
// (split by cause), how many guard scan passes they ran, how many Step calls
// the change-vector check short-circuited without scanning, and how many
// protocol actions fired. Scans/Actions is the scan efficiency of the ready
// set; TimerWakeups alongside SkippedScans is the idle-CPU proxy — an
// event-driven system shows timer wakeups that skip their scan, a polling
// one shows scans growing with wall time regardless of traffic.
type SchedCounters struct {
	NotifyWakeups atomic.Int64
	TimerWakeups  atomic.Int64
	Scans         atomic.Int64
	SkippedScans  atomic.Int64
	Actions       atomic.Int64
}

// IncNotifyWakeup counts one node wakeup caused by a change notification.
func (c *SchedCounters) IncNotifyWakeup() {
	if c != nil {
		c.NotifyWakeups.Add(1)
	}
}

// IncTimerWakeup counts one safety-net timer wakeup.
func (c *SchedCounters) IncTimerWakeup() {
	if c != nil {
		c.TimerWakeups.Add(1)
	}
}

// IncScan counts one guard scan pass over a node's ready set.
func (c *SchedCounters) IncScan() {
	if c != nil {
		c.Scans.Add(1)
	}
}

// IncSkippedScan counts one Step short-circuited by the change-vector check.
func (c *SchedCounters) IncSkippedScan() {
	if c != nil {
		c.SkippedScans.Add(1)
	}
}

// IncAction counts one protocol action fired.
func (c *SchedCounters) IncAction() {
	if c != nil {
		c.Actions.Add(1)
	}
}

// WALCounters count the durable-storage work of the live substrate's
// write-ahead logs: records and bytes appended, group-commit syncs
// (Syncs/Appends is the commit-batching ratio), segment rotations, and the
// records/time recovered by replay on restart.
type WALCounters struct {
	Appends          atomic.Int64
	Bytes            atomic.Int64
	Syncs            atomic.Int64
	Rotations        atomic.Int64
	RecoveredRecords atomic.Int64
	RecoveryNanos    atomic.Int64
}

// AddAppend counts one appended record of n payload bytes.
func (c *WALCounters) AddAppend(n int) {
	if c != nil {
		c.Appends.Add(1)
		c.Bytes.Add(int64(n))
	}
}

// IncSync counts one group-commit durability barrier.
func (c *WALCounters) IncSync() {
	if c != nil {
		c.Syncs.Add(1)
	}
}

// IncRotation counts one segment rotation.
func (c *WALCounters) IncRotation() {
	if c != nil {
		c.Rotations.Add(1)
	}
}

// AddRecovery counts a replay of n records taking d of wall time.
func (c *WALCounters) AddRecovery(n int64, d time.Duration) {
	if c != nil {
		c.RecoveredRecords.Add(n)
		c.RecoveryNanos.Add(int64(d))
	}
}

// NetCounters count transport traffic per directed link. They are owned by
// the transport (internal/net allocates one per Network) and read through
// NetReporter at report time.
type NetCounters struct {
	n        int
	packets  []atomic.Int64 // from*n + to
	bytes    []atomic.Int64
	overflow atomic.Int64
}

// NewNetCounters builds counters for n processes.
func NewNetCounters(n int) *NetCounters {
	return &NetCounters{
		n:       n,
		packets: make([]atomic.Int64, n*n),
		bytes:   make([]atomic.Int64, n*n),
	}
}

// Sent counts one packet of approximately size bytes on from→to.
func (c *NetCounters) Sent(from, to groups.Process, size int) {
	if c == nil {
		return
	}
	i := int(from)*c.n + int(to)
	if i < 0 || i >= len(c.packets) {
		return
	}
	c.packets[i].Add(1)
	c.bytes[i].Add(int64(size))
}

// Overflow counts one packet dropped on a full inbox.
func (c *NetCounters) Overflow() {
	if c != nil {
		c.overflow.Add(1)
	}
}

// Report snapshots the counters into a NetReport.
func (c *NetCounters) Report() *NetReport {
	if c == nil {
		return nil
	}
	r := &NetReport{
		PerProcessSent: make([]int64, c.n),
		PerProcessRecv: make([]int64, c.n),
		OverflowDrops:  c.overflow.Load(),
	}
	for f := 0; f < c.n; f++ {
		for t := 0; t < c.n; t++ {
			i := f*c.n + t
			pk := c.packets[i].Load()
			if pk == 0 {
				continue
			}
			by := c.bytes[i].Load()
			r.Packets += pk
			r.Bytes += by
			r.PerProcessSent[f] += pk
			r.PerProcessRecv[t] += pk
			r.PerLink = append(r.PerLink, LinkReport{
				From: groups.Process(f), To: groups.Process(t), Packets: pk, Bytes: by,
			})
		}
	}
	return r
}

// NetReporter is implemented by transports that expose traffic counters
// (internal/net.Network natively, internal/chaos.Chaos by delegation).
type NetReporter interface {
	NetReport() *NetReport
}

// WireCounters count the socket-level work of a real transport
// (internal/wire): real encoded bytes rather than EstimateSize guesses,
// plus the connection-management events the in-memory fabric has no notion
// of. One instance may be shared by several TCP nodes (the loopback fabric
// aggregates all of a run's sockets into one report).
type WireCounters struct {
	BytesOut      atomic.Int64
	BytesIn       atomic.Int64
	FramesEncoded atomic.Int64
	FramesDecoded atomic.Int64
	Dials         atomic.Int64
	Reconnects    atomic.Int64
	DecodeErrors  atomic.Int64
	ShortReads    atomic.Int64
	QueueDrops    atomic.Int64
	// WriteDrops counts frames lost inside a write loop — a failed socket
	// write or a redial discarding the in-flight frame. Send-side queue
	// overflows are QueueDrops; without this counter, write-side losses
	// were only visible as Reconnects and chaos bench rows could not
	// attribute lost frames.
	WriteDrops atomic.Int64
	// Flushes/FlushedFrames count the write loops' coalescing: one flush
	// is one syscall-level write of ≥1 queued frames. FlushedFrames/Flushes
	// is the mean coalescing factor.
	Flushes       atomic.Int64
	FlushedFrames atomic.Int64
}

// Report snapshots the counters into a WireReport.
func (c *WireCounters) Report() *WireReport {
	if c == nil {
		return nil
	}
	return &WireReport{
		BytesOut:      c.BytesOut.Load(),
		BytesIn:       c.BytesIn.Load(),
		FramesEncoded: c.FramesEncoded.Load(),
		FramesDecoded: c.FramesDecoded.Load(),
		Dials:         c.Dials.Load(),
		Reconnects:    c.Reconnects.Load(),
		DecodeErrors:  c.DecodeErrors.Load(),
		ShortReads:    c.ShortReads.Load(),
		QueueDrops:    c.QueueDrops.Load(),
		WriteDrops:    c.WriteDrops.Load(),
		Flushes:       c.Flushes.Load(),
		FlushedFrames: c.FlushedFrames.Load(),
	}
}

// WireReporter is implemented by transports that run over real sockets
// (internal/wire.TCP, internal/wire.Fabric).
type WireReporter interface {
	WireReport() *WireReport
}

// sizeCache memoises per-type wire-size estimates.
var sizeCache sync.Map // reflect.Type → int

// EstimateSize approximates the wire footprint of an in-memory packet: a
// fixed header (from/to/type plus framing) plus the body's in-memory struct
// size. It is an estimate — variable-length fields inside the body are not
// chased — but it is consistent across runs, which is what comparing
// configurations needs. The TCP fabric (internal/wire) does not use it: it
// counts the real encoded frame bytes.
func EstimateSize(body any) int {
	const header = 16
	if body == nil {
		return header
	}
	t := reflect.TypeOf(body)
	if sz, ok := sizeCache.Load(t); ok {
		return header + sz.(int)
	}
	sz := int(t.Size())
	sizeCache.Store(t, sz)
	return header + sz
}
