package core

import (
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/obs"
)

// System wires a topology, a failure pattern, the shared state, one node per
// process and an engine into a runnable atomic-multicast instance.
type System struct {
	Sh    *Shared
	Nodes []*Node
	Eng   *engine.Engine
	Pat   *failure.Pattern
}

// NewSystem builds a system. The engine seed makes the schedule
// reproducible.
func NewSystem(topo *groups.Topology, pat *failure.Pattern, opt Options, seed int64) *System {
	return NewSystemWithConfig(topo, pat, opt, engine.Config{
		Pattern: pat,
		Seed:    seed,
		Policy:  engine.RandomOrder,
	})
}

// NewSystemWithConfig builds a system with full engine control (used by the
// necessity emulations to restrict participants).
func NewSystemWithConfig(topo *groups.Topology, pat *failure.Pattern, opt Options, cfg engine.Config) *System {
	sh := NewShared(topo, pat, opt)
	nodes := make([]*Node, topo.NumProcesses())
	autos := make([]engine.Automaton, topo.NumProcesses())
	for p := 0; p < topo.NumProcesses(); p++ {
		nodes[p] = NewNode(groups.Process(p), sh)
		autos[p] = nodes[p]
	}
	if cfg.Pattern == nil {
		cfg.Pattern = pat
	}
	// Quiescence must wait out the detector stabilisation delay.
	if cfg.QuiesceSlack == 0 {
		cfg.QuiesceSlack = 64 + opt.FD.Delay
	}
	return &System{
		Sh:    sh,
		Nodes: nodes,
		Eng:   engine.New(cfg, autos...),
		Pat:   pat,
	}
}

// Multicast issues a client multicast from src to group dst now (before or
// during the run). It returns the registered message.
func (s *System) Multicast(src groups.Process, dst groups.GroupID, payload []byte) *msg.Message {
	return s.MulticastClassed(src, dst, payload, msg.ClassAll)
}

// MulticastClassed is Multicast with an explicit conflict-class tag
// (Generic-variant runs driven by class-tagged schedules).
func (s *System) MulticastClassed(src groups.Process, dst groups.GroupID, payload []byte, class msg.Class) *msg.Message {
	m := s.Sh.RequestClassed(src, dst, payload, class, s.Eng.Now())
	s.Nodes[src].Multicast(m)
	return m
}

// MulticastAt schedules a client multicast at virtual time t.
func (s *System) MulticastAt(t failure.Time, src groups.Process, dst groups.GroupID, payload []byte) {
	s.MulticastClassedAt(t, src, dst, payload, msg.ClassAll)
}

// MulticastClassedAt schedules a class-tagged client multicast at virtual
// time t.
func (s *System) MulticastClassedAt(t failure.Time, src groups.Process, dst groups.GroupID, payload []byte, class msg.Class) {
	s.Eng.At(t, func() {
		if s.Pat.IsAlive(src, t) {
			s.MulticastClassed(src, dst, payload, class)
		}
	})
}

// Run drives the system to quiescence; it returns false when the step
// budget was exhausted first (a liveness failure for the scenarios the
// tests construct).
func (s *System) Run() bool { return s.Eng.Run() }

// RunInterruptible is Run with a cancellation hook (see
// engine.RunInterruptible).
func (s *System) RunInterruptible(stop func() bool) engine.Outcome {
	return s.Eng.RunInterruptible(stop)
}

// Report assembles the run's observability. The recorder part (timeline,
// latency, coordination) is zero-valued when the run had no recorder; the
// engine ledgers (steps, charges, synthetic messages) are always present —
// the Sim backend accounts them unconditionally.
func (s *System) Report() obs.RunReport {
	rep := s.Sh.Rec().Report()
	rep.Backend = "sim"
	rep.Processes = s.Sh.Topo.NumProcesses()
	rep.Groups = s.Sh.Topo.NumGroups()
	rep.Ticks = int64(s.Eng.Now())
	rep.StepsAccounted = true
	rep.Steps = make([]int64, rep.Processes)
	for p := 0; p < rep.Processes; p++ {
		pr := groups.Process(p)
		rep.Steps[p] = s.Eng.Steps(pr) + s.Eng.Charges(pr)
		rep.TotalSteps += rep.Steps[p]
	}
	if s.Sh.Opt.ChargeObjects {
		rep.MessagesAccounted = true
		rep.Messages = s.Eng.Messages()
	}
	return rep
}

// Node returns the node of process p.
func (s *System) Node(p groups.Process) *Node { return s.Nodes[p] }

// DeliveredAt returns the local delivery sequence of p.
func (s *System) DeliveredAt(p groups.Process) []msg.ID { return s.Nodes[p].Delivered() }
