package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// This file holds ablations: what breaks when a component of μ is removed.
// They are the constructive face of the paper's necessity results.

// neverExcludeGamma is a γ that never excludes a family — i.e. a detector
// with accuracy but no completeness (strictly weaker information than γ).
type neverExcludeGamma struct {
	topo *groups.Topology
}

func (g *neverExcludeGamma) Families(p groups.Process, t failure.Time) []groups.Family {
	return g.topo.FamiliesOfProcess(p)
}

func (g *neverExcludeGamma) ActiveEdges(p groups.Process, gid groups.GroupID, t failure.Time) groups.GroupSet {
	var out groups.GroupSet
	for _, f := range g.topo.FamiliesOfProcess(p) {
		if !f.Groups.Has(gid) {
			continue
		}
		for _, path := range f.CPaths {
			for i := 0; i+1 < len(path); i++ {
				if path[i] == gid {
					out = out.Add(path[i+1])
				}
				if path[i+1] == gid {
					out = out.Add(path[i])
				}
			}
		}
	}
	return out
}

// TestAblation_WithoutGammaLivenessFails: run Algorithm 1 on the Figure 1
// topology with γ replaced by a completeness-free stub, crash a group
// intersection, and observe that delivery of the affected group's messages
// never happens — the constructive reading of §5's necessity of γ.
func TestAblation_WithoutGammaLivenessFails(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 0) // p2 = g1∩g2 never takes a step

	sh := NewShared(topo, pat, Options{FD: fd.Options{Delay: 4}})
	sh.OverrideGamma(&neverExcludeGamma{topo: topo})
	nodes := make([]*Node, 5)
	autos := make([]engine.Automaton, 5)
	for p := 0; p < 5; p++ {
		nodes[p] = NewNode(groups.Process(p), sh)
		autos[p] = nodes[p]
	}
	eng := engine.New(engine.Config{Pattern: pat, Seed: 1, MaxSteps: 100_000}, autos...)
	sys := &System{Sh: sh, Nodes: nodes, Eng: eng, Pat: pat}

	m := sys.Multicast(0, 0, nil) // to g1: commit needs (m,g2,-) from the dead {p2}
	sys.Run()

	if _, delivered := sh.FirstDeliveredAt(m.ID); delivered {
		t.Fatalf("without γ's completeness the g1 message should block forever")
	}
	// p1 is stuck before commit: the message never left the pending phase.
	if got := nodes[0].Phase(m.ID); got >= PhaseCommit {
		t.Fatalf("m reached %v without the dead intersection's tuple", got)
	}

	// Control: the same scenario with the real γ delivers.
	ctrl := NewSystem(topo, pat, Options{FD: fd.Options{Delay: 4}}, 1)
	cm := ctrl.Multicast(0, 0, nil)
	if !ctrl.Run() {
		t.Fatalf("control run did not quiesce")
	}
	if _, delivered := ctrl.Sh.FirstDeliveredAt(cm.ID); !delivered {
		t.Fatalf("control run with real γ should deliver")
	}
}

// TestAblation_StrictWaitsForIndicator demonstrates the §6.1 mechanism: on
// an acyclic pair of groups with a silent (and eventually crashed)
// intersection, the vanilla variant delivers immediately while the strict
// variant must wait until 1^{g∩h} fires — the extra synchrony real-time
// order costs.
func TestAblation_StrictWaitsForIndicator(t *testing.T) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1), // g
		groups.NewProcSet(1, 2), // h; g∩h = {p1}
	)
	const crashAt = 400
	deliveryTime := func(variant Variant) failure.Time {
		pat := failure.NewPattern(3).WithCrash(1, crashAt)
		s := NewSystemWithConfig(topo, pat, Options{Variant: variant, FD: fd.Options{Delay: 10}}, engine.Config{
			Pattern: pat,
			Seed:    2,
			Policy:  engine.RandomOrder,
			// p1 never gets to act before it crashes.
			PausedUntil: map[groups.Process]failure.Time{1: crashAt + 1},
		})
		m := s.Multicast(0, 0, nil)
		if !s.Run() {
			t.Fatalf("run did not quiesce")
		}
		at, ok := s.Sh.FirstDeliveredAt(m.ID)
		if !ok {
			t.Fatalf("message not delivered under %v", variant)
		}
		return at
	}
	vanilla := deliveryTime(Vanilla)
	strict := deliveryTime(Strict)
	if vanilla >= crashAt {
		t.Fatalf("vanilla delivery at %d should precede the crash at %d", vanilla, crashAt)
	}
	if strict < crashAt {
		t.Fatalf("strict delivery at %d should wait for 1^{g∩h} (crash at %d)", strict, crashAt)
	}
}

// TestProp47_SystemLevel: end-to-end Proposition 47 — a workload that only
// addresses g keeps every LOG_{g∩h} operation on the adopt-commit fast
// path, so only g∩h is charged for them; adding h-traffic causes consensus
// fallbacks.
func TestProp47_SystemLevel(t *testing.T) {
	topo := groups.MustNew(4,
		groups.NewProcSet(0, 1, 2), // g
		groups.NewProcSet(2, 3),    // h; g∩h = {p2}
	)
	// Workload 1: only g.
	s := NewSystem(topo, failure.NewPattern(4), Options{ChargeObjects: true}, 3)
	s.Multicast(0, 0, nil)
	s.Multicast(1, 0, nil)
	if !s.Run() {
		t.Fatalf("no quiescence")
	}
	l := s.Sh.Log(0, 1)
	if l.SlowOps() != 0 {
		t.Fatalf("g-only workload used the consensus fallback %d times", l.SlowOps())
	}
	if l.FastOps() == 0 {
		t.Fatalf("g-only workload never touched LOG_{g∩h}")
	}
	if s.Eng.TookSteps(3) { // p3 ∈ h\g
		t.Fatalf("p3 took steps though no message was addressed to h")
	}

	// Workload 2: interleaved g- and h-traffic contends.
	s2 := NewSystem(topo, failure.NewPattern(4), Options{ChargeObjects: true}, 4)
	s2.Multicast(0, 0, nil)
	s2.Multicast(3, 1, nil)
	s2.MulticastAt(40, 1, 0, nil)
	s2.MulticastAt(60, 2, 1, nil)
	if !s2.Run() {
		t.Fatalf("no quiescence")
	}
	if s2.Sh.Log(0, 1).SlowOps() == 0 {
		t.Fatalf("mixed workload should fall back to consensus at least once")
	}
}
