package core

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/groups"
)

// genAcyclicTopology builds random topologies with F = ∅ (chains and
// stars), the setting of the §6.2 strongly genuine result.
func genAcyclicTopology(rng *rand.Rand) *groups.Topology {
	for {
		n := 4 + rng.Intn(4)
		k := 2 + rng.Intn(2)
		gs := make([]groups.ProcSet, k)
		for i := range gs {
			var g groups.ProcSet
			size := 2 + rng.Intn(2)
			for g.Count() < size {
				g = g.Add(groups.Process(rng.Intn(n)))
			}
			gs[i] = g
		}
		topo := groups.MustNew(n, gs...)
		if !topo.HasCyclicFamilies() {
			return topo
		}
	}
}

// TestGroupParallelism_RandomAcyclic is the §6.2 property as a randomized
// test: on F = ∅ topologies under the StronglyGenuine variant, a run that
// is fair only for one group's correct members still delivers that group's
// messages at all of them — and stays safe.
func TestGroupParallelism_RandomAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		topo := genAcyclicTopology(rng)
		gid := groups.GroupID(rng.Intn(topo.NumGroups()))
		pat := failure.NewPattern(topo.NumProcesses())
		s := NewSystemWithConfig(topo, pat, Options{Variant: StronglyGenuine}, engine.Config{
			Pattern:      pat,
			Seed:         int64(trial),
			Policy:       engine.RandomOrder,
			Participants: topo.Group(gid),
		})
		members := topo.Group(gid).Members()
		nmsg := 1 + rng.Intn(3)
		for i := 0; i < nmsg; i++ {
			s.Multicast(members[rng.Intn(len(members))], gid, nil)
		}
		if !s.Run() {
			t.Fatalf("trial %d: isolated run did not quiesce (%v, g%d)", trial, topo, gid)
		}
		for _, p := range members {
			if got := len(s.DeliveredAt(p)); got != nmsg {
				t.Fatalf("trial %d: p%d delivered %d/%d in isolation (%v, g%d)",
					trial, p, got, nmsg, topo, gid)
			}
		}
		tr := s.Trace()
		if v := check.Integrity(tr); v != nil {
			t.Fatalf("trial %d: %v", trial, v)
		}
		if v := check.Ordering(tr); v != nil {
			t.Fatalf("trial %d: %v", trial, v)
		}
		if v := check.GroupParallelism(tr, topo.Group(gid)); v != nil {
			t.Fatalf("trial %d: %v", trial, v)
		}
	}
}

// TestStronglyGenuineSoak_FullRuns: the strongly genuine variant also
// satisfies the full specification under normal (fair-for-all) runs on
// acyclic topologies with crashes.
func TestStronglyGenuineSoak_FullRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 40; trial++ {
		topo := genAcyclicTopology(rng)
		pat := failure.NewPattern(topo.NumProcesses())
		// Crash one process that is not the last member of any group.
		p := groups.Process(rng.Intn(topo.NumProcesses()))
		ok := true
		trialPat := pat.WithCrash(p, failure.Time(20+rng.Intn(50)))
		for g := 0; g < topo.NumGroups(); g++ {
			if trialPat.Correct().Intersect(topo.Group(groups.GroupID(g))).Empty() {
				ok = false
			}
		}
		if ok {
			pat = trialPat
		}
		s := NewSystem(topo, pat, Options{Variant: StronglyGenuine}, int64(trial))
		for g := 0; g < topo.NumGroups(); g++ {
			gid := groups.GroupID(g)
			members := topo.Group(gid).Members()
			s.MulticastAt(failure.Time(rng.Intn(60)), members[rng.Intn(len(members))], gid, nil)
		}
		if !s.Run() {
			t.Fatalf("trial %d: no quiescence (%v)", trial, topo)
		}
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (%v, %v)", trial, v, topo, pat)
		}
	}
}
