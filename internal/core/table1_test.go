package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// This file reproduces Table 1 of the paper: the weakest-failure-detector
// landscape for atomic multicast. Each test is one row (see DESIGN.md §4).

// table1Seeds trims the per-row seed sweeps in -short mode (the tier-1 CI
// gate); full sweeps run in the test-full and nightly jobs.
func table1Seeds(full int64) int64 {
	if testing.Short() {
		return 3
	}
	return full
}

// TestTable1_MuSufficient (row "genuine, global order: μ"): Algorithm 1
// under μ solves genuine atomic multicast on the cyclic Figure 1 topology,
// including runs where cyclic families become faulty.
func TestTable1_MuSufficient(t *testing.T) {
	topo := groups.Figure1()
	seeds := table1Seeds(5)
	for _, crash := range []groups.ProcSet{
		0,                       // failure-free
		groups.NewProcSet(1),    // p2 = g1∩g2: f, f'' faulty
		groups.NewProcSet(0),    // p1: every family faulty
		groups.NewProcSet(1, 2), // p2, p3: g2 entirely crashed
	} {
		for seed := int64(0); seed < seeds; seed++ {
			pat := failure.NewPattern(5).WithCrashes(crash, 35)
			s := NewSystem(topo, pat, Options{FD: fd.Options{Delay: 8}}, seed)
			s.Multicast(0, 0, nil)
			s.Multicast(2, 1, nil)
			s.Multicast(3, 2, nil)
			s.Multicast(4, 3, nil)
			s.MulticastAt(100, 3, 3, nil)
			runAndCheck(t, s)
		}
	}
}

// TestTable1_PerfectSufficient (row "genuine: ≤ P", Schiper & Pedone [36]):
// perfect failure detection subsumes μ — the indicators 1^{g∩h} derived
// from P drive the strict variant, which a fortiori solves the vanilla
// problem under arbitrary failures.
func TestTable1_PerfectSufficient(t *testing.T) {
	topo := groups.Figure1()
	for seed := int64(0); seed < table1Seeds(10); seed++ {
		pat := failure.NewPattern(5).WithCrash(1, 30).WithCrash(2, 50)
		s := NewSystem(topo, pat, Options{Variant: Strict, FD: fd.Options{Delay: 4}}, seed)
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(3, 2, nil)
		s.Multicast(4, 3, nil)
		s.MulticastAt(120, 0, 2, nil)
		runAndCheck(t, s)
	}
}

// TestTable1_U2Insufficient (row "genuine ∉ U2", Guerraoui & Schiper [26]):
// the paper explains the impossibility as a corner case of the necessity of
// Σ_{g∩h}: with g∩h = {p,q} both failure-prone, Σ_{p,q} is not
// 2-unreliable. We replay the argument on the ideal histories: in the
// pattern where q is faulty, Σ_{p,q} eventually outputs {p} at p forever;
// symmetrically {q} at q; a 2-unreliable detector must admit both histories
// in the both-correct pattern (taking W = {p,q}), where the two outputs
// violate the perpetual intersection property.
func TestTable1_U2Insufficient(t *testing.T) {
	scope := groups.NewProcSet(0, 1) // {p, q}
	// Pattern A: q (=p1) faulty.
	patA := failure.NewPattern(2).WithCrash(1, 5)
	sigA := fd.NewSigma(patA, scope, fd.Options{Delay: 3})
	qa, ok := sigA.Quorum(0, 100)
	if !ok || qa != groups.NewProcSet(0) {
		t.Fatalf("Σ at p under pattern A = %v, want {p}", qa)
	}
	// Pattern B: p (=p0) faulty.
	patB := failure.NewPattern(2).WithCrash(0, 5)
	sigB := fd.NewSigma(patB, scope, fd.Options{Delay: 3})
	qb, ok := sigB.Quorum(1, 100)
	if !ok || qb != groups.NewProcSet(1) {
		t.Fatalf("Σ at q under pattern B = %v, want {q}", qb)
	}
	// A 2-unreliable detector cannot distinguish pattern A (resp. B) from
	// the both-correct pattern with the wrong set W = {p,q}: both histories
	// would be admissible in the same run, and their stabilised outputs do
	// not intersect — contradicting Σ's intersection property.
	if !qa.Intersect(qb).Empty() {
		t.Fatalf("argument broken: {p} and {q} should be disjoint")
	}
}

// TestTable1_Pairwise (row "pairwise ordering: (∧Σ_{g∩h}) ∧ (∧Ω_g)"): the
// pairwise variant runs without γ on acyclic topologies (the variation is
// computably equivalent to F = ∅, §7).
func TestTable1_Pairwise(t *testing.T) {
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2, 3),
		groups.NewProcSet(3, 4),
	)
	for seed := int64(0); seed < table1Seeds(10); seed++ {
		pat := failure.NewPattern(5).WithCrash(2, 40)
		s := NewSystem(topo, pat, Options{Variant: Pairwise, FD: fd.Options{Delay: 6}}, seed)
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(4, 2, nil)
		s.MulticastAt(90, 3, 1, nil)
		runAndCheck(t, s)
	}
}

// TestTable1_StronglyGenuine (row "strongly genuine, F = ∅"): on an acyclic
// topology with the intersection logs hosted by g∩h, a destination group
// running in isolation still delivers — group parallelism (§6.2). The
// engine restricts participation to dst(m)'s correct members; a P-fair run
// must deliver m at all of them.
func TestTable1_StronglyGenuine(t *testing.T) {
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1, 2), // g0
		groups.NewProcSet(2, 3, 4), // g1, intersecting g0 in p2
	)
	for seed := int64(0); seed < table1Seeds(10); seed++ {
		pat := failure.NewPattern(5)
		s := NewSystemWithConfig(topo, pat, Options{Variant: StronglyGenuine}, engine.Config{
			Pattern:      pat,
			Seed:         seed,
			Policy:       engine.RandomOrder,
			Participants: topo.Group(0), // only g0 runs: g1\g0 is isolated away
		})
		s.Multicast(0, 0, nil)
		s.Multicast(1, 0, nil)
		if !s.Run() {
			t.Fatalf("seed %d: group-parallel run did not quiesce", seed)
		}
		for _, p := range topo.Group(0).Members() {
			if got := len(s.DeliveredAt(p)); got != 2 {
				t.Fatalf("seed %d: p%d delivered %d, want 2 (group parallelism)", seed, p, got)
			}
		}
		// Safety still holds on the partial run.
		if v := check.Ordering(s.Trace()); v != nil {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

// TestVanillaNotGroupParallel: the same isolation scenario on a *cyclic*
// topology under the vanilla variant can require help from outside the
// destination group — the convoy the strongly genuine variation forbids.
// Here we only document the weaker obligation: vanilla with full
// participation delivers (termination), and with participation restricted
// to one group of a cyclic family the run still quiesces without violating
// safety (it may simply not deliver).
func TestVanillaNotGroupParallel(t *testing.T) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
		groups.NewProcSet(2, 0),
	)
	pat := failure.NewPattern(3)
	s := NewSystemWithConfig(topo, pat, Options{}, engine.Config{
		Pattern:      pat,
		Seed:         1,
		Participants: topo.Group(0), // {p0, p1} only
	})
	s.Multicast(0, 0, nil)
	if !s.Run() {
		t.Fatalf("restricted run did not quiesce")
	}
	if v := check.Ordering(s.Trace()); v != nil {
		t.Fatalf("%v", v)
	}
	if v := check.Integrity(s.Trace()); v != nil {
		t.Fatalf("%v", v)
	}
}

// TestTable1_BroadcastSolvable lives in the baseline package tests (the
// non-genuine Ω ∧ Σ row). This placeholder documents the mapping.
func TestTable1_BroadcastSolvable(t *testing.T) {
	t.Log("covered by repro/internal/baseline: TestBroadcastDeliversEverywhereAddressed")
}

// TestDecompositionComparison (§7): protocols assuming a disjoint-group
// decomposition need the partition elements to be logically correct — on
// Figure 1 the singleton intersection {p2} must be reliable. Algorithm 1
// has no such requirement: the same run with p2 faulty completes under μ.
func TestDecompositionComparison(t *testing.T) {
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 25) // p2 fails
	// A decomposition-based protocol would now be stuck: its partition
	// element {p2} has no correct member. Algorithm 1 keeps going:
	s := NewSystem(topo, pat, Options{FD: fd.Options{Delay: 6}}, 9)
	s.Multicast(0, 0, nil)
	s.Multicast(2, 1, nil)
	s.MulticastAt(80, 0, 0, nil)
	runAndCheck(t, s)
	// And the partition-element liveness condition indeed fails:
	if !pat.Correct().Intersect(groups.NewProcSet(1)).Empty() {
		t.Fatalf("test setup broken: p2 should be faulty")
	}
}
