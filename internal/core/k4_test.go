package core

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/msg"
)

// TestK4LivenessAfterEdgeDeath is the end-to-end regression for the γ
// granularity finding (DESIGN.md): on a K4 intersection graph, the edge
// g0∩g1 = {p0} dies while the 4-group cyclic family stays correct; the
// ring-granular γ(g0) drops g1 and Algorithm 1 keeps delivering.
func TestK4LivenessAfterEdgeDeath(t *testing.T) {
	topo := groups.MustNew(6,
		groups.NewProcSet(0, 1, 2), // g0
		groups.NewProcSet(0, 3, 4), // g1; g0∩g1 = {p0}
		groups.NewProcSet(1, 3, 5), // g2
		groups.NewProcSet(2, 4, 5), // g3
	)
	for seed := int64(0); seed < 10; seed++ {
		pat := failure.NewPattern(6).WithCrash(0, 0) // the edge never acts
		s := NewSystem(topo, pat, Options{FD: fd.Options{Delay: 5}}, seed)
		s.Multicast(1, 0, nil) // to g0: must not wait on the dead g0∩g1
		s.Multicast(3, 1, nil) // to g1: symmetric
		s.Multicast(5, 2, nil)
		s.Multicast(4, 3, nil)
		runAndCheck(t, s)
		// Both g0's and g1's messages reached every correct destination.
		for _, p := range topo.Group(0).Intersect(pat.Correct()).Members() {
			if !s.Nodes[p].HasDelivered(1) {
				t.Fatalf("seed %d: p%d never delivered g0's message", seed, p)
			}
		}
		for _, p := range topo.Group(1).Intersect(pat.Correct()).Members() {
			if !s.Nodes[p].HasDelivered(2) {
				t.Fatalf("seed %d: p%d never delivered g1's message", seed, p)
			}
		}
	}
}

// TestGroupSequentialOrder: the Proposition 1 gate — for any two messages
// of a group, one's sender delivered the other before multicasting (≺ is
// total per group), observable as: local delivery orders of a group's
// messages agree with the L_g order at every member.
func TestGroupSequentialOrder(t *testing.T) {
	topo := groups.Figure1()
	for seed := int64(0); seed < 10; seed++ {
		s := NewSystem(topo, failure.NewPattern(5), Options{}, 700+seed)
		// Competing senders into the same groups.
		s.Multicast(0, 0, nil)
		s.Multicast(1, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(2, 1, nil)
		s.Multicast(0, 2, nil)
		s.Multicast(3, 2, nil)
		runAndCheck(t, s)
		for g := 0; g < topo.NumGroups(); g++ {
			gid := groups.GroupID(g)
			seq := s.Sh.SeqList(gid)
			for _, p := range topo.Group(gid).Members() {
				// The group's messages appear in every member's local
				// order as a subsequence of L_g.
				idx := 0
				for _, id := range s.Nodes[p].Delivered() {
					if s.Sh.Reg.Get(id).Dst != gid {
						continue
					}
					for idx < len(seq) && seq[idx] != id {
						idx++
					}
					if idx == len(seq) {
						t.Fatalf("seed %d: p%d delivered g%d's messages out of L_g order", seed, p, g)
					}
					idx++
				}
			}
		}
	}
}

// TestOnDeliverHookFires: the observation hook sees every delivery with its
// time (the extraction algorithms chain multicasts off it).
func TestOnDeliverHookFires(t *testing.T) {
	topo := groups.MustNew(2, groups.NewProcSet(0, 1))
	pat := failure.NewPattern(2)
	count := 0
	var lastTime failure.Time
	s := NewSystem(topo, pat, Options{
		OnDeliver: func(p groups.Process, m *msg.Message, tm failure.Time) {
			count++
			lastTime = tm
			if m.Dst != 0 {
				t.Errorf("hook saw wrong message %v", m)
			}
		},
	}, 1)
	s.Multicast(0, 0, nil)
	if !s.Run() {
		t.Fatalf("no quiescence")
	}
	if count != 2 { // both members deliver
		t.Fatalf("hook fired %d times, want 2", count)
	}
	if lastTime == 0 {
		t.Fatalf("hook saw no delivery time")
	}
}
