package core

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/obs"
)

// TestScanSetBoundedSoak pushes a four-digit message count through the sim
// system and asserts the scheduler's bookkeeping stays bounded: once every
// message is delivered, every node's scan set must be empty — delivered
// messages retire instead of being rescanned forever (the pre-ready-set
// scheduler kept every message it had ever seen in the per-step scan).
func TestScanSetBoundedSoak(t *testing.T) {
	msgs := 1000
	if testing.Short() {
		msgs = 200
	}
	topo := groups.Figure1()
	pat := failure.NewPattern(topo.NumProcesses())
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters})
	s := NewSystem(topo, pat, Options{Rec: rec}, 42)
	k := topo.NumGroups()
	for i := 0; i < msgs; i++ {
		g := groups.GroupID(i % k)
		members := topo.Group(g).Members()
		// Pace the load a little so the run is a long stream of small
		// in-flight windows — the shape that would make an unbounded scan
		// set quadratic.
		s.MulticastAt(failure.Time(i/4), members[i%len(members)], g, nil)
	}
	if !s.Run() {
		t.Fatalf("soak of %d messages did not quiesce", msgs)
	}
	for _, v := range s.Check() {
		t.Fatalf("specification violation: %v", v)
	}
	for p := 0; p < topo.NumProcesses(); p++ {
		if n := s.Node(groups.Process(p)).ScanSetSize(); n != 0 {
			t.Errorf("p%d: scan set holds %d messages after full delivery; delivered messages must retire", p, n)
		}
	}
	sched := rec.Report().Sched
	if sched == nil || sched.Actions == 0 || sched.Scans == 0 {
		t.Fatalf("sched counters missing or empty: %+v", sched)
	}
}
