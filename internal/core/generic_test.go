package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/obs"
)

// TestRandomScenariosGeneric soaks the generic variant over random
// topologies, crash sets and schedules with a mixed class assignment —
// roughly a third of the load in small keyed classes, the rest commuting
// with everything — checking the conflict-aware specification every run.
func TestRandomScenariosGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		s := NewSystem(sc.topo, sc.pat, Options{
			Variant:  Generic,
			Conflict: msg.ClassesConflict,
			FD:       fd.Options{Delay: 8},
		}, sc.seed)
		for i, w := range sc.work {
			class := msg.ClassFree
			if i%3 == 0 {
				class = msg.Class(1 + i%2)
			}
			s.MulticastClassedAt(w.at, w.src, w.dst, nil, class)
		}
		if !s.Run() {
			t.Fatalf("trial %d: liveness failure: %v pat=%v", trial, sc.topo, sc.pat)
		}
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v)", trial, v, sc.topo, sc.pat)
		}
	}
}

// TestGenericNilRelationBitForBitVanilla pins the all-conflict regression
// at the protocol level: the generic variant with a nil relation (every
// pair conflicts) must produce the exact delivery sequence — same
// messages, same processes, same virtual times, same order — as the
// vanilla run of the same seeded scenario.
func TestGenericNilRelationBitForBitVanilla(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		van := runScenario(t, sc, Options{FD: fd.Options{Delay: 8}})
		gen := runScenario(t, sc, Options{Variant: Generic, FD: fd.Options{Delay: 8}})
		if !reflect.DeepEqual(van.Sh.Deliveries(), gen.Sh.Deliveries()) {
			t.Fatalf("trial %d: generic(nil relation) diverged from vanilla:\nvanilla %v\ngeneric %v\n(topo=%v pat=%v)",
				trial, van.Sh.Deliveries(), gen.Sh.Deliveries(), sc.topo, sc.pat)
		}
	}
}

// TestGenericFreeOnlySkipsAllCoordination: a workload that is entirely
// ClassFree on overlapping groups must deliver every message through the
// fast path — the recorder's skipped-coordination count equals the
// delivery count — and still satisfy the generic specification.
func TestGenericFreeOnlySkipsAllCoordination(t *testing.T) {
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
	)
	rec := obs.NewRecorder(obs.Options{})
	s := NewSystem(topo, failure.NewPattern(3), Options{
		Variant:  Generic,
		Conflict: msg.ClassesConflict,
		Rec:      rec,
	}, 7)
	s.MulticastClassedAt(0, 0, 0, nil, msg.ClassFree)
	s.MulticastClassedAt(2, 1, 1, nil, msg.ClassFree)
	s.MulticastClassedAt(5, 1, 0, nil, msg.ClassFree)
	s.MulticastClassedAt(9, 2, 1, nil, msg.ClassFree)
	if !s.Run() {
		t.Fatal("run did not quiesce")
	}
	for _, v := range s.Check() {
		t.Errorf("violation: %v", v)
	}
	rep := s.Report()
	if rep.Conflict == nil {
		t.Fatal("free-only generic run produced no conflict report")
	}
	if got, want := rep.Conflict.FastDeliveries, int64(len(s.Sh.Deliveries())); got != want {
		t.Errorf("fast deliveries %d, want every delivery (%d) to skip coordination", got, want)
	}
}
