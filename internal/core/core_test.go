package core

import (
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// runAndCheck drives the system to quiescence and fails on any violation.
func runAndCheck(t *testing.T, s *System) {
	t.Helper()
	if !s.Run() {
		t.Fatalf("run did not quiesce (liveness failure)")
	}
	for _, v := range s.Check() {
		t.Errorf("violation: %v", v)
	}
}

func TestSingleGroupTotalOrder(t *testing.T) {
	topo := groups.MustNew(3, groups.NewProcSet(0, 1, 2))
	s := NewSystem(topo, failure.NewPattern(3), Options{}, 1)
	for i := 0; i < 5; i++ {
		s.Multicast(groups.Process(i%3), 0, []byte{byte(i)})
	}
	runAndCheck(t, s)
	// All three processes deliver all five messages in the same order.
	ref := s.DeliveredAt(0)
	if len(ref) != 5 {
		t.Fatalf("p0 delivered %d messages, want 5", len(ref))
	}
	for p := 1; p < 3; p++ {
		got := s.DeliveredAt(groups.Process(p))
		if len(got) != len(ref) {
			t.Fatalf("p%d delivered %d, want %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("delivery orders diverge at %d: %v vs %v", i, got, ref)
			}
		}
	}
}

func TestDisjointGroupsRunIndependently(t *testing.T) {
	topo := groups.MustNew(6,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(2, 3),
		groups.NewProcSet(4, 5),
	)
	s := NewSystem(topo, failure.NewPattern(6), Options{}, 2)
	s.Multicast(0, 0, nil)
	s.Multicast(2, 1, nil)
	s.Multicast(4, 2, nil)
	runAndCheck(t, s)
	for p := 0; p < 6; p++ {
		if got := len(s.DeliveredAt(groups.Process(p))); got != 1 {
			t.Fatalf("p%d delivered %d messages, want 1", p, got)
		}
	}
}

func TestIntersectingPairOrdering(t *testing.T) {
	// Two groups sharing one process: deliveries at the shared process give
	// the pairwise order.
	topo := groups.MustNew(3,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(1, 2),
	)
	for seed := int64(0); seed < 20; seed++ {
		s := NewSystem(topo, failure.NewPattern(3), Options{}, seed)
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(1, 0, nil)
		s.Multicast(2, 1, nil)
		runAndCheck(t, s)
		if got := len(s.DeliveredAt(1)); got != 4 {
			t.Fatalf("seed %d: shared p1 delivered %d, want 4", seed, got)
		}
	}
}

func TestFigure1NoFailures(t *testing.T) {
	topo := groups.Figure1()
	for seed := int64(0); seed < 20; seed++ {
		s := NewSystem(topo, failure.NewPattern(5), Options{}, seed)
		// One message per group, from varied senders.
		s.Multicast(0, 0, nil) // p1 → g1
		s.Multicast(1, 1, nil) // p2 → g2
		s.Multicast(2, 2, nil) // p3 → g3
		s.Multicast(4, 3, nil) // p5 → g4
		runAndCheck(t, s)
	}
}

func TestFigure1GroupSequentialStream(t *testing.T) {
	topo := groups.Figure1()
	s := NewSystem(topo, failure.NewPattern(5), Options{}, 3)
	// Several messages per group; the Prop-1 gate serialises per group.
	for round := 0; round < 3; round++ {
		s.Multicast(0, 0, []byte(fmt.Sprintf("g1-%d", round)))
		s.Multicast(1, 1, []byte(fmt.Sprintf("g2-%d", round)))
		s.Multicast(3, 2, []byte(fmt.Sprintf("g3-%d", round)))
		s.Multicast(0, 3, []byte(fmt.Sprintf("g4-%d", round)))
	}
	runAndCheck(t, s)
	// p1 ∈ g1,g3,g4 delivers 9 messages.
	if got := len(s.DeliveredAt(0)); got != 9 {
		t.Fatalf("p1 delivered %d, want 9", got)
	}
}

func TestMinimalityUntouchedProcessIdle(t *testing.T) {
	// Figure 1: a message to g1 = {p1,p2} must not make p5 take steps.
	topo := groups.Figure1()
	s := NewSystem(topo, failure.NewPattern(5), Options{ChargeObjects: true}, 4)
	s.Multicast(0, 0, nil)
	runAndCheck(t, s)
	for _, p := range []groups.Process{2, 3, 4} { // p3, p4, p5 ∉ g1
		if s.Eng.TookSteps(p) {
			t.Errorf("p%d took steps though only g1 was addressed", p)
		}
	}
}

func TestCrashOfSenderAfterRequest(t *testing.T) {
	// The sender crashes right after its message reaches L_g; the group
	// still delivers it via helping if anyone delivers or the sender is
	// "correct enough" — here another group member's request forces help.
	topo := groups.MustNew(3, groups.NewProcSet(0, 1, 2))
	pat := failure.NewPattern(3).WithCrash(0, 1)
	s := NewSystem(topo, pat, Options{}, 5)
	s.Multicast(0, 0, nil) // enters L_g; p0 crashes before appending
	s.Multicast(1, 0, nil) // p1's request helps m1 into LOG_g
	if !s.Run() {
		t.Fatalf("run did not quiesce")
	}
	for _, v := range s.Check() {
		t.Errorf("violation: %v", v)
	}
	// Both messages delivered at the correct processes.
	for _, p := range []groups.Process{1, 2} {
		if got := len(s.DeliveredAt(p)); got != 2 {
			t.Fatalf("p%d delivered %d, want 2", p, got)
		}
	}
}

func TestFigure1CrashP2CyclicFamilyFaulty(t *testing.T) {
	// p2 = g1∩g2 crashes mid-run: families f and f'' become faulty, γ drops
	// them, and the remaining correct processes keep delivering.
	topo := groups.Figure1()
	for seed := int64(0); seed < 10; seed++ {
		pat := failure.NewPattern(5).WithCrash(1, 40)
		s := NewSystem(topo, pat, Options{FD: fdOpts(8)}, seed)
		s.Multicast(0, 0, nil)
		s.Multicast(2, 1, nil)
		s.Multicast(2, 2, nil)
		s.Multicast(4, 3, nil)
		s.MulticastAt(100, 0, 0, nil)
		s.MulticastAt(120, 2, 2, nil)
		runAndCheck(t, s)
	}
}

func TestFigure1CrashP1(t *testing.T) {
	// p1 sits in every cyclic family; its crash makes all of F faulty.
	topo := groups.Figure1()
	for seed := int64(0); seed < 10; seed++ {
		pat := failure.NewPattern(5).WithCrash(0, 30)
		s := NewSystem(topo, pat, Options{FD: fdOpts(6)}, seed)
		s.Multicast(1, 0, nil) // p2 → g1
		s.Multicast(2, 1, nil) // p3 → g2
		s.Multicast(3, 2, nil) // p4 → g3
		s.Multicast(3, 3, nil) // p4 → g4
		s.MulticastAt(90, 2, 1, nil)
		runAndCheck(t, s)
	}
}

func TestWholeGroupCrash(t *testing.T) {
	// g1 = {p0,p1} crashes entirely; other groups continue.
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1),
		groups.NewProcSet(2, 3),
		groups.NewProcSet(3, 4),
	)
	pat := failure.NewPattern(5).WithCrashes(groups.NewProcSet(0, 1), 20)
	s := NewSystem(topo, pat, Options{FD: fdOpts(5)}, 6)
	s.Multicast(0, 0, nil)
	s.Multicast(2, 1, nil)
	s.Multicast(4, 2, nil)
	s.MulticastAt(80, 3, 1, nil)
	if !s.Run() {
		t.Fatalf("run did not quiesce")
	}
	for _, v := range s.Check() {
		t.Errorf("violation: %v", v)
	}
}

func fdOpts(delay failure.Time) fd.Options {
	return fd.Options{Delay: delay}
}
