package core

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// FuzzScenario decodes a scenario — topology, crash set, workload, seed —
// from the fuzz input, runs Algorithm 1 to quiescence and checks the whole
// specification. The decoder is total: any byte string maps to some valid
// scenario, so the fuzzer explores protocol schedules rather than parser
// corners.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{3, 2, 0x03, 0x06, 0x00, 1, 0, 2, 1, 7})
	f.Add([]byte{5, 4, 0x03, 0x06, 0x1c, 0x19, 0x41, 2, 0, 3, 2, 9})
	f.Add([]byte{4, 3, 0x0f, 0x33, 0x55, 0x81, 1, 1, 2, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := int(next())%6 + 2 // 2..7 processes
		k := int(next())%3 + 1 // 1..3 groups
		gs := make([]groups.ProcSet, k)
		for i := range gs {
			var g groups.ProcSet
			g = g.Add(groups.Process(int(next()) % n)) // ensure non-empty
			raw := uint64(next()) | uint64(next())<<8
			g = g.Union(groups.ProcSet(raw & ((1 << uint(n)) - 1)))
			gs[i] = g
		}
		topo := groups.MustNew(n, gs...)

		// One optional crash that keeps a survivor in every group.
		pat := failure.NewPattern(n)
		crashByte := next()
		if crashByte&0x80 != 0 {
			p := groups.Process(int(crashByte) % n)
			trial := pat.WithCrash(p, failure.Time(10+int(next())%60))
			ok := true
			for g := 0; g < k; g++ {
				if trial.Correct().Intersect(gs[g]).Empty() {
					ok = false
				}
			}
			if ok {
				pat = trial
			}
		}

		s := NewSystem(topo, pat, Options{FD: fd.Options{Delay: 6}}, int64(next()))
		msgs := int(next())%4 + 1
		for i := 0; i < msgs; i++ {
			g := groups.GroupID(int(next()) % k)
			members := topo.Group(g).Members()
			src := members[int(next())%len(members)]
			s.MulticastAt(failure.Time(int(next())%80), src, g, nil)
		}
		if !s.Run() {
			t.Fatalf("liveness failure: %v %v", topo, pat)
		}
		for _, v := range s.Check() {
			t.Fatalf("%v (topo=%v pat=%v)", v, topo, pat)
		}
	})
}
