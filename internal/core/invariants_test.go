package core

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
)

// This file checks the Table 2 invariants (Claims 9-15) on live runs of
// Algorithm 1. Claims 2-8 are log-object properties tested in
// internal/logobj; the claims here relate deliveries, logs and phases.

// monitoredRun executes a random scenario and returns the system.
func monitoredRun(t *testing.T, seed int64) (*System, scenario) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sc := genScenario(rng)
	s := runScenario(t, sc, Options{FD: fd.Options{Delay: 8}})
	return s, sc
}

// TestClaim9_SharedDestinationsOrdered: intersecting deliveries are related
// by ↦ — any two delivered messages with intersecting destinations are
// ordered at some common process.
func TestClaim9_SharedDestinationsOrdered(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s, _ := monitoredRun(t, 900+seed)
		delivered := map[msg.ID]bool{}
		for _, d := range s.Sh.Deliveries() {
			delivered[d.M] = true
		}
		for a := range delivered {
			for b := range delivered {
				if a >= b {
					continue
				}
				ma, mb := s.Sh.Reg.Get(a), s.Sh.Reg.Get(b)
				inter := s.Sh.Topo.Intersection(ma.Dst, mb.Dst)
				if inter.Empty() {
					continue
				}
				// Some process of the intersection delivered at least one
				// of them; at that process the pair is ↦-related.
				related := false
				for _, p := range inter.Members() {
					for _, id := range s.Nodes[p].Delivered() {
						if id == a || id == b {
							related = true
						}
					}
					// Deliver-never-delivered also relates them.
					if s.Nodes[p].HasDelivered(a) || s.Nodes[p].HasDelivered(b) {
						related = true
					}
				}
				// Claim 9 presumes some process of the intersection took
				// part; with all of them crashed before delivering the
				// claim is vacuous.
				alive := !inter.Intersect(s.Pat.Correct()).Empty()
				if alive && !related {
					t.Fatalf("seed %d: delivered m%d, m%d with live intersection unrelated", seed, a, b)
				}
			}
		}
	}
}

// TestClaim10_IntersectionLogContents: a message in LOG_{g∩h} is addressed
// to g or to h.
func TestClaim10_IntersectionLogContents(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s, _ := monitoredRun(t, 910+seed)
		k := s.Sh.Topo.NumGroups()
		for g := 0; g < k; g++ {
			for h := g; h < k; h++ {
				gid, hid := groups.GroupID(g), groups.GroupID(h)
				if s.Sh.Topo.Intersection(gid, hid).Empty() {
					continue
				}
				for _, id := range s.Sh.Log(gid, hid).Inner().Messages() {
					dst := s.Sh.Reg.Get(id).Dst
					if dst != gid && dst != hid {
						t.Fatalf("seed %d: m%d (dst g%d) in LOG_g%d∩g%d", seed, id, dst, g, h)
					}
				}
			}
		}
	}
}

// TestClaim12_13_DeliveryMembershipAndLog: deliveries only at destinations
// (Claim 12) and delivered messages are in the log of their destination
// group (Claim 13).
func TestClaim12_13_DeliveryMembershipAndLog(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s, _ := monitoredRun(t, 920+seed)
		for _, d := range s.Sh.Deliveries() {
			m := s.Sh.Reg.Get(d.M)
			if !s.Sh.Topo.Group(m.Dst).Has(d.P) {
				t.Fatalf("seed %d: claim 12 violated: p%d ∉ dst(m%d)", seed, d.P, d.M)
			}
			if !s.Sh.GroupLog(m.Dst).Inner().Contains(logobj.MsgDatum(d.M)) {
				t.Fatalf("seed %d: claim 13 violated: delivered m%d not in LOG_dst", seed, d.M)
			}
		}
	}
}

// TestClaim14_15_PhaseMonotonicity: phases only move forward through
// start → pending → commit → stable → deliver. The node API exposes only
// the current phase, so we check the reachable-phase ladder: a delivered
// message passed through every phase (its marks exist), and no node reports
// a phase regression across observations.
func TestClaim14_15_PhaseMonotonicity(t *testing.T) {
	topo := groups.Figure1()
	s := NewSystem(topo, failure.NewPattern(5), Options{}, 33)
	s.Multicast(0, 0, nil)
	s.Multicast(2, 2, nil)

	last := make(map[groups.Process]map[msg.ID]Phase)
	for p := 0; p < 5; p++ {
		last[groups.Process(p)] = map[msg.ID]Phase{}
	}
	// Drive manually, observing phases between steps.
	for i := 0; i < 20000; i++ {
		s.Eng.RunFor(1)
		for p := 0; p < 5; p++ {
			proc := groups.Process(p)
			for id := msg.ID(1); id <= 2; id++ {
				ph := s.Nodes[p].Phase(id)
				if prev, ok := last[proc][id]; ok && ph < prev {
					t.Fatalf("claim 15 violated: phase of m%d at p%d regressed %v→%v", id, p, prev, ph)
				}
				last[proc][id] = ph
			}
		}
	}
	// All correct destinations ended at deliver.
	for _, p := range topo.Group(0).Members() {
		if got := s.Nodes[p].Phase(1); got != PhaseDeliver {
			t.Fatalf("m1 at p%d stuck at %v", p, got)
		}
	}
}

// TestLockedBeforeDeliver (Lemma 17): a delivered message is locked in
// every intersection log of its destination's processes.
func TestLockedBeforeDeliver(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s, _ := monitoredRun(t, 930+seed)
		for _, d := range s.Sh.Deliveries() {
			m := s.Sh.Reg.Get(d.M)
			g := m.Dst
			for _, h := range s.Sh.Topo.GroupsOf(d.P).Members() {
				if !s.Sh.Topo.Intersecting(g, h) {
					continue
				}
				l := s.Sh.Log(g, h).Inner()
				if l.Contains(logobj.MsgDatum(d.M)) && !l.Locked(logobj.MsgDatum(d.M)) {
					t.Fatalf("seed %d: delivered m%d unlocked in %s", seed, d.M, l.Name())
				}
			}
		}
	}
}

// TestLemma32_SamePositionAcrossLogs: with a correct cyclic family, a
// locked message occupies the same slot in every intersection log of the
// family it appears in.
func TestLemma32_SamePositionAcrossLogs(t *testing.T) {
	topo := groups.Figure1()
	for seed := int64(0); seed < 20; seed++ {
		s := NewSystem(topo, failure.NewPattern(5), Options{}, 4000+seed)
		s.Multicast(0, 0, nil)
		s.Multicast(1, 1, nil)
		s.Multicast(2, 2, nil)
		s.Multicast(3, 3, nil)
		if !s.Run() {
			t.Fatalf("no quiescence")
		}
		for _, m := range s.Sh.Reg.All() {
			g := m.Dst
			pos := -1
			for _, h := range topo.IntersectingGroups(g) {
				l := s.Sh.Log(g, h).Inner()
				d := logobj.MsgDatum(m.ID)
				if !l.Contains(d) || !l.Locked(d) {
					continue
				}
				if pos == -1 {
					pos = l.Pos(d)
				} else if l.Pos(d) != pos {
					t.Fatalf("seed %d: m%d at slots %d and %d across logs (failure-free run)",
						seed, m.ID, pos, l.Pos(d))
				}
			}
		}
	}
}
