package core

import (
	"fmt"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/uc"
)

// PairKey identifies a log: the canonical unordered pair of groups whose
// intersection the log serves; a == b identifies a group log LOG_g.
type PairKey struct{ A, B groups.GroupID }

// CanonPair returns the canonical key for (g, h).
func CanonPair(g, h groups.GroupID) PairKey {
	if g > h {
		g, h = h, g
	}
	return PairKey{g, h}
}

// consKey identifies a consensus object CONS_{m,f} (Algorithm 1, line 3):
// the message and the family of groups agreeing on its final position.
type consKey struct {
	m   msg.ID
	fam groups.GroupSet
}

// Delivery is one delivery event of the run's global trace.
type Delivery struct {
	P groups.Process
	M msg.ID
	T failure.Time
	// Seq is the global sequence number of the event (total order of the
	// linearized run, used by the checkers).
	Seq int
}

// Options configure a run of the protocol.
type Options struct {
	// Variant selects the problem flavour (default Vanilla).
	Variant Variant
	// ChargeObjects enables the §4.3 universal-construction cost model on
	// every log (step charges + message counts). Correctness is unaffected.
	ChargeObjects bool
	// QuorumGate makes every action on a message of group g wait until the
	// current Σ_g quorum lies inside the engine's active participant set —
	// the shared objects of g are built from Σ_g ∧ Ω_g, so their operations
	// only complete when a quorum responds. Full-participation runs are
	// unaffected (ideal quorums are always alive); the necessity emulations
	// rely on it to make restricted instances block exactly when the paper
	// says they must.
	QuorumGate bool
	// OnDeliver, when set, observes every delivery (the extraction
	// algorithms chain multicasts off deliveries).
	OnDeliver func(p groups.Process, m *msg.Message, t failure.Time)
	// FD tunes the ideal detector histories.
	FD fd.Options
}

// Shared holds the state shared by every node of a run: the topology, the
// message registry, the shared objects, the detector bundle, and the global
// delivery trace.
type Shared struct {
	Topo *groups.Topology
	Reg  *msg.Registry
	Mu   *fd.Mu
	Opt  Options

	logs map[PairKey]*uc.Log
	cons map[consKey]*consensusObject

	// seqs are the group-sequential lists L_g of the Proposition 1
	// reduction: client multicasts enter here, and a sender only hands its
	// message to Algorithm 1 once every predecessor of L_g is delivered
	// locally.
	seqs map[groups.GroupID][]msg.ID

	// requestedAt records when each message was handed to multicast() —
	// the left endpoint of the real-time relation ⇝.
	requestedAt map[msg.ID]failure.Time
	// firstDelivered records the first delivery time of each message — the
	// right endpoint of ⇝.
	firstDelivered map[msg.ID]failure.Time

	deliveries []Delivery
	seq        int
	version    int64

	// gammaOverride substitutes another γ implementation for the ideal one
	// (ablations and the necessity emulations plug in theirs here).
	gammaOverride fd.Gamma
}

// Gamma returns the γ in effect for this run. The strict variant derives
// its γ from the indicator detectors (Proposition 51: ∧1^{g∩h} ≥ γ), so
// its detector is exactly (∧ Σ_{g∩h} ∧ 1^{g∩h}) ∧ (∧ Ω_g) — the §6.1
// rewriting.
func (sh *Shared) Gamma() fd.Gamma {
	if sh.gammaOverride != nil {
		return sh.gammaOverride
	}
	if sh.Opt.Variant == Strict {
		return fd.NewDerivedGamma(sh.Topo, sh.Mu)
	}
	return sh.Mu.Gamma()
}

// OverrideGamma substitutes a γ implementation (for ablations and
// emulation-driven runs); call before the run starts.
func (sh *Shared) OverrideGamma(g fd.Gamma) { sh.gammaOverride = g }

// consensusObject is CONS_{m,f}: first proposal wins, hosts charged.
type consensusObject struct {
	hosts   groups.ProcSet
	decided bool
	value   int
}

// NewShared builds the shared state of a run.
func NewShared(topo *groups.Topology, pat *failure.Pattern, opt Options) *Shared {
	if opt.Variant == 0 {
		opt.Variant = Vanilla
	}
	sh := &Shared{
		Topo:           topo,
		Reg:            msg.NewRegistry(),
		Mu:             fd.NewMu(topo, pat, opt.FD),
		Opt:            opt,
		logs:           make(map[PairKey]*uc.Log),
		cons:           make(map[consKey]*consensusObject),
		seqs:           make(map[groups.GroupID][]msg.ID),
		requestedAt:    make(map[msg.ID]failure.Time),
		firstDelivered: make(map[msg.ID]failure.Time),
	}
	k := topo.NumGroups()
	for g := 0; g < k; g++ {
		gid := groups.GroupID(g)
		for h := g; h < k; h++ {
			hid := groups.GroupID(h)
			inter := topo.Intersection(gid, hid)
			if inter.Empty() {
				continue
			}
			name := fmt.Sprintf("LOG_g%d", g)
			if g != h {
				name = fmt.Sprintf("LOG_g%d∩g%d", g, h)
			}
			// The fallback consensus is hosted by the lower-numbered group
			// ("atop some group, say g"); under StronglyGenuine the
			// intersection hosts itself (Ω_{g∩h} ∧ Σ_{g∩h} are available).
			slow := topo.Group(gid)
			if opt.Variant == StronglyGenuine {
				slow = inter
			}
			sh.logs[PairKey{gid, hid}] = uc.New(name, inter, slow, opt.ChargeObjects)
		}
	}
	return sh
}

// Log returns LOG_{g∩h} (LOG_g when g == h); it panics when g∩h = ∅, which
// indicates a caller bug.
func (sh *Shared) Log(g, h groups.GroupID) *uc.Log {
	l, ok := sh.logs[CanonPair(g, h)]
	if !ok {
		panic(fmt.Sprintf("core: no log for g%d∩g%d", g, h))
	}
	return l
}

// GroupLog returns LOG_g.
func (sh *Shared) GroupLog(g groups.GroupID) *uc.Log { return sh.Log(g, g) }

// Cons returns CONS_{m,f}, lazily created. The object is hosted by dst(m)
// (consensus is solvable in each group from Σ_g ∧ Ω_g).
func (sh *Shared) Cons(m msg.ID, fam groups.GroupSet) *consensusObject {
	key := consKey{m: m, fam: fam}
	if o, ok := sh.cons[key]; ok {
		return o
	}
	o := &consensusObject{hosts: sh.Topo.Group(sh.Reg.Get(m).Dst)}
	sh.cons[key] = o
	return o
}

// Request registers a client multicast: the message enters the group-
// sequential list L_g immediately; the sending node passes it to
// Algorithm 1 once its L_g predecessors are delivered locally.
func (sh *Shared) Request(src groups.Process, dst groups.GroupID, payload []byte, now failure.Time) *msg.Message {
	if !sh.Topo.Group(dst).Has(src) {
		panic(fmt.Sprintf("core: closed dissemination model requires src ∈ dst: p%d ∉ g%d", src, dst))
	}
	m := sh.Reg.New(src, dst, payload)
	sh.seqs[dst] = append(sh.seqs[dst], m.ID)
	sh.requestedAt[m.ID] = now
	sh.version++
	return m
}

// SeqList returns L_g.
func (sh *Shared) SeqList(g groups.GroupID) []msg.ID { return sh.seqs[g] }

// RecordDelivery appends to the global delivery trace.
func (sh *Shared) RecordDelivery(p groups.Process, m msg.ID, t failure.Time) {
	sh.deliveries = append(sh.deliveries, Delivery{P: p, M: m, T: t, Seq: sh.seq})
	sh.seq++
	if _, ok := sh.firstDelivered[m]; !ok {
		sh.firstDelivered[m] = t
	}
	sh.version++
}

// Deliveries returns the global delivery trace.
func (sh *Shared) Deliveries() []Delivery { return sh.deliveries }

// RequestedAt returns when the message was requested.
func (sh *Shared) RequestedAt(m msg.ID) failure.Time { return sh.requestedAt[m] }

// FirstDeliveredAt returns the first delivery time of m; ok is false when m
// was never delivered.
func (sh *Shared) FirstDeliveredAt(m msg.ID) (failure.Time, bool) {
	t, ok := sh.firstDelivered[m]
	return t, ok
}
