package core

import (
	"fmt"
	"sync"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/uc"
)

// PairKey identifies a log: the canonical unordered pair of groups whose
// intersection the log serves; a == b identifies a group log LOG_g.
type PairKey struct{ A, B groups.GroupID }

// CanonPair returns the canonical key for (g, h).
func CanonPair(g, h groups.GroupID) PairKey {
	if g > h {
		g, h = h, g
	}
	return PairKey{g, h}
}

// consKey identifies a consensus object CONS_{m,f} (Algorithm 1, line 3):
// the message and the family of groups agreeing on its final position.
type consKey struct {
	m   msg.ID
	fam groups.GroupSet
}

// Delivery is one delivery event of the run's global trace.
type Delivery struct {
	P groups.Process
	M msg.ID
	T failure.Time
	// Seq is the global sequence number of the event (total order of the
	// linearized run, used by the checkers).
	Seq int
}

// Options configure a run of the protocol.
type Options struct {
	// Variant selects the problem flavour (default Vanilla).
	Variant Variant
	// ChargeObjects enables the §4.3 universal-construction cost model on
	// every log (step charges + message counts). Correctness is unaffected.
	ChargeObjects bool
	// QuorumGate makes every action on a message of group g wait until the
	// current Σ_g quorum lies inside the engine's active participant set —
	// the shared objects of g are built from Σ_g ∧ Ω_g, so their operations
	// only complete when a quorum responds. Full-participation runs are
	// unaffected (ideal quorums are always alive); the necessity emulations
	// rely on it to make restricted instances block exactly when the paper
	// says they must.
	QuorumGate bool
	// OnDeliver, when set, observes every delivery (the extraction
	// algorithms chain multicasts off deliveries).
	OnDeliver func(p groups.Process, m *msg.Message, t failure.Time)
	// Conflict is the commutativity relation of the Generic variant: it
	// reports whether two messages must be ordered relative to each other.
	// nil means every pair conflicts (total order — exactly Algorithm 1).
	// See msg.Relation for the contract the relation must satisfy; only the
	// Generic variant consults it.
	Conflict msg.Relation
	// FD tunes the ideal detector histories.
	FD fd.Options
	// Rec, when non-nil, collects the run's observability: event timeline,
	// latency samples and per-pair coordination counts. Every recording
	// method is nil-safe, so runs without a recorder pay a pointer test.
	Rec *obs.Recorder
}

// Shared holds the state shared by every node of a run: the topology, the
// message registry, the detector bundle, the global delivery trace, and the
// backend supplying the shared objects (the substrate the protocol runs
// over — see backend.go).
//
// The trace-recording surface (Request, RecordDelivery, SeqList and the
// accessors) is guarded by a mutex: deterministic runs are sequential, but
// the live backend steps every node in its own goroutine.
type Shared struct {
	Topo *groups.Topology
	Reg  *msg.Registry
	Mu   *fd.Mu
	Opt  Options

	be Backend

	mu sync.Mutex

	// seqs are the group-sequential lists L_g of the Proposition 1
	// reduction: client multicasts enter here, and a sender only hands its
	// message to Algorithm 1 once every predecessor of L_g is delivered
	// locally.
	seqs map[groups.GroupID][]msg.ID

	// requestedAt records when each message was handed to multicast() —
	// the left endpoint of the real-time relation ⇝.
	requestedAt map[msg.ID]failure.Time
	// firstDelivered records the first delivery time of each message — the
	// right endpoint of ⇝.
	firstDelivered map[msg.ID]failure.Time

	deliveries []Delivery
	seq        int
	version    int64
	frozen     bool

	// gammaOverride substitutes another γ implementation for the ideal one
	// (ablations and the necessity emulations plug in theirs here).
	gammaOverride fd.Gamma
}

// Gamma returns the γ in effect for this run. The strict variant derives
// its γ from the indicator detectors (Proposition 51: ∧1^{g∩h} ≥ γ), so
// its detector is exactly (∧ Σ_{g∩h} ∧ 1^{g∩h}) ∧ (∧ Ω_g) — the §6.1
// rewriting.
func (sh *Shared) Gamma() fd.Gamma {
	if sh.gammaOverride != nil {
		return sh.gammaOverride
	}
	if sh.Opt.Variant == Strict {
		return fd.NewDerivedGamma(sh.Topo, sh.Mu)
	}
	return sh.Mu.Gamma()
}

// OverrideGamma substitutes a γ implementation (for ablations and
// emulation-driven runs); call before the run starts.
func (sh *Shared) OverrideGamma(g fd.Gamma) { sh.gammaOverride = g }

// NewShared builds the shared state of a run over the deterministic Sim
// backend (ideal in-memory objects).
func NewShared(topo *groups.Topology, pat *failure.Pattern, opt Options) *Shared {
	sh := newSharedState(topo, pat, opt)
	sh.be = newSimBackend(topo, sh.Reg, sh.Opt)
	return sh
}

// NewSharedWithBackend builds the shared state of a run over an explicit
// backend (internal/live supplies the replicated one). The factory receives
// the freshly built shared state — backends need its registry to resolve
// message destinations and its detector bundle to drive leader election.
func NewSharedWithBackend(topo *groups.Topology, pat *failure.Pattern, opt Options, mk func(sh *Shared) Backend) *Shared {
	sh := newSharedState(topo, pat, opt)
	sh.be = mk(sh)
	return sh
}

// newSharedState builds everything but the backend.
func newSharedState(topo *groups.Topology, pat *failure.Pattern, opt Options) *Shared {
	if opt.Variant == 0 {
		opt.Variant = Vanilla
	}
	return &Shared{
		Topo:           topo,
		Reg:            msg.NewRegistry(),
		Mu:             fd.NewMu(topo, pat, opt.FD),
		Opt:            opt,
		seqs:           make(map[groups.GroupID][]msg.ID),
		requestedAt:    make(map[msg.ID]failure.Time),
		firstDelivered: make(map[msg.ID]failure.Time),
	}
}

// Backend returns the shared-object backend of the run.
func (sh *Shared) Backend() Backend { return sh.be }

// Rec returns the run's recorder (nil when observability is off).
func (sh *Shared) Rec() *obs.Recorder { return sh.Opt.Rec }

// Log returns the universal-construction log LOG_{g∩h} (LOG_g when g == h)
// of a Sim-backed run; it panics when g∩h = ∅ or when the run uses another
// backend. It exists for the invariant tests and the ablations, which
// inspect the ideal objects directly; protocol code goes through Backend.
func (sh *Shared) Log(g, h groups.GroupID) *uc.Log {
	b, ok := sh.be.(*simBackend)
	if !ok {
		panic(fmt.Sprintf("core: Shared.Log(g%d,g%d) needs the Sim backend (got %T)", g, h, sh.be))
	}
	return b.ucLog(g, h)
}

// GroupLog returns LOG_g (Sim backend only; see Log).
func (sh *Shared) GroupLog(g groups.GroupID) *uc.Log { return sh.Log(g, g) }

// Request registers a client multicast: the message enters the group-
// sequential list L_g immediately; the sending node passes it to
// Algorithm 1 once its L_g predecessors are delivered locally.
func (sh *Shared) Request(src groups.Process, dst groups.GroupID, payload []byte, now failure.Time) *msg.Message {
	return sh.RequestClassed(src, dst, payload, msg.ClassAll, now)
}

// RequestClassed is Request with an explicit conflict-class tag. Before
// registration the tag is normalised against the run's relation: a message
// that does not conflict with itself commutes with everything, so it is
// re-tagged ClassFree — the canonical form the fast path, the wire codec
// and the observability layer all read.
func (sh *Shared) RequestClassed(src groups.Process, dst groups.GroupID, payload []byte, class msg.Class, now failure.Time) *msg.Message {
	if !sh.Topo.Group(dst).Has(src) {
		panic(fmt.Sprintf("core: closed dissemination model requires src ∈ dst: p%d ∉ g%d", src, dst))
	}
	if rel := sh.Opt.Conflict; rel != nil && class != msg.ClassFree {
		probe := msg.Message{Src: src, Dst: dst, Payload: payload, Class: class}
		if !rel(&probe, &probe) {
			class = msg.ClassFree
		}
	}
	m := sh.Reg.NewClassed(src, dst, payload, class)
	sh.mu.Lock()
	sh.seqs[dst] = append(sh.seqs[dst], m.ID)
	sh.requestedAt[m.ID] = now
	sh.version++
	sh.mu.Unlock()
	sh.Opt.Rec.Multicast(src, m.ID, dst, now)
	sh.Opt.Rec.NoteClass(uint64(m.Class))
	return m
}

// Conflicts reports whether a and b must be ordered relative to each other.
// With no relation configured every pair conflicts, so every non-Generic
// run — and a Generic run with a nil relation — behaves exactly like
// Algorithm 1.
func (sh *Shared) Conflicts(a, b msg.ID) bool {
	rel := sh.Opt.Conflict
	if rel == nil {
		return true
	}
	return rel(sh.Reg.Get(a), sh.Reg.Get(b))
}

// Commutative reports whether m commutes with every message (the fast-path
// eligibility test): per the msg.Relation contract, a message that does not
// conflict with itself conflicts with nothing.
func (sh *Shared) Commutative(m msg.ID) bool {
	rel := sh.Opt.Conflict
	if rel == nil {
		return false
	}
	mm := sh.Reg.Get(m)
	return !rel(mm, mm)
}

// SeqList returns a snapshot of L_g.
func (sh *Shared) SeqList(g groups.GroupID) []msg.ID {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]msg.ID(nil), sh.seqs[g]...)
}

// RecordDelivery appends to the global delivery trace.
func (sh *Shared) RecordDelivery(p groups.Process, m msg.ID, t failure.Time) {
	sh.mu.Lock()
	if sh.frozen {
		sh.mu.Unlock()
		return
	}
	sh.deliveries = append(sh.deliveries, Delivery{P: p, M: m, T: t, Seq: sh.seq})
	sh.seq++
	if _, ok := sh.firstDelivered[m]; !ok {
		sh.firstDelivered[m] = t
	}
	sh.version++
	sh.mu.Unlock()
	if rec := sh.Opt.Rec; rec != nil {
		if mm := sh.Reg.Get(m); mm != nil {
			rec.Deliver(p, m, mm.Dst, t)
		}
	}
}

// Freeze stops trace recording: deliveries after Freeze are dropped. The
// live runner freezes the trace before tearing the substrate down, so
// actions completing degraded during shutdown cannot corrupt the evidence
// the checkers consume.
func (sh *Shared) Freeze() {
	sh.mu.Lock()
	sh.frozen = true
	sh.mu.Unlock()
}

// Deliveries returns a snapshot of the global delivery trace.
func (sh *Shared) Deliveries() []Delivery {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]Delivery(nil), sh.deliveries...)
}

// RequestedAt returns when the message was requested.
func (sh *Shared) RequestedAt(m msg.ID) failure.Time {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.requestedAt[m]
}

// FirstDeliveredAt returns the first delivery time of m; ok is false when m
// was never delivered.
func (sh *Shared) FirstDeliveredAt(m msg.ID) (failure.Time, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.firstDelivered[m]
	return t, ok
}
