package core

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// TestScaleStress drives a larger system — 24 processes, 8 groups with a
// mixed (partially cyclic) intersection structure, 40 messages, 3 crashes —
// and validates the full specification.
func TestScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("scale stress skipped in -short")
	}
	const n = 24
	gs := []groups.ProcSet{
		groups.NewProcSet(0, 1, 2),
		groups.NewProcSet(2, 3, 4),
		groups.NewProcSet(4, 5, 0),    // triangle with g0, g1
		groups.NewProcSet(6, 7, 8),    // disjoint island
		groups.NewProcSet(8, 9, 10),   // chain with g3
		groups.NewProcSet(11, 12, 13), // disjoint
		groups.NewProcSet(13, 14, 15, 16),
		groups.NewProcSet(17, 18, 19, 20, 21),
	}
	topo := groups.MustNew(n, gs...)
	if !topo.HasCyclicFamilies() {
		t.Fatalf("expected at least one cyclic family")
	}
	rng := rand.New(rand.NewSource(999))
	pat := failure.NewPattern(n).
		WithCrash(4, 120). // g1∩g2
		WithCrash(9, 200). // inside g4
		WithCrash(18, 250) // inside g7
	s := NewSystemWithConfig(topo, pat, Options{FD: fd.Options{Delay: 10}}, engineCfg(pat, 11))
	for i := 0; i < 40; i++ {
		g := groups.GroupID(rng.Intn(len(gs)))
		members := topo.Group(g).Members()
		src := members[rng.Intn(len(members))]
		s.MulticastAt(failure.Time(rng.Intn(400)), src, g, nil)
	}
	if !s.Run() {
		t.Fatalf("scale run did not quiesce")
	}
	for _, v := range s.Check() {
		t.Errorf("violation: %v", v)
	}
	if len(s.Sh.Deliveries()) == 0 {
		t.Fatalf("no deliveries at scale")
	}
}

// TestStrictUsesDerivedGamma: the strict variant runs on the
// indicator-derived γ (Proposition 51) and still satisfies everything,
// including real-time order, under crashes of cyclic intersections.
func TestStrictUsesDerivedGamma(t *testing.T) {
	topo := groups.Figure1()
	for seed := int64(0); seed < table1Seeds(10); seed++ {
		pat := failure.NewPattern(5).WithCrash(1, 30)
		s := NewSystem(topo, pat, Options{Variant: Strict, FD: fd.Options{Delay: 6}}, seed)
		s.Multicast(0, 0, nil)
		s.Multicast(2, 1, nil)
		s.Multicast(3, 2, nil)
		s.MulticastAt(100, 0, 3, nil)
		runAndCheck(t, s)
	}
}

func engineCfg(pat *failure.Pattern, seed int64) engine.Config {
	return engine.Config{
		Pattern:  pat,
		Seed:     seed,
		Policy:   engine.RandomOrder,
		MaxSteps: 3_000_000,
	}
}
