package core

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// TestRandomScenariosRoundRobin re-runs the soak under the round-robin
// scheduling policy: correctness must be schedule-independent.
func TestRandomScenariosRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		s := NewSystemWithConfig(sc.topo, sc.pat, Options{FD: fd.Options{Delay: 8}}, engine.Config{
			Pattern: sc.pat,
			Seed:    sc.seed,
			Policy:  engine.RoundRobin,
		})
		for _, w := range sc.work {
			s.MulticastAt(w.at, w.src, w.dst, nil)
		}
		if !s.Run() {
			t.Fatalf("trial %d: round-robin run did not quiesce (%v)", trial, sc.topo)
		}
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v)", trial, v, sc.topo, sc.pat)
		}
	}
}

// TestAdversarialPauses: long asymmetric pauses (one process starved for a
// long prefix) must not break safety or termination — asynchrony is the
// model's default.
func TestAdversarialPauses(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 40; trial++ {
		sc := genScenario(rng)
		paused := map[groups.Process]failure.Time{}
		// Starve up to two processes deep into the run.
		for i := 0; i < 1+rng.Intn(2); i++ {
			paused[groups.Process(rng.Intn(sc.topo.NumProcesses()))] = failure.Time(200 + rng.Intn(300))
		}
		s := NewSystemWithConfig(sc.topo, sc.pat, Options{FD: fd.Options{Delay: 8}}, engine.Config{
			Pattern:     sc.pat,
			Seed:        sc.seed,
			Policy:      engine.RandomOrder,
			PausedUntil: paused,
		})
		for _, w := range sc.work {
			s.MulticastAt(w.at, w.src, w.dst, nil)
		}
		if !s.Run() {
			t.Fatalf("trial %d: paused run did not quiesce (%v)", trial, sc.topo)
		}
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v paused=%v)", trial, v, sc.topo, sc.pat, paused)
		}
	}
}
