package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
)

// Node runs Algorithm 1 at one process. It is an engine.Automaton: each Step
// attempts to fire one enabled action — multicast (line 5), pending
// (line 8), commit (line 16), stabilize (line 25), stable (line 30) or
// deliver (line 34) — scanning the undelivered messages it knows about in ID
// order.
//
// The scan is ready-set based: discovery is incremental (a per-group-log
// high-water mark into the log's first-append message stream, never a
// re-listing), delivered messages are retired from the scan set, and a scan
// that fired nothing captures the versions of this process's log handles so
// the next Step can be skipped outright while nothing it observes has
// changed (see canSkip for why that is sound).
//
// The node touches the shared objects only through the Backend interfaces
// (backend.go), so the same code runs over the deterministic in-memory
// substrate and over the live replicated one. Under the live backend Step is
// called from a per-process goroutine and reads may lag the replicas; every
// guard simply stays false until the local replica catches up.
type Node struct {
	p  groups.Process
	sh *Shared

	phase     map[msg.ID]Phase
	active    []msg.ID // undelivered discovered messages, ascending ID
	delivered []msg.ID

	// hw is the per-group-log discovery high-water mark: how many messages
	// of LOG_g's first-append stream this node has already ingested. Each
	// message lands in exactly one group log (its destination's), so there
	// is no cross-log dedup to do.
	hw map[groups.GroupID]int

	// snapVers (parallel to myPairs) holds the log versions the last
	// no-fire scan pass was evaluated against; snapValid marks it usable as
	// a skip certificate. The versions are read BEFORE the pass: a mutation
	// landing mid-scan (its guard effect possibly unseen) then fails the
	// next canSkip version check instead of being silently absorbed into
	// the certificate. preVers is the pre-scan scratch buffer. dirty is set
	// from outside the stepping goroutine (Multicast) to force the next
	// Step to scan regardless.
	snapVers  []int64
	preVers   []int64
	snapValid bool
	dirty     atomic.Bool

	// outbox holds client multicast requests not yet handed to Algorithm 1
	// (waiting behind their L_g predecessors), per destination group. The
	// mutex covers it: clients enqueue from outside the stepping goroutine.
	boxMu  sync.Mutex
	outbox map[groups.GroupID][]msg.ID

	// myGroups caches G(p); myPairs the log keys of this process; logs the
	// backend handles for those keys (including the group logs {g,g}).
	myGroups []groups.GroupID
	myPairs  []PairKey
	logs     map[PairKey]LogObject

	// fastMemo caches the fast-track eligibility of each known message
	// (Generic variant): whether it commutes with every message and so
	// skips the ordering phases. The answer is a pure function of the
	// message, so memoising it keeps the relation off the guard hot paths.
	fastMemo map[msg.ID]bool
}

// NewNode builds the automaton for process p.
func NewNode(p groups.Process, sh *Shared) *Node {
	n := &Node{
		p:        p,
		sh:       sh,
		phase:    make(map[msg.ID]Phase),
		hw:       make(map[groups.GroupID]int),
		outbox:   make(map[groups.GroupID][]msg.ID),
		logs:     make(map[PairKey]LogObject),
		fastMemo: make(map[msg.ID]bool),
	}
	gs := sh.Topo.GroupsOf(p).Members()
	n.myGroups = gs
	for i, g := range gs {
		n.myPairs = append(n.myPairs, PairKey{g, g})
		for _, h := range gs[i+1:] {
			if sh.Topo.Intersecting(g, h) {
				n.myPairs = append(n.myPairs, CanonPair(g, h))
			}
		}
	}
	for _, key := range n.myPairs {
		n.logs[key] = sh.Backend().Log(p, key.A, key.B)
	}
	return n
}

// log returns this process's handle on LOG_{g∩h}.
func (n *Node) log(g, h groups.GroupID) LogObject { return n.logs[CanonPair(g, h)] }

// groupLog returns this process's handle on LOG_g.
func (n *Node) groupLog(g groups.GroupID) LogObject { return n.logs[PairKey{g, g}] }

// Proc implements engine.Automaton.
func (n *Node) Proc() groups.Process { return n.p }

// Multicast enqueues a client request at this node. The message must have
// been registered through Shared.Request by the driver.
func (n *Node) Multicast(m *msg.Message) {
	if m.Src != n.p {
		panic("core: Multicast called at a node other than the source")
	}
	n.boxMu.Lock()
	n.outbox[m.Dst] = append(n.outbox[m.Dst], m.ID)
	n.boxMu.Unlock()
	// The enqueue enables tryMulticast without touching any log, so the
	// version-snapshot skip certificate no longer covers the guard inputs.
	n.dirty.Store(true)
}

// Phase returns the local phase of m.
func (n *Node) Phase(m msg.ID) Phase {
	if ph, ok := n.phase[m]; ok {
		return ph
	}
	return PhaseStart
}

// Delivered returns the local delivery order.
func (n *Node) Delivered() []msg.ID { return append([]msg.ID(nil), n.delivered...) }

// HasDelivered reports whether m was delivered locally.
func (n *Node) HasDelivered(m msg.ID) bool { return n.Phase(m) == PhaseDeliver }

// gateOK implements the quorum-responsiveness gate: operations on the
// shared objects of group g complete only when the current Σ_g quorum can
// take steps.
func (n *Node) gateOK(ctx *engine.Ctx, g groups.GroupID) bool {
	if !n.sh.Opt.QuorumGate {
		return true
	}
	sig, ok := n.sh.Mu.SigmaFor(g, g)
	if !ok {
		return false
	}
	q, ok := sig.Quorum(n.p, ctx.Now)
	if !ok {
		return false
	}
	return q.SubsetOf(ctx.E.ActiveParticipants(ctx.Now))
}

// Step implements engine.Automaton: discover new messages, then try one
// action (at most one per Step — the deterministic engine's accounting and
// interleaving control rely on that granularity; the live runner loops via
// Drain instead).
//
// A Step whose predecessor captured a valid skip certificate returns false
// without scanning at all; otherwise the scan retires delivered messages
// from the active set as it walks it, and a pass that fired nothing
// recaptures the certificate.
func (n *Node) Step(ctx *engine.Ctx) bool {
	sched := n.sh.Opt.Rec.Sched()
	if n.canSkip() {
		sched.IncSkippedScan()
		return false
	}
	sched.IncScan()
	n.preScanVersions()
	n.discover()
	if n.tryMulticast(ctx) {
		sched.IncAction()
		return true
	}
	fired := false
	timeSensitive := 0
	w := 0
	for i := 0; i < len(n.active); i++ {
		id := n.active[i]
		ph := n.phase[id]
		if ph == PhaseDeliver {
			continue // retired: delivered messages leave the scan set
		}
		n.active[w] = id
		w++
		if ph == PhasePending || ph == PhaseCommit {
			// tryCommit and tryStable consult γ(g) (and the Strict variant
			// the 1^{g∩h} indicator) at the current time: these guards can
			// open with no object mutating, so their presence vetoes the
			// skip certificate.
			timeSensitive++
		}
		if fired || !n.gateOK(ctx, n.sh.Reg.Get(id).Dst) {
			continue
		}
		switch ph {
		case PhaseStart:
			if n.fastTrack(id) {
				fired = n.tryFastDeliver(ctx, id)
			} else {
				fired = n.tryPending(ctx, id)
			}
		case PhasePending:
			fired = n.tryCommit(ctx, id)
		case PhaseCommit:
			fired = n.tryStabilize(ctx, id) || n.tryStable(ctx, id)
		case PhaseStable:
			fired = n.tryDeliver(ctx, id)
		}
	}
	n.active = n.active[:w]
	if fired {
		sched.IncAction()
		return true
	}
	n.captureSnap(timeSensitive)
	return false
}

// Drain fires every enabled action before returning, reporting how many
// fired. The live runner calls it once per wakeup so a single notification
// retires the whole chain of actions it enabled; the deterministic engine
// keeps calling Step directly, one action at a time.
func (n *Node) Drain(ctx *engine.Ctx) int {
	fired := 0
	for n.Step(ctx) {
		fired++
	}
	return fired
}

// canSkip reports whether the whole Step may be elided: the last scan fired
// nothing, no client request arrived since (dirty), no active message sits
// in a time-gated phase (checked at capture), the quorum gate is off (its
// guard reads engine state no log version reflects), and every log handle of
// this process still has the version the certificate recorded.
//
// The certificate covers remote progress because anything that enables a
// guard here either mutates one of this process's logs (replica applies bump
// Version; in the Sim backend the objects are shared outright) or is a local
// action of this node — and local actions only happen inside scans, which
// invalidate the certificate by firing. Conflict-class learning rides on
// decided log ops, so it too bumps a covered version.
func (n *Node) canSkip() bool {
	if !n.snapValid || n.sh.Opt.QuorumGate {
		return false
	}
	if n.dirty.Swap(false) {
		n.snapValid = false
		return false
	}
	for i, key := range n.myPairs {
		if n.logs[key].Version() != n.snapVers[i] {
			n.snapValid = false
			return false
		}
	}
	return true
}

// preScanVersions records every log handle's version before the guard pass
// evaluates anything. Only these pre-scan values may become the skip
// certificate: reading versions after the pass would absorb a mutation that
// landed mid-scan — whose guard effect the pass may not have seen — and the
// wakeup it queued would then be skipped as a no-change, leaving the enabled
// action stranded until the heartbeat.
func (n *Node) preScanVersions() {
	if n.sh.Opt.QuorumGate {
		return
	}
	if n.preVers == nil {
		n.preVers = make([]int64, len(n.myPairs))
	}
	for i, key := range n.myPairs {
		n.preVers[i] = n.logs[key].Version()
	}
}

// captureSnap promotes the pre-scan versions to the skip certificate after
// a scan pass that fired nothing, unless a time-gated phase, the quorum
// gate or a pending client enqueue makes the log versions an incomplete
// summary of the guard inputs.
func (n *Node) captureSnap(timeSensitive int) {
	if n.sh.Opt.QuorumGate || timeSensitive > 0 || n.dirty.Load() || n.preVers == nil {
		return
	}
	n.snapVers, n.preVers = n.preVers, n.snapVers
	if n.snapVers == nil {
		// First capture: preVers moved over, leave a fresh scratch buffer.
		n.preVers = make([]int64, len(n.myPairs))
	}
	n.snapValid = true
}

// discover ingests the new suffix of each group log's message stream. Newly
// seen messages enter the phase map at PhaseStart and join the active scan
// set, which stays sorted by ID (the scan order of Step).
func (n *Node) discover() {
	added := false
	for _, g := range n.myGroups {
		from := n.hw[g]
		ids := n.groupLog(g).MessagesSince(from)
		if len(ids) == 0 {
			continue
		}
		n.hw[g] = from + len(ids)
		for _, id := range ids {
			if _, seen := n.phase[id]; seen {
				continue
			}
			n.phase[id] = PhaseStart
			n.active = append(n.active, id)
			added = true
		}
	}
	if added {
		sort.Slice(n.active, func(i, j int) bool { return n.active[i] < n.active[j] })
	}
}

// ScanSetSize returns how many messages the scheduler still scans, after
// retiring any delivered stragglers. Not safe concurrently with stepping —
// call it between steps (or after a live System stopped).
func (n *Node) ScanSetSize() int {
	w := 0
	for _, id := range n.active {
		if n.phase[id] != PhaseDeliver {
			n.active[w] = id
			w++
		}
	}
	n.active = n.active[:w]
	return w
}

// outboxHead returns the first queued request of group g, if any.
func (n *Node) outboxHead(g groups.GroupID) (msg.ID, bool) {
	n.boxMu.Lock()
	defer n.boxMu.Unlock()
	box := n.outbox[g]
	if len(box) == 0 {
		return msg.None, false
	}
	return box[0], true
}

// outboxPop removes the head request of group g.
func (n *Node) outboxPop(g groups.GroupID) {
	n.boxMu.Lock()
	n.outbox[g] = n.outbox[g][1:]
	n.boxMu.Unlock()
}

// tryMulticast implements the Proposition 1 group-sequential gate plus
// line 5-7 of Algorithm 1: the head of the outbox is appended to LOG_g once
// every predecessor in L_g is delivered locally; helping appends a stalled
// predecessor on the sender's behalf.
func (n *Node) tryMulticast(ctx *engine.Ctx) bool {
	for _, g := range n.myGroups {
		head, ok := n.outboxHead(g)
		if !ok || !n.gateOK(ctx, g) {
			continue
		}
		log := n.groupLog(g)
		for _, prev := range n.sh.SeqList(g) {
			if prev == head {
				// Every predecessor is delivered: multicast(head).
				if n.Phase(head) != PhaseStart || log.Contains(logobj.MsgDatum(head)) {
					// Someone (or a previous step) already appended it.
					n.outboxPop(g)
					return true
				}
				v := log.Append(ctx, g, logobj.MsgDatum(head))
				n.sh.Opt.Rec.Append(n.p, head, g, g, uint8(logobj.KindMsg), v, ctx.Now)
				n.outboxPop(g)
				return true
			}
			if n.Phase(prev) == PhaseDeliver {
				continue
			}
			// Help: make sure the predecessor entered Algorithm 1.
			if !log.Contains(logobj.MsgDatum(prev)) {
				v := log.Append(ctx, g, logobj.MsgDatum(prev))
				n.sh.Opt.Rec.Append(n.p, prev, g, g, uint8(logobj.KindMsg), v, ctx.Now)
				return true
			}
			// The predecessor is in flight. Under the Generic variant L_g
			// only orders conflicting requests — a commuting predecessor
			// need not be awaited.
			if n.skipOrder(prev, head) {
				continue
			}
			break
		}
	}
	return false
}

// tryPending implements lines 8-15.
func (n *Node) tryPending(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	if !glog.Contains(logobj.MsgDatum(id)) {
		return false
	}
	// ∀m' <_{LOG_g} m: PHASE[m'] ≥ commit (line 11); under the Generic
	// variant only conflicting predecessors gate — commuting ones impose no
	// relative order (and fast-tracked ones never reach commit at all).
	for _, prev := range glog.MessagesBefore(logobj.MsgDatum(id)) {
		if n.skipOrder(prev, id) {
			continue
		}
		if n.Phase(prev) < PhaseCommit {
			return false
		}
	}
	// eff (lines 12-15).
	for _, h := range n.myGroups {
		if !n.sh.Topo.Intersecting(g, h) {
			continue
		}
		i := n.log(g, h).Append(ctx, g, logobj.MsgDatum(id))
		n.sh.Opt.Rec.Append(n.p, id, g, h, uint8(logobj.KindMsg), i, ctx.Now)
		glog.Append(ctx, g, logobj.PosDatum(id, h, i))
		n.sh.Opt.Rec.Append(n.p, id, g, g, uint8(logobj.KindPos), i, ctx.Now)
	}
	n.phase[id] = PhasePending
	return true
}

// gammaGroups returns γ(g) at (p, now) per the variant.
func (n *Node) gammaGroups(g groups.GroupID, now failure.Time) groups.GroupSet {
	switch n.sh.Opt.Variant {
	case Pairwise:
		// Pairwise ordering is computably equivalent to F = ∅ (§7): no
		// cyclic coordination.
		return 0
	default:
		return fd.GammaGroups(n.sh.Topo, n.sh.Gamma(), n.p, g, now)
	}
}

// consensusFamily returns the family f of line 20 per the variant.
func (n *Node) consensusFamily(g groups.GroupID) groups.GroupSet {
	if n.sh.Opt.Variant == Pairwise {
		return 0
	}
	return n.sh.Topo.ConsensusFamily(n.p, g)
}

// tryCommit implements lines 16-24.
func (n *Node) tryCommit(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	// ∀h ∈ γ(g): (m,h,-) ∈ LOG_g (line 18).
	for _, h := range n.gammaGroups(g, ctx.Now).Members() {
		if !glog.HasPosTuple(id, h) {
			return false
		}
	}
	// eff (lines 19-24).
	k, ok := glog.MaxPosTuple(id)
	if !ok {
		// p records its own tuples at pending time, so they reach the log
		// before the commit guard can pass; a replicated backend may simply
		// not have caught up yet.
		return false
	}
	fam := n.consensusFamily(g)
	n.sh.Opt.Rec.Propose(n.p, id, g, k, ctx.Now)
	k = n.sh.Backend().Cons(n.p, id, fam).Propose(ctx, k)
	n.sh.Opt.Rec.Decide(n.p, id, g, k, ctx.Now)
	for _, h := range n.myGroups {
		if !n.sh.Topo.Intersecting(g, h) {
			continue
		}
		n.log(g, h).BumpAndLock(ctx, g, logobj.MsgDatum(id), k)
		n.sh.Opt.Rec.Bump(n.p, id, g, h, k, ctx.Now)
	}
	n.phase[id] = PhaseCommit
	return true
}

// tryStabilize implements lines 25-29 for the first group h that is ready.
func (n *Node) tryStabilize(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	for _, h := range n.myGroups {
		if h == g || !n.sh.Topo.Intersecting(g, h) {
			continue
		}
		if glog.Contains(logobj.StableDatum(id, h)) {
			continue
		}
		// ∀m' <_{LOG_{g∩h}} m: PHASE[m'] ≥ stable (line 28), restricted to
		// conflicting predecessors under the Generic variant.
		ready := true
		for _, prev := range n.log(g, h).MessagesBefore(logobj.MsgDatum(id)) {
			if n.skipOrder(prev, id) {
				continue
			}
			if n.Phase(prev) < PhaseStable {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		glog.Append(ctx, g, logobj.StableDatum(id, h))
		n.sh.Opt.Rec.Append(n.p, id, g, h, uint8(logobj.KindStable), 0, ctx.Now)
		return true
	}
	return false
}

// tryStable implements lines 30-33 (and the §6.1 strengthening for the
// strict variant).
func (n *Node) tryStable(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	if n.sh.Opt.Variant == Strict {
		// Strict variation: wait, for every intersecting group h, either
		// the tuple (m,h) or the indicator 1^{g∩h} (§6.1, Sufficiency).
		for _, h := range n.sh.Topo.IntersectingGroups(g) {
			if glog.Contains(logobj.StableDatum(id, h)) {
				continue
			}
			ind, ok := n.sh.Mu.IndicatorFor(g, h)
			if ok && ind.Faulty(n.p, ctx.Now) {
				continue
			}
			return false
		}
	} else {
		// ∀h ∈ γ(g): (m,h) ∈ LOG_g (line 32).
		for _, h := range n.gammaGroups(g, ctx.Now).Members() {
			if !glog.Contains(logobj.StableDatum(id, h)) {
				return false
			}
		}
	}
	n.phase[id] = PhaseStable
	return true
}

// tryDeliver implements lines 34-37: every message preceding m in any log of
// this process must already be delivered here — restricted, under the
// Generic variant, to the predecessors m conflicts with. The restriction is
// sound because conflicting messages only reach this guard with final
// (locked) positions, so the per-log order the guard enforces is the same
// at every replica.
func (n *Node) tryDeliver(ctx *engine.Ctx, id msg.ID) bool {
	d := logobj.MsgDatum(id)
	for _, key := range n.myPairs {
		l := n.logs[key]
		if !l.Contains(d) {
			continue
		}
		for _, prev := range l.MessagesBefore(d) {
			if n.skipOrder(prev, id) {
				continue
			}
			if n.Phase(prev) != PhaseDeliver {
				return false
			}
		}
	}
	n.deliver(ctx, id, false)
	return true
}

// fastTrack reports whether id skips the ordering phases entirely: under
// the Generic variant a message that commutes with every message needs no
// relative order, so the pairwise g∩h coordination is never consulted.
func (n *Node) fastTrack(id msg.ID) bool {
	if n.sh.Opt.Variant != Generic {
		return false
	}
	if v, ok := n.fastMemo[id]; ok {
		return v
	}
	v := n.sh.Commutative(id)
	n.fastMemo[id] = v
	return v
}

// skipOrder reports whether prev may be ignored by id's predecessor guards:
// under the Generic variant a non-conflicting predecessor imposes no
// relative order on id. Every other variant orders unconditionally.
func (n *Node) skipOrder(prev, id msg.ID) bool {
	return n.sh.Opt.Variant == Generic && !n.sh.Conflicts(prev, id)
}

// tryFastDeliver delivers a commuting message directly: it is in LOG_g (its
// replicated group-log append is what made discover see it — the local
// acknowledgment), and it needs no relative order with anything, so the
// pending/commit/stabilize machinery and the g∩h coordination it pays for
// are skipped entirely.
func (n *Node) tryFastDeliver(ctx *engine.Ctx, id msg.ID) bool {
	n.deliver(ctx, id, true)
	return true
}

// deliver finalises a local delivery (fast marks a skipped-coordination
// fast-path delivery for the observability layer).
func (n *Node) deliver(ctx *engine.Ctx, id msg.ID, fast bool) {
	n.phase[id] = PhaseDeliver
	n.delivered = append(n.delivered, id)
	delete(n.fastMemo, id) // delivered: the memo will never be consulted again
	n.sh.RecordDelivery(n.p, id, ctx.Now)
	if fast {
		n.sh.Opt.Rec.FastDelivery()
	}
	if n.sh.Opt.OnDeliver != nil {
		n.sh.Opt.OnDeliver(n.p, n.sh.Reg.Get(id), ctx.Now)
	}
}
