package core

import (
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
)

// Node runs Algorithm 1 at one process. It is an engine.Automaton: each Step
// attempts to fire one enabled action — multicast (line 5), pending
// (line 8), commit (line 16), stabilize (line 25), stable (line 30) or
// deliver (line 34) — scanning the messages it knows about in ID order.
//
// The node touches the shared objects only through the Backend interfaces
// (backend.go), so the same code runs over the deterministic in-memory
// substrate and over the live replicated one. Under the live backend Step is
// called from a per-process goroutine and reads may lag the replicas; every
// guard simply stays false until the local replica catches up.
type Node struct {
	p  groups.Process
	sh *Shared

	phase     map[msg.ID]Phase
	known     []msg.ID
	knownSet  map[msg.ID]bool
	delivered []msg.ID

	// outbox holds client multicast requests not yet handed to Algorithm 1
	// (waiting behind their L_g predecessors), per destination group. The
	// mutex covers it: clients enqueue from outside the stepping goroutine.
	boxMu  sync.Mutex
	outbox map[groups.GroupID][]msg.ID

	// myGroups caches G(p); myPairs the log keys of this process; logs the
	// backend handles for those keys (including the group logs {g,g}).
	myGroups []groups.GroupID
	myPairs  []PairKey
	logs     map[PairKey]LogObject

	// fastMemo caches the fast-track eligibility of each known message
	// (Generic variant): whether it commutes with every message and so
	// skips the ordering phases. The answer is a pure function of the
	// message, so memoising it keeps the relation off the guard hot paths.
	fastMemo map[msg.ID]bool
}

// NewNode builds the automaton for process p.
func NewNode(p groups.Process, sh *Shared) *Node {
	n := &Node{
		p:        p,
		sh:       sh,
		phase:    make(map[msg.ID]Phase),
		knownSet: make(map[msg.ID]bool),
		outbox:   make(map[groups.GroupID][]msg.ID),
		logs:     make(map[PairKey]LogObject),
		fastMemo: make(map[msg.ID]bool),
	}
	gs := sh.Topo.GroupsOf(p).Members()
	n.myGroups = gs
	for i, g := range gs {
		n.myPairs = append(n.myPairs, PairKey{g, g})
		for _, h := range gs[i+1:] {
			if sh.Topo.Intersecting(g, h) {
				n.myPairs = append(n.myPairs, CanonPair(g, h))
			}
		}
	}
	for _, key := range n.myPairs {
		n.logs[key] = sh.Backend().Log(p, key.A, key.B)
	}
	return n
}

// log returns this process's handle on LOG_{g∩h}.
func (n *Node) log(g, h groups.GroupID) LogObject { return n.logs[CanonPair(g, h)] }

// groupLog returns this process's handle on LOG_g.
func (n *Node) groupLog(g groups.GroupID) LogObject { return n.logs[PairKey{g, g}] }

// Proc implements engine.Automaton.
func (n *Node) Proc() groups.Process { return n.p }

// Multicast enqueues a client request at this node. The message must have
// been registered through Shared.Request by the driver.
func (n *Node) Multicast(m *msg.Message) {
	if m.Src != n.p {
		panic("core: Multicast called at a node other than the source")
	}
	n.boxMu.Lock()
	n.outbox[m.Dst] = append(n.outbox[m.Dst], m.ID)
	n.boxMu.Unlock()
}

// Phase returns the local phase of m.
func (n *Node) Phase(m msg.ID) Phase {
	if ph, ok := n.phase[m]; ok {
		return ph
	}
	return PhaseStart
}

// Delivered returns the local delivery order.
func (n *Node) Delivered() []msg.ID { return append([]msg.ID(nil), n.delivered...) }

// HasDelivered reports whether m was delivered locally.
func (n *Node) HasDelivered(m msg.ID) bool { return n.Phase(m) == PhaseDeliver }

// gateOK implements the quorum-responsiveness gate: operations on the
// shared objects of group g complete only when the current Σ_g quorum can
// take steps.
func (n *Node) gateOK(ctx *engine.Ctx, g groups.GroupID) bool {
	if !n.sh.Opt.QuorumGate {
		return true
	}
	sig, ok := n.sh.Mu.SigmaFor(g, g)
	if !ok {
		return false
	}
	q, ok := sig.Quorum(n.p, ctx.Now)
	if !ok {
		return false
	}
	return q.SubsetOf(ctx.E.ActiveParticipants(ctx.Now))
}

// Step implements engine.Automaton: discover new messages, then try one
// action.
func (n *Node) Step(ctx *engine.Ctx) bool {
	n.discover()
	if n.tryMulticast(ctx) {
		return true
	}
	for _, id := range n.known {
		if !n.gateOK(ctx, n.sh.Reg.Get(id).Dst) {
			continue
		}
		switch n.Phase(id) {
		case PhaseStart:
			if n.fastTrack(id) {
				if n.tryFastDeliver(ctx, id) {
					return true
				}
			} else if n.tryPending(ctx, id) {
				return true
			}
		case PhasePending:
			if n.tryCommit(ctx, id) {
				return true
			}
		case PhaseCommit:
			if n.tryStabilize(ctx, id) {
				return true
			}
			if n.tryStable(ctx, id) {
				return true
			}
		case PhaseStable:
			if n.tryDeliver(ctx, id) {
				return true
			}
		}
	}
	return false
}

// discover scans the group logs of G(p) for messages not yet tracked.
func (n *Node) discover() {
	for _, g := range n.myGroups {
		for _, id := range n.groupLog(g).Messages() {
			if !n.knownSet[id] {
				n.knownSet[id] = true
				n.known = append(n.known, id)
			}
		}
	}
	sort.Slice(n.known, func(i, j int) bool { return n.known[i] < n.known[j] })
}

// outboxHead returns the first queued request of group g, if any.
func (n *Node) outboxHead(g groups.GroupID) (msg.ID, bool) {
	n.boxMu.Lock()
	defer n.boxMu.Unlock()
	box := n.outbox[g]
	if len(box) == 0 {
		return msg.None, false
	}
	return box[0], true
}

// outboxPop removes the head request of group g.
func (n *Node) outboxPop(g groups.GroupID) {
	n.boxMu.Lock()
	n.outbox[g] = n.outbox[g][1:]
	n.boxMu.Unlock()
}

// tryMulticast implements the Proposition 1 group-sequential gate plus
// line 5-7 of Algorithm 1: the head of the outbox is appended to LOG_g once
// every predecessor in L_g is delivered locally; helping appends a stalled
// predecessor on the sender's behalf.
func (n *Node) tryMulticast(ctx *engine.Ctx) bool {
	for _, g := range n.myGroups {
		head, ok := n.outboxHead(g)
		if !ok || !n.gateOK(ctx, g) {
			continue
		}
		log := n.groupLog(g)
		for _, prev := range n.sh.SeqList(g) {
			if prev == head {
				// Every predecessor is delivered: multicast(head).
				if n.Phase(head) != PhaseStart || log.Contains(logobj.MsgDatum(head)) {
					// Someone (or a previous step) already appended it.
					n.outboxPop(g)
					return true
				}
				v := log.Append(ctx, g, logobj.MsgDatum(head))
				n.sh.Opt.Rec.Append(n.p, head, g, g, uint8(logobj.KindMsg), v, ctx.Now)
				n.outboxPop(g)
				return true
			}
			if n.Phase(prev) == PhaseDeliver {
				continue
			}
			// Help: make sure the predecessor entered Algorithm 1.
			if !log.Contains(logobj.MsgDatum(prev)) {
				v := log.Append(ctx, g, logobj.MsgDatum(prev))
				n.sh.Opt.Rec.Append(n.p, prev, g, g, uint8(logobj.KindMsg), v, ctx.Now)
				return true
			}
			// The predecessor is in flight. Under the Generic variant L_g
			// only orders conflicting requests — a commuting predecessor
			// need not be awaited.
			if n.skipOrder(prev, head) {
				continue
			}
			break
		}
	}
	return false
}

// tryPending implements lines 8-15.
func (n *Node) tryPending(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	if !glog.Contains(logobj.MsgDatum(id)) {
		return false
	}
	// ∀m' <_{LOG_g} m: PHASE[m'] ≥ commit (line 11); under the Generic
	// variant only conflicting predecessors gate — commuting ones impose no
	// relative order (and fast-tracked ones never reach commit at all).
	for _, prev := range glog.MessagesBefore(logobj.MsgDatum(id)) {
		if n.skipOrder(prev, id) {
			continue
		}
		if n.Phase(prev) < PhaseCommit {
			return false
		}
	}
	// eff (lines 12-15).
	for _, h := range n.myGroups {
		if !n.sh.Topo.Intersecting(g, h) {
			continue
		}
		i := n.log(g, h).Append(ctx, g, logobj.MsgDatum(id))
		n.sh.Opt.Rec.Append(n.p, id, g, h, uint8(logobj.KindMsg), i, ctx.Now)
		glog.Append(ctx, g, logobj.PosDatum(id, h, i))
		n.sh.Opt.Rec.Append(n.p, id, g, g, uint8(logobj.KindPos), i, ctx.Now)
	}
	n.phase[id] = PhasePending
	return true
}

// gammaGroups returns γ(g) at (p, now) per the variant.
func (n *Node) gammaGroups(g groups.GroupID, now failure.Time) groups.GroupSet {
	switch n.sh.Opt.Variant {
	case Pairwise:
		// Pairwise ordering is computably equivalent to F = ∅ (§7): no
		// cyclic coordination.
		return 0
	default:
		return fd.GammaGroups(n.sh.Topo, n.sh.Gamma(), n.p, g, now)
	}
}

// consensusFamily returns the family f of line 20 per the variant.
func (n *Node) consensusFamily(g groups.GroupID) groups.GroupSet {
	if n.sh.Opt.Variant == Pairwise {
		return 0
	}
	return n.sh.Topo.ConsensusFamily(n.p, g)
}

// tryCommit implements lines 16-24.
func (n *Node) tryCommit(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	// ∀h ∈ γ(g): (m,h,-) ∈ LOG_g (line 18).
	for _, h := range n.gammaGroups(g, ctx.Now).Members() {
		if !glog.HasPosTuple(id, h) {
			return false
		}
	}
	// eff (lines 19-24).
	k, ok := glog.MaxPosTuple(id)
	if !ok {
		// p records its own tuples at pending time, so they reach the log
		// before the commit guard can pass; a replicated backend may simply
		// not have caught up yet.
		return false
	}
	fam := n.consensusFamily(g)
	n.sh.Opt.Rec.Propose(n.p, id, g, k, ctx.Now)
	k = n.sh.Backend().Cons(n.p, id, fam).Propose(ctx, k)
	n.sh.Opt.Rec.Decide(n.p, id, g, k, ctx.Now)
	for _, h := range n.myGroups {
		if !n.sh.Topo.Intersecting(g, h) {
			continue
		}
		n.log(g, h).BumpAndLock(ctx, g, logobj.MsgDatum(id), k)
		n.sh.Opt.Rec.Bump(n.p, id, g, h, k, ctx.Now)
	}
	n.phase[id] = PhaseCommit
	return true
}

// tryStabilize implements lines 25-29 for the first group h that is ready.
func (n *Node) tryStabilize(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	for _, h := range n.myGroups {
		if h == g || !n.sh.Topo.Intersecting(g, h) {
			continue
		}
		if glog.Contains(logobj.StableDatum(id, h)) {
			continue
		}
		// ∀m' <_{LOG_{g∩h}} m: PHASE[m'] ≥ stable (line 28), restricted to
		// conflicting predecessors under the Generic variant.
		ready := true
		for _, prev := range n.log(g, h).MessagesBefore(logobj.MsgDatum(id)) {
			if n.skipOrder(prev, id) {
				continue
			}
			if n.Phase(prev) < PhaseStable {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		glog.Append(ctx, g, logobj.StableDatum(id, h))
		n.sh.Opt.Rec.Append(n.p, id, g, h, uint8(logobj.KindStable), 0, ctx.Now)
		return true
	}
	return false
}

// tryStable implements lines 30-33 (and the §6.1 strengthening for the
// strict variant).
func (n *Node) tryStable(ctx *engine.Ctx, id msg.ID) bool {
	g := n.sh.Reg.Get(id).Dst
	glog := n.groupLog(g)
	if n.sh.Opt.Variant == Strict {
		// Strict variation: wait, for every intersecting group h, either
		// the tuple (m,h) or the indicator 1^{g∩h} (§6.1, Sufficiency).
		for _, h := range n.sh.Topo.IntersectingGroups(g) {
			if glog.Contains(logobj.StableDatum(id, h)) {
				continue
			}
			ind, ok := n.sh.Mu.IndicatorFor(g, h)
			if ok && ind.Faulty(n.p, ctx.Now) {
				continue
			}
			return false
		}
	} else {
		// ∀h ∈ γ(g): (m,h) ∈ LOG_g (line 32).
		for _, h := range n.gammaGroups(g, ctx.Now).Members() {
			if !glog.Contains(logobj.StableDatum(id, h)) {
				return false
			}
		}
	}
	n.phase[id] = PhaseStable
	return true
}

// tryDeliver implements lines 34-37: every message preceding m in any log of
// this process must already be delivered here — restricted, under the
// Generic variant, to the predecessors m conflicts with. The restriction is
// sound because conflicting messages only reach this guard with final
// (locked) positions, so the per-log order the guard enforces is the same
// at every replica.
func (n *Node) tryDeliver(ctx *engine.Ctx, id msg.ID) bool {
	d := logobj.MsgDatum(id)
	for _, key := range n.myPairs {
		l := n.logs[key]
		if !l.Contains(d) {
			continue
		}
		for _, prev := range l.MessagesBefore(d) {
			if n.skipOrder(prev, id) {
				continue
			}
			if n.Phase(prev) != PhaseDeliver {
				return false
			}
		}
	}
	n.deliver(ctx, id, false)
	return true
}

// fastTrack reports whether id skips the ordering phases entirely: under
// the Generic variant a message that commutes with every message needs no
// relative order, so the pairwise g∩h coordination is never consulted.
func (n *Node) fastTrack(id msg.ID) bool {
	if n.sh.Opt.Variant != Generic {
		return false
	}
	if v, ok := n.fastMemo[id]; ok {
		return v
	}
	v := n.sh.Commutative(id)
	n.fastMemo[id] = v
	return v
}

// skipOrder reports whether prev may be ignored by id's predecessor guards:
// under the Generic variant a non-conflicting predecessor imposes no
// relative order on id. Every other variant orders unconditionally.
func (n *Node) skipOrder(prev, id msg.ID) bool {
	return n.sh.Opt.Variant == Generic && !n.sh.Conflicts(prev, id)
}

// tryFastDeliver delivers a commuting message directly: it is in LOG_g (its
// replicated group-log append is what made discover see it — the local
// acknowledgment), and it needs no relative order with anything, so the
// pending/commit/stabilize machinery and the g∩h coordination it pays for
// are skipped entirely.
func (n *Node) tryFastDeliver(ctx *engine.Ctx, id msg.ID) bool {
	n.deliver(ctx, id, true)
	return true
}

// deliver finalises a local delivery (fast marks a skipped-coordination
// fast-path delivery for the observability layer).
func (n *Node) deliver(ctx *engine.Ctx, id msg.ID, fast bool) {
	n.phase[id] = PhaseDeliver
	n.delivered = append(n.delivered, id)
	n.sh.RecordDelivery(n.p, id, ctx.Now)
	if fast {
		n.sh.Opt.Rec.FastDelivery()
	}
	if n.sh.Opt.OnDeliver != nil {
		n.sh.Opt.OnDeliver(n.p, n.sh.Reg.Get(id), ctx.Now)
	}
}
