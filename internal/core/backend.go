package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/uc"
)

// This file defines the substrate boundary of Algorithm 1. The node logic in
// node.go is written purely against these interfaces, so the same protocol
// code runs over two very different substrates:
//
//   - the deterministic Sim backend below — ideal in-memory shared objects
//     (internal/uc over internal/logobj) stepped by the virtual-time engine,
//     used by the proofs-as-tests and the Table-1 reproductions;
//   - the Live backend (internal/live) — every log a replicated state
//     machine (internal/replog) over paxos inside its hosting group, every
//     CONS_{m,f} a dedicated paxos instance, all of it running over
//     net.Transport (reliable or chaos-wrapped).
//
// The split mirrors §4.3 of the paper: Algorithm 1 is specified against
// shared objects, and the universal construction realises those objects over
// message passing. Here both realisations are first-class.

// LogObject is the surface of one shared log LOG_{g∩h} (LOG_g when g = h) as
// Algorithm 1 uses it: the two mutators of §4.3 plus the read-side helpers
// the guards evaluate. The origin argument of the mutators names the
// destination group whose traffic drives the operation (the universal
// construction's contention accounting keys on it; replicated backends may
// ignore it).
type LogObject interface {
	// Append runs LOG.append(d) and returns the position of d.
	Append(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum) int
	// BumpAndLock runs LOG.bumpAndLock(d, k).
	BumpAndLock(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum, k int)
	// Contains reports whether d is in the log.
	Contains(d logobj.Datum) bool
	// Version is a change counter: it increases on every mutation of the
	// (locally visible) log state. Nodes snapshot it to skip guard rescans
	// when nothing they observe has changed.
	Version() int64
	// Messages returns the message IDs present as messages, in log order.
	Messages() []msg.ID
	// MessagesSince returns the messages appended after the first from
	// message appends, in first-append order — the incremental discovery
	// stream (from is the caller's per-log high-water mark).
	MessagesSince(from int) []msg.ID
	// MsgCount returns how many distinct messages the log carries.
	MsgCount() int
	// MessagesBefore returns the messages strictly before d in log order.
	MessagesBefore(d logobj.Datum) []msg.ID
	// HasPosTuple reports whether some (m, h, -) tuple is in the log.
	HasPosTuple(m msg.ID, h groups.GroupID) bool
	// MaxPosTuple returns max{i : (m,-,i) ∈ L} over position tuples of m.
	MaxPosTuple(m msg.ID) (int, bool)
}

// Consensus is CONS_{m,f} (Algorithm 1, line 3): single-shot consensus on
// the final position of a message, hosted by dst(m).
type Consensus interface {
	// Propose submits v and returns the decided value.
	Propose(ctx *engine.Ctx, v int) int
}

// Backend supplies the shared objects of a run, from the point of view of
// one process. The Sim backend hands every process the same ideal object;
// replicated backends hand each process its own replica, so reads may lag
// until the replica catches up — exactly the asynchrony Algorithm 1
// tolerates (its guards re-evaluate until they hold).
type Backend interface {
	// Log returns p's handle on LOG_{g∩h} (LOG_g when g == h).
	Log(p groups.Process, g, h groups.GroupID) LogObject
	// Cons returns p's handle on CONS_{m,fam}.
	Cons(p groups.Process, m msg.ID, fam groups.GroupSet) Consensus
	// Sync lets replicated backends apply freshly learnt operations to p's
	// replicas before a discovery scan. The Sim backend is a no-op.
	Sync(p groups.Process)
}

// ---------------------------------------------------------------------------
// Sim backend: the deterministic in-memory objects of the engine runs.

// simBackend realises the shared objects as ideal in-memory logs charged per
// the §4.3 universal construction (internal/uc) and first-proposal-wins
// consensus objects. It is the substrate of every deterministic run.
type simBackend struct {
	topo *groups.Topology
	reg  *msg.Registry
	logs map[PairKey]*uc.Log
	cons map[consKey]*consensusObject
}

// newSimBackend builds the ideal objects for a topology: one log per group
// and per intersecting pair, hosted as in §4.3.
func newSimBackend(topo *groups.Topology, reg *msg.Registry, opt Options) *simBackend {
	b := &simBackend{
		topo: topo,
		reg:  reg,
		logs: make(map[PairKey]*uc.Log),
		cons: make(map[consKey]*consensusObject),
	}
	k := topo.NumGroups()
	for g := 0; g < k; g++ {
		gid := groups.GroupID(g)
		for h := g; h < k; h++ {
			hid := groups.GroupID(h)
			inter := topo.Intersection(gid, hid)
			if inter.Empty() {
				continue
			}
			name := fmt.Sprintf("LOG_g%d", g)
			if g != h {
				name = fmt.Sprintf("LOG_g%d∩g%d", g, h)
			}
			// The fallback consensus is hosted by the lower-numbered group
			// ("atop some group, say g"); under StronglyGenuine the
			// intersection hosts itself (Ω_{g∩h} ∧ Σ_{g∩h} are available).
			slow := topo.Group(gid)
			if opt.Variant == StronglyGenuine {
				slow = inter
			}
			l := uc.New(name, inter, slow, opt.ChargeObjects)
			l.Observe(opt.Rec, obs.Pair{A: gid, B: hid})
			b.logs[PairKey{gid, hid}] = l
		}
	}
	return b
}

// ucLog returns the underlying universal-construction log of a pair (the
// ablation tests inspect its fast/slow operation counters).
func (b *simBackend) ucLog(g, h groups.GroupID) *uc.Log {
	l, ok := b.logs[CanonPair(g, h)]
	if !ok {
		panic(fmt.Sprintf("core: no log for g%d∩g%d", g, h))
	}
	return l
}

// Log implements Backend. Every process shares the same ideal object.
func (b *simBackend) Log(p groups.Process, g, h groups.GroupID) LogObject {
	return simLog{b.ucLog(g, h)}
}

// Cons implements Backend: CONS_{m,fam}, lazily created, hosted by dst(m)
// (consensus is solvable in each group from Σ_g ∧ Ω_g).
func (b *simBackend) Cons(p groups.Process, m msg.ID, fam groups.GroupSet) Consensus {
	key := consKey{m: m, fam: fam}
	if o, ok := b.cons[key]; ok {
		return o
	}
	o := &consensusObject{hosts: b.topo.Group(b.reg.Get(m).Dst)}
	b.cons[key] = o
	return o
}

// Sync implements Backend: ideal objects are always current.
func (b *simBackend) Sync(groups.Process) {}

// simLog adapts a universal-construction log to the LogObject surface.
type simLog struct{ l *uc.Log }

func (s simLog) Append(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum) int {
	return s.l.Append(ctx, origin, d)
}

func (s simLog) BumpAndLock(ctx *engine.Ctx, origin groups.GroupID, d logobj.Datum, k int) {
	s.l.BumpAndLock(ctx, origin, d, k)
}

func (s simLog) Contains(d logobj.Datum) bool { return s.l.Inner().Contains(d) }
func (s simLog) Version() int64               { return s.l.Inner().Version() }
func (s simLog) Messages() []msg.ID           { return s.l.Inner().Messages() }
func (s simLog) MessagesSince(from int) []msg.ID {
	return s.l.Inner().MessagesSince(from)
}
func (s simLog) MsgCount() int { return s.l.Inner().MsgCount() }
func (s simLog) MessagesBefore(d logobj.Datum) []msg.ID {
	return s.l.Inner().MessagesBefore(d)
}
func (s simLog) HasPosTuple(m msg.ID, h groups.GroupID) bool { return s.l.Inner().HasPosTuple(m, h) }
func (s simLog) MaxPosTuple(m msg.ID) (int, bool)            { return s.l.Inner().MaxPosTuple(m) }

// consensusObject is the Sim CONS_{m,f}: first proposal wins, hosts charged.
type consensusObject struct {
	hosts   groups.ProcSet
	decided bool
	value   int
}

// Propose implements Consensus with host charging.
func (o *consensusObject) Propose(ctx *engine.Ctx, v int) int {
	if !o.decided {
		o.decided = true
		o.value = v
	}
	if ctx != nil && ctx.E != nil {
		ctx.E.ChargeSet(o.hosts, 1)
		ctx.E.CountMessages(int64(2 * o.hosts.Count()))
	}
	return o.value
}
