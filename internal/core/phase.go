// Package core implements the paper's primary contribution: Algorithm 1,
// genuine group-sequential atomic multicast from the failure detector
// μ = (∧ Σ_{g∩h}) ∧ (∧ Ω_g) ∧ γ, together with its variations — strict
// (real-time) ordering from μ ∧ (∧ 1^{g∩h}) (§6.1), strongly genuine
// delivery for acyclic topologies (§6.2), and pairwise ordering (§7).
package core

// Phase is the lifecycle of a message at a process (Algorithm 1, line 4 and
// lines 15/24/33/37). Phases only ever increase (Claim 14/15).
type Phase int

const (
	// PhaseStart is the initial phase of every message.
	PhaseStart Phase = iota + 1
	// PhasePending: the message's positions were recorded in the
	// intersection logs (lines 8-15).
	PhasePending
	// PhaseCommit: the final position was agreed and locked (lines 16-24).
	PhaseCommit
	// PhaseStable: the message's predecessors are final (lines 30-33).
	PhaseStable
	// PhaseDeliver: delivered to the application (lines 34-37, terminal).
	PhaseDeliver
)

// String renders the phase.
func (ph Phase) String() string {
	switch ph {
	case PhaseStart:
		return "start"
	case PhasePending:
		return "pending"
	case PhaseCommit:
		return "commit"
	case PhaseStable:
		return "stable"
	case PhaseDeliver:
		return "deliver"
	}
	return "?"
}

// Variant selects which problem flavour the node solves.
type Variant int

const (
	// Vanilla is Algorithm 1: uniform global total order multicast from μ.
	Vanilla Variant = iota + 1
	// Strict additionally enforces real-time order using 1^{g∩h} (§6.1).
	Strict
	// Pairwise solves the pairwise-ordering variation (§7): cycles across
	// three or more groups are not prevented, so no cyclic coordination or
	// γ is used.
	Pairwise
	// StronglyGenuine targets topologies with F = ∅ (§6.2): behaviourally
	// Algorithm 1, with the intersection logs hosted inside g∩h using
	// Ω_{g∩h} ∧ Σ_{g∩h} so that groups progress in isolation.
	StronglyGenuine
	// Generic solves generic atomic multicast (Bolina et al. 2024): total
	// order is enforced only within conflicting pairs of Options.Conflict.
	// Conflicting messages run Algorithm 1 unchanged with the predecessor
	// guards filtered to conflicting messages; a message that commutes with
	// every message skips the g∩h coordination entirely and delivers right
	// after its LOG_g append. With a nil relation every pair conflicts and
	// the variant is behaviourally Vanilla.
	Generic
)

// String renders the variant.
func (v Variant) String() string {
	switch v {
	case Vanilla:
		return "vanilla"
	case Strict:
		return "strict"
	case Pairwise:
		return "pairwise"
	case StronglyGenuine:
		return "strongly-genuine"
	case Generic:
		return "generic"
	}
	return "?"
}
