package core

import (
	"repro/internal/check"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/msg"
)

// Trace exports the run evidence for the checkers.
func (s *System) Trace() *check.Trace {
	local := make(map[groups.Process][]msg.ID, len(s.Nodes))
	for _, n := range s.Nodes {
		local[n.Proc()] = n.Delivered()
	}
	multicast := make(map[msg.ID]failure.Time, s.Sh.Reg.Len())
	for _, m := range s.Sh.Reg.All() {
		multicast[m.ID] = s.Sh.RequestedAt(m.ID)
	}
	first := make(map[msg.ID]failure.Time)
	for _, m := range s.Sh.Reg.All() {
		if t, ok := s.Sh.FirstDeliveredAt(m.ID); ok {
			first[m.ID] = t
		}
	}
	tr := &check.Trace{
		Topo:           s.Sh.Topo,
		Pat:            s.Pat,
		Reg:            s.Sh.Reg,
		LocalOrder:     local,
		Multicast:      multicast,
		FirstDelivered: first,
		TookSteps:      s.Eng.TookSteps,
	}
	if s.Sh.Opt.Variant == Generic {
		tr.Conflicts = s.Sh.Conflicts
	}
	return tr
}

// Check runs every checker appropriate for the system's variant and returns
// the violations (empty means the run satisfied the specification).
func (s *System) Check() []*check.Violation {
	tr := s.Trace()
	strict := s.Sh.Opt.Variant == Strict
	pairwise := s.Sh.Opt.Variant == Pairwise
	generic := s.Sh.Opt.Variant == Generic
	return check.All(tr, strict, pairwise, generic)
}
