package core

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// scenario is a randomly generated run: topology, crash schedule, workload.
type scenario struct {
	topo *groups.Topology
	pat  *failure.Pattern
	work []workItem
	seed int64
}

type workItem struct {
	at  failure.Time
	src groups.Process
	dst groups.GroupID
}

// genScenario builds a random scenario. To keep the run live it only
// crashes processes that are not the sole member of a group intersection
// serving an alive family... more simply, it bounds crashes and relies on
// γ to cut faulty families.
func genScenario(rng *rand.Rand) scenario {
	n := 4 + rng.Intn(4) // 4..7 processes
	k := 2 + rng.Intn(3) // 2..4 groups
	gs := make([]groups.ProcSet, k)
	for i := range gs {
		var g groups.ProcSet
		size := 2 + rng.Intn(2)
		for g.Count() < size {
			g = g.Add(groups.Process(rng.Intn(n)))
		}
		gs[i] = g
	}
	topo := groups.MustNew(n, gs...)
	pat := failure.NewPattern(n)
	// Crash up to n/3 processes, each keeping at least one alive member per
	// group (so termination obligations remain checkable).
	crashes := rng.Intn(n/3 + 1)
	for c := 0; c < crashes; c++ {
		p := groups.Process(rng.Intn(n))
		ok := true
		trial := pat.WithCrash(p, failure.Time(20+rng.Intn(80)))
		for i := 0; i < k; i++ {
			if trial.Correct().Intersect(gs[i]).Empty() {
				ok = false
				break
			}
		}
		if ok {
			pat = trial
		}
	}
	var work []workItem
	nwork := 3 + rng.Intn(6)
	for w := 0; w < nwork; w++ {
		dst := groups.GroupID(rng.Intn(k))
		members := gs[dst].Members()
		src := members[rng.Intn(len(members))]
		work = append(work, workItem{
			at:  failure.Time(rng.Intn(150)),
			src: src,
			dst: dst,
		})
	}
	return scenario{topo: topo, pat: pat, work: work, seed: rng.Int63()}
}

func runScenario(t *testing.T, sc scenario, opt Options) *System {
	t.Helper()
	s := NewSystem(sc.topo, sc.pat, opt, sc.seed)
	for _, w := range sc.work {
		s.MulticastAt(w.at, w.src, w.dst, nil)
	}
	if !s.Run() {
		t.Fatalf("liveness failure: %v pat=%v", sc.topo, sc.pat)
	}
	return s
}

// TestRandomScenariosVanilla soaks Algorithm 1 over random topologies,
// schedules and crash sets, checking the full specification on every run.
func TestRandomScenariosVanilla(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		s := runScenario(t, sc, Options{FD: fd.Options{Delay: 8}})
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v)", trial, v, sc.topo, sc.pat)
		}
	}
}

// TestRandomScenariosChargedObjects re-runs the soak with the §4.3 cost
// model enabled: accounting must not change behaviour.
func TestRandomScenariosChargedObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		s := runScenario(t, sc, Options{ChargeObjects: true, FD: fd.Options{Delay: 8}})
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v)", trial, v, sc.topo, sc.pat)
		}
	}
}

// TestRandomScenariosPairwise soaks the §7 pairwise-ordering variant.
func TestRandomScenariosPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		s := runScenario(t, sc, Options{Variant: Pairwise, FD: fd.Options{Delay: 8}})
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v)", trial, v, sc.topo, sc.pat)
		}
	}
}

// TestRandomScenariosStrict soaks the §6.1 strict variant, which must
// additionally satisfy real-time order.
func TestRandomScenariosStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		sc := genScenario(rng)
		s := runScenario(t, sc, Options{Variant: Strict, FD: fd.Options{Delay: 8}})
		for _, v := range s.Check() {
			t.Fatalf("trial %d: %v (topo=%v pat=%v)", trial, v, sc.topo, sc.pat)
		}
	}
}

// TestDeterministicReplay: the same scenario and seed produce the same
// delivery trace.
func TestDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	sc := genScenario(rng)
	run := func() []Delivery {
		s := runScenario(t, sc, Options{})
		return s.Sh.Deliveries()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("traces diverge in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
