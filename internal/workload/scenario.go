package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Arrival-process kinds.
const (
	// ArrivalsPoisson draws exponential inter-arrival gaps — the memoryless
	// open-loop model of a large independent client population.
	ArrivalsPoisson = "poisson"
	// ArrivalsFixed spaces arrivals exactly 1/rate apart — the worst-case
	// metronome for convoy scenarios and the easiest stream to reason about.
	ArrivalsFixed = "fixed"
)

// Scenario is a named, serializable workload: everything the generator
// needs to reproduce a stream from a seed. Campaigns are replayable by
// (scenario, seed) — the struct round-trips through JSON so scenario files
// can be versioned next to the benchmarks they produced.
type Scenario struct {
	// Name keys the scenario in campaign output and benchgate baselines.
	Name string `json:"name"`
	// Topo describes the generated topology the load runs against.
	Topo TopoSpec `json:"topo"`
	// Arrivals selects the arrival process: ArrivalsPoisson or ArrivalsFixed.
	Arrivals string `json:"arrivals"`
	// Rate is the offered load in multicasts/sec at the start of the run.
	Rate float64 `json:"rate"`
	// RampTo, when positive, ramps the offered rate linearly from Rate to
	// this value across the run's Count arrivals (the overload-discovery
	// scenario shape).
	RampTo float64 `json:"ramp_to,omitempty"`
	// Count is the total number of arrivals in the stream.
	Count int `json:"count"`
	// ZipfS is the Zipf exponent of destination-group popularity: 0 is
	// uniform, ~1 the classic web skew, higher sharper.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// HotGroup names the group that rank 0 of the Zipf distribution (and
	// the HotShare mass) lands on.
	HotGroup int `json:"hot_group,omitempty"`
	// HotShare, when positive, pins that fraction of all arrivals directly
	// onto HotGroup before the Zipf draw — the hot-group knob.
	HotShare float64 `json:"hot_share,omitempty"`
	// ConflictRate is the fraction of the stream tagged into keyed conflict
	// classes. 1 means every message conflicts with every other (the
	// vanilla total-order run); below 1 the remainder is ClassFree and the
	// driver must run the Generic variant.
	ConflictRate float64 `json:"conflict_rate"`
	// ConflictKeys is the number of keyed classes the conflicting fraction
	// spreads over (default 3).
	ConflictKeys int `json:"conflict_keys,omitempty"`
	// Soak marks a long-haul scenario: campaign runners arm the replog
	// applied-op journal for it and diff journals against paxos decision
	// snapshots on exit (the ROADMAP item-3 flake hunt, run on every
	// campaign).
	Soak bool `json:"soak,omitempty"`
}

// Validate checks the scenario for internal consistency. It does not build
// the topology; TopoSpec.Build reports those errors.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("workload: scenario has no name")
	}
	switch sc.Arrivals {
	case ArrivalsPoisson, ArrivalsFixed:
	default:
		return fmt.Errorf("workload: scenario %q: unknown arrival process %q (want %s or %s)",
			sc.Name, sc.Arrivals, ArrivalsPoisson, ArrivalsFixed)
	}
	if sc.Rate <= 0 {
		return fmt.Errorf("workload: scenario %q: rate %v must be positive", sc.Name, sc.Rate)
	}
	if sc.RampTo < 0 {
		return fmt.Errorf("workload: scenario %q: ramp_to %v must be >= 0", sc.Name, sc.RampTo)
	}
	if sc.Count <= 0 {
		return fmt.Errorf("workload: scenario %q: count %d must be positive", sc.Name, sc.Count)
	}
	if sc.ZipfS < 0 {
		return fmt.Errorf("workload: scenario %q: zipf_s %v must be >= 0", sc.Name, sc.ZipfS)
	}
	if sc.HotGroup < 0 || sc.HotGroup >= sc.Topo.Groups {
		return fmt.Errorf("workload: scenario %q: hot_group %d outside [0,%d)", sc.Name, sc.HotGroup, sc.Topo.Groups)
	}
	if sc.HotShare < 0 || sc.HotShare > 1 {
		return fmt.Errorf("workload: scenario %q: hot_share %v outside [0,1]", sc.Name, sc.HotShare)
	}
	if sc.ConflictRate < 0 || sc.ConflictRate > 1 {
		return fmt.Errorf("workload: scenario %q: conflict_rate %v outside [0,1]", sc.Name, sc.ConflictRate)
	}
	if sc.ConflictKeys < 0 {
		return fmt.Errorf("workload: scenario %q: conflict_keys %d must be >= 0", sc.Name, sc.ConflictKeys)
	}
	return nil
}

// rateAt is the offered rate at arrival index i: constant, or linearly
// interpolated towards RampTo across the stream.
func (sc Scenario) rateAt(i int) float64 {
	if sc.RampTo <= 0 || sc.Count <= 1 {
		return sc.Rate
	}
	frac := float64(i) / float64(sc.Count-1)
	return sc.Rate + (sc.RampTo-sc.Rate)*frac
}

// conflictKeys is the keyed-class space size with its default applied.
func (sc Scenario) conflictKeys() int {
	if sc.ConflictKeys > 0 {
		return sc.ConflictKeys
	}
	return 3
}

// Scale returns a copy of the scenario with Count multiplied by f (min 1
// arrival) — campaign runners use it to shrink or stretch a catalog without
// editing scenarios. Scaling changes the stream, so the digest of a scaled
// scenario differs from the original's.
func (sc Scenario) Scale(f float64) Scenario {
	if f <= 0 || f == 1 {
		return sc
	}
	n := int(float64(sc.Count) * f)
	if n < 1 {
		n = 1
	}
	sc.Count = n
	return sc
}

// Catalog returns the built-in scenario set — the regimes ROADMAP item 1
// names. Each entry is sized so the whole catalog runs unattended in a CI
// job; Scale stretches it for long soaks.
//
//	steady    — Poisson arrivals, uniform groups, all-conflict: the boring
//	            baseline every other row is read against.
//	hot-group — Zipf 1.1 + 50% of the load pinned on one group: the skew
//	            regime where per-group serialisation becomes the bottleneck.
//	convoy    — fixed-rate metronome on a ring of size-2 groups (one cyclic
//	            family spans every group): stabilisation chains recurse
//	            around the ring and pile into the tail (§6.2).
//	ramp      — offered load ramps 8x across the run: the knee where goodput
//	            stops tracking offered load is the capacity estimate.
//	wide      — 20 groups over 32 processes, a cyclic ring core bridged to
//	            an acyclic chain: the generated-topology regime (dozens of
//	            groups, mixed g∩h overlap) no hand-written spec covered.
//	soak      — long steady run with a 30% keyed-conflict mix under the
//	            Generic variant; campaign runners arm the replog journal and
//	            diff it against decision snapshots on exit.
func Catalog() []Scenario {
	return []Scenario{
		{
			Name:     "steady",
			Topo:     TopoSpec{Kind: TopoChain, Groups: 4},
			Arrivals: ArrivalsPoisson,
			Rate:     800, Count: 600,
			ConflictRate: 1,
		},
		{
			Name:     "hot-group",
			Topo:     TopoSpec{Kind: TopoChain, Groups: 4},
			Arrivals: ArrivalsPoisson,
			Rate:     800, Count: 600,
			ZipfS: 1.1, HotGroup: 1, HotShare: 0.5,
			ConflictRate: 1,
		},
		{
			Name:     "convoy",
			Topo:     TopoSpec{Kind: TopoRing, Groups: 8},
			Arrivals: ArrivalsFixed,
			Rate:     600, Count: 400,
			ConflictRate: 1,
		},
		{
			Name:     "ramp",
			Topo:     TopoSpec{Kind: TopoChain, Groups: 4},
			Arrivals: ArrivalsPoisson,
			Rate:     200, RampTo: 1600, Count: 600,
			ConflictRate: 1,
		},
		{
			Name:     "wide",
			Topo:     TopoSpec{Kind: TopoWide, Groups: 20},
			Arrivals: ArrivalsPoisson,
			Rate:     400, Count: 240,
			ZipfS:        0.8,
			ConflictRate: 1,
		},
		{
			Name:     "soak",
			Topo:     TopoSpec{Kind: TopoChain, Groups: 4},
			Arrivals: ArrivalsPoisson,
			Rate:     500, Count: 1500,
			ConflictRate: 0.3,
			Soak:         true,
		},
	}
}

// Select resolves a comma-separated scenario-name list ("all" or "" means
// the whole set) against the given catalog, preserving list order.
func Select(catalog []Scenario, names string) ([]Scenario, error) {
	names = strings.TrimSpace(names)
	if names == "" || names == "all" {
		return catalog, nil
	}
	byName := make(map[string]Scenario, len(catalog))
	for _, sc := range catalog {
		byName[sc.Name] = sc
	}
	var out []Scenario
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		sc, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(catalog))
			for _, c := range catalog {
				known = append(known, c.Name)
			}
			return nil, fmt.Errorf("workload: unknown scenario %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, sc)
	}
	return out, nil
}

// Read parses a JSON scenario list (the serialized form of []Scenario) and
// validates every entry.
func Read(r io.Reader) ([]Scenario, error) {
	var scs []Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&scs); err != nil {
		return nil, fmt.Errorf("workload: parsing scenario file: %w", err)
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	return scs, nil
}

// ReadFile loads a scenario file from disk.
func ReadFile(path string) ([]Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
