// Package workload models large client populations as deterministic,
// seeded streams — the load half of the "millions of users" north star.
//
// Every benchmark before this package hand-picked an (n, groups, seed)
// triple and fired messages in closed loop: the next send waited for the
// previous one, so a stalled system silently throttled its own load and the
// measured latency hid exactly the tail the stall created (coordinated
// omission). A workload here is the opposite shape:
//
//   - arrivals are OPEN-LOOP: a scenario fixes the intended send time of
//     every message up front (Poisson or fixed-rate, optionally ramping),
//     and latency is measured from that intended time — a system that falls
//     behind accrues the backlog in its own tail instead of slowing the
//     clock that measures it;
//   - destination choice is SKEWED: Zipf-distributed group popularity with
//     an optional hot-group knob, the regime where genuineness (pay only
//     for g∩h) and the commuting fast path actually matter;
//   - the CONFLICT MIX is explicit: a configurable fraction of the load
//     lands in keyed conflict classes, the rest commutes with everything;
//   - topologies are GENERATED: chain, ring, disjoint and wide families
//     (dozens of groups, cyclic and acyclic g∩h overlap) rather than
//     hand-written specs.
//
// Everything is derived from (Scenario, seed) through a self-contained
// splitmix64 PRNG, so identical inputs reproduce bit-identical streams on
// any platform — campaigns are replayable by name and seed, and the stream
// digest (Digest) certifies it.
package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/groups"
	"repro/internal/msg"
)

// Arrival is one generated client request: a multicast with an intended
// send time. At is the offset from the start of the run at which an
// open-loop driver must account the message as sent — latency samples
// measured from At are immune to coordinated omission even when the driver
// itself falls behind schedule.
type Arrival struct {
	// At is the intended send time, as an offset from run start.
	At time.Duration
	// Src is the sending process, a member of Dst (closed dissemination).
	Src groups.Process
	// Dst is the destination group.
	Dst groups.GroupID
	// Class is the conflict-class tag: msg.ClassAll under an all-conflict
	// scenario, msg.ClassFree or a keyed class under a generic mix.
	Class msg.Class
}

// Gen is a deterministic arrival-stream generator: the same (Scenario,
// seed) pair yields the same stream, arrival by arrival. A Gen is not safe
// for concurrent use; build one per consumer.
type Gen struct {
	sc   Scenario
	topo *groups.Topology
	rng  rng
	zipf zipfSampler

	i int     // arrivals emitted
	t float64 // current intended time, seconds
}

// NewGen validates the scenario, builds its topology and returns the
// generator positioned before the first arrival.
func NewGen(sc Scenario, seed int64) (*Gen, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	topo, err := sc.Topo.Build()
	if err != nil {
		return nil, err
	}
	g := &Gen{sc: sc, topo: topo, rng: newRNG(uint64(seed))}
	g.zipf = newZipfSampler(topo.NumGroups(), sc.ZipfS)
	return g, nil
}

// Topology returns the scenario's generated topology (shared; do not
// mutate — Topology is immutable by construction).
func (g *Gen) Topology() *groups.Topology { return g.topo }

// Generic reports whether the stream carries a commuting mix (some
// messages tagged ClassFree or keyed), which a driver must run under the
// Generic protocol variant.
func (g *Gen) Generic() bool { return g.sc.ConflictRate < 1 }

// Next returns the next arrival of the stream, or ok=false when the
// scenario's Count is exhausted.
func (g *Gen) Next() (Arrival, bool) {
	if g.i >= g.sc.Count {
		return Arrival{}, false
	}
	// Open-loop clock: the inter-arrival gap depends only on the arrival
	// process and the current offered rate, never on the consumer.
	rate := g.sc.rateAt(g.i)
	var gap float64
	switch g.sc.Arrivals {
	case ArrivalsPoisson:
		// Exponential inter-arrival via inverse CDF. 1-u is in (0,1], so the
		// log argument never hits zero.
		gap = -math.Log(1-g.rng.float64()) / rate
	default: // ArrivalsFixed (validated)
		gap = 1 / rate
	}
	g.t += gap

	// Destination: hot-group share first, then Zipf rank mapped onto the
	// group space rotated so rank 0 is the hot group (with ZipfS == 0 the
	// rank distribution is uniform and the rotation is harmless).
	k := g.topo.NumGroups()
	var dst groups.GroupID
	if g.sc.HotShare > 0 && g.rng.float64() < g.sc.HotShare {
		dst = groups.GroupID(g.sc.HotGroup)
	} else {
		rank := g.zipf.sample(&g.rng)
		dst = groups.GroupID((g.sc.HotGroup + rank) % k)
	}

	// Sender: uniform over the destination group's members.
	members := g.topo.Group(dst).Members()
	src := members[g.rng.intn(len(members))]

	// Conflict class: all-conflict scenarios tag everything ClassAll; a
	// generic mix splits the stream into keyed classes and ClassFree.
	class := msg.ClassAll
	if g.sc.ConflictRate < 1 {
		if g.rng.float64() < g.sc.ConflictRate {
			class = msg.Class(1 + uint64(g.rng.intn(g.sc.conflictKeys())))
		} else {
			class = msg.ClassFree
		}
	}

	g.i++
	return Arrival{
		At:    time.Duration(g.t * float64(time.Second)),
		Src:   src,
		Dst:   dst,
		Class: class,
	}, true
}

// Digest walks the full stream of (sc, seed) and returns an FNV-1a hash of
// every arrival's fields — the replayability certificate. Two runs whose
// digests match consumed bit-identical workloads; a digest that moves
// without the scenario or seed changing means the generator changed.
func Digest(sc Scenario, seed int64) (string, error) {
	g, err := NewGen(sc, seed)
	if err != nil {
		return "", err
	}
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		mix(uint64(a.At))
		mix(uint64(a.Src))
		mix(uint64(a.Dst))
		mix(uint64(a.Class))
	}
	return fmt.Sprintf("%016x", h), nil
}

// ---------------------------------------------------------------------------
// Deterministic randomness: a self-contained splitmix64. The stdlib PRNG
// would work today, but pinning the algorithm here makes bit-identical
// replay a property of this package rather than of a stdlib compatibility
// promise — the digest column in BENCH_scenarios.json depends on it.

type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	// A zero seed would still work, but mixing the constant in once keeps
	// seed 0 and seed 1 streams unrelated from the first draw.
	return rng{s: seed*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// zipfSampler draws ranks 0..k-1 with p(j) ∝ 1/(j+1)^s via inverse-CDF
// binary search on the precomputed cumulative weights. s == 0 degenerates
// to the uniform distribution.
type zipfSampler struct{ cdf []float64 }

func newZipfSampler(k int, s float64) zipfSampler {
	cdf := make([]float64, k)
	sum := 0.0
	for j := 0; j < k; j++ {
		sum += 1 / math.Pow(float64(j+1), s)
		cdf[j] = sum
	}
	for j := range cdf {
		cdf[j] /= sum
	}
	return zipfSampler{cdf: cdf}
}

// prob returns the analytic probability of rank j (tests compare empirical
// frequencies against it).
func (z zipfSampler) prob(j int) float64 {
	if j == 0 {
		return z.cdf[0]
	}
	return z.cdf[j] - z.cdf[j-1]
}

func (z zipfSampler) sample(r *rng) int {
	u := r.float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
