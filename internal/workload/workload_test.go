package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/groups"
	"repro/internal/msg"
)

// drain walks the whole stream of (sc, seed).
func drain(t *testing.T, sc Scenario, seed int64) []Arrival {
	t.Helper()
	g, err := NewGen(sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	var out []Arrival
	for {
		a, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// TestGenDeterminism pins the replayability contract: the same (scenario,
// seed) yields a bit-identical arrival stream, a different seed a different
// one, and the digest certifies both.
func TestGenDeterminism(t *testing.T) {
	for _, sc := range Catalog() {
		if sc.Topo.Kind == TopoWide && testing.Short() {
			continue // 20-group family enumeration is a full-tier cost
		}
		sc := sc.Scale(0.2) // the stream property is count-independent
		a := drain(t, sc, 7)
		b := drain(t, sc, 7)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same (scenario, seed) produced different streams", sc.Name)
		}
		c := drain(t, sc, 8)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: seeds 7 and 8 produced identical streams", sc.Name)
		}
		d1, err := Digest(sc, 7)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Digest(sc, 7)
		if err != nil {
			t.Fatal(err)
		}
		d3, err := Digest(sc, 8)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("%s: digest not stable across reruns: %s vs %s", sc.Name, d1, d2)
		}
		if d1 == d3 {
			t.Fatalf("%s: digest blind to the seed: %s", sc.Name, d1)
		}
	}
}

// TestArrivalsAreValid checks every stream entry against the closed
// dissemination model: monotone intended times, destination in range, and
// the sender a member of its destination group.
func TestArrivalsAreValid(t *testing.T) {
	for _, sc := range Catalog() {
		if sc.Topo.Kind == TopoWide && testing.Short() {
			continue
		}
		g, err := NewGen(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		topo := g.Topology()
		var prev time.Duration
		n := 0
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			n++
			if a.At <= prev {
				t.Fatalf("%s: intended times not strictly increasing: %v after %v", sc.Name, a.At, prev)
			}
			prev = a.At
			if int(a.Dst) < 0 || int(a.Dst) >= topo.NumGroups() {
				t.Fatalf("%s: destination g%d outside [0,%d)", sc.Name, a.Dst, topo.NumGroups())
			}
			if !topo.Group(a.Dst).Has(a.Src) {
				t.Fatalf("%s: sender p%d not a member of destination g%d", sc.Name, a.Src, a.Dst)
			}
		}
		if n != sc.Count {
			t.Fatalf("%s: stream carried %d arrivals, scenario says %d", sc.Name, n, sc.Count)
		}
	}
}

// TestPoissonMeanRate checks the open-loop clock: the mean inter-arrival
// gap of a Poisson stream matches 1/rate, and a fixed stream is exact.
func TestPoissonMeanRate(t *testing.T) {
	base := Scenario{
		Name: "t", Topo: TopoSpec{Kind: TopoChain, Groups: 3},
		Rate: 1000, Count: 20000, ConflictRate: 1,
	}
	pois := base
	pois.Arrivals = ArrivalsPoisson
	as := drain(t, pois, 5)
	span := as[len(as)-1].At.Seconds()
	mean := span / float64(len(as))
	if math.Abs(mean-1e-3) > 5e-5 { // 5% tolerance on 20k draws
		t.Fatalf("poisson mean inter-arrival %v, want ~1ms", mean)
	}
	fixed := base
	fixed.Arrivals = ArrivalsFixed
	fs := drain(t, fixed, 5)
	for i, a := range fs {
		want := time.Duration(float64(i+1) * float64(time.Millisecond))
		if d := a.At - want; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("fixed arrival %d at %v, want %v", i, a.At, want)
		}
	}
}

// TestRampAccelerates checks the ramp shape: with RampTo = 16x Rate the
// last tenth of a fixed-rate stream is packed much tighter than the first.
func TestRampAccelerates(t *testing.T) {
	sc := Scenario{
		Name: "t", Topo: TopoSpec{Kind: TopoChain, Groups: 3},
		Arrivals: ArrivalsFixed, Rate: 100, RampTo: 1600, Count: 1000,
		ConflictRate: 1,
	}
	as := drain(t, sc, 1)
	tenth := len(as) / 10
	head := as[tenth].At - as[0].At
	tail := as[len(as)-1].At - as[len(as)-1-tenth].At
	if tail*4 > head {
		t.Fatalf("ramp did not accelerate: first tenth %v, last tenth %v", head, tail)
	}
}

// TestZipfMatchesAnalytic compares empirical destination frequencies under
// pure Zipf skew against the analytic distribution p(j) ∝ 1/(j+1)^s.
func TestZipfMatchesAnalytic(t *testing.T) {
	const k, s, n = 8, 1.1, 200000
	sc := Scenario{
		Name: "t", Topo: TopoSpec{Kind: TopoRing, Groups: k},
		Arrivals: ArrivalsPoisson, Rate: 1000, Count: n,
		ZipfS: s, ConflictRate: 1,
	}
	counts := make([]int, k)
	for _, a := range drain(t, sc, 11) {
		counts[a.Dst]++
	}
	z := newZipfSampler(k, s)
	for j := 0; j < k; j++ {
		want := z.prob(j) // HotGroup 0: rank j is group j
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 0.1*want+0.002 {
			t.Fatalf("group %d frequency %.4f, analytic %.4f", j, got, want)
		}
	}
	if !(counts[0] > counts[3] && counts[3] > counts[7]) {
		t.Fatalf("zipf skew not monotone: %v", counts)
	}
}

// TestHotShare checks the hot-group knob: the pinned share lands on the hot
// group on top of its skew mass.
func TestHotShare(t *testing.T) {
	const k, n = 4, 100000
	sc := Scenario{
		Name: "t", Topo: TopoSpec{Kind: TopoChain, Groups: k},
		Arrivals: ArrivalsPoisson, Rate: 1000, Count: n,
		HotGroup: 2, HotShare: 0.5, ConflictRate: 1,
	}
	counts := make([]int, k)
	for _, a := range drain(t, sc, 13) {
		counts[a.Dst]++
	}
	// 50% pinned + 1/4 of the uniform remainder = 62.5%.
	got := float64(counts[2]) / n
	if math.Abs(got-0.625) > 0.02 {
		t.Fatalf("hot group took %.4f of the load, want ~0.625 (counts %v)", got, counts)
	}
}

// TestConflictMix checks the class tagging: an all-conflict stream is
// ClassAll throughout; a mixed stream splits between keyed classes and
// ClassFree at the configured rate.
func TestConflictMix(t *testing.T) {
	base := Scenario{
		Name: "t", Topo: TopoSpec{Kind: TopoChain, Groups: 3},
		Arrivals: ArrivalsPoisson, Rate: 1000, Count: 50000,
	}
	all := base
	all.ConflictRate = 1
	for _, a := range drain(t, all, 2) {
		if a.Class != msg.ClassAll {
			t.Fatalf("all-conflict stream carried class %d", a.Class)
		}
	}
	mix := base
	mix.ConflictRate = 0.3
	mix.ConflictKeys = 4
	keyed, free := 0, 0
	seenKeys := map[msg.Class]bool{}
	for _, a := range drain(t, mix, 2) {
		switch {
		case a.Class == msg.ClassFree:
			free++
		case a.Class >= 1 && a.Class <= 4:
			keyed++
			seenKeys[a.Class] = true
		default:
			t.Fatalf("mixed stream carried class %d outside the keyed space", a.Class)
		}
	}
	frac := float64(keyed) / float64(keyed+free)
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("keyed fraction %.4f, want ~0.3", frac)
	}
	if len(seenKeys) != 4 {
		t.Fatalf("keyed classes used: %v, want all 4", seenKeys)
	}
}

// TestTopoSpecsBuildValidFamilies sweeps the generator kinds and checks the
// emitted families: right group count, valid membership (groups.New
// enforces bounds), and the overlap structure each kind promises.
func TestTopoSpecsBuildValidFamilies(t *testing.T) {
	kinds := []struct {
		spec       TopoSpec
		procs      int
		wantCyclic bool
	}{
		{TopoSpec{Kind: TopoChain, Groups: 4}, 9, false},
		{TopoSpec{Kind: TopoChain, Groups: 10}, 21, false},
		{TopoSpec{Kind: TopoRing, Groups: 3}, 3, true},
		{TopoSpec{Kind: TopoRing, Groups: 8}, 8, true},
		{TopoSpec{Kind: TopoDisjoint, Groups: 6}, 18, false},
		{TopoSpec{Kind: TopoWide, Groups: 8}, 12, true},
		{TopoSpec{Kind: TopoWide, Groups: 12}, 18, true},
	}
	for _, k := range kinds {
		topo, err := k.spec.Build()
		if err != nil {
			t.Fatalf("%s/%d: %v", k.spec.Kind, k.spec.Groups, err)
		}
		if got := topo.NumGroups(); got != k.spec.Groups {
			t.Fatalf("%s: built %d groups, want %d", k.spec.Kind, got, k.spec.Groups)
		}
		if got := topo.NumProcesses(); got != k.procs {
			t.Fatalf("%s/%d: built %d processes, want %d", k.spec.Kind, k.spec.Groups, got, k.procs)
		}
		if got := topo.HasCyclicFamilies(); got != k.wantCyclic {
			t.Fatalf("%s/%d: cyclic families = %v, want %v", k.spec.Kind, k.spec.Groups, got, k.wantCyclic)
		}
		// Derived process count must match what Build produced, and a spec
		// that pins the right count must also build.
		if n, err := k.spec.DerivedProcesses(); err != nil || n != k.procs {
			t.Fatalf("%s/%d: DerivedProcesses = %d, %v", k.spec.Kind, k.spec.Groups, n, err)
		}
		pinned := k.spec
		pinned.Processes = k.procs
		if _, err := pinned.Build(); err != nil {
			t.Fatalf("%s: pinned process count rejected: %v", k.spec.Kind, err)
		}
	}

	// Invalid specs must be refused, not improvised.
	bad := []TopoSpec{
		{Kind: "torus", Groups: 4},
		{Kind: TopoRing, Groups: 2},
		{Kind: TopoWide, Groups: 4},
		{Kind: TopoChain, Groups: 0},
		{Kind: TopoChain, Groups: 4, Processes: 8}, // chain/4 needs 9
	}
	for _, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Fatalf("spec %+v built a topology, want error", spec)
		}
	}
}

// TestWideTopologyMixesOverlap checks the wide kind's shape claim: a cyclic
// core, acyclic overlapping chain, a bridge between the regions, and at
// least one fully disjoint group pair.
func TestWideTopologyMixesOverlap(t *testing.T) {
	k := 12
	if !testing.Short() {
		k = 20 // the catalog size; family enumeration ~0.7s
	}
	topo, err := TopoSpec{Kind: TopoWide, Groups: k}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !topo.HasCyclicFamilies() {
		t.Fatal("wide topology has no cyclic family")
	}
	c := wideRingCore(k)
	// Bridge: the first chain group intersects some ring group.
	bridged := false
	for _, h := range topo.IntersectingGroups(groups.GroupID(c)) {
		if int(h) < c {
			bridged = true
		}
	}
	if !bridged {
		t.Fatal("first chain group is disconnected from the ring core")
	}
	// Disjointness exists too: the first ring group and the last chain group
	// share nothing.
	if topo.Intersecting(groups.GroupID(0), groups.GroupID(k-1)) {
		t.Fatal("wide topology has no disjoint pair")
	}
}

// TestScenarioJSONRoundTrip pins serializability: the catalog survives a
// marshal/unmarshal cycle unchanged, and Read validates what it parses.
func TestScenarioJSONRoundTrip(t *testing.T) {
	cat := Catalog()
	blob, err := json.Marshal(cat)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cat, back) {
		t.Fatalf("catalog did not round-trip:\n got %+v\nwant %+v", back, cat)
	}
	if _, err := Read(bytes.NewReader([]byte(`[{"name":"x","arrivals":"poisson"}]`))); err == nil {
		t.Fatal("invalid scenario (rate 0) passed Read")
	}
	if _, err := Read(bytes.NewReader([]byte(`[{"nmae":"typo"}]`))); err == nil {
		t.Fatal("unknown field passed Read")
	}
}

// TestSelect resolves name lists against the catalog.
func TestSelect(t *testing.T) {
	cat := Catalog()
	all, err := Select(cat, "all")
	if err != nil || len(all) != len(cat) {
		t.Fatalf("Select(all) = %d scenarios, %v", len(all), err)
	}
	two, err := Select(cat, "hot-group, steady")
	if err != nil || len(two) != 2 || two[0].Name != "hot-group" || two[1].Name != "steady" {
		t.Fatalf("Select(hot-group, steady) = %+v, %v", two, err)
	}
	if _, err := Select(cat, "nope"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

// TestScale pins the count-scaling helper.
func TestScale(t *testing.T) {
	sc := Catalog()[0]
	if got := sc.Scale(0.5).Count; got != sc.Count/2 {
		t.Fatalf("Scale(0.5): count %d, want %d", got, sc.Count/2)
	}
	if got := sc.Scale(0).Count; got != sc.Count {
		t.Fatalf("Scale(0) must be a no-op, got count %d", got)
	}
	tiny := sc
	tiny.Count = 1
	if got := tiny.Scale(0.1).Count; got != 1 {
		t.Fatalf("Scale floor: count %d, want 1", got)
	}
}
