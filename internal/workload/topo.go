package workload

import (
	"fmt"

	"repro/internal/groups"
)

// Topology kinds the generator can build. All are deterministic functions
// of (Kind, Groups) — no randomness, so a TopoSpec names exactly one
// topology and scenario replay cannot drift on the group structure.
const (
	// TopoChain is the bench staple: k overlapping 3-member groups
	// {0,1,2},{2,3,4},... — every adjacent pair shares one process, no
	// cyclic families. 2k+1 processes.
	TopoChain = "chain"
	// TopoRing is k size-2 groups g_i = {p_i, p_{i+1 mod k}} over k
	// processes: one cyclic family spans every group — the stabilisation
	// worst case (§6.2 convoys live here).
	TopoRing = "ring"
	// TopoDisjoint is k disjoint 3-member groups over 3k processes: no
	// overlap at all, the pure-parallelism regime genuineness pays nothing
	// for.
	TopoDisjoint = "disjoint"
	// TopoWide is the generated mixed family: a cyclic ring core of k/2
	// size-2 groups bridged into an acyclic chain of 3-member groups
	// covering the rest — dozens of groups with both cyclic and acyclic
	// g∩h overlap in one topology. k/2 + 2*ceil(k/2) processes.
	TopoWide = "wide"
)

// TopoSpec names a generated topology. Processes is optional: 0 derives
// the canonical process count for the kind; a non-zero value must match it
// (a mismatched spec is a misread scenario, not a request to improvise).
type TopoSpec struct {
	Kind      string `json:"kind"`
	Groups    int    `json:"groups"`
	Processes int    `json:"processes,omitempty"`
}

// ringCore is the number of ring groups in a wide topology of k groups.
func wideRingCore(k int) int { return k / 2 }

// DerivedProcesses returns the process count the spec's kind implies.
func (ts TopoSpec) DerivedProcesses() (int, error) {
	k := ts.Groups
	switch ts.Kind {
	case TopoChain:
		return 2*k + 1, nil
	case TopoRing:
		return k, nil
	case TopoDisjoint:
		return 3 * k, nil
	case TopoWide:
		c := wideRingCore(k)
		return c + 2*(k-c), nil
	default:
		return 0, fmt.Errorf("workload: unknown topology kind %q (want %s, %s, %s or %s)",
			ts.Kind, TopoChain, TopoRing, TopoDisjoint, TopoWide)
	}
}

// Build generates the topology. Every emitted group family is validated by
// groups.New (membership bounds, non-empty groups, bitset capacity), so a
// successful Build is a valid family by construction.
//
// Cost note: groups.New enumerates cyclic families over 2^k group subsets —
// ~0.7s at k=20 and 4x per +2 groups. The wide catalog scenario sits at
// k=20 for exactly that reason; pushing far past it buys construction time,
// not protocol coverage.
func (ts TopoSpec) Build() (*groups.Topology, error) {
	k := ts.Groups
	minGroups := 1
	if ts.Kind == TopoRing {
		minGroups = 3 // a 2-ring degenerates to two identical groups
	}
	if ts.Kind == TopoWide {
		minGroups = 6 // below this there is no core+chain structure to mix
	}
	if k < minGroups {
		return nil, fmt.Errorf("workload: %s topology needs >= %d groups, got %d", ts.Kind, minGroups, k)
	}
	n, err := ts.DerivedProcesses()
	if err != nil {
		return nil, err
	}
	if ts.Processes != 0 && ts.Processes != n {
		return nil, fmt.Errorf("workload: %s topology with %d groups has %d processes, spec says %d",
			ts.Kind, k, n, ts.Processes)
	}
	var sets []groups.ProcSet
	switch ts.Kind {
	case TopoChain:
		for g := 0; g < k; g++ {
			sets = append(sets, groups.NewProcSet(
				groups.Process(2*g), groups.Process(2*g+1), groups.Process(2*g+2)))
		}
	case TopoRing:
		for g := 0; g < k; g++ {
			sets = append(sets, groups.NewProcSet(
				groups.Process(g), groups.Process((g+1)%k)))
		}
	case TopoDisjoint:
		for g := 0; g < k; g++ {
			sets = append(sets, groups.NewProcSet(
				groups.Process(3*g), groups.Process(3*g+1), groups.Process(3*g+2)))
		}
	case TopoWide:
		// Ring core: c size-2 groups over processes 0..c-1 (one cyclic
		// family spanning the core).
		c := wideRingCore(k)
		for g := 0; g < c; g++ {
			sets = append(sets, groups.NewProcSet(
				groups.Process(g), groups.Process((g+1)%c)))
		}
		// Acyclic chain: 3-member groups marching off process c-1, so the
		// first chain group shares exactly one process with the ring (the
		// bridge) and the rest overlap pairwise without closing a cycle.
		for j := 0; j < k-c; j++ {
			base := c - 1 + 2*j
			sets = append(sets, groups.NewProcSet(
				groups.Process(base), groups.Process(base+1), groups.Process(base+2)))
		}
	}
	return groups.New(n, sets...)
}
