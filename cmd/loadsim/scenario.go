package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/wire"
	"repro/internal/workload"
)

// delivery is one raw delivery event captured by the OnDeliver hook: which
// message landed, and when on the wall clock. The intended-time join
// happens after the run — the hook can fire before the sending loop has
// recorded the message's intended time, so it must not consult that map.
type delivery struct {
	id msg.ID
	at time.Time
}

// runScenario drives one scenario's full stream against a fresh live
// system and reduces the run to its SLO row. The returned row carries the
// open-loop latency columns (measured from intended send times), the
// offered rate, and the stream digest; an error means the scenario did not
// complete (delivery timeout) or, for soak scenarios, the applied-op
// journal diverged from the decision snapshots.
func runScenario(sc workload.Scenario, seed int64, transport string, timeout time.Duration) (benchfmt.LiveRow, error) {
	gen, err := workload.NewGen(sc, seed)
	if err != nil {
		return benchfmt.LiveRow{}, err
	}
	digest, err := workload.Digest(sc, seed)
	if err != nil {
		return benchfmt.LiveRow{}, err
	}
	topo := gen.Topology()
	n := topo.NumProcesses()
	var nw net.Transport
	switch transport {
	case "mem":
		nw = net.New(n)
	case "tcp":
		f, err := wire.NewFabric(n)
		if err != nil {
			return benchfmt.LiveRow{}, err
		}
		nw = f
	default:
		return benchfmt.LiveRow{}, fmt.Errorf("unknown transport %q (want mem or tcp)", transport)
	}
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	opt := core.Options{Rec: rec}
	if gen.Generic() {
		opt.Variant = core.Generic
		opt.Conflict = msg.ClassesConflict
	}
	// Raw delivery capture: every (process, message) delivery event, stamped
	// here rather than trusting any downstream clock.
	var mu sync.Mutex
	var events []delivery
	opt.OnDeliver = func(_ groups.Process, m *msg.Message, _ failure.Time) {
		at := time.Now()
		mu.Lock()
		events = append(events, delivery{id: m.ID, at: at})
		mu.Unlock()
	}
	if sc.Soak {
		// Soak scenarios run with the applied-op journal armed so the
		// journal/decision diff below covers every campaign, not just the
		// failover tests (ROADMAP item 3).
		replog.SetJournal(true)
		defer replog.SetJournal(false)
	}
	sys := live.NewSystem(topo, failure.NewPattern(n), nw, live.Config{Opt: opt})
	sys.Start()

	// The open-loop clock: each arrival is submitted no earlier than its
	// intended time. When the driver falls behind (the system is slower than
	// the offered rate), arrivals fire back to back and the growing gap
	// lands in the intended-time latency — exactly the tail a closed loop
	// would have hidden.
	start := time.Now()
	intended := make(map[msg.ID]time.Duration, sc.Count)
	var lastAt time.Duration
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if d := time.Until(start.Add(a.At)); d > 0 {
			time.Sleep(d)
		}
		m := sys.MulticastClassed(a.Src, a.Dst, nil, a.Class)
		intended[m.ID] = a.At
		lastAt = a.At
	}
	ok := sys.AwaitDelivery(timeout)
	sys.Stop()
	rep := sys.Report()
	if !ok {
		return benchfmt.LiveRow{}, fmt.Errorf("delivery incomplete after %v (%d multicasts, %d deliveries)",
			timeout, rep.Multicasts, rep.Deliveries)
	}
	if sc.Soak {
		if errs := sys.JournalDiff(); len(errs) > 0 {
			return benchfmt.LiveRow{}, fmt.Errorf("journal/decision diff: %v (and %d more)", errs[0], len(errs)-1)
		}
	}

	// Join the raw delivery events against the intended send times. Every
	// event's message was submitted by the loop above, so a missing id is a
	// bug worth failing on, not skipping.
	mu.Lock()
	lat := make([]float64, 0, len(events))
	for _, ev := range events {
		at, found := intended[ev.id]
		if !found {
			mu.Unlock()
			return benchfmt.LiveRow{}, fmt.Errorf("delivery of unknown message m%d", ev.id)
		}
		lat = append(lat, float64(ev.at.Sub(start.Add(at)))/float64(time.Millisecond))
	}
	mu.Unlock()
	sum := obs.Summarise(lat)

	row := benchfmt.FromReport(rep)
	// The latency columns of a scenario row are the open-loop summary, not
	// the recorder's send-to-delivery histogram: measured from intended
	// time, they include any backlog the driver accrued.
	row.P50Ms = sum.P50
	row.P90Ms = sum.P90
	row.P99Ms = sum.P99
	row.P999Ms = sum.P999
	row.MaxMs = sum.Max
	row.Scenario = sc.Name
	row.WorkloadSeed = seed
	row.StreamDigest = digest
	row.Transport = transport
	row.ConflictRate = sc.ConflictRate
	row.FsyncMode = "mem"
	if lastAt > 0 {
		row.OfferedPerSec = float64(sc.Count) / lastAt.Seconds()
	}
	return row, nil
}
