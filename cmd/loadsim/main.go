// Command loadsim is the unattended campaign runner: it drives named
// workload scenarios (internal/workload) against the live backend and
// reduces each run to one SLO row of the versioned BENCH schema
// (internal/benchfmt) that cmd/benchgate gates keyed by scenario name.
//
// Unlike benchtab's closed-loop sweep, loadsim offers load open-loop: every
// arrival has an intended send time fixed by (scenario, seed) before the
// run starts, and latency is measured from that intended time — a system
// that falls behind schedule accrues the backlog in its own tail instead of
// throttling the load that measures it (no coordinated omission). Identical
// (scenario, seed) reruns consume bit-identical streams; the stream_digest
// column certifies it.
//
// A full campaign against the committed baselines is two commands:
//
//	loadsim -json BENCH_scenarios.json
//	benchgate live -old benchmarks/baselines/BENCH_scenarios.json -new BENCH_scenarios.json
//
// -scenarios picks catalog entries by name ("steady,hot-group"), -scenario-
// file replaces the catalog with a JSON list, -load-scale stretches or
// shrinks every scenario's arrival count (soak vs smoke), and -seed replays
// a different stream. Soak scenarios run with the replog applied-op journal
// armed and diff every replica's journal against its own paxos decision
// snapshot on exit — the ROADMAP item-3 flake hunt rides along with every
// campaign.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
	"repro/internal/cliconf"
	"repro/internal/workload"
)

func main() {
	cc := cliconf.Bind(flag.CommandLine, cliconf.ToolLoadsim)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadsim: unexpected arguments %q (scenarios are picked with -scenarios)\n", flag.Args())
		os.Exit(2)
	}
	if err := campaign(os.Stdout, *cc); err != nil {
		fmt.Fprintf(os.Stderr, "loadsim: %v\n", err)
		os.Exit(1)
	}
}

// campaign resolves the scenario list and runs it in order, printing the
// SLO table as rows complete so an unattended log shows progress. Any
// scenario failure (delivery timeout, journal diff) aborts the campaign
// with an error — a partial BENCH document would gate green on whatever
// happened to finish.
func campaign(w *os.File, cc cliconf.Common) error {
	catalog := workload.Catalog()
	if cc.ScenarioFile != "" {
		var err error
		catalog, err = workload.ReadFile(cc.ScenarioFile)
		if err != nil {
			return err
		}
	}
	scs, err := workload.Select(catalog, cc.Scenarios)
	if err != nil {
		return err
	}
	doc := benchfmt.NewDoc(false)
	fmt.Fprintf(w, "%-10s %5s %4s %-4s %9s %9s | %8s %8s %8s | %8s %8s %5s\n",
		"scenario", "n", "k", "tpt", "offered/s", "goodput/s", "p50 ms", "p99 ms", "p999 ms", "pkts/dlv", "fast", "soak")
	for _, sc := range scs {
		sc = sc.Scale(cc.LoadScale)
		row, err := runScenario(sc, cc.Seed, cc.Transport, cc.Timeout)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		doc.Runs = append(doc.Runs, row)
		soak := ""
		if sc.Soak {
			soak = "ok"
		}
		fmt.Fprintf(w, "%-10s %5d %4d %-4s %9.0f %9.0f | %8.2f %8.2f %8.2f | %8.1f %8.2f %5s\n",
			row.Scenario, row.Processes, row.Groups, row.Transport,
			row.OfferedPerSec, row.MsgsPerSec,
			row.P50Ms, row.P99Ms, row.P999Ms,
			row.PacketsPerDelivery, row.FastShare, soak)
	}
	fmt.Fprintf(w, "\nlatency is measured from each arrival's intended send time (open loop):\n")
	fmt.Fprintf(w, "goodput below offered/s means the backlog went into the tail columns,\n")
	fmt.Fprintf(w, "not into a slowed-down load generator. Replay any row with its\n")
	fmt.Fprintf(w, "(scenario, seed): the stream_digest column certifies the same workload.\n")
	if cc.Baseline != "" {
		if err := printScenarioDeltas(w, cc.Baseline, doc.Runs); err != nil {
			return err
		}
	}
	if cc.JSON != "" {
		if err := doc.Write(cc.JSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s (%d scenario rows, schema v%d)\n", cc.JSON, len(doc.Runs), benchfmt.SchemaVersion)
	}
	return nil
}

// printScenarioDeltas prints per-scenario changes against a prior campaign
// document. Informational — the pass/fail decision belongs to benchgate.
func printScenarioDeltas(w *os.File, path string, fresh []benchfmt.LiveRow) error {
	prior, err := benchfmt.Load(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	if err := prior.CheckVersion(path); err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	old := make(map[string]benchfmt.LiveRow, len(prior.Runs))
	for _, r := range prior.Runs {
		if r.Scenario != "" {
			old[r.Scenario] = r
		}
	}
	pct := func(now, was float64) string {
		if was == 0 {
			return "    n/a"
		}
		return fmt.Sprintf("%+6.1f%%", 100*(now-was)/was)
	}
	fmt.Fprintf(w, "\ndelta vs %s (negative latency = better)\n", path)
	fmt.Fprintf(w, "%-10s | %8s → %8s %7s | %8s → %8s %7s\n",
		"scenario", "p99 was", "p99 now", "Δ", "gput was", "gput now", "Δ")
	for _, r := range fresh {
		was, ok := old[r.Scenario]
		if !ok {
			fmt.Fprintf(w, "%-10s | (no baseline row)\n", r.Scenario)
			continue
		}
		fmt.Fprintf(w, "%-10s | %8.2f → %8.2f %7s | %8.0f → %8.0f %7s\n",
			r.Scenario, was.P99Ms, r.P99Ms, pct(r.P99Ms, was.P99Ms),
			was.MsgsPerSec, r.MsgsPerSec, pct(r.MsgsPerSec, was.MsgsPerSec))
	}
	return nil
}
