package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/cliconf"
	"repro/internal/workload"
)

// cliconfFor is the parsed-flag state of a default campaign over a scenario
// file, writing its document to out.
func cliconfFor(scFile, out string) cliconf.Common {
	return cliconf.Common{
		Scenarios:    "all",
		ScenarioFile: scFile,
		LoadScale:    1,
		Transport:    "mem",
		JSON:         out,
		Seed:         1,
		Timeout:      60 * time.Second,
	}
}

// tinySteady is a fast steady scenario for end-to-end runs under -short.
func tinySteady() workload.Scenario {
	return workload.Scenario{
		Name:     "tiny",
		Topo:     workload.TopoSpec{Kind: workload.TopoChain, Groups: 3},
		Arrivals: workload.ArrivalsPoisson,
		Rate:     400, Count: 40,
		ConflictRate: 1,
	}
}

// TestRunScenarioProducesSLORow runs a tiny scenario end to end against the
// live backend and checks the row: identity columns, the replay
// certificate, and an open-loop latency summary covering every delivery.
func TestRunScenarioProducesSLORow(t *testing.T) {
	sc := tinySteady()
	row, err := runScenario(sc, 7, "mem", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "tiny" || row.WorkloadSeed != 7 || row.Transport != "mem" {
		t.Fatalf("identity columns: %+v", row)
	}
	if row.Processes != 7 || row.Groups != 3 {
		t.Fatalf("topology columns: n=%d k=%d, want 7/3", row.Processes, row.Groups)
	}
	if row.Multicasts != int64(sc.Count) {
		t.Fatalf("multicasts %d, want %d", row.Multicasts, sc.Count)
	}
	if row.Deliveries < row.Multicasts {
		t.Fatalf("deliveries %d < multicasts %d", row.Deliveries, row.Multicasts)
	}
	want, err := workload.Digest(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if row.StreamDigest != want {
		t.Fatalf("stream digest %s, want %s", row.StreamDigest, want)
	}
	if row.OfferedPerSec <= 0 {
		t.Fatalf("offered rate not recorded: %+v", row)
	}
	if row.P50Ms <= 0 || row.P999Ms < row.P99Ms || row.P99Ms < row.P50Ms || row.MaxMs < row.P999Ms {
		t.Fatalf("latency summary out of order: p50=%v p99=%v p999=%v max=%v",
			row.P50Ms, row.P99Ms, row.P999Ms, row.MaxMs)
	}
}

// TestRunScenarioReplaysIdenticalStream pins the campaign-level determinism
// claim: two runs of the same (scenario, seed) carry the same digest and
// multicast count; a different seed moves the digest.
func TestRunScenarioReplaysIdenticalStream(t *testing.T) {
	sc := tinySteady()
	a, err := runScenario(sc, 3, "mem", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runScenario(sc, 3, "mem", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.StreamDigest != b.StreamDigest || a.Multicasts != b.Multicasts {
		t.Fatalf("same (scenario, seed) reran a different stream: %s/%d vs %s/%d",
			a.StreamDigest, a.Multicasts, b.StreamDigest, b.Multicasts)
	}
	c, err := runScenario(sc, 4, "mem", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.StreamDigest == a.StreamDigest {
		t.Fatalf("seed 4 replayed seed 3's stream: %s", c.StreamDigest)
	}
}

// TestRunScenarioSoakJournal runs a soak scenario (generic mix, journal
// armed) end to end: the journal diff must pass and the fast-path share
// must be visible in the row.
func TestRunScenarioSoakJournal(t *testing.T) {
	sc := workload.Scenario{
		Name:     "tiny-soak",
		Topo:     workload.TopoSpec{Kind: workload.TopoChain, Groups: 3},
		Arrivals: workload.ArrivalsPoisson,
		Rate:     400, Count: 60,
		ConflictRate: 0.3,
		Soak:         true,
	}
	row, err := runScenario(sc, 5, "mem", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if row.ConflictRate != 0.3 {
		t.Fatalf("conflict rate column %v, want 0.3", row.ConflictRate)
	}
	if row.FastShare <= 0 {
		t.Fatalf("commuting mix produced no fast deliveries: %+v", row)
	}
}

// TestCampaignWritesGateableDoc runs a two-scenario campaign through the
// top-level driver via a scenario file and checks the emitted document is
// schema-current with one keyed row per scenario.
func TestCampaignWritesGateableDoc(t *testing.T) {
	dir := t.TempDir()
	scFile := filepath.Join(dir, "campaign.json")
	out := filepath.Join(dir, "out.json")
	const scenarios = `[
	  {"name": "a", "topo": {"kind": "chain", "groups": 3}, "arrivals": "poisson",
	   "rate": 400, "count": 30, "conflict_rate": 1},
	  {"name": "b", "topo": {"kind": "chain", "groups": 3}, "arrivals": "fixed",
	   "rate": 400, "count": 30, "conflict_rate": 1}
	]`
	if err := os.WriteFile(scFile, []byte(scenarios), 0o644); err != nil {
		t.Fatal(err)
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	cc := cliconfFor(scFile, out)
	if err := campaign(null, cc); err != nil {
		t.Fatal(err)
	}
	doc, err := benchfmt.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.CheckVersion(out); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Scenario != "a" || doc.Runs[1].Scenario != "b" {
		t.Fatalf("document rows: %+v", doc.Runs)
	}
}
