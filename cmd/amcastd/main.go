// Command amcastd is the multi-process deployment of the live substrate:
// one daemon embodies one process of the topology, speaking the binary wire
// protocol over TCP to its peers. A 3-process run of the Figure-1-style
// workload is three amcastd invocations (three terminals, or three CI
// processes) sharing the same scenario flags:
//
//	amcastd -id 0 -peers "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002" \
//	        -groups "0,1;1,2;0,2" -msgs "0>0;1>1;2>2"
//	amcastd -id 1 -peers ... (same scenario flags)
//	amcastd -id 2 -peers ... (same scenario flags)
//
// Every daemon must receive identical -groups, -msgs and -crash specs:
// message IDs are positional in the multicast schedule, so the daemons
// reconstruct the same schedule independently (the owning daemon issues
// each multicast, the others observe it). The daemon prints one line
//
//	ORDER <id> <msgID> <msgID> ...
//
// with its local delivery order — the harness (or the operator, across
// three terminals) checks pairwise agreement — and "OK <id>" on clean
// shutdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var (
		idFlag      = flag.Int("id", -1, "process ID this daemon embodies (index into -peers)")
		peersFlag   = flag.String("peers", "", "comma-separated host:port per process, indexed by ID")
		groupsFlag  = flag.String("groups", "0,1;1,2;0,2", "semicolon-separated groups (comma-separated members)")
		msgsFlag    = flag.String("msgs", "0>0;1>1", "semicolon-separated multicasts src>group[@tick][#class] (#free / #<n> tag conflict classes under -variant generic)")
		crashFlag   = flag.String("crash", "", "semicolon-separated crashes proc@tick")
		variantFlag = flag.String("variant", "vanilla", "vanilla | strict | pairwise | strong | generic")
		delayFlag   = flag.Int64("delay", 8, "failure-detector stabilisation delay (ticks)")
		seedFlag    = flag.Int64("seed", 1, "failure-detector seed (must match across daemons)")
		timeoutFlag = flag.Duration("timeout", 60*time.Second, "how long to wait for local delivery")
		lingerFlag  = flag.Duration("linger", 2*time.Second, "how long to stay up after local delivery so peers can finish")
		reportFlag  = flag.Bool("report", false, "print the obs.RunReport before exiting")
	)
	flag.Parse()
	if err := run(*idFlag, *peersFlag, *groupsFlag, *msgsFlag, *crashFlag, *variantFlag,
		*delayFlag, *seedFlag, *timeoutFlag, *lingerFlag, *reportFlag); err != nil {
		log.Fatal(err)
	}
}

func run(id int, peers, groupSpec, msgSpec, crashSpec, variant string,
	delay, seed int64, timeout, linger time.Duration, wantReport bool) error {
	topo, err := cliconf.ParseGroups(groupSpec)
	if err != nil {
		return err
	}
	if id < 0 || id >= topo.NumProcesses() {
		return fmt.Errorf("-id %d out of range for %d processes", id, topo.NumProcesses())
	}
	self := groups.Process(id)
	addrs, err := cliconf.ParsePeers(peers, topo.NumProcesses())
	if err != nil {
		return err
	}
	pat, err := cliconf.ParseCrashes(crashSpec, topo.NumProcesses())
	if err != nil {
		return err
	}
	v, err := cliconf.ParseVariant(variant)
	if err != nil {
		return err
	}
	msgs, err := cliconf.ParseMulticasts(msgSpec)
	if err != nil {
		return err
	}

	tr, err := wire.Listen(wire.Config{Self: self, Addrs: addrs})
	if err != nil {
		return err
	}

	opt := core.Options{
		Variant: v,
		FD:      fd.Options{Delay: failure.Time(delay), Seed: seed},
	}
	if v == core.Generic {
		// The conflict relation of a daemon run is induced by the #class
		// tags of the -msgs spec, which every daemon parses identically.
		opt.Conflict = msg.ClassesConflict
	}
	if wantReport {
		opt.Rec = obs.NewRecorder(obs.Options{WallClock: true})
	}
	sys := live.NewSystem(topo, pat, tr, live.Config{
		Opt:   opt,
		Owned: groups.NewProcSet(self),
	})
	sys.Start()
	defer sys.Stop()

	// Walk the schedule in canonical order at every daemon: the owning
	// daemon issues each multicast, every other daemon observes it, so all
	// registries assign identical message IDs.
	for _, m := range msgs {
		for sys.Now() < m.At {
			time.Sleep(time.Millisecond)
		}
		if m.Src == self {
			sys.MulticastClassed(m.Src, m.G, nil, m.Class)
		} else {
			sys.ObserveClassed(m.Src, m.G, nil, m.Class)
		}
	}

	if !sys.AwaitDelivery(timeout) {
		return fmt.Errorf("p%d: delivery incomplete after %v", id, timeout)
	}

	var order []string
	for _, d := range sys.Sh.Deliveries() {
		if d.P == self {
			order = append(order, fmt.Sprintf("%d", d.M))
		}
	}
	fmt.Printf("ORDER %d %s\n", id, strings.Join(order, " "))
	os.Stdout.Sync()

	// Linger: this daemon's acceptor may still be needed for a peer's
	// quorum. A real deployment would stay up indefinitely; a scripted run
	// holds the line long enough for every peer to reach delivery.
	time.Sleep(linger)
	sys.Stop()
	if wantReport {
		rep := sys.Report()
		fmt.Printf("%s\n", rep.String())
	}
	fmt.Printf("OK %d\n", id)
	return nil
}
