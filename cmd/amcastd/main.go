// Command amcastd is the multi-process deployment of the live substrate:
// one daemon embodies one process of the topology, speaking the binary wire
// protocol over TCP to its peers. A 3-process run of the Figure-1-style
// workload is three amcastd invocations (three terminals, or three CI
// processes) sharing the same scenario flags:
//
//	amcastd -id 0 -peers "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002" \
//	        -groups "0,1;1,2;0,2" -msgs "0>0;1>1;2>2"
//	amcastd -id 1 -peers ... (same scenario flags)
//	amcastd -id 2 -peers ... (same scenario flags)
//
// Every daemon must receive identical -groups, -msgs and -crash specs:
// message IDs are positional in the multicast schedule, so the daemons
// reconstruct the same schedule independently (the owning daemon issues
// each multicast, the others announce it). The daemon prints one line
//
//	ORDER <id> <msgID> <msgID> ...
//
// with its local delivery order — the harness (or the operator, across
// three terminals) checks pairwise agreement — and "OK <id>" on clean
// shutdown.
//
// With -data-dir the daemon's acceptor state is durable: every promise and
// accepted value is written to a write-ahead log under the directory before
// the reply leaves the process, so a kill -9'd daemon restarted with the
// same flags replays the log (the "RECOVER <id> records=<n>" line), rejoins
// its quorums and continues without violating paxos safety. -fsync none
// keeps the log but skips the fsync barrier (crash-unsafe, benchmark use).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wire"
)

func main() {
	cc := cliconf.Bind(flag.CommandLine, cliconf.ToolAmcastd)
	flag.Parse()
	if err := run(cc); err != nil {
		log.Fatal(err)
	}
}

func run(cc *cliconf.Common) error {
	topo, err := cliconf.ParseGroups(cc.Groups)
	if err != nil {
		return err
	}
	if cc.ID < 0 || cc.ID >= topo.NumProcesses() {
		return fmt.Errorf("-id %d out of range for %d processes", cc.ID, topo.NumProcesses())
	}
	self := groups.Process(cc.ID)
	addrs, err := cliconf.ParsePeers(cc.Peers, topo.NumProcesses())
	if err != nil {
		return err
	}
	pat, err := cliconf.ParseCrashes(cc.Crash, topo.NumProcesses())
	if err != nil {
		return err
	}
	v, err := cliconf.ParseVariant(cc.Variant)
	if err != nil {
		return err
	}
	msgs, err := cliconf.ParseMulticasts(cc.Msgs)
	if err != nil {
		return err
	}

	// The membership descriptor carries the whole deployment in one value:
	// every replica with its daemon's address, and which one is us.
	replicas := make([]live.Replica, len(addrs))
	for i, a := range addrs {
		replicas[i] = live.Replica{ID: groups.Process(i), Addr: a}
	}
	mem := live.NewMembership(replicas, self)
	if err := mem.Validate(topo.NumProcesses()); err != nil {
		return err
	}

	tr, err := wire.Listen(wire.Config{Self: self, Addrs: addrs})
	if err != nil {
		return err
	}

	opt := core.Options{
		Variant: v,
		FD:      fd.Options{Delay: failure.Time(cc.Delay), Seed: cc.Seed},
	}
	if v == core.Generic {
		// The conflict relation of a daemon run is induced by the #class
		// tags of the -msgs spec, which every daemon parses identically.
		opt.Conflict = msg.ClassesConflict
	}
	if cc.Report {
		opt.Rec = obs.NewRecorder(obs.Options{WallClock: true})
	}

	// The WAL is opened before the system so an open failure (bad directory,
	// corrupt permissions) aborts the daemon before it joins any quorum.
	var walC *obs.WALCounters
	if opt.Rec != nil {
		walC = opt.Rec.WAL()
	}
	wal, err := cliconf.OpenWAL(cc.DataDir, cc.Fsync, self, walC)
	if err != nil {
		return err
	}

	sys := live.NewSystem(topo, pat, tr, live.Config{
		Opt:        opt,
		Membership: mem,
		Storage:    func(groups.Process) storage.WAL { return wal },
	})
	if f, ok := wal.(*storage.File); ok {
		// NewSystem replayed the log while building the paxos node; by now
		// the count is final. The line is the restart harness's handle on
		// "this daemon recovered rather than started fresh".
		fmt.Printf("RECOVER %d records=%d\n", cc.ID, f.RecoveredRecords())
		os.Stdout.Sync()
	}
	sys.Start()
	defer sys.Stop()

	// Walk the schedule in canonical order at every daemon: the owning
	// daemon issues each multicast, every other daemon announces it, so all
	// registries assign identical message IDs.
	for _, m := range msgs {
		for sys.Now() < m.At {
			time.Sleep(time.Millisecond)
		}
		if m.Src == self {
			sys.MulticastClassed(m.Src, m.G, nil, m.Class)
		} else {
			sys.AnnounceClassed(m.Src, m.G, nil, m.Class)
		}
	}

	if !sys.AwaitDelivery(cc.Timeout) {
		return fmt.Errorf("p%d: delivery incomplete after %v", cc.ID, cc.Timeout)
	}

	var order []string
	for _, d := range sys.Sh.Deliveries() {
		if d.P == self {
			order = append(order, fmt.Sprintf("%d", d.M))
		}
	}
	fmt.Printf("ORDER %d %s\n", cc.ID, strings.Join(order, " "))
	os.Stdout.Sync()

	// Linger: this daemon's acceptor may still be needed for a peer's
	// quorum. A real deployment would stay up indefinitely; a scripted run
	// holds the line long enough for every peer to reach delivery.
	time.Sleep(cc.Linger)
	sys.Stop()
	if err := wal.Close(); err != nil {
		return fmt.Errorf("p%d: wal close: %w", cc.ID, err)
	}
	if cc.Report {
		rep := sys.Report()
		fmt.Printf("%s\n", rep.String())
	}
	fmt.Printf("OK %d\n", cc.ID)
	return nil
}
