package main

import (
	"fmt"
	gonet "net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestThreeProcessSmoke is the multi-process acceptance run: build the
// daemon, spawn three OS processes over loopback TCP with the Figure-1
// style cyclic workload (three pairwise-overlapping groups), and assert
// full delivery, pairwise order agreement, and clean shutdown.
func TestThreeProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "amcastd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building amcastd: %v\n%s", err, out)
	}

	addrs := freeAddrs(t, 3)
	const (
		groupSpec = "0,1;1,2;0,2"
		msgSpec   = "0>0;1>1;2>2;0>2;2>1"
	)

	type result struct {
		id  int
		out string
		err error
	}
	results := make(chan result, 3)
	for id := 0; id < 3; id++ {
		go func(id int) {
			cmd := exec.Command(bin,
				"-id", fmt.Sprint(id),
				"-peers", strings.Join(addrs, ","),
				"-groups", groupSpec,
				"-msgs", msgSpec,
				"-timeout", "90s",
				"-linger", "3s",
			)
			out, err := cmd.CombinedOutput()
			results <- result{id: id, out: string(out), err: err}
		}(id)
	}

	orders := make(map[int][]string)
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("daemon %d failed: %v\n%s", r.id, r.err, r.out)
			}
			if !strings.Contains(r.out, fmt.Sprintf("OK %d", r.id)) {
				t.Fatalf("daemon %d did not shut down cleanly:\n%s", r.id, r.out)
			}
			orders[r.id] = parseOrder(t, r.id, r.out)
		case <-time.After(2 * time.Minute):
			t.Fatal("daemons did not finish within 2 minutes")
		}
	}

	// Delivery obligations: g0={0,1} carries m1; g1={1,2} m2 and m5;
	// g2={0,2} m3 and m4 (IDs are positional, 1-based, in -msgs order).
	want := map[int][]string{
		0: {"1", "3", "4"},
		1: {"1", "2", "5"},
		2: {"2", "3", "4", "5"},
	}
	for id, w := range want {
		if got := append([]string(nil), orders[id]...); !sameSet(got, w) {
			t.Errorf("daemon %d delivered %v, want the set %v", id, orders[id], w)
		}
	}

	// Agreement: any two processes deliver their common messages in the
	// same relative order.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if err := agree(orders[a], orders[b]); err != nil {
				t.Errorf("p%d vs p%d: %v (orders %v / %v)", a, b, err, orders[a], orders[b])
			}
		}
	}
}

// freeAddrs reserves n loopback ports by binding and releasing them. The
// tiny rebind race is acceptable for a smoke test.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// parseOrder extracts the daemon's ORDER line.
func parseOrder(t *testing.T, id int, out string) []string {
	t.Helper()
	prefix := fmt.Sprintf("ORDER %d", id)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.Fields(strings.TrimPrefix(line, prefix))
		}
	}
	t.Fatalf("daemon %d printed no ORDER line:\n%s", id, out)
	return nil
}

// sameSet reports whether two slices hold the same elements (any order).
func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		if seen[x] == 0 {
			return false
		}
		seen[x]--
	}
	return true
}

// agree checks pairwise order agreement on the common messages.
func agree(a, b []string) error {
	pos := make(map[string]int, len(b))
	for i, m := range b {
		pos[m] = i + 1 // 1-based so 0 means absent
	}
	last := 0
	for _, m := range a {
		p, ok := pos[m], pos[m] != 0
		if !ok {
			continue
		}
		if p < last {
			return fmt.Errorf("message %s ordered differently", m)
		}
		last = p
	}
	return nil
}
