package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestKillNineRestartRejoins is the durability acceptance run: three
// daemons with -data-dir, one of them kill -9'd mid-run and restarted with
// the same flags. The restarted daemon must replay its write-ahead log
// (RECOVER line with a non-zero record count), rejoin its quorums — every
// group here has two members, so its peers' logs cannot advance without its
// acceptor — and reach full delivery in pairwise agreement with the
// survivors.
func TestKillNineRestartRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "amcastd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building amcastd: %v\n%s", err, out)
	}

	addrs := freeAddrs(t, 3)
	dataDir := t.TempDir()
	const (
		groupSpec = "0,1;1,2;0,2"
		msgSpec   = "0>0;1>1;2>2;0>2;2>1"
	)
	daemon := func(id int, linger string) *exec.Cmd {
		return exec.Command(bin,
			"-id", fmt.Sprint(id),
			"-peers", strings.Join(addrs, ","),
			"-groups", groupSpec,
			"-msgs", msgSpec,
			"-timeout", "90s",
			"-linger", linger,
			"-data-dir", dataDir,
		)
	}

	// The survivors linger long enough to serve the restarted daemon's
	// recovery re-proposals with their acceptors.
	type result struct {
		id  int
		out string
		err error
	}
	results := make(chan result, 2)
	for _, id := range []int{0, 2} {
		go func(id int) {
			out, err := daemon(id, "20s").CombinedOutput()
			results <- result{id: id, out: string(out), err: err}
		}(id)
	}

	// The victim would linger for a minute — the kill always lands while it
	// is alive, after it has accepted slots into its WAL.
	var victimOut bytes.Buffer
	victim := daemon(1, "60s")
	victim.Stdout = &victimOut
	victim.Stderr = &victimOut
	if err := victim.Start(); err != nil {
		t.Fatalf("starting victim: %v", err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	_ = victim.Wait() // reaps the SIGKILL exit; the error is expected

	// Restart with identical flags: same identity, same data directory.
	restarted := make(chan result, 1)
	go func() {
		out, err := daemon(1, "3s").CombinedOutput()
		restarted <- result{id: 1, out: string(out), err: err}
	}()

	var r1 result
	select {
	case r1 = <-restarted:
	case <-time.After(2 * time.Minute):
		t.Fatalf("restarted daemon did not finish (victim output so far:\n%s)", victimOut.String())
	}
	if r1.err != nil {
		t.Fatalf("restarted daemon failed: %v\n%s\n--- victim pre-kill output:\n%s", r1.err, r1.out, victimOut.String())
	}
	if rec := recoveredRecords(t, 1, r1.out); rec == 0 {
		t.Fatalf("restarted daemon replayed 0 WAL records — it started fresh instead of recovering:\n%s", r1.out)
	}
	if !strings.Contains(r1.out, "OK 1") {
		t.Fatalf("restarted daemon did not shut down cleanly:\n%s", r1.out)
	}

	orders := map[int][]string{1: parseOrder(t, 1, r1.out)}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("daemon %d failed: %v\n%s", r.id, r.err, r.out)
			}
			if !strings.Contains(r.out, fmt.Sprintf("OK %d", r.id)) {
				t.Fatalf("daemon %d did not shut down cleanly:\n%s", r.id, r.out)
			}
			orders[r.id] = parseOrder(t, r.id, r.out)
		case <-time.After(2 * time.Minute):
			t.Fatal("surviving daemons did not finish within 2 minutes")
		}
	}

	// Same obligations as the smoke test (IDs positional in -msgs order).
	want := map[int][]string{
		0: {"1", "3", "4"},
		1: {"1", "2", "5"},
		2: {"2", "3", "4", "5"},
	}
	for id, w := range want {
		if !sameSet(orders[id], w) {
			t.Errorf("daemon %d delivered %v, want the set %v", id, orders[id], w)
		}
	}
	for a := 0; a <= 2; a++ {
		for b := a + 1; b <= 2; b++ {
			if err := agree(orders[a], orders[b]); err != nil {
				t.Errorf("p%d vs p%d: %v (orders %v / %v)", a, b, err, orders[a], orders[b])
			}
		}
	}
}

// recoveredRecords extracts the record count from the RECOVER line.
func recoveredRecords(t *testing.T, id int, out string) int {
	t.Helper()
	prefix := fmt.Sprintf("RECOVER %d records=", id)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, prefix)))
			if err != nil {
				t.Fatalf("bad RECOVER line %q: %v", line, err)
			}
			return n
		}
	}
	t.Fatalf("daemon %d printed no RECOVER line:\n%s", id, out)
	return 0
}
