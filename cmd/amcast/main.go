// Command amcast runs an atomic-multicast scenario from the command line
// and prints the delivery trace plus a specification check.
//
// Usage:
//
//	amcast -groups "0,1;1,2;0,2,3" -msgs "0>0;1>1;2>2" \
//	       -crash "1@40" -variant strict -seed 7
//
// Groups are semicolon-separated member lists; messages are src>group
// pairs; crashes are process@time pairs.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

func main() {
	var (
		groupsFlag  = flag.String("groups", "0,1;1,2;0,2", "semicolon-separated groups (comma-separated members)")
		msgsFlag    = flag.String("msgs", "0>0;1>1", "semicolon-separated multicasts src>group[@time]")
		crashFlag   = flag.String("crash", "", "semicolon-separated crashes proc@time")
		variantFlag = flag.String("variant", "vanilla", "vanilla | strict | pairwise | strong")
		seedFlag    = flag.Int64("seed", 1, "scheduler seed")
		delayFlag   = flag.Int64("delay", 8, "failure-detector stabilisation delay")
		costsFlag   = flag.Bool("costs", false, "enable the §4.3 cost accounting")
	)
	flag.Parse()
	if err := run(*groupsFlag, *msgsFlag, *crashFlag, *variantFlag, *seedFlag, *delayFlag, *costsFlag); err != nil {
		log.Fatal(err)
	}
}

func run(groupSpec, msgSpec, crashSpec, variant string, seed, delay int64, costs bool) error {
	var sets []groups.ProcSet
	maxP := 0
	for _, gs := range strings.Split(groupSpec, ";") {
		var set groups.ProcSet
		for _, ms := range strings.Split(gs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(ms))
			if err != nil {
				return fmt.Errorf("bad group member %q: %w", ms, err)
			}
			if p > maxP {
				maxP = p
			}
			set = set.Add(groups.Process(p))
		}
		sets = append(sets, set)
	}
	topo, err := groups.New(maxP+1, sets...)
	if err != nil {
		return err
	}

	pat := failure.NewPattern(maxP + 1)
	if crashSpec != "" {
		for _, cs := range strings.Split(crashSpec, ";") {
			parts := strings.Split(cs, "@")
			if len(parts) != 2 {
				return fmt.Errorf("bad crash spec %q", cs)
			}
			p, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
			t, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad crash spec %q", cs)
			}
			pat = pat.WithCrash(groups.Process(p), failure.Time(t))
		}
	}

	var v core.Variant
	switch variant {
	case "vanilla":
		v = core.Vanilla
	case "strict":
		v = core.Strict
	case "pairwise":
		v = core.Pairwise
	case "strong":
		v = core.StronglyGenuine
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}

	sys := core.NewSystem(topo, pat, core.Options{
		Variant:       v,
		ChargeObjects: costs,
		FD:            fd.Options{Delay: failure.Time(delay), Seed: seed},
	}, seed)

	for _, ms := range strings.Split(msgSpec, ";") {
		at := int64(0)
		spec := ms
		if i := strings.Index(ms, "@"); i >= 0 {
			spec = ms[:i]
			at, err = strconv.ParseInt(ms[i+1:], 10, 64)
			if err != nil {
				return fmt.Errorf("bad message time in %q", ms)
			}
		}
		parts := strings.Split(spec, ">")
		if len(parts) != 2 {
			return fmt.Errorf("bad message spec %q", ms)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		g, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad message spec %q", ms)
		}
		sys.MulticastAt(failure.Time(at), groups.Process(src), groups.GroupID(g), nil)
	}

	fmt.Printf("topology: %v\n", topo)
	fmt.Printf("pattern:  %v\n", pat)
	fmt.Printf("variant:  %v, seed %d\n\n", v, seed)

	if !sys.Run() {
		return fmt.Errorf("run did not quiesce within the step budget")
	}

	fmt.Println("delivery trace (global order):")
	for _, d := range sys.Sh.Deliveries() {
		m := sys.Sh.Reg.Get(d.M)
		fmt.Printf("  t=%-6d p%d delivers m%d (src=p%d dst=g%d)\n", d.T, d.P, d.M, m.Src, m.Dst)
	}

	fmt.Println("\nper-process orders:")
	for p := 0; p < topo.NumProcesses(); p++ {
		fmt.Printf("  p%d: %v", p, sys.DeliveredAt(groups.Process(p)))
		if costs {
			fmt.Printf("   (steps=%d charges=%d)",
				sys.Eng.Steps(groups.Process(p)), sys.Eng.Charges(groups.Process(p)))
		}
		fmt.Println()
	}

	violations := sys.Check()
	if len(violations) == 0 {
		fmt.Println("\nspecification check: OK (integrity, termination, ordering, minimality)")
		return nil
	}
	fmt.Println("\nspecification check FAILED:")
	for _, v := range violations {
		fmt.Printf("  %v\n", (*check.Violation)(v))
	}
	return fmt.Errorf("%d violations", len(violations))
}
