// Command amcast runs an atomic-multicast scenario from the command line
// and prints the delivery trace plus a specification check.
//
// Usage:
//
//	amcast -groups "0,1;1,2;0,2,3" -msgs "0>0;1>1;2>2" \
//	       -crash "1@40" -variant strict -seed 7
//	amcast -groups "0,1,2;2,3,4" -msgs "0>0;3>1" -backend live
//
// Groups are semicolon-separated member lists; messages are src>group
// pairs; crashes are process@time pairs. The backend selects the substrate:
// "sim" (default) runs the deterministic virtual-time engine over ideal
// shared objects; "live" runs the same protocol over paxos-replicated logs
// on an in-process transport, with times measured in ~1ms ticks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
)

func main() {
	cc := cliconf.Bind(flag.CommandLine, cliconf.ToolAmcast)
	var (
		backendFlag = flag.String("backend", "sim", "sim | live")
		costsFlag   = flag.Bool("costs", false, "enable the §4.3 cost accounting (sim backend)")
	)
	flag.Parse()
	if err := run(cc, *backendFlag, *costsFlag); err != nil {
		log.Fatal(err)
	}
}

func run(cc *cliconf.Common, backend string, costs bool) error {
	topo, err := cliconf.ParseGroups(cc.Groups)
	if err != nil {
		return err
	}
	pat, err := cliconf.ParseCrashes(cc.Crash, topo.NumProcesses())
	if err != nil {
		return err
	}
	v, err := cliconf.ParseVariant(cc.Variant)
	if err != nil {
		return err
	}
	msgs, err := cliconf.ParseMulticasts(cc.Msgs)
	if err != nil {
		return err
	}

	opt := core.Options{
		Variant:       v,
		ChargeObjects: costs,
		FD:            fd.Options{Delay: failure.Time(cc.Delay), Seed: cc.Seed},
	}
	if v == core.Generic {
		opt.Conflict = msg.ClassesConflict
	}
	if cc.Report {
		// Wall stamps only on live — a sim timeline must stay seed-determined.
		opt.Rec = obs.NewRecorder(obs.Options{WallClock: backend == "live"})
	}

	fmt.Printf("topology: %v\n", topo)
	fmt.Printf("pattern:  %v\n", pat)
	fmt.Printf("variant:  %v, backend %s, seed %d\n\n", v, backend, cc.Seed)

	switch backend {
	case "sim":
		return runSim(topo, pat, opt, cc.Seed, msgs, costs, cc.Report)
	case "live":
		if costs {
			return fmt.Errorf("-costs requires the sim backend")
		}
		return runLive(topo, pat, opt, msgs, cc.Report)
	default:
		return fmt.Errorf("unknown backend %q (want sim or live)", backend)
	}
}

// printReport renders the run report plus the tail of the event timeline.
func printReport(rep obs.RunReport) {
	fmt.Printf("\n%s\n", rep.String())
	if len(rep.Events) > 0 {
		fmt.Println("\nevent timeline (tail):")
		rep.WriteTimeline(os.Stdout, 40)
	}
}

// runSim drives the deterministic engine over the ideal shared objects.
func runSim(topo *groups.Topology, pat *failure.Pattern, opt core.Options, seed int64, msgs []cliconf.MulticastSpec, costs, wantReport bool) error {
	sys := core.NewSystem(topo, pat, opt, seed)
	for _, m := range msgs {
		sys.MulticastClassedAt(m.At, m.Src, m.G, nil, m.Class)
	}
	if !sys.Run() {
		return fmt.Errorf("run did not quiesce within the step budget")
	}
	report(sys.Sh, topo)
	if costs {
		for p := 0; p < topo.NumProcesses(); p++ {
			fmt.Printf("  p%d: steps=%d charges=%d\n",
				p, sys.Eng.Steps(groups.Process(p)), sys.Eng.Charges(groups.Process(p)))
		}
	}
	if wantReport {
		printReport(sys.Report())
	}
	return verdict(sys.Check())
}

// runLive drives the replicated substrate: paxos-backed logs over an
// in-process transport, ticks of 1ms standing in for virtual time.
func runLive(topo *groups.Topology, pat *failure.Pattern, opt core.Options, msgs []cliconf.MulticastSpec, wantReport bool) error {
	sys := live.NewSystem(topo, pat, net.New(topo.NumProcesses()), live.Config{Opt: opt})
	sys.Start()
	defer sys.Stop()
	for _, m := range msgs {
		for sys.Now() < m.At {
			time.Sleep(time.Millisecond)
		}
		sys.MulticastClassed(m.Src, m.G, nil, m.Class)
	}
	if !sys.AwaitDelivery(60 * time.Second) {
		return fmt.Errorf("live run did not reach full delivery within 60s")
	}
	sys.Stop()
	report(sys.Sh, topo)
	if wantReport {
		printReport(sys.Report())
	}
	return verdict(sys.Check())
}

// report prints the global delivery trace and the per-process orders.
func report(sh *core.Shared, topo *groups.Topology) {
	fmt.Println("delivery trace (global order):")
	perProc := make(map[groups.Process][]int64)
	for _, d := range sh.Deliveries() {
		m := sh.Reg.Get(d.M)
		fmt.Printf("  t=%-6d p%d delivers m%d (src=p%d dst=g%d)\n", d.T, d.P, d.M, m.Src, m.Dst)
		perProc[d.P] = append(perProc[d.P], int64(d.M))
	}
	fmt.Println("\nper-process orders:")
	for p := 0; p < topo.NumProcesses(); p++ {
		fmt.Printf("  p%d: %v\n", p, perProc[groups.Process(p)])
	}
}

// verdict prints the specification-check outcome.
func verdict(violations []*check.Violation) error {
	if len(violations) == 0 {
		fmt.Println("\nspecification check: OK")
		return nil
	}
	fmt.Println("\nspecification check FAILED:")
	for _, v := range violations {
		fmt.Printf("  %v\n", v)
	}
	return fmt.Errorf("%d violations", len(violations))
}
