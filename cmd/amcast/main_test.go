package main

import (
	"strings"
	"testing"
)

func TestRunBasicScenario(t *testing.T) {
	err := run("0,1;1,2", "0>0;2>1", "", "vanilla", "sim", 1, 8, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithCrashAndCosts(t *testing.T) {
	err := run("0,1;1,2;0,2,3;0,3,4", "0>0;1>1;2>2@20", "1@40", "strict", "sim", 2, 6, true, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPairwiseOnChain(t *testing.T) {
	if err := run("0,1;1,2,3;3,4", "0>0;4>2", "", "pairwise", "sim", 3, 8, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunStrongVariant(t *testing.T) {
	if err := run("0,1,2;2,3,4", "0>0;3>1", "", "strong", "sim", 4, 8, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunLiveBackend(t *testing.T) {
	if err := run("0,1;1,2;0,2", "0>0;1>1;2>2", "", "vanilla", "live", 1, 8, false, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		groups, msgs, crash, variant, backend string
		costs                                 bool
	}{
		{"0,x", "0>0", "", "vanilla", "sim", false},    // bad member
		{"0,1", "0>0", "1@x", "vanilla", "sim", false}, // bad crash time
		{"0,1", "0-0", "", "vanilla", "sim", false},    // bad message spec
		{"0,1", "0>0", "", "nonsense", "sim", false},   // unknown variant
		{"0,1", "0>0@x", "", "vanilla", "sim", false},  // bad message time
		{"0,1", "0>0", "1", "vanilla", "sim", false},   // crash without time
		{"0,1", "0>0", "", "vanilla", "etcd", false},   // unknown backend
		{"0,1", "0>0", "", "vanilla", "live", true},    // costs need sim
	}
	for _, c := range cases {
		if err := run(c.groups, c.msgs, c.crash, c.variant, c.backend, 1, 8, c.costs, false); err == nil {
			t.Errorf("spec %+v accepted", c)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("spec %+v panicked", c)
		}
	}
}
