package main

import (
	"strings"
	"testing"

	"repro/internal/cliconf"
)

func TestRunBasicScenario(t *testing.T) {
	cc := &cliconf.Common{Groups: "0,1;1,2", Msgs: "0>0;2>1", Variant: "vanilla", Delay: 1, Seed: 8}
	if err := run(cc, "sim", false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithCrashAndCosts(t *testing.T) {
	cc := &cliconf.Common{
		Groups: "0,1;1,2;0,2,3;0,3,4", Msgs: "0>0;1>1;2>2@20", Crash: "1@40",
		Variant: "strict", Delay: 2, Seed: 6, Report: true,
	}
	if err := run(cc, "sim", true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPairwiseOnChain(t *testing.T) {
	cc := &cliconf.Common{Groups: "0,1;1,2,3;3,4", Msgs: "0>0;4>2", Variant: "pairwise", Delay: 3, Seed: 8}
	if err := run(cc, "sim", false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunStrongVariant(t *testing.T) {
	cc := &cliconf.Common{Groups: "0,1,2;2,3,4", Msgs: "0>0;3>1", Variant: "strong", Delay: 4, Seed: 8}
	if err := run(cc, "sim", false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunLiveBackend(t *testing.T) {
	cc := &cliconf.Common{Groups: "0,1;1,2;0,2", Msgs: "0>0;1>1;2>2", Variant: "vanilla", Delay: 1, Seed: 8, Report: true}
	if err := run(cc, "live", false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		groups, msgs, crash, variant, backend string
		costs                                 bool
	}{
		{"0,x", "0>0", "", "vanilla", "sim", false},    // bad member
		{"0,1", "0>0", "1@x", "vanilla", "sim", false}, // bad crash time
		{"0,1", "0-0", "", "vanilla", "sim", false},    // bad message spec
		{"0,1", "0>0", "", "nonsense", "sim", false},   // unknown variant
		{"0,1", "0>0@x", "", "vanilla", "sim", false},  // bad message time
		{"0,1", "0>0", "1", "vanilla", "sim", false},   // crash without time
		{"0,1", "0>0", "", "vanilla", "etcd", false},   // unknown backend
		{"0,1", "0>0", "", "vanilla", "live", true},    // costs need sim
	}
	for _, c := range cases {
		cc := &cliconf.Common{Groups: c.groups, Msgs: c.msgs, Crash: c.crash, Variant: c.variant, Delay: 1, Seed: 8}
		if err := run(cc, c.backend, c.costs); err == nil {
			t.Errorf("spec %+v accepted", c)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("spec %+v panicked", c)
		}
	}
}
