package main

import (
	"strings"
	"testing"
)

func TestRunBasicScenario(t *testing.T) {
	err := run("0,1;1,2", "0>0;2>1", "", "vanilla", 1, 8, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithCrashAndCosts(t *testing.T) {
	err := run("0,1;1,2;0,2,3;0,3,4", "0>0;1>1;2>2@20", "1@40", "strict", 2, 6, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPairwiseOnChain(t *testing.T) {
	if err := run("0,1;1,2,3;3,4", "0>0;4>2", "", "pairwise", 3, 8, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunStrongVariant(t *testing.T) {
	if err := run("0,1,2;2,3,4", "0>0;3>1", "", "strong", 4, 8, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		groups, msgs, crash, variant string
	}{
		{"0,x", "0>0", "", "vanilla"},    // bad member
		{"0,1", "0>0", "1@x", "vanilla"}, // bad crash time
		{"0,1", "0-0", "", "vanilla"},    // bad message spec
		{"0,1", "0>0", "", "nonsense"},   // unknown variant
		{"0,1", "0>0@x", "", "vanilla"},  // bad message time
		{"0,1", "0>0", "1", "vanilla"},   // crash without time
	}
	for _, c := range cases {
		if err := run(c.groups, c.msgs, c.crash, c.variant, 1, 8, false); err == nil {
			t.Errorf("spec %+v accepted", c)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("spec %+v panicked", c)
		}
	}
}
