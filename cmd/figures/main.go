// Command figures regenerates the paper's figures and tables as textual
// artifacts computed by the library:
//
//	figure1  — the running example's intersection graphs and cyclic families
//	table1   — the weakest-failure-detector landscape, with the measured
//	           outcome of each row's scenario
//	table2   — the base invariants (Claims 2-15), checked on a random run
//	figure3  — Algorithm 3's γ emulation on the Figure 1 topology
//	figure45 — Algorithm 5's traversal and decision gadget
//
// Run with no argument to print everything.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

func main() {
	which := ""
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	all := which == ""
	if all || which == "figure1" {
		figure1()
	}
	if all || which == "table1" {
		table1()
	}
	if all || which == "figure3" {
		figure3()
	}
	if all || which == "figure45" {
		figure45()
	}
}

func header(s string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", 72))
}

// figure1 recomputes every fact the paper states about Figure 1.
func figure1() {
	header("Figure 1 — groups g1..g4 and the cyclic families")
	topo := groups.Figure1()
	fmt.Println("groups:")
	for g := 0; g < topo.NumGroups(); g++ {
		fmt.Printf("  g%d = %v\n", g+1, topo.Group(groups.GroupID(g)))
	}
	fmt.Println("cyclic families (subsets of G with hamiltonian intersection graph):")
	for _, f := range topo.Families() {
		var names []string
		for _, g := range f.Groups.Members() {
			names = append(names, fmt.Sprintf("g%d", g+1))
		}
		fmt.Printf("  {%s}  closed paths: %d\n", strings.Join(names, ","), len(f.CPaths))
	}
	fmt.Printf("F(g2) has %d families (paper: {f, f''})\n", len(topo.FamiliesOf(1)))
	fmt.Printf("F(p1) has %d families (paper: all of F)\n", len(topo.FamiliesOfProcess(0)))
	fmt.Printf("F(p5) has %d families (paper: none)\n", len(topo.FamiliesOfProcess(4)))
	crashed := groups.NewProcSet(1)
	for _, f := range topo.Families() {
		fmt.Printf("  faulty(%v) with p2 crashed: %v\n", f.Groups, topo.FamilyFaulty(f, crashed))
	}
}

// table1 replays each row's scenario and reports the measured outcome.
func table1() {
	header("Table 1 — the weakest failure detector for atomic multicast")
	fmt.Printf("%-34s %-26s %s\n", "row", "detector", "measured")

	// Non-genuine / global: Ω ∧ Σ (atomic broadcast baseline).
	topo := groups.Figure1()
	bs := baseline.NewBroadcastSystem(topo, failure.NewPattern(5), 1)
	bs.Multicast(0, 0, nil)
	bs.Run()
	busy := 0
	for p := 0; p < 5; p++ {
		if bs.Eng.TookSteps(groups.Process(p)) {
			busy++
		}
	}
	fmt.Printf("%-34s %-26s delivers; %d/5 processes busy (not genuine)\n",
		"non-genuine, global order", "Ω ∧ Σ", busy)

	// Genuine, global order: μ.
	pat := failure.NewPattern(5).WithCrash(1, 35)
	s := core.NewSystem(topo, pat, core.Options{FD: fd.Options{Delay: 8}}, 2)
	s.Multicast(0, 0, nil)
	s.Multicast(2, 1, nil)
	s.Multicast(3, 2, nil)
	s.Multicast(4, 3, nil)
	ok := s.Run() && len(s.Check()) == 0
	fmt.Printf("%-34s %-26s solves with p2 faulty: %v\n",
		"genuine, global order (§4, §5)", "μ = ∧Σ_{g∩h} ∧ ∧Ω_g ∧ γ", ok)

	// Strict: μ ∧ 1^{g∩h}.
	s2 := core.NewSystem(topo, pat, core.Options{Variant: core.Strict, FD: fd.Options{Delay: 8}}, 3)
	s2.Multicast(0, 0, nil)
	s2.Multicast(2, 2, nil)
	ok2 := s2.Run() && len(s2.Check()) == 0
	fmt.Printf("%-34s %-26s real-time order holds: %v\n",
		"strict order (§6.1)", "μ ∧ ∧1^{g∩h}", ok2)

	// Pairwise: no γ, acyclic topology.
	chain := groups.MustNew(5, groups.NewProcSet(0, 1), groups.NewProcSet(1, 2, 3), groups.NewProcSet(3, 4))
	s3 := core.NewSystem(chain, failure.NewPattern(5), core.Options{Variant: core.Pairwise}, 4)
	s3.Multicast(0, 0, nil)
	s3.Multicast(2, 1, nil)
	s3.Multicast(4, 2, nil)
	ok3 := s3.Run() && len(s3.Check()) == 0
	fmt.Printf("%-34s %-26s solves without γ: %v\n",
		"pairwise order (§7)", "∧Σ_{g∩h} ∧ ∧Ω_g", ok3)

	// Strongly genuine, F = ∅: μ ∧ ∧Ω_{g∩h}.
	acyc := groups.MustNew(5, groups.NewProcSet(0, 1, 2), groups.NewProcSet(2, 3, 4))
	s4 := core.NewSystem(acyc, failure.NewPattern(5), core.Options{Variant: core.StronglyGenuine}, 5)
	s4.Multicast(0, 0, nil)
	ok4 := s4.Run() && len(s4.Check()) == 0
	fmt.Printf("%-34s %-26s group parallelism: %v\n",
		"strongly genuine, F=∅ (§6.2)", "μ ∧ ∧Ω_{g∩h}", ok4)

	fmt.Println("\n(∉ U2 row: see TestTable1_U2Insufficient — Σ_{p,q} is not 2-unreliable)")
}

// figure3 runs the γ emulation (Theorem 50 / Figure 3).
func figure3() {
	header("Figure 3 — Algorithm 3: emulating γ from a solution A")
	topo := groups.Figure1()
	pat := failure.NewPattern(5).WithCrash(1, 10)
	em := extract.NewGammaEmulation(topo, pat, core.Options{FD: fd.Options{Delay: 6}}, 6, nil)
	fmt.Println("pattern:", pat)
	fmt.Println("families still output at p1 after stabilisation:")
	for _, f := range em.Families(0, em.Horizon()+50) {
		fmt.Printf("  %v\n", f.Groups)
	}
	fmt.Printf("γ(g1) derived from the emulation: %v\n", em.ActiveEdges(0, 0, em.Horizon()+50))
}

// figure45 runs the Ω extraction's traversal (Figure 4) and gadget search
// (Figure 5).
func figure45() {
	header("Figures 4 & 5 — Algorithm 5: the simulation forest of Appendix B")
	topo := groups.MustNew(4, groups.NewProcSet(0, 1, 2), groups.NewProcSet(1, 2, 3))
	for _, pat := range []*failure.Pattern{
		failure.NewPattern(4),
		failure.NewPattern(4).WithCrash(2, 0),
	} {
		e := extract.NewOmegaExtraction(topo, pat, 0, 1, fd.Options{}, 28)
		fmt.Printf("\npattern %v\n", pat)
		fmt.Println("  root valencies along the chain J_0..J_v (g-valent, h-valent):")
		for i, tags := range e.RootTags() {
			fmt.Printf("    J_%d: (%v, %v)\n", i, tags[0], tags[1])
		}
		idx, univalent, conn, found := e.CriticalIndex()
		fmt.Printf("  critical index %d, univalent=%v, connecting=p%d, found=%v\n",
			idx, univalent, conn, found)
		if found && !univalent {
			if q, kind, ok := e.GadgetKindAt(idx); ok {
				fmt.Printf("  decision gadget (%v) found; deciding process p%d\n", kind, q)
			}
		}
		if l, ok := e.Extract(1); ok {
			fmt.Printf("  extracted Ω_{g∩h} leader: p%d\n", l)
		}
	}
}
