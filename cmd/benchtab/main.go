// Command benchtab regenerates the performance-shaped claims the paper
// motivates genuineness with:
//
//	scaling — the §1/§2.3 argument: with k disjoint destination groups a
//	          genuine protocol pays a constant per-group cost while the
//	          broadcast reduction makes every process pay for every message
//	          (cf. [33, 37]);
//	convoy  — the §6.2 convoy effect (cf. [1, 17]): under vanilla Algorithm 1
//	          a message can wait for a chain of messages spanning other
//	          groups, growing delivery latency with the chain's length.
//
// Costs are simulated-currency metrics (per-process protocol steps, shared-
// object messages, virtual-time latency), the right units for an
// asynchronous-model paper; wall-clock throughput of this implementation is
// in bench_test.go.
//
// The live mode measures the replicated substrate instead: wall-clock
// delivery latency (p50/p99), sustained msgs/sec and real wire packets per
// delivery, across chain topologies of overlapping 3-member groups and
// chaos seeds. -json writes the results (BENCH_live.json in CI), -baseline
// compares the fresh run against a prior document — the before/after of a
// performance change is one command:
//
//	benchtab -short -json BENCH_live.json live
//	benchtab -baseline BENCH_live.json -json BENCH_new.json live
//
// -cpuprofile/-memprofile write pprof profiles of the selected mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

func main() {
	cc := cliconf.Bind(flag.CommandLine, cliconf.ToolBenchtab)
	var (
		shortFlag    = flag.Bool("short", false, "smaller topologies and message counts (CI budget)")
		rateFlag     = flag.Float64("rate", 0, "live-mode load throttle in multicasts/sec (0 = unthrottled burst)")
		countFlag    = flag.Int("count", 0, "live-mode multicasts per run (0 = mode default)")
		conflictFlag = flag.Float64("conflict-rate", 0.1, "conflicting fraction of the generic commuting-mix live rows (1 = skip those rows)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this path at exit")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: -memprofile: %v\n", err)
			}
		}()
	}
	which := flag.Arg(0)
	switch which {
	case "":
		scaling()
		convoy()
		delaySweep()
	case "scaling":
		scaling()
	case "convoy":
		convoy()
	case "delay":
		delaySweep()
	case "live":
		if err := liveBench(*shortFlag, cc.JSON, cc.Baseline, cc.Transport, *rateFlag, *countFlag, *conflictFlag, cc.DataDir, cc.Fsync); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown mode %q (want scaling, convoy, delay or live)\n", which)
		os.Exit(2)
	}
}

// delaySweep shows the synchrony knob: delivery latency of a message whose
// cyclic family fails grows with the detectors' stabilisation delay —
// Algorithm 1 waits exactly as long as γ takes to report the fault.
func delaySweep() {
	header("Detector stabilisation delay vs. delivery latency (g1∩g2 crashes)")
	fmt.Printf("%8s | %16s\n", "delay", "ticks-to-deliver")
	topo := groups.Figure1()
	for _, delay := range []failure.Time{4, 16, 64, 256} {
		pat := failure.NewPattern(5).WithCrash(1, 10)
		s := core.NewSystem(topo, pat, core.Options{FD: fd.Options{Delay: delay}}, 2)
		m := s.Multicast(0, 0, nil)
		s.Run()
		at, ok := s.Sh.FirstDeliveredAt(m.ID)
		if !ok {
			fmt.Printf("%8d | %16s\n", delay, "blocked")
			continue
		}
		fmt.Printf("%8d | %16d\n", delay, at)
	}
	fmt.Println("\nshape: latency tracks the stabilisation delay — the algorithm is")
	fmt.Println("indulgent: safety never depends on the detectors being fast.")
}

func header(s string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 76))
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", 76))
}

// disjointTopo builds k disjoint groups of size 3.
func disjointTopo(k int) *groups.Topology {
	gs := make([]groups.ProcSet, k)
	for i := range gs {
		gs[i] = groups.NewProcSet(
			groups.Process(3*i), groups.Process(3*i+1), groups.Process(3*i+2))
	}
	return groups.MustNew(3*k, gs...)
}

// scaling prints the genuine-vs-broadcast table for growing k.
func scaling() {
	header("Genuine vs. broadcast-based multicast — k disjoint groups, 1 msg/group")
	fmt.Printf("%4s | %16s %12s | %16s %12s\n",
		"k", "genuine msgs/mc", "steps/proc", "bcast msgs/mc", "steps/proc")
	for _, k := range []int{2, 4, 8, 16, 21} {
		topo := disjointTopo(k)
		n := topo.NumProcesses()

		gen := core.NewSystem(topo, failure.NewPattern(n),
			core.Options{ChargeObjects: true, FD: fd.Options{}}, 1)
		for g := 0; g < k; g++ {
			gen.Multicast(groups.Process(3*g), groups.GroupID(g), nil)
		}
		gen.Run()
		genSteps := float64(gen.Eng.TotalSteps()) / float64(n)

		bc := baseline.NewBroadcastSystem(topo, failure.NewPattern(n), 1)
		for g := 0; g < k; g++ {
			bc.Multicast(groups.Process(3*g), groups.GroupID(g), nil)
		}
		bc.Run()
		bcSteps := float64(bc.Eng.TotalSteps()) / float64(n)

		fmt.Printf("%4d | %16.1f %12.1f | %16.1f %12.1f\n",
			k,
			float64(gen.Eng.Messages())/float64(k), genSteps,
			float64(bc.Eng.Messages())/float64(k), bcSteps)
	}
	fmt.Println("\nshape: per multicast, the genuine protocol's cost is constant in k (only")
	fmt.Println("the destination group works), while the broadcast reduction's cost and")
	fmt.Println("every process's step count grow linearly with the system size.")
}

// ringTopo builds a ring of k size-2 groups g_i = {p_i, p_{i+1 mod k}} —
// one cyclic family spanning every group, the worst case for stabilisation
// chains.
func ringTopo(k int) *groups.Topology {
	gs := make([]groups.ProcSet, k)
	for i := range gs {
		gs[i] = groups.NewProcSet(groups.Process(i), groups.Process((i+1)%k))
	}
	return groups.MustNew(k, gs...)
}

// convoy measures the completion latency (all of g0 delivered) of a probe
// message to g0, alone vs. behind a chain of in-flight messages occupying
// the neighbouring intersection logs — the convoy of §6.2: the probe's
// shared member must first finish delivering its neighbour's message, which
// waits on the next link, and so on down the chain.
func convoy() {
	header("Convoy effect — completion latency of a probe to g0 (rounds = ticks/n)")
	fmt.Printf("%6s | %10s | %12s | %7s\n", "ring k", "isolated", "contended", "factor")
	for _, k := range []int{3, 5, 8, 12} {
		topo := ringTopo(k)
		n := topo.NumProcesses()

		lat := func(contended bool) float64 {
			s := core.NewSystem(topo, failure.NewPattern(n), core.Options{}, 3)
			if contended {
				// The whole ring is already busy when the probe arrives.
				for g := k - 1; g >= 1; g-- {
					s.MulticastAt(2, groups.Process(g), groups.GroupID(g), nil)
				}
			}
			probeAt := failure.Time(4)
			s.MulticastAt(probeAt, 0, 0, nil)
			s.Run()
			// Completion: every member of g0 delivered the probe (the
			// highest-ID message addressed to g0).
			var probe int64 = -1
			var done failure.Time = -1
			for _, d := range s.Sh.Deliveries() {
				if int64(d.M) > probe && s.Sh.Reg.Get(d.M).Dst == 0 {
					probe = int64(d.M)
				}
			}
			for _, d := range s.Sh.Deliveries() {
				if int64(d.M) == probe && d.T > done {
					done = d.T
				}
			}
			if done < 0 {
				return -1
			}
			return float64(done-probeAt) / float64(n)
		}
		iso, con := lat(false), lat(true)
		fmt.Printf("%6d | %10.1f | %12.1f | %6.1fx\n", k, iso, con, con/iso)
	}
	fmt.Println("\nshape: alone, the probe completes in a constant number of rounds; with")
	fmt.Println("the ring busy, its stabilisation waits on marks that recurse around the")
	fmt.Println("cyclic family, so the penalty grows with the ring — the §6.2 convoy.")
}
