package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wire"
)

// benchSchemaVersion is the BENCH_live.json schema version. Bump it when
// row or document shape changes meaning; the -baseline delta mode refuses
// to diff documents from a different version (silently comparing mismatched
// shapes produced plausible-looking nonsense). Version 2 added the schema
// field itself, the transport column, and wire-level byte counts. Version 3
// made deliveries/sec a first-class column and added the batching pipeline's
// shape (ops/batch, window depth peak, frames/flush, write drops) — and the
// default load changed from a paced open loop to an unthrottled burst, so
// v2 latency numbers are not comparable. Version 4 added the conflict_rate
// column (1.0 = the vanilla all-conflict rows; < 1.0 = generic-variant
// commuting-mix rows that skip pairwise coordination for commuting
// messages) and fast_deliveries — v3 rows have no conflict_rate, so they
// would silently alias the all-conflict rows. Version 5 added the fsync_mode
// column (mem | file | file-nosync — the write-ahead-log backing of the run)
// plus WAL bytes/op, sync counts and the measured post-run recovery time;
// v4 rows have no fsync_mode, so they would alias the mem rows. Version 6
// added the event-driven scheduler's columns — wakeups/delivery,
// steps/delivery, guard scans and the idle-CPU proxy (timer wakeups +
// skipped scans: work the run did with nothing to do) — and the stepping
// model changed from a 200µs idle poll to wakeup-driven draining, so v5
// latency rows were measured under a different scheduler.
const benchSchemaVersion = 6

// liveRow is one measured configuration of the live bench — a row of
// BENCH_live.json.
type liveRow struct {
	Processes int    `json:"processes"`
	Groups    int    `json:"groups"`
	Transport string `json:"transport"`
	ChaosSeed int64  `json:"chaos_seed"`
	// ConflictRate is the fraction of the load tagged into keyed conflict
	// classes: 1.0 is the vanilla total-order run (every pair conflicts),
	// anything below runs the generic variant where the remaining messages
	// are ClassFree and skip the g∩h coordination entirely.
	ConflictRate float64 `json:"conflict_rate"`
	// FsyncMode is the write-ahead-log backing: "mem" (in-memory group
	// commit, the default substrate), "file" (file WAL, fsync on every
	// commit barrier) or "file-nosync" (file WAL, OS buffering only). The
	// durability tax is the file rows' delta against mem on the same
	// topology.
	FsyncMode          string  `json:"fsync_mode"`
	Multicasts         int64   `json:"multicasts"`
	Deliveries         int64   `json:"deliveries"`
	P50Ms              float64 `json:"p50_ms"`
	P90Ms              float64 `json:"p90_ms"`
	P99Ms              float64 `json:"p99_ms"`
	MaxMs              float64 `json:"max_ms"`
	MsgsPerSec         float64 `json:"msgs_per_sec"`
	DeliveriesPerSec   float64 `json:"deliveries_per_sec"`
	Packets            int64   `json:"packets"`
	PacketsPerDelivery float64 `json:"packets_per_delivery"`
	ChaosInjections    uint64  `json:"chaos_injections,omitempty"`
	// FastDeliveries counts deliveries that skipped the pairwise
	// coordination pipeline (generic variant, commuting messages only).
	FastDeliveries int64   `json:"fast_deliveries,omitempty"`
	WallMs         float64 `json:"wall_ms"`
	// Batching pipeline shape: mean ops per proposed replog batch and the
	// peak number of outstanding windowed accept rounds in any realm.
	AvgBatchOps     float64 `json:"avg_batch_ops"`
	WindowDepthPeak int64   `json:"window_depth_peak"`
	FwdOps          int64   `json:"fwd_ops,omitempty"`
	RemoteOps       int64   `json:"remote_ops,omitempty"`
	// Wire traffic (tcp transport only): real encoded bytes on the socket,
	// the write loops' coalescing factor, and frames lost to failed flushes.
	WireBytesOut   int64   `json:"wire_bytes_out,omitempty"`
	WireFramesOut  int64   `json:"wire_frames_out,omitempty"`
	WireReconnects int64   `json:"wire_reconnects,omitempty"`
	FramesPerFlush float64 `json:"frames_per_flush,omitempty"`
	WireWriteDrops int64   `json:"wire_write_drops,omitempty"`
	// WAL footprint: mean record payload bytes per append, group-commit
	// barriers, and (file rows) the wall time a fresh process took to
	// replay the finished run's logs — the restart cost of this much
	// history.
	WALBytesPerOp float64 `json:"wal_bytes_per_op,omitempty"`
	WALSyncs      int64   `json:"wal_syncs,omitempty"`
	RecoveryMs    float64 `json:"recovery_ms,omitempty"`
	// Scheduler shape (v6): how much stepping work the run's deliveries
	// cost. WakeupsPerDelivery counts notify + timer wakeups per delivery;
	// StepsPerDelivery counts fired actions per delivery; Scans is the
	// number of full guard-scan passes. IdleWork is the idle-CPU proxy —
	// timer wakeups plus version-check-only skipped scans, the residual
	// work a wakeup-driven run performs when nothing is happening.
	WakeupsPerDelivery float64 `json:"wakeups_per_delivery,omitempty"`
	StepsPerDelivery   float64 `json:"steps_per_delivery,omitempty"`
	Scans              int64   `json:"scans,omitempty"`
	IdleWork           int64   `json:"idle_work,omitempty"`
}

// liveDoc is the BENCH_live.json document.
type liveDoc struct {
	Version   int       `json:"version"`
	Generated string    `json:"generated"`
	Short     bool      `json:"short"`
	Runs      []liveRow `json:"runs"`
}

// chainTopo builds the nemesis chain of overlapping 3-member groups
// {0,1,2},{2,3,4},... over n processes (odd n >= 3): every adjacent pair of
// groups shares exactly one process, so pair logs are real and quorums
// survive the shared members staying up.
func chainTopo(n int) (*groups.Topology, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("chain topology needs an odd n >= 3, got %d", n)
	}
	var sets []groups.ProcSet
	for p := 0; p+2 < n; p += 2 {
		var s groups.ProcSet
		s = s.Add(groups.Process(p)).Add(groups.Process(p + 1)).Add(groups.Process(p + 2))
		sets = append(sets, s)
	}
	return groups.New(n, sets...)
}

// liveRun drives one configuration: msgs multicasts round-robin across the
// chain's groups with the sender rotating through each group's members,
// then a full-delivery drain. pace == 0 is the default unthrottled burst —
// the load that exercises the replog batching and the accept window; pace
// > 0 approximates an open load at that interval (-rate). seed != 0 wraps
// the transport in the nemesis with a mild fault mix (faults are lifted
// before the drain so liveness only depends on the protocol, not on the
// schedule being kind). conflictRate < 1 switches the system to the
// generic variant and tags that fraction of the load into a small keyed
// conflict-class space; the rest is ClassFree and may skip coordination.
// fsyncMode selects the WAL backing ("mem" | "file" | "file-nosync"); the
// file modes write real logs under a fresh directory below walDir, measure
// a full post-run replay (the recovery_ms column) and clean up after
// themselves.
func liveRun(n int, seed int64, msgs int, pace time.Duration, transport string, conflictRate float64, fsyncMode, walDir string) (obs.RunReport, error) {
	topo, err := chainTopo(n)
	if err != nil {
		return obs.RunReport{}, err
	}
	var nw net.Transport
	switch transport {
	case "mem":
		nw = net.New(n)
	case "tcp":
		f, err := wire.NewFabric(n)
		if err != nil {
			return obs.RunReport{}, err
		}
		nw = f
	default:
		return obs.RunReport{}, fmt.Errorf("unknown transport %q (want mem or tcp)", transport)
	}
	var c *chaos.Chaos
	if seed != 0 {
		c = chaos.Wrap(nw, seed)
		c.SetFaults(chaos.Faults{
			Drop:     0.005,
			Dup:      0.01,
			DelayMax: 300 * time.Microsecond,
		})
		nw = c
	}
	// LevelCounters: latency samples, coordination and substrate counters
	// without the per-event timeline — the bench measures, it doesn't trace.
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	opt := core.Options{Rec: rec}
	generic := conflictRate < 1
	if generic {
		opt.Variant = core.Generic
		opt.Conflict = msg.ClassesConflict
	}
	cfg := live.Config{Opt: opt}
	var wals map[groups.Process]storage.WAL
	if fsyncMode != "mem" {
		fsync := "sync"
		if fsyncMode == "file-nosync" {
			fsync = "none"
		}
		dir, err := os.MkdirTemp(walDir, "benchtab-wal-")
		if err != nil {
			return obs.RunReport{}, err
		}
		defer os.RemoveAll(dir)
		walDir = dir
		wals = make(map[groups.Process]storage.WAL, n)
		for p := 0; p < n; p++ {
			w, err := cliconf.OpenWAL(dir, fsync, groups.Process(p), rec.WAL())
			if err != nil {
				return obs.RunReport{}, err
			}
			wals[groups.Process(p)] = w
		}
		cfg.Storage = func(p groups.Process) storage.WAL { return wals[p] }
	}
	sys := live.NewSystem(topo, failure.NewPattern(n), nw, cfg)
	sys.Start()
	k := topo.NumGroups()
	// Deterministic conflict mix: out of every 10 messages, the first
	// round(rate*10) land in one of three keyed classes (these order among
	// themselves per key), the rest commute with everything.
	keyed := int(conflictRate*10 + 0.5)
	for i := 0; i < msgs; i++ {
		g := i % k
		// Rotate the sender through the group's three members so submit
		// load spreads instead of serialising behind one process's loop.
		sender := groups.Process(2*g + (i/k)%3)
		if generic {
			class := msg.ClassFree
			if i%10 < keyed {
				class = msg.Class(1 + i%3)
			}
			sys.MulticastClassed(sender, groups.GroupID(g), nil, class)
		} else {
			sys.Multicast(sender, groups.GroupID(g), nil)
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	if c != nil {
		c.SetFaults(chaos.Faults{})
	}
	ok := sys.AwaitDelivery(60 * time.Second)
	sys.Stop()
	if wals != nil {
		// Recovery measurement: close the logs, then replay every one as a
		// restarting process would. The replay feeds the recorder's recovery
		// counters, which the caller reads back as the recovery_ms column.
		for p := 0; p < n; p++ {
			if err := wals[groups.Process(p)].Close(); err != nil {
				return obs.RunReport{}, fmt.Errorf("wal close p%d: %w", p, err)
			}
		}
		for p := 0; p < n; p++ {
			w, err := cliconf.OpenWAL(walDir, "sync", groups.Process(p), rec.WAL())
			if err != nil {
				return obs.RunReport{}, fmt.Errorf("wal reopen p%d: %w", p, err)
			}
			if err := w.Replay(func(storage.Record) error { return nil }); err != nil {
				return obs.RunReport{}, fmt.Errorf("wal replay p%d: %w", p, err)
			}
			if err := w.Close(); err != nil {
				return obs.RunReport{}, fmt.Errorf("wal reclose p%d: %w", p, err)
			}
		}
	}
	rep := sys.Report()
	if !ok {
		return rep, fmt.Errorf("n=%d seed=%d: delivery incomplete after 60s (%d/%d multicasts delivered somewhere)",
			n, seed, rep.Deliveries, rep.Multicasts)
	}
	return rep, nil
}

// liveBench measures the replicated substrate across topology sizes and
// chaos seeds and prints the table; jsonPath != "" also writes the rows as
// the BENCH_live.json document, and baselinePath != "" loads a prior
// document and prints per-topology deltas against it. rate > 0 throttles
// the load to that many multicasts/sec (the open-loop mode; 0 bursts);
// count > 0 overrides the per-run message count. conflictRate < 1 adds
// chaos-free commuting-mix rows at that rate (generic variant) next to
// the all-conflict rows, so the skip-coordination win is in the table.
// The durability rows measure the same workload on real file WALs at the
// smallest topology: one row with the fsync barrier and one without, so the
// fsync tax and the recovery time are in the table. dataDir overrides where
// those logs go (empty = the system temp dir); fsyncMode "none" skips the
// fsync'd row (slow-disk escape hatch).
func liveBench(short bool, jsonPath, baselinePath, transport string, rate float64, count int, conflictRate float64, dataDir, fsyncMode string) error {
	sizes := []int{3, 5, 7}
	seeds := []int64{0, 3}
	msgs := 48
	if short {
		sizes = []int{3, 5}
		msgs = 16
	}
	if count > 0 {
		msgs = count
	}
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	// The run plan: every (size, seed) at conflict rate 1 — the vanilla
	// total-order rows — then one chaos-free commuting-mix row per size.
	// Chaos seeds stay off the mix rows: the gate only reads chaos-free
	// rows, and the nemesis' variance would drown the coordination delta.
	type runCfg struct {
		n     int
		seed  int64
		rate  float64
		fsync string
	}
	var plan []runCfg
	for _, n := range sizes {
		for _, seed := range seeds {
			plan = append(plan, runCfg{n, seed, 1, "mem"})
		}
	}
	if conflictRate < 1 {
		for _, n := range sizes {
			plan = append(plan, runCfg{n, 0, conflictRate, "mem"})
		}
	}
	// Durability rows: chaos-free, all-conflict, smallest topology — the
	// file-WAL delta against the matching mem row is pure storage cost.
	if fsyncMode != "none" {
		plan = append(plan, runCfg{sizes[0], 0, 1, "file"})
	}
	plan = append(plan, runCfg{sizes[0], 0, 1, "file-nosync"})
	header(fmt.Sprintf("Live substrate — wall-clock cost of Algorithm 1 over chain topologies (%s transport)", transport))
	fmt.Printf("%4s %3s %6s %5s %-11s | %5s | %9s %9s | %9s %9s | %7s %7s | %9s %9s\n",
		"n", "k", "seed", "cfl", "wal", "msgs", "p50 ms", "p99 ms", "dlv/sec", "pkts/dlv", "wk/dlv", "stp/dlv", "B/op", "recov ms")
	doc := liveDoc{Version: benchSchemaVersion, Generated: time.Now().UTC().Format(time.RFC3339), Short: short}
	for _, rc := range plan {
		rep, err := liveRun(rc.n, rc.seed, msgs, pace, transport, rc.rate, rc.fsync, dataDir)
		if err != nil {
			return err
		}
		row := liveRow{
			Processes:    rep.Processes,
			Groups:       rep.Groups,
			Transport:    transport,
			ChaosSeed:    rc.seed,
			ConflictRate: rc.rate,
			FsyncMode:    rc.fsync,
			Multicasts:   rep.Multicasts,
			Deliveries:   rep.Deliveries,
			WallMs:       float64(rep.Wall) / float64(time.Millisecond),
		}
		if rep.WallLatency != nil {
			row.P50Ms = rep.WallLatency.P50
			row.P90Ms = rep.WallLatency.P90
			row.P99Ms = rep.WallLatency.P99
			row.MaxMs = rep.WallLatency.Max
		}
		if rep.Wall > 0 {
			row.MsgsPerSec = float64(rep.Multicasts) / rep.Wall.Seconds()
			row.DeliveriesPerSec = float64(rep.Deliveries) / rep.Wall.Seconds()
		}
		if rep.Net != nil {
			row.Packets = rep.Net.Packets
		}
		if ppd, ok := rep.PacketsPerDelivery(); ok {
			row.PacketsPerDelivery = ppd
		}
		row.ChaosInjections = rep.Chaos.Injections()
		row.AvgBatchOps = rep.Replog.MeanBatchOps()
		if rep.Replog != nil {
			row.FwdOps = rep.Replog.FwdOps
			row.RemoteOps = rep.Replog.RemoteOps
		}
		if rep.Paxos != nil {
			row.WindowDepthPeak = rep.Paxos.WindowDepthPeak
		}
		if rep.Conflict != nil {
			row.FastDeliveries = rep.Conflict.FastDeliveries
		}
		if rep.Wire != nil {
			row.WireBytesOut = rep.Wire.BytesOut
			row.WireFramesOut = rep.Wire.FramesEncoded
			row.WireReconnects = rep.Wire.Reconnects
			row.FramesPerFlush = rep.Wire.FramesPerFlush()
			row.WireWriteDrops = rep.Wire.WriteDrops
		}
		if rep.WAL != nil {
			row.WALBytesPerOp = rep.WAL.BytesPerAppend()
			row.WALSyncs = rep.WAL.Syncs
			row.RecoveryMs = float64(rep.WAL.RecoveryNanos) / float64(time.Millisecond)
		}
		if rep.Sched != nil {
			row.Scans = rep.Sched.Scans
			row.IdleWork = rep.Sched.TimerWakeups + rep.Sched.SkippedScans
			if rep.Deliveries > 0 {
				row.WakeupsPerDelivery = float64(rep.Sched.NotifyWakeups+rep.Sched.TimerWakeups) / float64(rep.Deliveries)
				row.StepsPerDelivery = float64(rep.Sched.Actions) / float64(rep.Deliveries)
			}
		}
		doc.Runs = append(doc.Runs, row)
		fmt.Printf("%4d %3d %6d %5.2f %-11s | %5d | %9.2f %9.2f | %9.1f %9.1f | %7.1f %7.1f | %9.1f %9.2f\n",
			row.Processes, row.Groups, rc.seed, rc.rate, rc.fsync, row.Multicasts,
			row.P50Ms, row.P99Ms, row.DeliveriesPerSec, row.PacketsPerDelivery,
			row.WakeupsPerDelivery, row.StepsPerDelivery,
			row.WALBytesPerOp, row.RecoveryMs)
	}
	fmt.Println("\nshape: latency and wire traffic grow with the chain because neighbouring")
	fmt.Println("groups share pair logs; a seeded nemesis adds retransmission work (visible")
	fmt.Println("in pkts/dlv) without moving the median much — indulgence, measured. The")
	fmt.Println("burst load keeps the replog batcher and the accept window busy; -rate")
	fmt.Println("throttles back to an open load. Rows with cfl < 1 run the generic variant:")
	fmt.Println("commuting messages skip the pair logs, so pkts/dlv and p50 sit below the")
	fmt.Println("all-conflict row on the same topology. The wal=file rows re-run the")
	fmt.Println("smallest topology on real write-ahead logs — their delta against the")
	fmt.Println("matching mem row is the durability tax (fsync dominates; file-nosync")
	fmt.Println("isolates the encoding cost), and recov ms is a fresh process replaying")
	fmt.Println("the whole run's logs.")
	if baselinePath != "" {
		if err := printBaselineDeltas(baselinePath, doc.Runs); err != nil {
			return err
		}
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d runs)\n", jsonPath, len(doc.Runs))
	return nil
}

// printBaselineDeltas loads a prior BENCH_live.json and prints, per
// (processes, transport, chaos_seed) row present in both documents, the
// change in p50, p99 and packets/delivery. Negative percentages are
// improvements. Rows only one side measured are listed as unmatched rather
// than silently skipped. A baseline from a different schema version is
// rejected outright: its numbers may mean something else.
func printBaselineDeltas(path string, fresh []liveRow) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var prior liveDoc
	if err := json.Unmarshal(blob, &prior); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	if prior.Version != benchSchemaVersion {
		return fmt.Errorf("-baseline %s: schema version %d, this binary writes version %d — cross-schema deltas are meaningless; regenerate the baseline with this binary",
			path, prior.Version, benchSchemaVersion)
	}
	type rowKey struct {
		n         int
		transport string
		seed      int64
		rate      float64
		fsync     string
	}
	old := make(map[rowKey]liveRow, len(prior.Runs))
	for _, r := range prior.Runs {
		old[rowKey{r.Processes, r.Transport, r.ChaosSeed, r.ConflictRate, r.FsyncMode}] = r
	}
	pct := func(now, was float64) string {
		if was == 0 {
			return "    n/a"
		}
		return fmt.Sprintf("%+6.1f%%", 100*(now-was)/was)
	}
	header(fmt.Sprintf("Delta vs baseline %s (negative = better, except dlv/s)", path))
	fmt.Printf("%4s %6s | %9s → %9s %7s | %8s → %8s %7s | %8s → %8s %7s\n",
		"n", "seed", "p50 was", "p50 now", "Δ", "dlv/s was", "dlv/s now", "Δ", "pkts was", "pkts now", "Δ")
	matched := 0
	for _, r := range fresh {
		was, ok := old[rowKey{r.Processes, r.Transport, r.ChaosSeed, r.ConflictRate, r.FsyncMode}]
		if !ok {
			fmt.Printf("%4d %6d | (no baseline row)\n", r.Processes, r.ChaosSeed)
			continue
		}
		matched++
		fmt.Printf("%4d %6d | %9.2f → %9.2f %7s | %8.1f → %8.1f %7s | %8.1f → %8.1f %7s\n",
			r.Processes, r.ChaosSeed,
			was.P50Ms, r.P50Ms, pct(r.P50Ms, was.P50Ms),
			was.DeliveriesPerSec, r.DeliveriesPerSec, pct(r.DeliveriesPerSec, was.DeliveriesPerSec),
			was.PacketsPerDelivery, r.PacketsPerDelivery, pct(r.PacketsPerDelivery, was.PacketsPerDelivery))
	}
	if matched == 0 {
		return fmt.Errorf("-baseline %s: no rows match the fresh run (different topology set?)", path)
	}
	return nil
}
