package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/chaos"
	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wire"
)

// chainTopo builds the nemesis chain of overlapping 3-member groups
// {0,1,2},{2,3,4},... over n processes (odd n >= 3): every adjacent pair of
// groups shares exactly one process, so pair logs are real and quorums
// survive the shared members staying up.
func chainTopo(n int) (*groups.Topology, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("chain topology needs an odd n >= 3, got %d", n)
	}
	var sets []groups.ProcSet
	for p := 0; p+2 < n; p += 2 {
		var s groups.ProcSet
		s = s.Add(groups.Process(p)).Add(groups.Process(p + 1)).Add(groups.Process(p + 2))
		sets = append(sets, s)
	}
	return groups.New(n, sets...)
}

// liveRun drives one configuration: msgs multicasts round-robin across the
// chain's groups with the sender rotating through each group's members,
// then a full-delivery drain. pace == 0 is the default unthrottled burst —
// the load that exercises the replog batching and the accept window; pace
// > 0 approximates an open load at that interval (-rate). seed != 0 wraps
// the transport in the nemesis with a mild fault mix (faults are lifted
// before the drain so liveness only depends on the protocol, not on the
// schedule being kind). conflictRate < 1 switches the system to the
// generic variant and tags that fraction of the load into a small keyed
// conflict-class space; the rest is ClassFree and may skip coordination.
// fsyncMode selects the WAL backing ("mem" | "file" | "file-nosync"); the
// file modes write real logs under a fresh directory below walDir, measure
// a full post-run replay (the recovery_ms column) and clean up after
// themselves.
func liveRun(n int, seed int64, msgs int, pace time.Duration, transport string, conflictRate float64, fsyncMode, walDir string) (obs.RunReport, error) {
	topo, err := chainTopo(n)
	if err != nil {
		return obs.RunReport{}, err
	}
	var nw net.Transport
	switch transport {
	case "mem":
		nw = net.New(n)
	case "tcp":
		f, err := wire.NewFabric(n)
		if err != nil {
			return obs.RunReport{}, err
		}
		nw = f
	default:
		return obs.RunReport{}, fmt.Errorf("unknown transport %q (want mem or tcp)", transport)
	}
	var c *chaos.Chaos
	if seed != 0 {
		c = chaos.Wrap(nw, seed)
		c.SetFaults(chaos.Faults{
			Drop:     0.005,
			Dup:      0.01,
			DelayMax: 300 * time.Microsecond,
		})
		nw = c
	}
	// LevelCounters: latency samples, coordination and substrate counters
	// without the per-event timeline — the bench measures, it doesn't trace.
	rec := obs.NewRecorder(obs.Options{Level: obs.LevelCounters, WallClock: true})
	opt := core.Options{Rec: rec}
	generic := conflictRate < 1
	if generic {
		opt.Variant = core.Generic
		opt.Conflict = msg.ClassesConflict
	}
	cfg := live.Config{Opt: opt}
	var wals map[groups.Process]storage.WAL
	if fsyncMode != "mem" {
		fsync := "sync"
		if fsyncMode == "file-nosync" {
			fsync = "none"
		}
		dir, err := os.MkdirTemp(walDir, "benchtab-wal-")
		if err != nil {
			return obs.RunReport{}, err
		}
		defer os.RemoveAll(dir)
		walDir = dir
		wals = make(map[groups.Process]storage.WAL, n)
		for p := 0; p < n; p++ {
			w, err := cliconf.OpenWAL(dir, fsync, groups.Process(p), rec.WAL())
			if err != nil {
				return obs.RunReport{}, err
			}
			wals[groups.Process(p)] = w
		}
		cfg.Storage = func(p groups.Process) storage.WAL { return wals[p] }
	}
	sys := live.NewSystem(topo, failure.NewPattern(n), nw, cfg)
	sys.Start()
	k := topo.NumGroups()
	// Deterministic conflict mix: out of every 10 messages, the first
	// round(rate*10) land in one of three keyed classes (these order among
	// themselves per key), the rest commute with everything.
	keyed := int(conflictRate*10 + 0.5)
	for i := 0; i < msgs; i++ {
		g := i % k
		// Rotate the sender through the group's three members so submit
		// load spreads instead of serialising behind one process's loop.
		sender := groups.Process(2*g + (i/k)%3)
		if generic {
			class := msg.ClassFree
			if i%10 < keyed {
				class = msg.Class(1 + i%3)
			}
			sys.MulticastClassed(sender, groups.GroupID(g), nil, class)
		} else {
			sys.Multicast(sender, groups.GroupID(g), nil)
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	if c != nil {
		c.SetFaults(chaos.Faults{})
	}
	ok := sys.AwaitDelivery(60 * time.Second)
	sys.Stop()
	if wals != nil {
		// Recovery measurement: close the logs, then replay every one as a
		// restarting process would. The replay feeds the recorder's recovery
		// counters, which the caller reads back as the recovery_ms column.
		for p := 0; p < n; p++ {
			if err := wals[groups.Process(p)].Close(); err != nil {
				return obs.RunReport{}, fmt.Errorf("wal close p%d: %w", p, err)
			}
		}
		for p := 0; p < n; p++ {
			w, err := cliconf.OpenWAL(walDir, "sync", groups.Process(p), rec.WAL())
			if err != nil {
				return obs.RunReport{}, fmt.Errorf("wal reopen p%d: %w", p, err)
			}
			if err := w.Replay(func(storage.Record) error { return nil }); err != nil {
				return obs.RunReport{}, fmt.Errorf("wal replay p%d: %w", p, err)
			}
			if err := w.Close(); err != nil {
				return obs.RunReport{}, fmt.Errorf("wal reclose p%d: %w", p, err)
			}
		}
	}
	rep := sys.Report()
	if !ok {
		return rep, fmt.Errorf("n=%d seed=%d: delivery incomplete after 60s (%d/%d multicasts delivered somewhere)",
			n, seed, rep.Deliveries, rep.Multicasts)
	}
	return rep, nil
}

// liveBench measures the replicated substrate across topology sizes and
// chaos seeds and prints the table; jsonPath != "" also writes the rows as
// the BENCH_live.json document, and baselinePath != "" loads a prior
// document and prints per-topology deltas against it. rate > 0 throttles
// the load to that many multicasts/sec (the open-loop mode; 0 bursts);
// count > 0 overrides the per-run message count. conflictRate < 1 adds
// chaos-free commuting-mix rows at that rate (generic variant) next to
// the all-conflict rows, so the skip-coordination win is in the table.
// The durability rows measure the same workload on real file WALs at the
// smallest topology: one row with the fsync barrier and one without, so the
// fsync tax and the recovery time are in the table. dataDir overrides where
// those logs go (empty = the system temp dir); fsyncMode "none" skips the
// fsync'd row (slow-disk escape hatch).
func liveBench(short bool, jsonPath, baselinePath, transport string, rate float64, count int, conflictRate float64, dataDir, fsyncMode string) error {
	sizes := []int{3, 5, 7}
	seeds := []int64{0, 3}
	msgs := 48
	if short {
		sizes = []int{3, 5}
		msgs = 16
	}
	if count > 0 {
		msgs = count
	}
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	// The run plan: every (size, seed) at conflict rate 1 — the vanilla
	// total-order rows — then one chaos-free commuting-mix row per size.
	// Chaos seeds stay off the mix rows: the gate only reads chaos-free
	// rows, and the nemesis' variance would drown the coordination delta.
	type runCfg struct {
		n     int
		seed  int64
		rate  float64
		fsync string
	}
	var plan []runCfg
	for _, n := range sizes {
		for _, seed := range seeds {
			plan = append(plan, runCfg{n, seed, 1, "mem"})
		}
	}
	if conflictRate < 1 {
		for _, n := range sizes {
			plan = append(plan, runCfg{n, 0, conflictRate, "mem"})
		}
	}
	// Durability rows: chaos-free, all-conflict, smallest topology — the
	// file-WAL delta against the matching mem row is pure storage cost.
	if fsyncMode != "none" {
		plan = append(plan, runCfg{sizes[0], 0, 1, "file"})
	}
	plan = append(plan, runCfg{sizes[0], 0, 1, "file-nosync"})
	header(fmt.Sprintf("Live substrate — wall-clock cost of Algorithm 1 over chain topologies (%s transport)", transport))
	fmt.Printf("%4s %3s %6s %5s %-11s | %5s | %9s %9s | %9s %9s | %7s %7s | %9s %9s\n",
		"n", "k", "seed", "cfl", "wal", "msgs", "p50 ms", "p99 ms", "dlv/sec", "pkts/dlv", "wk/dlv", "stp/dlv", "B/op", "recov ms")
	doc := benchfmt.NewDoc(short)
	for _, rc := range plan {
		rep, err := liveRun(rc.n, rc.seed, msgs, pace, transport, rc.rate, rc.fsync, dataDir)
		if err != nil {
			return err
		}
		row := benchfmt.FromReport(rep)
		row.Transport = transport
		row.ChaosSeed = rc.seed
		row.ConflictRate = rc.rate
		row.FsyncMode = rc.fsync
		if rate > 0 {
			row.OfferedPerSec = rate
		}
		doc.Runs = append(doc.Runs, row)
		fmt.Printf("%4d %3d %6d %5.2f %-11s | %5d | %9.2f %9.2f | %9.1f %9.1f | %7.1f %7.1f | %9.1f %9.2f\n",
			row.Processes, row.Groups, rc.seed, rc.rate, rc.fsync, row.Multicasts,
			row.P50Ms, row.P99Ms, row.DeliveriesPerSec, row.PacketsPerDelivery,
			row.WakeupsPerDelivery, row.StepsPerDelivery,
			row.WALBytesPerOp, row.RecoveryMs)
	}
	fmt.Println("\nshape: latency and wire traffic grow with the chain because neighbouring")
	fmt.Println("groups share pair logs; a seeded nemesis adds retransmission work (visible")
	fmt.Println("in pkts/dlv) without moving the median much — indulgence, measured. The")
	fmt.Println("burst load keeps the replog batcher and the accept window busy; -rate")
	fmt.Println("throttles back to an open load. Rows with cfl < 1 run the generic variant:")
	fmt.Println("commuting messages skip the pair logs, so pkts/dlv and p50 sit below the")
	fmt.Println("all-conflict row on the same topology. The wal=file rows re-run the")
	fmt.Println("smallest topology on real write-ahead logs — their delta against the")
	fmt.Println("matching mem row is the durability tax (fsync dominates; file-nosync")
	fmt.Println("isolates the encoding cost), and recov ms is a fresh process replaying")
	fmt.Println("the whole run's logs.")
	if baselinePath != "" {
		if err := printBaselineDeltas(baselinePath, doc.Runs); err != nil {
			return err
		}
	}
	if jsonPath == "" {
		return nil
	}
	if err := doc.Write(jsonPath); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d runs)\n", jsonPath, len(doc.Runs))
	return nil
}

// printBaselineDeltas loads a prior BENCH_live.json and prints, per
// (processes, transport, chaos_seed) row present in both documents, the
// change in p50, p99 and packets/delivery. Negative percentages are
// improvements. Rows only one side measured are listed as unmatched rather
// than silently skipped. A baseline from a different schema version is
// rejected outright: its numbers may mean something else.
func printBaselineDeltas(path string, fresh []benchfmt.LiveRow) error {
	prior, err := benchfmt.Load(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	if err := prior.CheckVersion(path); err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	type rowKey struct {
		n         int
		transport string
		seed      int64
		rate      float64
		fsync     string
	}
	old := make(map[rowKey]benchfmt.LiveRow, len(prior.Runs))
	for _, r := range prior.Runs {
		old[rowKey{r.Processes, r.Transport, r.ChaosSeed, r.ConflictRate, r.FsyncMode}] = r
	}
	pct := func(now, was float64) string {
		if was == 0 {
			return "    n/a"
		}
		return fmt.Sprintf("%+6.1f%%", 100*(now-was)/was)
	}
	header(fmt.Sprintf("Delta vs baseline %s (negative = better, except dlv/s)", path))
	fmt.Printf("%4s %6s | %9s → %9s %7s | %8s → %8s %7s | %8s → %8s %7s\n",
		"n", "seed", "p50 was", "p50 now", "Δ", "dlv/s was", "dlv/s now", "Δ", "pkts was", "pkts now", "Δ")
	matched := 0
	for _, r := range fresh {
		was, ok := old[rowKey{r.Processes, r.Transport, r.ChaosSeed, r.ConflictRate, r.FsyncMode}]
		if !ok {
			fmt.Printf("%4d %6d | (no baseline row)\n", r.Processes, r.ChaosSeed)
			continue
		}
		matched++
		fmt.Printf("%4d %6d | %9.2f → %9.2f %7s | %8.1f → %8.1f %7s | %8.1f → %8.1f %7s\n",
			r.Processes, r.ChaosSeed,
			was.P50Ms, r.P50Ms, pct(r.P50Ms, was.P50Ms),
			was.DeliveriesPerSec, r.DeliveriesPerSec, pct(r.DeliveriesPerSec, was.DeliveriesPerSec),
			was.PacketsPerDelivery, r.PacketsPerDelivery, pct(r.PacketsPerDelivery, was.PacketsPerDelivery))
	}
	if matched == 0 {
		return fmt.Errorf("-baseline %s: no rows match the fresh run (different topology set?)", path)
	}
	return nil
}
