package main

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// bench is the sample set of one benchmark across -count repetitions.
type bench struct {
	NsPerOp  []float64 // one per repetition
	AllocsOp []int64   // one per repetition (present only with -benchmem)
}

// benchLine matches one result line of `go test -bench` output. The
// -GOMAXPROCS suffix is stripped so baselines survive core-count changes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op(.*)$`)

// parseBench reads `go test -bench` output into per-benchmark sample sets.
// Lines that are not benchmark results (package headers, PASS, custom
// log output) are ignored.
func parseBench(path string) (map[string]*bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*bench)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := out[m[1]]
		if b == nil {
			b = &bench{}
			out[m[1]] = b
		}
		b.NsPerOp = append(b.NsPerOp, ns)
		// The tail holds "value unit" pairs (B/op, allocs/op, and any
		// custom testing.B metrics); pick allocs/op when present.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] == "allocs/op" {
				if n, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					b.AllocsOp = append(b.AllocsOp, n)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines", path)
	}
	return out, nil
}

// maxAllocs is the worst allocs/op over the repetitions (allocs are
// deterministic per run; the max guards against a flaky low outlier
// hiding a growth).
func (b *bench) maxAllocs() (int64, bool) {
	if len(b.AllocsOp) == 0 {
		return 0, false
	}
	m := b.AllocsOp[0]
	for _, v := range b.AllocsOp[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}

// sortedNames returns the union of benchmark names in deterministic order.
func sortedNames(a, b map[string]*bench) []string {
	seen := make(map[string]bool)
	var names []string
	for n := range a {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range b {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
