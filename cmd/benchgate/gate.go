package main

import (
	"fmt"
	"io"

	"repro/internal/benchfmt"
)

// microGate compares candidate micro-benchmark output to the baseline and
// reports whether any gate failed.
func microGate(w io.Writer, oldPath, newPath string, alpha, ratioMax float64) (failed bool, err error) {
	if oldPath == "" || newPath == "" {
		return false, fmt.Errorf("micro: -old and -new are required")
	}
	old, err := parseBench(oldPath)
	if err != nil {
		return false, err
	}
	cur, err := parseBench(newPath)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "%-40s %12s %12s %8s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "p", "verdict")
	for _, name := range sortedNames(old, cur) {
		o, n := old[name], cur[name]
		switch {
		case o == nil:
			fmt.Fprintf(w, "%-40s %12s %12.1f %8s %8s  new (no baseline)\n",
				name, "-", median(n.NsPerOp), "-", "-")
			continue
		case n == nil:
			fmt.Fprintf(w, "%-40s %12.1f %12s %8s %8s  missing from candidate\n",
				name, median(o.NsPerOp), "-", "-", "-")
			failed = true
			continue
		}
		om, nm := median(o.NsPerOp), median(n.NsPerOp)
		ratio := nm / om
		p := mannWhitneyP(o.NsPerOp, n.NsPerOp)
		verdict := "ok"
		// ns/op: fail only on significant AND large. With too few
		// repetitions for the test (either side < 3), the ratio alone
		// gates — there is no significance to lean on.
		small := len(o.NsPerOp) < 3 || len(n.NsPerOp) < 3
		if ratio > ratioMax && (small || p < alpha) {
			verdict = fmt.Sprintf("FAIL: %.2fx slower (p=%.3f)", ratio, p)
			failed = true
		}
		// allocs/op: machine-independent, any growth fails.
		if oa, ok := o.maxAllocs(); ok {
			if na, ok2 := n.maxAllocs(); ok2 && na > oa {
				verdict = fmt.Sprintf("FAIL: allocs/op %d -> %d", oa, na)
				failed = true
			}
		}
		fmt.Fprintf(w, "%-40s %12.1f %12.1f %8.2f %8.3f  %s\n", name, om, nm, ratio, p, verdict)
	}
	return failed, nil
}

// liveRowKey identifies a live row across documents. ConflictRate joined
// the key in schema v4: the commuting-mix rows (rate < 1) share a topology
// with the all-conflict rows (rate 1) and must not alias them. FsyncMode
// joined in v5 for the same reason: the durability rows (file, file-nosync)
// re-run a topology the mem rows already measure. Scenario and WorkloadSeed
// joined in v7: loadsim campaign rows are keyed by the scenario they ran
// and the seed that replays it (benchtab sweep rows carry the zero values).
type liveRowKey struct {
	Scenario     string
	WorkloadSeed int64
	Processes    int
	Groups       int
	Transport    string
	ChaosSeed    int64
	ConflictRate float64
	FsyncMode    string
}

func keyOf(r benchfmt.LiveRow) liveRowKey {
	return liveRowKey{
		Scenario:     r.Scenario,
		WorkloadSeed: r.WorkloadSeed,
		Processes:    r.Processes,
		Groups:       r.Groups,
		Transport:    r.Transport,
		ChaosSeed:    r.ChaosSeed,
		ConflictRate: r.ConflictRate,
		FsyncMode:    r.FsyncMode,
	}
}

// loadLive reads a BENCH document and refuses any schema version this
// binary does not speak — a v6 baseline against a v7 candidate (or the
// reverse) must fail loudly here, not surface as mass row mismatches.
func loadLive(path string) (*benchfmt.LiveDoc, error) {
	d, err := benchfmt.Load(path)
	if err != nil {
		return nil, err
	}
	if err := d.CheckVersion(path); err != nil {
		return nil, err
	}
	if len(d.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs", path)
	}
	return &d, nil
}

// liveGate compares a fresh benchtab live document against a baseline.
// Only chaos-free rows gate; packets/delivery is the protocol-cost check
// and deliveries/sec the catastrophic-throughput floor. Durability rows
// (fsync_mode != "mem") keep the packets gate — storage does not change the
// wire protocol — but use fileDlvFloor for throughput: fsync latency is a
// property of the runner's disk, and a shared-CI runner's can be an order
// of magnitude worse than the baseline machine's.
func liveGate(w io.Writer, oldPath, newPath string, pktsSlack, dlvFloor, fileDlvFloor float64) (failed bool, err error) {
	if oldPath == "" || newPath == "" {
		return false, fmt.Errorf("live: -old and -new are required")
	}
	old, err := loadLive(oldPath)
	if err != nil {
		return false, err
	}
	cur, err := loadLive(newPath)
	if err != nil {
		return false, err
	}
	base := make(map[liveRowKey]benchfmt.LiveRow, len(old.Runs))
	for _, r := range old.Runs {
		base[keyOf(r)] = r
	}
	fmt.Fprintf(w, "%-28s %22s %18s  %s\n", "row", "pkts/dlv old->new", "dlv/sec old->new", "verdict")
	matched := 0
	for _, r := range cur.Runs {
		b, ok := base[keyOf(r)]
		label := fmt.Sprintf("n=%d k=%d %s seed=%d", r.Processes, r.Groups, r.Transport, r.ChaosSeed)
		if r.Scenario != "" {
			label = fmt.Sprintf("%s n=%d k=%d %s", r.Scenario, r.Processes, r.Groups, r.Transport)
		}
		if r.ConflictRate != 1 {
			label = fmt.Sprintf("%s cfl=%.2f", label, r.ConflictRate)
		}
		if r.FsyncMode != "" && r.FsyncMode != "mem" {
			label = fmt.Sprintf("%s %s", label, r.FsyncMode)
		}
		if !ok {
			fmt.Fprintf(w, "%-28s %22s %18s  new row (no baseline)\n", label, "-", "-")
			continue
		}
		matched++
		verdict := "ok"
		if r.ChaosSeed != 0 {
			verdict = "info (chaos row, not gated)"
		} else {
			floor := dlvFloor
			if r.FsyncMode != "" && r.FsyncMode != "mem" {
				floor = fileDlvFloor
			}
			// Replay certificate: two full-length runs of the same (scenario,
			// seed) must consume bit-identical streams. A digest drift with
			// matching counts means the generator changed under the scenario,
			// and every latency delta below is then workload noise.
			if b.StreamDigest != "" && r.StreamDigest != "" &&
				b.Multicasts == r.Multicasts && b.StreamDigest != r.StreamDigest {
				verdict = fmt.Sprintf("FAIL: stream digest %s != baseline %s (generator changed under this scenario?)",
					r.StreamDigest, b.StreamDigest)
				failed = true
			}
			if b.PacketsPerDelivery > 0 && r.PacketsPerDelivery > b.PacketsPerDelivery*pktsSlack {
				verdict = fmt.Sprintf("FAIL: packets/delivery %.1f > %.2fx baseline", r.PacketsPerDelivery, pktsSlack)
				failed = true
			}
			if b.DeliveriesPerSec > 0 && r.DeliveriesPerSec < b.DeliveriesPerSec*floor {
				verdict = fmt.Sprintf("FAIL: deliveries/sec %.0f < %.2fx baseline", r.DeliveriesPerSec, floor)
				failed = true
			}
		}
		fmt.Fprintf(w, "%-28s %10.1f -> %8.1f %8.0f -> %6.0f  %s\n",
			label, b.PacketsPerDelivery, r.PacketsPerDelivery,
			b.DeliveriesPerSec, r.DeliveriesPerSec, verdict)
	}
	if matched == 0 {
		return false, fmt.Errorf("no candidate row matches any baseline row")
	}
	return failed, nil
}
