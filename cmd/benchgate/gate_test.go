package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const benchOld = `goos: linux
BenchmarkBatchCodec-8     1000    100.0 ns/op    48 B/op    2 allocs/op
BenchmarkBatchCodec-8     1000    102.0 ns/op    48 B/op    2 allocs/op
BenchmarkBatchCodec-8     1000     98.0 ns/op    48 B/op    2 allocs/op
BenchmarkBatchCodec-8     1000    101.0 ns/op    48 B/op    2 allocs/op
BenchmarkBatchCodec-8     1000     99.0 ns/op    48 B/op    2 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	bs, err := parseBench(writeTemp(t, "old.txt", benchOld))
	if err != nil {
		t.Fatal(err)
	}
	b := bs["BenchmarkBatchCodec"]
	if b == nil {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", bs)
	}
	if len(b.NsPerOp) != 5 {
		t.Fatalf("got %d ns/op samples, want 5", len(b.NsPerOp))
	}
	if m, ok := b.maxAllocs(); !ok || m != 2 {
		t.Fatalf("maxAllocs = %d, %v; want 2, true", m, ok)
	}
	if m := median(b.NsPerOp); m != 100.0 {
		t.Fatalf("median = %v, want 100", m)
	}
}

func TestParseBenchNoResults(t *testing.T) {
	if _, err := parseBench(writeTemp(t, "empty.txt", "PASS\nok repro 0.1s\n")); err == nil {
		t.Fatalf("expected error on a file with no benchmark lines")
	}
}

func TestMannWhitney(t *testing.T) {
	sep := mannWhitneyP(
		[]float64{100, 101, 99, 102, 98},
		[]float64{500, 510, 490, 505, 495})
	if sep >= 0.05 {
		t.Fatalf("clearly separated samples: p = %v, want < 0.05", sep)
	}
	same := mannWhitneyP(
		[]float64{100, 101, 99, 102, 98},
		[]float64{100, 101, 99, 102, 98})
	if same < 0.5 {
		t.Fatalf("identical samples: p = %v, want ~1", same)
	}
	if p := mannWhitneyP(nil, []float64{1}); p != 1 {
		t.Fatalf("degenerate input: p = %v, want 1", p)
	}
	if p := mannWhitneyP([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("all tied: p = %v, want 1", p)
	}
}

func TestMicroGatePasses(t *testing.T) {
	// 10% noise-level drift: significant or not, it is below the ratio bar.
	newer := strings.ReplaceAll(benchOld, "10", "11")
	var out bytes.Buffer
	failed, err := microGate(&out,
		writeTemp(t, "old.txt", benchOld),
		writeTemp(t, "new.txt", newer), 0.05, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("small drift failed the gate:\n%s", out.String())
	}
}

func TestMicroGateCatchesBigSlowdown(t *testing.T) {
	newer := strings.ReplaceAll(benchOld, " 10", " 40") // ~4x slower
	newer = strings.ReplaceAll(newer, " 98.0", " 397.0")
	newer = strings.ReplaceAll(newer, " 99.0", " 399.0")
	var out bytes.Buffer
	failed, err := microGate(&out,
		writeTemp(t, "old.txt", benchOld),
		writeTemp(t, "new.txt", newer), 0.05, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("4x slowdown passed the gate:\n%s", out.String())
	}
}

func TestMicroGateCatchesAllocGrowth(t *testing.T) {
	newer := strings.ReplaceAll(benchOld, "2 allocs/op", "3 allocs/op")
	var out bytes.Buffer
	failed, err := microGate(&out,
		writeTemp(t, "old.txt", benchOld),
		writeTemp(t, "new.txt", newer), 0.05, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("allocs/op growth passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs/op 2 -> 3") {
		t.Fatalf("verdict does not name the alloc growth:\n%s", out.String())
	}
}

func TestMicroGateMissingBenchmarkFails(t *testing.T) {
	newer := benchOld + "BenchmarkCoalescedFlush-8 100 50.0 ns/op 0 B/op 0 allocs/op\n"
	var out bytes.Buffer
	// Benchmark present in baseline but gone from the candidate: fail.
	failed, err := microGate(&out,
		writeTemp(t, "old.txt", newer),
		writeTemp(t, "new.txt", benchOld), 0.05, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("dropped benchmark passed the gate:\n%s", out.String())
	}
	// New benchmark with no baseline: informational only.
	out.Reset()
	failed, err = microGate(&out,
		writeTemp(t, "old.txt", benchOld),
		writeTemp(t, "new.txt", newer), 0.05, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("new benchmark without baseline failed the gate:\n%s", out.String())
	}
}

const liveBase = `{"version": 7, "runs": [
  {"processes": 3, "groups": 2, "transport": "mem", "chaos_seed": 0,
   "deliveries_per_sec": 8000, "packets_per_delivery": 10.5},
  {"processes": 3, "groups": 2, "transport": "mem", "chaos_seed": 42,
   "deliveries_per_sec": 900, "packets_per_delivery": 30.0}
]}`

func TestLiveGatePasses(t *testing.T) {
	cand := strings.ReplaceAll(liveBase, "8000", "7500")
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", liveBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("in-bounds run failed the gate:\n%s", out.String())
	}
}

func TestLiveGateCatchesPacketBlowup(t *testing.T) {
	cand := strings.Replace(liveBase, "10.5", "20.0", 1)
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", liveBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("packets/delivery blowup passed the gate:\n%s", out.String())
	}
}

func TestLiveGateCatchesThroughputCollapse(t *testing.T) {
	cand := strings.ReplaceAll(liveBase, "8000", "1000")
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", liveBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("throughput collapse passed the gate:\n%s", out.String())
	}
}

func TestLiveGateIgnoresChaosRows(t *testing.T) {
	// Nemesis rows may swing wildly without gating.
	cand := strings.ReplaceAll(liveBase, `"deliveries_per_sec": 900`, `"deliveries_per_sec": 5`)
	cand = strings.Replace(cand, "30.0", "300.0", 1)
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", liveBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("chaos-row swing failed the gate:\n%s", out.String())
	}
}

func TestLiveGateSoftensFileRows(t *testing.T) {
	// The same 0.15x throughput drop fails a mem row (floor 0.25) but
	// passes a file-WAL durability row (floor 0.10): fsync speed is the
	// runner's disk, not the code under test.
	const fileBase = `{"version": 7, "runs": [
	  {"processes": 3, "groups": 1, "transport": "mem", "chaos_seed": 0, "fsync_mode": "file",
	   "deliveries_per_sec": 1000, "packets_per_delivery": 12.0}
	]}`
	cand := strings.ReplaceAll(fileBase, "1000", "150")
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", fileBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("file-WAL row above the file floor failed the gate:\n%s", out.String())
	}
	out.Reset()
	memBase := strings.ReplaceAll(fileBase, `"file"`, `"mem"`)
	memCand := strings.ReplaceAll(cand, `"file"`, `"mem"`)
	failed, err = liveGate(&out,
		writeTemp(t, "old.json", memBase),
		writeTemp(t, "new.json", memCand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("mem row below the mem floor passed the gate:\n%s", out.String())
	}
}

func TestLiveGateRejectsCrossVersion(t *testing.T) {
	// A v6 document on either side is refused with an error that names the
	// stale file and both versions — not surfaced as mass row mismatches.
	v6 := strings.Replace(liveBase, `"version": 7`, `"version": 6`, 1)
	var out bytes.Buffer
	_, err := liveGate(&out,
		writeTemp(t, "old.json", v6),
		writeTemp(t, "new.json", liveBase), 1.25, 0.25, 0.10)
	if err == nil {
		t.Fatalf("v6 baseline against v7 candidate was not rejected")
	}
	if !strings.Contains(err.Error(), "old.json") || !strings.Contains(err.Error(), "version 6") ||
		!strings.Contains(err.Error(), "version 7") {
		t.Fatalf("rejection does not name the stale file and versions: %v", err)
	}
	if _, err := liveGate(&out,
		writeTemp(t, "old.json", liveBase),
		writeTemp(t, "new.json", v6), 1.25, 0.25, 0.10); err == nil {
		t.Fatalf("v6 candidate against v7 baseline was not rejected")
	}
}

const scenarioBase = `{"version": 7, "runs": [
  {"scenario": "steady", "workload_seed": 1, "stream_digest": "aaaa", "multicasts": 600,
   "processes": 9, "groups": 4, "transport": "mem", "chaos_seed": 0, "conflict_rate": 1,
   "fsync_mode": "mem", "deliveries_per_sec": 3000, "packets_per_delivery": 10.0},
  {"scenario": "hot-group", "workload_seed": 1, "stream_digest": "bbbb", "multicasts": 600,
   "processes": 9, "groups": 4, "transport": "mem", "chaos_seed": 0, "conflict_rate": 1,
   "fsync_mode": "mem", "deliveries_per_sec": 2000, "packets_per_delivery": 14.0}
]}`

func TestLiveGateKeysOnScenario(t *testing.T) {
	// The two scenario rows share every topology column and differ only in
	// the scenario name: a collapse on hot-group must be caught against the
	// hot-group baseline, not aliased onto steady's.
	cand := strings.Replace(scenarioBase, `"deliveries_per_sec": 2000`, `"deliveries_per_sec": 100`, 1)
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", scenarioBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("hot-group collapse passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "hot-group") {
		t.Fatalf("verdict does not name the scenario:\n%s", out.String())
	}
	// A renamed scenario is a new row, not a silent match.
	out.Reset()
	renamed := strings.ReplaceAll(scenarioBase, `"hot-group"`, `"hot-group-v2"`)
	failed, err = liveGate(&out,
		writeTemp(t, "old.json", scenarioBase),
		writeTemp(t, "new.json", renamed), 1.25, 0.25, 0.10)
	if err != nil || failed {
		t.Fatalf("renamed scenario gated against the old name: failed=%v err=%v\n%s", failed, err, out.String())
	}
	if !strings.Contains(out.String(), "new row (no baseline)") {
		t.Fatalf("renamed scenario not reported as new:\n%s", out.String())
	}
}

func TestLiveGateCatchesDigestDrift(t *testing.T) {
	// Same scenario, same multicast count, different stream digest: the
	// generator changed underneath the baseline — fail even though the
	// performance columns are identical.
	cand := strings.Replace(scenarioBase, `"stream_digest": "aaaa"`, `"stream_digest": "cccc"`, 1)
	var out bytes.Buffer
	failed, err := liveGate(&out,
		writeTemp(t, "old.json", scenarioBase),
		writeTemp(t, "new.json", cand), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("stream digest drift passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "digest") {
		t.Fatalf("verdict does not mention the digest:\n%s", out.String())
	}
	// A scaled run (different multicast count) legitimately has a different
	// digest; only the count-matched comparison gates.
	scaled := strings.Replace(cand, `"multicasts": 600,
   "processes": 9, "groups": 4, "transport": "mem", "chaos_seed": 0, "conflict_rate": 1,
   "fsync_mode": "mem", "deliveries_per_sec": 3000`, `"multicasts": 60,
   "processes": 9, "groups": 4, "transport": "mem", "chaos_seed": 0, "conflict_rate": 1,
   "fsync_mode": "mem", "deliveries_per_sec": 3000`, 1)
	out.Reset()
	failed, err = liveGate(&out,
		writeTemp(t, "old.json", scenarioBase),
		writeTemp(t, "new.json", scaled), 1.25, 0.25, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("scaled run's digest difference failed the gate:\n%s", out.String())
	}
}
