package main

import (
	"math"
	"sort"
)

// median returns the sample median.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP returns the two-sided p-value of the Mann-Whitney U test for
// samples a vs b, via the normal approximation with tie correction and a
// 0.5 continuity correction. For the tiny n CI uses (3-10 repetitions) the
// approximation is coarse, which is fine: the gate also requires a large
// median ratio, so the p-value is a noise screen, not a precision
// instrument. Degenerate inputs (empty samples, all values tied) return 1 —
// never significant.
func mannWhitneyP(a, b []float64) float64 {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return 1
	}
	type obs struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie-correction term Σ(t³-t).
	n := na + nb
	ranks := make([]float64, n)
	var tieSum float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieSum += t*t*t - t
		i = j
	}
	var ra float64
	for i, o := range all {
		if o.from == 0 {
			ra += ranks[i]
		}
	}
	u := ra - float64(na*(na+1))/2
	mu := float64(na) * float64(nb) / 2
	nn := float64(n)
	variance := float64(na) * float64(nb) / 12 * ((nn + 1) - tieSum/(nn*(nn-1)))
	if variance <= 0 {
		return 1 // every observation tied
	}
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2) // 2 * (1 - Φ(z))
}
