// Command benchgate is the repository's statistical performance gate: an
// in-repo, dependency-free replacement for the benchstat-plus-awk rituals
// CI perf checks usually accrete.
//
// Two modes:
//
//	benchgate micro -old baselines/micro.txt -new BENCH_micro.txt
//	    compares `go test -bench` output (run with -count N, N >= 3) against
//	    a committed baseline. allocs/op is machine-independent and gated
//	    strictly: any increase fails. ns/op is noisy and machine-dependent,
//	    so it fails only when the regression is BOTH statistically
//	    significant (Mann-Whitney U, two-sided, alpha 0.05) AND large
//	    (median ratio above -ratio, default 3x) — the double test keeps
//	    shared-runner noise and hardware drift from failing honest changes
//	    while still catching the accidental O(n^2).
//
//	benchgate live -old BENCH_live.json -new BENCH_live_new.json
//	    compares two benchtab live documents row by row. Cross-schema
//	    comparisons are rejected (same rule as benchtab -baseline). On
//	    chaos-free rows, packets/delivery — a protocol property, not a
//	    timing — may not exceed the baseline by more than -pkts-slack
//	    (default 1.25x), and deliveries/sec may not fall below -dlv-floor
//	    (default 0.25x) of the baseline. Chaos-seeded rows are reported but
//	    never gate: the nemesis owns their variance. File-WAL durability
//	    rows gate throughput against the softer -file-dlv-floor (default
//	    0.10x): fsync latency belongs to the runner's disk, not the code.
//
// Exit status: 0 when every gate passes, 1 on any regression, 2 on usage
// or input errors.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	var failed bool
	switch os.Args[1] {
	case "micro":
		fs := flag.NewFlagSet("micro", flag.ExitOnError)
		oldPath := fs.String("old", "", "baseline `file` (go test -bench output)")
		newPath := fs.String("new", "", "candidate `file` (go test -bench output)")
		alpha := fs.Float64("alpha", 0.05, "significance level for the Mann-Whitney test")
		ratio := fs.Float64("ratio", 3.0, "ns/op median ratio above which a significant slowdown fails")
		fs.Parse(os.Args[2:])
		failed, err = microGate(os.Stdout, *oldPath, *newPath, *alpha, *ratio)
	case "live":
		fs := flag.NewFlagSet("live", flag.ExitOnError)
		oldPath := fs.String("old", "", "baseline BENCH_live.json")
		newPath := fs.String("new", "", "candidate BENCH_live.json")
		pktsSlack := fs.Float64("pkts-slack", 1.25, "max packets/delivery as a multiple of baseline")
		dlvFloor := fs.Float64("dlv-floor", 0.25, "min deliveries/sec as a fraction of baseline")
		fileDlvFloor := fs.Float64("file-dlv-floor", 0.10, "min deliveries/sec for file-WAL durability rows (fsync speed is a disk property)")
		fs.Parse(os.Args[2:])
		failed, err = liveGate(os.Stdout, *oldPath, *newPath, *pktsSlack, *dlvFloor, *fileDlvFloor)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchgate micro|live [flags]")
	os.Exit(2)
}
