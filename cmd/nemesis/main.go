// Command nemesis replays a seeded fault schedule against a live quorum
// substrate and checks its safety and post-quiesce liveness obligations.
// It is the one-line repro for the chaos tests: a failing seed reported as
//
//	go run ./cmd/nemesis -seed 7
//
// rebuilds the exact per-link fault schedule of the failing run — every
// drop, delay, duplicate, partition and down/up cycle derives from the
// seed alone (see internal/chaos) — so the failure replays outside the
// test harness.
//
// Usage:
//
//	nemesis -seed 7 -n 5 -duration 2s -workload register
//	nemesis -seed 7 -print          # print the fault schedule and exit
//
// Workloads (see -h for the list): "register" runs a single-writer ABD
// workload and checks monotone reads; "replog" runs concurrent appends on
// the replicated log and checks pairwise ordering across replicas;
// "multicast" runs the full Algorithm 1 protocol on the live backend over
// a chain of overlapping groups and checks the atomic-multicast
// specification; "powercycle" kill -9s processes of a durable replicated
// log mid-run and checks that the rebooted incarnations recover from their
// write-ahead logs without forking the decided prefix. Exit status 1 means
// a safety or liveness violation, 2 a usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/cliconf"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/paxos"
	"repro/internal/register"
	"repro/internal/replog"
	"repro/internal/storage"
)

// workload is one named nemesis target: a run function driven by the
// seeded fault plan plus the one-line description shown in -h. A workload
// with a plan generator of its own (powercycle) overrides the default
// drop/delay/partition schedule.
type workload struct {
	name string
	desc string
	run  func(seed int64, n int, plan chaos.Plan) error
	plan func(seed int64, n int, d time.Duration) chaos.Plan
}

// workloads is the registry, in display order.
var workloads = []workload{
	{"register", "single-writer ABD register; checks monotone reads and post-quiesce convergence", runRegister, nil},
	{"replog", "concurrent appends on one replicated log; checks pairwise ordering across replicas", runReplog, nil},
	{"multicast", "Algorithm 1 over the live backend on a chain of overlapping groups; checks the full specification", runMulticast, nil},
	{"commute", "generic multicast with mixed conflicting/commuting traffic under chaos; checks the conflict-aware specification", runCommute, nil},
	{"powercycle", "kill -9 and reboot durable log replicas mid-run; checks WAL recovery keeps the decided prefix intact", runPowerCycle, chaos.NewPowerPlan},
}

func lookupWorkload(name string) (workload, bool) {
	for _, w := range workloads {
		if w.name == name {
			return w, true
		}
	}
	return workload{}, false
}

func main() {
	cc := cliconf.Bind(flag.CommandLine, cliconf.ToolNemesis)
	var (
		nFlag        = flag.Int("n", 5, "number of processes")
		durationFlag = flag.Duration("duration", 2*time.Second, "nemesis run length")
		workloadFlag = flag.String("workload", "register", "workload name (see list below)")
		printFlag    = flag.Bool("print", false, "print the fault schedule and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nemesis [flags]\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nworkloads:\n")
		for _, w := range workloads {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", w.name, w.desc)
		}
	}
	flag.Parse()

	if *nFlag < 2 {
		fmt.Fprintf(os.Stderr, "nemesis: -n %d: a quorum workload needs at least 2 processes\n", *nFlag)
		os.Exit(2)
	}
	w, ok := lookupWorkload(*workloadFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "nemesis: unknown workload %q\n", *workloadFlag)
		flag.Usage()
		os.Exit(2)
	}

	newPlan := chaos.NewPlan
	if w.plan != nil {
		newPlan = w.plan
	}
	plan := newPlan(cc.Seed, *nFlag, *durationFlag)
	fmt.Print(plan)
	if *printFlag {
		return
	}

	if err := w.run(cc.Seed, *nFlag, plan); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL seed=%d: %v\n", cc.Seed, err)
		os.Exit(1)
	}
	fmt.Printf("OK seed=%d\n", cc.Seed)
}

// runRegister drives a single-writer / two-reader ABD workload under the
// plan. Safety: readers never see values regress and never see a value the
// writer has not written. Liveness after quiesce: every node reads the
// final written value.
func runRegister(seed int64, n int, plan chaos.Plan) error {
	c := chaos.Wrap(net.New(n), seed)
	defer c.Close()
	var scope groups.ProcSet
	nodes := make([]*register.Node, n)
	for p := 0; p < n; p++ {
		nodes[p] = register.StartNode(c, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	reg := &register.Register{
		Name: "r", Scope: scope, Net: c,
		Quorum: register.Majority{Scope: scope},
	}

	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	var lastWritten int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := nodes[0].Client(reg)
		for v := int64(1); ; v++ {
			if !w.Write(v) {
				return
			}
			lastWritten = v
			select {
			case <-nmDone:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()

	readers := 2
	if n < 3 {
		readers = n - 1
	}
	seqs := make([][]int64, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := nodes[1+i].Client(reg)
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				v, ok := r.Read()
				if !ok {
					return
				}
				seqs[i] = append(seqs[i], v)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	<-nmDone
	<-writerDone
	wg.Wait()

	fmt.Printf("workload: %d writes, readers saw %d reads, stats %+v\n",
		lastWritten, len(seqs[0]), c.Stats())

	for i, seq := range seqs {
		for j := 1; j < len(seq); j++ {
			if seq[j] < seq[j-1] {
				return fmt.Errorf("reader %d regressed: %d after %d", i, seq[j], seq[j-1])
			}
		}
		for _, v := range seq {
			if v < 0 || v > lastWritten {
				return fmt.Errorf("reader %d saw invented value %d (last written %d)", i, v, lastWritten)
			}
		}
	}
	for p := 0; p < n; p++ {
		v, ok := nodes[p].Client(reg).Read()
		if !ok || v != lastWritten {
			return fmt.Errorf("p%d post-quiesce read = %d,%v; want %d", p, v, ok, lastWritten)
		}
	}
	return nil
}

// runReplog drives concurrent appends on the replicated log under the
// plan. Safety: the pairwise-ordering checker over the replicas' local
// apply orders (the paper's Ordering property restricted to one scope).
// Liveness after quiesce: every replica applies the full history.
func runReplog(seed int64, n int, plan chaos.Plan) error {
	c := chaos.Wrap(net.New(n), seed)
	defer c.Close()
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	leader := func(groups.Process) groups.Process { return 0 }
	reps := make([]*replog.Replica, n)
	for p := 0; p < n; p++ {
		node := paxos.StartNode(c, groups.Process(p))
		reps[p] = replog.NewReplica("LOG", 1, groups.Process(p), node, c, scope, leader)
	}

	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Each replica appends distinct ids until the nemesis quiesces. An
	// append may stall inside a partition window; it must complete after.
	var total int64
	var totalMu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				id := msg.ID(i*n + p + 1)
				if _, ok := reps[p].Append(logobj.MsgDatum(id)); !ok {
					return
				}
				totalMu.Lock()
				total++
				totalMu.Unlock()
				select {
				case <-nmDone:
					return
				case <-time.After(500 * time.Microsecond):
				}
			}
		}()
	}
	<-nmDone
	wg.Wait()

	// Fence: one more append per replica walks it through every decided
	// slot, then every replica must reach the full history.
	for p := 0; p < n; p++ {
		if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(60000 + p))); !ok {
			return fmt.Errorf("fence append failed at replica %d", p)
		}
		total++
	}
	for p := 0; p < n; p++ {
		if !reps[p].SyncWait(int(total), 10*time.Second) {
			return fmt.Errorf("replica %d applied %d of %d after quiesce", p, reps[p].Applied(), total)
		}
	}
	fmt.Printf("workload: %d appends, stats %+v\n", total, c.Stats())

	orders := make(map[groups.Process][]msg.ID, n)
	for p, r := range reps {
		for _, d := range r.Snapshot() {
			orders[groups.Process(p)] = append(orders[groups.Process(p)], d.Msg)
		}
	}
	if v := check.PairwiseOrdering(&check.Trace{LocalOrder: orders}); v != nil {
		return fmt.Errorf("log order violation: %v", v)
	}
	return nil
}

// pcCluster is a replicated log whose processes can be power-cycled: each
// paxos node writes a Mem WAL, and the chaos power hooks kill -9 a process
// (fence the old incarnation, drop its unsynced WAL tail) and reboot it
// (rebuild node and replica from the durable log). It is the command-line
// twin of the harness in internal/replog's power-cycle test.
type pcCluster struct {
	c      *chaos.Chaos
	scope  groups.ProcSet
	leader paxos.LeaderFunc

	mu       sync.Mutex
	wals     []*storage.Mem
	nodes    []*paxos.Node
	reps     []*replog.Replica
	restarts int
}

func newPCCluster(n int, seed int64) *pcCluster {
	cl := &pcCluster{
		c:      chaos.Wrap(net.New(n), seed),
		leader: func(groups.Process) groups.Process { return 0 },
		wals:   make([]*storage.Mem, n),
		nodes:  make([]*paxos.Node, n),
		reps:   make([]*replog.Replica, n),
	}
	for p := 0; p < n; p++ {
		cl.scope = cl.scope.Add(groups.Process(p))
	}
	for p := 0; p < n; p++ {
		cl.wals[p] = storage.NewMem()
		cl.boot(groups.Process(p))
	}
	cl.c.OnPowerCycle(cl.powerOff, cl.powerOn)
	return cl
}

func (cl *pcCluster) boot(p groups.Process) {
	node := paxos.StartNodeWithConfig(cl.c, p, paxos.Config{WAL: cl.wals[p]})
	cl.nodes[p] = node
	cl.reps[p] = replog.NewReplica("LOG", 1, p, node, cl.c, cl.scope, cl.leader)
}

func (cl *pcCluster) powerOff(p groups.Process) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.nodes[p].Fence()
	cl.wals[p].PowerCycle()
}

func (cl *pcCluster) powerOn(p groups.Process) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.boot(p)
	cl.restarts++
}

func (cl *pcCluster) rep(p int) *replog.Replica {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.reps[p]
}

// runPowerCycle drives concurrent appends on a durable replicated log while
// the power plan kill -9s and reboots processes. Safety: after the final
// reboot, the paxos decision maps agree bit-for-bit across every pair of
// nodes (recovered incarnations included) and the applied logs agree on
// their common prefix. Liveness after quiesce: a fence append lands at
// every replica.
func runPowerCycle(seed int64, n int, plan chaos.Plan) error {
	cl := newPCCluster(n, seed)
	defer cl.c.Close()

	nm := &chaos.Nemesis{C: cl.c, Plan: plan}
	nmDone := nm.Go()

	// Fire-and-forget appenders: an append caught on a power-cycled
	// incarnation blocks forever (a client talking to a dead server), so
	// nothing waits on these goroutines.
	var landed int64
	var landedMu sync.Mutex
	for p := 0; p < n; p++ {
		go func(p int) {
			for i := 0; i < 8; i++ {
				if _, ok := cl.rep(p).Append(logobj.MsgDatum(msg.ID(100*p + i + 1))); ok {
					landedMu.Lock()
					landed++
					landedMu.Unlock()
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(p)
	}
	<-nmDone

	cl.mu.Lock()
	restarts := cl.restarts
	cl.mu.Unlock()
	if restarts == 0 {
		return fmt.Errorf("plan power-cycled nobody")
	}

	// Fence appends: with every process back up these must all land, and
	// completing one walks that replica through every decided slot below it.
	fenced := make(chan bool, n)
	for p := 0; p < n; p++ {
		go func(p int) {
			_, ok := cl.rep(p).Append(logobj.MsgDatum(msg.ID(1000 + p)))
			fenced <- ok
		}(p)
	}
	deadline := time.After(60 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case ok := <-fenced:
			if !ok {
				return fmt.Errorf("fence append failed after recovery")
			}
		case <-deadline:
			return fmt.Errorf("fence append still blocked 60s after quiesce (restarts=%d, stats=%+v)",
				restarts, cl.c.Stats())
		}
	}

	cl.mu.Lock()
	nodes := append([]*paxos.Node(nil), cl.nodes...)
	reps := append([]*replog.Replica(nil), cl.reps...)
	cl.mu.Unlock()

	landedMu.Lock()
	fmt.Printf("workload: %d appends landed, %d restarts, stats %+v\n", landed, restarts, cl.c.Stats())
	landedMu.Unlock()

	// Paxos-level agreement, bit-for-bit across recovered nodes.
	snaps := make([]map[paxos.InstanceID]paxos.Value, n)
	for p, node := range nodes {
		snaps[p] = node.SnapshotDecisions()
	}
	for p := range snaps {
		for q := p + 1; q < len(snaps); q++ {
			for inst, v := range snaps[p] {
				if w, ok := snaps[q][inst]; ok && !w.Equal(v) {
					return fmt.Errorf("decided slot changed value across a power cycle: %+v = %x at p%d but %x at p%d",
						inst, v, p, w, q)
				}
			}
		}
	}

	// Applied-log agreement: common prefix bit-for-bit, plus the pairwise
	// ordering checker over the full local orders.
	ref := reps[0].Snapshot()
	orders := make(map[groups.Process][]msg.ID, n)
	for p, r := range reps {
		snap := r.Snapshot()
		if p > 0 {
			m := len(ref)
			if len(snap) < m {
				m = len(snap)
			}
			for i := 0; i < m; i++ {
				if snap[i] != ref[i] {
					return fmt.Errorf("applied log forked at position %d: %v at p0 vs %v at p%d",
						i, ref[i], snap[i], p)
				}
			}
		}
		for _, d := range snap {
			orders[groups.Process(p)] = append(orders[groups.Process(p)], d.Msg)
		}
	}
	if v := check.PairwiseOrdering(&check.Trace{LocalOrder: orders}); v != nil {
		return fmt.Errorf("log order violation: %v", v)
	}
	return nil
}

// chainScenario builds the shared multicast chaos scenario: a chain of
// overlapping 3-member groups {0,1,2},{2,3,4},... over n processes, with
// the unique middle member of every group crashing on a staggered schedule
// (the shared members stay up, so every group and every pairwise
// intersection keeps a majority).
func chainScenario(n int) (*groups.Topology, *failure.Pattern, []groups.ProcSet, error) {
	if n < 3 || n%2 == 0 {
		return nil, nil, nil, fmt.Errorf("this workload needs an odd -n >= 3 (chain of overlapping 3-member groups), got %d", n)
	}
	var sets []groups.ProcSet
	for p := 0; p+2 < n; p += 2 {
		var s groups.ProcSet
		s = s.Add(groups.Process(p)).Add(groups.Process(p + 1)).Add(groups.Process(p + 2))
		sets = append(sets, s)
	}
	topo, err := groups.New(n, sets...)
	if err != nil {
		return nil, nil, nil, err
	}
	pat := failure.NewPattern(n)
	ct := failure.Time(120)
	for p := 1; p < n; p += 2 {
		pat = pat.WithCrash(groups.Process(p), ct)
		ct += 60
	}
	return topo, pat, sets, nil
}

// runMulticast drives the full protocol on the live backend under the
// plan over the chain scenario. Correct members multicast until the
// nemesis quiesces; then every multicast must be delivered at every
// correct destination member and the whole trace must pass the
// atomic-multicast specification checkers.
func runMulticast(seed int64, n int, plan chaos.Plan) error {
	topo, pat, sets, err := chainScenario(n)
	if err != nil {
		return err
	}

	c := chaos.Wrap(net.New(n), seed)
	rec := obs.NewRecorder(obs.Options{WallClock: true})
	sys := live.NewSystem(topo, pat, c, live.Config{Opt: core.Options{Rec: rec}})
	sys.Start()
	defer sys.Stop()

	// On failure, ship the run report with the error: the counters say where
	// the work went (paxos rounds, probes, chaos injections) and the timeline
	// tail says what the protocol was doing when it stalled.
	fail := func(format string, args ...any) error {
		sys.Stop()
		rep := sys.Report()
		fmt.Fprintf(os.Stderr, "%s\n", rep.String())
		if len(rep.Events) > 0 {
			fmt.Fprintln(os.Stderr, "event timeline (tail):")
			rep.WriteTimeline(os.Stderr, 60)
		}
		return fmt.Errorf(format, args...)
	}

	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Round-robin multicasts from the correct (even-numbered) members of
	// each group until the fault schedule quiesces.
	sent := 0
loop:
	for i := 0; ; i++ {
		k := i % len(sets)
		src := groups.Process(2 * k)
		if i%2 == 1 {
			src = groups.Process(2*k + 2)
		}
		sys.Multicast(src, groups.GroupID(k), nil)
		sent++
		select {
		case <-nmDone:
			break loop
		case <-time.After(35 * time.Millisecond):
		}
	}

	if !sys.AwaitDelivery(90 * time.Second) {
		return fail("post-quiesce delivery incomplete: %d multicasts sent", sent)
	}
	sys.Stop()
	fmt.Printf("workload: %d multicasts, stats %+v\n", sent, c.Stats())
	if vs := sys.Check(); len(vs) > 0 {
		return fail("specification violated: %v", vs)
	}
	return nil
}

// runCommute drives the Generic variant on the live backend under the plan
// over the same chain scenario, with mixed traffic: most messages commute
// with everything (ClassFree, the coordination-free fast path) and the rest
// fall into a few keyed conflict classes that must stay totally ordered.
// The conflict-aware checkers then validate the run — total order within
// conflicting pairs, free divergence elsewhere — and the run must have
// actually exercised both paths.
func runCommute(seed int64, n int, plan chaos.Plan) error {
	topo, pat, sets, err := chainScenario(n)
	if err != nil {
		return err
	}

	c := chaos.Wrap(net.New(n), seed)
	rec := obs.NewRecorder(obs.Options{WallClock: true})
	sys := live.NewSystem(topo, pat, c, live.Config{Opt: core.Options{
		Variant:  core.Generic,
		Conflict: msg.ClassesConflict,
		Rec:      rec,
	}})
	sys.Start()
	defer sys.Stop()

	fail := func(format string, args ...any) error {
		sys.Stop()
		rep := sys.Report()
		fmt.Fprintf(os.Stderr, "%s\n", rep.String())
		if len(rep.Events) > 0 {
			fmt.Fprintln(os.Stderr, "event timeline (tail):")
			rep.WriteTimeline(os.Stderr, 60)
		}
		return fmt.Errorf(format, args...)
	}

	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Round-robin multicasts from the correct (even-numbered) members: 7 in
	// 10 commute with everything, the rest cycle through 3 keyed classes.
	sent, free := 0, 0
loop:
	for i := 0; ; i++ {
		k := i % len(sets)
		src := groups.Process(2 * k)
		if i%2 == 1 {
			src = groups.Process(2*k + 2)
		}
		class := msg.ClassFree
		if i%10 >= 7 {
			class = msg.Class(1 + i%3)
		} else {
			free++
		}
		sys.MulticastClassed(src, groups.GroupID(k), nil, class)
		sent++
		select {
		case <-nmDone:
			break loop
		case <-time.After(35 * time.Millisecond):
		}
	}

	if !sys.AwaitDelivery(90 * time.Second) {
		return fail("post-quiesce delivery incomplete: %d multicasts sent", sent)
	}
	sys.Stop()
	rep := sys.Report()
	var fast int64
	if rep.Conflict != nil {
		fast = rep.Conflict.FastDeliveries
	}
	fmt.Printf("workload: %d multicasts (%d commuting), %d fast deliveries, stats %+v\n",
		sent, free, fast, c.Stats())
	if free > 0 && fast == 0 {
		return fail("commuting messages were sent but no delivery skipped coordination")
	}
	if vs := sys.Check(); len(vs) > 0 {
		return fail("conflict-aware specification violated: %v", vs)
	}
	return nil
}
