// Command nemesis replays a seeded fault schedule against a live quorum
// substrate and checks its safety and post-quiesce liveness obligations.
// It is the one-line repro for the chaos tests: a failing seed reported as
//
//	go run ./cmd/nemesis -seed 7
//
// rebuilds the exact per-link fault schedule of the failing run — every
// drop, delay, duplicate, partition and down/up cycle derives from the
// seed alone (see internal/chaos) — so the failure replays outside the
// test harness.
//
// Usage:
//
//	nemesis -seed 7 -n 5 -duration 2s -substrate register
//	nemesis -seed 7 -print          # print the fault schedule and exit
//
// Substrates: "register" runs a single-writer ABD workload and checks
// monotone reads; "replog" runs concurrent appends on the replicated log
// and checks pairwise ordering across replicas. Exit status 1 means a
// safety or liveness violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/groups"
	"repro/internal/logobj"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/paxos"
	"repro/internal/register"
	"repro/internal/replog"
)

func main() {
	var (
		seedFlag     = flag.Int64("seed", 1, "fault-schedule seed")
		nFlag        = flag.Int("n", 5, "number of processes")
		durationFlag = flag.Duration("duration", 2*time.Second, "nemesis run length")
		subFlag      = flag.String("substrate", "register", "register | replog")
		printFlag    = flag.Bool("print", false, "print the fault schedule and exit")
	)
	flag.Parse()

	if *nFlag < 2 {
		fmt.Fprintf(os.Stderr, "nemesis: -n %d: a quorum workload needs at least 2 processes\n", *nFlag)
		os.Exit(2)
	}
	if *subFlag != "register" && *subFlag != "replog" {
		fmt.Fprintf(os.Stderr, "nemesis: unknown substrate %q (want register or replog)\n", *subFlag)
		os.Exit(2)
	}

	plan := chaos.NewPlan(*seedFlag, *nFlag, *durationFlag)
	fmt.Print(plan)
	if *printFlag {
		return
	}

	var err error
	if *subFlag == "register" {
		err = runRegister(*seedFlag, *nFlag, plan)
	} else {
		err = runReplog(*seedFlag, *nFlag, plan)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL seed=%d: %v\n", *seedFlag, err)
		os.Exit(1)
	}
	fmt.Printf("OK seed=%d\n", *seedFlag)
}

// runRegister drives a single-writer / two-reader ABD workload under the
// plan. Safety: readers never see values regress and never see a value the
// writer has not written. Liveness after quiesce: every node reads the
// final written value.
func runRegister(seed int64, n int, plan chaos.Plan) error {
	c := chaos.Wrap(net.New(n), seed)
	defer c.Close()
	var scope groups.ProcSet
	nodes := make([]*register.Node, n)
	for p := 0; p < n; p++ {
		nodes[p] = register.StartNode(c, groups.Process(p))
		scope = scope.Add(groups.Process(p))
	}
	reg := &register.Register{
		Name: "r", Scope: scope, Net: c,
		Quorum: register.Majority{Scope: scope},
	}

	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	var lastWritten int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := nodes[0].Client(reg)
		for v := int64(1); ; v++ {
			if !w.Write(v) {
				return
			}
			lastWritten = v
			select {
			case <-nmDone:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()

	readers := 2
	if n < 3 {
		readers = n - 1
	}
	seqs := make([][]int64, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := nodes[1+i].Client(reg)
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				v, ok := r.Read()
				if !ok {
					return
				}
				seqs[i] = append(seqs[i], v)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	<-nmDone
	<-writerDone
	wg.Wait()

	fmt.Printf("workload: %d writes, readers saw %d reads, stats %+v\n",
		lastWritten, len(seqs[0]), c.Stats())

	for i, seq := range seqs {
		for j := 1; j < len(seq); j++ {
			if seq[j] < seq[j-1] {
				return fmt.Errorf("reader %d regressed: %d after %d", i, seq[j], seq[j-1])
			}
		}
		for _, v := range seq {
			if v < 0 || v > lastWritten {
				return fmt.Errorf("reader %d saw invented value %d (last written %d)", i, v, lastWritten)
			}
		}
	}
	for p := 0; p < n; p++ {
		v, ok := nodes[p].Client(reg).Read()
		if !ok || v != lastWritten {
			return fmt.Errorf("p%d post-quiesce read = %d,%v; want %d", p, v, ok, lastWritten)
		}
	}
	return nil
}

// runReplog drives concurrent appends on the replicated log under the
// plan. Safety: the pairwise-ordering checker over the replicas' local
// apply orders (the paper's Ordering property restricted to one scope).
// Liveness after quiesce: every replica applies the full history.
func runReplog(seed int64, n int, plan chaos.Plan) error {
	c := chaos.Wrap(net.New(n), seed)
	defer c.Close()
	var scope groups.ProcSet
	for p := 0; p < n; p++ {
		scope = scope.Add(groups.Process(p))
	}
	leader := func(groups.Process) groups.Process { return 0 }
	reps := make([]*replog.Replica, n)
	for p := 0; p < n; p++ {
		node := paxos.StartNode(c, groups.Process(p))
		reps[p] = replog.NewReplica("LOG", groups.Process(p), node, c, scope, leader)
	}

	nm := &chaos.Nemesis{C: c, Plan: plan}
	nmDone := nm.Go()

	// Each replica appends distinct ids until the nemesis quiesces. An
	// append may stall inside a partition window; it must complete after.
	var total int64
	var totalMu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				id := msg.ID(i*n + p + 1)
				if _, ok := reps[p].Append(logobj.MsgDatum(id)); !ok {
					return
				}
				totalMu.Lock()
				total++
				totalMu.Unlock()
				select {
				case <-nmDone:
					return
				case <-time.After(500 * time.Microsecond):
				}
			}
		}()
	}
	<-nmDone
	wg.Wait()

	// Fence: one more append per replica walks it through every decided
	// slot, then every replica must reach the full history.
	for p := 0; p < n; p++ {
		if _, ok := reps[p].Append(logobj.MsgDatum(msg.ID(60000 + p))); !ok {
			return fmt.Errorf("fence append failed at replica %d", p)
		}
		total++
	}
	for p := 0; p < n; p++ {
		if !reps[p].SyncWait(int(total), 10*time.Second) {
			return fmt.Errorf("replica %d applied %d of %d after quiesce", p, reps[p].Applied(), total)
		}
	}
	fmt.Printf("workload: %d appends, stats %+v\n", total, c.Stats())

	orders := make(map[groups.Process][]msg.ID, n)
	for p, r := range reps {
		for _, d := range r.Snapshot() {
			orders[groups.Process(p)] = append(orders[groups.Process(p)], d.Msg)
		}
	}
	if v := check.PairwiseOrdering(&check.Trace{LocalOrder: orders}); v != nil {
		return fmt.Errorf("log order violation: %v", v)
	}
	return nil
}
