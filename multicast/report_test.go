package multicast

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// chainTopo is the Figure-1-shaped pair of overlapping groups used across
// these tests: g1 = {0,1}, g2 = {1,2}, intersection {1}.
func chainTopo() *Topology {
	return NewTopology(3).
		Group("g1", 0, 1).
		Group("g2", 1, 2)
}

func TestReportSim(t *testing.T) {
	sys, err := New(chainTopo(), Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(2, "g2", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep, err := sys.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.Backend != "sim" {
		t.Errorf("Backend = %q, want sim", rep.Backend)
	}
	if rep.Multicasts != 2 || rep.Deliveries != 4 {
		t.Errorf("Multicasts/Deliveries = %d/%d, want 2/4", rep.Multicasts, rep.Deliveries)
	}
	if rep.TickLatency.Count != 4 || rep.TickLatency.P50 <= 0 {
		t.Errorf("TickLatency = %+v, want 4 positive samples", rep.TickLatency)
	}
	if rep.WallLatency != nil {
		t.Errorf("sim run has a wall latency summary: %+v", rep.WallLatency)
	}
	if len(rep.Events) == 0 {
		t.Error("no events recorded at the default observe level")
	}
	if !rep.StepsAccounted {
		t.Fatal("sim run did not account steps")
	}
	if n, err := rep.StepsOf(0); err != nil || n <= 0 {
		t.Errorf("StepsOf(0) = %d, %v; want positive count", n, err)
	}
	// No AccountCosts: the synthetic message count must refuse, not be zero.
	if _, err := rep.SentMessages(); !errors.Is(err, obs.ErrNotAccounted) {
		t.Errorf("SentMessages without AccountCosts = %v, want ErrNotAccounted", err)
	}
}

func TestReportSimAccountedMessages(t *testing.T) {
	sys, err := New(chainTopo(), Config{Seed: 3, AccountCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep, err := sys.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if n, err := rep.SentMessages(); err != nil || n <= 0 {
		t.Errorf("SentMessages = %d, %v; want positive count", n, err)
	}
}

func TestReportLive(t *testing.T) {
	sys, err := New(chainTopo(), Config{Backend: Live})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep, err := sys.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.Backend != "live" {
		t.Errorf("Backend = %q, want live", rep.Backend)
	}
	if rep.WallLatency == nil || rep.WallLatency.Count != 2 {
		t.Errorf("WallLatency = %+v, want 2 samples", rep.WallLatency)
	}
	if rep.Net == nil || rep.Net.Packets == 0 {
		t.Errorf("Net = %+v, want transport traffic", rep.Net)
	}
	if ppd, ok := rep.PacketsPerDelivery(); !ok || ppd <= 0 {
		t.Errorf("PacketsPerDelivery = %v, %v; want positive", ppd, ok)
	}
	if rep.Paxos == nil || rep.Paxos.Decisions == 0 {
		t.Errorf("Paxos = %+v, want consensus work", rep.Paxos)
	}
	// The live substrate keeps no step ledger: StepsOf must refuse.
	if _, err := rep.StepsOf(0); !errors.Is(err, obs.ErrNotAccounted) {
		t.Errorf("StepsOf on live = %v, want ErrNotAccounted", err)
	}
}

func TestReportObserveOff(t *testing.T) {
	sys, err := New(chainTopo(), Config{Seed: 1, Observe: obs.LevelOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := sys.Report(); !errors.Is(err, obs.ErrNotAccounted) {
		t.Errorf("Report with LevelOff = %v, want ErrNotAccounted", err)
	}
	// The run itself still happened: both g1 members delivered.
	if got := len(sys.Delivered(0)) + len(sys.Delivered(1)); got != 2 {
		t.Errorf("deliveries at g1 members = %d, want 2", got)
	}
}

func TestRunContextDeadlineLive(t *testing.T) {
	// Crashing 1 and 2 at tick 0 leaves p0 — a correct g1 member that must
	// deliver — without a quorum for any pair log, so the run can never
	// complete and the deadline must cut it short, however fast the
	// substrate gets. (A bare short deadline raced the batched hot path.)
	sys, err := New(chainTopo(), Config{Backend: Live, Crashes: map[int]int64{1: 0, 2: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	runErr := sys.RunContext(ctx)
	if !errors.Is(runErr, ErrRunTimeout) {
		t.Errorf("RunContext = %v, want ErrRunTimeout", runErr)
	}
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Errorf("RunContext = %v, want context.DeadlineExceeded in the chain", runErr)
	}
	// The substrate is stopped and frozen: reads and reports still work.
	if _, err := sys.Report(); err != nil {
		t.Errorf("Report after cancelled run: %v", err)
	}
	_ = sys.Delivered(0)
}

func TestRunContextCancelMidLiveRun(t *testing.T) {
	sys, err := New(chainTopo(), Config{Backend: Live})
	if err != nil {
		t.Fatal(err)
	}
	// Enough in-flight work that cancellation lands mid-run.
	for i := 0; i < 8; i++ {
		if _, err := sys.Multicast(1, "g2", nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	runErr := sys.RunContext(ctx)
	if runErr != nil {
		// Cancellation raced full delivery; either outcome is legal, but an
		// error must carry the sentinels.
		if !errors.Is(runErr, ErrRunTimeout) || !errors.Is(runErr, context.Canceled) {
			t.Errorf("RunContext = %v, want ErrRunTimeout and context.Canceled", runErr)
		}
	}
	// Stop must have torn the run down exactly once; a second Run is a no-op
	// against the frozen substrate and must not hang or panic.
	if _, err := sys.Report(); err != nil {
		t.Errorf("Report after cancel: %v", err)
	}
}

func TestRunContextCancelledSim(t *testing.T) {
	sys, err := New(chainTopo(), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the engine must stop at its first poll
	runErr := sys.RunContext(ctx)
	if !errors.Is(runErr, ErrRunTimeout) || !errors.Is(runErr, context.Canceled) {
		t.Errorf("RunContext = %v, want ErrRunTimeout and context.Canceled", runErr)
	}
}
